file(REMOVE_RECURSE
  "CMakeFiles/multicore_pipeline.dir/multicore_pipeline.cpp.o"
  "CMakeFiles/multicore_pipeline.dir/multicore_pipeline.cpp.o.d"
  "multicore_pipeline"
  "multicore_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
