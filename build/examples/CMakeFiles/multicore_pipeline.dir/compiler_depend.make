# Empty compiler generated dependencies file for multicore_pipeline.
# This may be replaced when dependencies are built.
