# Empty dependencies file for gantt_workflow.
# This may be replaced when dependencies are built.
