file(REMOVE_RECURSE
  "CMakeFiles/gantt_workflow.dir/gantt_workflow.cpp.o"
  "CMakeFiles/gantt_workflow.dir/gantt_workflow.cpp.o.d"
  "gantt_workflow"
  "gantt_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gantt_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
