file(REMOVE_RECURSE
  "CMakeFiles/compare_tool.dir/compare_tool.cpp.o"
  "CMakeFiles/compare_tool.dir/compare_tool.cpp.o.d"
  "compare_tool"
  "compare_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
