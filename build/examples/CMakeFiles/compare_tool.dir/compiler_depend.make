# Empty compiler generated dependencies file for compare_tool.
# This may be replaced when dependencies are built.
