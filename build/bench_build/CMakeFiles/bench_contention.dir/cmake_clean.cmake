file(REMOVE_RECURSE
  "../bench/bench_contention"
  "../bench/bench_contention.pdb"
  "CMakeFiles/bench_contention.dir/bench_contention.cpp.o"
  "CMakeFiles/bench_contention.dir/bench_contention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
