file(REMOVE_RECURSE
  "../bench/bench_speedup_vs_procs"
  "../bench/bench_speedup_vs_procs.pdb"
  "CMakeFiles/bench_speedup_vs_procs.dir/bench_speedup_vs_procs.cpp.o"
  "CMakeFiles/bench_speedup_vs_procs.dir/bench_speedup_vs_procs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speedup_vs_procs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
