file(REMOVE_RECURSE
  "../bench/bench_duplication"
  "../bench/bench_duplication.pdb"
  "CMakeFiles/bench_duplication.dir/bench_duplication.cpp.o"
  "CMakeFiles/bench_duplication.dir/bench_duplication.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_duplication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
