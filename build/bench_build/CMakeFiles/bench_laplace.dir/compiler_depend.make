# Empty compiler generated dependencies file for bench_laplace.
# This may be replaced when dependencies are built.
