file(REMOVE_RECURSE
  "../bench/bench_laplace"
  "../bench/bench_laplace.pdb"
  "CMakeFiles/bench_laplace.dir/bench_laplace.cpp.o"
  "CMakeFiles/bench_laplace.dir/bench_laplace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_laplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
