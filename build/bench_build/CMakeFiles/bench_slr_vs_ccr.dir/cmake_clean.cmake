file(REMOVE_RECURSE
  "../bench/bench_slr_vs_ccr"
  "../bench/bench_slr_vs_ccr.pdb"
  "CMakeFiles/bench_slr_vs_ccr.dir/bench_slr_vs_ccr.cpp.o"
  "CMakeFiles/bench_slr_vs_ccr.dir/bench_slr_vs_ccr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slr_vs_ccr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
