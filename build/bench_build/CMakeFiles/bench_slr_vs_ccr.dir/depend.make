# Empty dependencies file for bench_slr_vs_ccr.
# This may be replaced when dependencies are built.
