file(REMOVE_RECURSE
  "../bench/bench_ablation_insertion"
  "../bench/bench_ablation_insertion.pdb"
  "CMakeFiles/bench_ablation_insertion.dir/bench_ablation_insertion.cpp.o"
  "CMakeFiles/bench_ablation_insertion.dir/bench_ablation_insertion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
