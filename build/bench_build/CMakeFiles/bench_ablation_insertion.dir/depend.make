# Empty dependencies file for bench_ablation_insertion.
# This may be replaced when dependencies are built.
