file(REMOVE_RECURSE
  "../bench/bench_optimality"
  "../bench/bench_optimality.pdb"
  "CMakeFiles/bench_optimality.dir/bench_optimality.cpp.o"
  "CMakeFiles/bench_optimality.dir/bench_optimality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
