file(REMOVE_RECURSE
  "../bench/bench_slr_vs_beta"
  "../bench/bench_slr_vs_beta.pdb"
  "CMakeFiles/bench_slr_vs_beta.dir/bench_slr_vs_beta.cpp.o"
  "CMakeFiles/bench_slr_vs_beta.dir/bench_slr_vs_beta.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slr_vs_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
