file(REMOVE_RECURSE
  "../bench/bench_metaheuristic"
  "../bench/bench_metaheuristic.pdb"
  "CMakeFiles/bench_metaheuristic.dir/bench_metaheuristic.cpp.o"
  "CMakeFiles/bench_metaheuristic.dir/bench_metaheuristic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metaheuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
