# Empty dependencies file for bench_metaheuristic.
# This may be replaced when dependencies are built.
