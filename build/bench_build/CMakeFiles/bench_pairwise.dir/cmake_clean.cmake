file(REMOVE_RECURSE
  "../bench/bench_pairwise"
  "../bench/bench_pairwise.pdb"
  "CMakeFiles/bench_pairwise.dir/bench_pairwise.cpp.o"
  "CMakeFiles/bench_pairwise.dir/bench_pairwise.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pairwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
