file(REMOVE_RECURSE
  "../bench/bench_ablation_rank"
  "../bench/bench_ablation_rank.pdb"
  "CMakeFiles/bench_ablation_rank.dir/bench_ablation_rank.cpp.o"
  "CMakeFiles/bench_ablation_rank.dir/bench_ablation_rank.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
