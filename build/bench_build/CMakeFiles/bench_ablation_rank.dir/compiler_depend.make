# Empty compiler generated dependencies file for bench_ablation_rank.
# This may be replaced when dependencies are built.
