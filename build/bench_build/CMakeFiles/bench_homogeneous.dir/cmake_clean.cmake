file(REMOVE_RECURSE
  "../bench/bench_homogeneous"
  "../bench/bench_homogeneous.pdb"
  "CMakeFiles/bench_homogeneous.dir/bench_homogeneous.cpp.o"
  "CMakeFiles/bench_homogeneous.dir/bench_homogeneous.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_homogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
