file(REMOVE_RECURSE
  "../bench/bench_gauss"
  "../bench/bench_gauss.pdb"
  "CMakeFiles/bench_gauss.dir/bench_gauss.cpp.o"
  "CMakeFiles/bench_gauss.dir/bench_gauss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gauss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
