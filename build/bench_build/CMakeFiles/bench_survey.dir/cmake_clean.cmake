file(REMOVE_RECURSE
  "../bench/bench_survey"
  "../bench/bench_survey.pdb"
  "CMakeFiles/bench_survey.dir/bench_survey.cpp.o"
  "CMakeFiles/bench_survey.dir/bench_survey.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
