file(REMOVE_RECURSE
  "../bench/bench_slr_vs_size"
  "../bench/bench_slr_vs_size.pdb"
  "CMakeFiles/bench_slr_vs_size.dir/bench_slr_vs_size.cpp.o"
  "CMakeFiles/bench_slr_vs_size.dir/bench_slr_vs_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slr_vs_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
