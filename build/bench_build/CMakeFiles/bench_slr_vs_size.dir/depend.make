# Empty dependencies file for bench_slr_vs_size.
# This may be replaced when dependencies are built.
