file(REMOVE_RECURSE
  "../bench/bench_runtime"
  "../bench/bench_runtime.pdb"
  "CMakeFiles/bench_runtime.dir/bench_runtime.cpp.o"
  "CMakeFiles/bench_runtime.dir/bench_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
