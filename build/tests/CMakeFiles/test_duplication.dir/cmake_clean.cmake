file(REMOVE_RECURSE
  "CMakeFiles/test_duplication.dir/test_duplication.cpp.o"
  "CMakeFiles/test_duplication.dir/test_duplication.cpp.o.d"
  "test_duplication"
  "test_duplication.pdb"
  "test_duplication[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_duplication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
