# Empty compiler generated dependencies file for test_duplication.
# This may be replaced when dependencies are built.
