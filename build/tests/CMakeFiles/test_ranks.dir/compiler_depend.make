# Empty compiler generated dependencies file for test_ranks.
# This may be replaced when dependencies are built.
