
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_schedule_io.cpp" "tests/CMakeFiles/test_schedule_io.dir/test_schedule_io.cpp.o" "gcc" "tests/CMakeFiles/test_schedule_io.dir/test_schedule_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/tsched_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsched_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/tsched_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tsched_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tsched_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/tsched_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tsched_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
