# Empty compiler generated dependencies file for test_algorithm_behaviors.
# This may be replaced when dependencies are built.
