file(REMOVE_RECURSE
  "CMakeFiles/test_algorithm_behaviors.dir/test_algorithm_behaviors.cpp.o"
  "CMakeFiles/test_algorithm_behaviors.dir/test_algorithm_behaviors.cpp.o.d"
  "test_algorithm_behaviors"
  "test_algorithm_behaviors.pdb"
  "test_algorithm_behaviors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorithm_behaviors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
