# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_table_args[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_dag[1]_include.cmake")
include("/root/repo/build/tests/test_graph_algorithms[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_builder[1]_include.cmake")
include("/root/repo/build/tests/test_ranks[1]_include.cmake")
include("/root/repo/build/tests/test_schedulers[1]_include.cmake")
include("/root/repo/build/tests/test_algorithm_behaviors[1]_include.cmake")
include("/root/repo/build/tests/test_util_misc[1]_include.cmake")
include("/root/repo/build/tests/test_duplication[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_contention[1]_include.cmake")
include("/root/repo/build/tests/test_executor[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_optimal[1]_include.cmake")
include("/root/repo/build/tests/test_schedule_io[1]_include.cmake")
include("/root/repo/build/tests/test_gantt[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
