# Empty compiler generated dependencies file for tsched_graph.
# This may be replaced when dependencies are built.
