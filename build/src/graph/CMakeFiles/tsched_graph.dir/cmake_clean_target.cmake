file(REMOVE_RECURSE
  "libtsched_graph.a"
)
