file(REMOVE_RECURSE
  "CMakeFiles/tsched_graph.dir/algorithms.cpp.o"
  "CMakeFiles/tsched_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/tsched_graph.dir/dag.cpp.o"
  "CMakeFiles/tsched_graph.dir/dag.cpp.o.d"
  "CMakeFiles/tsched_graph.dir/serialize.cpp.o"
  "CMakeFiles/tsched_graph.dir/serialize.cpp.o.d"
  "libtsched_graph.a"
  "libtsched_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsched_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
