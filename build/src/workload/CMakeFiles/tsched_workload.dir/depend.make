# Empty dependencies file for tsched_workload.
# This may be replaced when dependencies are built.
