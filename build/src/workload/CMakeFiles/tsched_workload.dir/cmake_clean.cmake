file(REMOVE_RECURSE
  "CMakeFiles/tsched_workload.dir/costs.cpp.o"
  "CMakeFiles/tsched_workload.dir/costs.cpp.o.d"
  "CMakeFiles/tsched_workload.dir/instance.cpp.o"
  "CMakeFiles/tsched_workload.dir/instance.cpp.o.d"
  "CMakeFiles/tsched_workload.dir/random_dag.cpp.o"
  "CMakeFiles/tsched_workload.dir/random_dag.cpp.o.d"
  "CMakeFiles/tsched_workload.dir/structured.cpp.o"
  "CMakeFiles/tsched_workload.dir/structured.cpp.o.d"
  "libtsched_workload.a"
  "libtsched_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsched_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
