file(REMOVE_RECURSE
  "libtsched_workload.a"
)
