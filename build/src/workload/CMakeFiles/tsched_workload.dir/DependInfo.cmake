
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/costs.cpp" "src/workload/CMakeFiles/tsched_workload.dir/costs.cpp.o" "gcc" "src/workload/CMakeFiles/tsched_workload.dir/costs.cpp.o.d"
  "/root/repo/src/workload/instance.cpp" "src/workload/CMakeFiles/tsched_workload.dir/instance.cpp.o" "gcc" "src/workload/CMakeFiles/tsched_workload.dir/instance.cpp.o.d"
  "/root/repo/src/workload/random_dag.cpp" "src/workload/CMakeFiles/tsched_workload.dir/random_dag.cpp.o" "gcc" "src/workload/CMakeFiles/tsched_workload.dir/random_dag.cpp.o.d"
  "/root/repo/src/workload/structured.cpp" "src/workload/CMakeFiles/tsched_workload.dir/structured.cpp.o" "gcc" "src/workload/CMakeFiles/tsched_workload.dir/structured.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tsched_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/tsched_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
