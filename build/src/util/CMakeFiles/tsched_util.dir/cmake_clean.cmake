file(REMOVE_RECURSE
  "CMakeFiles/tsched_util.dir/args.cpp.o"
  "CMakeFiles/tsched_util.dir/args.cpp.o.d"
  "CMakeFiles/tsched_util.dir/log.cpp.o"
  "CMakeFiles/tsched_util.dir/log.cpp.o.d"
  "CMakeFiles/tsched_util.dir/rng.cpp.o"
  "CMakeFiles/tsched_util.dir/rng.cpp.o.d"
  "CMakeFiles/tsched_util.dir/stats.cpp.o"
  "CMakeFiles/tsched_util.dir/stats.cpp.o.d"
  "CMakeFiles/tsched_util.dir/table.cpp.o"
  "CMakeFiles/tsched_util.dir/table.cpp.o.d"
  "CMakeFiles/tsched_util.dir/thread_pool.cpp.o"
  "CMakeFiles/tsched_util.dir/thread_pool.cpp.o.d"
  "libtsched_util.a"
  "libtsched_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsched_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
