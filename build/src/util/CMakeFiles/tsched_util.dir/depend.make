# Empty dependencies file for tsched_util.
# This may be replaced when dependencies are built.
