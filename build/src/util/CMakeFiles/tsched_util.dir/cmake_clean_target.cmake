file(REMOVE_RECURSE
  "libtsched_util.a"
)
