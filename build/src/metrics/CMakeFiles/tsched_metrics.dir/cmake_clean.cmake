file(REMOVE_RECURSE
  "CMakeFiles/tsched_metrics.dir/metrics.cpp.o"
  "CMakeFiles/tsched_metrics.dir/metrics.cpp.o.d"
  "CMakeFiles/tsched_metrics.dir/pairwise.cpp.o"
  "CMakeFiles/tsched_metrics.dir/pairwise.cpp.o.d"
  "CMakeFiles/tsched_metrics.dir/runner.cpp.o"
  "CMakeFiles/tsched_metrics.dir/runner.cpp.o.d"
  "libtsched_metrics.a"
  "libtsched_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsched_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
