file(REMOVE_RECURSE
  "libtsched_metrics.a"
)
