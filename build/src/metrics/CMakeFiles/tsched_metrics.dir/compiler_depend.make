# Empty compiler generated dependencies file for tsched_metrics.
# This may be replaced when dependencies are built.
