file(REMOVE_RECURSE
  "libtsched_platform.a"
)
