file(REMOVE_RECURSE
  "CMakeFiles/tsched_platform.dir/cost_matrix.cpp.o"
  "CMakeFiles/tsched_platform.dir/cost_matrix.cpp.o.d"
  "CMakeFiles/tsched_platform.dir/link_model.cpp.o"
  "CMakeFiles/tsched_platform.dir/link_model.cpp.o.d"
  "CMakeFiles/tsched_platform.dir/machine.cpp.o"
  "CMakeFiles/tsched_platform.dir/machine.cpp.o.d"
  "CMakeFiles/tsched_platform.dir/problem.cpp.o"
  "CMakeFiles/tsched_platform.dir/problem.cpp.o.d"
  "libtsched_platform.a"
  "libtsched_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsched_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
