# Empty compiler generated dependencies file for tsched_platform.
# This may be replaced when dependencies are built.
