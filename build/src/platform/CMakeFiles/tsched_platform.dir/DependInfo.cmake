
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cost_matrix.cpp" "src/platform/CMakeFiles/tsched_platform.dir/cost_matrix.cpp.o" "gcc" "src/platform/CMakeFiles/tsched_platform.dir/cost_matrix.cpp.o.d"
  "/root/repo/src/platform/link_model.cpp" "src/platform/CMakeFiles/tsched_platform.dir/link_model.cpp.o" "gcc" "src/platform/CMakeFiles/tsched_platform.dir/link_model.cpp.o.d"
  "/root/repo/src/platform/machine.cpp" "src/platform/CMakeFiles/tsched_platform.dir/machine.cpp.o" "gcc" "src/platform/CMakeFiles/tsched_platform.dir/machine.cpp.o.d"
  "/root/repo/src/platform/problem.cpp" "src/platform/CMakeFiles/tsched_platform.dir/problem.cpp.o" "gcc" "src/platform/CMakeFiles/tsched_platform.dir/problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tsched_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
