file(REMOVE_RECURSE
  "libtsched_sched.a"
)
