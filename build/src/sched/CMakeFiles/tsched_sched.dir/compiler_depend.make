# Empty compiler generated dependencies file for tsched_sched.
# This may be replaced when dependencies are built.
