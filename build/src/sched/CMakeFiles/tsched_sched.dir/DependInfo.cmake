
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/builder.cpp" "src/sched/CMakeFiles/tsched_sched.dir/builder.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/builder.cpp.o.d"
  "/root/repo/src/sched/clustering.cpp" "src/sched/CMakeFiles/tsched_sched.dir/clustering.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/clustering.cpp.o.d"
  "/root/repo/src/sched/contention_aware.cpp" "src/sched/CMakeFiles/tsched_sched.dir/contention_aware.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/contention_aware.cpp.o.d"
  "/root/repo/src/sched/cpop.cpp" "src/sched/CMakeFiles/tsched_sched.dir/cpop.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/cpop.cpp.o.d"
  "/root/repo/src/sched/dls.cpp" "src/sched/CMakeFiles/tsched_sched.dir/dls.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/dls.cpp.o.d"
  "/root/repo/src/sched/duplication.cpp" "src/sched/CMakeFiles/tsched_sched.dir/duplication.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/duplication.cpp.o.d"
  "/root/repo/src/sched/gantt.cpp" "src/sched/CMakeFiles/tsched_sched.dir/gantt.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/gantt.cpp.o.d"
  "/root/repo/src/sched/hcpt.cpp" "src/sched/CMakeFiles/tsched_sched.dir/hcpt.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/hcpt.cpp.o.d"
  "/root/repo/src/sched/heft.cpp" "src/sched/CMakeFiles/tsched_sched.dir/heft.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/heft.cpp.o.d"
  "/root/repo/src/sched/list_baselines.cpp" "src/sched/CMakeFiles/tsched_sched.dir/list_baselines.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/list_baselines.cpp.o.d"
  "/root/repo/src/sched/lookahead_heft.cpp" "src/sched/CMakeFiles/tsched_sched.dir/lookahead_heft.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/lookahead_heft.cpp.o.d"
  "/root/repo/src/sched/optimal.cpp" "src/sched/CMakeFiles/tsched_sched.dir/optimal.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/optimal.cpp.o.d"
  "/root/repo/src/sched/peft.cpp" "src/sched/CMakeFiles/tsched_sched.dir/peft.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/peft.cpp.o.d"
  "/root/repo/src/sched/ranks.cpp" "src/sched/CMakeFiles/tsched_sched.dir/ranks.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/ranks.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/tsched_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/schedule_io.cpp" "src/sched/CMakeFiles/tsched_sched.dir/schedule_io.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/schedule_io.cpp.o.d"
  "/root/repo/src/sched/validate.cpp" "src/sched/CMakeFiles/tsched_sched.dir/validate.cpp.o" "gcc" "src/sched/CMakeFiles/tsched_sched.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tsched_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/tsched_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
