
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/decoder.cpp" "src/opt/CMakeFiles/tsched_opt.dir/decoder.cpp.o" "gcc" "src/opt/CMakeFiles/tsched_opt.dir/decoder.cpp.o.d"
  "/root/repo/src/opt/genetic.cpp" "src/opt/CMakeFiles/tsched_opt.dir/genetic.cpp.o" "gcc" "src/opt/CMakeFiles/tsched_opt.dir/genetic.cpp.o.d"
  "/root/repo/src/opt/local_search.cpp" "src/opt/CMakeFiles/tsched_opt.dir/local_search.cpp.o" "gcc" "src/opt/CMakeFiles/tsched_opt.dir/local_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/tsched_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsched_util.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/tsched_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tsched_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
