# Empty dependencies file for tsched_opt.
# This may be replaced when dependencies are built.
