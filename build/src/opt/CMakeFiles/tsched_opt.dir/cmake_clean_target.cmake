file(REMOVE_RECURSE
  "libtsched_opt.a"
)
