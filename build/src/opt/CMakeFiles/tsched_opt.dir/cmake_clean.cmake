file(REMOVE_RECURSE
  "CMakeFiles/tsched_opt.dir/decoder.cpp.o"
  "CMakeFiles/tsched_opt.dir/decoder.cpp.o.d"
  "CMakeFiles/tsched_opt.dir/genetic.cpp.o"
  "CMakeFiles/tsched_opt.dir/genetic.cpp.o.d"
  "CMakeFiles/tsched_opt.dir/local_search.cpp.o"
  "CMakeFiles/tsched_opt.dir/local_search.cpp.o.d"
  "libtsched_opt.a"
  "libtsched_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsched_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
