file(REMOVE_RECURSE
  "CMakeFiles/tsched_core.dir/ils.cpp.o"
  "CMakeFiles/tsched_core.dir/ils.cpp.o.d"
  "CMakeFiles/tsched_core.dir/registry.cpp.o"
  "CMakeFiles/tsched_core.dir/registry.cpp.o.d"
  "libtsched_core.a"
  "libtsched_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsched_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
