file(REMOVE_RECURSE
  "libtsched_core.a"
)
