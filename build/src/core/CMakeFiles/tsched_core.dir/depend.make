# Empty dependencies file for tsched_core.
# This may be replaced when dependencies are built.
