file(REMOVE_RECURSE
  "CMakeFiles/tsched_sim.dir/contention.cpp.o"
  "CMakeFiles/tsched_sim.dir/contention.cpp.o.d"
  "CMakeFiles/tsched_sim.dir/event_sim.cpp.o"
  "CMakeFiles/tsched_sim.dir/event_sim.cpp.o.d"
  "CMakeFiles/tsched_sim.dir/executor.cpp.o"
  "CMakeFiles/tsched_sim.dir/executor.cpp.o.d"
  "libtsched_sim.a"
  "libtsched_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsched_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
