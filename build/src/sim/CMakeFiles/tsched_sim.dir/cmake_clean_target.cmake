file(REMOVE_RECURSE
  "libtsched_sim.a"
)
