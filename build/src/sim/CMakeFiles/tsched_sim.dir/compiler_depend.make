# Empty compiler generated dependencies file for tsched_sim.
# This may be replaced when dependencies are built.
