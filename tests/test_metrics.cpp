// Tests for the metrics module: SLR / speedup / efficiency, the pairwise
// matrix, and the experiment runner.
#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "metrics/metrics.hpp"
#include "metrics/pairwise.hpp"
#include "metrics/robustness.hpp"
#include "metrics/runner.hpp"
#include "workload/instance.hpp"

namespace tsched {
namespace {

/// Chain of 2 unit-cost tasks on 2 procs, no comm data.
Problem chain2() {
    Dag dag;
    dag.add_task(1.0);
    dag.add_task(1.0);
    dag.add_edge(0, 1, 0.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs = CostMatrix::uniform(dag, 2);
    return Problem(std::move(dag), std::move(machine), std::move(costs));
}

TEST(Metrics, HandComputedValues) {
    const Problem problem = chain2();
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 1.0);
    s.add(1, 0, 1.0, 2.0);
    // CP lower bound = 2, serial best = 2, makespan = 2.
    EXPECT_DOUBLE_EQ(slr(s, problem), 1.0);
    EXPECT_DOUBLE_EQ(speedup(s, problem), 1.0);
    EXPECT_DOUBLE_EQ(efficiency(s, problem), 0.5);
    EXPECT_DOUBLE_EQ(utilization(s), 0.5);  // proc 1 fully idle
}

TEST(Metrics, SlrIsAtLeastOneForValidSchedules) {
    workload::InstanceParams params;
    params.size = 50;
    params.num_procs = 4;
    const Problem problem = workload::make_instance(params, 13);
    for (const auto* name : {"ils", "heft", "cpop", "random"}) {
        const Schedule s = make_scheduler(name)->schedule(problem);
        EXPECT_GE(slr(s, problem), 1.0 - 1e-9) << name;
        EXPECT_GT(speedup(s, problem), 0.0) << name;
        EXPECT_LE(efficiency(s, problem), 1.0 + 1e-9) << name;
    }
}

TEST(Pairwise, CountsBetterEqualWorse) {
    PairwiseMatrix m({"a", "b"});
    m.add_trial(std::vector<double>{1.0, 2.0});   // a better
    m.add_trial(std::vector<double>{2.0, 2.0});   // equal
    m.add_trial(std::vector<double>{3.0, 2.5});   // a worse
    EXPECT_EQ(m.num_trials(), 3u);
    EXPECT_EQ(m.better(0, 1), 1u);
    EXPECT_EQ(m.equal(0, 1), 1u);
    EXPECT_EQ(m.worse(0, 1), 1u);
    EXPECT_EQ(m.better(1, 0), 1u);
    EXPECT_NEAR(m.better_pct(0, 1), 100.0 / 3.0, 1e-9);
}

TEST(Pairwise, RelativeEpsilonTreatsNearTiesAsEqual) {
    PairwiseMatrix m({"a", "b"}, 1e-6);
    m.add_trial(std::vector<double>{1000.0, 1000.0000001});
    EXPECT_EQ(m.equal(0, 1), 1u);
}

TEST(Pairwise, RejectsSizeMismatchAndBadIndices) {
    PairwiseMatrix m({"a", "b"});
    EXPECT_THROW(m.add_trial(std::vector<double>{1.0}), std::invalid_argument);
    EXPECT_THROW((void)m.better(0, 5), std::out_of_range);
    EXPECT_THROW(PairwiseMatrix({}), std::invalid_argument);
}

TEST(Pairwise, TablesRender) {
    PairwiseMatrix m({"a", "b"});
    m.add_trial(std::vector<double>{1.0, 2.0});
    const std::string table = m.to_table().to_markdown();
    EXPECT_NE(table.find("A better %"), std::string::npos);
    const std::string grid = m.to_grid().to_markdown();
    EXPECT_NE(grid.find("100/0/0"), std::string::npos);
}

TEST(Runner, AggregatesAndValidates) {
    workload::InstanceParams params;
    params.size = 40;
    params.num_procs = 4;
    const std::vector<std::string> names{"ils", "heft"};
    const auto schedulers = make_schedulers(names);
    const PointResult result = run_point(params, schedulers, 10, 42);

    EXPECT_EQ(result.trials, 10u);
    EXPECT_EQ(result.invalid_schedules, 0u);
    EXPECT_EQ(result.names, names);
    for (const auto& name : names) {
        const auto& agg = result.agg.at(name);
        EXPECT_EQ(agg.slr.count(), 10u);
        EXPECT_GE(agg.slr.min(), 1.0 - 1e-9);
        EXPECT_GT(agg.speedup.mean(), 0.0);
        EXPECT_GE(agg.sched_time_ms.mean(), 0.0);
    }
    // Dual-mode guarantee shows up in the pairwise matrix: ILS never worse.
    EXPECT_EQ(result.pairwise.worse(0, 1), 0u);
}

TEST(Runner, DeterministicAcrossCalls) {
    workload::InstanceParams params;
    params.size = 30;
    params.num_procs = 4;
    const auto schedulers = make_schedulers(std::vector<std::string>{"heft"});
    const auto a = run_point(params, schedulers, 5, 7);
    const auto b = run_point(params, schedulers, 5, 7);
    EXPECT_DOUBLE_EQ(a.agg.at("heft").slr.mean(), b.agg.at("heft").slr.mean());
    EXPECT_DOUBLE_EQ(a.agg.at("heft").makespan.sum(), b.agg.at("heft").makespan.sum());
}

TEST(Runner, PoolParallelTrialsMatchSerialBitExactly) {
    // The --jobs path: trials fan out across a pool, samples are folded in
    // trial order, so every deterministic aggregate must be bit-identical
    // to the serial run's.  ils-d exercises the speculation machinery
    // (checkpoint/rollback) concurrently, which also gives TSan a workload.
    workload::InstanceParams params;
    params.size = 40;
    params.num_procs = 4;
    params.ccr = 2.0;
    const auto schedulers = make_schedulers(std::vector<std::string>{"ils-d", "heft", "lheft"});
    const PointResult serial = run_point(params, schedulers, 8, 2007, nullptr);
    ThreadPool pool(4);
    const PointResult parallel = run_point(params, schedulers, 8, 2007, &pool);

    EXPECT_EQ(serial.invalid_schedules, parallel.invalid_schedules);
    for (const auto& name : serial.names) {
        const auto& a = serial.agg.at(name);
        const auto& b = parallel.agg.at(name);
        EXPECT_EQ(a.slr.count(), b.slr.count()) << name;
        EXPECT_DOUBLE_EQ(a.slr.mean(), b.slr.mean()) << name;
        EXPECT_DOUBLE_EQ(a.slr.ci95_halfwidth(), b.slr.ci95_halfwidth()) << name;
        EXPECT_DOUBLE_EQ(a.speedup.sum(), b.speedup.sum()) << name;
        EXPECT_DOUBLE_EQ(a.efficiency.sum(), b.efficiency.sum()) << name;
        EXPECT_DOUBLE_EQ(a.makespan.sum(), b.makespan.sum()) << name;
        EXPECT_DOUBLE_EQ(a.duplicates.sum(), b.duplicates.sum()) << name;
    }
    for (std::size_t i = 0; i < serial.names.size(); ++i) {
        for (std::size_t j = 0; j < serial.names.size(); ++j) {
            EXPECT_EQ(serial.pairwise.better(i, j), parallel.pairwise.better(i, j));
            EXPECT_EQ(serial.pairwise.equal(i, j), parallel.pairwise.equal(i, j));
        }
    }
}

TEST(Runner, PoolOfOneWorkerTakesSerialPath) {
    workload::InstanceParams params;
    params.size = 20;
    params.num_procs = 4;
    const auto schedulers = make_schedulers(std::vector<std::string>{"heft"});
    ThreadPool pool(1);
    const auto a = run_point(params, schedulers, 3, 7, &pool);
    const auto b = run_point(params, schedulers, 3, 7, nullptr);
    EXPECT_DOUBLE_EQ(a.agg.at("heft").makespan.sum(), b.agg.at("heft").makespan.sum());
}

TEST(Runner, RejectsEmptySchedulerSet) {
    workload::InstanceParams params;
    EXPECT_THROW((void)run_point(params, std::span<const Scheduler* const>{}, 1, 0),
                 std::invalid_argument);
}

TEST(Robustness, MonteCarloIsDeterministicAndSane) {
    workload::InstanceParams params;
    params.size = 40;
    params.num_procs = 4;
    const Problem problem = workload::make_instance(params, 17);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    const auto policy = make_repair_policy("reschedule-suffix");
    RobustnessParams rp;
    rp.samples = 16;
    const auto a = monte_carlo_degradation(schedule, problem, *policy, rp, 5);
    const auto b = monte_carlo_degradation(schedule, problem, *policy, rp, 5);
    EXPECT_EQ(a.expected_degradation, b.expected_degradation);
    EXPECT_EQ(a.p99_degradation, b.p99_degradation);
    EXPECT_EQ(a.worst_degradation, b.worst_degradation);
    // The ordering mean <= p99 <= worst holds by construction, and a crash
    // can never *shrink* the realised makespan below... well, it can with a
    // smarter repair, but never below a loose floor of the static CP bound.
    EXPECT_LE(a.expected_degradation, a.p99_degradation + 1e-12);
    EXPECT_LE(a.p99_degradation, a.worst_degradation + 1e-12);
    EXPECT_GT(a.expected_degradation, 0.0);
    // A different seed samples different crashes.
    const auto c = monte_carlo_degradation(schedule, problem, *policy, rp, 6);
    EXPECT_NE(a.expected_degradation, c.expected_degradation);
}

TEST(Robustness, MonteCarloRejectsZeroSamples) {
    const Problem problem = chain2();
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 1.0);
    s.add(1, 0, 1.0, 2.0);
    RobustnessParams rp;
    rp.samples = 0;
    const auto policy = make_repair_policy("none");
    EXPECT_THROW((void)monte_carlo_degradation(s, problem, *policy, rp, 1),
                 std::invalid_argument);
}

TEST(Robustness, SlackScoreBoundsAndHandValue) {
    // Two independent unit tasks on separate procs, makespan 2: the task
    // finishing at 1 has one unit of slack, the critical one has none.
    Dag dag;
    dag.add_task(1.0);
    dag.add_task(2.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs = CostMatrix::uniform(dag, 2);
    const Problem problem(std::move(dag), std::move(machine), std::move(costs));
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 1.0);
    s.add(1, 1, 0.0, 2.0);
    // Slacks: task 0 -> (2 - 1)/2 = 0.5, task 1 -> 0.  Mean = 0.25.
    EXPECT_DOUBLE_EQ(slack_robustness(s, problem), 0.25);
}

TEST(Robustness, SlackScoreStaysInUnitIntervalOnRealSchedules) {
    workload::InstanceParams params;
    params.size = 50;
    params.num_procs = 8;
    const Problem problem = workload::make_instance(params, 23);
    for (const auto* name : {"heft", "ils", "ils-d", "dsh"}) {
        const Schedule s = make_scheduler(name)->schedule(problem);
        const double score = slack_robustness(s, problem);
        EXPECT_GE(score, 0.0) << name;
        EXPECT_LE(score, 1.0) << name;
    }
}

}  // namespace
}  // namespace tsched
