// Golden-battery determinism test for the speculation-heavy schedulers.
//
// The checkpoint/undo rewrite of ILS-D, Lookahead-HEFT, DSH, and BTDH (which
// replaced clone-per-candidate trial evaluation) is required to be
// *behaviour-preserving*: every schedule must come out bit-identical to the
// clone-based implementation's.  The table below pins makespans and
// placement counts (duplicates included) that were recorded from the
// pre-rewrite implementation over a seeded instance battery; any change to
// the speculation machinery that alters a single placement decision will
// move at least one of these 168 values.
//
// Makespans are compared with a 1e-9 relative tolerance: the recorded
// values are exact on the reference platform, but cross-compiler FP
// contraction differences (FMA) in the instance generator or cost sums may
// legally perturb the last ulp.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "net/codec.hpp"
#include "net/frame.hpp"
#include "sched/repair.hpp"
#include "sched/schedule_io.hpp"
#include "serve/request.hpp"
#include "serve/request_trace.hpp"
#include "serve/serve_engine.hpp"
#include "sim/faults.hpp"
#include "util/thread_pool.hpp"
#include "workload/instance.hpp"

namespace tsched {
namespace {

struct GoldenRow {
    std::size_t point;
    std::uint64_t seed;
    const char* algo;
    double makespan;
    std::size_t placements;
};

struct BatteryPoint {
    workload::Shape shape;
    std::size_t size;
    std::size_t procs;
    double ccr;
    double beta;
};

const std::vector<BatteryPoint>& battery() {
    static const std::vector<BatteryPoint> pts{
        {workload::Shape::kLayered, 30, 4, 0.5, 0.5},
        {workload::Shape::kLayered, 60, 8, 2.0, 1.0},
        {workload::Shape::kGnp, 40, 4, 1.0, 0.5},
        {workload::Shape::kGauss, 8, 4, 2.0, 0.75},
        {workload::Shape::kFft, 16, 8, 0.5, 0.25},
        {workload::Shape::kForkJoin, 12, 4, 1.0, 1.5},
        {workload::Shape::kOutTree, 4, 8, 2.0, 0.5},
        {workload::Shape::kMontage, 10, 4, 1.0, 0.5},
    };
    return pts;
}

const std::vector<GoldenRow>& golden_rows() {
    static const std::vector<GoldenRow> rows{
    {0, 2007ULL, "ils", 172.49548805877441, 30},
    {0, 2007ULL, "ils-d", 172.49548805877441, 31},
    {0, 2007ULL, "lheft", 177.45402445012775, 30},
    {0, 2007ULL, "dsh", 171.88363208519223, 32},
    {0, 2007ULL, "btdh", 171.88363208519223, 32},
    {0, 2007ULL, "heft", 178.43392556736518, 30},
    {0, 2007ULL, "ils-d-k3", 172.49548805877441, 31},
    {0, 42ULL, "ils", 158.81620657187543, 30},
    {0, 42ULL, "ils-d", 160.81771426988178, 32},
    {0, 42ULL, "lheft", 157.50451277644041, 30},
    {0, 42ULL, "dsh", 165.48220974480728, 32},
    {0, 42ULL, "btdh", 165.48220974480728, 32},
    {0, 42ULL, "heft", 158.81620657187543, 30},
    {0, 42ULL, "ils-d-k3", 160.81771426988178, 32},
    {0, 99991ULL, "ils", 204.23479085109636, 30},
    {0, 99991ULL, "ils-d", 204.23479085109636, 32},
    {0, 99991ULL, "lheft", 220.57324152852323, 30},
    {0, 99991ULL, "dsh", 210.80649073062784, 31},
    {0, 99991ULL, "btdh", 210.80649073062784, 32},
    {0, 99991ULL, "heft", 204.23479085109636, 30},
    {0, 99991ULL, "ils-d-k3", 204.23479085109636, 32},
    {1, 2007ULL, "ils", 378.84621108701884, 60},
    {1, 2007ULL, "ils-d", 321.41575724130684, 97},
    {1, 2007ULL, "lheft", 369.23246283326142, 60},
    {1, 2007ULL, "dsh", 316.03728645267518, 97},
    {1, 2007ULL, "btdh", 315.18717014170545, 124},
    {1, 2007ULL, "heft", 378.84621108701884, 60},
    {1, 2007ULL, "ils-d-k3", 321.41575724130684, 97},
    {1, 42ULL, "ils", 450.43278496089977, 60},
    {1, 42ULL, "ils-d", 354.71466222055631, 98},
    {1, 42ULL, "lheft", 458.51163580491379, 60},
    {1, 42ULL, "dsh", 368.73333431238945, 94},
    {1, 42ULL, "btdh", 342.39527702504631, 131},
    {1, 42ULL, "heft", 450.43278496089977, 60},
    {1, 42ULL, "ils-d-k3", 354.71466222055631, 98},
    {1, 99991ULL, "ils", 352.35910221107304, 60},
    {1, 99991ULL, "ils-d", 291.38149205445944, 90},
    {1, 99991ULL, "lheft", 398.05816784231797, 60},
    {1, 99991ULL, "dsh", 281.04231615473748, 91},
    {1, 99991ULL, "btdh", 284.09240405102543, 112},
    {1, 99991ULL, "heft", 366.2196691746027, 60},
    {1, 99991ULL, "ils-d-k3", 287.65711175559466, 82},
    {2, 2007ULL, "ils", 241.25616982545685, 40},
    {2, 2007ULL, "ils-d", 246.41143414969545, 45},
    {2, 2007ULL, "lheft", 241.25616982545685, 40},
    {2, 2007ULL, "dsh", 240.96007219151167, 45},
    {2, 2007ULL, "btdh", 243.76175061405695, 45},
    {2, 2007ULL, "heft", 264.3692853632262, 40},
    {2, 2007ULL, "ils-d-k3", 246.41143414969545, 45},
    {2, 42ULL, "ils", 220.61270183197874, 40},
    {2, 42ULL, "ils-d", 213.44616349336545, 46},
    {2, 42ULL, "lheft", 240.61727438642606, 40},
    {2, 42ULL, "dsh", 235.29849559708109, 45},
    {2, 42ULL, "btdh", 235.73087558650806, 53},
    {2, 42ULL, "heft", 240.77986795343446, 40},
    {2, 42ULL, "ils-d-k3", 213.44616349336545, 46},
    {2, 99991ULL, "ils", 270.82153328764878, 40},
    {2, 99991ULL, "ils-d", 267.26216502469811, 50},
    {2, 99991ULL, "lheft", 279.94960137518285, 40},
    {2, 99991ULL, "dsh", 276.57956351725835, 51},
    {2, 99991ULL, "btdh", 272.91121210762498, 54},
    {2, 99991ULL, "heft", 274.40544593343452, 40},
    {2, 99991ULL, "ils-d-k3", 267.26216502469811, 50},
    {3, 2007ULL, "ils", 420.82860477313181, 35},
    {3, 2007ULL, "ils-d", 359.92378361878383, 54},
    {3, 2007ULL, "lheft", 445.37089613629462, 35},
    {3, 2007ULL, "dsh", 380.5428384740984, 53},
    {3, 2007ULL, "btdh", 351.44092656744078, 59},
    {3, 2007ULL, "heft", 420.82860477313181, 35},
    {3, 2007ULL, "ils-d-k3", 359.92378361878383, 54},
    {3, 42ULL, "ils", 375.35235374473075, 35},
    {3, 42ULL, "ils-d", 358.81291917023071, 52},
    {3, 42ULL, "lheft", 434.14945215158599, 35},
    {3, 42ULL, "dsh", 379.72836293742807, 56},
    {3, 42ULL, "btdh", 338.0463344097937, 54},
    {3, 42ULL, "heft", 405.25396170140334, 35},
    {3, 42ULL, "ils-d-k3", 358.81291917023071, 52},
    {3, 99991ULL, "ils", 423.15967998510951, 35},
    {3, 99991ULL, "ils-d", 363.96312705241826, 56},
    {3, 99991ULL, "lheft", 429.62489619658146, 35},
    {3, 99991ULL, "dsh", 356.00304501695985, 52},
    {3, 99991ULL, "btdh", 363.92608092492679, 58},
    {3, 99991ULL, "heft", 424.72016878703567, 35},
    {3, 99991ULL, "ils-d-k3", 363.96312705241826, 56},
    {4, 2007ULL, "ils", 211.39458655875586, 80},
    {4, 2007ULL, "ils-d", 211.39458655875586, 80},
    {4, 2007ULL, "lheft", 212.28785878421903, 80},
    {4, 2007ULL, "dsh", 211.39458655875586, 80},
    {4, 2007ULL, "btdh", 211.39458655875586, 80},
    {4, 2007ULL, "heft", 211.39458655875586, 80},
    {4, 2007ULL, "ils-d-k3", 211.02101933696323, 80},
    {4, 42ULL, "ils", 208.6543792681945, 80},
    {4, 42ULL, "ils-d", 212.99152898829297, 82},
    {4, 42ULL, "lheft", 213.72089811247949, 80},
    {4, 42ULL, "dsh", 212.99152898829297, 82},
    {4, 42ULL, "btdh", 212.99152898829297, 82},
    {4, 42ULL, "heft", 208.6543792681945, 80},
    {4, 42ULL, "ils-d-k3", 212.99152898829297, 82},
    {4, 99991ULL, "ils", 209.52120363707499, 80},
    {4, 99991ULL, "ils-d", 209.52120363707499, 80},
    {4, 99991ULL, "lheft", 209.41546092434791, 80},
    {4, 99991ULL, "dsh", 209.52120363707499, 80},
    {4, 99991ULL, "btdh", 209.52120363707499, 80},
    {4, 99991ULL, "heft", 209.52120363707499, 80},
    {4, 99991ULL, "ils-d-k3", 209.52120363707499, 80},
    {5, 2007ULL, "ils", 362.29423620446562, 53},
    {5, 2007ULL, "ils-d", 344.52693930488124, 62},
    {5, 2007ULL, "lheft", 344.71313699791597, 53},
    {5, 2007ULL, "dsh", 344.52693930488124, 62},
    {5, 2007ULL, "btdh", 338.22797590745284, 69},
    {5, 2007ULL, "heft", 362.29423620446562, 53},
    {5, 2007ULL, "ils-d-k3", 344.52693930488124, 62},
    {5, 42ULL, "ils", 375.91148802727707, 53},
    {5, 42ULL, "ils-d", 333.97123296533596, 67},
    {5, 42ULL, "lheft", 354.17234097570537, 53},
    {5, 42ULL, "dsh", 333.97123296533596, 67},
    {5, 42ULL, "btdh", 333.86266911690393, 76},
    {5, 42ULL, "heft", 375.91148802727707, 53},
    {5, 42ULL, "ils-d-k3", 333.97123296533596, 67},
    {5, 99991ULL, "ils", 353.48471378642358, 53},
    {5, 99991ULL, "ils-d", 331.46772820840198, 67},
    {5, 99991ULL, "lheft", 340.86752567169282, 53},
    {5, 99991ULL, "dsh", 331.46772820840198, 67},
    {5, 99991ULL, "btdh", 332.08466314234528, 78},
    {5, 99991ULL, "heft", 353.48471378642358, 53},
    {5, 99991ULL, "ils-d-k3", 331.46772820840198, 67},
    {6, 2007ULL, "ils", 184.98650527700772, 40},
    {6, 2007ULL, "ils-d", 158.26846074194225, 48},
    {6, 2007ULL, "lheft", 194.09566060492432, 40},
    {6, 2007ULL, "dsh", 161.81702884899906, 49},
    {6, 2007ULL, "btdh", 144.45128773757662, 58},
    {6, 2007ULL, "heft", 184.98650527700772, 40},
    {6, 2007ULL, "ils-d-k3", 158.26846074194225, 48},
    {6, 42ULL, "ils", 187.4936447617649, 40},
    {6, 42ULL, "ils-d", 160.75496646845264, 52},
    {6, 42ULL, "lheft", 181.72361887602685, 40},
    {6, 42ULL, "dsh", 165.45571266556374, 48},
    {6, 42ULL, "btdh", 144.92494308971229, 56},
    {6, 42ULL, "heft", 188.53566810764084, 40},
    {6, 42ULL, "ils-d-k3", 163.96954362740294, 49},
    {6, 99991ULL, "ils", 187.82781791602673, 40},
    {6, 99991ULL, "ils-d", 170.04145551155915, 47},
    {6, 99991ULL, "lheft", 192.93519364918058, 40},
    {6, 99991ULL, "dsh", 171.78478284490308, 49},
    {6, 99991ULL, "btdh", 142.73578958524038, 54},
    {6, 99991ULL, "heft", 189.20957407840447, 40},
    {6, 99991ULL, "ils-d-k3", 170.04145551155915, 47},
    {7, 2007ULL, "ils", 286.34728932846429, 38},
    {7, 2007ULL, "ils-d", 276.61159840610645, 41},
    {7, 2007ULL, "lheft", 287.5361685473697, 38},
    {7, 2007ULL, "dsh", 280.74224850429283, 43},
    {7, 2007ULL, "btdh", 270.23239372049369, 54},
    {7, 2007ULL, "heft", 286.34728932846429, 38},
    {7, 2007ULL, "ils-d-k3", 276.61159840610645, 41},
    {7, 42ULL, "ils", 300.72983479772677, 38},
    {7, 42ULL, "ils-d", 292.68183672729549, 43},
    {7, 42ULL, "lheft", 298.94430213626447, 38},
    {7, 42ULL, "dsh", 300.77644442407689, 44},
    {7, 42ULL, "btdh", 286.55259320521486, 52},
    {7, 42ULL, "heft", 300.72983479772677, 38},
    {7, 42ULL, "ils-d-k3", 292.68183672729549, 43},
    {7, 99991ULL, "ils", 305.90341902234059, 38},
    {7, 99991ULL, "ils-d", 295.43964578903598, 43},
    {7, 99991ULL, "lheft", 307.01305828857397, 38},
    {7, 99991ULL, "dsh", 298.55776472578191, 44},
    {7, 99991ULL, "btdh", 288.46989394356694, 52},
    {7, 99991ULL, "heft", 305.90341902234059, 38},
    {7, 99991ULL, "ils-d-k3", 295.43964578903598, 43},
    };
    return rows;
}

TEST(Determinism, GoldenBatteryMakespansAndPlacementCounts) {
    std::optional<Problem> problem;
    std::size_t cached_point = static_cast<std::size_t>(-1);
    std::uint64_t cached_seed = 0;
    for (const GoldenRow& row : golden_rows()) {
        if (!problem || row.point != cached_point || row.seed != cached_seed) {
            const BatteryPoint& pt = battery().at(row.point);
            workload::InstanceParams params;
            params.shape = pt.shape;
            params.size = pt.size;
            params.num_procs = pt.procs;
            params.ccr = pt.ccr;
            params.beta = pt.beta;
            problem.emplace(workload::make_instance(params, row.seed));
            cached_point = row.point;
            cached_seed = row.seed;
        }
        const Schedule s = make_scheduler(row.algo)->schedule(*problem);
        EXPECT_NEAR(s.makespan(), row.makespan, 1e-9 * row.makespan)
            << row.algo << " point=" << row.point << " seed=" << row.seed;
        EXPECT_EQ(s.num_placements(), row.placements)
            << row.algo << " point=" << row.point << " seed=" << row.seed;
    }
}

/// Same battery, one level stronger: scheduling the same instance twice must
/// give identical placements (guards against any hidden state leaking
/// between runs through the speculation machinery).
TEST(Determinism, RepeatRunsAreBitIdentical) {
    const BatteryPoint& pt = battery().front();
    workload::InstanceParams params;
    params.shape = pt.shape;
    params.size = pt.size;
    params.num_procs = pt.procs;
    params.ccr = pt.ccr;
    params.beta = pt.beta;
    const Problem problem = workload::make_instance(params, 2007);
    for (const char* algo : {"ils-d", "lheft", "dsh", "btdh"}) {
        const auto scheduler = make_scheduler(algo);
        const Schedule a = scheduler->schedule(problem);
        const Schedule b = scheduler->schedule(problem);
        ASSERT_EQ(a.num_placements(), b.num_placements()) << algo;
        for (std::size_t v = 0; v < a.num_tasks(); ++v) {
            const auto pa = a.placements(static_cast<TaskId>(v));
            const auto pb = b.placements(static_cast<TaskId>(v));
            ASSERT_EQ(pa.size(), pb.size()) << algo << " task " << v;
            for (std::size_t i = 0; i < pa.size(); ++i) {
                EXPECT_EQ(pa[i], pb[i]) << algo << " task " << v;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-injection golden battery.
//
// The acceptance scenario for the fault pipeline: the busiest processor of
// the schedule crashes at 50% of the static makespan on a 100-task, 8-proc
// instance, once per repair policy.  The rows pin the realised degradation
// (1e-9 relative, same FMA caveat as above) and the exact repair
// bookkeeping; any change to the fault simulator's event ordering, the
// repair policies, or the frozen-prefix rebuild will move at least one
// value.  Regenerate by running simulate_faulty at these points and printing
// degradation with %.17g.

struct FaultGoldenRow {
    std::uint64_t seed;
    const char* algo;
    const char* policy;
    double degradation;
    std::size_t migrated;
    std::size_t reexecuted;
    std::size_t dropped;
    std::size_t placements;  ///< placements in the repaired schedule
};

const std::vector<FaultGoldenRow>& fault_golden_rows() {
    static const std::vector<FaultGoldenRow> rows{
    {2007ULL, "heft", "none", 1.4103228225931157, 9, 1, 0, 100},
    {2007ULL, "heft", "remap-pending", 1.2741887853197527, 9, 1, 0, 100},
    {2007ULL, "heft", "reschedule-suffix", 1.0426744164951278, 9, 1, 0, 100},
    {2007ULL, "heft", "use-duplicates", 1.2741887853197527, 9, 1, 0, 100},
    {2007ULL, "ils-d", "none", 1.3245078850937724, 6, 0, 3, 120},
    {2007ULL, "ils-d", "remap-pending", 1.2581083509420612, 8, 1, 0, 123},
    {2007ULL, "ils-d", "reschedule-suffix", 1.0612455005355346, 6, 0, 14, 109},
    {2007ULL, "ils-d", "use-duplicates", 1.2581083509420612, 6, 0, 3, 120},
    {42ULL, "heft", "none", 1.2220419973927381, 9, 1, 0, 100},
    {42ULL, "heft", "remap-pending", 1.1452383665040282, 9, 1, 0, 100},
    {42ULL, "heft", "reschedule-suffix", 1.0301768502078403, 9, 1, 0, 100},
    {42ULL, "heft", "use-duplicates", 1.1452383665040282, 9, 1, 0, 100},
    {42ULL, "ils-d", "none", 1.2592356905841562, 9, 1, 4, 131},
    {42ULL, "ils-d", "remap-pending", 1.2309604139594821, 9, 1, 0, 135},
    {42ULL, "ils-d", "reschedule-suffix", 1.0752381687626615, 9, 1, 11, 124},
    {42ULL, "ils-d", "use-duplicates", 1.2146753468221125, 9, 1, 4, 131},
    };
    return rows;
}

TEST(Determinism, FaultGoldenBatteryDegradationsAndRepairCounts) {
    std::optional<Problem> problem;
    std::uint64_t cached_seed = 0;
    std::string cached_algo;
    std::optional<Schedule> schedule;
    for (const FaultGoldenRow& row : fault_golden_rows()) {
        if (!problem || row.seed != cached_seed) {
            workload::InstanceParams params;
            params.size = 100;
            params.num_procs = 8;
            params.ccr = 1.0;
            params.beta = 0.75;
            problem.emplace(workload::make_instance(params, row.seed));
            cached_seed = row.seed;
            cached_algo.clear();
        }
        if (!schedule || row.algo != cached_algo) {
            schedule.emplace(make_scheduler(row.algo)->schedule(*problem));
            cached_algo = row.algo;
        }
        const sim::FaultPlan plan = sim::crash_busiest(*schedule, 0.5);
        const auto policy = make_repair_policy(row.policy);
        const auto report = sim::simulate_faulty(*schedule, *problem, plan, *policy);
        const std::string where =
            std::string(row.algo) + "/" + row.policy + " seed=" + std::to_string(row.seed);
        EXPECT_NEAR(report.degradation, row.degradation, 1e-9 * row.degradation) << where;
        EXPECT_EQ(report.migrated_tasks, row.migrated) << where;
        EXPECT_EQ(report.reexecuted_tasks, row.reexecuted) << where;
        EXPECT_EQ(report.dropped_placements, row.dropped) << where;
        EXPECT_EQ(report.repaired.num_placements(), row.placements) << where;
    }
}

/// One level stronger, mirroring RepeatRunsAreBitIdentical: the same faulty
/// run replayed twice must agree in *every* FaultReport field, bit for bit.
TEST(Determinism, FaultReportsAreBitIdenticalAcrossRepeatRuns) {
    workload::InstanceParams params;
    params.size = 100;
    params.num_procs = 8;
    params.ccr = 1.0;
    params.beta = 0.75;
    const Problem problem = workload::make_instance(params, 2007);
    for (const char* algo : {"heft", "ils-d"}) {
        const Schedule schedule = make_scheduler(algo)->schedule(problem);
        const sim::FaultPlan plan = sim::crash_busiest(schedule, 0.5);
        for (const char* pol :
             {"none", "remap-pending", "reschedule-suffix", "use-duplicates"}) {
            const auto policy = make_repair_policy(pol);
            const auto a = sim::simulate_faulty(schedule, problem, plan, *policy);
            const auto b = sim::simulate_faulty(schedule, problem, plan, *policy);
            const std::string where = std::string(algo) + "/" + pol;
            EXPECT_EQ(a.sim.makespan, b.sim.makespan) << where;
            EXPECT_EQ(a.sim.proc_busy, b.sim.proc_busy) << where;
            EXPECT_EQ(a.sim.remote_messages, b.sim.remote_messages) << where;
            EXPECT_EQ(a.sim.comm_volume, b.sim.comm_volume) << where;
            EXPECT_EQ(a.sim.finish_times, b.sim.finish_times) << where;
            EXPECT_EQ(a.degradation, b.degradation) << where;
            EXPECT_EQ(a.retries, b.retries) << where;
            EXPECT_EQ(a.migrated_tasks, b.migrated_tasks) << where;
            EXPECT_EQ(a.reexecuted_tasks, b.reexecuted_tasks) << where;
            EXPECT_EQ(a.dropped_placements, b.dropped_placements) << where;
            EXPECT_EQ(a.repair_latency, b.repair_latency) << where;
            EXPECT_EQ(a.events, b.events) << where;
        }
    }
}

// ---------------------------------------------------------------------------
// Serving-layer golden battery.
//
// The schedule cache trusts 64-bit request fingerprints, so the
// canonicalization rules (serve/request.hpp) are a compatibility contract:
// any change to the canonical encodings silently invalidates every cached
// entry and breaks cross-build reproducibility of .tsr replays.  The rows
// below pin exact fingerprints of hand-built problems whose every cost is
// exactly representable (3.0, 2.5, 0.25, ...), so no instance generator —
// and therefore no cross-compiler FP contraction — is involved; these
// values must be bit-stable on every platform.

std::shared_ptr<const Problem> serve_golden_problem(double fork_work) {
    Dag dag;
    const TaskId a = dag.add_task(fork_work);
    const TaskId b = dag.add_task(2.0);
    const TaskId c = dag.add_task(4.0);
    const TaskId d = dag.add_task(1.0);
    dag.add_edge(a, b, 1.5);
    dag.add_edge(a, c, 2.5);
    dag.add_edge(b, d, 0.5);
    dag.add_edge(c, d, 1.0);
    auto links = std::make_shared<const UniformLinkModel>(0.25, 2.0);
    Machine machine({1.0, 2.0}, links);
    CostMatrix costs = CostMatrix::from_speeds(dag, machine);
    return std::make_shared<const Problem>(std::move(dag), std::move(machine), std::move(costs));
}

struct ServeGoldenRow {
    double fork_work;
    const char* algo;
    const char* options;
    std::uint64_t fingerprint;
};

TEST(Determinism, ServeRequestFingerprintsAreGolden) {
    const std::vector<ServeGoldenRow> rows{
        {3.0, "heft", "", 16161705895780441590ULL},
        {3.0, "cpop", "", 9131931451316144527ULL},
        {3.0, "heft", "k=3", 316665473736544322ULL},
        {3.5, "heft", "", 18192048142213196343ULL},
    };
    for (const ServeGoldenRow& row : rows) {
        serve::ScheduleRequest request;
        request.problem = serve_golden_problem(row.fork_work);
        request.algo = row.algo;
        request.options = row.options;
        EXPECT_EQ(serve::fingerprint_request(request), row.fingerprint)
            << row.algo << " options='" << row.options << "' fork_work=" << row.fork_work;
    }
}

/// A cache hit must hand back a schedule that serializes to exactly the
/// bytes a cold, engine-free scheduler run produces — over the same seeded
/// battery the scheduler goldens use.
TEST(Determinism, ServeCacheHitsAreByteIdenticalToColdRuns) {
    const BatteryPoint& pt = battery().front();
    workload::InstanceParams params;
    params.shape = pt.shape;
    params.size = pt.size;
    params.num_procs = pt.procs;
    params.ccr = pt.ccr;
    params.beta = pt.beta;
    ThreadPool pool(2);
    serve::ServeEngine engine(serve::ServeConfig{}, pool);
    for (const char* algo : {"heft", "ils-d", "dsh"}) {
        serve::ScheduleRequest request;
        request.problem = std::make_shared<const Problem>(workload::make_instance(params, 2007));
        request.algo = algo;
        const std::string cold = to_tss(make_scheduler(algo)->schedule(*request.problem));
        const auto first = engine.serve(request);
        const auto second = engine.serve(request);
        EXPECT_FALSE(first.cache_hit) << algo;
        EXPECT_TRUE(second.cache_hit) << algo;
        EXPECT_EQ(to_tss(*second.schedule), cold) << algo;
    }
}

// ---------------------------------------------------------------------------
// Network codec goldens (DESIGN §17): the wire encoding is a compatibility
// contract.  These vectors were recorded from the canonical encoder; any
// codec change that alters a single byte breaks every deployed peer and must
// bump kCodecVersion instead of silently shifting bytes.
// ---------------------------------------------------------------------------

std::string hex_of(std::string_view bytes) {
    static const char* digits = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (const char c : bytes) {
        const auto b = static_cast<unsigned char>(c);
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xF]);
    }
    return out;
}

net::WireRequest codec_golden_request() {
    net::WireRequest request;
    request.id = 7;
    request.trace.algo = "heft";
    request.trace.shape = workload::Shape::kLayered;
    request.trace.size = 30;
    request.trace.procs = 4;
    request.trace.net = workload::Net::kUniform;
    request.trace.ccr = 1.0;
    request.trace.beta = 0.5;
    request.trace.seed = 11;
    request.deadline_ms = 2.5;
    request.options = "k=3";
    return request;
}

TEST(Determinism, NetCodecRequestBytesAreGolden) {
    const std::string bytes = net::encode_request(codec_golden_request());
    EXPECT_EQ(hex_of(bytes),
              "0700000000000000"                  // id = 7 (u64 LE)
              "01"                                // body format: descriptor
              "0400000000000000" "68656674"       // "heft"
              "0700000000000000" "6c617965726564" // "layered"
              "1e00000000000000"                  // size = 30
              "0400000000000000"                  // procs = 4
              "0700000000000000" "756e69666f726d" // "uniform"
              "000000000000f03f"                  // ccr = 1.0
              "000000000000e03f"                  // beta = 0.5
              "0b00000000000000"                  // seed = 11
              "0000000000000440"                  // deadline = 2.5 ms
              "0300000000000000" "6b3d33");       // "k=3"
    // And the framed form: a 16-byte header whose trailing CRC guards the
    // payload above.
    const std::string framed = net::encode_frame(net::FrameType::kRequest, bytes);
    EXPECT_EQ(hex_of(framed.substr(0, net::kFrameHeaderBytes)),
              "54534e46"   // magic "TSNF" (LE 0x464E5354)
              "01"         // protocol version
              "03"         // type = kRequest
              "0000"       // reserved
              "6e000000"   // payload length = 110
              "3ba6346b"); // CRC-32 of the payload
}

TEST(Determinism, NetCodecResponseBytesAreGolden) {
    Schedule schedule(3, 2);
    schedule.add(0, 0, 0.0, 1.5);
    schedule.add(1, 1, 1.5, 3.25);
    schedule.add(2, 0, 3.25, 4.0);
    net::WireResponse response;
    response.id = 9;
    response.outcome = serve::ServeOutcome::kOk;
    response.cache_hit = true;
    response.fingerprint = 0x1122334455667788ULL;
    response.schedule_bytes = net::encode_schedule(schedule);
    EXPECT_EQ(hex_of(net::encode_response(response)),
              "0900000000000000"   // id = 9
              "00"                 // outcome = kOk
              "01"                 // flags: cache_hit
              "8877665544332211"   // fingerprint (u64 LE)
              "7800000000000000"   // schedule_bytes length = 120
              "0300000000000000"   // num_tasks = 3
              "0200000000000000"   // num_procs = 2
              "0300000000000000"   // num_placements = 3
              "0000000000000000" "0000000000000000"  // task 0 on proc 0
              "0000000000000000" "000000000000f83f"  // [0, 1.5)
              "0100000000000000" "0100000000000000"  // task 1 on proc 1
              "000000000000f83f" "0000000000000a40"  // [1.5, 3.25)
              "0200000000000000" "0000000000000000"  // task 2 on proc 0
              "0000000000000a40" "0000000000001040"); // [3.25, 4)
}

// The descriptor round trip underlying the wire cache contract: a request
// decoded from golden bytes materializes to the same fingerprint as the
// original, so a cache warmed by one client serves byte-identical responses
// to every other.
TEST(Determinism, NetCodecDescriptorRoundTripPreservesFingerprint) {
    const net::WireRequest original = codec_golden_request();
    const auto decoded = net::decode_request(net::encode_request(original));
    EXPECT_EQ(serve::fingerprint_request(serve::materialize(original.trace)),
              serve::fingerprint_request(serve::materialize(decoded.trace)));
    // Canonical: decode -> encode reproduces the input bytes exactly.
    EXPECT_EQ(net::encode_request(decoded), net::encode_request(original));
}

}  // namespace
}  // namespace tsched
