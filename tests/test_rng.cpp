// Unit tests for the deterministic RNG (util/rng.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace tsched {
namespace {

TEST(SplitMix64, IsDeterministic) {
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(MixSeed, IsDeterministicAndSensitiveToBothInputs) {
    EXPECT_EQ(mix_seed(1, 2), mix_seed(1, 2));
    EXPECT_NE(mix_seed(1, 2), mix_seed(2, 1));
    EXPECT_NE(mix_seed(1, 2), mix_seed(1, 3));
}

TEST(Rng, SameSeedSameStream) {
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedRestartsStream) {
    Rng a(7);
    const auto first = a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-5.0, 11.0);
        EXPECT_GE(u, -5.0);
        EXPECT_LT(u, 11.0);
    }
}

TEST(Rng, UniformMeanIsCentered) {
    Rng rng(11);
    double sum = 0.0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) sum += rng.uniform(10.0, 20.0);
    EXPECT_NEAR(sum / kN, 15.0, 0.05);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
    Rng rng(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniform_int(2, 9);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 9);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 8u);  // all 8 values hit with overwhelming probability
}

TEST(Rng, UniformIntSingletonRange) {
    Rng rng(5);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntNegativeRange) {
    Rng rng(6);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(-10, -3);
        EXPECT_GE(v, -10);
        EXPECT_LE(v, -3);
    }
}

TEST(Rng, UniformIntIsApproximatelyUniform) {
    Rng rng(8);
    std::vector<int> counts(10, 0);
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
    for (const int c : counts) {
        EXPECT_NEAR(static_cast<double>(c), kN / 10.0, kN * 0.01);
    }
}

TEST(Rng, NormalMomentsMatch) {
    Rng rng(13);
    constexpr int kN = 200000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < kN; ++i) {
        const double x = rng.normal(5.0, 2.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / kN;
    const double var = sq / kN - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches) {
    Rng rng(17);
    constexpr int kN = 200000;
    double sum = 0.0;
    for (int i = 0; i < kN; ++i) sum += rng.exponential(0.5);
    EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(Rng, BernoulliFrequencyMatches) {
    Rng rng(19);
    constexpr int kN = 100000;
    int hits = 0;
    for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ShufflePermutes) {
    Rng rng(23);
    std::vector<int> v(50);
    std::iota(v.begin(), v.end(), 0);
    auto shuffled = v;
    rng.shuffle(shuffled);
    EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStream) {
    Rng a(29);
    Rng forked = a.fork();
    // The fork must not replay the parent's future outputs.
    std::vector<std::uint64_t> parent_out;
    std::vector<std::uint64_t> fork_out;
    for (int i = 0; i < 10; ++i) parent_out.push_back(a.next());
    for (int i = 0; i < 10; ++i) fork_out.push_back(forked.next());
    EXPECT_NE(parent_out, fork_out);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
    static_assert(Rng::min() == 0);
    static_assert(Rng::max() == std::numeric_limits<std::uint64_t>::max());
    Rng rng(1);
    EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace tsched
