// Unit tests for the rank computations (sched/ranks.hpp) and the ILS rank /
// optimistic cost table (core/ils.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/ils.hpp"
#include "sched/ranks.hpp"
#include "util/thread_pool.hpp"
#include "workload/instance.hpp"

namespace tsched {
namespace {

/// Chain 0 -> 1 -> 2, data 4 per edge; 2 procs; cost rows {2,4}, {6,6}, {1,3};
/// uniform links latency 0 bandwidth 2 (mean comm of data 4 = 2).
Problem chain_problem() {
    Dag dag;
    dag.add_task(1.0);
    dag.add_task(1.0);
    dag.add_task(1.0);
    dag.add_edge(0, 1, 4.0);
    dag.add_edge(1, 2, 4.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 2.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs(3, 2, {2.0, 4.0, 6.0, 6.0, 1.0, 3.0});
    return Problem(std::move(dag), std::move(machine), std::move(costs));
}

TEST(ScalarCost, AllVariants) {
    const Problem p = chain_problem();
    EXPECT_DOUBLE_EQ(scalar_cost(p, 0, RankCost::kMean), 3.0);
    EXPECT_DOUBLE_EQ(scalar_cost(p, 0, RankCost::kMedian), 3.0);
    EXPECT_DOUBLE_EQ(scalar_cost(p, 0, RankCost::kWorst), 4.0);
    EXPECT_DOUBLE_EQ(scalar_cost(p, 0, RankCost::kBest), 2.0);
}

TEST(UpwardRank, HandComputedChain) {
    const Problem p = chain_problem();
    const auto ru = upward_rank(p, RankCost::kMean);
    // rank(2) = 2; rank(1) = 6 + (2 + 2) = 10; rank(0) = 3 + (2 + 10) = 15.
    EXPECT_DOUBLE_EQ(ru[2], 2.0);
    EXPECT_DOUBLE_EQ(ru[1], 10.0);
    EXPECT_DOUBLE_EQ(ru[0], 15.0);
}

TEST(DownwardRank, HandComputedChain) {
    const Problem p = chain_problem();
    const auto rd = downward_rank(p, RankCost::kMean);
    // rd(0) = 0; rd(1) = 0 + 3 + 2 = 5; rd(2) = 5 + 6 + 2 = 13.
    EXPECT_DOUBLE_EQ(rd[0], 0.0);
    EXPECT_DOUBLE_EQ(rd[1], 5.0);
    EXPECT_DOUBLE_EQ(rd[2], 13.0);
}

TEST(Ranks, UpDownSumConstantOnCriticalPath) {
    const Problem p = chain_problem();
    const auto ru = upward_rank(p);
    const auto rd = downward_rank(p);
    // On a chain every task is critical: ru + rd == CP length.
    const double cp = ru[0];
    for (std::size_t v = 0; v < 3; ++v) EXPECT_DOUBLE_EQ(ru[v] + rd[v], cp);
}

TEST(StaticLevel, IgnoresCommunication) {
    const Problem p = chain_problem();
    const auto sl = static_level(p, RankCost::kMean);
    EXPECT_DOUBLE_EQ(sl[2], 2.0);
    EXPECT_DOUBLE_EQ(sl[1], 8.0);
    EXPECT_DOUBLE_EQ(sl[0], 11.0);
}

TEST(AlapStart, ZeroOnCriticalEntry) {
    const Problem p = chain_problem();
    const auto alap = alap_start(p, RankCost::kMean);
    EXPECT_DOUBLE_EQ(alap[0], 0.0);
    EXPECT_DOUBLE_EQ(alap[1], 5.0);
    EXPECT_DOUBLE_EQ(alap[2], 13.0);
}

TEST(OrderBy, DeterministicTieBreaks) {
    const std::vector<double> key{3.0, 1.0, 3.0, 2.0};
    EXPECT_EQ(order_by_decreasing(key), (std::vector<TaskId>{0, 2, 3, 1}));
    EXPECT_EQ(order_by_increasing(key), (std::vector<TaskId>{1, 3, 0, 2}));
}

TEST(UpwardRank, DecreasingOrderIsTopological) {
    workload::InstanceParams params;
    params.size = 80;
    const Problem p = workload::make_instance(params, 17);
    const auto ru = upward_rank(p);
    const auto order = order_by_decreasing(ru);
    std::vector<std::size_t> pos(p.num_tasks());
    for (std::size_t i = 0; i < order.size(); ++i) pos[static_cast<std::size_t>(order[i])] = i;
    for (std::size_t u = 0; u < p.num_tasks(); ++u) {
        for (const AdjEdge& e : p.dag().successors(static_cast<TaskId>(u))) {
            EXPECT_LT(pos[u], pos[static_cast<std::size_t>(e.task)]);
        }
    }
}

TEST(IlsRank, ReducesToUpwardRankWhenHomogeneous) {
    workload::InstanceParams params;
    params.size = 50;
    params.beta = 0.0;  // homogeneous costs: sigma == 0
    const Problem p = workload::make_instance(params, 23);
    const auto ils = IlsScheduler::ils_rank(p, /*variance_rank=*/true);
    const auto heft = upward_rank(p, RankCost::kMean);
    ASSERT_EQ(ils.size(), heft.size());
    for (std::size_t v = 0; v < ils.size(); ++v) EXPECT_NEAR(ils[v], heft[v], 1e-9);
}

TEST(IlsRank, VarianceRaisesRiskyTasks) {
    const Problem p = chain_problem();
    const auto with_var = IlsScheduler::ils_rank(p, true);
    const auto without = IlsScheduler::ils_rank(p, false);
    // Task 0 has stddev sqrt(2); task 1 has stddev 0.
    EXPECT_GT(with_var[0], without[0]);
    EXPECT_DOUBLE_EQ(with_var[1] - without[1], with_var[2] - without[2]);
}

TEST(OptimisticCostTable, HandComputedChain) {
    const Problem p = chain_problem();
    const auto oct = IlsScheduler::optimistic_cost_table(p);
    // OCT(2, *) = 0.
    EXPECT_DOUBLE_EQ(oct[2 * 2 + 0], 0.0);
    EXPECT_DOUBLE_EQ(oct[2 * 2 + 1], 0.0);
    // OCT(1, p) = min over q of comm(p,q) + w(2,q): comm = 2 when p != q.
    // p0: min(0 + 1, 2 + 3) = 1;  p1: min(2 + 1, 0 + 3) = 3.
    EXPECT_DOUBLE_EQ(oct[1 * 2 + 0], 1.0);
    EXPECT_DOUBLE_EQ(oct[1 * 2 + 1], 3.0);
    // OCT(0, p) = min over q of comm + w(1,q) + OCT(1,q):
    // p0: min(0+6+1, 2+6+3) = 7;  p1: min(2+6+1, 0+6+3) = 9.
    EXPECT_DOUBLE_EQ(oct[0 * 2 + 0], 7.0);
    EXPECT_DOUBLE_EQ(oct[0 * 2 + 1], 9.0);
}

TEST(OptimisticCostTable, ExitRowsZeroEverywhere) {
    workload::InstanceParams params;
    params.size = 40;
    const Problem p = workload::make_instance(params, 31);
    const auto oct = IlsScheduler::optimistic_cost_table(p);
    for (const TaskId sink : p.dag().sinks()) {
        for (std::size_t q = 0; q < p.num_procs(); ++q) {
            EXPECT_DOUBLE_EQ(oct[static_cast<std::size_t>(sink) * p.num_procs() + q], 0.0);
        }
    }
}

TEST(RankCostName, Names) {
    EXPECT_STREQ(rank_cost_name(RankCost::kMean), "mean");
    EXPECT_STREQ(rank_cost_name(RankCost::kMedian), "median");
    EXPECT_STREQ(rank_cost_name(RankCost::kWorst), "worst");
    EXPECT_STREQ(rank_cost_name(RankCost::kBest), "best");
}

/// Wide fork-join: source -> `width` middle tasks -> sink.  The middle level
/// exceeds the parallel cutoff (256), so the pool overloads actually run
/// their level phases on worker threads.
Problem wide_problem(std::size_t width) {
    Dag dag;
    const TaskId src = dag.add_task(1.0);
    std::vector<TaskId> mid(width);
    for (std::size_t i = 0; i < width; ++i) {
        mid[i] = dag.add_task(1.0 + static_cast<double>(i % 7));
        dag.add_edge(src, mid[i], static_cast<double>(i % 5) + 1.0);
    }
    const TaskId sink = dag.add_task(2.0);
    for (std::size_t i = 0; i < width; ++i) {
        dag.add_edge(mid[i], sink, static_cast<double>(i % 3) + 1.0);
    }
    const auto links = std::make_shared<UniformLinkModel>(0.5, 2.0);
    Machine machine = Machine::homogeneous(4, links);
    const std::size_t n = dag.num_tasks();
    std::vector<double> costs(n * 4);
    for (std::size_t i = 0; i < costs.size(); ++i) {
        costs[i] = 1.0 + static_cast<double>((i * 37) % 11);
    }
    return Problem(std::move(dag), std::move(machine), CostMatrix(n, 4, std::move(costs)));
}

TEST(ParallelRank, UpwardRankMatchesSerialBitForBit) {
    const Problem p = wide_problem(600);
    ThreadPool pool(4);
    for (const RankCost rc :
         {RankCost::kMean, RankCost::kMedian, RankCost::kWorst, RankCost::kBest}) {
        const auto serial = upward_rank(p, rc);
        const auto par = upward_rank(p, pool, rc);
        ASSERT_EQ(serial.size(), par.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i], par[i]) << "task " << i;  // exact, not near
        }
    }
}

TEST(ParallelRank, OptimisticCostTableMatchesSerialBitForBit) {
    const Problem p = wide_problem(600);
    ThreadPool pool(4);
    const auto serial = optimistic_cost_table(p);
    const auto par = optimistic_cost_table(p, pool);
    ASSERT_EQ(serial.size(), par.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], par[i]) << "entry " << i;
    }
}

TEST(ParallelRank, SingleThreadPoolFallsBackToSerialPath) {
    const Problem p = wide_problem(300);
    ThreadPool pool(1);
    const auto serial = upward_rank(p);
    const auto par = upward_rank(p, pool);
    EXPECT_EQ(serial, par);
}

TEST(ParallelRank, WorkspaceOverloadsReuseScratchAcrossCalls) {
    const Problem a = chain_problem();
    const Problem b = wide_problem(40);
    RankWorkspace ws;
    std::vector<double> out;
    upward_rank(a, RankCost::kMean, ws, out);
    EXPECT_EQ(out, upward_rank(a, RankCost::kMean));
    upward_rank(b, RankCost::kMean, ws, out);  // workspace resized, not stale
    EXPECT_EQ(out, upward_rank(b, RankCost::kMean));
    downward_rank(a, RankCost::kMean, ws, out);
    EXPECT_EQ(out, downward_rank(a, RankCost::kMean));
    static_level(b, RankCost::kMean, ws, out);
    EXPECT_EQ(out, static_level(b));
    optimistic_cost_table(a, ws, out);
    EXPECT_EQ(out, optimistic_cost_table(a));
}

}  // namespace
}  // namespace tsched
