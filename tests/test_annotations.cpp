// Tests for util/thread_annotations.hpp: the macro surface must expand away
// cleanly off-clang (this file is also compiled as test_annotations_off with
// TSCHED_THREAD_ANNOTATIONS_FORCE_OFF=1, mirroring the TSCHED_TRACE=OFF
// pattern), and the annotated Mutex/LockGuard/UniqueLock/CondVar wrappers
// must behave exactly like the std primitives they wrap — the whole point
// of the annotation layer is that it changes nothing at runtime.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace tsched {
namespace {

// ---------------------------------------------------------------------------
// Macro expansion contract.

TEST(Annotations, EnabledMatchesCompilerAndForceOff) {
#if defined(TSCHED_THREAD_ANNOTATIONS_FORCE_OFF)
    // Forced off: empty expansion no matter the compiler.
    EXPECT_EQ(TSCHED_ANNOTATIONS_ENABLED, 0);
#elif defined(__clang__)
    EXPECT_EQ(TSCHED_ANNOTATIONS_ENABLED, 1);
#else
    // GCC/MSVC: the analysis does not exist; macros must compile away.
    EXPECT_EQ(TSCHED_ANNOTATIONS_ENABLED, 0);
#endif
}

// A type using every macro shape the codebase uses; merely compiling it in
// both the annotated and the compiled-away configuration is the assertion.
class MacroSurface {
public:
    void touch() TSCHED_EXCLUDES(mutex_) {
        LockGuard lock(mutex_);
        touch_locked();
    }

    [[nodiscard]] int peek() const TSCHED_EXCLUDES(mutex_) {
        LockGuard lock(mutex_);
        return *slot_;
    }

private:
    void touch_locked() TSCHED_REQUIRES(mutex_) { ++value_; }

    mutable Mutex mutex_ TSCHED_ACQUIRED_BEFORE(other_);
    Mutex other_;
    int value_ TSCHED_GUARDED_BY(mutex_) = 0;
    int* slot_ TSCHED_PT_GUARDED_BY(mutex_) = &value_;
};

TEST(Annotations, EveryMacroShapeCompiles) {
    MacroSurface surface;
    surface.touch();
    EXPECT_EQ(surface.peek(), 1);
}

// ---------------------------------------------------------------------------
// Wrapper behaviour: Mutex mutual exclusion.

TEST(Annotations, MutexProvidesMutualExclusion) {
    Mutex mutex;
    std::uint64_t counter = 0;
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 10000; ++i) {
                LockGuard lock(mutex);
                ++counter;
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(counter, 40000u);
}

TEST(Annotations, TryLockReportsContention) {
    Mutex mutex;
    ASSERT_TRUE(mutex.try_lock());
    std::thread observer([&] { EXPECT_FALSE(mutex.try_lock()); });
    observer.join();
    mutex.unlock();
    ASSERT_TRUE(mutex.try_lock());
    mutex.unlock();
}

// ---------------------------------------------------------------------------
// Wrapper behaviour: UniqueLock early release + CondVar handoff.

TEST(Annotations, UniqueLockReleasesEarly) {
    Mutex mutex;
    UniqueLock lock(mutex);
    lock.unlock();
    // Another thread can now take the mutex while `lock` is still in scope.
    std::thread taker([&] {
        LockGuard inner(mutex);
    });
    taker.join();
    SUCCEED();
}

TEST(Annotations, CondVarWaitLoopPassesValues) {
    Mutex mutex;
    CondVar cv;
    std::deque<int> items;
    constexpr int kCount = 100;

    std::thread consumer([&] {
        int expected = 0;
        while (expected < kCount) {
            UniqueLock lock(mutex);
            while (items.empty()) cv.wait(lock);
            EXPECT_EQ(items.front(), expected);
            items.pop_front();
            ++expected;
        }
    });
    std::thread producer([&] {
        for (int i = 0; i < kCount; ++i) {
            {
                LockGuard lock(mutex);
                items.push_back(i);
            }
            cv.notify_one();
        }
    });
    producer.join();
    consumer.join();
    EXPECT_TRUE(items.empty());
}

}  // namespace
}  // namespace tsched
