// Trace subsystem: counter/span registry semantics and thread-safety,
// decision-trace correctness against the schedules that produced them, and
// well-formedness of every JSON exporter (validated by parsing it back with
// a minimal JSON reader — no third-party parser in the test).
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/ils.hpp"
#include "core/registry.hpp"
#include "platform/machine.hpp"
#include "platform/problem.hpp"
#include "sched/heft.hpp"
#include "sched/repair.hpp"
#include "sim/faults.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/counters.hpp"
#include "trace/decision.hpp"
#include "trace/trace.hpp"
#include "workload/instance.hpp"

namespace tsched {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader: parses a value and counts objects/arrays; throws
// std::runtime_error on malformed input.  Enough to prove an exporter's
// output is syntactically valid JSON and to count "traceEvents" entries.
struct JsonStats {
    std::size_t objects = 0;
    std::size_t arrays = 0;
    std::size_t strings = 0;
};

class JsonReader {
public:
    explicit JsonReader(const std::string& text) : s_(text) {}

    JsonStats parse() {
        skip_ws();
        value();
        skip_ws();
        if (pos_ != s_.size()) fail("trailing characters");
        return stats_;
    }

private:
    [[noreturn]] void fail(const char* why) const {
        throw std::runtime_error(std::string("json error at ") + std::to_string(pos_) + ": " +
                                 why);
    }
    void skip_ws() {
        while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
    void expect(char c) {
        if (peek() != c) fail("unexpected character");
        ++pos_;
    }
    void value() {
        switch (peek()) {
            case '{': object(); break;
            case '[': array(); break;
            case '"': string(); break;
            default: literal(); break;
        }
    }
    void object() {
        ++stats_.objects;
        expect('{');
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        while (true) {
            skip_ws();
            string();
            skip_ws();
            expect(':');
            skip_ws();
            value();
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return;
        }
    }
    void array() {
        ++stats_.arrays;
        expect('[');
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return;
        }
        while (true) {
            skip_ws();
            value();
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return;
        }
    }
    void string() {
        ++stats_.strings;
        expect('"');
        while (true) {
            if (pos_ >= s_.size()) fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"') return;
            if (c == '\\') {
                if (pos_ >= s_.size()) fail("bad escape");
                ++pos_;
            } else if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character");
            }
        }
    }
    void literal() {
        const std::size_t start = pos_;
        while (pos_ < s_.size() && (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
                                    s_[pos_] == '+' || s_[pos_] == '-' || s_[pos_] == '.')) {
            ++pos_;
        }
        if (pos_ == start) fail("empty value");
        const std::string tok = s_.substr(start, pos_ - start);
        if (tok == "true" || tok == "false" || tok == "null") return;
        try {
            std::size_t used = 0;
            (void)std::stod(tok, &used);
            if (used != tok.size()) fail("bad number");
        } catch (const std::exception&) {
            fail("bad number");
        }
    }

    const std::string& s_;
    std::size_t pos_ = 0;
    JsonStats stats_;
};

std::size_t count_key(const std::string& json, const std::string& key) {
    const std::string needle = "\"" + key + "\"";
    std::size_t count = 0;
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + 1)) {
        ++count;
    }
    return count;
}

Problem small_problem(std::uint64_t seed = 0x5eed, double ccr = 2.0) {
    workload::InstanceParams params;
    params.shape = workload::Shape::kLayered;
    params.size = 24;
    params.num_procs = 4;
    params.ccr = ccr;
    return workload::make_instance(params, seed);
}

// ---------------------------------------------------------------------------
// Counters and spans.

TEST(TraceRegistry, CounterReferencesAreStableAndAccumulate) {
    trace::Registry reg;
    trace::Counter& a = reg.counter("alpha");
    a.add(3);
    trace::Counter& again = reg.counter("alpha");
    EXPECT_EQ(&a, &again);
    again.add(2);
    EXPECT_EQ(a.value(), 5u);

    const trace::Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].name, "alpha");
    EXPECT_EQ(snap.counters[0].value, 5u);

    reg.reset();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(reg.snapshot().counters.size(), 1u) << "names stay registered after reset";
}

TEST(TraceRegistry, ConcurrentIncrementsAreNotLost) {
    trace::Registry reg;
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kIncrements = 10000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg] {
            // Each thread also races the find-or-create path.
            trace::Counter& c = reg.counter("shared");
            trace::SpanTimer& s = reg.span("shared_span");
            for (std::size_t i = 0; i < kIncrements; ++i) {
                c.add(1);
                s.add(10);
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(reg.counter("shared").value(), kThreads * kIncrements);
    EXPECT_EQ(reg.span("shared_span").count(), kThreads * kIncrements);
    EXPECT_EQ(reg.span("shared_span").total_ns(), kThreads * kIncrements * 10);
}

TEST(TraceRegistry, SnapshotDeltaDropsIdleEntriesAndKeepsNewOnes) {
    trace::Registry reg;
    reg.counter("idle").add(7);
    reg.span("warm").add(100);
    const trace::Snapshot before = reg.snapshot();
    reg.counter("busy").add(4);
    reg.span("warm").add(50);
    const trace::Snapshot after = reg.snapshot();

    const trace::Snapshot delta = trace::snapshot_delta(before, after);
    ASSERT_EQ(delta.counters.size(), 1u);
    EXPECT_EQ(delta.counters[0].name, "busy");
    EXPECT_EQ(delta.counters[0].value, 4u);
    ASSERT_EQ(delta.spans.size(), 1u);
    EXPECT_EQ(delta.spans[0].name, "warm");
    EXPECT_EQ(delta.spans[0].count, 1u);
    EXPECT_EQ(delta.spans[0].total_ns, 50u);
}

TEST(TraceRegistry, SnapshotJsonParsesBack) {
    trace::Registry reg;
    reg.counter("with \"quotes\"").add(1);
    reg.span("sched/x").add(1234567);
    const std::string json = trace::to_json(reg.snapshot());
    EXPECT_NO_THROW(JsonReader(json).parse()) << json;
}

TEST(TraceMacros, SpanNestingRecordsEveryLevel) {
    const trace::Snapshot before = trace::registry().snapshot();
    {
        TSCHED_SPAN("test/outer");
        {
            TSCHED_SPAN("test/inner");
            TSCHED_COUNT("test/hits");
        }
        {
            TSCHED_SPAN("test/inner");
            TSCHED_COUNT_ADD("test/hits", 2);
        }
    }
    const trace::Snapshot delta =
        trace::snapshot_delta(before, trace::registry().snapshot());
#if TSCHED_TRACE_ON
    std::size_t outer = 0, inner = 0, hits = 0;
    for (const auto& s : delta.spans) {
        if (s.name == "test/outer") outer = s.count;
        if (s.name == "test/inner") inner = s.count;
    }
    for (const auto& c : delta.counters) {
        if (c.name == "test/hits") hits = c.value;
    }
    EXPECT_EQ(outer, 1u);
    EXPECT_EQ(inner, 2u);
    EXPECT_EQ(hits, 3u);
#else
    EXPECT_TRUE(delta.counters.empty());
    EXPECT_TRUE(delta.spans.empty());
#endif
}

// ---------------------------------------------------------------------------
// Decision traces.

TEST(DecisionTrace, ExplainsEveryHeftPlacementConsistently) {
    const Problem problem = small_problem();
    const HeftScheduler heft;
    trace::DecisionTrace sink;
    const Schedule schedule = heft.schedule_traced(problem, &sink);

    // Same schedule as the untraced entry point.
    EXPECT_DOUBLE_EQ(schedule.makespan(), heft.schedule(problem).makespan());

    const auto records = sink.final_records();
    ASSERT_EQ(records.size(), problem.num_tasks());
    for (const trace::DecisionRecord* rec : records) {
        ASSERT_NE(rec, nullptr);
        ASSERT_EQ(rec->candidates.size(), problem.num_procs());
        const Placement pl = schedule.primary(rec->task);
        EXPECT_EQ(rec->chosen, pl.proc);
        EXPECT_DOUBLE_EQ(rec->start, pl.start);
        EXPECT_DOUBLE_EQ(rec->finish, pl.finish);
        // The chosen candidate's EFT is the committed finish, and no other
        // candidate strictly beats it.
        bool found = false;
        for (const auto& c : rec->candidates) {
            if (c.proc == rec->chosen) {
                found = true;
                EXPECT_NEAR(c.eft, pl.finish, 1e-9);
            }
            EXPECT_GE(c.eft, pl.finish - 1e-9) << "HEFT must pick the min-EFT processor";
        }
        EXPECT_TRUE(found);
        EXPECT_FALSE(rec->reason.empty());
    }
    EXPECT_NE(sink.explain(records.front()->task).find("chosen"), std::string::npos);
}

TEST(DecisionTrace, IlsTraceMatchesScheduleAndNamesWinningPass) {
    const Problem problem = small_problem();
    const IlsScheduler ils;
    trace::DecisionTrace sink;
    const Schedule schedule = ils.schedule_traced(problem, &sink);

    EXPECT_DOUBLE_EQ(schedule.makespan(), ils.schedule(problem).makespan());
    EXPECT_TRUE(sink.winning_pass() == "greedy" || sink.winning_pass() == "oct")
        << sink.winning_pass();
    // Both passes recorded every task.
    EXPECT_EQ(sink.records().size(), 2 * problem.num_tasks());

    const auto records = sink.final_records();
    ASSERT_EQ(records.size(), problem.num_tasks());
    for (const trace::DecisionRecord* rec : records) {
        EXPECT_EQ(rec->pass, sink.winning_pass());
        const Placement pl = schedule.primary(rec->task);
        EXPECT_EQ(rec->chosen, pl.proc);
        EXPECT_DOUBLE_EQ(rec->finish, pl.finish);
        ASSERT_EQ(rec->candidates.size(), problem.num_procs());
        for (const auto& c : rec->candidates) {
            if (c.proc == rec->chosen) {
                EXPECT_NEAR(c.eft, pl.finish, 1e-9);
            }
            if (rec->pass == "oct") {
                EXPECT_NEAR(c.score, c.eft + c.oct_bias, 1e-9);
            } else {
                EXPECT_DOUBLE_EQ(c.oct_bias, 0.0);
            }
        }
    }
}

TEST(DecisionTrace, IsDeterministicAcrossRuns) {
    const Problem problem = small_problem(0xfeedface);
    const IlsScheduler ils;
    trace::DecisionTrace first;
    trace::DecisionTrace second;
    (void)ils.schedule_traced(problem, &first);
    (void)ils.schedule_traced(problem, &second);

    EXPECT_EQ(first.winning_pass(), second.winning_pass());
    ASSERT_EQ(first.records().size(), second.records().size());
    for (std::size_t i = 0; i < first.records().size(); ++i) {
        const auto& a = first.records()[i];
        const auto& b = second.records()[i];
        EXPECT_EQ(a.task, b.task);
        EXPECT_EQ(a.chosen, b.chosen);
        EXPECT_EQ(a.pass, b.pass);
        EXPECT_DOUBLE_EQ(a.rank, b.rank);
        EXPECT_DOUBLE_EQ(a.finish, b.finish);
        ASSERT_EQ(a.candidates.size(), b.candidates.size());
        for (std::size_t j = 0; j < a.candidates.size(); ++j) {
            EXPECT_DOUBLE_EQ(a.candidates[j].score, b.candidates[j].score);
        }
    }
    EXPECT_EQ(first.render_text(), second.render_text());
    EXPECT_EQ(first.render_json(), second.render_json());
}

TEST(DecisionTrace, DefaultScheduleTracedFallsBackToSchedule) {
    const Problem problem = small_problem();
    // dsh does not override schedule_traced: the base-class default must
    // return the plain schedule and record nothing.
    const auto dsh = make_scheduler("dsh");
    trace::DecisionTrace sink;
    const Schedule traced = dsh->schedule_traced(problem, &sink);
    EXPECT_DOUBLE_EQ(traced.makespan(), dsh->schedule(problem).makespan());
    EXPECT_TRUE(sink.records().empty());
}

TEST(DecisionTrace, RenderJsonParsesBack) {
    const Problem problem = small_problem();
    trace::DecisionTrace sink;
    (void)IlsScheduler().schedule_traced(problem, &sink);
    const std::string json = sink.render_json();
    JsonStats stats{};
    ASSERT_NO_THROW(stats = JsonReader(json).parse());
    EXPECT_GT(stats.objects, problem.num_tasks());
}

// ---------------------------------------------------------------------------
// Chrome trace export.

TEST(ChromeTrace, AllModesParseBackAndCoverEveryPlacement) {
    const Problem problem = small_problem();
    const Schedule schedule = HeftScheduler().schedule(problem);
    const std::size_t placements = schedule.num_placements();

    for (const trace::TraceMode mode :
         {trace::TraceMode::kPlanned, trace::TraceMode::kSimulated,
          trace::TraceMode::kContended}) {
        const std::string json = trace::chrome_trace_json(schedule, problem, mode);
        JsonStats stats{};
        ASSERT_NO_THROW(stats = JsonReader(json).parse()) << trace::trace_mode_name(mode);
        EXPECT_EQ(count_key(json, "traceEvents"), 1u);
        // One complete event per placement plus metadata and communication
        // events; "ph" appears once per event of any kind.
        EXPECT_GE(count_key(json, "ph"), placements) << trace::trace_mode_name(mode);
        EXPECT_EQ(count_key(json, "process_name"), 2u) << "execution + communication groups";
    }
}

TEST(ChromeTrace, ScheduleOnlyOverloadParsesBack) {
    const Problem problem = small_problem();
    const Schedule schedule = IlsScheduler({.duplication = true}).schedule(problem);
    const std::string json = trace::chrome_trace_json(schedule);
    EXPECT_NO_THROW(JsonReader(json).parse());
    EXPECT_EQ(count_key(json, "process_name"), 1u) << "no communication group without a problem";
}

TEST(ChromeTrace, FaultReportOverloadAddsFaultTrack) {
    const Problem problem = small_problem();
    const Schedule schedule = HeftScheduler().schedule(problem);
    const sim::FaultPlan plan = sim::crash_busiest(schedule, 0.5);
    const auto policy = make_repair_policy("remap-pending");
    const auto report = sim::simulate_faulty(schedule, problem, plan, *policy);
    const std::string json = trace::chrome_trace_json(report, problem);
    EXPECT_NO_THROW(JsonReader(json).parse());
    EXPECT_EQ(count_key(json, "process_name"), 3u)
        << "execution + communication + faults groups";
    // One instant event per FaultEvent: a crash, a repair, and each
    // migration/re-execution show up as ph:"i" markers.
    ASSERT_FALSE(report.events.empty());
    std::size_t instants = 0;
    const std::string needle = "\"ph\":\"i\"";
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + 1)) {
        ++instants;
    }
    EXPECT_EQ(instants, report.events.size());
    // Every repaired placement still gets a complete exec event.
    EXPECT_GE(count_key(json, "ph"), report.repaired.num_placements() + report.events.size());
}

TEST(ChromeTrace, TaskNamesAreEscaped) {
    // A 2-task chain with a name that needs escaping.
    Dag dag(2);
    dag.set_name(0, "weird \"name\"\\with\nstuff");
    dag.add_edge(0, 1, 1.0);
    const std::size_t procs = 2;
    CostMatrix costs(2, procs, std::vector<double>{1.0, 1.0, 1.0, 1.0});
    const auto links = std::make_shared<UniformLinkModel>(/*latency=*/0.0, /*bandwidth=*/1.0);
    const Problem problem(std::move(dag), Machine::homogeneous(procs, links),
                          std::move(costs));
    const Schedule schedule = HeftScheduler().schedule(problem);
    const std::string json = trace::chrome_trace_json(schedule, problem);
    EXPECT_NO_THROW(JsonReader(json).parse()) << json;
}

}  // namespace
}  // namespace tsched
