// Unit tests for result tables (util/table.hpp) and CLI parsing
// (util/args.hpp).
#include <gtest/gtest.h>

#include <stdexcept>

#include "util/args.hpp"
#include "util/table.hpp"

namespace tsched {
namespace {

TEST(Table, MarkdownAlignsColumns) {
    Table t({"name", "value"});
    t.new_row().add("alpha").add(1.5, 1);
    t.new_row().add("b").add(22.25, 2);
    const std::string md = t.to_markdown();
    EXPECT_NE(md.find("| name  | value |"), std::string::npos);
    EXPECT_NE(md.find("| alpha | 1.5   |"), std::string::npos);
    EXPECT_NE(md.find("| b     | 22.25 |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
    Table t({"a", "b"});
    t.new_row().add("x,y").add("he said \"hi\"");
    const std::string csv = t.to_csv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
    EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, TypedAddsFormat) {
    Table t({"i", "u", "d"});
    t.new_row().add(-3).add(std::size_t{42}).add(3.14159, 3);
    EXPECT_EQ(t.at(0, 0), "-3");
    EXPECT_EQ(t.at(0, 1), "42");
    EXPECT_EQ(t.at(0, 2), "3.142");
}

TEST(Table, RejectsTooManyCells) {
    Table t({"only"});
    t.new_row().add("one");
    EXPECT_THROW(t.add("two"), std::logic_error);
}

TEST(Table, RejectsEmptyHeaders) {
    EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Table, ShortRowsRenderPadded) {
    Table t({"a", "b"});
    t.new_row().add("x");  // second cell missing
    const std::string md = t.to_markdown();
    EXPECT_NE(md.find("| x |"), std::string::npos);
}

namespace {
Args parse(std::initializer_list<const char*> argv) {
    std::vector<const char*> v{"prog"};
    v.insert(v.end(), argv.begin(), argv.end());
    return Args(static_cast<int>(v.size()), v.data());
}
}  // namespace

TEST(Args, KeyEqualsValue) {
    const Args a = parse({"--trials=25"});
    EXPECT_EQ(a.get_int("trials", 0), 25);
}

TEST(Args, KeySpaceValue) {
    const Args a = parse({"--name", "heft"});
    EXPECT_EQ(a.get_string("name", ""), "heft");
}

TEST(Args, BareFlagIsTrue) {
    const Args a = parse({"--verbose"});
    EXPECT_TRUE(a.get_bool("verbose", false));
    EXPECT_TRUE(a.has("verbose"));
    EXPECT_FALSE(a.has("quiet"));
}

TEST(Args, DefaultsWhenAbsent) {
    const Args a = parse({});
    EXPECT_EQ(a.get_int("n", 7), 7);
    EXPECT_EQ(a.get_double("x", 2.5), 2.5);
    EXPECT_EQ(a.get_string("s", "dflt"), "dflt");
    EXPECT_FALSE(a.get_bool("b", false));
}

TEST(Args, Lists) {
    const Args a = parse({"--sizes=10,20,30", "--ccr=0.5,1,5", "--algos=heft,ils"});
    EXPECT_EQ(a.get_int_list("sizes", {}), (std::vector<std::int64_t>{10, 20, 30}));
    EXPECT_EQ(a.get_double_list("ccr", {}), (std::vector<double>{0.5, 1.0, 5.0}));
    EXPECT_EQ(a.get_string_list("algos", {}), (std::vector<std::string>{"heft", "ils"}));
}

TEST(Args, ListDefaults) {
    const Args a = parse({});
    EXPECT_EQ(a.get_int_list("sizes", {1, 2}), (std::vector<std::int64_t>{1, 2}));
}

TEST(Args, Positional) {
    const Args a = parse({"input.tsg", "--n=3", "out.csv"});
    EXPECT_EQ(a.positional(), (std::vector<std::string>{"input.tsg", "out.csv"}));
}

TEST(Args, MalformedNumberThrows) {
    const Args a = parse({"--n=abc"});
    EXPECT_THROW((void)a.get_int("n", 0), std::invalid_argument);
    EXPECT_THROW((void)a.get_double("n", 0.0), std::invalid_argument);
    EXPECT_THROW((void)a.get_bool("n", false), std::invalid_argument);
}

TEST(Args, BooleanSpellings) {
    EXPECT_TRUE(parse({"--f=yes"}).get_bool("f", false));
    EXPECT_TRUE(parse({"--f=1"}).get_bool("f", false));
    EXPECT_FALSE(parse({"--f=off"}).get_bool("f", true));
    EXPECT_FALSE(parse({"--f=no"}).get_bool("f", true));
}

TEST(Args, CheckKnownAcceptsListedFlags) {
    const Args a = parse({"--trials=5", "--seed=1", "pos.tsg"});
    EXPECT_NO_THROW(a.check_known({"trials", "seed", "algos"}));
}

TEST(Args, CheckKnownNamesTheOffendingFlag) {
    const Args a = parse({"--trials=5", "--trails=50"});
    try {
        a.check_known({"trials"});
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& err) {
        EXPECT_NE(std::string(err.what()).find("--trails"), std::string::npos) << err.what();
    }
}

}  // namespace
}  // namespace tsched
