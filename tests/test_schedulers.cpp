// Property suite over every registered scheduler: validity, lower bounds,
// determinism, single-processor behaviour, homogeneous specialisation, and
// the documented relationships between algorithms (ILS vs HEFT, ablations).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>

#include "core/ils.hpp"
#include "core/registry.hpp"
#include "sched/heft.hpp"
#include "sched/validate.hpp"
#include "workload/instance.hpp"

namespace tsched {
namespace {

using workload::InstanceParams;
using workload::Shape;

struct Case {
    std::string scheduler;
    Shape shape;
    std::size_t size;
    std::size_t procs;
    double ccr;
    double beta;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
    const Case& c = info.param;
    std::string name = c.scheduler + "_" + workload::shape_name(c.shape) + "_s" +
                       std::to_string(c.size) + "_p" + std::to_string(c.procs);
    for (auto& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
    }
    return name + "_" + std::to_string(info.index);
}

class SchedulerPropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(SchedulerPropertyTest, ProducesValidBoundedDeterministicSchedules) {
    const Case& c = GetParam();
    InstanceParams params;
    params.shape = c.shape;
    params.size = c.size;
    params.num_procs = c.procs;
    params.ccr = c.ccr;
    params.beta = c.beta;
    const Problem problem = workload::make_instance(params, 0xabcdef);
    const auto scheduler = make_scheduler(c.scheduler);

    const Schedule schedule = scheduler->schedule(problem);

    // Valid under the independent checker.
    const auto result = validate(schedule, problem);
    ASSERT_TRUE(result.ok) << c.scheduler << ": " << result.message();
    EXPECT_TRUE(schedule.complete());

    // Lower bounds: critical path and average-work bounds.
    const double ms = schedule.makespan();
    EXPECT_GE(ms, problem.cp_lower_bound() - 1e-9) << c.scheduler;

    // Determinism: scheduling the same problem twice gives identical output.
    const Schedule again = scheduler->schedule(problem);
    EXPECT_DOUBLE_EQ(ms, again.makespan()) << c.scheduler;
    for (std::size_t v = 0; v < problem.num_tasks(); ++v) {
        EXPECT_EQ(schedule.primary(static_cast<TaskId>(v)).proc,
                  again.primary(static_cast<TaskId>(v)).proc);
    }

    // Non-duplicating schedulers use exactly one placement per task.
    if (c.scheduler != "dsh" && c.scheduler != "btdh" && c.scheduler.rfind("ils-d", 0) != 0) {
        EXPECT_EQ(schedule.num_duplicates(), 0u) << c.scheduler;
    }
}

std::vector<Case> make_cases() {
    std::vector<Case> cases;
    for (const auto& name : scheduler_names()) {
        cases.push_back({name, Shape::kLayered, 60, 4, 1.0, 0.75});
        cases.push_back({name, Shape::kGauss, 8, 3, 2.0, 0.5});
        cases.push_back({name, Shape::kFft, 16, 4, 0.5, 1.0});
    }
    // A few extra stress shapes for the main algorithms.
    for (const auto* name : {"ils", "ils-d", "heft", "dsh", "btdh", "cpop"}) {
        cases.push_back({name, Shape::kForkJoin, 12, 6, 5.0, 1.0});
        cases.push_back({name, Shape::kCholesky, 5, 4, 1.0, 0.25});
        cases.push_back({name, Shape::kChain, 20, 4, 1.0, 1.0});
        cases.push_back({name, Shape::kDiamond, 8, 4, 1.0, 1.0});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerPropertyTest,
                         ::testing::ValuesIn(make_cases()), case_name);

// ---------------------------------------------------------------------------
// Single-processor behaviour.
// ---------------------------------------------------------------------------

class SingleProcTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SingleProcTest, MakespanEqualsSerialTime) {
    InstanceParams params;
    params.size = 40;
    params.num_procs = 1;
    const Problem problem = workload::make_instance(params, 77);
    const auto scheduler = make_scheduler(GetParam());
    const Schedule s = scheduler->schedule(problem);
    ASSERT_TRUE(validate(s, problem).ok);
    // On one processor there is no communication and no idle gain: every
    // (non-duplicating) schedule is the serial execution.
    EXPECT_NEAR(s.makespan(), problem.costs().serial_time(0), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(NonDuplicating, SingleProcTest,
                         ::testing::Values("heft", "cpop", "hcpt", "dls", "etf", "mcp", "hlfet",
                                           "minmin", "maxmin", "random", "ils"));

// ---------------------------------------------------------------------------
// Documented relationships.
// ---------------------------------------------------------------------------

class IlsVsHeftTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IlsVsHeftTest, IlsNeverWorseThanHeft) {
    InstanceParams params;
    params.size = 80;
    params.num_procs = 8;
    params.ccr = 5.0;
    params.beta = 1.0;
    const Problem problem = workload::make_instance(params, GetParam());
    const Schedule ils = make_scheduler("ils")->schedule(problem);
    const Schedule heft = make_scheduler("heft")->schedule(problem);
    // The dual-mode structure guarantees ILS <= its greedy pass == HEFT.
    EXPECT_LE(ils.makespan(), heft.makespan() + 1e-9);
}

TEST_P(IlsVsHeftTest, IlsGreedyModeEqualsHeft) {
    InstanceParams params;
    params.size = 60;
    params.num_procs = 6;
    params.ccr = 1.0;
    const Problem problem = workload::make_instance(params, GetParam());
    const Schedule nola = make_scheduler("ils-nola")->schedule(problem);
    const Schedule heft = make_scheduler("heft")->schedule(problem);
    EXPECT_DOUBLE_EQ(nola.makespan(), heft.makespan());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlsVsHeftTest, ::testing::Range<std::uint64_t>(1, 13));

TEST(IlsDuplication, ImprovesIlsInAggregateAtHighCcr) {
    // Per-instance dominance is not guaranteed for greedy duplication (an
    // earlier local finish can steer later decisions badly), but at high CCR
    // the aggregate must improve clearly.
    double ils_total = 0.0;
    double ilsd_total = 0.0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        InstanceParams params;
        params.size = 60;
        params.num_procs = 6;
        params.ccr = 5.0;
        params.beta = 1.0;
        const Problem problem = workload::make_instance(params, seed);
        ils_total += make_scheduler("ils")->schedule(problem).makespan();
        ilsd_total += make_scheduler("ils-d")->schedule(problem).makespan();
    }
    EXPECT_LT(ilsd_total, ils_total);
}

TEST(Registry, KnowsAllNamesAndRejectsUnknown) {
    for (const auto& name : scheduler_names()) {
        const auto s = make_scheduler(name);
        EXPECT_EQ(s->name(), name);
    }
    EXPECT_THROW((void)make_scheduler("does-not-exist"), std::invalid_argument);
    EXPECT_THROW((void)make_scheduler("ils-bogus"), std::invalid_argument);
}

TEST(Registry, ParsesAblationVariants) {
    EXPECT_EQ(make_scheduler("ils-novar")->name(), "ils-novar");
    EXPECT_EQ(make_scheduler("ils-d-novar-nola")->name(), "ils-d-novar-nola");
    EXPECT_EQ(make_scheduler("ils-k2")->name(), "ils-k2");
    EXPECT_EQ(make_scheduler("heft-median")->name(), "heft-median");
}

TEST(Registry, DefaultComparisonSetIsRegistered) {
    for (const auto& name : default_comparison_set()) {
        EXPECT_NO_THROW((void)make_scheduler(name));
    }
}

TEST(HomogeneousSpecialisation, AllSchedulersHandleBetaZero) {
    for (const auto& name : scheduler_names()) {
        InstanceParams params;
        params.size = 40;
        params.num_procs = 4;
        params.beta = 0.0;
        const Problem problem = workload::make_instance(params, 3);
        const Schedule s = make_scheduler(name)->schedule(problem);
        const auto result = validate(s, problem);
        EXPECT_TRUE(result.ok) << name << ": " << result.message();
    }
}

TEST(HeftRankVariants, AllValidDifferentiatedByName) {
    EXPECT_EQ(HeftScheduler(RankCost::kMean).name(), "heft");
    EXPECT_EQ(HeftScheduler(RankCost::kMedian).name(), "heft-median");
    EXPECT_EQ(HeftScheduler(RankCost::kWorst).name(), "heft-worst");
    EXPECT_EQ(HeftScheduler(RankCost::kBest).name(), "heft-best");
    EXPECT_EQ(HeftScheduler(RankCost::kMean, false).name(), "heft-noins");
}

TEST(InsertionAblation, InsertionNeverHurtsHeft) {
    // Insertion-based HEFT is at least as good as non-insertion on the same
    // rank order for the overwhelming majority of instances; we assert the
    // aggregate, not per-instance dominance (which does not hold in theory).
    double ins_total = 0.0;
    double noins_total = 0.0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        InstanceParams params;
        params.size = 60;
        params.num_procs = 6;
        params.ccr = 2.0;
        const Problem problem = workload::make_instance(params, seed);
        ins_total += make_scheduler("heft")->schedule(problem).makespan();
        noins_total += make_scheduler("heft-noins")->schedule(problem).makespan();
    }
    EXPECT_LE(ins_total, noins_total + 1e-6);
}

}  // namespace
}  // namespace tsched
