// End-to-end integration tests: generator -> scheduler -> validator ->
// event simulator -> threaded executor -> metrics, plus TSG persistence of
// a generated experiment graph.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>

#include "core/registry.hpp"
#include "graph/serialize.hpp"
#include "metrics/metrics.hpp"
#include "metrics/runner.hpp"
#include "sched/validate.hpp"
#include "sim/event_sim.hpp"
#include "sim/executor.hpp"
#include "workload/instance.hpp"

namespace tsched {
namespace {

TEST(Integration, FullPipelineOnHeterogeneousInstance) {
    workload::InstanceParams params;
    params.shape = workload::Shape::kGauss;
    params.size = 10;
    params.num_procs = 4;
    params.ccr = 2.0;
    params.beta = 1.0;
    const Problem problem = workload::make_instance(params, 2024);

    for (const auto& name : default_comparison_set()) {
        const auto scheduler = make_scheduler(name);
        const Schedule schedule = scheduler->schedule(problem);

        // 1. validator
        const auto valid = validate(schedule, problem);
        ASSERT_TRUE(valid.ok) << name << ": " << valid.message();

        // 2. independent event simulation agrees
        const auto simulated = sim::simulate(schedule, problem);
        EXPECT_NEAR(simulated.makespan, schedule.makespan(), 1e-9) << name;

        // 3. the schedule actually runs
        std::atomic<int> executed{0};
        (void)sim::execute_threaded(schedule, problem.dag(),
                                    [&](TaskId, ProcId) { executed.fetch_add(1); });
        EXPECT_GE(executed.load(), static_cast<int>(problem.num_tasks())) << name;

        // 4. metrics are sane
        EXPECT_GE(slr(schedule, problem), 1.0 - 1e-9) << name;
        EXPECT_GT(speedup(schedule, problem), 0.0) << name;
    }
}

TEST(Integration, PersistedGraphReproducesSchedules) {
    workload::InstanceParams params;
    params.size = 50;
    params.num_procs = 4;
    const Problem original = workload::make_instance(params, 555);

    // Persist the generated DAG and reload it.
    const auto path = std::filesystem::temp_directory_path() / "tsched_integration.tsg";
    save_tsg(path.string(), original.dag());
    const Dag reloaded = load_tsg(path.string());
    std::filesystem::remove(path);
    ASSERT_EQ(original.dag(), reloaded);

    // Rebind the identical costs/machine: schedules must be identical.
    const Problem rebuilt(std::make_shared<const Dag>(reloaded),
                          std::make_shared<const Machine>(original.machine()),
                          std::make_shared<const CostMatrix>(original.costs()));
    for (const auto* name : {"ils", "heft", "dsh"}) {
        const Schedule a = make_scheduler(name)->schedule(original);
        const Schedule b = make_scheduler(name)->schedule(rebuilt);
        EXPECT_DOUBLE_EQ(a.makespan(), b.makespan()) << name;
    }
}

TEST(Integration, HomogeneousAndHeterogeneousShapeConsistency) {
    // The classic sanity shape: with everything else fixed, more processors
    // never hurt the best list scheduler's makespan much; speedup grows.
    workload::InstanceParams params;
    params.size = 100;
    params.ccr = 0.5;
    params.beta = 0.5;
    double prev_speedup = 0.0;
    for (const std::size_t procs : {2u, 4u, 8u, 16u}) {
        params.num_procs = procs;
        const auto result =
            run_point(params, make_schedulers(std::vector<std::string>{"ils"}), 10, 99);
        const double sp = result.agg.at("ils").speedup.mean();
        EXPECT_GT(sp, prev_speedup * 0.95);  // monotone up to noise
        prev_speedup = sp;
    }
    EXPECT_GT(prev_speedup, 2.0);  // 16 procs must yield real parallelism
}

TEST(Integration, NoiseRobustnessPipeline) {
    workload::InstanceParams params;
    params.size = 60;
    params.num_procs = 6;
    const Problem problem = workload::make_instance(params, 31);
    const Schedule schedule = make_scheduler("ils")->schedule(problem);
    const double base = sim::simulate(schedule, problem).makespan;
    Rng rng(5);
    RunningStats realized;
    for (int i = 0; i < 20; ++i) {
        realized.add(sim::simulate_noisy(schedule, problem, 0.3, rng).makespan);
    }
    // Realised makespans cluster around the static estimate.
    EXPECT_NEAR(realized.mean(), base, 0.25 * base);
    EXPECT_GT(realized.stddev(), 0.0);
}

TEST(Integration, RingCommunicationCostsExceedCrossbar) {
    // Same DAG, same execution costs, same edge volumes — only the
    // interconnect differs.  Ring comm times dominate crossbar comm times
    // pointwise (store-and-forward over >= 1 hops), so HEFT's makespans are
    // longer on the ring in aggregate.
    double ring_total = 0.0;
    double xbar_total = 0.0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        workload::InstanceParams params;
        params.size = 80;
        params.num_procs = 8;
        params.ccr = 5.0;
        params.latency = 0.5;
        const Problem base = workload::make_instance(params, seed);
        const auto dag = std::make_shared<const Dag>(base.dag());
        const auto costs = std::make_shared<const CostMatrix>(base.costs());
        const auto xbar_machine = std::make_shared<const Machine>(Machine::homogeneous(
            8, TopologyLinkModel::fully_connected(8, params.latency, params.bandwidth)));
        const auto ring_machine = std::make_shared<const Machine>(Machine::homogeneous(
            8, TopologyLinkModel::ring(8, params.latency, params.bandwidth)));
        const Problem xbar(dag, xbar_machine, costs);
        const Problem ring(dag, ring_machine, costs);
        const auto heft = make_scheduler("heft");
        xbar_total += heft->schedule(xbar).makespan();
        ring_total += heft->schedule(ring).makespan();
    }
    EXPECT_GT(ring_total, xbar_total);
}

}  // namespace
}  // namespace tsched
