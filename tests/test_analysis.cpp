// Diagnostics engine + problem/schedule lint passes.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "analysis/diagnostics.hpp"
#include "analysis/problem_lints.hpp"
#include "analysis/schedule_lints.hpp"
#include "analysis/serve_lints.hpp"
#include "sched/validate.hpp"
#include "util/rng.hpp"
#include "workload/costs.hpp"
#include "workload/instance.hpp"

namespace tsched::analysis {
namespace {

bool has_code(const Diagnostics& diags, Code code) {
    return std::any_of(diags.all().begin(), diags.all().end(),
                       [&](const Diagnostic& d) { return d.code == code; });
}

std::size_t count_code(const Diagnostics& diags, Code code) {
    return static_cast<std::size_t>(
        std::count_if(diags.all().begin(), diags.all().end(),
                      [&](const Diagnostic& d) { return d.code == code; }));
}

/// 0 -> 1 (data 2) on two procs, exec cost constant 3, links latency 0 bw 1.
Problem tiny_problem() {
    Dag dag;
    dag.add_task(3.0);
    dag.add_task(3.0);
    dag.add_edge(0, 1, 2.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs = CostMatrix::uniform(dag, 2);
    return Problem(std::move(dag), std::move(machine), std::move(costs));
}

// ---------------------------------------------------------------------------
// Code registry and rendering.
// ---------------------------------------------------------------------------

TEST(Diagnostics, CodeNamesRoundTrip) {
    for (const Code code : all_codes()) {
        const std::string name = code_name(code);
        EXPECT_EQ(name.size(), 6u);
        EXPECT_EQ(name.substr(0, 2), "TS");
        const auto back = code_from_name(name);
        ASSERT_TRUE(back.has_value()) << name;
        EXPECT_EQ(*back, code);
        EXPECT_STRNE(code_title(code), "unknown code");
    }
    EXPECT_FALSE(code_from_name("TS9999").has_value());
    EXPECT_FALSE(code_from_name("XX0101").has_value());
    EXPECT_FALSE(code_from_name("TS01").has_value());
}

TEST(Diagnostics, ValidityCodesDefaultToError) {
    for (const Code code : all_codes()) {
        const auto value = static_cast<unsigned>(code);
        if (value >= 400 && value < 500) {
            EXPECT_EQ(default_severity(code), Severity::kError) << code_name(code);
        }
        // TS05xx is the quality band (warnings/info); the TS06xx fault band
        // is back to hard errors (an invalid fault plan or repair cannot be
        // simulated at all).
        if (value >= 500 && value < 600) {
            EXPECT_NE(default_severity(code), Severity::kError) << code_name(code);
        }
        if (value >= 600 && value < 700) {
            EXPECT_EQ(default_severity(code), Severity::kError) << code_name(code);
        }
        // TS07xx serve-config lints are warnings (odd but runnable knob
        // combinations) except the unknown degrade algorithm, which fails
        // every over-budget request at runtime.
        if (value >= 700 && value < 800) {
            if (code == Code::kServeDegradeUnknownAlgo) {
                EXPECT_EQ(default_severity(code), Severity::kError) << code_name(code);
            } else {
                EXPECT_EQ(default_severity(code), Severity::kWarning) << code_name(code);
            }
        }
        // TS08xx net-config lints: warnings for odd-but-runnable knobs; the
        // two configs that can never answer a request (frame cap below a
        // minimal response, zero dispatch budget) are errors.
        if (value >= 800 && value < 900) {
            if (code == Code::kNetFrameCapTiny || code == Code::kNetDispatchStarved) {
                EXPECT_EQ(default_severity(code), Severity::kError) << code_name(code);
            } else {
                EXPECT_EQ(default_severity(code), Severity::kWarning) << code_name(code);
            }
        }
    }
}

TEST(Diagnostics, CountsPerSeverity) {
    Diagnostics diags;
    diags.add(Code::kSchedPrecedence, SourceLoc{1, 0, 0}, "a");
    diags.add(Code::kSchedLoadImbalance, SourceLoc{}, "b");
    diags.add(Code::kSchedIdleFragmentation, SourceLoc{}, "c");
    diags.add(Code::kDagCycle, Severity::kNote, SourceLoc{}, "demoted");
    EXPECT_EQ(diags.size(), 4u);
    EXPECT_EQ(diags.error_count(), 1u);
    EXPECT_EQ(diags.warning_count(), 1u);
    EXPECT_EQ(diags.count(Severity::kInfo), 1u);
    EXPECT_EQ(diags.count(Severity::kNote), 1u);
    EXPECT_TRUE(diags.has_errors());
    diags.clear();
    EXPECT_TRUE(diags.empty());
    EXPECT_FALSE(diags.has_errors());
}

TEST(Diagnostics, RenderTextShowsCodeSeverityAndSummary) {
    Diagnostics diags;
    diags.add(Code::kSchedPrecedence, SourceLoc{1, 1, 0}, "task 1 starts too early");
    const std::string text = render_text(diags);
    EXPECT_NE(text.find("error[TS0406] task 1 starts too early"), std::string::npos);
    EXPECT_NE(text.find("1 error(s), 0 warning(s)"), std::string::npos);
}

TEST(Diagnostics, RenderTextTruncates) {
    Diagnostics diags;
    for (int i = 0; i < 5; ++i) {
        diags.add(Code::kSchedMissingTask, SourceLoc{i, kInvalidProc, -1},
                  "task " + std::to_string(i));
    }
    const std::string text = render_text(diags, 2);
    EXPECT_NE(text.find("... and 3 more"), std::string::npos);
    EXPECT_NE(text.find("5 error(s)"), std::string::npos);
}

TEST(Diagnostics, JsonRoundTripsExactly) {
    Diagnostics diags;
    diags.add(Code::kSchedPrecedence, SourceLoc{3, 1, 2}, "quote \" slash \\ line\nbreak\ttab");
    diags.add(Code::kDagCycle, SourceLoc{}, "no location");
    diags.add(Code::kSchedLoadImbalance, Severity::kInfo, SourceLoc{kInvalidTask, 7, -1},
              "proc only");
    const std::string json = render_json(diags);
    const Diagnostics back = parse_json(json);
    EXPECT_EQ(back, diags);
    EXPECT_EQ(render_json(back), json);
}

TEST(Diagnostics, JsonRoundTripsEmpty) {
    const Diagnostics diags;
    EXPECT_EQ(parse_json(render_json(diags)), diags);
}

TEST(Diagnostics, ParseJsonRejectsGarbage) {
    EXPECT_THROW(parse_json("not json"), std::runtime_error);
    EXPECT_THROW(parse_json("{\"diagnostics\":[{\"code\":\"TS9999\","
                            "\"severity\":\"error\",\"message\":\"x\"}]}"),
                 std::runtime_error);
}

// ---------------------------------------------------------------------------
// DAG lints.
// ---------------------------------------------------------------------------

TEST(ProblemLints, CleanDagHasNoFindings) {
    Dag dag;
    dag.add_task(1.0);
    dag.add_task(2.0);
    dag.add_edge(0, 1, 1.0);
    Diagnostics diags;
    lint_dag(dag, diags);
    EXPECT_TRUE(diags.empty()) << render_text(diags);
}

TEST(ProblemLints, DetectsCycle) {
    Dag dag;
    dag.add_task();
    dag.add_task();
    dag.add_task();
    dag.add_edge(0, 1);
    dag.add_edge(1, 2);
    dag.add_edge(2, 0);
    Diagnostics diags;
    lint_dag(dag, diags);
    EXPECT_TRUE(has_code(diags, Code::kDagCycle));
    EXPECT_TRUE(diags.has_errors());
}

TEST(ProblemLints, DetectsBadAndZeroWork) {
    Dag dag;
    const TaskId a = dag.add_task(1.0);
    const TaskId b = dag.add_task(1.0);
    dag.add_edge(a, b, 1.0);
    dag.set_work(a, -2.0);
    dag.set_work(b, 0.0);
    Diagnostics diags;
    lint_dag(dag, diags);
    EXPECT_TRUE(has_code(diags, Code::kDagBadWork));
    EXPECT_TRUE(has_code(diags, Code::kDagZeroWork));
}

TEST(ProblemLints, DetectsNonFiniteWork) {
    // Edge data is validated at every construction path (add_edge,
    // set_edge_data, read_tsg), so TS0104/TS0105/TS0106 stay defensive; NaN
    // work is reachable through set_work and must be caught.
    Dag dag;
    const TaskId a = dag.add_task(1.0);
    dag.add_task(1.0);
    dag.add_edge(0, 1, 1.0);
    dag.set_work(a, std::numeric_limits<double>::quiet_NaN());
    Diagnostics diags;
    lint_dag(dag, diags);
    EXPECT_TRUE(has_code(diags, Code::kDagBadWork));
}

TEST(ProblemLints, DetectsDisconnectionAndIsolation) {
    Dag dag;
    dag.add_task(1.0);
    dag.add_task(1.0);
    dag.add_task(1.0);
    dag.add_edge(0, 1, 1.0);  // task 2 is isolated
    Diagnostics diags;
    lint_dag(dag, diags);
    EXPECT_TRUE(has_code(diags, Code::kDagDisconnected));
    EXPECT_TRUE(has_code(diags, Code::kDagIsolatedTask));
}

TEST(ProblemLints, DetectsTransitivelyRedundantEdge) {
    Dag dag;
    dag.add_task(1.0);
    dag.add_task(1.0);
    dag.add_task(1.0);
    dag.add_edge(0, 1, 1.0);
    dag.add_edge(1, 2, 1.0);
    dag.add_edge(0, 2, 1.0);  // implied by 0 -> 1 -> 2
    Diagnostics diags;
    lint_dag(dag, diags);
    EXPECT_EQ(count_code(diags, Code::kDagRedundantEdge), 1u);
    EXPECT_FALSE(diags.has_errors());  // info severity
}

// ---------------------------------------------------------------------------
// Cost-matrix lints and calibration.
// ---------------------------------------------------------------------------

TEST(ProblemLints, DegenerateRowsFlaggedWhenBetaDeclared) {
    Dag dag;
    for (int i = 0; i < 3; ++i) dag.add_task(5.0);
    const CostMatrix costs = CostMatrix::uniform(dag, 4);
    Diagnostics diags;
    lint_cost_matrix(costs, diags, 1.0);
    EXPECT_EQ(count_code(diags, Code::kCostDegenerateRow), 3u);
    EXPECT_TRUE(has_code(diags, Code::kCostBetaMismatch));

    // Without a declared beta the same matrix is perfectly fine.
    Diagnostics clean;
    lint_cost_matrix(costs, clean);
    EXPECT_TRUE(clean.empty()) << render_text(clean);
}

TEST(ProblemLints, EstimateBetaTracksGeneratedHeterogeneity) {
    Dag dag;
    for (int i = 0; i < 200; ++i) dag.add_task(10.0);
    Rng rng(42);
    workload::CostParams params;
    params.num_procs = 8;
    params.beta = 1.0;
    const CostMatrix costs = workload::make_cost_matrix(dag, params, rng);
    EXPECT_NEAR(estimate_beta(costs), 1.0, 0.2);

    Diagnostics diags;
    lint_cost_matrix(costs, diags, 1.0);
    EXPECT_FALSE(has_code(diags, Code::kCostBetaMismatch)) << render_text(diags);
}

TEST(ProblemLints, DimensionMismatchIsCoded) {
    Dag dag;
    dag.add_task(1.0);
    dag.add_task(1.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    const Machine machine = Machine::homogeneous(2, links);
    const CostMatrix costs(1, 3, {1.0, 1.0, 1.0});  // wrong on both axes
    Diagnostics diags;
    EXPECT_FALSE(check_dimensions(dag, machine, costs, diags));
    EXPECT_EQ(count_code(diags, Code::kCostDimMismatch), 2u);
}

TEST(ProblemLints, WellCalibratedInstancePasses) {
    workload::InstanceParams params;
    params.size = 60;
    params.ccr = 1.0;
    params.beta = 0.5;
    const Problem problem = workload::make_instance(params, 7);
    InstanceExpectations expect;
    expect.ccr = params.ccr;
    expect.beta = params.beta;
    expect.avg_exec = params.avg_exec;
    Diagnostics diags;
    lint_problem(problem, diags, expect);
    EXPECT_FALSE(diags.has_errors()) << render_text(diags);
    EXPECT_FALSE(has_code(diags, Code::kInstanceCcrMismatch));
}

TEST(ProblemLints, MiscalibratedCcrIsAnError) {
    workload::InstanceParams params;
    params.size = 60;
    params.ccr = 1.0;
    const Problem problem = workload::make_instance(params, 7);
    InstanceExpectations expect;
    expect.ccr = 2.5;  // instance was built for CCR 1.0 — off by >25%
    Diagnostics diags;
    lint_calibration(problem, diags, expect);
    EXPECT_TRUE(has_code(diags, Code::kInstanceCcrMismatch));
    EXPECT_TRUE(diags.has_errors());
}

// ---------------------------------------------------------------------------
// Schedule lints: validity family.
// ---------------------------------------------------------------------------

TEST(ScheduleLints, CleanScheduleHasNoErrors) {
    const Problem problem = tiny_problem();
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 3.0);
    s.add(1, 0, 3.0, 6.0);
    Diagnostics diags;
    lint_schedule(s, problem, diags);
    EXPECT_FALSE(diags.has_errors()) << render_text(diags);
}

TEST(ScheduleLints, DimensionMismatchShortCircuits) {
    const Problem problem = tiny_problem();
    const Schedule s(2, 5);
    Diagnostics diags;
    lint_schedule(s, problem, diags);
    EXPECT_EQ(diags.size(), 1u);
    EXPECT_TRUE(has_code(diags, Code::kSchedDimMismatch));
}

TEST(ScheduleLints, EachValidityCodeFires) {
    const Problem problem = tiny_problem();
    {
        Schedule s(2, 2);
        s.add(0, 0, 0.0, 3.0);
        Diagnostics diags;
        lint_schedule(s, problem, diags);
        EXPECT_TRUE(has_code(diags, Code::kSchedMissingTask));
    }
    {
        Schedule s(2, 2);
        s.add(0, 0, 0.0, 4.0);  // cost is 3
        s.add(1, 1, 6.0, 9.0);
        Diagnostics diags;
        lint_schedule(s, problem, diags);
        EXPECT_TRUE(has_code(diags, Code::kSchedDurationMismatch));
    }
    {
        Schedule s(2, 2);
        s.add(0, 0, 0.0, 3.0);
        s.add(1, 0, 2.0, 5.0);  // overlaps task 0 on P0
        Diagnostics diags;
        lint_schedule(s, problem, diags);
        EXPECT_TRUE(has_code(diags, Code::kSchedOverlap));
    }
    {
        Schedule s(2, 2);
        s.add(0, 0, 0.0, 3.0);
        s.add(1, 1, 4.0, 7.0);  // data arrives at 5
        Diagnostics diags;
        lint_schedule(s, problem, diags);
        EXPECT_TRUE(has_code(diags, Code::kSchedPrecedence));
        EXPECT_FALSE(has_code(diags, Code::kSchedBelowLowerBound));  // makespan 7 >= 6
    }
}

TEST(ScheduleLints, ImpossibleMakespanBelowLowerBound) {
    const Problem problem = tiny_problem();  // CP lower bound = 6
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 3.0);
    s.add(1, 1, 0.0, 3.0);  // "parallel chain": precedence broken, makespan 3
    Diagnostics diags;
    lint_schedule(s, problem, diags);
    EXPECT_TRUE(has_code(diags, Code::kSchedPrecedence));
    EXPECT_TRUE(has_code(diags, Code::kSchedBelowLowerBound));
}

TEST(ScheduleLints, ViolationExactlyAtEpsilonIsAllowed) {
    const Problem problem = tiny_problem();
    const double eps = 1e-6;
    {
        Schedule s(2, 2);  // data arrives on P1 at 5; start eps early is absorbed
        s.add(0, 0, 0.0, 3.0);
        s.add(1, 1, 5.0 - eps, 8.0 - eps);
        Diagnostics diags;
        ScheduleLintOptions options;
        options.time_eps = eps;
        lint_schedule(s, problem, diags, options);
        EXPECT_FALSE(diags.has_errors()) << render_text(diags);
    }
    {
        Schedule s(2, 2);  // twice the epsilon is a violation
        s.add(0, 0, 0.0, 3.0);
        s.add(1, 1, 5.0 - 2 * eps, 8.0 - 2 * eps);
        Diagnostics diags;
        ScheduleLintOptions options;
        options.time_eps = eps;
        lint_schedule(s, problem, diags, options);
        EXPECT_TRUE(has_code(diags, Code::kSchedPrecedence));
    }
}

TEST(ScheduleLints, EmptyProblemAndScheduleAreClean) {
    const Dag dag;
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    const Problem problem(dag, Machine::homogeneous(1, links), CostMatrix(0, 1, {}));
    const Schedule s(0, 1);
    Diagnostics diags;
    lint_schedule(s, problem, diags);
    EXPECT_TRUE(diags.empty()) << render_text(diags);
}

TEST(ScheduleLints, SingleTaskProblem) {
    Dag dag;
    dag.add_task(3.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    const Problem problem(dag, Machine::homogeneous(2, links), CostMatrix::uniform(dag, 2));
    Schedule s(1, 2);
    s.add(0, 1, 0.0, 3.0);
    Diagnostics diags;
    lint_schedule(s, problem, diags);
    EXPECT_FALSE(diags.has_errors()) << render_text(diags);
}

// ---------------------------------------------------------------------------
// Schedule lints: quality family.
// ---------------------------------------------------------------------------

TEST(ScheduleLints, ConsumedDuplicateIsNotFlagged) {
    const Problem problem = tiny_problem();
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 3.0);
    s.add(0, 1, 0.0, 3.0);  // duplicate feeds task 1 locally
    s.add(1, 1, 3.0, 6.0);
    Diagnostics diags;
    lint_schedule(s, problem, diags);
    EXPECT_FALSE(has_code(diags, Code::kSchedRedundantDuplicate)) << render_text(diags);
    EXPECT_FALSE(has_code(diags, Code::kSchedSameProcDuplicate));
}

TEST(ScheduleLints, UnconsumedDuplicateWarns) {
    const Problem problem = tiny_problem();
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 3.0);
    s.add(0, 1, 0.0, 3.0);  // consumer sits on P0; this copy helps nobody
    s.add(1, 0, 3.0, 6.0);
    Diagnostics diags;
    lint_schedule(s, problem, diags);
    EXPECT_TRUE(has_code(diags, Code::kSchedRedundantDuplicate));
    EXPECT_FALSE(diags.has_errors());
}

TEST(ScheduleLints, SameProcessorDuplicateWarns) {
    const Problem problem = tiny_problem();
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 3.0);
    s.add(0, 0, 3.0, 6.0);  // duplicate of task 0 on its own processor
    s.add(1, 0, 6.0, 9.0);
    Diagnostics diags;
    lint_schedule(s, problem, diags);
    EXPECT_TRUE(has_code(diags, Code::kSchedSameProcDuplicate));
}

TEST(ScheduleLints, IdleFragmentationReported) {
    Dag dag;
    dag.add_task(1.0);
    dag.add_task(1.0);
    dag.add_edge(0, 1, 8.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    const Problem problem(dag, Machine::homogeneous(2, links), CostMatrix::uniform(dag, 2));
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 1.0);
    s.add(1, 1, 9.0, 10.0);  // waits for the 8-unit transfer; both procs mostly idle
    Diagnostics diags;
    lint_schedule(s, problem, diags);
    EXPECT_TRUE(has_code(diags, Code::kSchedIdleFragmentation)) << render_text(diags);
    EXPECT_FALSE(diags.has_errors());
}

TEST(ScheduleLints, LoadImbalanceWarns) {
    Dag dag;  // chain of three heavy tasks plus one light independent task
    dag.add_task(3.0);
    dag.add_task(3.0);
    dag.add_task(3.0);
    dag.add_task(0.5);
    dag.add_edge(0, 1, 0.0);
    dag.add_edge(1, 2, 0.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    const Problem problem(dag, Machine::homogeneous(4, links), CostMatrix::uniform(dag, 4));
    Schedule s(4, 4);
    s.add(0, 0, 0.0, 3.0);
    s.add(1, 0, 3.0, 6.0);
    s.add(2, 0, 6.0, 9.0);
    s.add(3, 1, 0.0, 0.5);
    Diagnostics diags;
    ScheduleLintOptions options;
    options.imbalance_warn_ratio = 2.0;
    lint_schedule(s, problem, diags, options);
    EXPECT_TRUE(has_code(diags, Code::kSchedLoadImbalance)) << render_text(diags);
}

TEST(ScheduleLints, QualityPassesCanBeDisabled) {
    const Problem problem = tiny_problem();
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 3.0);
    s.add(0, 1, 0.0, 3.0);
    s.add(1, 0, 3.0, 6.0);
    Diagnostics diags;
    ScheduleLintOptions options;
    options.quality = false;
    lint_schedule(s, problem, diags, options);
    EXPECT_TRUE(diags.empty()) << render_text(diags);
}

// ---------------------------------------------------------------------------
// Debug checks and the validate() shim.
// ---------------------------------------------------------------------------

TEST(ScheduleLints, RunDebugChecksThrowsOnErrorsOnly) {
    const Problem problem = tiny_problem();
    Schedule good(2, 2);
    good.add(0, 0, 0.0, 3.0);
    good.add(0, 1, 0.0, 3.0);  // redundant duplicate: warning, not error
    good.add(1, 0, 3.0, 6.0);
    EXPECT_NO_THROW(run_debug_checks(good, problem));

    Schedule bad(2, 2);
    bad.add(0, 0, 0.0, 3.0);
    bad.add(1, 1, 0.0, 3.0);
    EXPECT_THROW(run_debug_checks(bad, problem), std::invalid_argument);
}

TEST(ValidateShim, ReportsTotalViolationsAndTruncationNote) {
    const Problem problem = tiny_problem();
    const Schedule s(2, 2);  // both tasks missing
    const auto result = validate(s, problem, 1e-6, 1);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.total_violations, 2u);
    ASSERT_EQ(result.errors.size(), 2u);
    EXPECT_NE(result.errors.back().find("1 more violation"), std::string::npos);
}

TEST(ValidateShim, UntruncatedResultHasNoNote) {
    const Problem problem = tiny_problem();
    const Schedule s(2, 2);
    const auto result = validate(s, problem);
    EXPECT_EQ(result.total_violations, 2u);
    EXPECT_EQ(result.errors.size(), 2u);
    for (const auto& msg : result.errors) {
        EXPECT_EQ(msg.find("more violation"), std::string::npos) << msg;
    }
}

TEST(ValidateShim, DuplicatePlacementsOnOneProcessorStayValid) {
    // Same-processor duplicates are legal (quality warning only); the legacy
    // API must keep accepting them.
    const Problem problem = tiny_problem();
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 3.0);
    s.add(0, 0, 3.0, 6.0);
    s.add(1, 0, 6.0, 9.0);
    EXPECT_TRUE(validate(s, problem).ok);
}

// ---------------------------------------------------------------------------
// Serving overload-config lints (TS07xx, analysis/serve_lints.hpp).
// ---------------------------------------------------------------------------

TEST(ServeLints, DefaultConfigIsClean) {
    Diagnostics diags;
    lint_serve_config(serve::ServeConfig{}, /*deadline_ms=*/0.0, diags);
    EXPECT_TRUE(diags.empty()) << render_text(diags);
}

TEST(ServeLints, BoundedConfigWithSaneKnobsIsClean) {
    serve::ServeConfig config;
    config.max_inflight = 8;
    config.max_pending = 16;
    config.shed_policy = serve::ShedPolicy::kDegrade;
    config.degrade_algo = "heft";
    config.drain_timeout_ms = 500.0;
    Diagnostics diags;
    lint_serve_config(config, /*deadline_ms=*/100.0, diags);
    EXPECT_TRUE(diags.empty()) << render_text(diags);
}

TEST(ServeLints, PendingQueueBehindUnboundedAdmissionIsUnreachable) {
    serve::ServeConfig config;
    config.max_pending = 16;  // max_inflight stays 0: the queue can never fill
    Diagnostics diags;
    lint_serve_config(config, 0.0, diags);
    EXPECT_TRUE(has_code(diags, Code::kServePendingUnreachable));
    EXPECT_FALSE(diags.has_errors());
}

TEST(ServeLints, DropOldestWithNoQueueDegeneratesToRejectNew) {
    serve::ServeConfig config;
    config.max_inflight = 4;
    config.max_pending = 0;
    config.shed_policy = serve::ShedPolicy::kDropOldest;
    Diagnostics diags;
    lint_serve_config(config, 0.0, diags);
    EXPECT_TRUE(has_code(diags, Code::kServePolicyNeedsQueue));
}

TEST(ServeLints, UnknownDegradeAlgorithmIsAnError) {
    serve::ServeConfig config;
    config.shed_policy = serve::ShedPolicy::kDegrade;
    config.degrade_algo = "no-such-scheduler";
    Diagnostics diags;
    lint_serve_config(config, 0.0, diags);
    EXPECT_TRUE(has_code(diags, Code::kServeDegradeUnknownAlgo));
    EXPECT_TRUE(diags.has_errors());
    // Ablation variants resolve through make_scheduler even though they are
    // not in scheduler_names(); they must not be flagged.
    config.degrade_algo = "heft-median";
    Diagnostics variant;
    lint_serve_config(config, 0.0, variant);
    EXPECT_FALSE(has_code(variant, Code::kServeDegradeUnknownAlgo)) << render_text(variant);
}

TEST(ServeLints, NegativeOrNonFiniteBudgetsWarn) {
    serve::ServeConfig config;
    config.drain_timeout_ms = -1.0;
    Diagnostics diags;
    lint_serve_config(config, /*deadline_ms=*/-5.0, diags);
    EXPECT_TRUE(has_code(diags, Code::kServeBadDeadline));
    EXPECT_TRUE(has_code(diags, Code::kServeBadDrainTimeout));
    config.drain_timeout_ms = std::numeric_limits<double>::quiet_NaN();
    Diagnostics nan_diags;
    lint_serve_config(config, std::numeric_limits<double>::infinity(), nan_diags);
    EXPECT_TRUE(has_code(nan_diags, Code::kServeBadDeadline));
    EXPECT_TRUE(has_code(nan_diags, Code::kServeBadDrainTimeout));
}

}  // namespace
}  // namespace tsched::analysis
