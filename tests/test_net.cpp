// Network serving tests (src/net): frame format + hostile-input battery,
// codec round trips, and live socket integration — handshake, cache-hit
// responses, multi-client replay, malformed-frame resilience, backpressure,
// connection caps, and drain semantics (including two servers sharing one
// ThreadPool: draining one must not disturb the other).
//
// Every suite name starts with "Net" so the CI TSan leg can select the
// whole battery with -R 'Net'.  Integration tests bind loopback port 0
// (ephemeral) — no fixed ports, no collisions, no flakes.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/time.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/net_lints.hpp"
#include "net/client.hpp"
#include "net/codec.hpp"
#include "net/frame.hpp"
#include "net/net_replay.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "sched/schedule.hpp"
#include "serve/chaos.hpp"
#include "serve/request.hpp"
#include "serve/request_trace.hpp"
#include "workload/instance.hpp"
#include "util/fingerprint.hpp"
#include "util/thread_pool.hpp"

namespace tsched {
namespace {

using net::Frame;
using net::FrameDecoder;
using net::FrameError;
using net::FrameType;

// ---------------------------------------------------------------------------
// Shared fixtures/helpers.
// ---------------------------------------------------------------------------

serve::TraceRequest small_request(std::uint64_t seed = 1) {
    serve::TraceRequest request;
    request.algo = "heft";
    request.shape = workload::Shape::kLayered;
    request.size = 30;
    request.procs = 4;
    request.net = workload::Net::kUniform;
    request.ccr = 1.0;
    request.beta = 0.5;
    request.seed = seed;
    return request;
}

std::vector<serve::TraceRequest> small_trace(std::size_t count) {
    std::vector<serve::TraceRequest> trace;
    for (std::size_t i = 0; i < count; ++i)
        trace.push_back(small_request(1 + i % (count / 2 + 1)));  // ~half repeats
    return trace;
}

net::ServerConfig loopback_config() {
    net::ServerConfig config;
    config.port = 0;
    return config;
}

/// Raw (non-ServeClient) connection for protocol-violation tests.
struct RawConn {
    net::FdHandle fd;
    FrameDecoder decoder;

    explicit RawConn(std::uint16_t port) : fd(net::connect_tcp("127.0.0.1", port)) {}

    void send_bytes(std::string_view bytes) {
        std::size_t written = 0;
        while (written < bytes.size()) {
            const ssize_t n =
                ::send(fd.get(), bytes.data() + written, bytes.size() - written, MSG_NOSIGNAL);
            ASSERT_GT(n, 0) << "send failed: errno " << errno;
            written += static_cast<std::size_t>(n);
        }
    }

    /// Blocking read until one frame decodes or the peer closes (nullopt).
    std::optional<Frame> read_frame() {
        while (true) {
            if (auto frame = decoder.next()) return frame;
            if (decoder.failed()) return std::nullopt;
            char buf[4096];
            ssize_t n = 0;
            do {
                n = ::recv(fd.get(), buf, sizeof buf, 0);
            } while (n < 0 && errno == EINTR);
            if (n <= 0) return std::nullopt;
            decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        }
    }

    /// Like read_frame() but gives up after `ms` milliseconds of silence —
    /// for corrupted streams where the server may legitimately be waiting
    /// for payload bytes that will never arrive.
    std::optional<Frame> read_frame_with_timeout(int ms) {
        timeval tv{};
        tv.tv_sec = ms / 1000;
        tv.tv_usec = (ms % 1000) * 1000;
        ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        while (true) {
            if (auto frame = decoder.next()) return frame;
            if (decoder.failed()) return std::nullopt;
            char buf[4096];
            const ssize_t n = ::recv(fd.get(), buf, sizeof buf, 0);
            if (n <= 0) return std::nullopt;  // EOF, timeout, or reset
            decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        }
    }

    /// True once the peer closes (EOF after draining anything pending).
    bool peer_closed() {
        while (true) {
            char buf[4096];
            ssize_t n = 0;
            do {
                n = ::recv(fd.get(), buf, sizeof buf, 0);
            } while (n < 0 && errno == EINTR);
            if (n == 0) return true;
            if (n < 0) return errno == ECONNRESET;
        }
    }
};

// ---------------------------------------------------------------------------
// NetFrame: format, incremental decode, hostile input.
// ---------------------------------------------------------------------------

TEST(NetFrame, RoundTripAllTypes) {
    for (const FrameType type : {FrameType::kHello, FrameType::kHelloAck, FrameType::kRequest,
                                 FrameType::kResponse, FrameType::kError}) {
        const std::string payload = "payload for " + std::string(net::frame_type_name(type));
        const std::string bytes = net::encode_frame(type, payload);
        ASSERT_EQ(bytes.size(), net::kFrameHeaderBytes + payload.size());
        FrameDecoder decoder;
        decoder.feed(bytes);
        const auto frame = decoder.next();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(frame->type, type);
        EXPECT_EQ(frame->payload, payload);
        EXPECT_FALSE(decoder.next().has_value());
        EXPECT_FALSE(decoder.failed());
        EXPECT_EQ(decoder.buffered(), 0u);
    }
}

TEST(NetFrame, GoldenHeaderBytes) {
    // "abc": the exact header layout is a wire contract (frame.hpp table).
    const std::string bytes = net::encode_frame(FrameType::kRequest, "abc");
    ASSERT_EQ(bytes.size(), 19u);
    const auto u8 = [&](std::size_t i) { return static_cast<unsigned char>(bytes[i]); };
    // magic 0x464E5354 little-endian: 54 53 4E 46 ("TSNF").
    EXPECT_EQ(u8(0), 0x54u);
    EXPECT_EQ(u8(1), 0x53u);
    EXPECT_EQ(u8(2), 0x4Eu);
    EXPECT_EQ(u8(3), 0x46u);
    EXPECT_EQ(u8(4), net::kProtocolVersion);
    EXPECT_EQ(u8(5), static_cast<unsigned char>(FrameType::kRequest));
    EXPECT_EQ(u8(6), 0u);  // reserved
    EXPECT_EQ(u8(7), 0u);
    EXPECT_EQ(u8(8), 3u);  // payload length LE
    EXPECT_EQ(u8(9), 0u);
    EXPECT_EQ(u8(10), 0u);
    EXPECT_EQ(u8(11), 0u);
    // CRC-32("abc") = 0x352441C2 (IEEE reflected — a published test vector).
    EXPECT_EQ(net::crc32("abc"), 0x352441C2u);
    EXPECT_EQ(u8(12), 0xC2u);
    EXPECT_EQ(u8(13), 0x41u);
    EXPECT_EQ(u8(14), 0x24u);
    EXPECT_EQ(u8(15), 0x35u);
    EXPECT_EQ(bytes.substr(16), "abc");
}

TEST(NetFrame, Crc32KnownVectors) {
    EXPECT_EQ(net::crc32(""), 0x00000000u);
    EXPECT_EQ(net::crc32("123456789"), 0xCBF43926u);  // the canonical check value
}

TEST(NetFrame, OneByteAtATime) {
    const std::string bytes =
        net::encode_frame(FrameType::kHello, "incremental") +
        net::encode_frame(FrameType::kError, "");
    FrameDecoder decoder;
    std::vector<Frame> frames;
    for (const char byte : bytes) {
        decoder.feed(std::string_view(&byte, 1));
        while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
    }
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].type, FrameType::kHello);
    EXPECT_EQ(frames[0].payload, "incremental");
    EXPECT_EQ(frames[1].type, FrameType::kError);
    EXPECT_TRUE(frames[1].payload.empty());
}

TEST(NetFrame, EncodeOverCapThrows) {
    EXPECT_THROW((void)net::encode_frame(FrameType::kHello, std::string(65, 'x'), 64),
                 std::length_error);
    EXPECT_NO_THROW((void)net::encode_frame(FrameType::kHello, std::string(64, 'x'), 64));
}

// Every corruption class latches the matching sticky typed error.
TEST(NetFrame, TypedErrorBattery) {
    const std::string good = net::encode_frame(FrameType::kHello, "x");

    struct Case {
        const char* name;
        std::size_t offset;
        unsigned char value;
        FrameError expect;
    };
    const Case cases[] = {
        {"bad magic", 0, 0xFF, FrameError::kBadMagic},
        {"bad version", 4, 99, FrameError::kBadVersion},
        {"bad type", 5, 0, FrameError::kBadType},
        {"bad type high", 5, 200, FrameError::kBadType},
        {"reserved nonzero", 6, 1, FrameError::kBadReserved},
        {"reserved nonzero 2", 7, 0x80, FrameError::kBadReserved},
        {"bad crc", 12, static_cast<unsigned char>(good[12] ^ 0x01), FrameError::kBadCrc},
    };
    for (const Case& c : cases) {
        std::string bytes = good;
        bytes[c.offset] = static_cast<char>(c.value);
        FrameDecoder decoder;
        decoder.feed(bytes);
        EXPECT_FALSE(decoder.next().has_value()) << c.name;
        EXPECT_TRUE(decoder.failed()) << c.name;
        EXPECT_EQ(decoder.error(), c.expect) << c.name;
        // Sticky: feeding good bytes afterwards changes nothing.
        decoder.feed(good);
        EXPECT_FALSE(decoder.next().has_value()) << c.name;
        EXPECT_EQ(decoder.error(), c.expect) << c.name;
    }
}

// The oversized-length rejection must be O(1) at header-parse time: a
// 16-byte header declaring a 4 GiB payload fails immediately, without the
// decoder waiting for (or allocating) the declared length.
TEST(NetFrame, OversizedDeclaredLengthRejectedUpFront) {
    std::string header = net::encode_frame(FrameType::kHello, "");
    header.resize(net::kFrameHeaderBytes);
    header[8] = static_cast<char>(0xFF);  // declared length 0xFFFFFFFF
    header[9] = static_cast<char>(0xFF);
    header[10] = static_cast<char>(0xFF);
    header[11] = static_cast<char>(0xFF);
    FrameDecoder decoder(1 << 20);
    decoder.feed(header);  // 16 bytes only — no payload will ever arrive
    EXPECT_FALSE(decoder.next().has_value());
    EXPECT_TRUE(decoder.failed());
    EXPECT_EQ(decoder.error(), FrameError::kOversized);
    EXPECT_LE(decoder.buffered(), net::kFrameHeaderBytes);
}

TEST(NetFrame, TruncationIsPendingNotError) {
    const std::string bytes = net::encode_frame(FrameType::kHello, "hello world");
    FrameDecoder decoder;
    decoder.feed(std::string_view(bytes).substr(0, bytes.size() - 3));
    EXPECT_FALSE(decoder.next().has_value());
    EXPECT_FALSE(decoder.failed());  // short read: more bytes may arrive
    decoder.feed(std::string_view(bytes).substr(bytes.size() - 3));
    const auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->payload, "hello world");
}

// Deterministic bit-flip fuzz: flip every bit of a two-frame stream, one at
// a time.  The decoder must never crash and must never *invent* bytes: the
// re-encoding of everything it emits must reproduce, byte for byte, a prefix
// of the corrupted input.  (A type-byte flip to another valid type decodes —
// the CRC covers the payload, not the header — but even then the emitted
// frame is exactly the bytes on the wire, so the prefix property holds.)
TEST(NetFrame, BitFlipFuzzNeverCrashes) {
    const std::string f1 = net::encode_frame(FrameType::kRequest, "first payload");
    const std::string f2 = net::encode_frame(FrameType::kResponse, "second");
    const std::string stream = f1 + f2;
    int decode_failures = 0;
    for (std::size_t bit = 0; bit < stream.size() * 8; ++bit) {
        std::string corrupt = stream;
        corrupt[bit / 8] = static_cast<char>(
            static_cast<unsigned char>(corrupt[bit / 8]) ^ (1u << (bit % 8)));
        FrameDecoder decoder;
        decoder.feed(corrupt);
        std::string replayed;
        while (auto frame = decoder.next())
            replayed += net::encode_frame(frame->type, frame->payload);
        if (decoder.failed()) ++decode_failures;
        EXPECT_EQ(corrupt.compare(0, replayed.size(), replayed), 0)
            << "bit " << bit << ": decoder emitted bytes it never received";
        // Payload corruption never passes silently: any emitted payload is
        // one of the two originals (the CRC guards payload bits; only
        // header-byte flips can alter what decodes).
        if (replayed.size() == corrupt.size() && bit >= net::kFrameHeaderBytes * 8) {
            const bool payload_bit_in_f1 = bit < f1.size() * 8;
            const std::size_t header2_start = f1.size() * 8;
            const bool in_some_header =
                bit < net::kFrameHeaderBytes * 8 ||
                (bit >= header2_start && bit < header2_start + net::kFrameHeaderBytes * 8);
            EXPECT_TRUE(in_some_header)
                << "bit " << bit << " flipped a payload bit yet both frames decoded"
                << (payload_bit_in_f1 ? " (frame 1)" : " (frame 2)");
        }
    }
    EXPECT_GT(decode_failures, 0);  // the battery actually exercised errors
}

// ---------------------------------------------------------------------------
// NetCodec: message round trips and hostile payloads.
// ---------------------------------------------------------------------------

TEST(NetCodec, HelloRoundTrip) {
    net::WireHello hello;
    hello.client_name = "test-client";
    const auto back = net::decode_hello(net::encode_hello(hello));
    EXPECT_EQ(back.codec_version, net::kCodecVersion);
    EXPECT_EQ(back.client_name, "test-client");

    net::WireHelloAck ack;
    ack.max_frame_bytes = 12345;
    ack.server_name = "srv";
    const auto ack_back = net::decode_hello_ack(net::encode_hello_ack(ack));
    EXPECT_EQ(ack_back.max_frame_bytes, 12345u);
    EXPECT_EQ(ack_back.server_name, "srv");
}

// The round-trip property that makes caching work over the wire: a decoded
// request materializes to the same fingerprint the sender's would.
TEST(NetCodec, RequestRoundTripPreservesFingerprint) {
    net::WireRequest request;
    request.id = 42;
    request.trace = small_request(7);
    request.deadline_ms = 12.5;
    request.options = "opts";
    const std::string bytes = net::encode_request(request);
    const auto back = net::decode_request(bytes);
    EXPECT_EQ(back.id, 42u);
    EXPECT_TRUE(back.trace == request.trace);
    EXPECT_EQ(back.deadline_ms, 12.5);
    EXPECT_EQ(back.options, "opts");

    const auto lhs = serve::materialize(request.trace);
    const auto rhs = serve::materialize(back.trace);
    EXPECT_EQ(serve::fingerprint_request(lhs), serve::fingerprint_request(rhs));
    // And the encoding itself is canonical: re-encoding is byte-identical.
    EXPECT_EQ(net::encode_request(back), bytes);
}

TEST(NetCodec, ResponseRoundTrip) {
    Schedule schedule(2, 2);
    schedule.add(0, 1, 0.0, 2.5);
    schedule.add(1, 0, 2.5, 4.0);
    net::WireResponse response;
    response.id = 9;
    response.outcome = serve::ServeOutcome::kDegraded;
    response.cache_hit = true;
    response.fingerprint = 0xDEADBEEFu;
    response.schedule_bytes = net::encode_schedule(schedule);
    const std::string bytes = net::encode_response(response);
    const auto back = net::decode_response(bytes);
    EXPECT_EQ(back.id, 9u);
    EXPECT_EQ(back.outcome, serve::ServeOutcome::kDegraded);
    EXPECT_TRUE(back.cache_hit);
    EXPECT_FALSE(back.coalesced);
    EXPECT_EQ(back.fingerprint, 0xDEADBEEFu);
    EXPECT_EQ(back.schedule_bytes, response.schedule_bytes);
    EXPECT_EQ(net::encode_response(back), bytes);

    const Schedule decoded = net::decode_schedule(back.schedule_bytes);
    EXPECT_EQ(decoded.num_tasks(), 2u);
    EXPECT_EQ(decoded.num_procs(), 2u);
    EXPECT_EQ(decoded.num_placements(), 2u);
    // Canonical: re-encoding the decoded schedule is byte-identical.
    EXPECT_EQ(net::encode_schedule(decoded), response.schedule_bytes);
}

TEST(NetCodec, ErrorRoundTrip) {
    net::WireError error;
    error.request_id = 3;
    error.code = static_cast<std::uint32_t>(net::WireErrorCode::kRequestFailed);
    error.message = "boom";
    const auto back = net::decode_error(net::encode_error(error));
    EXPECT_EQ(back.request_id, 3u);
    EXPECT_EQ(back.code, static_cast<std::uint32_t>(net::WireErrorCode::kRequestFailed));
    EXPECT_EQ(back.message, "boom");
}

TEST(NetCodec, MalformedPayloadsThrowTyped) {
    const auto status_of = [](const auto& fn) {
        try {
            fn();
        } catch (const net::CodecError& e) {
            return e.status();
        }
        return net::CodecStatus::kOk;
    };
    net::WireRequest request;
    request.trace = small_request();
    const std::string good = net::encode_request(request);

    EXPECT_EQ(status_of([&] { (void)net::decode_request(good.substr(0, 5)); }),
              net::CodecStatus::kTruncated);
    EXPECT_EQ(status_of([&] { (void)net::decode_request(good + "zz"); }),
              net::CodecStatus::kTrailingBytes);
    {
        std::string bad = good;
        bad[8] = 99;  // body-format byte (after the u64 id)
        EXPECT_EQ(status_of([&] { (void)net::decode_request(bad); }),
                  net::CodecStatus::kBadBodyFormat);
    }
    {
        net::WireRequest zero = request;
        zero.trace.size = 0;
        EXPECT_EQ(status_of([&] { (void)net::decode_request(net::encode_request(zero)); }),
                  net::CodecStatus::kBadValue);
    }
    {
        // Unknown shape name: encode by hand with a bogus string.
        net::WireRequest bogus = request;
        std::string bytes = net::encode_request(bogus);
        const std::string shape = workload::shape_name(bogus.trace.shape);
        const auto pos = bytes.find(shape);
        ASSERT_NE(pos, std::string::npos);
        for (std::size_t i = 0; i < shape.size(); ++i) bytes[pos + i] = 'Z';
        EXPECT_EQ(status_of([&] { (void)net::decode_request(bytes); }),
                  net::CodecStatus::kBadEnum);
    }
    {
        std::string bad_outcome;
        net::WireResponse response;
        response.outcome = serve::ServeOutcome::kOk;
        bad_outcome = net::encode_response(response);
        bad_outcome[8] = 77;  // outcome byte
        EXPECT_EQ(status_of([&] { (void)net::decode_response(bad_outcome); }),
                  net::CodecStatus::kBadEnum);
    }
}

// A hostile schedule payload declaring astronomical counts must be rejected
// before any allocation sized by those counts.
TEST(NetCodec, HostileScheduleCountsRejected) {
    const auto encode_counts = [](std::uint64_t tasks, std::uint64_t procs,
                                  std::uint64_t placements) {
        std::string out;
        for (const std::uint64_t v : {tasks, procs, placements})
            for (int i = 0; i < 8; ++i)
                out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
        return out;
    };
    // 2^60 placements in a 24-byte payload.
    EXPECT_THROW((void)net::decode_schedule(encode_counts(4, 4, 1ull << 60)), net::CodecError);
    // Plausible placement count but absurd task/proc dimensions.
    EXPECT_THROW((void)net::decode_schedule(encode_counts(1ull << 60, 4, 0)), net::CodecError);
    EXPECT_THROW((void)net::decode_schedule(encode_counts(0, 1ull << 40, 0)), net::CodecError);
    // Truncated mid-header.
    EXPECT_THROW((void)net::decode_schedule(encode_counts(1, 1, 1).substr(0, 20)),
                 net::CodecError);
}

// ---------------------------------------------------------------------------
// NetServer: live-socket integration.
// ---------------------------------------------------------------------------

TEST(NetServer, StartStopIdempotent) {
    ThreadPool pool(2);
    net::ServeServer server(loopback_config(), pool);
    server.start();
    EXPECT_TRUE(server.running());
    EXPECT_GT(server.port(), 0);
    const auto report = server.stop();
    EXPECT_TRUE(report.clean);
    EXPECT_FALSE(server.running());
    const auto again = server.stop();  // idempotent
    EXPECT_TRUE(again.clean);
}

TEST(NetServer, CallReturnsValidScheduleAndCacheHitFlag) {
    ThreadPool pool(2);
    net::ServeServer server(loopback_config(), pool);
    server.start();

    net::ClientConfig config;
    config.port = server.port();
    net::ServeClient client(config);
    EXPECT_EQ(client.server_info().server_name, "tsched_served");

    const auto first = client.call(small_request());
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.response->outcome, serve::ServeOutcome::kOk);
    EXPECT_FALSE(first.response->cache_hit);
    ASSERT_TRUE(first.response->has_schedule());
    const Schedule schedule = net::decode_schedule(first.response->schedule_bytes);
    EXPECT_EQ(schedule.num_tasks(), small_request().size);

    const auto second = client.call(small_request());
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second.response->cache_hit);
    EXPECT_EQ(second.response->fingerprint, first.response->fingerprint);
    // The wire-level bit-identity contract: cached == cold, byte for byte.
    EXPECT_EQ(second.response->schedule_bytes, first.response->schedule_bytes);

    server.stop();
}

TEST(NetServer, MultiClientReplayAccountingIdentity) {
    ThreadPool pool(4);
    net::ServeServer server(loopback_config(), pool);
    server.start();

    net::NetReplayOptions options;
    options.port = server.port();
    options.conns = 8;
    options.window = 4;
    options.epochs = 2;
    const auto report = net::replay_net(small_trace(16), options);
    EXPECT_TRUE(report.accounting_ok());
    EXPECT_EQ(report.requests, 16u * 2u);
    EXPECT_EQ(report.ok, report.requests);
    EXPECT_EQ(report.failed, 0u);
    EXPECT_TRUE(report.payload_consistent);
    EXPECT_NE(report.schedule_digest, 0u);

    // stop() joins the loop thread, after which the counters are final (the
    // response counter ticks after the write syscall, so reading it while
    // the client races ahead would be off by the in-flight tail).
    server.stop();
    const auto stats = server.stats();
    EXPECT_EQ(stats.requests, report.requests);
    EXPECT_EQ(stats.responses, report.requests);
}

// Response payloads are pure functions of content: same trace, different
// pool widths and connection counts, identical digests.
TEST(NetServer, DigestStableAcrossPoolWidthsAndConns) {
    const auto trace = small_trace(12);
    std::set<std::uint64_t> digests;
    for (const std::size_t threads : {2u, 8u}) {
        for (const std::size_t conns : {2u, 6u}) {
            ThreadPool pool(threads);
            net::ServeServer server(loopback_config(), pool);
            server.start();
            net::NetReplayOptions options;
            options.port = server.port();
            options.conns = conns;
            const auto report = net::replay_net(trace, options);
            EXPECT_TRUE(report.accounting_ok());
            EXPECT_TRUE(report.payload_consistent);
            digests.insert(report.schedule_digest);
            server.stop();
        }
    }
    EXPECT_EQ(digests.size(), 1u);
}

TEST(NetServer, MalformedFrameGetsTypedErrorAndServerStaysUp) {
    ThreadPool pool(2);
    net::ServeServer server(loopback_config(), pool);
    server.start();

    {
        RawConn raw(server.port());
        raw.send_bytes("GET / HTTP/1.1\r\n\r\n");  // not a frame
        const auto frame = raw.read_frame();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(frame->type, FrameType::kError);
        const auto error = net::decode_error(frame->payload);
        EXPECT_EQ(error.request_id, 0u);  // session-level
        EXPECT_EQ(error.code,
                  static_cast<std::uint32_t>(net::WireErrorCode::kMalformedFrame));
        EXPECT_TRUE(raw.peer_closed());
    }

    // The server must keep serving honest clients afterwards.
    net::ClientConfig config;
    config.port = server.port();
    net::ServeClient client(config);
    const auto reply = client.call(small_request());
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.response->outcome, serve::ServeOutcome::kOk);

    EXPECT_GE(server.stats().protocol_errors, 1u);
    server.stop();
}

// Deterministic malformed-frame fuzz over the wire: corrupted hello frames
// (bit flips in every header byte), truncated streams, and random garbage.
// Every session must end with either a typed error or a close — and the
// server must survive all of it and still answer a real client.
TEST(NetServer, MalformedFrameFuzzBatteryServerSurvives) {
    ThreadPool pool(2);
    net::ServeServer server(loopback_config(), pool);
    server.start();

    const std::string hello =
        net::encode_frame(FrameType::kHello, net::encode_hello(net::WireHello{}));
    for (std::size_t byte = 0; byte < net::kFrameHeaderBytes; ++byte) {
        for (const int mask : {0x01, 0x80}) {
            std::string corrupt = hello;
            corrupt[byte] =
                static_cast<char>(static_cast<unsigned char>(corrupt[byte]) ^ mask);
            RawConn raw(server.port());
            raw.send_bytes(corrupt);
            // Either a typed error frame arrives or the connection just
            // closes (a length-field flip can leave the server waiting for
            // payload that never comes — then *we* close).
            if (const auto frame = raw.read_frame_with_timeout(200)) {
                EXPECT_EQ(frame->type, FrameType::kError);
            }
        }
    }

    // Short reads: a lone truncated header, then EOF.
    {
        RawConn raw(server.port());
        raw.send_bytes(std::string_view(hello).substr(0, 7));
    }

    // Still alive and serving.
    net::ClientConfig config;
    config.port = server.port();
    net::ServeClient client(config);
    EXPECT_TRUE(client.call(small_request()).ok());
    server.stop();
}

TEST(NetServer, HandshakeViolationRequestFirstIsRejected) {
    ThreadPool pool(2);
    net::ServeServer server(loopback_config(), pool);
    server.start();

    RawConn raw(server.port());
    net::WireRequest request;
    request.id = 1;
    request.trace = small_request();
    raw.send_bytes(net::encode_frame(FrameType::kRequest, net::encode_request(request)));
    const auto frame = raw.read_frame();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, FrameType::kError);
    const auto error = net::decode_error(frame->payload);
    EXPECT_EQ(error.code, static_cast<std::uint32_t>(net::WireErrorCode::kBadHandshake));
    EXPECT_TRUE(raw.peer_closed());
    server.stop();
}

TEST(NetServer, WrongCodecVersionRejected) {
    ThreadPool pool(2);
    net::ServeServer server(loopback_config(), pool);
    server.start();

    RawConn raw(server.port());
    net::WireHello hello;
    hello.codec_version = 999;
    raw.send_bytes(net::encode_frame(FrameType::kHello, net::encode_hello(hello)));
    const auto frame = raw.read_frame();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, FrameType::kError);
    EXPECT_EQ(net::decode_error(frame->payload).code,
              static_cast<std::uint32_t>(net::WireErrorCode::kBadHandshake));
    server.stop();
}

TEST(NetServer, OversizedFrameFromClientIsTypedError) {
    net::ServerConfig config = loopback_config();
    config.max_frame_bytes = 1024;
    ThreadPool pool(2);
    net::ServeServer server(config, pool);
    server.start();

    RawConn raw(server.port());
    // Header declaring a payload over the server's cap; never send the rest.
    std::string header = net::encode_frame(FrameType::kHello, "");
    header.resize(net::kFrameHeaderBytes);
    header[8] = static_cast<char>(0xFF);
    header[9] = static_cast<char>(0xFF);
    header[10] = 0x10;
    raw.send_bytes(header);
    const auto frame = raw.read_frame();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, FrameType::kError);
    const auto error = net::decode_error(frame->payload);
    EXPECT_EQ(error.code, static_cast<std::uint32_t>(net::WireErrorCode::kMalformedFrame));
    EXPECT_NE(error.message.find("oversized"), std::string::npos);
    server.stop();
}

TEST(NetServer, ConnectionCapRefusesWithTypedError) {
    net::ServerConfig config = loopback_config();
    config.max_conns = 1;
    ThreadPool pool(2);
    net::ServeServer server(config, pool);
    server.start();

    net::ClientConfig client_config;
    client_config.port = server.port();
    net::ServeClient first(client_config);  // occupies the only slot
    try {
        net::ServeClient second(client_config);
        FAIL() << "second connection should have been refused";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("too_many_connections"), std::string::npos);
    }
    EXPECT_TRUE(first.call(small_request()).ok());  // the first still works
    EXPECT_GE(server.stats().refused, 1u);
    server.stop();
}

// Backpressure: with computations frozen at the chaos gate and a
// per-connection queue of 2, a client pipelining 6 requests must trip the
// read pause; after the gate opens every request is still answered.
TEST(NetServer, BackpressurePausesReadsAndRecovers) {
    auto chaos = std::make_shared<serve::DeterministicChaos>(
        serve::ChaosOptions{.gate_stalls = true, .gate_all = true});
    net::ServerConfig config = loopback_config();
    config.per_conn_queue = 2;
    config.engine.chaos = chaos;
    ThreadPool pool(2);
    net::ServeServer server(config, pool);
    server.start();

    net::ClientConfig client_config;
    client_config.port = server.port();
    net::ServeClient client(client_config);
    std::vector<std::uint64_t> ids;
    for (std::uint64_t i = 0; i < 6; ++i) ids.push_back(client.send(small_request(100 + i)));

    // The gate is closed: nothing can complete, so the session's parked
    // futures reach per_conn_queue and reads pause.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.stats().backpressure_pauses == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GE(server.stats().backpressure_pauses, 1u);

    chaos->release_stalls();
    std::set<std::uint64_t> answered;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const auto reply = client.recv();
        ASSERT_TRUE(reply.ok());
        EXPECT_EQ(reply.response->outcome, serve::ServeOutcome::kOk);
        answered.insert(reply.id);
    }
    EXPECT_EQ(answered.size(), ids.size());  // every id answered exactly once
    server.stop();
}

// Drain with in-flight work: requests the server has read are answered
// (computed or typed kDraining) and flushed before the connection closes.
TEST(NetServer, DrainDeliversInFlightReplies) {
    auto chaos = std::make_shared<serve::DeterministicChaos>(
        serve::ChaosOptions{.gate_stalls = true, .gate_all = true});
    net::ServerConfig config = loopback_config();
    config.engine.chaos = chaos;
    config.engine.drain_timeout_ms = 5000.0;
    ThreadPool pool(2);
    net::ServeServer server(config, pool);
    server.start();

    net::ClientConfig client_config;
    client_config.port = server.port();
    net::ServeClient client(client_config);
    std::vector<std::uint64_t> ids;
    for (std::uint64_t i = 0; i < 4; ++i) ids.push_back(client.send(small_request(200 + i)));

    // Wait until the server has submitted all four into the gated engine.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.stats().requests < ids.size() &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_EQ(server.stats().requests, ids.size());

    server.request_stop();          // drain begins; gate still closed
    chaos->release_stalls();        // in-flight work can now finish

    std::set<std::uint64_t> answered;
    try {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            const auto reply = client.recv();
            ASSERT_TRUE(reply.ok());
            // Computed before the drain finished, or typed kDraining — both
            // are delivered answers, never a silent drop.
            answered.insert(reply.id);
        }
    } catch (const std::exception&) {
        // Connection closed early: fail below via the count.
    }
    EXPECT_EQ(answered.size(), ids.size()) << "in-flight replies lost in drain";

    const auto report = server.stop();
    EXPECT_TRUE(report.engine.clean);
    EXPECT_EQ(report.forced_sessions, 0u);
}

// Two servers, one ThreadPool: draining one must not disturb the other's
// sessions (the engine-level independence of PR 9, now at the wire level).
TEST(NetServer, TwoServersOnePoolIndependentDrain) {
    ThreadPool pool(4);
    net::ServeServer alpha(loopback_config(), pool);
    net::ServeServer beta(loopback_config(), pool);
    alpha.start();
    beta.start();

    // Client fire at alpha on a background thread...
    net::NetReplayOptions options;
    options.port = alpha.port();
    options.conns = 4;
    options.epochs = 4;
    auto replay = std::async(std::launch::async,
                             [&] { return net::replay_net(small_trace(12), options); });

    // ...while beta drains mid-fire.
    const auto beta_report = beta.stop();
    EXPECT_TRUE(beta_report.clean);

    const auto report = replay.get();
    EXPECT_TRUE(report.accounting_ok());
    EXPECT_EQ(report.ok, report.requests) << "alpha sessions disturbed by beta's drain";
    EXPECT_EQ(report.failed, 0u);

    const auto alpha_report = alpha.stop();
    EXPECT_TRUE(alpha_report.clean);
}

// ---------------------------------------------------------------------------
// NetLints: TS08xx triggers.
// ---------------------------------------------------------------------------

TEST(NetLints, CleanConfigIsQuiet) {
    analysis::Diagnostics diags;
    analysis::lint_net_config(net::ServerConfig{}, diags);
    EXPECT_EQ(diags.size(), 0u) << "default ServerConfig must lint clean";
}

TEST(NetLints, EveryTriggerFires) {
    using analysis::Code;
    const auto codes_for = [](const net::ServerConfig& config) {
        analysis::Diagnostics diags;
        analysis::lint_net_config(config, diags);
        std::set<Code> codes;
        for (const auto& d : diags.all()) codes.insert(d.code);
        return codes;
    };
    {
        net::ServerConfig config;
        config.per_conn_queue = 0;
        EXPECT_TRUE(codes_for(config).count(Code::kNetNoBackpressure));
    }
    {
        net::ServerConfig config;
        config.max_frame_bytes = 64;
        EXPECT_TRUE(codes_for(config).count(Code::kNetFrameCapTiny));
    }
    {
        net::ServerConfig config;
        config.max_requests_per_tick = 0;
        EXPECT_TRUE(codes_for(config).count(Code::kNetDispatchStarved));
    }
    {
        net::ServerConfig config;
        config.flush_timeout_ms = -1.0;
        EXPECT_TRUE(codes_for(config).count(Code::kNetBadFlushTimeout));
    }
    {
        net::ServerConfig config;
        config.max_conns = 64;
        config.per_conn_queue = 64;
        config.engine.max_inflight = 4;
        config.engine.max_pending = 4;
        EXPECT_TRUE(codes_for(config).count(Code::kNetQueueExceedsGate));
    }
}

// ---------------------------------------------------------------------------
// NetReplay: option validation.
// ---------------------------------------------------------------------------

TEST(NetReplay, RejectsDegenerateOptions) {
    net::NetReplayOptions options;
    options.conns = 0;
    EXPECT_THROW((void)net::replay_net(small_trace(4), options), std::invalid_argument);
    options.conns = 1;
    options.window = 0;
    EXPECT_THROW((void)net::replay_net(small_trace(4), options), std::invalid_argument);
    options.window = 1;
    options.epochs = 0;
    EXPECT_THROW((void)net::replay_net(small_trace(4), options), std::invalid_argument);
}

TEST(NetReplay, EmptyTraceIsEmptyReport) {
    net::NetReplayOptions options;
    options.port = 1;  // never connected: the empty trace short-circuits
    const auto report = net::replay_net({}, options);
    EXPECT_EQ(report.requests, 0u);
    EXPECT_TRUE(report.accounting_ok());
}

}  // namespace
}  // namespace tsched
