// Unit tests for the statistics toolkit (util/stats.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace tsched {
namespace {

TEST(RunningStats, EmptyIsZero) {
    RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_EQ(rs.mean(), 0.0);
    EXPECT_EQ(rs.variance(), 0.0);
    EXPECT_EQ(rs.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleSample) {
    RunningStats rs;
    rs.add(4.5);
    EXPECT_EQ(rs.count(), 1u);
    EXPECT_DOUBLE_EQ(rs.mean(), 4.5);
    EXPECT_DOUBLE_EQ(rs.min(), 4.5);
    EXPECT_DOUBLE_EQ(rs.max(), 4.5);
    EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
    const std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
    RunningStats rs;
    for (const double x : xs) rs.add(x);
    double mean = 0.0;
    for (const double x : xs) mean += x;
    mean /= static_cast<double>(xs.size());
    double m2 = 0.0;
    for (const double x : xs) m2 += (x - mean) * (x - mean);
    const double var = m2 / static_cast<double>(xs.size() - 1);
    EXPECT_NEAR(rs.mean(), mean, 1e-12);
    EXPECT_NEAR(rs.variance(), var, 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), 1.0);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
    EXPECT_DOUBLE_EQ(rs.sum(), 31.0);
}

TEST(RunningStats, MergeEqualsSequential) {
    Rng rng(99);
    RunningStats full;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(3.0, 1.5);
        full.add(x);
        (i % 2 == 0 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), full.count());
    EXPECT_NEAR(a.mean(), full.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), full.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), full.min());
    EXPECT_DOUBLE_EQ(a.max(), full.max());
}

TEST(RunningStats, MergeWithEmptySides) {
    RunningStats a;
    RunningStats b;
    b.add(1.0);
    b.add(3.0);
    a.merge(b);  // empty += full
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    RunningStats c;
    a.merge(c);  // full += empty
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(QuantileSorted, InterpolatesLinearly) {
    const std::vector<double> xs{0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.25), 2.5);
}

TEST(QuantileSorted, SingleElement) {
    const std::vector<double> xs{7.0};
    EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.7), 7.0);
}

// Golden pins for the repository's two quantile conventions (stats.hpp).
// These values are published in reports; moving either convention moves
// report numbers, so a change here must be deliberate.

TEST(QuantileSorted, PinsHyndmanFanType7) {
    // Position q*(n-1) with linear interpolation: n=4, q=0.5 -> position 1.5
    // -> midpoint of the 2nd and 3rd order statistics.
    const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 25.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0 / 3.0), 20.0);
    EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.9), 37.0);
}

TEST(QuantileNearestRank, PinsCeilRankDefinition) {
    // rank = clamp(ceil(q*n), 1, n); the result is always an observed sample.
    const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(quantile_nearest_rank(xs, 0.0), 10.0);   // clamp to rank 1
    EXPECT_DOUBLE_EQ(quantile_nearest_rank(xs, 0.25), 10.0);  // ceil(1.0) = 1
    EXPECT_DOUBLE_EQ(quantile_nearest_rank(xs, 0.26), 20.0);  // ceil(1.04) = 2
    EXPECT_DOUBLE_EQ(quantile_nearest_rank(xs, 0.5), 20.0);   // ceil(2.0) = 2
    EXPECT_DOUBLE_EQ(quantile_nearest_rank(xs, 0.51), 30.0);  // ceil(2.04) = 3
    EXPECT_DOUBLE_EQ(quantile_nearest_rank(xs, 1.0), 40.0);
}

TEST(QuantileNearestRank, AlwaysReturnsAnObservedSample) {
    // The defining property that distinguishes it from quantile_sorted:
    // never interpolates between samples.
    const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
    for (const double q : {0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99}) {
        const double v = quantile_nearest_rank(xs, q);
        EXPECT_NE(std::find(xs.begin(), xs.end(), v), xs.end()) << q;
    }
}

TEST(QuantileNearestRank, SingleElement) {
    const std::vector<double> xs{7.0};
    EXPECT_DOUBLE_EQ(quantile_nearest_rank(xs, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(quantile_nearest_rank(xs, 0.5), 7.0);
    EXPECT_DOUBLE_EQ(quantile_nearest_rank(xs, 1.0), 7.0);
}

TEST(Summarize, FullSummary) {
    const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
    const Summary s = summarize(xs);
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_DOUBLE_EQ(s.p25, 2.0);
    EXPECT_DOUBLE_EQ(s.p75, 4.0);
    EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, EmptyIsAllZero) {
    const Summary s = summarize(std::vector<double>{});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.mean, 0.0);
}

TEST(GeometricMean, Matches) {
    const std::vector<double> xs{1.0, 4.0, 16.0};
    EXPECT_NEAR(geometric_mean(xs), 4.0, 1e-12);
    const std::vector<double> ones{1.0, 1.0, 1.0};
    EXPECT_NEAR(geometric_mean(ones), 1.0, 1e-12);
}

TEST(FormatMeanCi, RendersPlusMinus) {
    Summary s;
    s.mean = 1.23456;
    s.ci95 = 0.045;
    EXPECT_EQ(format_mean_ci(s, 2), "1.23 ±0.04");
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
    Rng rng(7);
    RunningStats small;
    RunningStats large;
    for (int i = 0; i < 10; ++i) small.add(rng.normal(0.0, 1.0));
    for (int i = 0; i < 1000; ++i) large.add(rng.normal(0.0, 1.0));
    EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

}  // namespace
}  // namespace tsched
