// Unit + property tests for graph/algorithms.hpp.
//
// Hand-checked small cases plus parameterized property sweeps over random
// DAGs (topological-order validity, closure-vs-DFS agreement, reduction
// preserving reachability).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/algorithms.hpp"
#include "workload/random_dag.hpp"

namespace tsched {
namespace {

/// Diamond: 0 -> {1, 2} -> 3, plus a long arm 0 -> 4 -> 3.
Dag diamond_with_arm() {
    Dag dag;
    for (int i = 0; i < 5; ++i) dag.add_task(1.0);
    dag.add_edge(0, 1, 1.0);
    dag.add_edge(0, 2, 2.0);
    dag.add_edge(1, 3, 1.0);
    dag.add_edge(2, 3, 1.0);
    dag.add_edge(0, 4, 1.0);
    dag.add_edge(4, 3, 5.0);
    return dag;
}

TEST(TopologicalOrder, RespectsEdgesAndIsDeterministic) {
    const Dag dag = diamond_with_arm();
    const auto order = topological_order(dag);
    ASSERT_EQ(order.size(), dag.num_tasks());
    std::vector<std::size_t> pos(dag.num_tasks());
    for (std::size_t i = 0; i < order.size(); ++i) pos[static_cast<std::size_t>(order[i])] = i;
    for (std::size_t u = 0; u < dag.num_tasks(); ++u) {
        for (const AdjEdge& e : dag.successors(static_cast<TaskId>(u))) {
            EXPECT_LT(pos[u], pos[static_cast<std::size_t>(e.task)]);
        }
    }
    EXPECT_EQ(order, topological_order(dag));  // deterministic
}

TEST(TopologicalOrder, ThrowsOnCycle) {
    Dag dag(2);
    dag.add_edge(0, 1, 1.0);
    dag.add_edge(1, 0, 1.0);
    EXPECT_THROW((void)topological_order(dag), std::invalid_argument);
}

TEST(Levels, TopAndBottom) {
    const Dag dag = diamond_with_arm();
    const auto top = top_levels(dag);
    EXPECT_EQ(top[0], 0);
    EXPECT_EQ(top[1], 1);
    EXPECT_EQ(top[2], 1);
    EXPECT_EQ(top[4], 1);
    EXPECT_EQ(top[3], 2);
    const auto bottom = bottom_levels(dag);
    EXPECT_EQ(bottom[3], 0);
    EXPECT_EQ(bottom[1], 1);
    EXPECT_EQ(bottom[0], 2);
    EXPECT_EQ(height(dag), 3);
}

TEST(Levels, EmptyGraphHeightZero) {
    EXPECT_EQ(height(Dag{}), 0);
}

TEST(CriticalPath, WithAndWithoutEdgeData) {
    const Dag dag = diamond_with_arm();
    // Work-only: any source-to-sink 3-node path has length 3.
    EXPECT_DOUBLE_EQ(critical_path_length(dag, false), 3.0);
    // With edge data the 0 -> 4 -> 3 arm dominates: 1 + 1 + 1 + 5 + 1 = 9.
    EXPECT_DOUBLE_EQ(critical_path_length(dag, true), 9.0);
    const auto path = critical_path(dag, true);
    EXPECT_EQ(path, (std::vector<TaskId>{0, 4, 3}));
}

TEST(CriticalPath, SingleNode) {
    Dag dag;
    dag.add_task(7.5);
    EXPECT_DOUBLE_EQ(critical_path_length(dag, true), 7.5);
    EXPECT_EQ(critical_path(dag, true), (std::vector<TaskId>{0}));
}

TEST(Reachability, ClosureMatchesHandCase) {
    const Dag dag = diamond_with_arm();
    const auto closure = transitive_closure(dag);
    const std::size_t n = dag.num_tasks();
    EXPECT_TRUE(closure[0 * n + 3]);
    EXPECT_TRUE(closure[0 * n + 4]);
    EXPECT_TRUE(closure[4 * n + 3]);
    EXPECT_FALSE(closure[1 * n + 2]);
    EXPECT_FALSE(closure[3 * n + 0]);
    EXPECT_FALSE(closure[0 * n + 0]);  // no self-reachability reported
}

TEST(Reachability, ReachesAgrees) {
    const Dag dag = diamond_with_arm();
    EXPECT_TRUE(reaches(dag, 0, 3));
    EXPECT_FALSE(reaches(dag, 3, 0));
    EXPECT_FALSE(reaches(dag, 1, 1));
}

TEST(TransitiveReduction, RemovesShortcutEdge) {
    Dag dag(3);
    dag.add_edge(0, 1, 1.0);
    dag.add_edge(1, 2, 1.0);
    dag.add_edge(0, 2, 9.0);  // redundant shortcut
    const Dag reduced = transitive_reduction(dag);
    EXPECT_EQ(reduced.num_edges(), 2u);
    EXPECT_FALSE(reduced.has_edge(0, 2));
    EXPECT_TRUE(reduced.has_edge(0, 1));
    EXPECT_TRUE(reduced.has_edge(1, 2));
}

TEST(WeaklyConnectedComponents, CountsIslands) {
    Dag dag(5);
    dag.add_edge(0, 1, 1.0);
    dag.add_edge(2, 3, 1.0);
    EXPECT_EQ(weakly_connected_components(dag), 3u);  // {0,1} {2,3} {4}
}

TEST(AncestorsDescendants, HandCase) {
    const Dag dag = diamond_with_arm();
    EXPECT_EQ(ancestors(dag, 3), (std::vector<TaskId>{0, 1, 2, 4}));
    EXPECT_EQ(descendants(dag, 0), (std::vector<TaskId>{1, 2, 3, 4}));
    EXPECT_TRUE(ancestors(dag, 0).empty());
    EXPECT_TRUE(descendants(dag, 3).empty());
}

// ---------------------------------------------------------------------------
// Property sweep over random DAGs.
// ---------------------------------------------------------------------------

class GraphPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphPropertyTest, InvariantsHoldOnRandomDags) {
    Rng rng(GetParam());
    workload::LayeredDagParams params;
    params.n = 60;
    const Dag dag = workload::layered_random(params, rng);
    ASSERT_EQ(dag.validate(), "");

    // Topological order covers all tasks and respects every edge.
    const auto order = topological_order(dag);
    ASSERT_EQ(order.size(), dag.num_tasks());
    std::vector<std::size_t> pos(dag.num_tasks());
    for (std::size_t i = 0; i < order.size(); ++i) pos[static_cast<std::size_t>(order[i])] = i;
    for (std::size_t u = 0; u < dag.num_tasks(); ++u) {
        for (const AdjEdge& e : dag.successors(static_cast<TaskId>(u))) {
            EXPECT_LT(pos[u], pos[static_cast<std::size_t>(e.task)]);
        }
    }

    // Closure agrees with one-off DFS reachability on sampled pairs.
    const auto closure = transitive_closure(dag);
    const std::size_t n = dag.num_tasks();
    for (int trial = 0; trial < 50; ++trial) {
        const auto u = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n - 1)));
        const auto v = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n - 1)));
        if (u == v) continue;
        EXPECT_EQ(closure[u * n + v],
                  reaches(dag, static_cast<TaskId>(u), static_cast<TaskId>(v)));
    }

    // Transitive reduction preserves reachability with no redundant edges.
    const Dag reduced = transitive_reduction(dag);
    EXPECT_LE(reduced.num_edges(), dag.num_edges());
    const auto reduced_closure = transitive_closure(reduced);
    EXPECT_EQ(closure, reduced_closure);

    // Critical path length bounds: at least the max work, at most total work
    // (+ total data when counting edges).
    const double cp_plain = critical_path_length(dag, false);
    EXPECT_LE(cp_plain, dag.total_work() + 1e-9);
    const double cp_data = critical_path_length(dag, true);
    EXPECT_GE(cp_data, cp_plain);
    EXPECT_LE(cp_data, dag.total_work() + dag.total_data() + 1e-9);

    // The reported critical path realises the reported length.
    const auto path = critical_path(dag, true);
    double along = 0.0;
    for (std::size_t i = 0; i < path.size(); ++i) {
        along += dag.work(path[i]);
        if (i + 1 < path.size()) along += dag.edge_data(path[i], path[i + 1]);
    }
    EXPECT_NEAR(along, cp_data, 1e-9);

    // Levels are consistent with height.
    const auto top = top_levels(dag);
    const auto bottom = bottom_levels(dag);
    const int h = height(dag);
    for (std::size_t v = 0; v < n; ++v) {
        EXPECT_LT(top[v] + bottom[v], h);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace tsched
