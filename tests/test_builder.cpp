// Unit tests for ScheduleBuilder (sched/builder.hpp) — the insertion/EFT
// machinery every scheduler relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "platform/problem.hpp"
#include "sched/builder.hpp"
#include "sched/validate.hpp"

namespace tsched {
namespace {

/// Fork: 0 -> 1, 0 -> 2 (data 4 each); constant exec cost 2 on 2 procs;
/// uniform links latency 0 bandwidth 1.
Problem fork_problem() {
    Dag dag;
    for (int i = 0; i < 3; ++i) dag.add_task(2.0);
    dag.add_edge(0, 1, 4.0);
    dag.add_edge(0, 2, 4.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs = CostMatrix::uniform(dag, 2);
    return Problem(std::move(dag), std::move(machine), std::move(costs));
}

TEST(Builder, DataReadyForEntryTaskIsZero) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    EXPECT_DOUBLE_EQ(builder.data_ready(0, 0), 0.0);
}

TEST(Builder, DataReadyInfiniteWhileParentUnplaced) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    EXPECT_TRUE(std::isinf(builder.data_ready(1, 0)));
    EXPECT_DOUBLE_EQ(builder.data_ready_partial(1, 0), 0.0);  // partial skips it
}

TEST(Builder, DataReadyAfterParentPlaced) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    builder.place(0, 0, true);  // [0, 2) on P0
    EXPECT_DOUBLE_EQ(builder.data_ready(1, 0), 2.0);        // local
    EXPECT_DOUBLE_EQ(builder.data_ready(1, 1), 2.0 + 4.0);  // remote: + data/bw
}

TEST(Builder, EarliestStartNonInsertionAppends) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    builder.place_at(0, 0, 10.0);  // busy [10, 12)
    EXPECT_DOUBLE_EQ(builder.earliest_start(0, 0.0, 2.0, /*insertion=*/false), 12.0);
    // Insertion finds the leading hole [0, 10).
    EXPECT_DOUBLE_EQ(builder.earliest_start(0, 0.0, 2.0, /*insertion=*/true), 0.0);
}

TEST(Builder, InsertionSkipsTooSmallHoles) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    builder.place_at(0, 0, 1.0);   // [1, 3): leading hole is [0,1) — too small
    EXPECT_DOUBLE_EQ(builder.earliest_start(0, 0.0, 2.0, true), 3.0);
}

TEST(Builder, InsertionRespectsReadyTimeInsideHole) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    builder.place_at(0, 0, 8.0);  // hole [0, 8)
    EXPECT_DOUBLE_EQ(builder.earliest_start(0, 3.0, 2.0, true), 3.0);
    EXPECT_DOUBLE_EQ(builder.earliest_start(0, 7.0, 2.0, true), 10.0);  // 7+2 > 8
}

TEST(Builder, EftCombinesReadyAndSlot) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    builder.place(0, 0, true);  // [0, 2) on P0
    EXPECT_DOUBLE_EQ(builder.eft(1, 0, true), 4.0);   // start 2, +2
    EXPECT_DOUBLE_EQ(builder.eft(1, 1, true), 8.0);   // ready 6, +2
    EXPECT_TRUE(std::isinf(builder.eft(1, 0, true)) == false);
}

TEST(Builder, FindSlotBeforeDeadline) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    builder.place_at(0, 0, 5.0);  // busy [5, 7)
    const auto slot = builder.find_slot_before(0, 0.0, 2.0, 4.0, true);
    ASSERT_TRUE(slot.has_value());
    EXPECT_DOUBLE_EQ(*slot, 0.0);
    EXPECT_FALSE(builder.find_slot_before(0, 3.5, 2.0, 5.0, true).has_value());
}

TEST(Builder, PlaceCommitsAndTracksState) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    const Placement pl = builder.place(0, 1, true);
    EXPECT_EQ(pl.proc, 1);
    EXPECT_DOUBLE_EQ(pl.start, 0.0);
    EXPECT_DOUBLE_EQ(pl.finish, 2.0);
    EXPECT_TRUE(builder.is_placed(0));
    EXPECT_DOUBLE_EQ(builder.finish_time(0), 2.0);
    EXPECT_DOUBLE_EQ(builder.proc_available(1), 2.0);
    EXPECT_DOUBLE_EQ(builder.current_makespan(), 2.0);
    EXPECT_EQ(builder.num_placements(), 1u);
}

TEST(Builder, PlaceRejectsDoublePlacementAndUnplacedPreds) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    EXPECT_THROW(builder.place(1, 0, true), std::logic_error);  // pred unplaced
    builder.place(0, 0, true);
    EXPECT_THROW(builder.place(0, 1, true), std::logic_error);  // already placed
}

TEST(Builder, DuplicateRequiresOriginal) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    EXPECT_THROW(builder.place_duplicate_at(0, 0, 0.0), std::logic_error);
    builder.place(0, 0, true);
    const Placement dup = builder.place_duplicate_at(0, 1, 0.0);
    EXPECT_EQ(dup.proc, 1);
    // Duplicate feeds consumers on its processor without comm.
    EXPECT_DOUBLE_EQ(builder.data_ready(1, 1), 2.0);
    EXPECT_EQ(builder.partial().num_duplicates(), 1u);
}

TEST(Builder, CopySemanticsGiveIndependentTrials) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    builder.place(0, 0, true);
    ScheduleBuilder clone = builder;
    clone.place(1, 0, true);
    EXPECT_TRUE(clone.is_placed(1));
    EXPECT_FALSE(builder.is_placed(1));
    EXPECT_DOUBLE_EQ(builder.proc_available(0), 2.0);
    EXPECT_DOUBLE_EQ(clone.proc_available(0), 4.0);
}

TEST(Builder, RollbackRestoresAllState) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    builder.place(0, 0, true);  // [0, 2) on P0

    const ScheduleBuilder::Checkpoint mark = builder.checkpoint();
    builder.place(1, 0, true);             // [2, 4) on P0
    builder.place_duplicate_at(0, 1, 0.0); // copy of 0 on P1
    builder.place(2, 1, true);
    EXPECT_EQ(builder.num_placements(), 4u);
    EXPECT_TRUE(builder.is_placed(1));
    EXPECT_TRUE(builder.is_placed(2));

    builder.rollback(mark);
    EXPECT_EQ(builder.num_placements(), 1u);
    EXPECT_FALSE(builder.is_placed(1));
    EXPECT_FALSE(builder.is_placed(2));
    EXPECT_EQ(builder.partial().num_duplicates(), 0u);
    EXPECT_DOUBLE_EQ(builder.current_makespan(), 2.0);
    EXPECT_DOUBLE_EQ(builder.proc_available(0), 2.0);
    EXPECT_DOUBLE_EQ(builder.proc_available(1), 0.0);
    // The timeline edits are really gone: P1 is free again and data must
    // travel, P0's gap structure is back to a single busy interval.
    EXPECT_DOUBLE_EQ(builder.data_ready(1, 1), 6.0);
    EXPECT_DOUBLE_EQ(builder.eft(1, 0, true), 4.0);
}

TEST(Builder, RollbackToSameCheckpointTwiceAndNoop) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    const ScheduleBuilder::Checkpoint mark = builder.checkpoint();
    builder.rollback(mark);  // nothing committed: no-op
    builder.place(0, 0, true);
    builder.rollback(mark);
    EXPECT_FALSE(builder.is_placed(0));
    // The same token stays valid after a rollback to it.
    builder.place(0, 1, true);
    builder.rollback(mark);
    EXPECT_FALSE(builder.is_placed(0));
    EXPECT_EQ(builder.num_placements(), 0u);
}

TEST(Builder, CheckpointsNest) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    const auto outer = builder.checkpoint();
    builder.place(0, 0, true);
    const auto inner = builder.checkpoint();
    builder.place(1, 0, true);
    builder.rollback(inner);
    EXPECT_TRUE(builder.is_placed(0));
    EXPECT_FALSE(builder.is_placed(1));
    builder.rollback(outer);
    EXPECT_FALSE(builder.is_placed(0));
    EXPECT_DOUBLE_EQ(builder.current_makespan(), 0.0);
}

TEST(Builder, RollbackRejectsForwardToken) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    EXPECT_THROW(builder.rollback(1), std::logic_error);
}

TEST(Builder, SpeculateRollbackReplayMatchesDirectBuild) {
    // The pattern every rewritten scheduler relies on: speculate, measure,
    // roll back, replay the winner — the replayed state must behave exactly
    // like a never-speculated builder.
    const Problem problem = fork_problem();
    ScheduleBuilder direct(problem);
    direct.place(0, 0, true);
    direct.place(1, 0, true);

    ScheduleBuilder spec(problem);
    spec.place(0, 0, true);
    for (ProcId p = 0; p < 2; ++p) {
        const auto mark = spec.checkpoint();
        spec.place(1, p, true);
        spec.rollback(mark);
    }
    spec.place(1, 0, true);

    EXPECT_DOUBLE_EQ(direct.eft(2, 1, true), spec.eft(2, 1, true));
    EXPECT_DOUBLE_EQ(direct.current_makespan(), spec.current_makespan());
    direct.place(2, 1, true);
    spec.place(2, 1, true);
    const Schedule a = std::move(direct).take();
    const Schedule b = std::move(spec).take();
    ASSERT_EQ(a.num_placements(), b.num_placements());
    for (TaskId v = 0; v < 3; ++v) {
        EXPECT_EQ(a.primary(v), b.primary(v)) << "task " << v;
    }
}

TEST(Builder, FullManualScheduleValidates) {
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    builder.place(0, 0, true);
    builder.place(1, 0, true);
    builder.place(2, 1, true);
    const Schedule s = std::move(builder).take();
    const auto result = validate(s, problem);
    EXPECT_TRUE(result.ok) << result.message();
    EXPECT_DOUBLE_EQ(s.makespan(), 8.0);  // task 2 remote: ready 6, +2
}

TEST(Builder, DataReadyCacheTracksCommitAndRollback) {
    // The epoch-stamped data_ready cache must never serve a stale value:
    // both commits and rollbacks bump the predecessor's epoch, so the ready
    // time of a consumer changes the moment any input moves.
    const Problem problem = fork_problem();
    ScheduleBuilder builder(problem);
    EXPECT_TRUE(std::isinf(builder.data_ready(2, 0)));  // pred 0 unplaced
    EXPECT_TRUE(std::isinf(builder.data_ready(2, 0)));  // served from cache
    builder.place(0, 0, false);
    const double local = builder.data_ready(2, 0);
    const double remote = builder.data_ready(2, 1);
    EXPECT_DOUBLE_EQ(local, 2.0);   // finish 2, no comm on-proc
    EXPECT_DOUBLE_EQ(remote, 6.0);  // + data 4 over bandwidth 1
    EXPECT_DOUBLE_EQ(builder.data_ready(2, 1), remote);  // cached, unchanged

    const auto mark = builder.checkpoint();
    builder.place_duplicate_at(0, 1, 0.0);
    EXPECT_DOUBLE_EQ(builder.data_ready(2, 1), 2.0);  // local duplicate wins
    builder.rollback(mark);
    EXPECT_DOUBLE_EQ(builder.data_ready(2, 1), remote);  // rollback re-aged cache
}

TEST(Builder, LinearTimelineEnvMatchesBucketedPlacements) {
    // Same sequence of speculative places/rollbacks on both timeline modes;
    // every intermediate quantity must agree exactly.
    const Problem problem = fork_problem();
    ::setenv("TSCHED_LINEAR_TIMELINE", "1", 1);
    ScheduleBuilder linear(problem);
    ::unsetenv("TSCHED_LINEAR_TIMELINE");
    ScheduleBuilder bucketed(problem);
    ScheduleBuilder* builders[] = {&linear, &bucketed};
    for (ScheduleBuilder* b : builders) {
        b->place(0, 0, true);
        const auto mark = b->checkpoint();
        b->place(2, 1, true);
        b->rollback(mark);
        b->place(1, 1, true);
        b->place(2, 0, true);
    }
    EXPECT_DOUBLE_EQ(linear.current_makespan(), bucketed.current_makespan());
    const Schedule a = std::move(linear).take();
    const Schedule b = std::move(bucketed).take();
    for (TaskId v = 0; v < 3; ++v) {
        EXPECT_EQ(a.primary(v), b.primary(v)) << "task " << v;
    }
}

}  // namespace
}  // namespace tsched
