// Serving-layer tests: request fingerprinting (canonicalization contract),
// the sharded LRU schedule cache, the ServeEngine (cache hits, in-flight
// coalescing, cache-off equivalence, error propagation), and the .tsr
// request-trace format.
//
// The engine tests run real concurrency on a ThreadPool and are written to
// be meaningful under TSan: the coalescing test submits identical requests
// from many threads and asserts exactly one computation happened.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "platform/problem.hpp"
#include "sched/schedule_io.hpp"
#include "serve/chaos.hpp"
#include "serve/replay.hpp"
#include "serve/request.hpp"
#include "serve/request_trace.hpp"
#include "serve/schedule_cache.hpp"
#include "serve/serve_engine.hpp"
#include "util/fingerprint.hpp"

namespace tsched {
namespace {

// ---------------------------------------------------------------------------
// Hand-built problem with exact-representable costs (no generator involved,
// so fingerprints depend only on the canonicalization rules, never on
// floating-point quirks of instance synthesis).

std::shared_ptr<const Problem> make_problem(double fork_work = 3.0, double edge_data = 1.5,
                                            double latency = 0.25) {
    Dag dag;
    const TaskId a = dag.add_task(fork_work);
    const TaskId b = dag.add_task(2.0);
    const TaskId c = dag.add_task(4.0);
    const TaskId d = dag.add_task(1.0);
    dag.add_edge(a, b, edge_data);
    dag.add_edge(a, c, 2.5);
    dag.add_edge(b, d, 0.5);
    dag.add_edge(c, d, 1.0);
    auto links = std::make_shared<const UniformLinkModel>(latency, 2.0);
    Machine machine({1.0, 2.0}, links);
    CostMatrix costs = CostMatrix::from_speeds(dag, machine);
    return std::make_shared<const Problem>(std::move(dag), std::move(machine), std::move(costs));
}

serve::ScheduleRequest make_request(std::string algo = "heft") {
    serve::ScheduleRequest request;
    request.problem = make_problem();
    request.algo = std::move(algo);
    return request;
}

std::shared_ptr<const Schedule> make_dummy_schedule(double finish) {
    auto schedule = std::make_shared<Schedule>(1, 1);
    schedule->add(0, 0, 0.0, finish);
    return schedule;
}

// ---------------------------------------------------------------------------
// Fnv1a canonical encodings.

TEST(Fingerprint, NegativeZeroHashesLikePositiveZero) {
    Fnv1a a;
    a.f64(0.0);
    Fnv1a b;
    b.f64(-0.0);
    EXPECT_EQ(a.value(), b.value());
}

TEST(Fingerprint, AllNansHashIdentically) {
    Fnv1a a;
    a.f64(std::numeric_limits<double>::quiet_NaN());
    Fnv1a b;
    b.f64(-std::nan("0x5"));
    EXPECT_EQ(a.value(), b.value());
}

TEST(Fingerprint, StringLengthPrefixPreventsConcatenationCollisions) {
    Fnv1a a;
    a.str("ab");
    a.str("c");
    Fnv1a b;
    b.str("a");
    b.str("bc");
    EXPECT_NE(a.value(), b.value());
}

TEST(Fingerprint, DistinctDoublesHashDistinct) {
    Fnv1a a;
    a.f64(1.0);
    Fnv1a b;
    b.f64(std::nextafter(1.0, 2.0));
    EXPECT_NE(a.value(), b.value());
}

// ---------------------------------------------------------------------------
// Request canonicalization.

TEST(RequestFingerprint, StableAcrossCallsAndCopies) {
    const auto request = make_request();
    const auto fp = serve::fingerprint_request(request);
    EXPECT_EQ(fp, serve::fingerprint_request(request));

    // An independently built but identical problem fingerprints identically.
    auto twin = make_request();
    EXPECT_EQ(fp, serve::fingerprint_request(twin));
}

TEST(RequestFingerprint, TaskNamesAreExcluded) {
    const auto base = make_problem();
    // Rebuild the same problem but with task names attached.
    Dag dag;
    for (TaskId v = 0; v < static_cast<TaskId>(base->num_tasks()); ++v)
        dag.add_task(base->dag().work(v), "task_" + std::to_string(v));
    for (TaskId v = 0; v < static_cast<TaskId>(base->num_tasks()); ++v)
        for (const AdjEdge& e : base->dag().successors(v)) dag.add_edge(v, e.task, e.data);
    auto links = std::make_shared<const UniformLinkModel>(0.25, 2.0);
    Machine machine({1.0, 2.0}, links);
    CostMatrix costs = CostMatrix::from_speeds(dag, machine);
    const auto named_problem =
        std::make_shared<const Problem>(std::move(dag), std::move(machine), std::move(costs));
    EXPECT_EQ(serve::fingerprint_problem(*base), serve::fingerprint_problem(*named_problem));
}

TEST(RequestFingerprint, SensitiveToEveryInput) {
    const auto base = serve::fingerprint_request(make_request());

    {
        serve::ScheduleRequest r = make_request();
        r.problem = make_problem(3.5);  // different task work
        EXPECT_NE(base, serve::fingerprint_request(r));
    }
    {
        serve::ScheduleRequest r = make_request();
        r.problem = make_problem(3.0, 1.25);  // different edge data
        EXPECT_NE(base, serve::fingerprint_request(r));
    }
    {
        serve::ScheduleRequest r = make_request();
        r.problem = make_problem(3.0, 1.5, 0.5);  // different link latency
        EXPECT_NE(base, serve::fingerprint_request(r));
    }
    {
        serve::ScheduleRequest r = make_request("cpop");  // different algorithm
        EXPECT_NE(base, serve::fingerprint_request(r));
    }
    {
        serve::ScheduleRequest r = make_request();
        r.options = "k=3";  // different options
        EXPECT_NE(base, serve::fingerprint_request(r));
    }
}

TEST(RequestFingerprint, TopologyMattersNotJustTotals) {
    // Same tasks, same total edge data, different wiring.
    const auto build = [](bool cross) {
        Dag dag;
        dag.add_task(1.0);
        dag.add_task(1.0);
        dag.add_task(1.0);
        if (cross) {
            dag.add_edge(0, 1, 2.0);
        } else {
            dag.add_edge(0, 2, 2.0);
        }
        auto links = std::make_shared<const UniformLinkModel>(0.0, 1.0);
        Machine machine = Machine::homogeneous(2, links);
        CostMatrix costs = CostMatrix::from_speeds(dag, machine);
        return std::make_shared<const Problem>(std::move(dag), std::move(machine),
                                               std::move(costs));
    };
    EXPECT_NE(serve::fingerprint_problem(*build(true)), serve::fingerprint_problem(*build(false)));
}

// ---------------------------------------------------------------------------
// ScheduleCache.

TEST(ScheduleCache, PutGetReturnsTheSameObject) {
    serve::ScheduleCache cache(4, 1);
    const auto value = make_dummy_schedule(1.0);
    cache.put(42, value);
    const auto hit = cache.get(42);
    EXPECT_EQ(hit.get(), value.get());
    EXPECT_EQ(cache.get(7), nullptr);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.size, 1u);
}

TEST(ScheduleCache, EvictsLeastRecentlyUsed) {
    serve::ScheduleCache cache(2, 1);
    cache.put(1, make_dummy_schedule(1.0));
    cache.put(2, make_dummy_schedule(2.0));
    ASSERT_NE(cache.get(1), nullptr);  // refresh 1 -> 2 is now LRU
    cache.put(3, make_dummy_schedule(3.0));
    EXPECT_NE(cache.get(1), nullptr);
    EXPECT_EQ(cache.get(2), nullptr);  // evicted
    EXPECT_NE(cache.get(3), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ScheduleCache, PeekCountsNothingButRefreshesRecency) {
    serve::ScheduleCache cache(2, 1);
    cache.put(1, make_dummy_schedule(1.0));
    cache.put(2, make_dummy_schedule(2.0));
    EXPECT_NE(cache.peek(1), nullptr);
    EXPECT_EQ(cache.peek(99), nullptr);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);
    // peek refreshed key 1, so inserting a third entry evicts key 2.
    cache.put(3, make_dummy_schedule(3.0));
    EXPECT_NE(cache.peek(1), nullptr);
    EXPECT_EQ(cache.peek(2), nullptr);
}

TEST(ScheduleCache, CapacityBoundsResidencyAcrossShards) {
    serve::ScheduleCache cache(8, 4);
    for (std::uint64_t k = 0; k < 100; ++k) cache.put(k, make_dummy_schedule(1.0));
    const auto stats = cache.stats();
    EXPECT_LE(stats.size, 8u);
    EXPECT_EQ(stats.evictions, 100u - stats.size);
}

TEST(ScheduleCache, OverwriteDoesNotGrowOrEvict) {
    serve::ScheduleCache cache(2, 1);
    cache.put(1, make_dummy_schedule(1.0));
    const auto replacement = make_dummy_schedule(9.0);
    cache.put(1, replacement);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.size, 1u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(cache.get(1).get(), replacement.get());
}

TEST(ScheduleCache, ShardCountIsPowerOfTwoAndBoundedByCapacity) {
    EXPECT_EQ(serve::ScheduleCache(16, 5).num_shards(), 4u);
    EXPECT_EQ(serve::ScheduleCache(16, 8).num_shards(), 8u);
    EXPECT_EQ(serve::ScheduleCache(2, 8).num_shards(), 2u);
    EXPECT_EQ(serve::ScheduleCache(1, 8).num_shards(), 1u);
    EXPECT_THROW(serve::ScheduleCache(0, 1), std::invalid_argument);
    EXPECT_THROW(serve::ScheduleCache(1, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ServeEngine.

TEST(ServeEngine, SecondServeOfIdenticalRequestHitsTheCache) {
    ThreadPool pool(2);
    serve::ServeEngine engine(serve::ServeConfig{}, pool);
    const auto first = engine.serve(make_request());
    const auto second = engine.serve(make_request());
    EXPECT_FALSE(first.cache_hit);
    EXPECT_TRUE(second.cache_hit);
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    // Bit-identical by construction: the hit *is* the cold result object.
    EXPECT_EQ(first.schedule.get(), second.schedule.get());
    EXPECT_EQ(to_tss(*first.schedule), to_tss(*second.schedule));
    const auto stats = engine.stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.computed, 1u);
    EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(ServeEngine, ConcurrentIdenticalRequestsComputeOnce) {
    ThreadPool pool(8);
    serve::ServeEngine engine(serve::ServeConfig{}, pool);
    std::vector<serve::ScheduleRequest> burst(32, make_request());
    const auto results = engine.run_batch(std::move(burst));
    ASSERT_EQ(results.size(), 32u);
    for (const auto& r : results) {
        ASSERT_NE(r.schedule, nullptr);
        EXPECT_EQ(r.schedule.get(), results.front().schedule.get());
    }
    const auto stats = engine.stats();
    EXPECT_EQ(stats.computed, 1u);
    EXPECT_EQ(stats.computed + stats.coalesced + stats.cache_hits, 32u);
}

TEST(ServeEngine, CacheOffStillDeduplicatesNothingAndMatchesCacheOn) {
    ThreadPool pool(4);
    serve::TraceGenParams params;
    params.requests = 12;
    params.repeat_frac = 0.5;
    params.size = 24;
    params.procs = 4;
    const auto trace = serve::generate_trace(params);
    std::vector<serve::ScheduleRequest> requests;
    for (const auto& tr : trace) requests.push_back(serve::materialize(tr));

    serve::ServeConfig off;
    off.enable_cache = false;
    off.enable_dedup = false;
    serve::ServeEngine engine_on(serve::ServeConfig{}, pool);
    serve::ServeEngine engine_off(off, pool);
    const auto results_on = engine_on.run_batch(requests);
    const auto results_off = engine_off.run_batch(requests);
    ASSERT_EQ(results_on.size(), results_off.size());
    for (std::size_t i = 0; i < results_on.size(); ++i)
        EXPECT_EQ(to_tss(*results_on[i].schedule), to_tss(*results_off[i].schedule)) << i;

    const auto stats_off = engine_off.stats();
    EXPECT_EQ(stats_off.computed, requests.size());
    EXPECT_EQ(stats_off.cache_hits, 0u);
    EXPECT_EQ(stats_off.coalesced, 0u);
}

TEST(ServeEngine, BatchResultsComeBackInRequestOrder) {
    ThreadPool pool(4);
    serve::ServeEngine engine(serve::ServeConfig{}, pool);
    std::vector<serve::ScheduleRequest> batch;
    std::vector<std::uint64_t> expected;
    for (double work : {1.0, 2.0, 3.0, 4.0, 5.0}) {
        serve::ScheduleRequest r = make_request();
        r.problem = make_problem(work);
        expected.push_back(serve::fingerprint_request(r));
        batch.push_back(std::move(r));
    }
    const auto results = engine.run_batch(std::move(batch));
    ASSERT_EQ(results.size(), expected.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].fingerprint, expected[i]) << i;
}

TEST(ServeEngine, TinyCacheEvictsButEveryRequestIsStillServed) {
    ThreadPool pool(4);
    serve::ServeConfig config;
    config.cache_capacity = 1;
    config.cache_shards = 1;
    serve::ServeEngine engine(config, pool);
    for (int round = 0; round < 2; ++round) {
        for (double work : {1.0, 2.0, 3.0}) {
            serve::ScheduleRequest r = make_request();
            r.problem = make_problem(work);
            const auto result = engine.serve(std::move(r));
            ASSERT_NE(result.schedule, nullptr);
        }
    }
    const auto stats = engine.stats();
    EXPECT_EQ(stats.requests, 6u);
    EXPECT_GT(stats.cache.evictions, 0u);
    EXPECT_EQ(stats.computed + stats.coalesced + stats.cache_hits, 6u);
}

TEST(ServeEngine, UnknownAlgorithmSurfacesThroughTheFuture) {
    ThreadPool pool(2);
    serve::ServeEngine engine(serve::ServeConfig{}, pool);
    auto future = engine.submit(make_request("no-such-algorithm"));
    EXPECT_THROW((void)future.get(), std::exception);
    // The engine stays usable afterwards.
    EXPECT_NE(engine.serve(make_request()).schedule, nullptr);
}

TEST(ServeEngine, NullProblemIsRejectedUpFront) {
    ThreadPool pool(1);
    serve::ServeEngine engine(serve::ServeConfig{}, pool);
    serve::ScheduleRequest request;
    request.problem = nullptr;
    EXPECT_THROW((void)engine.submit(std::move(request)), std::invalid_argument);
}

TEST(ServeEngine, MetricsSnapshotMergesEngineCacheAndPool) {
    ThreadPool pool(2);
    serve::ServeEngine engine(serve::ServeConfig{}, pool);
    for (int i = 0; i < 3; ++i) {
        ASSERT_NE(engine.serve(make_request()).schedule, nullptr);
    }
    const obs::MetricsSnapshot snap = engine.metrics_snapshot();

    const auto counter = [&snap](const std::string& name) -> std::uint64_t {
        for (const auto& c : snap.counters)
            if (c.name == name) return c.value;
        ADD_FAILURE() << "missing counter " << name;
        return 0;
    };
    EXPECT_EQ(counter("serve/requests"), 3u);
    EXPECT_EQ(counter("serve/computed"), 1u);
    EXPECT_EQ(counter("serve/served_from_cache"), 2u);
    EXPECT_EQ(counter("serve/cache/hits"), 2u);
    EXPECT_GE(counter("pool/tasks_run"), 1u);

    bool saw_hit_rate = false;
    bool saw_shard_occupancy = false;
    for (const auto& g : snap.gauges) {
        if (g.name == "serve/hit_rate") {
            saw_hit_rate = true;
            EXPECT_NEAR(g.value, 2.0 / 3.0, 1e-9);
        }
        if (g.name == "serve/cache/shard_occupancy") saw_shard_occupancy = true;
    }
    EXPECT_TRUE(saw_hit_rate);
    EXPECT_TRUE(saw_shard_occupancy);

#if TSCHED_OBS_ON
    // With recording on, the latency split histograms carry the run:
    // every request lands in total, only the cold one in compute.
    const auto hist_count = [&snap](const std::string& name) -> std::uint64_t {
        for (const auto& h : snap.histograms)
            if (h.name == name) return h.hist.count;
        ADD_FAILURE() << "missing histogram " << name;
        return 0;
    };
    EXPECT_EQ(hist_count("serve/latency/total_ms"), 3u);
    EXPECT_EQ(hist_count("serve/latency/compute_ms"), 1u);
    EXPECT_EQ(hist_count("serve/latency/cache_lookup_ms"), 3u);
    EXPECT_GE(hist_count("pool/task_run_ms"), 1u);
#endif

    // The snapshot is in canonical order, ready for the exporters.
    obs::MetricsSnapshot sorted = snap;
    sorted.sort();
    EXPECT_EQ(snap, sorted);
}

// ---------------------------------------------------------------------------
// Request traces (.tsr) and replay.

TEST(RequestTrace, RoundTripsThroughText) {
    serve::TraceGenParams params;
    params.requests = 20;
    params.repeat_frac = 0.4;
    params.algos = {"heft", "cpop"};
    params.shapes = {workload::Shape::kLayered, workload::Shape::kFft};
    const auto trace = serve::generate_trace(params);
    const auto parsed = serve::read_tsr_string(serve::to_tsr(trace));
    EXPECT_EQ(parsed, trace);
}

TEST(RequestTrace, GenerateHonorsExactRepeatFraction) {
    serve::TraceGenParams params;
    params.requests = 40;
    params.repeat_frac = 0.5;
    const auto trace = serve::generate_trace(params);
    ASSERT_EQ(trace.size(), 40u);
    std::set<std::uint64_t> distinct;
    for (const auto& tr : trace) distinct.insert(serve::fingerprint_request(serve::materialize(tr)));
    EXPECT_EQ(distinct.size(), 20u);  // 40 - floor(40 * 0.5) fresh instances
}

TEST(RequestTrace, GenerationIsDeterministicInTheSeed) {
    serve::TraceGenParams params;
    params.requests = 16;
    const auto a = serve::generate_trace(params);
    const auto b = serve::generate_trace(params);
    EXPECT_EQ(a, b);
    params.seed += 1;
    EXPECT_NE(serve::generate_trace(params), a);
}

TEST(RequestTrace, MaterializeIsDeterministic) {
    serve::TraceRequest tr;
    tr.size = 30;
    tr.procs = 4;
    const auto a = serve::materialize(tr);
    const auto b = serve::materialize(tr);
    EXPECT_EQ(serve::fingerprint_request(a), serve::fingerprint_request(b));
}

TEST(RequestTrace, ParseErrorsAreLineNumbered) {
    try {
        (void)serve::read_tsr_string("tsr 1\nr heft layered not-a-number\n");
        FAIL() << "malformed trace accepted";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    }
}

TEST(Replay, SteadyStateAccountingAddsUp) {
    ThreadPool pool(4);
    serve::TraceGenParams params;
    params.requests = 10;
    params.repeat_frac = 0.5;
    params.size = 24;
    params.procs = 4;
    const auto trace = serve::generate_trace(params);
    serve::ReplayOptions options;
    options.batch = 4;
    options.epochs = 3;
    const auto report = serve::replay_trace(trace, options, pool);
    EXPECT_EQ(report.requests, 30u);
    EXPECT_EQ(report.stats.computed, 5u);  // distinct instances only
    EXPECT_EQ(report.stats.computed + report.stats.coalesced + report.stats.cache_hits, 30u);
    EXPECT_GT(report.qps, 0.0);
    EXPECT_LE(report.latency_p50_ms, report.latency_p95_ms);
    EXPECT_LE(report.latency_p95_ms, report.latency_p99_ms);
    EXPECT_LE(report.latency_p99_ms, report.latency_p999_ms);
    EXPECT_LE(report.latency_p999_ms, report.latency_max_ms);

    // The obs histogram runs alongside the exact latency vector in every
    // build configuration; its percentiles must stay within the documented
    // relative-error bound of the exact nearest-rank values it approximates.
    EXPECT_EQ(report.latency_hist.count, 30u);
    EXPECT_NEAR(report.hist_p99_ms, report.latency_hist.quantile(0.99), 1e-12);
    EXPECT_GT(report.hist_p50_ms, 0.0);
    EXPECT_LE(report.hist_p50_ms, report.hist_p999_ms);
    EXPECT_DOUBLE_EQ(report.latency_hist.max, report.latency_max_ms);

    // The merged engine metrics document rides along for exporters.
    EXPECT_FALSE(report.metrics.counters.empty());
    EXPECT_FALSE(report.metrics.gauges.empty());
}

// ---------------------------------------------------------------------------
// Concurrency regressions.  These run in the TSan CI leg (the job's -R
// filter matches ServeEngine/ScheduleCache names) and exercise the lock
// discipline the thread-safety annotations document.

TEST(ScheduleCacheStress, StatsStayConsistentUnderConcurrentHammer) {
    // Regression: stats() used to read the hit/miss counters outside the
    // shard lock while lru.size() was sampled separately, so a concurrent
    // hammer could observe torn totals (hits + misses != get calls).
    serve::ScheduleCache cache(16, 4);
    constexpr int kThreads = 4;
    constexpr int kOpsPerThread = 2000;
    std::atomic<std::uint64_t> gets{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, &gets, t] {
            for (int i = 0; i < kOpsPerThread; ++i) {
                const auto key = static_cast<std::uint64_t>((t * kOpsPerThread + i) % 64);
                if (i % 3 == 0) {
                    cache.put(key, make_dummy_schedule(static_cast<double>(key)));
                } else {
                    (void)cache.get(key);
                    gets.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto& t : threads) t.join();
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses, gets.load());
    EXPECT_LE(stats.size, cache.capacity());
}

TEST(ServeEngineStress, MixedRepeatAndUniqueClientsGetCorrectResults) {
    // N client threads × mixed ~50% repeated / ~50% unique requests pushed
    // through the full cache + in-flight-coalescing path.  Every future must
    // resolve, repeats must agree bit-for-bit, and the engine's accounting
    // must add up exactly.
    ThreadPool pool(4);
    serve::ServeEngine engine(serve::ServeConfig{}, pool);
    constexpr int kClients = 8;
    constexpr int kRequestsPerClient = 20;
    const std::vector<double> shared_works = {1.0, 2.0, 3.0, 4.0};

    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int i = 0; i < kRequestsPerClient; ++i) {
                serve::ScheduleRequest request = make_request();
                // Even iterations draw from a tiny shared set (repeats across
                // every client); odd ones are globally unique.
                const double work = (i % 2 == 0)
                    ? shared_works[static_cast<std::size_t>(i / 2)
                                   % shared_works.size()]
                    : 100.0 + c * kRequestsPerClient + i;
                request.problem = make_problem(work);
                const auto result = engine.serve(std::move(request));
                if (result.schedule == nullptr) failures.fetch_add(1);
            }
        });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0);

    const auto stats = engine.stats();
    constexpr std::uint64_t kTotal = kClients * kRequestsPerClient;
    EXPECT_EQ(stats.requests, kTotal);
    EXPECT_EQ(stats.computed + stats.coalesced + stats.cache_hits, kTotal);
    // 4 shared instances + 8×10 unique ones = at most 84 cold computations.
    EXPECT_LE(stats.computed, 84u);
    EXPECT_GE(stats.computed, 84u - shared_works.size());  // uniques always compute

    // Repeats must be bit-identical to a fresh serve of the same request.
    for (double work : shared_works) {
        serve::ScheduleRequest request = make_request();
        request.problem = make_problem(work);
        const auto replayed = engine.serve(std::move(request));
        EXPECT_TRUE(replayed.cache_hit) << work;
    }
}

// ---------------------------------------------------------------------------
// Overload protection: admission control, shed policies, deadlines, drain
// (serve/admission.hpp, serve/chaos.hpp; DESIGN §16).  Suite names matter
// here: the CI TSan leg filters on ServeEngine*, so every suite below runs
// under TSan too.  Any test that parks computations at a chaos gate MUST
// release_stalls() before its engine leaves scope — the destructor's
// own-task wait is unbounded by design.

std::shared_ptr<serve::DeterministicChaos> make_gate() {
    serve::ChaosOptions options;
    options.gate_stalls = true;
    options.gate_all = true;
    return std::make_shared<serve::DeterministicChaos>(options);
}

serve::ServeConfig overload_config(serve::ShedPolicy policy, std::size_t max_inflight,
                                   std::size_t max_pending,
                                   std::shared_ptr<serve::ChaosHook> chaos) {
    serve::ServeConfig config;
    config.max_inflight = max_inflight;
    config.max_pending = max_pending;
    config.shed_policy = policy;
    config.chaos = std::move(chaos);
    return config;
}

/// `count` fingerprint-distinct requests (distinct fork work).
std::vector<serve::ScheduleRequest> unique_burst(std::size_t count) {
    std::vector<serve::ScheduleRequest> out;
    for (std::size_t i = 0; i < count; ++i) {
        auto request = make_request();
        request.problem = make_problem(50.0 + static_cast<double>(i));
        out.push_back(std::move(request));
    }
    return out;
}

std::uint64_t outcome_total(const serve::EngineStats& stats) {
    return stats.ok + stats.shed + stats.degraded + stats.timed_out + stats.draining +
           stats.failed;
}

/// Spin until `count` computations are parked at the chaos gate.  Bounded,
/// so a regression shows up as a failed EXPECT instead of a hung test.
[[nodiscard]] bool await_stalled(serve::DeterministicChaos& chaos, std::uint64_t count) {
    for (int i = 0; i < 50000; ++i) {
        if (chaos.stats().stalls >= count) return true;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return false;
}

TEST(RequestFingerprint, DeadlineIsExcludedFromTheFingerprint) {
    auto plain = make_request();
    auto dated = make_request();
    dated.deadline_ms = 125.0;
    EXPECT_EQ(serve::fingerprint_request(plain), serve::fingerprint_request(dated));
}

TEST(ServeEngineOverload, OutcomeNamesAndShedPolicyNamesRoundTrip) {
    EXPECT_STREQ(serve::outcome_name(serve::ServeOutcome::kOk), "ok");
    EXPECT_STREQ(serve::outcome_name(serve::ServeOutcome::kShed), "shed");
    EXPECT_STREQ(serve::outcome_name(serve::ServeOutcome::kDegraded), "degraded");
    EXPECT_STREQ(serve::outcome_name(serve::ServeOutcome::kTimedOut), "timed_out");
    EXPECT_STREQ(serve::outcome_name(serve::ServeOutcome::kDraining), "draining");
    for (const auto policy : {serve::ShedPolicy::kRejectNew, serve::ShedPolicy::kDropOldest,
                              serve::ShedPolicy::kDegrade}) {
        EXPECT_EQ(serve::shed_policy_from_name(serve::shed_policy_name(policy)), policy);
    }
    EXPECT_FALSE(serve::shed_policy_from_name("bogus").has_value());
}

TEST(ServeEngineOverload, RejectNewShedsBeyondBudgetAndQueue) {
    // Freeze the world at the gate, saturate {inflight=2, pending=2} with 8
    // distinct requests: 0-1 run, 2-3 queue, 4-7 shed.  After release the
    // queued pair is promoted and completes ok.
    ThreadPool pool(2);
    auto gate = make_gate();
    serve::ServeEngine engine(
        overload_config(serve::ShedPolicy::kRejectNew, 2, 2, gate), pool);
    auto requests = unique_burst(8);
    std::vector<std::future<serve::ServeResult>> futures;
    for (auto& request : requests) futures.push_back(engine.submit(std::move(request)));
    gate->release_stalls();
    std::vector<serve::ServeOutcome> outcomes;
    for (auto& future : futures) {
        const auto result = future.get();
        outcomes.push_back(result.outcome);
        if (result.outcome == serve::ServeOutcome::kOk) {
            EXPECT_NE(result.schedule, nullptr);
        } else {
            EXPECT_EQ(result.schedule, nullptr);  // shed answers carry no schedule
        }
    }
    for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(outcomes[i], serve::ServeOutcome::kOk) << i;
    for (std::size_t i = 4; i < 8; ++i) EXPECT_EQ(outcomes[i], serve::ServeOutcome::kShed) << i;
    const auto stats = engine.stats();
    EXPECT_EQ(stats.ok, 4u);
    EXPECT_EQ(stats.shed, 4u);
    EXPECT_EQ(outcome_total(stats), stats.requests);
    EXPECT_LE(stats.admission.inflight_peak, 2u);
    EXPECT_EQ(stats.admission.queued, 2u);
    EXPECT_EQ(stats.admission.promoted, 2u);
}

TEST(ServeEngineOverload, DropOldestEvictsTheOldestPendingRequest) {
    ThreadPool pool(2);
    auto gate = make_gate();
    serve::ServeEngine engine(
        overload_config(serve::ShedPolicy::kDropOldest, 2, 2, gate), pool);
    auto requests = unique_burst(8);
    std::vector<std::future<serve::ServeResult>> futures;
    for (auto& request : requests) futures.push_back(engine.submit(std::move(request)));
    gate->release_stalls();
    std::vector<serve::ServeOutcome> outcomes;
    for (auto& future : futures) outcomes.push_back(future.get().outcome);
    // 0-1 run; 2-3 queue; 4 evicts 2, 5 evicts 3, 6 evicts 4, 7 evicts 5 —
    // the queue ends holding the *newest* arrivals {6, 7}.
    const std::vector<serve::ServeOutcome> expect = {
        serve::ServeOutcome::kOk,   serve::ServeOutcome::kOk,
        serve::ServeOutcome::kShed, serve::ServeOutcome::kShed,
        serve::ServeOutcome::kShed, serve::ServeOutcome::kShed,
        serve::ServeOutcome::kOk,   serve::ServeOutcome::kOk};
    EXPECT_EQ(outcomes, expect);
    const auto stats = engine.stats();
    EXPECT_EQ(outcome_total(stats), stats.requests);
}

TEST(ServeEngineOverload, DegradeAnswersInlineWithTheSubstituteAlgorithm) {
    ThreadPool pool(2);
    auto gate = make_gate();
    auto config = overload_config(serve::ShedPolicy::kDegrade, 2, 0, gate);
    config.degrade_algo = "heft";
    serve::ServeEngine engine(config, pool);
    auto requests = unique_burst(6);
    std::vector<std::future<serve::ServeResult>> futures;
    for (auto& request : requests) futures.push_back(engine.submit(std::move(request)));
    gate->release_stalls();
    std::vector<serve::ServeOutcome> outcomes;
    for (auto& future : futures) {
        const auto result = future.get();
        outcomes.push_back(result.outcome);
        // Degraded answers are real schedules, just from the cheap algorithm.
        EXPECT_NE(result.schedule, nullptr);
    }
    for (std::size_t i = 0; i < 2; ++i) EXPECT_EQ(outcomes[i], serve::ServeOutcome::kOk) << i;
    for (std::size_t i = 2; i < 6; ++i)
        EXPECT_EQ(outcomes[i], serve::ServeOutcome::kDegraded) << i;
    const auto stats = engine.stats();
    EXPECT_EQ(stats.ok, 2u);
    EXPECT_EQ(stats.degraded, 4u);
    EXPECT_EQ(outcome_total(stats), stats.requests);
}

TEST(ServeEngineDeadline, ExpiredPendingRequestIsNeverStarted) {
    // A queued request whose 1 ns budget is long blown by promotion time is
    // flushed as timed_out without ever reaching a scheduler.
    ThreadPool pool(2);
    auto gate = make_gate();
    serve::ServeEngine engine(
        overload_config(serve::ShedPolicy::kRejectNew, 1, 4, gate), pool);
    auto requests = unique_burst(2);
    requests[1].deadline_ms = 1e-9;
    auto runner = engine.submit(std::move(requests[0]));
    auto doomed = engine.submit(std::move(requests[1]));
    gate->release_stalls();
    EXPECT_EQ(runner.get().outcome, serve::ServeOutcome::kOk);
    const auto result = doomed.get();
    EXPECT_EQ(result.outcome, serve::ServeOutcome::kTimedOut);
    EXPECT_EQ(result.schedule, nullptr);  // never started, so no answer
    const auto stats = engine.stats();
    EXPECT_EQ(stats.computed, 1u);  // only the runner ever reached a scheduler
    EXPECT_EQ(stats.timed_out, 1u);
    EXPECT_EQ(outcome_total(stats), stats.requests);
}

TEST(ServeEngineDeadline, LateCompletionResolvesTimedOutWithTheSchedule) {
    // The computation is held at the gate until the 250 ms budget is blown;
    // the late result resolves kTimedOut but still carries the schedule
    // (request.hpp outcome contract).
    ThreadPool pool(2);
    auto gate = make_gate();
    serve::ServeConfig config;
    config.chaos = gate;
    serve::ServeEngine engine(config, pool);
    auto request = make_request();
    request.deadline_ms = 250.0;
    const Stopwatch clock;
    auto future = engine.submit(std::move(request));
    ASSERT_TRUE(await_stalled(*gate, 1));  // dequeue check passed; now parked
    while (clock.elapsed_ms() < 300.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    gate->release_stalls();
    const auto result = future.get();
    EXPECT_EQ(result.outcome, serve::ServeOutcome::kTimedOut);
    EXPECT_NE(result.schedule, nullptr);
    EXPECT_GT(result.latency_ms, 250.0);
    EXPECT_EQ(engine.stats().timed_out, 1u);
}

TEST(ServeEngine, WaitBudgetYieldsSyntheticTimeoutsInsteadOfHanging) {
    // run_batch/serve stop waiting when the budget runs out; the parked
    // computations still retire normally once the gate opens, so the
    // engine-side accounting ends at ok=3 with no timed_out.
    ThreadPool pool(2);
    auto gate = make_gate();
    serve::ServeConfig config;
    config.chaos = gate;
    serve::ServeEngine engine(config, pool);
    const auto results = engine.run_batch(unique_burst(2), /*wait_budget_ms=*/30.0);
    ASSERT_EQ(results.size(), 2u);
    for (const auto& result : results) {
        EXPECT_EQ(result.outcome, serve::ServeOutcome::kTimedOut);
        EXPECT_EQ(result.schedule, nullptr);
        EXPECT_EQ(result.fingerprint, 0u);  // synthetic: the caller gave up
    }
    auto one = make_request();
    one.problem = make_problem(99.5);
    const auto gave_up = engine.serve(std::move(one), /*wait_budget_ms=*/20.0);
    EXPECT_EQ(gave_up.outcome, serve::ServeOutcome::kTimedOut);
    gate->release_stalls();
    (void)engine.drain(/*timeout_ms=*/0.0);  // wait for the real completions
    const auto stats = engine.stats();
    EXPECT_EQ(stats.ok, 3u);
    EXPECT_EQ(stats.timed_out, 0u);  // synthetic timeouts are caller-side only
}

TEST(ServeEngineDrain, FlushesPendingRefusesNewAndForcesStuckWaiters) {
    ThreadPool pool(2);
    auto gate = make_gate();
    serve::ServeEngine engine(
        overload_config(serve::ShedPolicy::kRejectNew, 1, 2, gate), pool);
    auto requests = unique_burst(4);
    std::vector<std::future<serve::ServeResult>> futures;
    for (auto& request : requests) futures.push_back(engine.submit(std::move(request)));
    // 0 runs (parked at the gate), 1-2 queue, 3 shed.
    const auto report = engine.drain(/*timeout_ms=*/40.0);
    EXPECT_FALSE(report.clean);
    EXPECT_EQ(report.flushed_pending, 2u);  // 1-2 flushed as draining
    EXPECT_EQ(report.forced_waiters, 1u);   // 0 expropriated on timeout
    // Admission is closed: new submits resolve kDraining immediately.
    auto late = make_request();
    late.problem = make_problem(123.0);
    EXPECT_EQ(engine.serve(std::move(late)).outcome, serve::ServeOutcome::kDraining);
    EXPECT_EQ(futures[0].get().outcome, serve::ServeOutcome::kDraining);
    EXPECT_EQ(futures[1].get().outcome, serve::ServeOutcome::kDraining);
    EXPECT_EQ(futures[2].get().outcome, serve::ServeOutcome::kDraining);
    EXPECT_EQ(futures[3].get().outcome, serve::ServeOutcome::kShed);
    gate->release_stalls();  // let the parked closure exit before ~ServeEngine
    const auto stats = engine.stats();
    EXPECT_EQ(stats.draining, 4u);
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(outcome_total(stats), stats.requests);
}

TEST(ServeEngineDrain, CleanDrainRetiresInflightWorkAndReportsClean) {
    ThreadPool pool(2);
    serve::ServeEngine engine(serve::ServeConfig{}, pool);
    std::vector<std::future<serve::ServeResult>> futures;
    for (auto& request : unique_burst(4)) futures.push_back(engine.submit(std::move(request)));
    const auto report = engine.drain(/*timeout_ms=*/0.0);  // wait forever
    EXPECT_TRUE(report.clean);
    EXPECT_EQ(report.forced_waiters, 0u);
    for (auto& future : futures) EXPECT_EQ(future.get().outcome, serve::ServeOutcome::kOk);
    // Idempotent: a second drain has nothing left to do.
    const auto again = engine.drain(/*timeout_ms=*/0.0);
    EXPECT_TRUE(again.clean);
    EXPECT_EQ(again.flushed_pending, 0u);
}

TEST(ServeEngineDrain, DestructorDoesNotWaitOnOtherEnginesPoolTasks) {
    // Two engines share one pool; engine A's computation is parked at a
    // chaos gate.  Engine B must tear down promptly anyway — the destructor
    // joins this engine's *own* closures, never the pool's global idle.
    // (Before the own-task fix, B's destructor hung here forever.)
    ThreadPool pool(2);
    auto gate = make_gate();
    serve::ServeConfig gated;
    gated.chaos = gate;
    serve::ServeEngine stuck(gated, pool);
    auto parked = stuck.submit(make_request());
    ASSERT_TRUE(await_stalled(*gate, 1));
    {
        serve::ServeEngine prompt(serve::ServeConfig{}, pool);
        auto request = make_request();
        request.problem = make_problem(77.0);
        const auto result = prompt.serve(std::move(request));
        EXPECT_EQ(result.outcome, serve::ServeOutcome::kOk);
        EXPECT_NE(result.schedule, nullptr);
    }  // ~prompt returns while `stuck`'s computation is still parked
    gate->release_stalls();
    EXPECT_EQ(parked.get().outcome, serve::ServeOutcome::kOk);
}

TEST(ServeEngineStress, CoalescedWaitersAndThrowingComputationSurviveDrainRace) {
    // N identical requests coalesce onto one cursed computation (throws on
    // every fp) parked at the gate; then drain() races release_stalls().
    // Whoever claims the entry first resolves all N waiters — exactly once
    // each, as either the injected error or kDraining.  TSan guards the
    // claim; the accounting identity guards double/zero resolution.
    constexpr int kWaiters = 8;
    for (int round = 0; round < 10; ++round) {
        ThreadPool pool(2);
        serve::ChaosOptions options;
        options.gate_stalls = true;
        options.gate_all = true;
        options.throw_prob = 1.0;  // every fp is cursed
        auto gate = std::make_shared<serve::DeterministicChaos>(options);
        serve::ServeConfig config;
        config.chaos = gate;
        serve::ServeEngine engine(config, pool);
        std::vector<std::future<serve::ServeResult>> futures;
        for (int i = 0; i < kWaiters; ++i) futures.push_back(engine.submit(make_request()));
        ASSERT_TRUE(await_stalled(*gate, 1));
        std::thread releaser([&gate] { gate->release_stalls(); });
        const auto report = engine.drain(/*timeout_ms=*/1.0);
        releaser.join();
        std::size_t failed = 0;
        std::size_t draining = 0;
        for (auto& future : futures) {
            try {
                const auto result = future.get();
                EXPECT_EQ(result.outcome, serve::ServeOutcome::kDraining);
                ++draining;
            } catch (const serve::ChaosError&) {
                ++failed;
            }
        }
        EXPECT_EQ(failed + draining, static_cast<std::size_t>(kWaiters));
        // The entry was claimed exactly once: either the computation beat
        // the drain (everyone got the error) or drain expropriated first
        // (everyone drained).
        EXPECT_TRUE(failed == 0 || draining == 0)
            << "round " << round << ": " << failed << " failed, " << draining << " drained";
        if (report.forced_waiters > 0) {
            EXPECT_EQ(draining, static_cast<std::size_t>(kWaiters));
        }
        const auto stats = engine.stats();
        EXPECT_EQ(outcome_total(stats), stats.requests);
    }
}

TEST(ServeEngineChaos, FaultPredicatesArePureFunctionsOfSeedAndFingerprint) {
    serve::ChaosOptions options;
    options.seed = 41;
    options.stall_prob = 0.3;
    options.throw_prob = 0.3;
    options.submit_fail_prob = 0.3;
    const serve::DeterministicChaos a(options);
    const serve::DeterministicChaos b(options);
    options.seed = 42;
    const serve::DeterministicChaos reseeded(options);
    bool any_differs = false;
    for (std::uint64_t fp = 1; fp <= 256; ++fp) {
        EXPECT_EQ(a.will_stall(fp), b.will_stall(fp));
        EXPECT_EQ(a.will_throw(fp), b.will_throw(fp));
        EXPECT_EQ(a.will_fail_submit(fp), b.will_fail_submit(fp));
        any_differs = any_differs || a.will_throw(fp) != reseeded.will_throw(fp);
    }
    EXPECT_TRUE(any_differs);  // the seed actually keys the decisions
    const auto stats = a.stats();
    EXPECT_EQ(stats.stalls + stats.throws + stats.submit_failures, 0u);  // predicates don't count
}

TEST(Replay, DeadlineAndOutcomeTalliesRideAlongInTheReport) {
    ThreadPool pool(2);
    serve::TraceGenParams params;
    params.requests = 6;
    params.repeat_frac = 0.0;
    params.size = 24;
    params.procs = 4;
    const auto trace = serve::generate_trace(params);
    // A 1 ns deadline on an unbounded engine: every completion is late, so
    // every result is timed_out (late completions still carry schedules).
    serve::ReplayOptions options;
    options.deadline_ms = 1e-9;
    const auto report = serve::replay_trace(trace, options, pool);
    EXPECT_EQ(report.timed_out, report.requests);
    EXPECT_EQ(report.ok, 0u);
    EXPECT_DOUBLE_EQ(report.deadline_hit_rate(), 1.0);
    EXPECT_DOUBLE_EQ(report.shed_rate(), 0.0);
    // And with no deadline the same stream is all ok.
    serve::ReplayOptions plain;
    const auto healthy = serve::replay_trace(trace, plain, pool);
    EXPECT_EQ(healthy.ok, healthy.requests);
    EXPECT_EQ(healthy.timed_out, 0u);
}

TEST(ServeEngine, SubmitAfterPoolShutdownThrowsAndRollsBackInflight) {
    // Regression: when handing the computation to the pool fails, the
    // request's in-flight registration must be rolled back.  Before the fix
    // the entry leaked, so a *second* identical request would coalesce onto
    // it, successfully return a future nobody would ever resolve, and hang.
    ThreadPool pool(2);
    serve::ServeEngine engine(serve::ServeConfig{}, pool);  // dedup on
    pool.shutdown();
    EXPECT_THROW((void)engine.submit(make_request()), std::runtime_error);
    // Must throw again (re-registering as owner), not coalesce and hang.
    EXPECT_THROW((void)engine.submit(make_request()), std::runtime_error);
}

}  // namespace
}  // namespace tsched
