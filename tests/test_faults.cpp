// Tests for fault injection (sim/faults.hpp), schedule repair
// (sched/repair.hpp), and the fault-plan lints (analysis/fault_lints.hpp).
#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/fault_lints.hpp"
#include "analysis/schedule_lints.hpp"
#include "core/registry.hpp"
#include "sim/event_sim.hpp"
#include "sim/faults.hpp"
#include "workload/instance.hpp"

namespace tsched {
namespace {

Problem sample_problem(std::uint64_t seed, std::size_t procs = 4, std::size_t size = 60) {
    workload::InstanceParams params;
    params.size = size;
    params.num_procs = procs;
    params.ccr = 1.0;
    params.beta = 0.75;
    return workload::make_instance(params, seed);
}

/// Two-task chain 0 -> 1 across two homogeneous processors.
Problem chain_problem(double data = 5.0) {
    Dag dag;
    dag.add_task(1.0);
    dag.add_task(1.0);
    dag.add_edge(0, 1, data);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs = CostMatrix::uniform(dag, 2);
    return Problem(std::move(dag), std::move(machine), std::move(costs));
}

TEST(FaultLints, FlagsBadPlans) {
    const Problem problem = sample_problem(1);
    analysis::Diagnostics diags;
    sim::FaultPlan plan;
    plan.crashes.push_back({99, 1.0});                     // proc out of range
    plan.crashes.push_back({0, -2.0});                     // negative time
    plan.crashes.push_back({0, 3.0});                      // duplicate crash
    plan.task_faults.push_back({kInvalidTask, 1});         // task out of range
    plan.task_faults.push_back({0, 0});                    // zero budget
    plan.slowdowns.push_back({5.0, 2.0, 2.0});             // inverted window
    plan.slowdowns.push_back({0.0, 1.0, 0.5});             // shrinking factor
    plan.slowdowns.push_back({0.0, 1.0, 2.0, 77, 0});      // endpoint out of range
    analysis::lint_fault_plan(plan, problem, diags);
    EXPECT_EQ(diags.error_count(), 8u);
    for (const analysis::Diagnostic& d : diags.all()) {
        EXPECT_EQ(d.code, analysis::Code::kFaultPlanInvalid);
    }
}

TEST(FaultLints, RejectsCrashingEveryProcessor) {
    const Problem problem = sample_problem(1, 2);
    analysis::Diagnostics diags;
    sim::FaultPlan plan;
    plan.crashes.push_back({0, 1.0});
    plan.crashes.push_back({1, 2.0});
    analysis::lint_fault_plan(plan, problem, diags);
    EXPECT_EQ(diags.error_count(), 1u);
}

TEST(SimulateFaulty, InvalidPlanThrows) {
    const Problem problem = sample_problem(2);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    sim::FaultPlan plan;
    plan.crashes.push_back({static_cast<ProcId>(problem.num_procs()), 1.0});
    const auto policy = make_repair_policy("none");
    EXPECT_THROW((void)sim::simulate_faulty(schedule, problem, plan, *policy),
                 std::invalid_argument);
}

TEST(SimulateFaulty, EmptyPlanMatchesPlainSimulation) {
    const Problem problem = sample_problem(3);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    const auto policy = make_repair_policy("none");
    const sim::FaultReport report =
        sim::simulate_faulty(schedule, problem, sim::FaultPlan{}, *policy);
    const sim::SimResult plain = sim::simulate(schedule, problem);
    EXPECT_DOUBLE_EQ(report.sim.makespan, plain.makespan);
    EXPECT_EQ(report.sim.remote_messages, plain.remote_messages);
    EXPECT_DOUBLE_EQ(report.degradation, 1.0);
    EXPECT_TRUE(report.events.empty());
    EXPECT_EQ(report.retries, 0u);
}

TEST(SimulateFaulty, CrashAfterCompletionIsHarmless) {
    const Problem problem = sample_problem(4);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    const auto policy = make_repair_policy("remap-pending");
    const sim::FaultPlan plan = sim::crash_busiest(schedule, 2.0);
    const sim::FaultReport report = sim::simulate_faulty(schedule, problem, plan, *policy);
    EXPECT_DOUBLE_EQ(report.degradation, 1.0);
    ASSERT_EQ(report.events.size(), 1u);
    EXPECT_EQ(report.events[0].kind, sim::FaultEventKind::kCrash);
    EXPECT_EQ(report.migrated_tasks, 0u);
}

TEST(SimulateFaulty, TransientFaultsStretchAndAreCounted) {
    const Problem problem = chain_problem();
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 1.0);
    s.add(1, 0, 1.0, 2.0);
    sim::FaultPlan plan;
    plan.task_faults.push_back({0, 2});
    const auto policy = make_repair_policy("none");
    const sim::FaultReport report = sim::simulate_faulty(s, problem, plan, *policy);
    // Task 0 runs three times (two failures + success): finishes at 3,
    // task 1 at 4.
    EXPECT_DOUBLE_EQ(report.sim.makespan, 4.0);
    EXPECT_EQ(report.retries, 2u);
    EXPECT_DOUBLE_EQ(report.degradation, 2.0);
    ASSERT_EQ(report.events.size(), 2u);
    EXPECT_EQ(report.events[0].kind, sim::FaultEventKind::kTransientFailure);
    EXPECT_DOUBLE_EQ(report.events[0].time, 1.0);
    EXPECT_DOUBLE_EQ(report.events[1].time, 2.0);
    // The processor was busy for the failed attempts too.
    EXPECT_DOUBLE_EQ(report.sim.proc_busy[0], 4.0);
}

TEST(SimulateFaulty, LinkSlowdownDelaysRemoteConsumers) {
    const Problem problem = chain_problem(5.0);
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 1.0);
    s.add(1, 1, 6.0, 7.0);  // nominal transfer: 5
    sim::FaultPlan plan;
    plan.slowdowns.push_back({0.0, 2.0, 3.0});  // producer finishes at 1.0: slowed
    const auto policy = make_repair_policy("none");
    const sim::FaultReport report = sim::simulate_faulty(s, problem, plan, *policy);
    // Transfer takes 15 instead of 5: task 1 starts at 16.
    EXPECT_DOUBLE_EQ(report.sim.makespan, 17.0);
    // A window the producer does not finish inside changes nothing.
    plan.slowdowns[0] = {2.0, 9.0, 3.0};
    const sim::FaultReport unaffected = sim::simulate_faulty(s, problem, plan, *policy);
    EXPECT_DOUBLE_EQ(unaffected.sim.makespan, 7.0);
}

class FaultPolicies : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultPolicies, CrashMidRunYieldsLintCleanRepairedSchedule) {
    const Problem problem = sample_problem(7, 8, 100);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    const auto policy = make_repair_policy(GetParam());
    const sim::FaultPlan plan = sim::crash_busiest(schedule, 0.5);
    const sim::FaultReport report = sim::simulate_faulty(schedule, problem, plan, *policy);
    EXPECT_GE(report.degradation, 1.0 - 1e-9);
    analysis::Diagnostics diags;
    analysis::lint_schedule(report.repaired, problem, diags);
    EXPECT_FALSE(diags.has_errors()) << analysis::render_text(diags);
    // The dead processor carries no work at or after the crash.
    const ProcId dead = plan.crashes[0].proc;
    for (std::size_t v = 0; v < problem.num_tasks(); ++v) {
        for (const Placement& pl : report.repaired.placements(static_cast<TaskId>(v))) {
            if (pl.proc == dead) {
                EXPECT_LT(pl.start, plan.crashes[0].time);
            }
        }
    }
}

TEST_P(FaultPolicies, SameSeedRunsAreBitIdentical) {
    const Problem problem = sample_problem(8, 8, 100);
    const Schedule schedule = make_scheduler("ils")->schedule(problem);
    const auto policy = make_repair_policy(GetParam());
    const sim::FaultPlan plan = sim::crash_busiest(schedule, 0.5);
    const sim::FaultReport a = sim::simulate_faulty(schedule, problem, plan, *policy);
    const sim::FaultReport b = sim::simulate_faulty(schedule, problem, plan, *policy);
    EXPECT_EQ(a.sim.makespan, b.sim.makespan);
    EXPECT_EQ(a.sim.finish_times, b.sim.finish_times);
    EXPECT_EQ(a.sim.proc_busy, b.sim.proc_busy);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.degradation, b.degradation);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.migrated_tasks, b.migrated_tasks);
    EXPECT_EQ(a.reexecuted_tasks, b.reexecuted_tasks);
    EXPECT_EQ(a.dropped_placements, b.dropped_placements);
    EXPECT_EQ(a.repair_latency, b.repair_latency);
}

INSTANTIATE_TEST_SUITE_P(Policies, FaultPolicies,
                         ::testing::Values("none", "remap-pending", "reschedule-suffix",
                                           "use-duplicates"));

TEST(SimulateFaulty, CrashAtZeroMigratesEverythingOffTheDeadProc) {
    const Problem problem = sample_problem(9);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    const auto policy = make_repair_policy("remap-pending");
    sim::FaultPlan plan;
    plan.crashes.push_back({0, 0.0});
    const sim::FaultReport report = sim::simulate_faulty(schedule, problem, plan, *policy);
    for (std::size_t v = 0; v < problem.num_tasks(); ++v) {
        for (const Placement& pl : report.repaired.placements(static_cast<TaskId>(v))) {
            EXPECT_NE(pl.proc, 0);
        }
    }
    std::size_t lost_on_p0 = 0;
    for (std::size_t v = 0; v < problem.num_tasks(); ++v) {
        for (const Placement& pl : schedule.placements(static_cast<TaskId>(v))) {
            if (pl.proc == 0) ++lost_on_p0;
        }
    }
    if (lost_on_p0 > 0) {
        EXPECT_GT(report.migrated_tasks, 0u);
    }
}

TEST(SimulateFaulty, ReexecutesAbortedInFlightWork) {
    // One processor pair; task 0 is in flight on p0 when it crashes at 0.5.
    const Problem problem = chain_problem(0.0);
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 1.0);
    s.add(1, 0, 1.0, 2.0);
    sim::FaultPlan plan;
    plan.crashes.push_back({0, 0.5});
    const auto policy = make_repair_policy("remap-pending");
    const sim::FaultReport report = sim::simulate_faulty(s, problem, plan, *policy);
    EXPECT_EQ(report.reexecuted_tasks, 1u);
    EXPECT_EQ(report.migrated_tasks, 2u);
    // Both tasks re-run on p1 starting at the crash time.
    EXPECT_DOUBLE_EQ(report.sim.makespan, 2.5);
    EXPECT_DOUBLE_EQ(report.repair_latency, 0.0);
}

TEST(SimulateFaulty, UseDuplicatesDropsCoveredLostWork) {
    // Task 0 is duplicated on both processors; losing p0's copy needs no
    // replacement, only task 1 is stranded... but task 1 lives on p1 already.
    const Problem problem = chain_problem(100.0);
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 1.0);
    s.add(0, 1, 0.0, 1.0);
    s.add(1, 1, 1.0, 2.0);
    sim::FaultPlan plan;
    plan.crashes.push_back({0, 0.5});
    const auto policy = make_repair_policy("use-duplicates");
    const sim::FaultReport report = sim::simulate_faulty(s, problem, plan, *policy);
    // p0's in-flight duplicate of task 0 is aborted and simply dropped: the
    // surviving copy on p1 feeds task 1 with no delay.
    EXPECT_DOUBLE_EQ(report.sim.makespan, 2.0);
    EXPECT_EQ(report.dropped_placements, 1u);
    EXPECT_EQ(report.reexecuted_tasks, 0u);
    EXPECT_EQ(report.repaired.num_duplicates(), 0u);
}

TEST(SimulateFaulty, RepairLatencyMeasuresCrashToRestartGap) {
    // Lost task 1 can only restart after its input arrives remotely.
    const Problem problem = chain_problem(5.0);
    Schedule s(2, 2);
    s.add(0, 1, 0.0, 1.0);
    s.add(1, 0, 6.0, 7.0);
    sim::FaultPlan plan;
    plan.crashes.push_back({0, 2.0});
    const auto policy = make_repair_policy("remap-pending");
    const sim::FaultReport report = sim::simulate_faulty(s, problem, plan, *policy);
    // Task 1 moves to p1 where the data is local: restarts at the crash time.
    EXPECT_DOUBLE_EQ(report.sim.makespan, 3.0);
    EXPECT_DOUBLE_EQ(report.repair_latency, 0.0);
    EXPECT_EQ(report.migrated_tasks, 1u);
}

TEST(CrashBusiest, PicksTheProcessorWithTheMostBusyTime) {
    const Problem problem = chain_problem();
    Schedule s(2, 2);
    s.add(0, 1, 0.0, 1.0);
    s.add(1, 1, 1.0, 2.0);
    const sim::FaultPlan plan = sim::crash_busiest(s, 0.5);
    ASSERT_EQ(plan.crashes.size(), 1u);
    EXPECT_EQ(plan.crashes[0].proc, 1);
    EXPECT_DOUBLE_EQ(plan.crashes[0].time, 1.0);
    EXPECT_THROW((void)sim::crash_busiest(s, -1.0), std::invalid_argument);
}

TEST(RandomCrashPlan, DeterministicPerSeedAndInRange) {
    const Problem problem = sample_problem(10);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    Rng rng1(5);
    Rng rng2(5);
    const sim::FaultPlan a = sim::random_crash_plan(schedule, rng1, 0.1, 0.9);
    const sim::FaultPlan b = sim::random_crash_plan(schedule, rng2, 0.1, 0.9);
    EXPECT_EQ(a.crashes, b.crashes);
    EXPECT_GE(a.crashes[0].time, 0.1 * schedule.makespan() - 1e-12);
    EXPECT_LE(a.crashes[0].time, 0.9 * schedule.makespan() + 1e-12);
    EXPECT_GE(a.crashes[0].proc, 0);
    EXPECT_LT(a.crashes[0].proc, static_cast<ProcId>(problem.num_procs()));
}

TEST(RepairPolicies, FactoryRoundTripsAndRejectsUnknown) {
    for (const std::string& name : repair_policy_names()) {
        EXPECT_EQ(make_repair_policy(name)->name(), name);
    }
    EXPECT_THROW((void)make_repair_policy("hope-for-the-best"), std::invalid_argument);
}

}  // namespace
}  // namespace tsched
