// Unit tests for the thread pool (util/thread_pool.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace tsched {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
    ThreadPool pool(2);
    auto f = pool.submit([] { return 21 * 2; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, PropagatesExceptionsThroughFuture) {
    ThreadPool pool(1);
    auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 200; ++i) {
        futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int i = 0; i < 50; ++i) {
        (void)pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
    ThreadPool pool(2);
    parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, PropagatesFirstException) {
    ThreadPool pool(2);
    EXPECT_THROW(parallel_for(pool, 100,
                              [](std::size_t i) {
                                  if (i == 37) throw std::runtime_error("at 37");
                              }),
                 std::runtime_error);
}

TEST(ParallelFor, FewerItemsThanWorkers) {
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PoolIsReusableAcrossCalls) {
    // The bench harness runs one parallel_for per sweep point on a single
    // long-lived pool; successive batches must not interfere.
    ThreadPool pool(4);
    for (int round = 0; round < 5; ++round) {
        std::atomic<int> sum{0};
        parallel_for(pool, 64, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
        EXPECT_EQ(sum.load(), 64 * 63 / 2) << "round " << round;
    }
}

TEST(ThreadPool, SubmitAfterDestructionIsImpossibleByDesign) {
    // Destructor joins workers; remaining queued tasks still run.
    std::atomic<int> counter{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 10; ++i) {
            (void)pool.submit([&counter] { counter.fetch_add(1); });
        }
    }
    EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasksBeforeReturning) {
    std::atomic<int> counter{0};
    ThreadPool pool(1);
    for (int i = 0; i < 10; ++i) {
        (void)pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.shutdown();
    EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
    ThreadPool pool(2);
    pool.shutdown();
    EXPECT_THROW((void)pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotentAndDtorTolerant) {
    // Explicit shutdown, a second shutdown, then the destructor's implicit
    // one — none may hang or double-join.  size() must stay truthful so
    // parallel_for chunking arithmetic on a borrowed pool keeps working.
    ThreadPool pool(3);
    (void)pool.submit([] {});
    pool.shutdown();
    pool.shutdown();
    EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ShutdownWakesWaitIdleWaiters) {
    // wait_idle() parked on the idle condition must not miss the shutdown
    // wake-up: the queue drains, then shutdown notifies idle waiters.
    ThreadPool pool(2);
    std::atomic<bool> woke{false};
    std::thread waiter([&] {
        pool.wait_idle();
        woke.store(true);
    });
    (void)pool.submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(10)); });
    pool.shutdown();
    waiter.join();
    EXPECT_TRUE(woke.load());
}

TEST(ThreadPool, WaitIdleForTimesOutWhileBlockedAndSucceedsOnceIdle) {
    // The bounded variant backs ServeEngine::drain: it must report false
    // (not hang) while a task blocks the pool, and true once the pool is
    // actually idle.  A non-positive timeout degrades to the unbounded wait.
    ThreadPool pool(1);
    std::promise<void> gate;
    auto blocked = pool.submit([&gate] { gate.get_future().wait(); });
    EXPECT_FALSE(pool.wait_idle_for(20.0));  // the task is still parked
    gate.set_value();
    blocked.get();
    EXPECT_TRUE(pool.wait_idle_for(1000.0));
    EXPECT_TRUE(pool.wait_idle_for(0.0));   // <= 0 waits unbounded; idle now
    EXPECT_TRUE(pool.wait_idle_for(-5.0));
}

}  // namespace
}  // namespace tsched
