// Tests for the discrete-event simulator (sim/event_sim.hpp).
#include <gtest/gtest.h>

#include <cmath>

#include "core/registry.hpp"
#include "sim/event_sim.hpp"
#include "workload/instance.hpp"

namespace tsched {
namespace {

Problem sample_problem(std::uint64_t seed, double ccr = 1.0) {
    workload::InstanceParams params;
    params.size = 60;
    params.num_procs = 4;
    params.ccr = ccr;
    params.beta = 0.75;
    return workload::make_instance(params, seed);
}

class SimCrossCheck : public ::testing::TestWithParam<std::string> {};

TEST_P(SimCrossCheck, RederivedMakespanMatchesSchedule) {
    const Problem problem = sample_problem(11, 2.0);
    const Schedule schedule = make_scheduler(GetParam())->schedule(problem);
    const sim::SimResult result = sim::simulate(schedule, problem);
    // The event simulator honours only the decisions; starting heads as
    // early as possible can only match or improve the planned times.
    EXPECT_LE(result.makespan, schedule.makespan() + 1e-9) << GetParam();
    // Our builders emit gap-free earliest-start schedules, so the times
    // coincide exactly.
    EXPECT_NEAR(result.makespan, schedule.makespan(), 1e-9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Schedulers, SimCrossCheck,
                         ::testing::Values("ils", "ils-d", "heft", "cpop", "hcpt", "dls", "etf",
                                           "mcp", "minmin", "dsh", "btdh", "random"));

TEST(Simulate, BusyTimesMatchCosts) {
    const Problem problem = sample_problem(5);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    const auto result = sim::simulate(schedule, problem);
    double total_busy = 0.0;
    for (const double b : result.proc_busy) total_busy += b;
    double total_cost = 0.0;
    for (std::size_t v = 0; v < problem.num_tasks(); ++v) {
        for (const Placement& pl : schedule.placements(static_cast<TaskId>(v))) {
            total_cost += problem.exec_time(pl.task, pl.proc);
        }
    }
    EXPECT_NEAR(total_busy, total_cost, 1e-6);
}

TEST(Simulate, CountsRemoteMessages) {
    // Producer on p0, consumer on p1: exactly one remote edge.
    Dag dag;
    dag.add_task(1.0);
    dag.add_task(1.0);
    dag.add_edge(0, 1, 5.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs = CostMatrix::uniform(dag, 2);
    const Problem problem(std::move(dag), std::move(machine), std::move(costs));
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 1.0);
    s.add(1, 1, 6.0, 7.0);
    const auto result = sim::simulate(s, problem);
    EXPECT_EQ(result.remote_messages, 1u);
    EXPECT_DOUBLE_EQ(result.comm_volume, 5.0);
    // Local version has none.
    Schedule local(2, 2);
    local.add(0, 0, 0.0, 1.0);
    local.add(1, 0, 1.0, 2.0);
    EXPECT_EQ(sim::simulate(local, problem).remote_messages, 0u);
}

TEST(Simulate, ThrowsOnIncompleteSchedule) {
    const Problem problem = sample_problem(3);
    Schedule s(problem.num_tasks(), problem.num_procs());
    EXPECT_THROW((void)sim::simulate(s, problem), std::invalid_argument);
}

TEST(Simulate, DetectsOrderDeadlock) {
    // Two tasks 0 -> 1 planned on one processor with 1 *before* 0: the head
    // placement waits forever on task 0 queued behind it.
    Dag dag;
    dag.add_task(1.0);
    dag.add_task(1.0);
    dag.add_edge(0, 1, 1.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(1, links);
    CostMatrix costs = CostMatrix::uniform(dag, 1);
    const Problem problem(std::move(dag), std::move(machine), std::move(costs));
    Schedule s(2, 1);
    s.add(1, 0, 0.0, 1.0);
    s.add(0, 0, 1.0, 2.0);
    EXPECT_THROW((void)sim::simulate(s, problem), std::invalid_argument);
}

TEST(Simulate, DuplicateAwareDataRouting) {
    // Consumer on p1 can use the duplicate of its parent on p1 and start
    // immediately after it.
    Dag dag;
    dag.add_task(2.0);
    dag.add_task(1.0);
    dag.add_edge(0, 1, 100.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs = CostMatrix::uniform(dag, 2);
    const Problem problem(std::move(dag), std::move(machine), std::move(costs));
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 2.0);
    s.add(0, 1, 0.0, 2.0);  // duplicate
    s.add(1, 1, 2.0, 3.0);
    const auto result = sim::simulate(s, problem);
    EXPECT_DOUBLE_EQ(result.makespan, 3.0);
    EXPECT_EQ(result.remote_messages, 0u);  // served locally by the duplicate
}

TEST(SimulateNoisy, ZeroNoiseEqualsExact) {
    const Problem problem = sample_problem(9);
    const Schedule schedule = make_scheduler("ils")->schedule(problem);
    Rng rng(1);
    const auto exact = sim::simulate(schedule, problem);
    const auto noisy = sim::simulate_noisy(schedule, problem, 0.0, rng);
    EXPECT_DOUBLE_EQ(noisy.makespan, exact.makespan);
}

TEST(SimulateNoisy, SameSeedRunsAreBitIdenticalInEveryField) {
    const Problem problem = sample_problem(21, 4.0);
    const Schedule schedule = make_scheduler("ils-d")->schedule(problem);
    Rng rng1(77);
    Rng rng2(77);
    const auto a = sim::simulate_noisy(schedule, problem, 0.3, rng1);
    const auto b = sim::simulate_noisy(schedule, problem, 0.3, rng2);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.proc_busy, b.proc_busy);
    EXPECT_EQ(a.remote_messages, b.remote_messages);
    EXPECT_EQ(a.comm_volume, b.comm_volume);
    EXPECT_EQ(a.finish_times, b.finish_times);
    // The rngs are in identical states afterwards too.
    EXPECT_EQ(rng1.uniform(0.0, 1.0), rng2.uniform(0.0, 1.0));
}

TEST(SimulateNoisy, ConsumesAFixedNumberOfDraws) {
    // The documented contract: exactly one uniform draw per placement plus
    // one per (task, predecessor-edge) pair, regardless of interleaving.
    const Problem problem = sample_problem(22);
    const Schedule schedule = make_scheduler("dsh")->schedule(problem);
    std::size_t expected = 0;
    for (std::size_t v = 0; v < problem.num_tasks(); ++v) {
        expected += schedule.placements(static_cast<TaskId>(v)).size();
        expected += problem.dag().predecessors(static_cast<TaskId>(v)).size();
    }
    Rng used(123);
    (void)sim::simulate_noisy(schedule, problem, 0.2, used);
    Rng skipped(123);
    for (std::size_t i = 0; i < expected; ++i) (void)skipped.uniform(0.8, 1.2);
    EXPECT_EQ(used.uniform(0.0, 1.0), skipped.uniform(0.0, 1.0));
}

TEST(SimulateNoisy, DeterministicPerSeedAndPerturbsResult) {
    const Problem problem = sample_problem(9);
    const Schedule schedule = make_scheduler("ils")->schedule(problem);
    Rng rng1(42);
    Rng rng2(42);
    const auto a = sim::simulate_noisy(schedule, problem, 0.2, rng1);
    const auto b = sim::simulate_noisy(schedule, problem, 0.2, rng2);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    Rng rng3(43);
    const auto c = sim::simulate_noisy(schedule, problem, 0.2, rng3);
    EXPECT_NE(a.makespan, c.makespan);
    // Sanity bound: each stage stretches by < 1.2, so the realised makespan
    // stays within a generous multiplicative envelope.
    const auto exact = sim::simulate(schedule, problem);
    EXPECT_LT(a.makespan, exact.makespan * 2.0);
    EXPECT_GT(a.makespan, exact.makespan * 0.5);
}

TEST(SimulateNoisy, RejectsBadNoise) {
    const Problem problem = sample_problem(9);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    Rng rng(1);
    EXPECT_THROW((void)sim::simulate_noisy(schedule, problem, 1.0, rng), std::invalid_argument);
    EXPECT_THROW((void)sim::simulate_noisy(schedule, problem, -0.1, rng), std::invalid_argument);
}

TEST(Simulate, FinishTimesCoverEveryPlacement) {
    const Problem problem = sample_problem(21);
    const Schedule schedule = make_scheduler("dsh")->schedule(problem);
    const auto result = sim::simulate(schedule, problem);
    std::size_t total = 0;
    for (std::size_t v = 0; v < problem.num_tasks(); ++v) {
        total += schedule.placements(static_cast<TaskId>(v)).size();
    }
    ASSERT_EQ(result.finish_times.size(), total);
    for (const double f : result.finish_times) {
        EXPECT_TRUE(std::isfinite(f));
        EXPECT_GT(f, 0.0);
    }
}

}  // namespace
}  // namespace tsched
