// Big-n hot-path battery (sched/timeline.hpp + the CSR scheduling path).
//
// Two layers of protection for the bucketed gap index:
//  - Timeline.*: property tests that earliest_start equals a brute-force
//    linear gap scan on randomized busy sets, with tiny block capacities so
//    even small inputs exercise splits, block skips, and cross-block runs.
//  - BigN.*: end-to-end determinism — every scheduler family produces a
//    byte-identical schedule whether the builder runs the legacy linear
//    timeline (TSCHED_LINEAR_TIMELINE=1) or the bucketed index, plus a
//    wall-clock smoke bound on HEFT at n = 10000.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "sched/timeline.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "workload/instance.hpp"

namespace tsched {
namespace {

// ---------------------------------------------------------------------------
// Timeline property tests
// ---------------------------------------------------------------------------

/// The pre-index algorithm, verbatim: walk every interval, first fitting gap
/// wins.  This is the oracle the bucketed query must match bit-for-bit.
double brute_force_earliest(const std::vector<BusyInterval>& busy, double ready,
                            double duration) {
    double gap_start = 0.0;
    for (const BusyInterval& iv : busy) {
        if (iv.finish <= ready) {
            gap_start = iv.finish;
            continue;
        }
        const double candidate = std::max(gap_start, ready);
        if (candidate + duration <= iv.start) return candidate;
        gap_start = iv.finish;
    }
    return std::max(gap_start, ready);
}

/// Feasible (sorted, non-overlapping) busy set: 2*count sorted draws paired
/// up, so adjacent intervals may touch (zero gaps) or leave real gaps.
std::vector<BusyInterval> random_busy(Rng& rng, std::size_t count) {
    std::vector<double> points(2 * count);
    for (double& p : points) p = rng.uniform(0.0, 100.0);
    std::sort(points.begin(), points.end());
    std::vector<BusyInterval> busy(count);
    for (std::size_t i = 0; i < count; ++i) busy[i] = {points[2 * i], points[2 * i + 1]};
    return busy;
}

/// Reference flat-order insert: before any run of equal starts.
void reference_insert(std::vector<BusyInterval>& ref, BusyInterval iv) {
    const auto pos = std::lower_bound(
        ref.begin(), ref.end(), iv,
        [](const BusyInterval& a, const BusyInterval& b) { return a.start < b.start; });
    ref.insert(pos, iv);
}

/// Reference erase: first exact (start, finish) match in flat order.
bool reference_erase(std::vector<BusyInterval>& ref, BusyInterval iv) {
    for (auto it = ref.begin(); it != ref.end(); ++it) {
        if (it->start == iv.start && it->finish == iv.finish) {
            ref.erase(it);
            return true;
        }
    }
    return false;
}

void expect_flat_equal(const BusyTimeline& timeline, const std::vector<BusyInterval>& ref) {
    const auto flat = timeline.flatten();
    ASSERT_EQ(flat.size(), ref.size());
    ASSERT_EQ(timeline.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(flat[i].start, ref[i].start) << "interval " << i;
        EXPECT_EQ(flat[i].finish, ref[i].finish) << "interval " << i;
    }
}

TEST(Timeline, EarliestStartMatchesBruteForceOnRandomBusySets) {
    Rng rng(42);
    for (std::size_t trial = 0; trial < 200; ++trial) {
        const std::size_t count = static_cast<std::size_t>(rng.uniform_int(0, 40));
        const auto busy = random_busy(rng, count);
        // Capacity 4 forces many blocks even on these small sets.
        BusyTimeline bucketed(BusyTimeline::Mode::kBucketed, 4);
        BusyTimeline linear(BusyTimeline::Mode::kLinear);
        for (const BusyInterval& iv : busy) {
            bucketed.insert(iv);
            linear.insert(iv);
        }
        for (std::size_t q = 0; q < 32; ++q) {
            const double ready = rng.uniform(-5.0, 110.0);
            // Mix tiny gap-seeking durations with ones that only fit at the end.
            const double duration =
                (q % 2 == 0) ? rng.uniform(0.0, 3.0) : rng.uniform(0.0, 60.0);
            const double expected = brute_force_earliest(busy, ready, duration);
            EXPECT_EQ(bucketed.earliest_start(ready, duration), expected)
                << "trial " << trial << " count " << count << " ready " << ready
                << " duration " << duration;
            EXPECT_EQ(linear.earliest_start(ready, duration), expected);
        }
    }
}

TEST(Timeline, EarliestStartExactFitAndBoundaryGaps) {
    // Gaps of exactly the probe duration, including the gap spanning a block
    // boundary, must be found — the screen may not reject an exact fit.
    BusyTimeline t(BusyTimeline::Mode::kBucketed, 2);
    const std::vector<BusyInterval> busy = {
        {0.0, 1.0}, {3.0, 4.0}, {4.0, 6.0}, {9.0, 10.0}, {10.0, 12.0}, {15.0, 20.0}};
    for (const BusyInterval& iv : busy) t.insert(iv);
    EXPECT_GT(t.num_blocks(), 1u);
    EXPECT_EQ(t.earliest_start(0.0, 2.0), 1.0);   // exact fit of the [1,3] gap
    EXPECT_EQ(t.earliest_start(0.0, 3.0), 6.0);   // exact fit of the [6,9] gap
    EXPECT_EQ(t.earliest_start(0.0, 3.5), 20.0);  // nothing fits: append
    EXPECT_EQ(t.earliest_start(5.0, 1.0), 6.0);   // ready inside an interval
    EXPECT_EQ(t.earliest_start(25.0, 1.0), 25.0); // ready past the end
    EXPECT_EQ(t.earliest_start(0.0, 0.0), 0.0);   // zero duration fits at 0
}

TEST(Timeline, InsertEraseFlattenMatchReferenceUnderRandomOps) {
    // Speculative-overlap regime: intervals may overlap and share starts,
    // exactly like duplication trials on the builder.  The timeline must
    // track a reference flat vector through every insert/erase.
    Rng rng(7);
    BusyTimeline t(BusyTimeline::Mode::kBucketed, 4);
    std::vector<BusyInterval> ref;
    for (std::size_t op = 0; op < 400; ++op) {
        if (ref.empty() || rng.uniform() < 0.6) {
            // Coarse grid so equal starts and exact duplicates are common.
            const double start = static_cast<double>(rng.uniform_int(0, 20));
            const double finish = start + static_cast<double>(rng.uniform_int(0, 10));
            t.insert({start, finish});
            reference_insert(ref, {start, finish});
        } else {
            const auto pick = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(ref.size()) - 1));
            const BusyInterval victim = ref[pick];
            EXPECT_TRUE(t.erase(victim));
            EXPECT_TRUE(reference_erase(ref, victim));
        }
        if (op % 16 == 0) expect_flat_equal(t, ref);
    }
    expect_flat_equal(t, ref);
    // Drain completely; summaries and block removal must stay consistent.
    while (!ref.empty()) {
        const BusyInterval victim = ref.back();
        EXPECT_TRUE(t.erase(victim));
        EXPECT_TRUE(reference_erase(ref, victim));
    }
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.last_finish(), 0.0);
}

TEST(Timeline, EqualStartRunsSpanBlocks) {
    // 24 intervals sharing one start with capacity 2: the equal-start run is
    // guaranteed to cross several block boundaries, and erase must find the
    // exact (start, finish) pair wherever it landed.
    BusyTimeline t(BusyTimeline::Mode::kBucketed, 2);
    std::vector<BusyInterval> ref;
    for (int i = 0; i < 24; ++i) {
        const BusyInterval iv{5.0, 5.0 + 0.25 * i};
        t.insert(iv);
        reference_insert(ref, iv);
    }
    EXPECT_GT(t.num_blocks(), 2u);
    expect_flat_equal(t, ref);
    Rng rng(11);
    std::vector<BusyInterval> victims = ref;
    rng.shuffle(victims);
    for (const BusyInterval& iv : victims) {
        EXPECT_TRUE(t.erase(iv));
        EXPECT_TRUE(reference_erase(ref, iv));
        expect_flat_equal(t, ref);
    }
    EXPECT_TRUE(t.empty());
}

TEST(Timeline, EraseMissingReturnsFalse) {
    BusyTimeline t(BusyTimeline::Mode::kBucketed, 4);
    EXPECT_FALSE(t.erase({1.0, 2.0}));
    t.insert({1.0, 2.0});
    EXPECT_FALSE(t.erase({1.0, 3.0}));  // same start, different finish
    EXPECT_FALSE(t.erase({0.0, 2.0}));
    EXPECT_TRUE(t.erase({1.0, 2.0}));
    EXPECT_FALSE(t.erase({1.0, 2.0}));
}

TEST(Timeline, ZeroBlockCapacityThrows) {
    EXPECT_THROW(BusyTimeline(BusyTimeline::Mode::kBucketed, 0), std::invalid_argument);
}

TEST(Timeline, DefaultModeFollowsEnvironment) {
    const char* const var = "TSCHED_LINEAR_TIMELINE";
    const char* old = std::getenv(var);
    const std::string saved = old != nullptr ? old : "";
    const bool had = old != nullptr;
    ::setenv(var, "1", 1);
    EXPECT_EQ(BusyTimeline::default_mode(), BusyTimeline::Mode::kLinear);
    ::setenv(var, "0", 1);
    EXPECT_EQ(BusyTimeline::default_mode(), BusyTimeline::Mode::kBucketed);
    ::unsetenv(var);
    EXPECT_EQ(BusyTimeline::default_mode(), BusyTimeline::Mode::kBucketed);
    if (had) ::setenv(var, saved.c_str(), 1);
}

// ---------------------------------------------------------------------------
// BigN end-to-end battery
// ---------------------------------------------------------------------------

Problem big_instance(workload::Shape shape, std::size_t size, std::uint64_t seed) {
    workload::InstanceParams params;
    params.shape = shape;
    params.size = size;
    params.num_procs = 8;
    params.ccr = 1.0;
    params.beta = 0.5;
    return workload::make_instance(params, seed);
}

void expect_identical_schedules(const Schedule& a, const Schedule& b,
                                const std::string& label) {
    ASSERT_EQ(a.num_tasks(), b.num_tasks()) << label;
    ASSERT_EQ(a.num_placements(), b.num_placements()) << label;
    for (std::size_t v = 0; v < a.num_tasks(); ++v) {
        const auto pa = a.placements(static_cast<TaskId>(v));
        const auto pb = b.placements(static_cast<TaskId>(v));
        ASSERT_EQ(pa.size(), pb.size()) << label << " task " << v;
        for (std::size_t i = 0; i < pa.size(); ++i) {
            ASSERT_EQ(pa[i].proc, pb[i].proc) << label << " task " << v;
            ASSERT_EQ(pa[i].start, pb[i].start) << label << " task " << v;
            ASSERT_EQ(pa[i].finish, pb[i].finish) << label << " task " << v;
        }
    }
    EXPECT_EQ(a.makespan(), b.makespan()) << label;
}

/// Run `algo` on `problem` with the bucketed timeline (the default in this
/// test environment) and again with TSCHED_LINEAR_TIMELINE=1; both schedules
/// must be byte-identical.  The env var is sampled at builder construction,
/// so flipping it between runs is race-free in this single-threaded test.
void check_linear_bucketed_identical(const Problem& problem, const std::string& algo,
                                     const std::string& label) {
    const auto scheduler = make_scheduler(algo);
    ::unsetenv("TSCHED_LINEAR_TIMELINE");
    const Schedule bucketed = scheduler->schedule(problem);
    ::setenv("TSCHED_LINEAR_TIMELINE", "1", 1);
    const Schedule linear = scheduler->schedule(problem);
    ::unsetenv("TSCHED_LINEAR_TIMELINE");
    expect_identical_schedules(bucketed, linear, label + "/" + algo);
}

TEST(BigN, ListSchedulersLinearVsBucketedByteIdentical) {
    const Problem layered = big_instance(workload::Shape::kLayered, 2000, 2007);
    const Problem forkjoin = big_instance(workload::Shape::kForkJoin, 500, 2007);
    for (const char* algo : {"heft", "cpop", "peft", "lheft"}) {
        check_linear_bucketed_identical(layered, algo, "layered2k");
        check_linear_bucketed_identical(forkjoin, algo, "forkjoin");
    }
}

TEST(BigN, IlsFamilyLinearVsBucketedByteIdentical) {
    const Problem layered = big_instance(workload::Shape::kLayered, 2000, 2007);
    const Problem forkjoin = big_instance(workload::Shape::kForkJoin, 500, 2007);
    for (const char* algo : {"ils", "ils-d"}) {
        check_linear_bucketed_identical(layered, algo, "layered2k");
        check_linear_bucketed_identical(forkjoin, algo, "forkjoin");
    }
}

TEST(BigN, DuplicationSchedulersLinearVsBucketedByteIdentical) {
    const Problem layered = big_instance(workload::Shape::kLayered, 2000, 2007);
    const Problem forkjoin = big_instance(workload::Shape::kForkJoin, 500, 2007);
    for (const char* algo : {"dsh", "btdh"}) {
        check_linear_bucketed_identical(layered, algo, "layered2k");
        check_linear_bucketed_identical(forkjoin, algo, "forkjoin");
    }
}

TEST(BigN, Heft10kUnderWallClockBudget) {
    // Smoke bound, not a benchmark: HEFT at n = 10000 must stay in the
    // single-digit-ms class in release builds, but sanitizer/debug builds
    // run ~10–40x slower, so the default budget is deliberately loose.  The
    // CI fast lane pins a tighter bound via TSCHED_BIG_N_BUDGET_MS.
    const char* env = std::getenv("TSCHED_BIG_N_BUDGET_MS");
    const double budget_ms = env != nullptr ? std::atof(env) : 30000.0;
    const Problem problem = big_instance(workload::Shape::kLayered, 10000, 2007);
    const auto scheduler = make_scheduler("heft");
    (void)scheduler->schedule(problem).makespan();  // warm-up: first-touch allocations
    double elapsed_ms = 0.0;
    double makespan = 0.0;
    {
        const Stopwatch::Scoped timer(elapsed_ms);
        makespan = scheduler->schedule(problem).makespan();
    }
    EXPECT_GT(makespan, 0.0);
    EXPECT_LT(elapsed_ms, budget_ms) << "HEFT n=10k exceeded the wall-clock budget";
}

}  // namespace
}  // namespace tsched
