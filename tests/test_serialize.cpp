// Unit tests for DAG serialization (graph/serialize.hpp).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/serialize.hpp"
#include "workload/random_dag.hpp"

namespace tsched {
namespace {

Dag sample() {
    Dag dag;
    dag.add_task(1.5, "load");
    dag.add_task(2.25, "compute kernel");  // name with a space
    dag.add_task(0.75);
    dag.add_edge(0, 1, 10.0);
    dag.add_edge(0, 2, 0.125);
    dag.add_edge(1, 2, 3.0);
    return dag;
}

TEST(Tsg, RoundTripsExactly) {
    const Dag dag = sample();
    const Dag back = read_tsg_string(to_tsg(dag));
    EXPECT_EQ(dag, back);
    EXPECT_EQ(back.name(1), "compute kernel");
}

TEST(Tsg, RoundTripsRandomGraphExactly) {
    Rng rng(77);
    workload::LayeredDagParams params;
    params.n = 120;
    const Dag dag = workload::layered_random(params, rng);
    EXPECT_EQ(dag, read_tsg_string(to_tsg(dag)));
}

TEST(Tsg, FileRoundTrip) {
    const Dag dag = sample();
    const auto path = std::filesystem::temp_directory_path() / "tsched_test_graph.tsg";
    save_tsg(path.string(), dag);
    EXPECT_EQ(dag, load_tsg(path.string()));
    std::filesystem::remove(path);
}

TEST(Tsg, LoadMissingFileThrows) {
    EXPECT_THROW((void)load_tsg("/nonexistent/dir/file.tsg"), std::runtime_error);
}

TEST(Tsg, RejectsMissingHeader) {
    EXPECT_THROW((void)read_tsg_string("t 0 1.0\n"), std::runtime_error);
}

TEST(Tsg, RejectsCountMismatch) {
    EXPECT_THROW((void)read_tsg_string("tsg 2 0\nt 0 1.0\n"), std::runtime_error);
    EXPECT_THROW((void)read_tsg_string("tsg 1 1\nt 0 1.0\n"), std::runtime_error);
}

TEST(Tsg, RejectsNonDenseIds) {
    EXPECT_THROW((void)read_tsg_string("tsg 2 0\nt 0 1.0\nt 5 1.0\n"), std::runtime_error);
}

TEST(Tsg, RejectsBadEdges) {
    EXPECT_THROW((void)read_tsg_string("tsg 2 1\nt 0 1\nt 1 1\ne 0 7 1\n"), std::runtime_error);
    EXPECT_THROW((void)read_tsg_string("tsg 1 1\nt 0 1\ne 0 0 1\n"), std::runtime_error);
}

TEST(Tsg, RejectsCyclicDocument) {
    const char* doc = "tsg 2 2\nt 0 1\nt 1 1\ne 0 1 1\ne 1 0 1\n";
    EXPECT_THROW((void)read_tsg_string(doc), std::runtime_error);
}

TEST(Tsg, RejectsUnknownTag) {
    EXPECT_THROW((void)read_tsg_string("tsg 0 0\nx nonsense\n"), std::runtime_error);
}

TEST(Tsg, IgnoresCommentsAndBlankLines) {
    const char* doc = "# comment\n\ntsg 1 0\n# another\nt 0 2.5\n";
    const Dag dag = read_tsg_string(doc);
    EXPECT_EQ(dag.num_tasks(), 1u);
    EXPECT_DOUBLE_EQ(dag.work(0), 2.5);
}

TEST(Dot, ContainsNodesAndEdges) {
    const std::string dot = to_dot(sample(), "g");
    EXPECT_NE(dot.find("digraph g {"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
    EXPECT_NE(dot.find("load"), std::string::npos);
    EXPECT_EQ(dot.find("n2 -> "), std::string::npos);  // task 2 is a sink
}

TEST(Json, ContainsTasksAndEdges) {
    const std::string json = to_json(sample());
    EXPECT_NE(json.find("\"tasks\":["), std::string::npos);
    EXPECT_NE(json.find("\"edges\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"compute kernel\""), std::string::npos);
    EXPECT_NE(json.find("\"src\":0,\"dst\":1"), std::string::npos);
}

TEST(Json, EscapesSpecialCharacters) {
    Dag dag;
    dag.add_task(1.0, "a\"b\\c");
    const std::string json = to_json(dag);
    EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
}

}  // namespace
}  // namespace tsched
