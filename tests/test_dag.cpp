// Unit tests for the DAG container (graph/dag.hpp).
#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>

#include "graph/dag.hpp"

namespace tsched {
namespace {

TEST(Dag, StartsEmpty) {
    Dag dag;
    EXPECT_TRUE(dag.empty());
    EXPECT_EQ(dag.num_tasks(), 0u);
    EXPECT_EQ(dag.num_edges(), 0u);
}

TEST(Dag, AddTaskAssignsDenseIds) {
    Dag dag;
    EXPECT_EQ(dag.add_task(1.0, "a"), 0);
    EXPECT_EQ(dag.add_task(2.0), 1);
    EXPECT_EQ(dag.add_task(), 2);
    EXPECT_EQ(dag.num_tasks(), 3u);
    EXPECT_EQ(dag.name(0), "a");
    EXPECT_EQ(dag.name(1), "");
    EXPECT_DOUBLE_EQ(dag.work(1), 2.0);
    EXPECT_DOUBLE_EQ(dag.work(2), 1.0);
}

TEST(Dag, PresizedConstructor) {
    Dag dag(4);
    EXPECT_EQ(dag.num_tasks(), 4u);
    EXPECT_DOUBLE_EQ(dag.work(3), 1.0);
}

TEST(Dag, AddEdgeWiresBothDirections) {
    Dag dag(3);
    dag.add_edge(0, 1, 5.0);
    dag.add_edge(0, 2, 7.0);
    ASSERT_EQ(dag.successors(0).size(), 2u);
    EXPECT_EQ(dag.successors(0)[0].task, 1);
    EXPECT_DOUBLE_EQ(dag.successors(0)[0].data, 5.0);
    ASSERT_EQ(dag.predecessors(2).size(), 1u);
    EXPECT_EQ(dag.predecessors(2)[0].task, 0);
    EXPECT_DOUBLE_EQ(dag.predecessors(2)[0].data, 7.0);
    EXPECT_EQ(dag.out_degree(0), 2u);
    EXPECT_EQ(dag.in_degree(1), 1u);
    EXPECT_EQ(dag.num_edges(), 2u);
}

TEST(Dag, RejectsBadEdges) {
    Dag dag(2);
    EXPECT_THROW(dag.add_edge(0, 0, 1.0), std::invalid_argument);       // self loop
    EXPECT_THROW(dag.add_edge(0, 5, 1.0), std::out_of_range);           // bad target
    EXPECT_THROW(dag.add_edge(-1, 1, 1.0), std::out_of_range);          // bad source
    EXPECT_THROW(dag.add_edge(0, 1, -1.0), std::invalid_argument);      // negative data
    dag.add_edge(0, 1, 1.0);
    EXPECT_THROW(dag.add_edge(0, 1, 2.0), std::invalid_argument);       // duplicate
}

TEST(Dag, RejectsBadWork) {
    Dag dag;
    EXPECT_THROW(dag.add_task(-1.0), std::invalid_argument);
    EXPECT_THROW(dag.add_task(std::numeric_limits<double>::infinity()), std::invalid_argument);
}

TEST(Dag, EdgeDataLookup) {
    Dag dag(2);
    dag.add_edge(0, 1, 3.5);
    EXPECT_DOUBLE_EQ(dag.edge_data(0, 1), 3.5);
    EXPECT_THROW((void)dag.edge_data(1, 0), std::out_of_range);
    EXPECT_TRUE(dag.has_edge(0, 1));
    EXPECT_FALSE(dag.has_edge(1, 0));
}

TEST(Dag, SetEdgeDataUpdatesBothSides) {
    Dag dag(2);
    dag.add_edge(0, 1, 1.0);
    dag.set_edge_data(0, 1, 9.0);
    EXPECT_DOUBLE_EQ(dag.successors(0)[0].data, 9.0);
    EXPECT_DOUBLE_EQ(dag.predecessors(1)[0].data, 9.0);
    EXPECT_THROW(dag.set_edge_data(1, 0, 1.0), std::out_of_range);
    EXPECT_THROW(dag.set_edge_data(0, 1, -2.0), std::invalid_argument);
}

TEST(Dag, SourcesAndSinks) {
    Dag dag(4);
    dag.add_edge(0, 2, 1.0);
    dag.add_edge(1, 2, 1.0);
    dag.add_edge(2, 3, 1.0);
    EXPECT_EQ(dag.sources(), (std::vector<TaskId>{0, 1}));
    EXPECT_EQ(dag.sinks(), (std::vector<TaskId>{3}));
}

TEST(Dag, Totals) {
    Dag dag;
    dag.add_task(2.0);
    dag.add_task(3.0);
    dag.add_edge(0, 1, 4.0);
    EXPECT_DOUBLE_EQ(dag.total_work(), 5.0);
    EXPECT_DOUBLE_EQ(dag.total_data(), 4.0);
}

TEST(Dag, AcyclicityDetection) {
    Dag dag(3);
    dag.add_edge(0, 1, 1.0);
    dag.add_edge(1, 2, 1.0);
    EXPECT_TRUE(dag.is_acyclic());
    dag.add_edge(2, 0, 1.0);  // closes a cycle (structurally allowed)
    EXPECT_FALSE(dag.is_acyclic());
    EXPECT_NE(dag.validate().find("cycle"), std::string::npos);
}

TEST(Dag, ValidateOkOnProperGraph) {
    Dag dag(3);
    dag.add_edge(0, 1, 1.0);
    dag.add_edge(0, 2, 1.0);
    EXPECT_EQ(dag.validate(), "");
}

TEST(Dag, EqualityComparesStructureAndWeights) {
    Dag a(2);
    a.add_edge(0, 1, 1.0);
    Dag b(2);
    b.add_edge(0, 1, 1.0);
    EXPECT_EQ(a, b);
    b.set_edge_data(0, 1, 2.0);
    EXPECT_FALSE(a == b);
    Dag c(2);
    EXPECT_FALSE(a == c);
}

TEST(Dag, OutOfRangeAccessorsThrow) {
    Dag dag(1);
    EXPECT_THROW((void)dag.work(1), std::out_of_range);
    EXPECT_THROW((void)dag.successors(-1), std::out_of_range);
    EXPECT_THROW((void)dag.name(2), std::out_of_range);
}

TEST(Csr, MirrorsAdjacencyInInsertionOrder) {
    // Edge insertion order is what the FP folds in the rank kernels see, so
    // the CSR must reproduce it exactly in both directions.
    Dag dag(4);
    dag.add_edge(0, 2, 5.0);
    dag.add_edge(0, 1, 3.0);
    dag.add_edge(1, 3, 7.0);
    dag.add_edge(2, 3, 9.0);
    dag.add_edge(0, 3, 11.0);
    const CsrAdjacency& csr = dag.csr();
    EXPECT_EQ(csr.num_tasks(), 4u);
    for (TaskId v = 0; v < 4; ++v) {
        const auto& adj = dag.successors(v);
        const auto tasks = csr.succ_tasks(v);
        const auto data = csr.succ_data(v);
        ASSERT_EQ(tasks.size(), adj.size()) << "task " << v;
        ASSERT_EQ(csr.out_degree(v), adj.size());
        for (std::size_t i = 0; i < adj.size(); ++i) {
            EXPECT_EQ(tasks[i], adj[i].task) << "task " << v << " edge " << i;
            EXPECT_EQ(data[i], adj[i].data) << "task " << v << " edge " << i;
        }
        const auto& padj = dag.predecessors(v);
        const auto ptasks = csr.pred_tasks(v);
        const auto pdata = csr.pred_data(v);
        ASSERT_EQ(ptasks.size(), padj.size()) << "task " << v;
        ASSERT_EQ(csr.in_degree(v), padj.size());
        for (std::size_t i = 0; i < padj.size(); ++i) {
            EXPECT_EQ(ptasks[i], padj[i].task) << "task " << v << " edge " << i;
            EXPECT_EQ(pdata[i], padj[i].data) << "task " << v << " edge " << i;
        }
    }
}

TEST(Csr, CachedSnapshotIsInvalidatedByMutation) {
    Dag dag(2);
    dag.add_edge(0, 1, 1.0);
    EXPECT_EQ(dag.csr().out_degree(0), 1u);
    dag.add_edge(0, dag.add_task(), 2.0);  // mutation after csr() was taken
    EXPECT_EQ(dag.csr().out_degree(0), 2u);
    dag.set_edge_data(0, 1, 4.0);
    EXPECT_DOUBLE_EQ(dag.csr().succ_data(0)[0], 4.0);
}

TEST(Csr, SnapshotStableWhileDagUnchanged) {
    Dag dag(3);
    dag.add_edge(0, 1, 1.0);
    dag.add_edge(1, 2, 2.0);
    const CsrAdjacency* first = &dag.csr();
    EXPECT_EQ(&dag.csr(), first);  // same cached snapshot, not a rebuild
}

TEST(Csr, CopyAndAssignmentRebuildIndependentSnapshots) {
    Dag a(3);
    a.add_edge(0, 1, 1.0);
    (void)a.csr();  // populate a's cache before copying
    Dag b(a);
    EXPECT_EQ(b.csr().out_degree(0), 1u);
    b.add_edge(1, 2, 2.0);
    EXPECT_EQ(b.csr().out_degree(1), 1u);
    EXPECT_EQ(a.csr().out_degree(1), 0u);  // a's snapshot untouched by b
    Dag c(1);
    c = a;
    EXPECT_EQ(c.csr().num_tasks(), 3u);
    EXPECT_EQ(c.csr().out_degree(0), 1u);
    Dag d(std::move(c));
    EXPECT_EQ(d.csr().out_degree(0), 1u);
}

TEST(Csr, EmptyDagYieldsEmptySnapshot) {
    Dag dag;
    EXPECT_EQ(dag.csr().num_tasks(), 0u);
    Dag one(1);
    EXPECT_EQ(one.csr().in_degree(0), 0u);
    EXPECT_TRUE(one.csr().succ_tasks(0).empty());
}

}  // namespace
}  // namespace tsched
