// Tests for the search-based scheduling module (opt/): decoder, local
// search / simulated annealing, and the genetic algorithm.
#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "opt/decoder.hpp"
#include "opt/genetic.hpp"
#include "opt/local_search.hpp"
#include "sched/heft.hpp"
#include "sched/validate.hpp"
#include "workload/instance.hpp"

namespace tsched {
namespace {

Problem sample_problem(std::uint64_t seed, std::size_t n = 50, double ccr = 1.0) {
    workload::InstanceParams params;
    params.size = n;
    params.num_procs = 4;
    params.ccr = ccr;
    params.beta = 0.75;
    return workload::make_instance(params, seed);
}

// ---------------------------------------------------------------------------
// Decoder.
// ---------------------------------------------------------------------------

TEST(Decoder, AnyAssignmentDecodesToValidSchedule) {
    const Problem problem = sample_problem(1);
    Rng rng(9);
    const auto priority = opt::default_priority(problem);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<ProcId> assignment(problem.num_tasks());
        for (auto& p : assignment) {
            p = static_cast<ProcId>(
                rng.uniform_int(0, static_cast<std::int64_t>(problem.num_procs() - 1)));
        }
        const Schedule s = opt::decode(problem, assignment, priority);
        const auto valid = validate(s, problem);
        EXPECT_TRUE(valid.ok) << valid.message();
        // Every task sits on its assigned processor.
        for (std::size_t v = 0; v < problem.num_tasks(); ++v) {
            EXPECT_EQ(s.primary(static_cast<TaskId>(v)).proc, assignment[v]);
        }
    }
}

TEST(Decoder, RandomPrioritiesStillValid) {
    const Problem problem = sample_problem(2);
    Rng rng(4);
    std::vector<ProcId> assignment(problem.num_tasks(), 0);
    std::vector<double> priority(problem.num_tasks());
    for (auto& p : priority) p = rng.uniform();
    const Schedule s = opt::decode(problem, assignment, priority);
    EXPECT_TRUE(validate(s, problem).ok);
}

TEST(Decoder, RejectsSizeMismatch) {
    const Problem problem = sample_problem(3);
    const std::vector<ProcId> short_assignment(3, 0);
    const auto priority = opt::default_priority(problem);
    EXPECT_THROW((void)opt::decode(problem, short_assignment, priority),
                 std::invalid_argument);
}

TEST(Decoder, ExtractRoundTripPreservesMakespanForHeft) {
    // Re-decoding HEFT's own assignment under rank_u priorities reproduces a
    // schedule at least as good as... in fact exactly HEFT's placement rule,
    // so the makespan matches.
    const Problem problem = sample_problem(4);
    const Schedule heft = HeftScheduler().schedule(problem);
    const auto assignment = opt::extract_assignment(heft);
    const Schedule redecoded =
        opt::decode(problem, assignment, opt::default_priority(problem));
    EXPECT_TRUE(validate(redecoded, problem).ok);
    EXPECT_NEAR(redecoded.makespan(), heft.makespan(), 1e-9);
}

// ---------------------------------------------------------------------------
// Local search.
// ---------------------------------------------------------------------------

class LocalSearchSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalSearchSeedTest, NeverRegressesAndStaysValid) {
    const Problem problem = sample_problem(GetParam(), 40, 2.0);
    const Schedule initial = HeftScheduler().schedule(problem);
    opt::LocalSearchParams params;
    params.iterations = 300;
    params.seed = GetParam();
    const Schedule improved = opt::local_search(problem, initial, params);
    const auto valid = validate(improved, problem);
    EXPECT_TRUE(valid.ok) << valid.message();
    EXPECT_LE(improved.makespan(), initial.makespan() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchSeedTest, ::testing::Range<std::uint64_t>(0, 8));

TEST(LocalSearch, HillClimbingModeWorks) {
    const Problem problem = sample_problem(11, 40, 2.0);
    const Schedule initial = HeftScheduler().schedule(problem);
    opt::LocalSearchParams params;
    params.iterations = 300;
    params.annealing = false;
    const Schedule improved = opt::local_search(problem, initial, params);
    EXPECT_TRUE(validate(improved, problem).ok);
    EXPECT_LE(improved.makespan(), initial.makespan() + 1e-9);
}

TEST(LocalSearch, SingleProcessorIsNoop) {
    const Problem problem = [&] {
        workload::InstanceParams params;
        params.size = 20;
        params.num_procs = 1;
        return workload::make_instance(params, 5);
    }();
    const Schedule initial = HeftScheduler().schedule(problem);
    const Schedule improved = opt::local_search(problem, initial, {});
    EXPECT_DOUBLE_EQ(improved.makespan(), initial.makespan());
}

TEST(LocalSearch, DeterministicPerSeed) {
    const Problem problem = sample_problem(12, 40);
    const Schedule initial = HeftScheduler().schedule(problem);
    opt::LocalSearchParams params;
    params.iterations = 200;
    params.seed = 77;
    const Schedule a = opt::local_search(problem, initial, params);
    const Schedule b = opt::local_search(problem, initial, params);
    EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
}

TEST(RefinedScheduler, WrapsBaseAndImprovesInAggregate) {
    const auto refined = make_scheduler("heft+ls");
    EXPECT_EQ(refined->name(), "heft+ls");
    double base_total = 0.0;
    double refined_total = 0.0;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const Problem problem = sample_problem(seed, 40, 3.0);
        base_total += HeftScheduler().schedule(problem).makespan();
        const Schedule r = refined->schedule(problem);
        EXPECT_TRUE(validate(r, problem).ok);
        refined_total += r.makespan();
    }
    EXPECT_LT(refined_total, base_total);
}

TEST(RefinedScheduler, RejectsNullBase) {
    EXPECT_THROW(opt::RefinedScheduler(nullptr), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Genetic algorithm.
// ---------------------------------------------------------------------------

TEST(Ga, ProducesValidSchedules) {
    const Problem problem = sample_problem(21, 40);
    opt::GaParams params;
    params.generations = 10;
    const Schedule s = opt::GaScheduler(params).schedule(problem);
    const auto valid = validate(s, problem);
    EXPECT_TRUE(valid.ok) << valid.message();
}

TEST(Ga, SeededWithHeftNeverMuchWorse) {
    // Elitism + HEFT seeding: the GA result cannot be worse than the HEFT
    // seed (the elite survives every generation).
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const Problem problem = sample_problem(seed, 40, 2.0);
        const Schedule heft = HeftScheduler().schedule(problem);
        opt::GaParams params;
        params.generations = 8;
        params.seed = seed + 100;
        const Schedule ga = opt::GaScheduler(params).schedule(problem);
        EXPECT_LE(ga.makespan(), heft.makespan() + 1e-9);
    }
}

TEST(Ga, DeterministicPerSeed) {
    const Problem problem = sample_problem(23, 30);
    opt::GaParams params;
    params.generations = 6;
    params.seed = 5;
    const double a = opt::GaScheduler(params).schedule(problem).makespan();
    const double b = opt::GaScheduler(params).schedule(problem).makespan();
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(Ga, MoreGenerationsHelpInAggregate) {
    double short_total = 0.0;
    double long_total = 0.0;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const Problem problem = sample_problem(seed + 50, 40, 3.0);
        opt::GaParams short_params;
        short_params.generations = 2;
        short_params.seed = 9;
        opt::GaParams long_params;
        long_params.generations = 30;
        long_params.seed = 9;
        short_total += opt::GaScheduler(short_params).schedule(problem).makespan();
        long_total += opt::GaScheduler(long_params).schedule(problem).makespan();
    }
    EXPECT_LE(long_total, short_total + 1e-9);
}

TEST(Ga, RejectsBadParams) {
    opt::GaParams params;
    params.population = 1;
    EXPECT_THROW(opt::GaScheduler{params}, std::invalid_argument);
    params.population = 10;
    params.crossover_rate = 1.5;
    EXPECT_THROW(opt::GaScheduler{params}, std::invalid_argument);
}

}  // namespace
}  // namespace tsched
