// TSP platform serialization round-trip and error handling.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "platform/platform_io.hpp"

namespace tsched {
namespace {

TEST(PlatformIo, RoundTripsExactly) {
    const auto links = std::make_shared<UniformLinkModel>(0.5, 2.0);
    const Machine machine({1.0, 0.75, 1.0 / 3.0}, links);
    const CostMatrix costs(2, 3, {1.5, 2.0, std::nextafter(3.0, 4.0), 4.0, 5.0, 6.0});

    const std::string text = to_tsp(machine, costs);
    const PlatformSpec spec = read_tsp_string(text);

    ASSERT_EQ(spec.machine.num_procs(), 3u);
    EXPECT_EQ(spec.machine.speeds(), machine.speeds());
    ASSERT_EQ(spec.costs.num_tasks(), 2u);
    ASSERT_EQ(spec.costs.num_procs(), 3u);
    for (TaskId v = 0; v < 2; ++v) {
        for (ProcId p = 0; p < 3; ++p) {
            EXPECT_EQ(spec.costs(v, p), costs(v, p)) << "v=" << v << " p=" << p;
        }
    }
    const auto* back = dynamic_cast<const UniformLinkModel*>(&spec.machine.links());
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(back->latency(), 0.5);
    EXPECT_EQ(back->bandwidth(), 2.0);

    // Serializing the parsed platform reproduces the document byte for byte.
    EXPECT_EQ(to_tsp(spec.machine, spec.costs), text);
}

TEST(PlatformIo, RejectsNonUniformLinkModel) {
    const auto bus = std::make_shared<BusLinkModel>(0.0, 1.0, 2);
    const Machine machine = Machine::homogeneous(2, bus);
    const CostMatrix costs = CostMatrix(1, 2, {1.0, 1.0});
    EXPECT_THROW(to_tsp(machine, costs), std::invalid_argument);
}

TEST(PlatformIo, RejectsMalformedDocuments) {
    EXPECT_THROW(read_tsp_string(""), std::runtime_error);
    EXPECT_THROW(read_tsp_string("tsp 2\n"), std::runtime_error);  // missing task count
    EXPECT_THROW(read_tsp_string("tsp 2 1\n"
                                 "s 0 1\n"
                                 "s 1 1\n"
                                 "w 0 1 1\n"),  // no link line
                 std::runtime_error);
    EXPECT_THROW(read_tsp_string("tsp 2 1\n"
                                 "s 0 1\ns 1 1\n"
                                 "link uniform 0 1\n"
                                 "w 1 1 1\n"),  // rows must start at task 0
                 std::runtime_error);
    EXPECT_THROW(read_tsp_string("tsp 2 1\n"
                                 "s 0 1\ns 1 1\n"
                                 "link uniform 0 1\n"
                                 "w 0 1\n"),  // short cost row
                 std::runtime_error);
    EXPECT_THROW(read_tsp_string("tsp 2 1\n"
                                 "s 0 1\ns 1 1\n"
                                 "link uniform 0 1\n"
                                 "w 0 0 1\n"),  // non-positive cost entry
                 std::runtime_error);
}

TEST(PlatformIo, SaveAndLoad) {
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    const Machine machine = Machine::homogeneous(2, links);
    const CostMatrix costs(1, 2, {3.0, 4.0});
    const std::string path = testing::TempDir() + "tsched_platform_io_test.tsp";
    save_tsp(path, machine, costs);
    const PlatformSpec spec = load_tsp(path);
    EXPECT_EQ(spec.machine.num_procs(), 2u);
    EXPECT_EQ(spec.costs(0, 1), 4.0);
    EXPECT_THROW(load_tsp(path + ".does-not-exist"), std::runtime_error);
}

}  // namespace
}  // namespace tsched
