// Tests for the exact branch-and-bound scheduler (sched/optimal.hpp):
// hand-checkable optima, dominance over every heuristic on small instances,
// and the anytime/truncation behaviour.
#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "sched/optimal.hpp"
#include "sched/validate.hpp"
#include "workload/instance.hpp"
#include "workload/structured.hpp"

namespace tsched {
namespace {

Problem small_problem(std::uint64_t seed, std::size_t n, std::size_t procs, double ccr) {
    workload::InstanceParams params;
    params.size = n;
    params.num_procs = procs;
    params.ccr = ccr;
    params.beta = 1.0;
    return workload::make_instance(params, seed);
}

TEST(Bnb, ChainOptimumIsSerialOnFastestPath) {
    // A chain cannot be parallelised: the optimum runs every task on its
    // locally best processor... but switching processors costs comm; with
    // identical rows the optimum is simply the serial sum on one processor.
    Dag dag = workload::chain(5);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 0.1);  // expensive comm
    Machine machine = Machine::homogeneous(3, links);
    CostMatrix costs = CostMatrix::uniform(dag, 3);
    const Problem problem(std::move(dag), std::move(machine), std::move(costs));
    const auto result = BnbScheduler().solve(problem);
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_DOUBLE_EQ(result.schedule.makespan(), 5.0);
}

TEST(Bnb, IndependentTasksPackPerfectly) {
    // 4 unit tasks on 2 identical processors: optimum = 2.
    Dag dag = workload::independent(4);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs = CostMatrix::uniform(dag, 2);
    const Problem problem(std::move(dag), std::move(machine), std::move(costs));
    const auto result = BnbScheduler().solve(problem);
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_DOUBLE_EQ(result.schedule.makespan(), 2.0);
}

TEST(Bnb, HeterogeneousAssignmentHandCase) {
    // Two independent tasks; t0 fast on P0, t1 fast on P1 — the optimum uses
    // both specialists in parallel: makespan 2.
    Dag dag = workload::independent(2);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs(2, 2, {2.0, 9.0, 9.0, 2.0});
    const Problem problem(std::move(dag), std::move(machine), std::move(costs));
    const auto result = BnbScheduler().solve(problem);
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_DOUBLE_EQ(result.schedule.makespan(), 2.0);
}

TEST(Bnb, ForkJoinTradeoffHandCase) {
    // src -> {a, b} -> sink, unit costs, comm 3 between procs.  Splitting
    // costs 3 comm each way (src->b remote, b->sink remote): start b at 4,
    // sink waits until 5+3 = 8 + 1 -> 9; serialising everything on one
    // processor gives 4.  Optimum = 4.
    Dag dag;
    const TaskId src = dag.add_task(1.0);
    const TaskId a = dag.add_task(1.0);
    const TaskId b = dag.add_task(1.0);
    const TaskId sink = dag.add_task(1.0);
    dag.add_edge(src, a, 3.0);
    dag.add_edge(src, b, 3.0);
    dag.add_edge(a, sink, 3.0);
    dag.add_edge(b, sink, 3.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs = CostMatrix::uniform(dag, 2);
    const Problem problem(std::move(dag), std::move(machine), std::move(costs));
    const auto result = BnbScheduler().solve(problem);
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_DOUBLE_EQ(result.schedule.makespan(), 4.0);
}

class BnbDominanceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BnbDominanceTest, OptimalNeverWorseThanAnyHeuristic) {
    const Problem problem = small_problem(GetParam(), 8, 2, 2.0);
    const auto result = BnbScheduler().solve(problem);
    ASSERT_TRUE(result.proven_optimal);
    const auto valid = validate(result.schedule, problem);
    ASSERT_TRUE(valid.ok) << valid.message();
    // The non-duplicating heuristics live in bnb's search space, so the
    // proven optimum bounds them from below.
    for (const auto* name : {"ils", "heft", "cpop", "hcpt", "dls", "etf", "mcp", "peft"}) {
        const Schedule heuristic = make_scheduler(name)->schedule(problem);
        EXPECT_LE(result.schedule.makespan(), heuristic.makespan() + 1e-9) << name;
    }
    // And by the CP lower bound from above.
    EXPECT_GE(result.schedule.makespan(), problem.cp_lower_bound() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbDominanceTest, ::testing::Range<std::uint64_t>(0, 10));

TEST(Bnb, TruncationFallsBackToIncumbent) {
    // A 30-task instance with a 1-node budget: the search must give up
    // immediately and return the (valid) HEFT incumbent, unproven.
    const Problem problem = small_problem(3, 30, 4, 1.0);
    const auto result = BnbScheduler(/*max_nodes=*/1).solve(problem);
    EXPECT_FALSE(result.proven_optimal);
    EXPECT_TRUE(validate(result.schedule, problem).ok);
    const Schedule heft = make_scheduler("heft")->schedule(problem);
    EXPECT_LE(result.schedule.makespan(), heft.makespan() + 1e-9);
}

TEST(Bnb, RegistryExposesItButNotInNames) {
    EXPECT_NO_THROW((void)make_scheduler("bnb"));
    for (const auto& name : scheduler_names()) EXPECT_NE(name, "bnb");
}

TEST(Bnb, SchedulerInterfaceMatchesSolve) {
    const Problem problem = small_problem(5, 7, 2, 1.0);
    const BnbScheduler bnb;
    EXPECT_DOUBLE_EQ(bnb.schedule(problem).makespan(), bnb.solve(problem).schedule.makespan());
    EXPECT_EQ(bnb.name(), "bnb");
}

}  // namespace
}  // namespace tsched
