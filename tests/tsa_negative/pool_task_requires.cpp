// Seeded misuse: a task submitted to the real ThreadPool writes a guarded
// member without taking the lock.  The closure runs on a worker thread with
// no locks held, and the analysis checks the lambda body like any other
// function — exactly the hole the annotations close for ServeEngine's
// pool-side compute path.
// EXPECT: requires holding mutex 'mutex_' exclusively
#include <cstdint>

#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace {

class Stats {
public:
    void hammer(tsched::ThreadPool& pool) {
        (void)pool.submit([this] { ++total_; });  // BUG: guarded write, lockless task
    }

private:
    tsched::Mutex mutex_;
    std::uint64_t total_ TSCHED_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
    tsched::ThreadPool pool(1);
    Stats stats;
    stats.hammer(pool);
    return 0;
}
