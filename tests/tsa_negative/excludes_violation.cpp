// Seeded misuse: calling a TSCHED_EXCLUDES function while holding the very
// mutex it will acquire (self-deadlock).  ServeEngine::submit /
// ScheduleCache::get carry exactly this annotation.
// EXPECT: while mutex 'mutex_' is held
#include <cstdint>

#include "util/thread_annotations.hpp"

namespace {

class Account {
public:
    void deposit(std::uint64_t amount) TSCHED_EXCLUDES(mutex_) {
        tsched::LockGuard lock(mutex_);
        balance_ += amount;
    }

    void deposit_reentrant(std::uint64_t amount) TSCHED_EXCLUDES(mutex_) {
        tsched::LockGuard lock(mutex_);
        deposit(amount);  // BUG: deposit() takes mutex_ itself
    }

private:
    tsched::Mutex mutex_;
    std::uint64_t balance_ TSCHED_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
    Account account;
    account.deposit_reentrant(1);
    return 0;
}
