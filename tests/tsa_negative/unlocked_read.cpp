// Seeded misuse: reading a GUARDED_BY member without holding its mutex —
// the exact bug class ScheduleCache::stats() had before the counters moved
// under the shard lock (an unguarded read of mutating shared state).
// EXPECT: requires holding mutex 'mutex_'
#include <cstdint>

#include "util/thread_annotations.hpp"

namespace {

class Stats {
public:
    void record() TSCHED_EXCLUDES(mutex_) {
        tsched::LockGuard lock(mutex_);
        ++hits_;
    }

    [[nodiscard]] std::uint64_t hits() const { return hits_; }  // BUG: unguarded read

private:
    mutable tsched::Mutex mutex_;
    std::uint64_t hits_ TSCHED_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
    Stats stats;
    stats.record();
    return static_cast<int>(stats.hits());
}
