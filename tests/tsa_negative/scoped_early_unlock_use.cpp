// Seeded misuse: touching guarded state after releasing a scoped lock early
// — the "checked, then used outside the lock" pattern that produces torn
// reads (the pre-annotation ScheduleCache::stats() shape).
// EXPECT: requires holding mutex 'mutex_'
#include <cstdint>

#include "util/thread_annotations.hpp"

namespace {

class Stats {
public:
    [[nodiscard]] std::uint64_t drain() TSCHED_EXCLUDES(mutex_) {
        tsched::UniqueLock lock(mutex_);
        const std::uint64_t seen = hits_;
        lock.unlock();
        hits_ = 0;  // BUG: write after the early unlock
        return seen;
    }

private:
    tsched::Mutex mutex_;
    std::uint64_t hits_ TSCHED_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
    Stats stats;
    return static_cast<int>(stats.drain());
}
