// Positive control for the negative-compilation battery: exercises every
// annotation the misuse cases abuse, *correctly*.  This file must compile
// with zero thread-safety diagnostics — if it does not, the harness (or the
// annotation header) is broken and every "expected failure" below would be
// meaningless.
#include <cstdint>
#include <deque>

#include "util/thread_annotations.hpp"

namespace {

class Account {
public:
    void deposit(std::uint64_t amount) TSCHED_EXCLUDES(mutex_) {
        tsched::LockGuard lock(mutex_);
        balance_ += amount;
    }

    [[nodiscard]] std::uint64_t balance() TSCHED_EXCLUDES(mutex_) {
        tsched::LockGuard lock(mutex_);
        return balance_;
    }

    void try_deposit(std::uint64_t amount) TSCHED_EXCLUDES(mutex_) {
        if (mutex_.try_lock()) {
            balance_ += amount;
            mutex_.unlock();
        }
    }

    void drain() TSCHED_EXCLUDES(mutex_) {
        tsched::LockGuard lock(mutex_);
        drain_locked();
    }

private:
    void drain_locked() TSCHED_REQUIRES(mutex_) { balance_ = 0; }

    tsched::Mutex mutex_;
    std::uint64_t balance_ TSCHED_GUARDED_BY(mutex_) = 0;
};

// Two-capability type with a declared lock order, taken in that order.
class ShardPair {
public:
    void rebalance() TSCHED_EXCLUDES(shard_a_, shard_b_) {
        tsched::LockGuard first(shard_a_);
        tsched::LockGuard second(shard_b_);
        b_entries_ += a_entries_;
        a_entries_ = 0;
    }

private:
    tsched::Mutex shard_a_ TSCHED_ACQUIRED_BEFORE(shard_b_);
    tsched::Mutex shard_b_;
    std::uint64_t a_entries_ TSCHED_GUARDED_BY(shard_a_) = 0;
    std::uint64_t b_entries_ TSCHED_GUARDED_BY(shard_b_) = 0;
};

// Producer/consumer wait spelled as an explicit loop under UniqueLock —
// the repo convention for condition waits (DESIGN §13).
class Queue {
public:
    void push(int value) TSCHED_EXCLUDES(mutex_) {
        {
            tsched::LockGuard lock(mutex_);
            items_.push_back(value);
        }
        cv_.notify_one();
    }

    [[nodiscard]] int pop() TSCHED_EXCLUDES(mutex_) {
        tsched::UniqueLock lock(mutex_);
        while (items_.empty()) cv_.wait(lock);
        const int value = items_.front();
        items_.pop_front();
        return value;
    }

    /// Early manual release of a scoped lock.
    [[nodiscard]] bool empty() TSCHED_EXCLUDES(mutex_) {
        tsched::UniqueLock lock(mutex_);
        const bool result = items_.empty();
        lock.unlock();
        return result;
    }

private:
    tsched::Mutex mutex_;
    tsched::CondVar cv_;
    std::deque<int> items_ TSCHED_GUARDED_BY(mutex_);
};

}  // namespace

int main() {
    Account account;
    account.deposit(2);
    account.try_deposit(3);
    account.drain();
    ShardPair shards;
    shards.rebalance();
    Queue queue;
    queue.push(1);
    const int popped = queue.pop();
    return static_cast<int>(account.balance()) + popped + (queue.empty() ? 0 : 1);
}
