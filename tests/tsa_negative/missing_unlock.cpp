// Seeded misuse: a manual lock() with a return path that never unlocks —
// the leak class RAII guards exist to prevent.
// EXPECT: still held at the end of function
#include <cstdint>

#include "util/thread_annotations.hpp"

namespace {

class Account {
public:
    void deposit(std::uint64_t amount) TSCHED_EXCLUDES(mutex_) {
        mutex_.lock();
        balance_ += amount;
        // BUG: early return leaks the lock; the fall-through path unlocks.
        if (balance_ > 100) return;
        mutex_.unlock();
    }

private:
    tsched::Mutex mutex_;
    std::uint64_t balance_ TSCHED_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
    Account account;
    account.deposit(1);
    return 0;
}
