// Seeded misuse: acquiring two cache-shard mutexes against their declared
// ACQUIRED_BEFORE order — the deadlock class sharded designs such as
// ScheduleCache avoid by never nesting shard locks.  Checked under
// -Wthread-safety-beta.
// EXPECT: must be acquired
#include <cstdint>

#include "util/thread_annotations.hpp"

namespace {

class ShardPair {
public:
    void rebalance_inverted() TSCHED_EXCLUDES(shard_a_, shard_b_) {
        tsched::LockGuard second(shard_b_);  // BUG: b taken first…
        tsched::LockGuard first(shard_a_);   // …then a, inverting the order
        a_entries_ += b_entries_;
    }

private:
    tsched::Mutex shard_a_ TSCHED_ACQUIRED_BEFORE(shard_b_);
    tsched::Mutex shard_b_;
    std::uint64_t a_entries_ TSCHED_GUARDED_BY(shard_a_) = 0;
    std::uint64_t b_entries_ TSCHED_GUARDED_BY(shard_b_) = 0;
};

}  // namespace

int main() {
    ShardPair shards;
    shards.rebalance_inverted();
    return 0;
}
