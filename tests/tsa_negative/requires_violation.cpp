// Seeded misuse: calling a _locked() helper (TSCHED_REQUIRES) without the
// lock.  This is the contract every internal helper in ThreadPool /
// ScheduleCache / the executor states in its signature.
// EXPECT: calling function 'drain_locked' requires holding mutex 'mutex_'
#include <cstdint>

#include "util/thread_annotations.hpp"

namespace {

class Account {
public:
    void reset() { drain_locked(); }  // BUG: caller never acquired mutex_

private:
    void drain_locked() TSCHED_REQUIRES(mutex_) { balance_ = 0; }

    tsched::Mutex mutex_;
    std::uint64_t balance_ TSCHED_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
    Account account;
    account.reset();
    return 0;
}
