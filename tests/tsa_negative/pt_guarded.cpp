// Seeded misuse: dereferencing a PT_GUARDED_BY pointer without the mutex
// that protects the pointee.
// EXPECT: pointed to by 'totals_' requires holding mutex 'mutex_'
#include <cstdint>

#include "util/thread_annotations.hpp"

namespace {

class Ledger {
public:
    explicit Ledger(std::uint64_t* totals) : totals_(totals) {}

    void bump() { ++*totals_; }  // BUG: pointee write without the lock

private:
    tsched::Mutex mutex_;
    std::uint64_t* totals_ TSCHED_PT_GUARDED_BY(mutex_);
};

}  // namespace

int main() {
    std::uint64_t slot = 0;
    Ledger ledger(&slot);
    ledger.bump();
    return static_cast<int>(slot);
}
