// Seeded misuse: re-acquiring a mutex the caller already holds (self-
// deadlock with std::mutex) — what TSCHED_EXCLUDES on public entry points
// exists to prevent.
// EXPECT: that is already held
#include <cstdint>

#include "util/thread_annotations.hpp"

namespace {

class Account {
public:
    void deposit_twice(std::uint64_t amount) TSCHED_EXCLUDES(mutex_) {
        tsched::LockGuard lock(mutex_);
        balance_ += amount;
        tsched::LockGuard again(mutex_);  // BUG: double acquisition
        balance_ += amount;
    }

private:
    tsched::Mutex mutex_;
    std::uint64_t balance_ TSCHED_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
    Account account;
    account.deposit_twice(1);
    return 0;
}
