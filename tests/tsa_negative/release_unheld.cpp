// Seeded misuse: releasing a mutex the caller never acquired (undefined
// behaviour on std::mutex).
// EXPECT: that was not held
#include <cstdint>

#include "util/thread_annotations.hpp"

namespace {

class Account {
public:
    void oops() TSCHED_EXCLUDES(mutex_) {
        mutex_.unlock();  // BUG: never locked
    }

private:
    tsched::Mutex mutex_;
};

}  // namespace

int main() {
    Account account;
    account.oops();
    return 0;
}
