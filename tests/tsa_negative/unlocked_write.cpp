// Seeded misuse: writing a GUARDED_BY member without holding its mutex.
// The annotated-Mutex analogue of forgetting the LockGuard in
// ScheduleCache::put or ThreadPool::submit.
// EXPECT: requires holding mutex 'mutex_' exclusively
#include <cstdint>

#include "util/thread_annotations.hpp"

namespace {

class Account {
public:
    void deposit(std::uint64_t amount) { balance_ += amount; }  // BUG: no lock taken

private:
    tsched::Mutex mutex_;
    std::uint64_t balance_ TSCHED_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
    Account account;
    account.deposit(1);
    return 0;
}
