#!/usr/bin/env bash
# Negative-compilation battery for the thread-safety annotations
# (src/util/thread_annotations.hpp).
#
# Every *.cpp here except positive_control.cpp seeds one lock-misuse bug and
# MUST fail to compile under clang's thread-safety analysis with the
# diagnostic named on its "// EXPECT:" line; positive_control.cpp exercises
# the same annotations correctly and MUST compile clean.  Together they
# prove the -Werror=thread-safety CI gate has teeth: a regression that
# silences the analysis (macro rot, a flag dropped from the build) turns the
# expected failures into passes and fails this script.
#
# Usage: run_cases.sh [src_include_dir]
#   src_include_dir defaults to <script_dir>/../../src.
#   TSCHED_CLANGXX overrides clang++ discovery.
#
# Exit codes: 0 all cases behaved, 1 any case misbehaved, 77 no clang
# available (ctest SKIP_RETURN_CODE — the analysis is clang-only).
set -u

script_dir="$(cd "$(dirname "$0")" && pwd)"
src_dir="${1:-$script_dir/../../src}"

# --- clang detection -------------------------------------------------------
clangxx="${TSCHED_CLANGXX:-}"
if [[ -z "$clangxx" ]]; then
    for candidate in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
                     clang++-17 clang++-16 clang++-15 clang++-14; do
        if command -v "$candidate" >/dev/null 2>&1; then
            clangxx="$candidate"
            break
        fi
    done
fi
if [[ -z "$clangxx" ]] || ! "$clangxx" --version 2>/dev/null | grep -qi clang; then
    echo "tsa_negative: no clang++ found (thread-safety analysis is clang-only); skipping"
    exit 77
fi
echo "tsa_negative: using $("$clangxx" --version | head -n 1)"

flags=(-std=c++20 -fsyntax-only "-I$src_dir"
       -Wthread-safety -Wthread-safety-beta
       -Werror=thread-safety -Werror=thread-safety-beta)

failures=0

# --- positive control ------------------------------------------------------
control="$script_dir/positive_control.cpp"
if out="$("$clangxx" "${flags[@]}" "$control" 2>&1)"; then
    if [[ -n "$out" ]]; then
        echo "FAIL  positive_control.cpp: compiled but emitted diagnostics:"
        echo "$out" | sed 's/^/      /'
        failures=$((failures + 1))
    else
        echo "ok    positive_control.cpp: clean compile"
    fi
else
    echo "FAIL  positive_control.cpp: must compile under the analysis but did not:"
    echo "$out" | sed 's/^/      /'
    failures=$((failures + 1))
fi

# --- seeded misuse cases ---------------------------------------------------
cases=0
for case_file in "$script_dir"/*.cpp; do
    base="$(basename "$case_file")"
    [[ "$base" == positive_control.cpp ]] && continue
    cases=$((cases + 1))

    expect="$(sed -n 's|^// EXPECT: ||p' "$case_file" | head -n 1)"
    if [[ -z "$expect" ]]; then
        echo "FAIL  $base: no '// EXPECT:' diagnostic marker in the case file"
        failures=$((failures + 1))
        continue
    fi

    if out="$("$clangxx" "${flags[@]}" "$case_file" 2>&1)"; then
        echo "FAIL  $base: compiled cleanly — the seeded lock misuse was not detected"
        failures=$((failures + 1))
    elif ! grep -qF "$expect" <<<"$out"; then
        echo "FAIL  $base: failed, but without the expected diagnostic"
        echo "      expected substring: $expect"
        echo "$out" | sed 's/^/      /'
        failures=$((failures + 1))
    else
        echo "ok    $base: rejected with \"$expect\""
    fi
done

echo "tsa_negative: $cases misuse cases + 1 positive control, $failures failure(s)"
if [[ "$cases" -lt 8 ]]; then
    echo "FAIL  battery shrank below the 8-case floor"
    failures=$((failures + 1))
fi
exit $((failures > 0 ? 1 : 0))
