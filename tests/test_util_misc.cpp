// Tests for the remaining util pieces: logging and the stopwatch.
#include <gtest/gtest.h>

#include <thread>

#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace tsched {
namespace {

class LogLevelGuard {
public:
    LogLevelGuard() : saved_(log_level()) {}
    ~LogLevelGuard() { set_log_level(saved_); }

private:
    LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
    LogLevelGuard guard;
    set_log_level(LogLevel::kDebug);
    EXPECT_EQ(log_level(), LogLevel::kDebug);
    set_log_level(LogLevel::kError);
    EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, BelowThresholdIsDropped) {
    LogLevelGuard guard;
    set_log_level(LogLevel::kError);
    // Capture stderr around a filtered and an emitted message.
    testing::internal::CaptureStderr();
    TSCHED_INFO << "should not appear";
    TSCHED_ERROR << "should appear";
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find("should not appear"), std::string::npos);
    EXPECT_NE(err.find("should appear"), std::string::npos);
    EXPECT_NE(err.find("ERROR"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
    LogLevelGuard guard;
    set_log_level(LogLevel::kOff);
    testing::internal::CaptureStderr();
    TSCHED_ERROR << "nope";
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(Log, StreamStyleFormatting) {
    LogLevelGuard guard;
    set_log_level(LogLevel::kInfo);
    testing::internal::CaptureStderr();
    TSCHED_INFO << "x=" << 42 << " y=" << 1.5;
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("x=42 y=1.5"), std::string::npos);
}

TEST(Stopwatch, MeasuresElapsedTime) {
    Stopwatch watch;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const double ms = watch.elapsed_ms();
    EXPECT_GE(ms, 15.0);
    EXPECT_LT(ms, 5000.0);
    EXPECT_NEAR(watch.elapsed_seconds() * 1e3, watch.elapsed_ms(), 50.0);
    EXPECT_GT(watch.elapsed_us(), watch.elapsed_ms());
}

TEST(Stopwatch, RestartResets) {
    Stopwatch watch;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    watch.restart();
    EXPECT_LT(watch.elapsed_ms(), 15.0);
}

TEST(Stopwatch, Monotonic) {
    Stopwatch watch;
    double prev = 0.0;
    for (int i = 0; i < 100; ++i) {
        const double now = watch.elapsed_seconds();
        EXPECT_GE(now, prev);
        prev = now;
    }
}

}  // namespace
}  // namespace tsched
