// Unit tests for the Schedule container and the independent validator.
#include <gtest/gtest.h>

#include <cmath>

#include "platform/problem.hpp"
#include "sched/schedule.hpp"
#include "sched/validate.hpp"

namespace tsched {
namespace {

TEST(Schedule, AddAndQuery) {
    Schedule s(3, 2);
    s.add(0, 0, 0.0, 2.0);
    s.add(1, 1, 0.0, 3.0);
    s.add(2, 0, 2.0, 5.0);
    EXPECT_TRUE(s.complete());
    EXPECT_EQ(s.num_placements(), 3u);
    EXPECT_EQ(s.num_duplicates(), 0u);
    EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
    EXPECT_EQ(s.primary(2).proc, 0);
    EXPECT_DOUBLE_EQ(s.primary(2).start, 2.0);
}

TEST(Schedule, IncompleteDetection) {
    Schedule s(2, 1);
    s.add(0, 0, 0.0, 1.0);
    EXPECT_FALSE(s.complete());
    EXPECT_THROW((void)s.primary(1), std::out_of_range);
}

TEST(Schedule, DuplicatesTracked) {
    Schedule s(1, 2);
    s.add(0, 0, 0.0, 2.0);
    s.add(0, 1, 1.0, 3.5);  // duplicate on another proc
    EXPECT_EQ(s.placements(0).size(), 2u);
    EXPECT_EQ(s.num_duplicates(), 1u);
    EXPECT_DOUBLE_EQ(s.makespan(), 3.5);
    EXPECT_EQ(s.primary(0).proc, 0);  // first added is primary
}

TEST(Schedule, RejectsBadAdds) {
    Schedule s(1, 1);
    EXPECT_THROW(s.add(5, 0, 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(s.add(0, 3, 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(s.add(0, 0, -1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(s.add(0, 0, 2.0, 1.0), std::invalid_argument);  // finish < start
    EXPECT_THROW(Schedule(1, 0), std::invalid_argument);
}

TEST(Schedule, ProcessorTimelineSorted) {
    Schedule s(3, 1);
    s.add(0, 0, 4.0, 5.0);
    s.add(1, 0, 0.0, 2.0);
    s.add(2, 0, 2.0, 4.0);
    const auto timeline = s.processor_timeline(0);
    ASSERT_EQ(timeline.size(), 3u);
    EXPECT_EQ(timeline[0].task, 1);
    EXPECT_EQ(timeline[1].task, 2);
    EXPECT_EQ(timeline[2].task, 0);
}

TEST(Schedule, DataAvailablePicksBestInstance) {
    const UniformLinkModel links(1.0, 1.0);
    Schedule s(1, 3);
    s.add(0, 0, 0.0, 10.0);  // remote to p2: 10 + 1 + 4 = 15
    s.add(0, 2, 0.0, 12.0);  // local to p2: 12
    EXPECT_DOUBLE_EQ(s.data_available(0, 2, 4.0, links), 12.0);
    EXPECT_DOUBLE_EQ(s.data_available(0, 0, 4.0, links), 10.0);
    // Unplaced task: +inf.
    Schedule empty(1, 1);
    EXPECT_TRUE(std::isinf(empty.data_available(0, 0, 1.0, links)));
}

TEST(Schedule, IdleTimeAccounting) {
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 4.0);
    s.add(1, 1, 2.0, 4.0);  // proc 1 idle for 2
    EXPECT_DOUBLE_EQ(s.total_idle_time(), 2.0);
}

TEST(Schedule, ToStringMentionsProcessorsAndMakespan) {
    Schedule s(1, 2);
    s.add(0, 1, 0.0, 3.0);
    const std::string str = s.to_string();
    EXPECT_NE(str.find("makespan=3"), std::string::npos);
    EXPECT_NE(str.find("P1:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Validator.
// ---------------------------------------------------------------------------

/// 0 -> 1 (data 2) on two procs, exec cost constant 3, links latency 0 bw 1.
Problem tiny_problem() {
    Dag dag;
    dag.add_task(3.0);
    dag.add_task(3.0);
    dag.add_edge(0, 1, 2.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs = CostMatrix::uniform(dag, 2);
    return Problem(std::move(dag), std::move(machine), std::move(costs));
}

TEST(Validate, AcceptsCorrectSchedule) {
    const Problem problem = tiny_problem();
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 3.0);
    s.add(1, 1, 5.0, 8.0);  // data ready at 3 + 2 = 5
    const auto result = validate(s, problem);
    EXPECT_TRUE(result.ok) << result.message();
}

TEST(Validate, AcceptsSameProcBackToBack) {
    const Problem problem = tiny_problem();
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 3.0);
    s.add(1, 0, 3.0, 6.0);  // no comm on same proc
    EXPECT_TRUE(validate(s, problem).ok);
}

TEST(Validate, CatchesMissingTask) {
    const Problem problem = tiny_problem();
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 3.0);
    const auto result = validate(s, problem);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message().find("no placement"), std::string::npos);
}

TEST(Validate, CatchesWrongDuration) {
    const Problem problem = tiny_problem();
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 4.0);  // cost is 3, duration 4
    s.add(1, 1, 6.0, 9.0);
    const auto result = validate(s, problem);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message().find("duration"), std::string::npos);
}

TEST(Validate, CatchesOverlapOnProcessor) {
    const Problem problem = tiny_problem();
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 3.0);
    s.add(1, 0, 2.0, 5.0);  // overlaps task 0 on proc 0
    const auto result = validate(s, problem);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message().find("overlaps"), std::string::npos);
}

TEST(Validate, CatchesPrecedenceViolation) {
    const Problem problem = tiny_problem();
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 3.0);
    s.add(1, 1, 4.0, 7.0);  // data arrives at 5, starts at 4
    const auto result = validate(s, problem);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message().find("arrives"), std::string::npos);
}

TEST(Validate, DuplicateSatisfiesPrecedence) {
    const Problem problem = tiny_problem();
    Schedule s(2, 2);
    s.add(0, 0, 0.0, 3.0);
    s.add(0, 1, 0.0, 3.0);  // duplicate on proc 1
    s.add(1, 1, 3.0, 6.0);  // legal only thanks to the local duplicate
    const auto result = validate(s, problem);
    EXPECT_TRUE(result.ok) << result.message();
}

TEST(Validate, RejectsDimensionMismatch) {
    const Problem problem = tiny_problem();
    Schedule s(2, 5);
    const auto result = validate(s, problem);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message().find("dimensions"), std::string::npos);
}

TEST(Validate, ErrorCapRespected) {
    const Problem problem = tiny_problem();
    Schedule s(2, 2);  // both tasks missing -> 2 errors, cap at 1
    const auto result = validate(s, problem, 1e-6, 1);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.total_violations, 2u);
    // One reported violation plus the "... and N more" truncation note.
    ASSERT_EQ(result.errors.size(), 2u);
    EXPECT_NE(result.errors.back().find("1 more violation"), std::string::npos);
}

}  // namespace
}  // namespace tsched
