// Unit tests for the runtime metrics subsystem (src/obs/): the log-bucketed
// LatencyHistogram and its guarantees (bounded quantile error, exact merge,
// byte-stable snapshots, lock-free concurrent recording), the instrument
// registry, and the Prometheus/JSON exporters plus the file reporter.
//
// Suite names all start with "Obs" — the CI TSan job selects them by that
// prefix (--gtest_filter 'Obs*'), so the concurrency tests here double as
// the data-race battery for the subsystem.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/reporter.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace tsched::obs {
namespace {

// ---------------------------------------------------------------------------
// Bucket geometry

TEST(ObsHistogram, BucketBoundariesBracketTheValue) {
    // Every in-range value must land in a bucket whose [lower, upper) spans
    // it; boundaries must be monotone in the index.
    const std::vector<double> values{1e-7, 0.001, 0.5,    1.0,  1.5,   2.0,
                                     3.25, 100.0, 1e4,    1e8,  1e10};
    for (const double v : values) {
        const std::uint32_t idx = LatencyHistogram::bucket_index(v);
        ASSERT_LT(idx, LatencyHistogram::kNumBuckets) << v;
        EXPECT_LE(LatencyHistogram::bucket_lower(idx), v) << v;
        EXPECT_GT(LatencyHistogram::bucket_upper(idx), v) << v;
    }
    for (std::uint32_t i = 1; i < 256; ++i) {
        EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_upper(i - 1),
                         LatencyHistogram::bucket_lower(i));
    }
}

TEST(ObsHistogram, BucketRelativeWidthIsBounded) {
    // The error bound story rests on the bucket's relative width being at
    // most 1/64 = 2 * kMaxRelativeError for every in-range value.
    for (const double v : {1e-6, 0.01, 1.0, 7.0, 1e3, 1e9}) {
        const std::uint32_t idx = LatencyHistogram::bucket_index(v);
        const double lower = LatencyHistogram::bucket_lower(idx);
        const double upper = LatencyHistogram::bucket_upper(idx);
        EXPECT_LE((upper - lower) / lower, 2.0 * LatencyHistogram::kMaxRelativeError + 1e-12)
            << v;
    }
}

TEST(ObsHistogram, OutOfRangeValuesGetSentinels) {
    EXPECT_EQ(LatencyHistogram::bucket_index(0.0), LatencyHistogram::kUnderflowIndex);
    EXPECT_EQ(LatencyHistogram::bucket_index(-3.0), LatencyHistogram::kUnderflowIndex);
    EXPECT_EQ(LatencyHistogram::bucket_index(std::numeric_limits<double>::quiet_NaN()),
              LatencyHistogram::kUnderflowIndex);
    EXPECT_EQ(LatencyHistogram::bucket_index(std::numeric_limits<double>::infinity()),
              LatencyHistogram::kOverflowIndex);
    EXPECT_EQ(LatencyHistogram::bucket_index(1e300), LatencyHistogram::kOverflowIndex);
    // Denormal-range tiny values underflow rather than aliasing into bucket 0.
    EXPECT_EQ(LatencyHistogram::bucket_index(1e-300), LatencyHistogram::kUnderflowIndex);
}

// ---------------------------------------------------------------------------
// Recording and quantiles

TEST(ObsHistogram, EmptySnapshotIsAllZero) {
    LatencyHistogram hist;
    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.underflow, 0u);
    EXPECT_EQ(snap.overflow, 0u);
    EXPECT_EQ(snap.min, 0.0);
    EXPECT_EQ(snap.max, 0.0);
    EXPECT_TRUE(snap.buckets.empty());
    EXPECT_EQ(snap.quantile(0.5), 0.0);
    EXPECT_EQ(snap.mean(), 0.0);
}

TEST(ObsHistogram, MinMaxAreExact) {
    LatencyHistogram hist;
    hist.record(3.7);
    hist.record(0.0123);
    hist.record(41.5);
    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, 3u);
    EXPECT_DOUBLE_EQ(snap.min, 0.0123);
    EXPECT_DOUBLE_EQ(snap.max, 41.5);
    // The extreme quantiles stay within the error bound of the exact
    // extremes (they are bucket midpoints clamped into [min, max]).
    EXPECT_NEAR(snap.quantile(0.0), 0.0123, LatencyHistogram::kMaxRelativeError * 0.0123);
    EXPECT_NEAR(snap.quantile(1.0), 41.5, LatencyHistogram::kMaxRelativeError * 41.5);
}

TEST(ObsHistogram, QuantileErrorBoundAcrossMagnitudes) {
    // The headline guarantee: for any multiset, the histogram quantile is
    // within kMaxRelativeError of the exact nearest-rank sample.  Exercise
    // several distributions spanning many orders of magnitude.
    Rng rng(2024);
    std::vector<std::vector<double>> datasets;
    {
        std::vector<double> uniform;
        for (int i = 0; i < 5000; ++i) uniform.push_back(0.01 + 99.99 * rng.uniform());
        datasets.push_back(std::move(uniform));
    }
    {
        std::vector<double> lognormal;
        for (int i = 0; i < 5000; ++i) lognormal.push_back(std::exp(rng.normal(0.0, 3.0)));
        datasets.push_back(std::move(lognormal));
    }
    {
        std::vector<double> spiky;  // bimodal: fast path + slow tail
        for (int i = 0; i < 4000; ++i) spiky.push_back(0.05 + 0.01 * rng.uniform());
        for (int i = 0; i < 1000; ++i) spiky.push_back(50.0 + 10.0 * rng.uniform());
        datasets.push_back(std::move(spiky));
    }

    for (const auto& data : datasets) {
        LatencyHistogram hist;
        for (const double v : data) hist.record(v);
        const HistogramSnapshot snap = hist.snapshot();
        ASSERT_EQ(snap.count, data.size());

        std::vector<double> sorted = data;
        std::sort(sorted.begin(), sorted.end());
        for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}) {
            const double exact = quantile_nearest_rank(sorted, q);
            const double approx = snap.quantile(q);
            EXPECT_LE(std::abs(approx - exact),
                      LatencyHistogram::kMaxRelativeError * exact)
                << "q=" << q << " exact=" << exact << " approx=" << approx;
        }
    }
}

TEST(ObsHistogram, MeanErrorBound) {
    Rng rng(7);
    LatencyHistogram hist;
    double sum = 0.0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        const double v = std::exp(rng.normal(1.0, 2.0));
        hist.record(v);
        sum += v;
    }
    const double exact_mean = sum / n;
    EXPECT_LE(std::abs(hist.snapshot().mean() - exact_mean),
              LatencyHistogram::kMaxRelativeError * exact_mean);
}

TEST(ObsHistogram, UnderflowAndOverflowAreCountedAndQuantiled) {
    LatencyHistogram hist;
    hist.record(-1.0);                                      // underflow
    hist.record(0.0);                                       // underflow
    hist.record(std::numeric_limits<double>::quiet_NaN());  // underflow
    hist.record(5.0);
    hist.record(1e300);                                     // overflow
    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, 5u);
    EXPECT_EQ(snap.underflow, 3u);
    EXPECT_EQ(snap.overflow, 1u);
    // min/max track only finite recorded values' extremes: NaN is skipped,
    // the negative underflow and the overflow value are still real extremes.
    EXPECT_DOUBLE_EQ(snap.min, -1.0);
    EXPECT_DOUBLE_EQ(snap.max, 1e300);
    // Ranks 1..3 sit in the underflow region -> exact min; rank 5 is the
    // overflow -> exact max.
    EXPECT_DOUBLE_EQ(snap.quantile(0.2), -1.0);
    EXPECT_DOUBLE_EQ(snap.quantile(1.0), 1e300);
}

TEST(ObsHistogram, ResetClears) {
    LatencyHistogram hist;
    hist.record(1.0);
    hist.record(2.0);
    ASSERT_EQ(hist.count(), 2u);
    hist.reset();
    EXPECT_EQ(hist.count(), 0u);
    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.min, 0.0);
    EXPECT_EQ(snap.max, 0.0);
    hist.record(3.0);
    EXPECT_DOUBLE_EQ(hist.snapshot().min, 3.0);
}

// ---------------------------------------------------------------------------
// Snapshot determinism and merge algebra

TEST(ObsHistogram, SnapshotIsOrderIndependent) {
    // Byte-stability: the same multiset recorded in any order produces an
    // identical (operator==) snapshot.
    Rng rng(11);
    std::vector<double> values;
    for (int i = 0; i < 1000; ++i) values.push_back(std::exp(rng.normal(0.0, 2.0)));

    LatencyHistogram forward;
    for (const double v : values) forward.record(v);
    LatencyHistogram backward;
    for (auto it = values.rbegin(); it != values.rend(); ++it) backward.record(*it);
    LatencyHistogram shuffled;
    std::vector<double> mixed = values;
    rng.shuffle(mixed);
    for (const double v : mixed) shuffled.record(v);

    EXPECT_EQ(forward.snapshot(), backward.snapshot());
    EXPECT_EQ(forward.snapshot(), shuffled.snapshot());
}

TEST(ObsHistogram, MergeIsAssociativeAndCommutative) {
    Rng rng(13);
    std::vector<std::vector<double>> parts(3);
    for (auto& part : parts)
        for (int i = 0; i < 400; ++i) part.push_back(std::exp(rng.normal(0.0, 2.0)));

    const auto snap_of = [](const std::vector<double>& vs) {
        LatencyHistogram h;
        for (const double v : vs) h.record(v);
        return h.snapshot();
    };
    const HistogramSnapshot a = snap_of(parts[0]);
    const HistogramSnapshot b = snap_of(parts[1]);
    const HistogramSnapshot c = snap_of(parts[2]);

    // (a+b)+c == a+(b+c)
    HistogramSnapshot left = a;
    left.merge(b);
    left.merge(c);
    HistogramSnapshot bc = b;
    bc.merge(c);
    HistogramSnapshot right = a;
    right.merge(bc);
    EXPECT_EQ(left, right);

    // a+b == b+a
    HistogramSnapshot ab = a;
    ab.merge(b);
    HistogramSnapshot ba = b;
    ba.merge(a);
    EXPECT_EQ(ab, ba);

    // Merged equals recorded-together: merge is exact, not approximate.
    std::vector<double> all;
    for (const auto& part : parts) all.insert(all.end(), part.begin(), part.end());
    EXPECT_EQ(left, snap_of(all));

    // Merging an empty snapshot is the identity.
    HistogramSnapshot with_empty = a;
    with_empty.merge(HistogramSnapshot{});
    EXPECT_EQ(with_empty, a);
}

TEST(ObsHistogram, ConcurrentRecordMatchesSequential) {
    // N threads hammer one histogram with disjoint slices of a fixed
    // multiset; the result must be identical to single-threaded recording.
    // Under TSan this is also the subsystem's data-race check.
    Rng rng(17);
    std::vector<double> values;
    const int per_thread = 4000;
    const int threads = 4;
    for (int i = 0; i < per_thread * threads; ++i)
        values.push_back(std::exp(rng.normal(0.0, 2.5)));

    LatencyHistogram sequential;
    for (const double v : values) sequential.record(v);

    LatencyHistogram concurrent;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&concurrent, &values, t] {
            for (int i = 0; i < per_thread; ++i)
                concurrent.record(values[static_cast<std::size_t>(t * per_thread + i)]);
        });
    }
    for (auto& w : workers) w.join();

    EXPECT_EQ(concurrent.snapshot(), sequential.snapshot());
}

// ---------------------------------------------------------------------------
// Gauge

TEST(ObsGauge, SetAndAdd) {
    Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(4.0);
    EXPECT_DOUBLE_EQ(g.value(), 4.0);
    g.add(-1.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(ObsGauge, ConcurrentAddLosesNothing) {
    Gauge g;
    std::vector<std::thread> workers;
    const int threads = 4;
    const int adds = 10000;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&g] {
            for (int i = 0; i < adds; ++i) g.add(1.0);
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(threads * adds));
}

// ---------------------------------------------------------------------------
// Registry

TEST(ObsRegistry, FindOrCreateReturnsStableReferences) {
    MetricsRegistry reg;
    LatencyHistogram& h1 = reg.histogram("lat");
    LatencyHistogram& h2 = reg.histogram("lat");
    EXPECT_EQ(&h1, &h2);
    LatencyHistogram& other = reg.histogram("lat", {{"shard", "1"}});
    EXPECT_NE(&h1, &other);
    Gauge& g1 = reg.gauge("depth");
    Gauge& g2 = reg.gauge("depth");
    EXPECT_EQ(&g1, &g2);
}

TEST(ObsRegistry, LabelsAreCanonicalized) {
    MetricsRegistry reg;
    // Same label set in different orders must resolve to one instrument.
    Gauge& a = reg.gauge("g", {{"b", "2"}, {"a", "1"}});
    Gauge& b = reg.gauge("g", {{"a", "1"}, {"b", "2"}});
    EXPECT_EQ(&a, &b);
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.gauges.size(), 1u);
    const Labels expected{{"a", "1"}, {"b", "2"}};
    EXPECT_EQ(snap.gauges[0].labels, expected);
}

TEST(ObsRegistry, SnapshotIsSortedAndComplete) {
    MetricsRegistry reg;
    reg.histogram("z/lat").record(1.0);
    reg.histogram("a/lat").record(2.0);
    reg.gauge("m/depth").set(3.0);
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.histograms.size(), 2u);
    EXPECT_EQ(snap.histograms[0].name, "a/lat");
    EXPECT_EQ(snap.histograms[1].name, "z/lat");
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].value, 3.0);
    EXPECT_TRUE(snap.counters.empty());
}

TEST(ObsRegistry, DeltaSinceLast) {
    MetricsRegistry reg;
    LatencyHistogram& lat = reg.histogram("lat");
    lat.record(1.0);
    lat.record(2.0);

    MetricsSnapshot first = reg.delta_since_last();
    ASSERT_EQ(first.histograms.size(), 1u);
    EXPECT_EQ(first.histograms[0].hist.count, 2u);

    // No activity -> empty delta (zero-activity entries are dropped).
    const MetricsSnapshot quiet = reg.delta_since_last();
    EXPECT_TRUE(quiet.histograms.empty());

    lat.record(3.0);
    const MetricsSnapshot second = reg.delta_since_last();
    ASSERT_EQ(second.histograms.size(), 1u);
    EXPECT_EQ(second.histograms[0].hist.count, 1u);
}

TEST(ObsRegistry, ResetZeroesButKeepsNames) {
    MetricsRegistry reg;
    reg.histogram("lat").record(5.0);
    reg.gauge("depth").set(7.0);
    reg.reset();
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].hist.count, 0u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].value, 0.0);
}

TEST(ObsRegistry, ConcurrentFindOrCreateAndRecord) {
    // Races registry lookups against recording; TSan checks the lock
    // discipline, the assertion checks nothing is lost.
    MetricsRegistry reg;
    const int threads = 4;
    const int iters = 2000;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&reg, t] {
            for (int i = 0; i < iters; ++i) {
                reg.histogram("shared").record(1.0);
                reg.histogram("per/" + std::to_string(t)).record(2.0);
            }
        });
    }
    for (auto& w : workers) w.join();
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.histograms.size(), static_cast<std::size_t>(threads) + 1);
    std::uint64_t total = 0;
    for (const auto& h : snap.histograms) total += h.hist.count;
    EXPECT_EQ(total, static_cast<std::uint64_t>(2 * threads * iters));
}

// ---------------------------------------------------------------------------
// Snapshot merge / delta semantics

TEST(ObsSnapshot, MergeAddsCountersMergesHistogramsOverwritesGauges) {
    MetricsSnapshot a;
    a.counters.push_back({"c", {}, 3});
    a.gauges.push_back({"g", {}, 1.0});
    LatencyHistogram ha;
    ha.record(1.0);
    a.histograms.push_back({"h", {}, ha.snapshot()});

    MetricsSnapshot b;
    b.counters.push_back({"c", {}, 4});
    b.counters.push_back({"new", {}, 1});
    b.gauges.push_back({"g", {}, 9.0});
    LatencyHistogram hb;
    hb.record(2.0);
    b.histograms.push_back({"h", {}, hb.snapshot()});

    a.merge(b);
    a.sort();
    ASSERT_EQ(a.counters.size(), 2u);
    EXPECT_EQ(a.counters[0].value, 7u);  // "c": 3+4
    EXPECT_EQ(a.counters[1].value, 1u);  // "new"
    ASSERT_EQ(a.gauges.size(), 1u);
    EXPECT_EQ(a.gauges[0].value, 9.0);   // incoming value wins
    ASSERT_EQ(a.histograms.size(), 1u);
    EXPECT_EQ(a.histograms[0].hist.count, 2u);
    EXPECT_DOUBLE_EQ(a.histograms[0].hist.min, 1.0);
    EXPECT_DOUBLE_EQ(a.histograms[0].hist.max, 2.0);
}

TEST(ObsSnapshot, DeltaDropsIdleEntries) {
    LatencyHistogram hist;
    hist.record(1.0);
    MetricsSnapshot before;
    before.counters.push_back({"busy", {}, 1});
    before.counters.push_back({"idle", {}, 5});
    before.histograms.push_back({"h", {}, hist.snapshot()});

    hist.record(2.0);
    MetricsSnapshot after;
    after.counters.push_back({"busy", {}, 4});
    after.counters.push_back({"idle", {}, 5});
    after.gauges.push_back({"g", {}, 2.5});
    after.histograms.push_back({"h", {}, hist.snapshot()});

    const MetricsSnapshot delta = snapshot_delta(before, after);
    ASSERT_EQ(delta.counters.size(), 1u);
    EXPECT_EQ(delta.counters[0].name, "busy");
    EXPECT_EQ(delta.counters[0].value, 3u);
    ASSERT_EQ(delta.histograms.size(), 1u);
    EXPECT_EQ(delta.histograms[0].hist.count, 1u);
    ASSERT_EQ(delta.gauges.size(), 1u);
    EXPECT_EQ(delta.gauges[0].value, 2.5);
}

// ---------------------------------------------------------------------------
// Macros — only meaningful when the recording gate is on; in a
// -DTSCHED_OBS=OFF build (the obs-off CI leg runs this whole suite) the
// macro contract is covered by test_obs_off instead.

#if TSCHED_OBS_ON
TEST(ObsMacros, RecordAndPhaseFeedTheGlobalRegistry) {
    const MetricsSnapshot before = registry().snapshot();
    TSCHED_OBS_RECORD("obs_test/record_ms", 2.5);
    {
        TSCHED_OBS_PHASE("obs_test/phase_ms");
    }
    TSCHED_OBS_GAUGE_SET("obs_test/gauge", 11);
    TSCHED_OBS_GAUGE_ADD("obs_test/gauge", 1);
    const MetricsSnapshot after = registry().snapshot();
    const MetricsSnapshot delta = snapshot_delta(before, after);

    bool saw_record = false;
    bool saw_phase = false;
    for (const auto& h : delta.histograms) {
        if (h.name == "obs_test/record_ms") {
            saw_record = true;
            EXPECT_EQ(h.hist.count, 1u);
            EXPECT_DOUBLE_EQ(h.hist.min, 2.5);
        }
        if (h.name == "obs_test/phase_ms") {
            saw_phase = true;
            EXPECT_GE(h.hist.count, 1u);
        }
    }
    EXPECT_TRUE(saw_record);
    EXPECT_TRUE(saw_phase);

    bool saw_gauge = false;
    for (const auto& g : after.gauges) {
        if (g.name == "obs_test/gauge") {
            saw_gauge = true;
            EXPECT_DOUBLE_EQ(g.value, 12.0);
        }
    }
    EXPECT_TRUE(saw_gauge);
}
#endif  // TSCHED_OBS_ON

// ---------------------------------------------------------------------------
// Exporters

MetricsSnapshot example_snapshot() {
    MetricsSnapshot snap;
    snap.counters.push_back({"serve/requests", {}, 42});
    snap.gauges.push_back({"pool/queue-depth", {}, 3.5});
    snap.gauges.push_back({"cache/occupancy", {{"shard", "0"}}, 10.0});
    snap.gauges.push_back({"cache/occupancy", {{"shard", "1"}}, 12.0});
    LatencyHistogram hist;
    hist.record(0.5);
    hist.record(1.5);
    hist.record(1.6);
    hist.record(250.0);
    snap.histograms.push_back({"serve/latency/total_ms", {}, hist.snapshot()});
    snap.sort();
    return snap;
}

TEST(ObsExport, PrometheusShape) {
    const std::string text = to_prometheus(example_snapshot());

    // Sanitized, prefixed names; one TYPE header per metric.
    EXPECT_NE(text.find("# TYPE tsched_serve_requests counter"), std::string::npos);
    EXPECT_NE(text.find("tsched_serve_requests 42"), std::string::npos);
    EXPECT_NE(text.find("# TYPE tsched_pool_queue_depth gauge"), std::string::npos);
    EXPECT_NE(text.find("tsched_cache_occupancy{shard=\"1\"} 12"), std::string::npos);
    EXPECT_NE(text.find("# TYPE tsched_serve_latency_total_ms histogram"),
              std::string::npos);
    // The mandatory +Inf bucket equals _count.
    EXPECT_NE(text.find("tsched_serve_latency_total_ms_bucket{le=\"+Inf\"} 4"),
              std::string::npos);
    EXPECT_NE(text.find("tsched_serve_latency_total_ms_count 4"), std::string::npos);

    // Cumulative bucket counts never decrease.
    std::istringstream lines(text);
    std::string line;
    std::uint64_t prev = 0;
    while (std::getline(lines, line)) {
        if (line.rfind("tsched_serve_latency_total_ms_bucket", 0) != 0) continue;
        const auto space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos);
        const auto cumulative = static_cast<std::uint64_t>(
            std::stoull(line.substr(space + 1)));
        EXPECT_GE(cumulative, prev) << line;
        prev = cumulative;
    }
    EXPECT_EQ(prev, 4u);
}

TEST(ObsExport, JsonShapeAndQuantiles) {
    const MetricsSnapshot snap = example_snapshot();
    const std::string json = to_json(snap);
    EXPECT_NE(json.find("\"schema\":1"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"serve/requests\""), std::string::npos);
    EXPECT_NE(json.find("\"value\":42"), std::string::npos);
    EXPECT_NE(json.find("\"labels\":{\"shard\":\"1\"}"), std::string::npos);
    EXPECT_NE(json.find("\"count\":4"), std::string::npos);
    for (const char* key : {"\"p50\":", "\"p95\":", "\"p99\":", "\"p999\":",
                            "\"min\":", "\"max\":", "\"mean\":", "\"buckets\":["})
        EXPECT_NE(json.find(key), std::string::npos) << key;
}

TEST(ObsExport, DeterministicAcrossEqualSnapshots) {
    // Equal snapshots (even built in a different insertion order) export to
    // byte-identical documents in both formats.
    MetricsSnapshot reordered;
    const MetricsSnapshot canonical = example_snapshot();
    reordered.gauges.push_back({"cache/occupancy", {{"shard", "1"}}, 12.0});
    reordered.gauges.push_back({"pool/queue-depth", {}, 3.5});
    reordered.gauges.push_back({"cache/occupancy", {{"shard", "0"}}, 10.0});
    reordered.counters = canonical.counters;
    reordered.histograms = canonical.histograms;
    reordered.sort();
    ASSERT_EQ(reordered, canonical);
    EXPECT_EQ(to_prometheus(reordered), to_prometheus(canonical));
    EXPECT_EQ(to_json(reordered), to_json(canonical));
}

// ---------------------------------------------------------------------------
// Reporter

class ObsReporter : public ::testing::Test {
protected:
    void SetUp() override {
        path_ = (std::filesystem::temp_directory_path() / "tsched_obs_reporter_test.out")
                    .string();
        std::filesystem::remove(path_);
    }
    void TearDown() override { std::filesystem::remove(path_); }

    [[nodiscard]] std::string slurp() const {
        std::ifstream in(path_);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    }

    std::string path_;
};

TEST_F(ObsReporter, JsonlAppendsOneDocumentPerFlush) {
    ReporterOptions options;
    options.path = path_;
    options.format = ReporterOptions::Format::kJson;
    options.interval_ms = 0;  // no timer; we drive flushes by hand

    MetricsRegistry reg;
    MetricsReporter reporter(options, [&reg] { return reg.snapshot(); });

    reg.histogram("lat").record(1.0);
    ASSERT_TRUE(reporter.flush());
    reg.histogram("lat").record(2.0);
    ASSERT_TRUE(reporter.flush());
    EXPECT_EQ(reporter.flush_count(), 2u);

    std::istringstream lines(slurp());
    std::string line;
    std::size_t n = 0;
    while (std::getline(lines, line)) {
        EXPECT_EQ(line.rfind("{\"schema\":1", 0), 0u) << line;
        ++n;
    }
    EXPECT_EQ(n, 2u);
}

TEST_F(ObsReporter, JsonlTruncatesStaleFileOnFirstFlush) {
    {
        std::ofstream stale(path_);
        stale << "stale content from a previous run\n";
    }
    ReporterOptions options;
    options.path = path_;
    options.interval_ms = 0;
    MetricsRegistry reg;
    MetricsReporter reporter(options, [&reg] { return reg.snapshot(); });
    ASSERT_TRUE(reporter.flush());
    const std::string content = slurp();
    EXPECT_EQ(content.find("stale"), std::string::npos);
    EXPECT_EQ(content.rfind("{\"schema\":1", 0), 0u);
}

TEST_F(ObsReporter, PrometheusModeRewritesInPlace) {
    ReporterOptions options;
    options.path = path_;
    options.format = ReporterOptions::Format::kPrometheus;
    options.interval_ms = 0;

    MetricsRegistry reg;
    MetricsReporter reporter(options, [&reg] { return reg.snapshot(); });
    reg.gauge("depth").set(1.0);
    ASSERT_TRUE(reporter.flush());
    reg.gauge("depth").set(2.0);
    ASSERT_TRUE(reporter.flush());

    // Scrape-file model: latest state only, not a history.
    const std::string content = slurp();
    EXPECT_NE(content.find("tsched_depth 2"), std::string::npos);
    EXPECT_EQ(content.find("tsched_depth 1"), std::string::npos);
}

TEST_F(ObsReporter, BackgroundLoopFlushesAndStopIsIdempotent) {
    ReporterOptions options;
    options.path = path_;
    options.interval_ms = 5;

    std::atomic<int> pulls{0};
    MetricsReporter reporter(options, [&pulls] {
        pulls.fetch_add(1, std::memory_order_relaxed);
        return MetricsSnapshot{};
    });
    reporter.start();
    // stop() joins and runs the final flush, so at least one write lands
    // regardless of scheduling.
    reporter.stop();
    reporter.stop();  // idempotent
    EXPECT_GE(reporter.flush_count(), 1u);
    EXPECT_GE(pulls.load(), 1);
    EXPECT_TRUE(std::filesystem::exists(path_));
}

TEST_F(ObsReporter, EmptyPathNeverStartsOrWrites) {
    ReporterOptions options;  // path empty
    MetricsReporter reporter(options, [] { return MetricsSnapshot{}; });
    reporter.start();  // no-op
    reporter.stop();
    EXPECT_EQ(reporter.flush_count(), 0u);
}

TEST_F(ObsReporter, ConcurrentFlushesSerialize) {
    ReporterOptions options;
    options.path = path_;
    options.interval_ms = 0;
    MetricsRegistry reg;
    reg.histogram("lat").record(1.0);
    MetricsReporter reporter(options, [&reg] { return reg.snapshot(); });

    const int threads = 4;
    const int flushes = 25;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&reporter] {
            for (int i = 0; i < flushes; ++i) EXPECT_TRUE(reporter.flush());
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(reporter.flush_count(), static_cast<std::uint64_t>(threads * flushes));

    // Every line is a whole document: no torn interleaved writes.
    std::istringstream lines(slurp());
    std::string line;
    std::size_t n = 0;
    while (std::getline(lines, line)) {
        EXPECT_EQ(line.rfind("{\"schema\":1", 0), 0u);
        EXPECT_EQ(line.back(), '}');
        ++n;
    }
    EXPECT_EQ(n, static_cast<std::size_t>(threads * flushes));
}

}  // namespace
}  // namespace tsched::obs
