// Tests for the real threaded executor (sim/executor.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/registry.hpp"
#include "sim/executor.hpp"
#include "workload/instance.hpp"

namespace tsched {
namespace {

Problem sample_problem(std::uint64_t seed, std::size_t procs) {
    workload::InstanceParams params;
    params.size = 40;
    params.num_procs = procs;
    return workload::make_instance(params, seed);
}

TEST(Executor, RunsEveryPlacementOnce) {
    const Problem problem = sample_problem(1, 4);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    std::atomic<int> runs{0};
    const auto report = sim::execute_threaded(schedule, problem.dag(),
                                              [&](TaskId, ProcId) { runs.fetch_add(1); });
    EXPECT_EQ(runs.load(), static_cast<int>(problem.num_tasks()));
    std::size_t total = 0;
    for (const std::size_t c : report.placements_run) total += c;
    EXPECT_EQ(total, problem.num_tasks());
    EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(Executor, RespectsPrecedence) {
    const Problem problem = sample_problem(2, 4);
    const Schedule schedule = make_scheduler("ils")->schedule(problem);
    std::mutex mutex;
    std::vector<TaskId> completion_order;
    const auto report = sim::execute_threaded(schedule, problem.dag(), [&](TaskId v, ProcId) {
        std::lock_guard lock(mutex);
        completion_order.push_back(v);
    });
    (void)report;
    // Every task's predecessors appear before it in the observed body-start
    // order (bodies start only after all predecessors' bodies finished).
    std::vector<std::size_t> pos(problem.num_tasks(), 0);
    for (std::size_t i = 0; i < completion_order.size(); ++i) {
        pos[static_cast<std::size_t>(completion_order[i])] = i;
    }
    for (std::size_t v = 0; v < problem.num_tasks(); ++v) {
        for (const AdjEdge& e : problem.dag().predecessors(static_cast<TaskId>(v))) {
            EXPECT_LT(pos[static_cast<std::size_t>(e.task)], pos[v]);
        }
    }
}

TEST(Executor, RunsDuplicatesToo) {
    const Problem problem = [&] {
        workload::InstanceParams params;
        params.size = 40;
        params.num_procs = 4;
        params.ccr = 8.0;
        return workload::make_instance(params, 7);
    }();
    const Schedule schedule = make_scheduler("dsh")->schedule(problem);
    ASSERT_GT(schedule.num_duplicates(), 0u);  // scenario sanity
    std::atomic<int> runs{0};
    (void)sim::execute_threaded(schedule, problem.dag(),
                                [&](TaskId, ProcId) { runs.fetch_add(1); });
    EXPECT_EQ(runs.load(),
              static_cast<int>(problem.num_tasks() + schedule.num_duplicates()));
}

TEST(Executor, ReportsCompletionForEveryTask) {
    const Problem problem = sample_problem(3, 2);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    const auto report =
        sim::execute_threaded(schedule, problem.dag(), [](TaskId, ProcId) {});
    ASSERT_EQ(report.task_completion.size(), problem.num_tasks());
    for (const double t : report.task_completion) EXPECT_GE(t, 0.0);
}

TEST(Executor, PropagatesBodyExceptions) {
    const Problem problem = sample_problem(4, 2);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    EXPECT_THROW(
        (void)sim::execute_threaded(schedule, problem.dag(),
                                    [](TaskId v, ProcId) {
                                        if (v == 5) throw std::runtime_error("task failed");
                                    }),
        std::runtime_error);
}

TEST(Executor, RejectsIncompleteSchedule) {
    const Problem problem = sample_problem(5, 2);
    Schedule empty(problem.num_tasks(), problem.num_procs());
    EXPECT_THROW((void)sim::execute_threaded(empty, problem.dag(), [](TaskId, ProcId) {}),
                 std::invalid_argument);
}

TEST(Executor, RejectsMismatchedDag) {
    const Problem problem = sample_problem(6, 2);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    Dag other(3);
    EXPECT_THROW((void)sim::execute_threaded(schedule, other, [](TaskId, ProcId) {}),
                 std::invalid_argument);
}

TEST(Executor, ComputesRealWorkCorrectly) {
    // End-to-end: execute a schedule whose bodies do real arithmetic and
    // verify the dataflow result (sum over a reduction tree).
    const Dag dag = [&] {
        Dag d;
        for (int i = 0; i < 7; ++i) d.add_task(1.0);  // binary in-tree: 4 leaves
        d.add_edge(3, 1, 1.0);
        d.add_edge(4, 1, 1.0);
        d.add_edge(5, 2, 1.0);
        d.add_edge(6, 2, 1.0);
        d.add_edge(1, 0, 1.0);
        d.add_edge(2, 0, 1.0);
        return d;
    }();
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs = CostMatrix::uniform(dag, 2);
    const Problem problem(dag, std::move(machine), std::move(costs));
    const Schedule schedule = make_scheduler("heft")->schedule(problem);

    std::vector<std::atomic<long>> value(7);
    for (auto& v : value) v.store(0);
    (void)sim::execute_threaded(schedule, dag, [&](TaskId v, ProcId) {
        if (dag.predecessors(v).empty()) {
            value[static_cast<std::size_t>(v)].store(v);  // leaves: own id
        } else {
            long sum = 0;
            for (const AdjEdge& e : dag.predecessors(v)) {
                sum += value[static_cast<std::size_t>(e.task)].load();
            }
            value[static_cast<std::size_t>(v)].store(sum);
        }
    });
    EXPECT_EQ(value[0].load(), 3 + 4 + 5 + 6);
}

}  // namespace
}  // namespace tsched
