// Tests for the real threaded executor (sim/executor.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/registry.hpp"
#include "sim/executor.hpp"
#include "workload/instance.hpp"

namespace tsched {
namespace {

Problem sample_problem(std::uint64_t seed, std::size_t procs) {
    workload::InstanceParams params;
    params.size = 40;
    params.num_procs = procs;
    return workload::make_instance(params, seed);
}

TEST(Executor, RunsEveryPlacementOnce) {
    const Problem problem = sample_problem(1, 4);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    std::atomic<int> runs{0};
    const auto report = sim::execute_threaded(schedule, problem.dag(),
                                              [&](TaskId, ProcId) { runs.fetch_add(1); });
    EXPECT_EQ(runs.load(), static_cast<int>(problem.num_tasks()));
    std::size_t total = 0;
    for (const std::size_t c : report.placements_run) total += c;
    EXPECT_EQ(total, problem.num_tasks());
    EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(Executor, RespectsPrecedence) {
    const Problem problem = sample_problem(2, 4);
    const Schedule schedule = make_scheduler("ils")->schedule(problem);
    std::mutex mutex;
    std::vector<TaskId> completion_order;
    const auto report = sim::execute_threaded(schedule, problem.dag(), [&](TaskId v, ProcId) {
        std::lock_guard lock(mutex);
        completion_order.push_back(v);
    });
    (void)report;
    // Every task's predecessors appear before it in the observed body-start
    // order (bodies start only after all predecessors' bodies finished).
    std::vector<std::size_t> pos(problem.num_tasks(), 0);
    for (std::size_t i = 0; i < completion_order.size(); ++i) {
        pos[static_cast<std::size_t>(completion_order[i])] = i;
    }
    for (std::size_t v = 0; v < problem.num_tasks(); ++v) {
        for (const AdjEdge& e : problem.dag().predecessors(static_cast<TaskId>(v))) {
            EXPECT_LT(pos[static_cast<std::size_t>(e.task)], pos[v]);
        }
    }
}

TEST(Executor, RunsDuplicatesToo) {
    const Problem problem = [&] {
        workload::InstanceParams params;
        params.size = 40;
        params.num_procs = 4;
        params.ccr = 8.0;
        return workload::make_instance(params, 7);
    }();
    const Schedule schedule = make_scheduler("dsh")->schedule(problem);
    ASSERT_GT(schedule.num_duplicates(), 0u);  // scenario sanity
    std::atomic<int> runs{0};
    (void)sim::execute_threaded(schedule, problem.dag(),
                                [&](TaskId, ProcId) { runs.fetch_add(1); });
    EXPECT_EQ(runs.load(),
              static_cast<int>(problem.num_tasks() + schedule.num_duplicates()));
}

TEST(Executor, ReportsCompletionForEveryTask) {
    const Problem problem = sample_problem(3, 2);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    const auto report =
        sim::execute_threaded(schedule, problem.dag(), [](TaskId, ProcId) {});
    ASSERT_EQ(report.task_completion.size(), problem.num_tasks());
    for (const double t : report.task_completion) EXPECT_GE(t, 0.0);
}

TEST(Executor, PropagatesBodyExceptions) {
    const Problem problem = sample_problem(4, 2);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    EXPECT_THROW(
        (void)sim::execute_threaded(schedule, problem.dag(),
                                    [](TaskId v, ProcId) {
                                        if (v == 5) throw std::runtime_error("task failed");
                                    }),
        std::runtime_error);
}

TEST(Executor, AllWorkersExitBeforeThrowPropagates) {
    // The throw must happen after every worker joined: no body can still be
    // in flight once execute_threaded returns control to the caller.
    const Problem problem = sample_problem(4, 4);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    std::atomic<int> in_flight{0};
    EXPECT_THROW((void)sim::execute_threaded(schedule, problem.dag(),
                                             [&](TaskId v, ProcId) {
                                                 in_flight.fetch_add(1);
                                                 if (v == 5) {
                                                     in_flight.fetch_sub(1);
                                                     throw std::runtime_error("boom");
                                                 }
                                                 in_flight.fetch_sub(1);
                                             }),
                 std::runtime_error);
    EXPECT_EQ(in_flight.load(), 0);
}

TEST(Executor, RetriesTransientFailures) {
    const Problem problem = sample_problem(11, 4);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    std::atomic<int> attempts{0};
    sim::ExecutorOptions options;
    options.max_attempts = 3;
    options.retry_backoff = std::chrono::microseconds(10);
    const auto report = sim::execute_threaded(
        schedule, problem.dag(),
        [&](TaskId v, ProcId) {
            if (v == 5 && attempts.fetch_add(1) < 2) throw std::runtime_error("flaky");
        },
        options);
    EXPECT_EQ(attempts.load(), 3);  // two failures, then success
    EXPECT_EQ(report.retries, 2u);
    EXPECT_EQ(report.migrations, 0u);
    std::size_t total = 0;
    for (const std::size_t c : report.placements_run) total += c;
    EXPECT_EQ(total, problem.num_tasks());
}

TEST(Executor, ExhaustedRetriesPropagate) {
    const Problem problem = sample_problem(12, 2);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    std::atomic<int> attempts{0};
    sim::ExecutorOptions options;
    options.max_attempts = 3;
    EXPECT_THROW((void)sim::execute_threaded(schedule, problem.dag(),
                                             [&](TaskId v, ProcId) {
                                                 if (v == 5) {
                                                     attempts.fetch_add(1);
                                                     throw std::runtime_error("dead");
                                                 }
                                             },
                                             options),
                 std::runtime_error);
    EXPECT_EQ(attempts.load(), 3);
}

TEST(Executor, QuarantinesFailingWorkerAndMigratesItsQueue) {
    const Problem problem = sample_problem(13, 4);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    // Pick a processor that actually carries work.
    ProcId bad = 0;
    for (std::size_t p = 0; p < problem.num_procs(); ++p) {
        if (!schedule.processor_timeline(static_cast<ProcId>(p)).empty()) {
            bad = static_cast<ProcId>(p);
            break;
        }
    }
    sim::ExecutorOptions options;
    options.reassign_on_failure = true;
    std::atomic<int> runs{0};
    const auto report = sim::execute_threaded(
        schedule, problem.dag(),
        [&](TaskId, ProcId p) {
            if (p == bad) throw std::runtime_error("broken worker");
            runs.fetch_add(1);
        },
        options);
    // Every placement still ran exactly once, just not on the bad worker.
    EXPECT_EQ(runs.load(), static_cast<int>(problem.num_tasks()));
    EXPECT_TRUE(report.worker_quarantined[static_cast<std::size_t>(bad)]);
    EXPECT_EQ(report.placements_run[static_cast<std::size_t>(bad)], 0u);
    EXPECT_EQ(report.migrations,
              schedule.processor_timeline(bad).size());
    for (const double t : report.task_completion) EXPECT_GE(t, 0.0);
}

TEST(Executor, RejectsZeroAttempts) {
    const Problem problem = sample_problem(14, 2);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    sim::ExecutorOptions options;
    options.max_attempts = 0;
    EXPECT_THROW((void)sim::execute_threaded(schedule, problem.dag(),
                                             [](TaskId, ProcId) {}, options),
                 std::invalid_argument);
}

TEST(Executor, RejectsIncompleteSchedule) {
    const Problem problem = sample_problem(5, 2);
    Schedule empty(problem.num_tasks(), problem.num_procs());
    EXPECT_THROW((void)sim::execute_threaded(empty, problem.dag(), [](TaskId, ProcId) {}),
                 std::invalid_argument);
}

TEST(Executor, RejectsMismatchedDag) {
    const Problem problem = sample_problem(6, 2);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    Dag other(3);
    EXPECT_THROW((void)sim::execute_threaded(schedule, other, [](TaskId, ProcId) {}),
                 std::invalid_argument);
}

TEST(Executor, ComputesRealWorkCorrectly) {
    // End-to-end: execute a schedule whose bodies do real arithmetic and
    // verify the dataflow result (sum over a reduction tree).
    const Dag dag = [&] {
        Dag d;
        for (int i = 0; i < 7; ++i) d.add_task(1.0);  // binary in-tree: 4 leaves
        d.add_edge(3, 1, 1.0);
        d.add_edge(4, 1, 1.0);
        d.add_edge(5, 2, 1.0);
        d.add_edge(6, 2, 1.0);
        d.add_edge(1, 0, 1.0);
        d.add_edge(2, 0, 1.0);
        return d;
    }();
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs = CostMatrix::uniform(dag, 2);
    const Problem problem(dag, std::move(machine), std::move(costs));
    const Schedule schedule = make_scheduler("heft")->schedule(problem);

    std::vector<std::atomic<long>> value(7);
    for (auto& v : value) v.store(0);
    (void)sim::execute_threaded(schedule, dag, [&](TaskId v, ProcId) {
        if (dag.predecessors(v).empty()) {
            value[static_cast<std::size_t>(v)].store(v);  // leaves: own id
        } else {
            long sum = 0;
            for (const AdjEdge& e : dag.predecessors(v)) {
                sum += value[static_cast<std::size_t>(e.task)].load();
            }
            value[static_cast<std::size_t>(v)].store(sum);
        }
    });
    EXPECT_EQ(value[0].load(), 3 + 4 + 5 + 6);
}

}  // namespace
}  // namespace tsched
