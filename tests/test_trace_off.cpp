// OFF-mode compilation test: this translation unit is built with
// TSCHED_TRACE_FORCE_OFF (see tests/CMakeLists.txt), so every trace macro
// must expand to a no-op — it must still compile cleanly in expression and
// statement positions, and must leave the process-wide registry untouched.
// This is the guarantee that a -DTSCHED_TRACE=OFF build carries zero
// hot-path cost: the macros don't even name the registry.
#include <gtest/gtest.h>

#include "trace/trace.hpp"

#if TSCHED_TRACE_ON
#error "test_trace_off must be compiled with TSCHED_TRACE_FORCE_OFF"
#endif

namespace tsched {
namespace {

// A representative instrumented function: spans, counts, and a counted loop,
// as the scheduler hot paths use them.
double instrumented_work(std::size_t n) {
    TSCHED_SPAN("off_test/work");
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        TSCHED_COUNT("off_test/iterations");
        acc += static_cast<double>(i);
        if (i % 2 == 0) {
            TSCHED_SPAN("off_test/even");
            TSCHED_COUNT_ADD("off_test/even_sum", i);
        }
    }
    return acc;
}

TEST(TraceOff, MacrosCompileToNoOpsAndRecordNothing) {
    const trace::Snapshot before = trace::registry().snapshot();
    EXPECT_DOUBLE_EQ(instrumented_work(101), 5050.0);
    const trace::Snapshot after = trace::registry().snapshot();

    // Nothing with an off_test/ prefix may have been registered.
    for (const auto& c : after.counters) {
        EXPECT_EQ(c.name.rfind("off_test/", 0), std::string::npos) << c.name;
    }
    for (const auto& s : after.spans) {
        EXPECT_EQ(s.name.rfind("off_test/", 0), std::string::npos) << s.name;
    }
    const trace::Snapshot delta = trace::snapshot_delta(before, after);
    EXPECT_TRUE(delta.counters.empty());
    EXPECT_TRUE(delta.spans.empty());
}

TEST(TraceOff, RegistryItselfStillWorksWhenMacrosAreOff) {
    // The registry API is independent of the macro gate — tools that read
    // snapshots must keep working in an untraced build.
    trace::Registry reg;
    reg.counter("direct").add(2);
    const trace::Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].value, 2u);
}

}  // namespace
}  // namespace tsched
