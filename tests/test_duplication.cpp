// Tests for the duplication heuristics (DSH, BTDH, ILS-D): crafted cases
// where duplication provably helps, plus validity sweeps.
#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "sched/duplication.hpp"
#include "sched/heft.hpp"
#include "sched/validate.hpp"
#include "workload/instance.hpp"

namespace tsched {
namespace {

/// One producer feeding `width` consumers with expensive edges: the textbook
/// duplication scenario.  Exec cost 1 everywhere; each edge's comm cost is 10
/// across processors.  Without duplication at most one consumer avoids the
/// transfer; with duplication every processor can host its own copy of the
/// producer and start its consumers at t = 2.
Problem fan_out_problem(std::size_t width, std::size_t procs) {
    Dag dag;
    const TaskId src = dag.add_task(1.0, "src");
    for (std::size_t i = 0; i < width; ++i) {
        const TaskId c = dag.add_task(1.0);
        dag.add_edge(src, c, 10.0);
    }
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(procs, links);
    CostMatrix costs = CostMatrix::uniform(dag, procs);
    return Problem(std::move(dag), std::move(machine), std::move(costs));
}

TEST(Dsh, BeatsHeftOnFanOut) {
    const Problem problem = fan_out_problem(8, 4);
    const Schedule heft = HeftScheduler().schedule(problem);
    const Schedule dsh = DshScheduler().schedule(problem);
    ASSERT_TRUE(validate(dsh, problem).ok);
    EXPECT_GT(dsh.num_duplicates(), 0u);
    EXPECT_LT(dsh.makespan(), heft.makespan());
    // With a copy of src on every processor: 1 (copy) + ceil(8/4) consumers.
    EXPECT_DOUBLE_EQ(dsh.makespan(), 3.0);
}

TEST(Btdh, BeatsHeftOnFanOut) {
    const Problem problem = fan_out_problem(8, 4);
    const Schedule heft = HeftScheduler().schedule(problem);
    const Schedule btdh = BtdhScheduler().schedule(problem);
    ASSERT_TRUE(validate(btdh, problem).ok);
    EXPECT_GT(btdh.num_duplicates(), 0u);
    EXPECT_LE(btdh.makespan(), heft.makespan());
}

TEST(IlsD, BeatsHeftOnFanOut) {
    const Problem problem = fan_out_problem(8, 4);
    const Schedule heft = HeftScheduler().schedule(problem);
    const Schedule ilsd = make_scheduler("ils-d")->schedule(problem);
    ASSERT_TRUE(validate(ilsd, problem).ok);
    EXPECT_GT(ilsd.num_duplicates(), 0u);
    EXPECT_LT(ilsd.makespan(), heft.makespan());
}

/// Chain with a heavy edge: duplication cannot help (each task has one
/// parent whose copy would cost the same as the original's comm).
TEST(Dsh, NoPointlessDuplicationOnCheapCommChain) {
    Dag dag;
    const TaskId a = dag.add_task(5.0);
    const TaskId b = dag.add_task(5.0);
    dag.add_edge(a, b, 0.1);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs = CostMatrix::uniform(dag, 2);
    const Problem problem(std::move(dag), std::move(machine), std::move(costs));
    const Schedule dsh = DshScheduler().schedule(problem);
    ASSERT_TRUE(validate(dsh, problem).ok);
    // Running both tasks on one processor (comm 0, finish 10) already ties
    // the best a copy on the other processor could achieve, so no duplicate
    // is adopted.
    EXPECT_EQ(dsh.num_duplicates(), 0u);
    EXPECT_DOUBLE_EQ(dsh.makespan(), 10.0);
}

TEST(Dsh, DuplicationCapRespected) {
    const Problem problem = fan_out_problem(16, 8);
    const Schedule capped = DshScheduler(/*max_dups_per_task=*/1).schedule(problem);
    ASSERT_TRUE(validate(capped, problem).ok);
    // At most one duplication attempt per (task, processor) evaluation, and
    // the adopted clone carries at most one duplicate per task.
    EXPECT_LE(capped.num_duplicates(), problem.num_tasks());
}

class DuplicationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DuplicationSweep, AllDuplicationSchedulersValidOnRandomInstances) {
    workload::InstanceParams params;
    params.size = 50;
    params.num_procs = 4;
    params.ccr = 5.0;
    params.beta = 1.0;
    const Problem problem = workload::make_instance(params, GetParam());
    for (const auto* name : {"dsh", "btdh", "ils-d"}) {
        const Schedule s = make_scheduler(name)->schedule(problem);
        const auto result = validate(s, problem);
        EXPECT_TRUE(result.ok) << name << ": " << result.message();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DuplicationSweep, ::testing::Range<std::uint64_t>(0, 10));

TEST(DuplicationAggregate, DuplicationBeatsHeftAtHighCcr) {
    double heft_total = 0.0;
    double dsh_total = 0.0;
    double btdh_total = 0.0;
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
        workload::InstanceParams params;
        params.size = 60;
        params.num_procs = 6;
        params.ccr = 8.0;
        const Problem problem = workload::make_instance(params, seed);
        heft_total += HeftScheduler().schedule(problem).makespan();
        dsh_total += DshScheduler().schedule(problem).makespan();
        btdh_total += BtdhScheduler().schedule(problem).makespan();
    }
    EXPECT_LT(dsh_total, heft_total);
    EXPECT_LT(btdh_total, heft_total);
}

}  // namespace
}  // namespace tsched
