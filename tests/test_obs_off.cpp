// OFF-mode compilation test for the obs macros: this translation unit is
// built with TSCHED_OBS_FORCE_OFF (see tests/CMakeLists.txt), so every
// TSCHED_OBS_* macro must expand to a no-op — it must still compile cleanly
// in statement position, must not evaluate its value argument, and must
// leave the process-wide obs registry untouched.  This is the guarantee that
// a -DTSCHED_OBS=OFF build carries zero hot-path cost: the macros don't even
// read a clock or name the registry.  Mirrors tests/test_trace_off.cpp.
#include <gtest/gtest.h>

#include "obs/obs.hpp"

#if TSCHED_OBS_ON
#error "test_obs_off must be compiled with TSCHED_OBS_FORCE_OFF"
#endif

namespace tsched::obs {
namespace {

// A representative instrumented function shaped like the scheduler and
// executor hot paths: phase scopes, point records, gauge updates.
double instrumented_work(std::size_t n, [[maybe_unused]] int& evaluations) {
    TSCHED_OBS_PHASE("off_test/work_ms");
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += static_cast<double>(i);
        // The value argument must NOT be evaluated when the gate is off —
        // ++evaluations would be a real hot-path cost.
        TSCHED_OBS_RECORD("off_test/iter_ms", ++evaluations);
        TSCHED_OBS_GAUGE_SET("off_test/progress", ++evaluations);
        TSCHED_OBS_GAUGE_ADD("off_test/sum", ++evaluations);
    }
    return acc;
}

TEST(ObsOff, MacrosCompileToNoOpsAndRecordNothing) {
    int evaluations = 0;
    const MetricsSnapshot before = registry().snapshot();
    EXPECT_DOUBLE_EQ(instrumented_work(101, evaluations), 5050.0);
    EXPECT_EQ(evaluations, 0);  // arguments never evaluated
    const MetricsSnapshot after = registry().snapshot();

    // Nothing with an off_test/ prefix may have been registered.
    for (const auto& h : after.histograms) {
        EXPECT_NE(h.name.rfind("off_test/", 0), 0u) << h.name;
    }
    for (const auto& g : after.gauges) {
        EXPECT_NE(g.name.rfind("off_test/", 0), 0u) << g.name;
    }
    const MetricsSnapshot delta = snapshot_delta(before, after);
    EXPECT_TRUE(delta.histograms.empty());
    EXPECT_TRUE(delta.counters.empty());
}

TEST(ObsOff, RecordIntoIsAlsoCompiledOut) {
    // TSCHED_OBS_RECORD_INTO is the component-registry variant (ServeEngine's
    // cached references); off, it must not touch the histogram it names.
    LatencyHistogram hist;
    int evaluations = 0;
    TSCHED_OBS_RECORD_INTO(hist, ++evaluations);
    EXPECT_EQ(evaluations, 0);
    EXPECT_EQ(hist.count(), 0u);
}

TEST(ObsOff, LibraryApiStillWorksWhenMacrosAreOff) {
    // The obs library is independent of the macro gate — replay reports and
    // bench_serve --check build histograms by direct calls in every
    // configuration, so the library must keep full function here.
    LatencyHistogram hist;
    hist.record(1.0);
    hist.record(4.0);
    const HistogramSnapshot snap = hist.snapshot();
    EXPECT_EQ(snap.count, 2u);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 4.0);

    MetricsRegistry reg;
    reg.gauge("direct").set(2.0);
    const MetricsSnapshot reg_snap = reg.snapshot();
    ASSERT_EQ(reg_snap.gauges.size(), 1u);
    EXPECT_EQ(reg_snap.gauges[0].value, 2.0);
}

}  // namespace
}  // namespace tsched::obs
