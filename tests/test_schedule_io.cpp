// Tests for schedule persistence (sched/schedule_io.hpp).
#include <gtest/gtest.h>

#include <filesystem>

#include "core/registry.hpp"
#include "sched/schedule_io.hpp"
#include "sched/validate.hpp"
#include "workload/instance.hpp"

namespace tsched {
namespace {

Schedule sample_schedule() {
    Schedule s(3, 2);
    s.add(0, 0, 0.0, 1.5);
    s.add(1, 1, 2.25, 4.0);
    s.add(1, 0, 1.5, 3.25);  // duplicate of task 1
    s.add(2, 0, 3.25, 5.0);
    return s;
}

TEST(Tss, RoundTripsExactly) {
    const Schedule s = sample_schedule();
    const Schedule back = read_tss_string(to_tss(s));
    EXPECT_EQ(back.num_tasks(), s.num_tasks());
    EXPECT_EQ(back.num_procs(), s.num_procs());
    EXPECT_EQ(back.num_placements(), s.num_placements());
    EXPECT_EQ(back.num_duplicates(), 1u);
    EXPECT_DOUBLE_EQ(back.makespan(), s.makespan());
    EXPECT_EQ(to_tss(back), to_tss(s));  // byte-identical re-serialization
}

TEST(Tss, SchedulerOutputRoundTripsAndRevalidates) {
    workload::InstanceParams params;
    params.size = 40;
    params.num_procs = 4;
    params.ccr = 5.0;
    const Problem problem = workload::make_instance(params, 17);
    const Schedule original = make_scheduler("dsh")->schedule(problem);
    const Schedule restored = read_tss_string(to_tss(original));
    // The restored schedule validates against the same problem.
    const auto valid = validate(restored, problem);
    EXPECT_TRUE(valid.ok) << valid.message();
    EXPECT_DOUBLE_EQ(restored.makespan(), original.makespan());
    EXPECT_EQ(restored.num_duplicates(), original.num_duplicates());
}

TEST(Tss, FileRoundTrip) {
    const Schedule s = sample_schedule();
    const auto path = std::filesystem::temp_directory_path() / "tsched_schedule.tss";
    save_tss(path.string(), s);
    const Schedule back = load_tss(path.string());
    std::filesystem::remove(path);
    EXPECT_EQ(to_tss(back), to_tss(s));
    EXPECT_THROW((void)load_tss("/nonexistent/x.tss"), std::runtime_error);
    EXPECT_THROW(save_tss("/nonexistent/dir/x.tss", s), std::runtime_error);
}

TEST(Tss, RejectsMalformedDocuments) {
    EXPECT_THROW((void)read_tss_string(""), std::runtime_error);                    // no header
    EXPECT_THROW((void)read_tss_string("p 0 0 0 1\n"), std::runtime_error);         // placement first
    EXPECT_THROW((void)read_tss_string("tss 1 0\n"), std::runtime_error);           // zero procs
    EXPECT_THROW((void)read_tss_string("tss 1 1\ntss 1 1\n"), std::runtime_error);  // dup header
    EXPECT_THROW((void)read_tss_string("tss 1 1\np 5 0 0 1\n"), std::runtime_error);  // range
    EXPECT_THROW((void)read_tss_string("tss 1 1\np 0 0 2 1\n"), std::runtime_error);  // finish<start
    EXPECT_THROW((void)read_tss_string("tss 1 1\nx y\n"), std::runtime_error);      // bad tag
    EXPECT_THROW((void)read_tss_string("tss 1 1\np 0 0\n"), std::runtime_error);    // short line
}

TEST(Tss, IgnoresCommentsAndEmptyLines) {
    const Schedule s = read_tss_string("# hi\n\ntss 1 2\n# mid\np 0 1 0 2\n");
    EXPECT_EQ(s.num_tasks(), 1u);
    EXPECT_EQ(s.primary(0).proc, 1);
}

TEST(Tss, PreservesFullDoublePrecision) {
    Schedule s(1, 1);
    s.add(0, 0, 0.1, 0.1 + 1.0 / 3.0);
    const Schedule back = read_tss_string(to_tss(s));
    EXPECT_DOUBLE_EQ(back.primary(0).start, 0.1);
    EXPECT_DOUBLE_EQ(back.primary(0).finish, 0.1 + 1.0 / 3.0);
}

}  // namespace
}  // namespace tsched
