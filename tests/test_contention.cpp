// Tests for the contention-aware simulator (sim/contention.hpp).
#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "sched/validate.hpp"
#include "sim/contention.hpp"
#include "sim/event_sim.hpp"
#include "workload/instance.hpp"

namespace tsched {
namespace {

/// Fan-out: src on P0 feeding two consumers on P1 and P2, unit exec, comm 4.
/// Contention-free: both transfers overlap, makespan = 1 + 4 + 1 = 6.
/// One-port: the sender serializes them; second consumer starts at 9.
Problem fan_problem() {
    Dag dag;
    const TaskId src = dag.add_task(1.0);
    const TaskId a = dag.add_task(1.0);
    const TaskId b = dag.add_task(1.0);
    dag.add_edge(src, a, 4.0);
    dag.add_edge(src, b, 4.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(3, links);
    CostMatrix costs = CostMatrix::uniform(dag, 3);
    return Problem(std::move(dag), std::move(machine), std::move(costs));
}

TEST(Contention, SenderPortSerializesFanOut) {
    const Problem problem = fan_problem();
    Schedule s(3, 3);
    s.add(0, 0, 0.0, 1.0);
    s.add(1, 1, 5.0, 6.0);
    s.add(2, 2, 5.0, 6.0);
    EXPECT_DOUBLE_EQ(sim::simulate(s, problem).makespan, 6.0);
    const auto contended = sim::simulate_contended(s, problem);
    // First transfer [1,5] to P1; second queues on P0's send port: [5,9].
    EXPECT_DOUBLE_EQ(contended.makespan, 10.0);
    EXPECT_EQ(contended.transfers, 2u);
    EXPECT_DOUBLE_EQ(contended.transfer_time_total, 8.0);
    EXPECT_DOUBLE_EQ(contended.max_port_wait, 4.0);
}

TEST(Contention, LocalDataBypassesPorts) {
    const Problem problem = fan_problem();
    Schedule s(3, 3);  // everything on P0: no transfers at all
    s.add(0, 0, 0.0, 1.0);
    s.add(1, 0, 1.0, 2.0);
    s.add(2, 0, 2.0, 3.0);
    const auto contended = sim::simulate_contended(s, problem);
    EXPECT_DOUBLE_EQ(contended.makespan, 3.0);
    EXPECT_EQ(contended.transfers, 0u);
    EXPECT_DOUBLE_EQ(contended.max_port_wait, 0.0);
}

TEST(Contention, ReceiverPortSerializesFanIn) {
    // Two producers on P0/P1 feeding one consumer on P2: the consumer's
    // inbound port serializes the transfers.
    Dag dag;
    const TaskId a = dag.add_task(1.0);
    const TaskId b = dag.add_task(1.0);
    const TaskId sink = dag.add_task(1.0);
    dag.add_edge(a, sink, 4.0);
    dag.add_edge(b, sink, 4.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(3, links);
    CostMatrix costs = CostMatrix::uniform(dag, 3);
    const Problem problem(std::move(dag), std::move(machine), std::move(costs));
    Schedule s(3, 3);
    s.add(0, 0, 0.0, 1.0);
    s.add(1, 1, 0.0, 1.0);
    s.add(2, 2, 5.0, 6.0);
    // Contention-free: both arrive at 5 -> finish 6.  One-port: second
    // transfer waits for the inbound port [5,9] -> start 9, finish 10.
    EXPECT_DOUBLE_EQ(sim::simulate(s, problem).makespan, 6.0);
    EXPECT_DOUBLE_EQ(sim::simulate_contended(s, problem).makespan, 10.0);
}

TEST(Contention, NeverFasterThanContentionFree) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        workload::InstanceParams params;
        params.size = 50;
        params.num_procs = 4;
        params.ccr = 5.0;
        const Problem problem = workload::make_instance(params, seed);
        for (const auto* name : {"ils", "ils-d", "heft", "dsh"}) {
            const Schedule schedule = make_scheduler(name)->schedule(problem);
            const double free_ms = sim::simulate(schedule, problem).makespan;
            const double contended = sim::simulate_contended(schedule, problem).makespan;
            EXPECT_GE(contended, free_ms - 1e-9) << name << " seed " << seed;
        }
    }
}

TEST(Contention, DuplicationIncreasesNetworkLoadInAggregate) {
    // Counter-intuitive but real (and the point of experiment E16): every
    // duplicate pulls its *own* copies of its inputs — there is no multicast
    // in the one-port model — so duplication-heavy schedules put more
    // transfers on the network and inflate more under contention than
    // duplication-free ones, despite their better contention-free makespan.
    double heft_inflation = 0.0;
    double ilsd_inflation = 0.0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        workload::InstanceParams params;
        params.size = 60;
        params.num_procs = 6;
        params.ccr = 5.0;
        const Problem problem = workload::make_instance(params, seed);
        const Schedule heft = make_scheduler("heft")->schedule(problem);
        const Schedule ilsd = make_scheduler("ils-d")->schedule(problem);
        heft_inflation += sim::simulate_contended(heft, problem).makespan /
                          sim::simulate(heft, problem).makespan;
        ilsd_inflation += sim::simulate_contended(ilsd, problem).makespan /
                          sim::simulate(ilsd, problem).makespan;
    }
    EXPECT_GT(ilsd_inflation, heft_inflation);
}

TEST(CaHeft, ValidUnderContentionFreeValidatorToo) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        workload::InstanceParams params;
        params.size = 50;
        params.num_procs = 4;
        params.ccr = 3.0;
        const Problem problem = workload::make_instance(params, seed);
        const Schedule s = make_scheduler("ca-heft")->schedule(problem);
        // Contention only delays starts, so the standard validator accepts.
        const auto valid = validate(s, problem);
        EXPECT_TRUE(valid.ok) << valid.message();
    }
}

TEST(CaHeft, PlannedMakespanApproximatesOnePortReplay) {
    // A Schedule records placements, not transfer bookings, so the one-port
    // replay re-derives its own transfer order and can differ from the
    // construction-time bookings in either direction.  The plan must still
    // be a *useful* one-port estimate: within a bounded factor of the
    // replay, instead of the 3-7x error of contention-blind plans (E16).
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        workload::InstanceParams params;
        params.size = 50;
        params.num_procs = 4;
        params.ccr = 3.0;
        const Problem problem = workload::make_instance(params, seed);
        const Schedule s = make_scheduler("ca-heft")->schedule(problem);
        const auto contended = sim::simulate_contended(s, problem);
        EXPECT_LE(contended.makespan, s.makespan() * 1.5) << seed;
        EXPECT_GE(contended.makespan, s.makespan() * 0.5) << seed;
    }
}

TEST(CaHeft, BeatsContentionBlindHeftOnTheOnePortNetwork) {
    double heft_total = 0.0;
    double caheft_total = 0.0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        workload::InstanceParams params;
        params.size = 60;
        params.num_procs = 6;
        params.ccr = 5.0;
        const Problem problem = workload::make_instance(params, seed);
        heft_total +=
            sim::simulate_contended(make_scheduler("heft")->schedule(problem), problem)
                .makespan;
        caheft_total +=
            sim::simulate_contended(make_scheduler("ca-heft")->schedule(problem), problem)
                .makespan;
    }
    EXPECT_LT(caheft_total, heft_total);
}

TEST(Contention, ThrowsOnIncompleteOrDeadlocked) {
    const Problem problem = fan_problem();
    Schedule incomplete(3, 3);
    EXPECT_THROW((void)sim::simulate_contended(incomplete, problem), std::invalid_argument);

    Schedule deadlocked(3, 3);  // consumer ordered before producer on one proc
    deadlocked.add(1, 0, 0.0, 1.0);
    deadlocked.add(0, 0, 1.0, 2.0);
    deadlocked.add(2, 0, 2.0, 3.0);
    EXPECT_THROW((void)sim::simulate_contended(deadlocked, problem), std::invalid_argument);
}

}  // namespace
}  // namespace tsched
