// Targeted behavioural tests for individual algorithms — each checks the
// defining decision rule of one scheduler on a scenario built to expose it
// (beyond the generic validity/determinism property suite).
#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "sched/list_baselines.hpp"
#include "sched/validate.hpp"
#include "workload/instance.hpp"
#include "workload/structured.hpp"

namespace tsched {
namespace {

/// Chain a->b->c with zero-cost communication; one fast and one slow
/// processor per task, alternating, to expose selection rules.
Problem alternating_speed_chain() {
    Dag dag = workload::chain(3);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1e9);  // free comm
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs(3, 2,
                     {
                         1.0, 10.0,  // a fast on P0
                         10.0, 1.0,  // b fast on P1
                         1.0, 10.0,  // c fast on P0
                     });
    return Problem(std::move(dag), std::move(machine), std::move(costs));
}

TEST(Heft, FollowsFastProcessorsWhenCommIsFree) {
    const Problem problem = alternating_speed_chain();
    const Schedule s = make_scheduler("heft")->schedule(problem);
    EXPECT_EQ(s.primary(0).proc, 0);
    EXPECT_EQ(s.primary(1).proc, 1);
    EXPECT_EQ(s.primary(2).proc, 0);
    EXPECT_NEAR(s.makespan(), 3.0, 1e-6);  // + two ~1e-9 transfers
}

TEST(Cpop, PinsCriticalPathToOneProcessor) {
    // A pure chain is entirely critical; CPOP must put every task on the
    // single processor minimising total path time, even though task b would
    // individually prefer the other.
    const Problem problem = alternating_speed_chain();
    const Schedule s = make_scheduler("cpop")->schedule(problem);
    const ProcId cp_proc = s.primary(0).proc;
    EXPECT_EQ(s.primary(1).proc, cp_proc);
    EXPECT_EQ(s.primary(2).proc, cp_proc);
    // Total: P0 = 1+10+1 = 12, P1 = 10+1+10 = 21 -> P0.
    EXPECT_EQ(cp_proc, 0);
    EXPECT_DOUBLE_EQ(s.makespan(), 12.0);
}

TEST(Etf, StartsTheEarliestStartableTaskFirst) {
    // Two independent tasks on one processor: task 1 is long, task 0 short;
    // both ready at 0 -> ETF breaks the EST tie by higher static level
    // (the longer task), scheduling it first.
    Dag dag = workload::independent(2);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(1, links);
    CostMatrix costs(2, 1, {1.0, 5.0});
    const Problem problem(std::move(dag), std::move(machine), std::move(costs));
    const Schedule s = make_scheduler("etf")->schedule(problem);
    EXPECT_LT(s.primary(1).start, s.primary(0).start);
}

TEST(Hlfet, PrefersHighestLevelReadyTask) {
    // Fork: src -> {long chain, short leaf}.  After src, HLFET must start
    // the chain head (higher static level) before the leaf.
    Dag dag;
    const TaskId src = dag.add_task(1.0);
    const TaskId chain1 = dag.add_task(1.0);
    const TaskId chain2 = dag.add_task(5.0);
    const TaskId leaf = dag.add_task(1.0);
    dag.add_edge(src, chain1, 0.0);
    dag.add_edge(chain1, chain2, 0.0);
    dag.add_edge(src, leaf, 0.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(1, links);
    CostMatrix costs = CostMatrix::uniform(dag, 1);
    const Problem problem(std::move(dag), std::move(machine), std::move(costs));
    const Schedule s = make_scheduler("hlfet")->schedule(problem);
    EXPECT_LT(s.primary(chain1).start, s.primary(leaf).start);
}

TEST(MinMinVsMaxMin, OrderShortVsLongFirst) {
    // Two independent tasks, one processor: min-min runs the short task
    // first, max-min the long one.
    Dag dag = workload::independent(2);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(1, links);
    CostMatrix costs(2, 1, {1.0, 5.0});
    const Problem problem(std::move(dag), std::move(machine), std::move(costs));
    const Schedule minmin = make_scheduler("minmin")->schedule(problem);
    EXPECT_LT(minmin.primary(0).start, minmin.primary(1).start);
    const Schedule maxmin = make_scheduler("maxmin")->schedule(problem);
    EXPECT_LT(maxmin.primary(1).start, maxmin.primary(0).start);
}

TEST(Dls, DeltaTermPrefersSpecialistProcessor) {
    // One task, two processors, task much faster on P1: DL's delta term
    // (and EST tie) must send it there.
    Dag dag = workload::independent(1);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs(1, 2, {10.0, 2.0});
    const Problem problem(std::move(dag), std::move(machine), std::move(costs));
    const Schedule s = make_scheduler("dls")->schedule(problem);
    EXPECT_EQ(s.primary(0).proc, 1);
}

TEST(Mcp, AlapOrderSchedulesCriticalBranchFirst) {
    // Diamond where one middle branch is much heavier: MCP's ascending-ALAP
    // order starts the heavy branch before the light one.
    Dag dag;
    const TaskId src = dag.add_task(1.0);
    const TaskId heavy = dag.add_task(8.0);
    const TaskId light = dag.add_task(1.0);
    const TaskId sink = dag.add_task(1.0);
    dag.add_edge(src, heavy, 0.0);
    dag.add_edge(src, light, 0.0);
    dag.add_edge(heavy, sink, 0.0);
    dag.add_edge(light, sink, 0.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(1, links);
    CostMatrix costs = CostMatrix::from_speeds(dag, machine);
    const Problem problem(std::move(dag), std::move(machine), std::move(costs));
    const Schedule s = make_scheduler("mcp")->schedule(problem);
    EXPECT_LT(s.primary(heavy).start, s.primary(light).start);
}

TEST(Random, SeedControlsTheSchedule) {
    workload::InstanceParams params;
    params.size = 40;
    params.num_procs = 4;
    const Problem problem = workload::make_instance(params, 6);
    const Schedule a = RandomScheduler(1).schedule(problem);
    const Schedule b = RandomScheduler(2).schedule(problem);
    const Schedule a2 = RandomScheduler(1).schedule(problem);
    EXPECT_DOUBLE_EQ(a.makespan(), a2.makespan());
    EXPECT_NE(a.makespan(), b.makespan());
    EXPECT_TRUE(validate(b, problem).ok);
}

}  // namespace
}  // namespace tsched
