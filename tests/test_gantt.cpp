// Tests for the SVG Gantt renderer (sched/gantt.hpp) and the newer baseline
// schedulers (PEFT, lookahead HEFT, linear clustering) beyond the generic
// property suite.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/registry.hpp"
#include "sched/gantt.hpp"
#include "sched/validate.hpp"
#include "workload/instance.hpp"

namespace tsched {
namespace {

Problem sample_problem(std::uint64_t seed, double ccr = 1.0) {
    workload::InstanceParams params;
    params.size = 30;
    params.num_procs = 4;
    params.ccr = ccr;
    return workload::make_instance(params, seed);
}

std::size_t count_occurrences(const std::string& text, const std::string& needle) {
    std::size_t count = 0;
    for (auto pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size())) {
        ++count;
    }
    return count;
}

TEST(Gantt, ContainsOneBarPerPlacement) {
    const Problem problem = sample_problem(1);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    const std::string svg = to_svg(schedule, &problem.dag());
    // One <title> per placement bar.
    EXPECT_EQ(count_occurrences(svg, "<title>"), schedule.num_placements());
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    EXPECT_NE(svg.find("makespan"), std::string::npos);
}

TEST(Gantt, OneLanePerProcessor) {
    const Problem problem = sample_problem(2);
    const Schedule schedule = make_scheduler("ils")->schedule(problem);
    const std::string svg = to_svg(schedule);
    for (std::size_t p = 0; p < problem.num_procs(); ++p) {
        EXPECT_NE(svg.find(">P" + std::to_string(p) + "<"), std::string::npos);
    }
}

TEST(Gantt, DuplicatesRenderedHatched) {
    const Problem problem = sample_problem(3, 8.0);
    const Schedule schedule = make_scheduler("dsh")->schedule(problem);
    ASSERT_GT(schedule.num_duplicates(), 0u);
    const std::string svg = to_svg(schedule);
    EXPECT_EQ(count_occurrences(svg, "stroke-dasharray=\"3,2\""), schedule.num_duplicates());
}

TEST(Gantt, TitleAndEscaping) {
    Schedule s(1, 1);
    s.add(0, 0, 0.0, 2.0);
    Dag dag;
    dag.add_task(2.0, "a<b>&\"c\"");
    GanttOptions options;
    options.title = "x<y";
    const std::string svg = to_svg(s, &dag, options);
    EXPECT_NE(svg.find("x&lt;y"), std::string::npos);
    EXPECT_NE(svg.find("a&lt;b&gt;&amp;&quot;c&quot;"), std::string::npos);
}

TEST(Gantt, SaveWritesFile) {
    const Problem problem = sample_problem(4);
    const Schedule schedule = make_scheduler("heft")->schedule(problem);
    const auto path = std::filesystem::temp_directory_path() / "tsched_gantt_test.svg";
    save_svg(path.string(), schedule, &problem.dag());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string first_line;
    std::getline(in, first_line);
    EXPECT_NE(first_line.find("<svg"), std::string::npos);
    in.close();
    std::filesystem::remove(path);
    EXPECT_THROW(save_svg("/nonexistent/dir/x.svg", schedule), std::runtime_error);
}

TEST(Gantt, EmptyScheduleStillRenders) {
    Schedule s(1, 2);
    s.add(0, 1, 0.0, 1.0);
    const std::string svg = to_svg(s);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Newer baselines: behavioural checks beyond generic validity.
// ---------------------------------------------------------------------------

TEST(Peft, CompetitiveWithHeftInAggregate) {
    double peft_total = 0.0;
    double cpop_total = 0.0;
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
        const Problem problem = sample_problem(seed, 2.0);
        peft_total += make_scheduler("peft")->schedule(problem).makespan();
        cpop_total += make_scheduler("cpop")->schedule(problem).makespan();
    }
    // PEFT comfortably beats CPOP in aggregate (published result's shape).
    EXPECT_LT(peft_total, cpop_total);
}

TEST(LookaheadHeft, ValidAndBoundedBySerialTime) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const Problem problem = sample_problem(seed, 5.0);
        const Schedule s = make_scheduler("lheft")->schedule(problem);
        const auto valid = validate(s, problem);
        EXPECT_TRUE(valid.ok) << valid.message();
        EXPECT_LE(s.makespan(), problem.costs().best_serial_time() * 2.0);
    }
}

TEST(LinearClustering, ChainGoesToOneProcessor) {
    // A pure chain is a single cluster; linear clustering must keep it on
    // one processor (no pointless communication).
    workload::InstanceParams params;
    params.shape = workload::Shape::kChain;
    params.size = 12;
    params.num_procs = 4;
    params.ccr = 5.0;
    const Problem problem = workload::make_instance(params, 3);
    const Schedule s = make_scheduler("lc")->schedule(problem);
    EXPECT_TRUE(validate(s, problem).ok);
    const ProcId proc = s.primary(0).proc;
    for (std::size_t v = 1; v < problem.num_tasks(); ++v) {
        EXPECT_EQ(s.primary(static_cast<TaskId>(v)).proc, proc);
    }
}

TEST(LinearClustering, IndependentTasksSpreadAcrossProcessors) {
    workload::InstanceParams params;
    params.shape = workload::Shape::kDiamond;
    params.size = 8;  // wide middle layers
    params.num_procs = 4;
    params.beta = 0.0;
    const Problem problem = workload::make_instance(params, 4);
    const Schedule s = make_scheduler("lc")->schedule(problem);
    EXPECT_TRUE(validate(s, problem).ok);
    // At least two processors carry load.
    std::size_t used = 0;
    for (std::size_t p = 0; p < problem.num_procs(); ++p) {
        if (!s.processor_timeline(static_cast<ProcId>(p)).empty()) ++used;
    }
    EXPECT_GE(used, 2u);
}

}  // namespace
}  // namespace tsched
