// Unit + property tests for the workload generators.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/algorithms.hpp"
#include "workload/costs.hpp"
#include "workload/instance.hpp"
#include "workload/random_dag.hpp"
#include "workload/structured.hpp"

namespace tsched {
namespace {

using workload::InstanceParams;
using workload::Shape;

// ---------------------------------------------------------------------------
// Structured graphs: closed-form node/edge counts.
// ---------------------------------------------------------------------------

class GaussSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GaussSizeTest, NodeAndEdgeCountsMatchClosedForm) {
    const std::size_t m = GetParam();
    const Dag dag = workload::gaussian_elimination(m);
    EXPECT_EQ(dag.num_tasks(), (m * m + m - 2) / 2);
    EXPECT_EQ(dag.num_edges(), m * m - m - 1);
    EXPECT_TRUE(dag.is_acyclic());
    EXPECT_EQ(dag.sources().size(), 1u);  // single initial pivot
}

INSTANTIATE_TEST_SUITE_P(Sizes, GaussSizeTest, ::testing::Values(2u, 3u, 5u, 8u, 16u));

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, NodeAndEdgeCountsMatchClosedForm) {
    const std::size_t n = GetParam();
    const auto k = static_cast<std::size_t>(std::lround(std::log2(static_cast<double>(n))));
    const Dag dag = workload::fft(n);
    EXPECT_EQ(dag.num_tasks(), n * (k + 1));
    EXPECT_EQ(dag.num_edges(), 2 * n * k);
    EXPECT_TRUE(dag.is_acyclic());
    EXPECT_EQ(dag.sources().size(), n);
    EXPECT_EQ(dag.sinks().size(), n);
    EXPECT_EQ(height(dag), static_cast<int>(k + 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeTest, ::testing::Values(2u, 4u, 8u, 16u, 64u));

TEST(Fft, RejectsNonPowerOfTwo) {
    EXPECT_THROW((void)workload::fft(12), std::invalid_argument);
    EXPECT_THROW((void)workload::fft(1), std::invalid_argument);
}

class LaplaceSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LaplaceSizeTest, WavefrontShape) {
    const std::size_t g = GetParam();
    const Dag dag = workload::laplace(g);
    EXPECT_EQ(dag.num_tasks(), g * g);
    EXPECT_EQ(dag.num_edges(), 2 * g * (g - 1));
    EXPECT_EQ(dag.sources(), (std::vector<TaskId>{0}));
    EXPECT_EQ(dag.sinks(), (std::vector<TaskId>{static_cast<TaskId>(g * g - 1)}));
    EXPECT_EQ(height(dag), static_cast<int>(2 * g - 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LaplaceSizeTest, ::testing::Values(1u, 2u, 4u, 7u, 12u));

class CholeskySizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizeTest, TaskCountMatchesClosedForm) {
    const std::size_t t = GetParam();
    const Dag dag = workload::cholesky(t);
    // POTRF: t, TRSM: C(t,2), SYRK: C(t,2), GEMM: C(t,3)  ==  t(t+1)(t+2)/6.
    EXPECT_EQ(dag.num_tasks(), t * (t + 1) * (t + 2) / 6);
    EXPECT_TRUE(dag.is_acyclic());
    EXPECT_EQ(dag.sources().size(), 1u);  // POTRF(0)
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeTest, ::testing::Values(1u, 2u, 3u, 4u, 6u));

TEST(Lu, TaskCountMatchesClosedForm) {
    for (const std::size_t t : {1u, 2u, 3u, 5u}) {
        const Dag dag = workload::lu(t);
        // GETRF: t, row TRSM: C(t,2), col TRSM: C(t,2), GEMM: sum k (t-1-k)^2.
        std::size_t gemm = 0;
        for (std::size_t k = 0; k + 1 < t; ++k) gemm += (t - 1 - k) * (t - 1 - k);
        EXPECT_EQ(dag.num_tasks(), t + t * (t - 1) + gemm);
        EXPECT_TRUE(dag.is_acyclic());
    }
}

TEST(ForkJoin, CountsAndShape) {
    const Dag dag = workload::fork_join(5, 3);
    EXPECT_EQ(dag.num_tasks(), 3 * (5 + 1) + 1);
    EXPECT_EQ(dag.num_edges(), 2u * 3u * 5u);
    EXPECT_EQ(dag.sources().size(), 1u);
    EXPECT_EQ(dag.sinks().size(), 1u);
    EXPECT_EQ(height(dag), 7);  // src, w, join, w, join, w, join
}

TEST(Trees, CountsAndOrientation) {
    const Dag out = workload::out_tree(3, 3);  // 1 + 3 + 9
    EXPECT_EQ(out.num_tasks(), 13u);
    EXPECT_EQ(out.sources().size(), 1u);
    EXPECT_EQ(out.sinks().size(), 9u);
    const Dag in = workload::in_tree(3, 3);
    EXPECT_EQ(in.num_tasks(), 13u);
    EXPECT_EQ(in.sources().size(), 9u);
    EXPECT_EQ(in.sinks().size(), 1u);
}

TEST(ChainDiamondIndependentStencil, Shapes) {
    EXPECT_EQ(workload::chain(7).num_edges(), 6u);
    EXPECT_EQ(height(workload::chain(7)), 7);

    const Dag d = workload::diamond(4, 2);
    EXPECT_EQ(d.num_tasks(), 1u + 4u + 4u + 1u);
    EXPECT_EQ(d.num_edges(), 4u + 16u + 4u);

    const Dag ind = workload::independent(9);
    EXPECT_EQ(ind.num_edges(), 0u);
    EXPECT_EQ(ind.sources().size(), 9u);

    const Dag st = workload::stencil_1d(5, 3);
    EXPECT_EQ(st.num_tasks(), 15u);
    EXPECT_EQ(height(st), 3);
    // Interior cells have 3 preds, border cells 2.
    EXPECT_EQ(st.in_degree(5 + 2), 3u);
    EXPECT_EQ(st.in_degree(5 + 0), 2u);
}

TEST(MontageLike, IsConnectedWorkflow) {
    const Dag dag = workload::montage_like(6);
    EXPECT_TRUE(dag.is_acyclic());
    EXPECT_EQ(dag.sources().size(), 6u);   // projections
    EXPECT_EQ(dag.sinks().size(), 1u);     // mosaic
    EXPECT_EQ(weakly_connected_components(dag), 1u);
    EXPECT_THROW((void)workload::montage_like(1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Random generators.
// ---------------------------------------------------------------------------

class LayeredSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LayeredSeedTest, Postconditions) {
    Rng rng(GetParam());
    workload::LayeredDagParams params;
    params.n = 150;
    params.alpha = 0.8;
    const Dag dag = workload::layered_random(params, rng);
    EXPECT_EQ(dag.num_tasks(), 150u);
    EXPECT_EQ(dag.validate(), "");
    // Every non-source task has a predecessor by repair; work/data in bounds.
    const auto tops = top_levels(dag);
    for (std::size_t v = 0; v < dag.num_tasks(); ++v) {
        if (tops[v] > 0) {
            EXPECT_GE(dag.in_degree(static_cast<TaskId>(v)), 1u);
        }
        EXPECT_GE(dag.work(static_cast<TaskId>(v)), params.work_min);
        EXPECT_LE(dag.work(static_cast<TaskId>(v)), params.work_max);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayeredSeedTest, ::testing::Values(1u, 7u, 42u, 1000u));

TEST(LayeredRandom, DeterministicPerSeed) {
    workload::LayeredDagParams params;
    params.n = 80;
    Rng a(5);
    Rng b(5);
    EXPECT_EQ(workload::layered_random(params, a), workload::layered_random(params, b));
}

TEST(LayeredRandom, AlphaControlsShape) {
    workload::LayeredDagParams params;
    params.n = 400;
    Rng rng1(3);
    params.alpha = 0.3;  // tall
    const int tall = height(workload::layered_random(params, rng1));
    Rng rng2(3);
    params.alpha = 3.0;  // wide
    const int wide = height(workload::layered_random(params, rng2));
    EXPECT_GT(tall, wide);
}

TEST(GnpRandom, EdgeProbabilityControlsDensity) {
    workload::GnpDagParams params;
    params.n = 100;
    Rng rng1(9);
    params.edge_prob = 0.02;
    const auto sparse = workload::gnp_random(params, rng1).num_edges();
    Rng rng2(9);
    params.edge_prob = 0.2;
    const auto dense = workload::gnp_random(params, rng2).num_edges();
    EXPECT_GT(dense, sparse);
}

TEST(GnpRandom, ConnectIsolatedGuaranteesSingleSourceChainability) {
    workload::GnpDagParams params;
    params.n = 60;
    params.edge_prob = 0.01;
    Rng rng(11);
    const Dag dag = workload::gnp_random(params, rng);
    for (std::size_t v = 1; v < dag.num_tasks(); ++v) {
        EXPECT_GE(dag.in_degree(static_cast<TaskId>(v)), 1u);
    }
}

// ---------------------------------------------------------------------------
// Cost generation and CCR calibration.
// ---------------------------------------------------------------------------

TEST(MakeCostMatrix, BetaZeroIsHomogeneous) {
    Rng rng(1);
    const Dag dag = workload::chain(20);
    workload::CostParams params;
    params.beta = 0.0;
    params.num_procs = 4;
    const CostMatrix w = workload::make_cost_matrix(dag, params, rng);
    EXPECT_TRUE(w.is_homogeneous());
}

TEST(MakeCostMatrix, MeanTracksAvgExec) {
    Rng rng(2);
    const Dag dag = workload::independent(500);
    workload::CostParams params;
    params.avg_exec = 30.0;
    params.beta = 1.0;
    params.num_procs = 6;
    const CostMatrix w = workload::make_cost_matrix(dag, params, rng);
    double sum = 0.0;
    for (std::size_t v = 0; v < 500; ++v) sum += w.mean(static_cast<TaskId>(v));
    EXPECT_NEAR(sum / 500.0, 30.0, 1.5);
}

TEST(MakeCostMatrix, BetaBoundsRows) {
    Rng rng(3);
    Dag dag = workload::independent(50);
    workload::CostParams params;
    params.avg_exec = 10.0;
    params.beta = 0.5;
    params.num_procs = 8;
    const CostMatrix w = workload::make_cost_matrix(dag, params, rng);
    for (std::size_t v = 0; v < 50; ++v) {
        // Row spread is bounded by beta: max/min <= (1+b/2)/(1-b/2).
        const double ratio = w.max(static_cast<TaskId>(v)) / w.min(static_cast<TaskId>(v));
        EXPECT_LE(ratio, (1.0 + 0.25) / (1.0 - 0.25) + 1e-9);
    }
}

TEST(MakeCostMatrix, ConsistentModeGivesRelatedRows) {
    Rng rng(4);
    const Dag dag = workload::independent(10);
    workload::CostParams params;
    params.beta = 1.0;
    params.num_procs = 4;
    params.consistent = true;
    const CostMatrix w = workload::make_cost_matrix(dag, params, rng);
    // In the related-machines model every row is proportional to every other.
    for (std::size_t v = 1; v < 10; ++v) {
        const double r0 = w(static_cast<TaskId>(v), 0) / w(0, 0);
        for (std::size_t p = 1; p < 4; ++p) {
            EXPECT_NEAR(w(static_cast<TaskId>(v), static_cast<ProcId>(p)) /
                            w(0, static_cast<ProcId>(p)),
                        r0, 1e-9);
        }
    }
}

class CcrCalibrationTest : public ::testing::TestWithParam<double> {};

TEST_P(CcrCalibrationTest, RealizedCcrMatchesRequested) {
    const double ccr = GetParam();
    InstanceParams params;
    params.shape = Shape::kLayered;
    params.size = 120;
    params.num_procs = 8;
    params.ccr = ccr;
    const Problem problem = workload::make_instance(params, 7);
    EXPECT_NEAR(problem.realized_ccr(), ccr, ccr * 0.01 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ccrs, CcrCalibrationTest, ::testing::Values(0.1, 0.5, 1.0, 2.0, 10.0));

TEST(CalibrateCcr, LatencyFloorClampsToZeroData) {
    Dag dag = workload::chain(3);
    const UniformLinkModel links(100.0, 1.0);  // huge latency
    // Target mean comm 1 with latency 100: impossible; data must drop to 0.
    workload::calibrate_ccr(dag, links, 4, 0.05, 20.0);
    EXPECT_DOUBLE_EQ(dag.total_data(), 0.0);
}

TEST(CalibrateCcr, PreservesRelativeDataSizes) {
    Dag dag(3);
    dag.add_edge(0, 1, 2.0);
    dag.add_edge(1, 2, 6.0);
    const UniformLinkModel links(0.0, 1.0);
    workload::calibrate_ccr(dag, links, 4, 2.0, 10.0);
    EXPECT_NEAR(dag.edge_data(1, 2) / dag.edge_data(0, 1), 3.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Instance factory.
// ---------------------------------------------------------------------------

TEST(MakeInstance, DeterministicPerSeed) {
    InstanceParams params;
    params.size = 70;
    const Problem a = workload::make_instance(params, 123);
    const Problem b = workload::make_instance(params, 123);
    EXPECT_EQ(a.dag(), b.dag());
    for (std::size_t v = 0; v < a.num_tasks(); ++v) {
        for (std::size_t p = 0; p < a.num_procs(); ++p) {
            EXPECT_DOUBLE_EQ(a.exec_time(static_cast<TaskId>(v), static_cast<ProcId>(p)),
                             b.exec_time(static_cast<TaskId>(v), static_cast<ProcId>(p)));
        }
    }
    const Problem c = workload::make_instance(params, 124);
    EXPECT_FALSE(a.dag() == c.dag());
}

TEST(MakeInstance, AllShapesProduceValidProblems) {
    for (const Shape shape :
         {Shape::kLayered, Shape::kGnp, Shape::kGauss, Shape::kFft, Shape::kLaplace,
          Shape::kCholesky, Shape::kLu, Shape::kForkJoin, Shape::kOutTree, Shape::kInTree,
          Shape::kChain, Shape::kDiamond, Shape::kStencil, Shape::kMontage}) {
        InstanceParams params;
        params.shape = shape;
        if (shape == Shape::kFft) {
            params.size = 8;
        } else if (shape == Shape::kOutTree || shape == Shape::kInTree) {
            params.size = 3;
        } else {
            params.size = 6;
        }
        params.num_procs = 4;
        const Problem problem = workload::make_instance(params, 5);
        EXPECT_EQ(problem.dag().validate(), "") << workload::shape_name(shape);
        EXPECT_GT(problem.num_tasks(), 0u) << workload::shape_name(shape);
        EXPECT_GT(problem.cp_lower_bound(), 0.0) << workload::shape_name(shape);
    }
}

TEST(MakeInstance, NetworkVariants) {
    for (const workload::Net net :
         {workload::Net::kUniform, workload::Net::kBus, workload::Net::kRing,
          workload::Net::kMesh2d, workload::Net::kHypercube, workload::Net::kStar}) {
        InstanceParams params;
        params.size = 30;
        params.num_procs = 8;
        params.net = net;
        params.latency = 0.1;
        const Problem problem = workload::make_instance(params, 3);
        EXPECT_EQ(problem.num_procs(), 8u) << workload::net_name(net);
    }
    InstanceParams bad;
    bad.net = workload::Net::kHypercube;
    bad.num_procs = 6;  // not a power of two
    EXPECT_THROW((void)workload::make_instance(bad, 1), std::invalid_argument);
}

TEST(ShapeAndNetNames, RoundTrip) {
    EXPECT_EQ(workload::shape_from_name("gauss"), Shape::kGauss);
    EXPECT_EQ(workload::net_from_name("mesh2d"), workload::Net::kMesh2d);
    EXPECT_THROW((void)workload::shape_from_name("nope"), std::invalid_argument);
    EXPECT_THROW((void)workload::net_from_name("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace tsched
