// Unit tests for the platform substrate: link models, machines, cost
// matrices, and the Problem aggregate.
#include <gtest/gtest.h>

#include <cmath>

#include "platform/problem.hpp"
#include "workload/structured.hpp"

namespace tsched {
namespace {

TEST(UniformLinkModel, Arithmetic) {
    const UniformLinkModel m(2.0, 4.0);
    EXPECT_DOUBLE_EQ(m.comm_time(8.0, 0, 1), 2.0 + 8.0 / 4.0);
    EXPECT_DOUBLE_EQ(m.comm_time(8.0, 1, 1), 0.0);
    EXPECT_DOUBLE_EQ(m.mean_comm_time(8.0, 4), 4.0);
    EXPECT_DOUBLE_EQ(m.mean_comm_time(8.0, 1), 0.0);  // single proc: no comm
}

TEST(UniformLinkModel, RejectsBadParameters) {
    EXPECT_THROW(UniformLinkModel(-1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(UniformLinkModel(0.0, 0.0), std::invalid_argument);
    EXPECT_THROW(UniformLinkModel(0.0, -3.0), std::invalid_argument);
}

TEST(BusLinkModel, ContentionScalesBandwidth) {
    const BusLinkModel bus(0.0, 10.0, 5, 0.5);  // contention = 1 + 0.5*4 = 3
    EXPECT_DOUBLE_EQ(bus.effective_bandwidth(), 10.0 / 3.0);
    EXPECT_DOUBLE_EQ(bus.comm_time(10.0, 0, 1), 3.0);
    const BusLinkModel free_bus(0.0, 10.0, 5, 0.0);  // share 0 == uniform
    EXPECT_DOUBLE_EQ(free_bus.comm_time(10.0, 0, 1), 1.0);
}

TEST(TopologyLinkModel, RingHopsAndDiameter) {
    const auto ring = TopologyLinkModel::ring(6, 1.0, 1.0);
    EXPECT_EQ(ring->hops(0, 1), 1);
    EXPECT_EQ(ring->hops(0, 3), 3);
    EXPECT_EQ(ring->hops(0, 5), 1);  // wraparound
    EXPECT_EQ(ring->diameter(), 3);
}

TEST(TopologyLinkModel, Mesh2dHopsAreManhattan) {
    const auto mesh = TopologyLinkModel::mesh2d(3, 4, 1.0, 1.0);
    EXPECT_EQ(mesh->num_procs(), 12u);
    EXPECT_EQ(mesh->hops(0, 11), 2 + 3);  // (0,0) -> (2,3)
    EXPECT_EQ(mesh->diameter(), 5);
}

TEST(TopologyLinkModel, HypercubeHopsAreHammingDistance) {
    const auto cube = TopologyLinkModel::hypercube(3, 1.0, 1.0);
    EXPECT_EQ(cube->num_procs(), 8u);
    EXPECT_EQ(cube->hops(0b000, 0b111), 3);
    EXPECT_EQ(cube->hops(0b010, 0b011), 1);
    EXPECT_EQ(cube->diameter(), 3);
}

TEST(TopologyLinkModel, StarRoutesThroughHub) {
    const auto star = TopologyLinkModel::star(5, 1.0, 1.0);
    EXPECT_EQ(star->hops(0, 4), 1);
    EXPECT_EQ(star->hops(1, 2), 2);
    EXPECT_EQ(star->diameter(), 2);
}

TEST(TopologyLinkModel, FullyConnectedMatchesUniform) {
    const auto full = TopologyLinkModel::fully_connected(4, 0.5, 2.0);
    const UniformLinkModel uniform(0.5, 2.0);
    EXPECT_DOUBLE_EQ(full->comm_time(6.0, 0, 3), uniform.comm_time(6.0, 0, 3));
    EXPECT_EQ(full->diameter(), 1);
}

TEST(TopologyLinkModel, StoreAndForwardCostGrowsWithHops) {
    const auto ring = TopologyLinkModel::ring(8, 1.0, 2.0);
    const double one_hop = ring->comm_time(4.0, 0, 1);
    const double four_hops = ring->comm_time(4.0, 0, 4);
    EXPECT_DOUBLE_EQ(four_hops, 4.0 * one_hop);
}

TEST(TopologyLinkModel, RejectsDisconnected) {
    std::vector<std::vector<ProcId>> adj(3);
    adj[0].push_back(1);  // proc 2 isolated
    EXPECT_THROW(TopologyLinkModel(adj, 1.0, 1.0), std::invalid_argument);
}

TEST(Machine, HomogeneousAndHeterogeneousBuilders) {
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    const Machine homo = Machine::homogeneous(4, links);
    EXPECT_TRUE(homo.is_homogeneous());
    EXPECT_EQ(homo.num_procs(), 4u);
    const Machine hetero = Machine::heterogeneous(4, 1.0, links);
    EXPECT_FALSE(hetero.is_homogeneous());
    EXPECT_DOUBLE_EQ(hetero.speed(0), 0.5);
    EXPECT_DOUBLE_EQ(hetero.speed(3), 1.5);
}

TEST(Machine, RejectsBadInputs) {
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    EXPECT_THROW(Machine({}, links), std::invalid_argument);
    EXPECT_THROW(Machine({1.0}, nullptr), std::invalid_argument);
    EXPECT_THROW(Machine({0.0}, links), std::invalid_argument);
    EXPECT_THROW(Machine::heterogeneous(4, 2.5, links), std::invalid_argument);
}

TEST(CostMatrix, RowStatistics) {
    //           p0   p1   p2
    // task 0:    2    4    6
    // task 1:   10   10   10
    CostMatrix w(2, 3, {2.0, 4.0, 6.0, 10.0, 10.0, 10.0});
    EXPECT_DOUBLE_EQ(w.mean(0), 4.0);
    EXPECT_DOUBLE_EQ(w.min(0), 2.0);
    EXPECT_DOUBLE_EQ(w.max(0), 6.0);
    EXPECT_DOUBLE_EQ(w.median(0), 4.0);
    EXPECT_NEAR(w.stddev(0), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(w.stddev(1), 0.0);
    EXPECT_EQ(w.fastest_proc(0), 0);
    EXPECT_EQ(w.fastest_proc(1), 0);  // tie -> lowest id
    EXPECT_FALSE(w.is_homogeneous());
}

TEST(CostMatrix, SerialTimes) {
    CostMatrix w(2, 2, {1.0, 5.0, 2.0, 1.0});
    EXPECT_DOUBLE_EQ(w.serial_time(0), 3.0);
    EXPECT_DOUBLE_EQ(w.serial_time(1), 6.0);
    EXPECT_DOUBLE_EQ(w.best_serial_time(), 3.0);
}

TEST(CostMatrix, SetUpdatesStats) {
    CostMatrix w(1, 2, {1.0, 1.0});
    EXPECT_TRUE(w.is_homogeneous());
    w.set(0, 1, 3.0);
    EXPECT_DOUBLE_EQ(w.mean(0), 2.0);
    EXPECT_FALSE(w.is_homogeneous());
    EXPECT_THROW(w.set(0, 0, 0.0), std::invalid_argument);
}

TEST(CostMatrix, RejectsBadConstruction) {
    EXPECT_THROW(CostMatrix(2, 2, {1.0, 1.0, 1.0}), std::invalid_argument);  // size
    EXPECT_THROW(CostMatrix(1, 1, {0.0}), std::invalid_argument);            // non-positive
    EXPECT_THROW(CostMatrix(1, 0, {}), std::invalid_argument);               // zero procs
}

TEST(CostMatrix, FromSpeedsAndUniform) {
    Dag dag;
    dag.add_task(6.0);
    dag.add_task(3.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    const Machine machine({1.0, 2.0}, links);
    const CostMatrix w = CostMatrix::from_speeds(dag, machine);
    EXPECT_DOUBLE_EQ(w(0, 0), 6.0);
    EXPECT_DOUBLE_EQ(w(0, 1), 3.0);
    EXPECT_DOUBLE_EQ(w(1, 1), 1.5);
    const CostMatrix u = CostMatrix::uniform(dag, 3);
    EXPECT_TRUE(u.is_homogeneous());
    EXPECT_DOUBLE_EQ(u(1, 2), 3.0);
}

TEST(Problem, WiringAndDerivedQuantities) {
    // Chain 0 -> 1 with data 4; two procs; uniform links latency 0, bw 1.
    Dag dag;
    dag.add_task(2.0);
    dag.add_task(4.0);
    dag.add_edge(0, 1, 4.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(2, links);
    CostMatrix costs(2, 2, {2.0, 6.0, 4.0, 4.0});
    const Problem problem(dag, std::move(machine), std::move(costs));

    EXPECT_EQ(problem.num_tasks(), 2u);
    EXPECT_EQ(problem.num_procs(), 2u);
    EXPECT_DOUBLE_EQ(problem.exec_time(0, 1), 6.0);
    EXPECT_DOUBLE_EQ(problem.mean_exec(0), 4.0);
    EXPECT_DOUBLE_EQ(problem.comm_time(0, 1, 0, 1), 4.0);
    EXPECT_DOUBLE_EQ(problem.comm_time(0, 1, 0, 0), 0.0);
    EXPECT_DOUBLE_EQ(problem.mean_comm(0, 1), 4.0);
    // CP lower bound: min(2,6) + min(4,4) = 6.
    EXPECT_DOUBLE_EQ(problem.cp_lower_bound(), 6.0);
    // Realized CCR: mean comm 4 / mean exec 4 = 1.
    EXPECT_DOUBLE_EQ(problem.realized_ccr(), 1.0);
    EXPECT_EQ(problem.mean_critical_path(), (std::vector<TaskId>{0, 1}));
}

TEST(Problem, RejectsMismatchedComponents) {
    Dag dag;
    dag.add_task(1.0);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    EXPECT_THROW(Problem(dag, Machine::homogeneous(2, links), CostMatrix(1, 3, {1, 1, 1})),
                 std::invalid_argument);
    EXPECT_THROW(Problem(dag, Machine::homogeneous(2, links), CostMatrix(2, 2, {1, 1, 1, 1})),
                 std::invalid_argument);
}

TEST(Problem, CpLowerBoundOnStructuredGraph) {
    // Chain of 5 unit tasks, homogeneous unit costs: bound = 5.
    const Dag dag = workload::chain(5);
    const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
    Machine machine = Machine::homogeneous(3, links);
    CostMatrix costs = CostMatrix::uniform(dag, 3);
    const Problem problem(dag, std::move(machine), std::move(costs));
    EXPECT_DOUBLE_EQ(problem.cp_lower_bound(), 5.0);
}

}  // namespace
}  // namespace tsched
