// tsched_served — the scheduling service daemon: a ServeEngine behind the
// tsched wire protocol (src/net, DESIGN §17).
//
//   tsched_served --port=0 --threads=4 --max-conns=32
//       bind a loopback listener (port 0 = kernel-assigned; the bound port
//       is printed on stdout and flushed before serving, so scripts can
//       parse it — the flake-proof ephemeral-port discovery CI relies on),
//       then serve until SIGTERM/SIGINT, drain gracefully, and exit.
//
// Network flags:
//   --host=ADDR            IPv4 listen address (default 127.0.0.1)
//   --port=P               listen port (default 0 = ephemeral)
//   --max-conns=N          concurrent connections; extras get a typed
//                          too_many_connections error (default 64)
//   --per-conn-queue=N     outstanding replies per connection before the
//                          server stops reading that socket (default 64)
//   --max-frame-bytes=N    frame payload cap both directions (default 1 MiB)
//   --requests-per-tick=N  per-session fair-dispatch budget (default 8)
//   --flush-timeout-ms=D   post-drain outbox flush bound (default 5000)
//   --threads=T            serving pool workers (default 0 = hardware)
//
// Engine flags (same knobs as tsched_serve replay; DESIGN §16):
//   --cache=on|off --dedup=on|off --capacity=K --shards=S
//   --max-inflight=N --max-pending=N
//   --shed-policy=reject-new|drop-oldest|degrade --degrade-algo=A
//   --drain-timeout-ms=D   engine drain bound at shutdown (default 5000;
//                          0 = wait forever — fine in-process, risky for a
//                          daemon, hence the non-zero default)
//
// Config lints: TS07xx (engine) and TS08xx (net) diagnostics print on
// stderr before binding; warnings never refuse to run, errors do.
//
// Exit status: 0 clean drain, 2 usage/bind errors, 3 forced (drain timed
// out with work or unflushed replies outstanding).
#include <atomic>
#include <csignal>
#include <iostream>
#include <string>

#include "analysis/net_lints.hpp"
#include "analysis/serve_lints.hpp"
#include "net/server.hpp"
#include "util/args.hpp"

namespace {

using namespace tsched;

constexpr const char* kVersion = "tsched_served 1.0.0";

net::ServeServer* g_server = nullptr;

extern "C" void handle_signal(int) {
    // request_stop() is async-signal-safe: an atomic store plus a self-pipe
    // write.  Everything else (drain, flush, reporting) happens on the
    // event-loop and main threads.
    if (g_server != nullptr) g_server->request_stop();
}

void print_usage(std::ostream& os) {
    os << "usage: tsched_served [--host=ADDR] [--port=P] [--max-conns=N]\n"
       << "                     [--per-conn-queue=N] [--max-frame-bytes=N]\n"
       << "                     [--requests-per-tick=N] [--flush-timeout-ms=D]\n"
       << "                     [--threads=T] [--cache=on|off] [--dedup=on|off]\n"
       << "                     [--capacity=K] [--shards=S] [--max-inflight=N]\n"
       << "                     [--max-pending=N] [--shed-policy=P] [--degrade-algo=A]\n"
       << "                     [--drain-timeout-ms=D]\n"
       << "Serve scheduling requests over TCP until SIGTERM, then drain and exit.\n";
}

[[noreturn]] void usage_error(const std::string& error) {
    std::cerr << "tsched_served: " << error << '\n';
    print_usage(std::cerr);
    std::exit(2);
}

bool parse_on_off(const Args& args, const std::string& key, bool def) {
    const std::string v = args.get_string(key, def ? "on" : "off");
    if (v == "on" || v == "true" || v == "1") return true;
    if (v == "off" || v == "false" || v == "0") return false;
    usage_error("--" + key + " expects on|off, got '" + v + "'");
}

}  // namespace

int main(int argc, char** argv) {
    Args args(argc, argv);
    if (args.has("version")) {
        std::cout << kVersion << '\n';
        return 0;
    }
    if (args.has("help")) {
        print_usage(std::cout);
        return 0;
    }
    try {
        args.check_known({"host", "port", "max-conns", "per-conn-queue", "max-frame-bytes",
                          "requests-per-tick", "flush-timeout-ms", "threads", "cache", "dedup",
                          "capacity", "shards", "max-inflight", "max-pending", "shed-policy",
                          "degrade-algo", "drain-timeout-ms", "version", "help"});
        if (!args.positional().empty()) usage_error("tsched_served takes no positional arguments");
    } catch (const std::exception& e) {
        usage_error(e.what());
    }

    net::ServerConfig config;
    config.host = args.get_string("host", "127.0.0.1");
    const std::int64_t port = args.get_int("port", 0);
    if (port < 0 || port > 65535) usage_error("--port must be in [0, 65535]");
    config.port = static_cast<std::uint16_t>(port);
    config.max_conns = static_cast<std::size_t>(args.get_int("max-conns", 64));
    config.per_conn_queue = static_cast<std::size_t>(args.get_int("per-conn-queue", 64));
    config.max_frame_bytes =
        static_cast<std::size_t>(args.get_int("max-frame-bytes", 1 << 20));
    config.max_requests_per_tick =
        static_cast<std::size_t>(args.get_int("requests-per-tick", 8));
    config.flush_timeout_ms = args.get_double("flush-timeout-ms", 5000.0);

    config.engine.enable_cache = parse_on_off(args, "cache", true);
    config.engine.enable_dedup = parse_on_off(args, "dedup", true);
    config.engine.cache_capacity = static_cast<std::size_t>(args.get_int("capacity", 1024));
    config.engine.cache_shards = static_cast<std::size_t>(args.get_int("shards", 8));
    config.engine.max_inflight = static_cast<std::size_t>(args.get_int("max-inflight", 0));
    config.engine.max_pending = static_cast<std::size_t>(args.get_int("max-pending", 0));
    const std::string policy_name = args.get_string("shed-policy", "reject-new");
    if (const auto policy = serve::shed_policy_from_name(policy_name)) {
        config.engine.shed_policy = *policy;
    } else {
        usage_error("--shed-policy expects reject-new|drop-oldest|degrade, got '" + policy_name +
                    "'");
    }
    config.engine.degrade_algo = args.get_string("degrade-algo", "heft");
    config.engine.drain_timeout_ms = args.get_double("drain-timeout-ms", 5000.0);

    // Config sanity (TS07xx engine + TS08xx net): warnings run, errors do
    // not — a daemon that can never answer a request should fail fast.
    {
        analysis::Diagnostics diags;
        analysis::lint_serve_config(config.engine, 0.0, diags);
        analysis::lint_net_config(config, diags);
        bool fatal = false;
        for (const auto& d : diags.all()) {
            std::cerr << "tsched_served: " << analysis::severity_name(d.severity) << '['
                      << analysis::code_name(d.code) << "] " << d.message << '\n';
            fatal = fatal || d.severity == analysis::Severity::kError;
        }
        if (fatal) return 2;
    }

    const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));
    try {
        ThreadPool pool(threads);
        net::ServeServer server(config, pool);
        server.start();

        // The discovery line scripts parse; flush before installing the
        // handlers so a parser never races a signal.
        std::cout << "tsched_served: listening on " << config.host << ':' << server.port()
                  << " (" << pool.size() << " workers, max-conns=" << config.max_conns
                  << ", per-conn-queue=" << config.per_conn_queue << ")" << std::endl;

        g_server = &server;
        std::signal(SIGTERM, handle_signal);
        std::signal(SIGINT, handle_signal);

        server.wait();
        const net::NetDrainReport report = server.stop();
        g_server = nullptr;

        const net::NetServerStats stats = server.stats();
        const serve::EngineStats engine = server.engine_stats();
        std::cout << "tsched_served: drained (" << (report.clean ? "clean" : "forced") << "): "
                  << stats.accepted << " conns (" << stats.refused << " refused), "
                  << stats.requests << " requests, " << stats.responses << " responses, "
                  << stats.errors_sent << " errors (" << stats.protocol_errors
                  << " protocol), " << stats.backpressure_pauses << " backpressure pauses\n";
        std::cout << "tsched_served: outcomes ok=" << engine.ok << " shed=" << engine.shed
                  << " degraded=" << engine.degraded << " timed_out=" << engine.timed_out
                  << " draining=" << engine.draining << " | cache hits=" << engine.cache_hits
                  << " computed=" << engine.computed << " coalesced=" << engine.coalesced
                  << '\n';
        std::cout << "tsched_served: drain engine_clean=" << (report.engine.clean ? 1 : 0)
                  << " flushed_pending=" << report.engine.flushed_pending
                  << " flushed_sessions=" << report.flushed_sessions
                  << " forced_sessions=" << report.forced_sessions << std::endl;
        return report.clean ? 0 : 3;
    } catch (const std::exception& e) {
        std::cerr << "tsched_served: " << e.what() << '\n';
        return 2;
    }
}
