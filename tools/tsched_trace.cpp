// tsched_trace — Chrome-trace export, decision explanations, and trace
// counters for task schedules.
//
//   tsched_trace graph.tsg platform.tsp sched.tss --out=trace.json
//       convert a saved schedule to Chrome trace_event JSON (open in
//       chrome://tracing or https://ui.perfetto.dev); with no .tsg the
//       export draws execution tracks only
//   tsched_trace graph.tsg platform.tsp --algo=ils --explain=all
//       run a scheduler with a decision trace attached and print why each
//       task landed on its processor (EFT/OCT numbers per candidate)
//
// Files are classified by extension (.tsg / .tsp / .tss) whether given
// positionally or via --dag= / --platform= / --schedule=.
//
//   --mode=M          time base for the export: planned (default), sim
//                     (replay through the event simulator), or contended
//                     (one-port contention model; adds real transfer windows)
//   --out=PATH        write the Chrome trace JSON here (default stdout
//                     when a .tss is given and no other action is requested)
//   --algo=NAME       schedule the problem with this algorithm (any registry
//                     name, e.g. heft, peft, cpop, lheft, ils, ils-d) and
//                     trace its decisions; the produced schedule feeds
//                     --out/--mode instead of a .tss file
//   --explain=T|all   print the decision record for task T (an id) or for
//                     every task of the winning pass
//   --decisions=PATH  write the full decision trace (all passes) as JSON
//   --crash=P@F       export a faulty run instead: processor P fail-stops at
//                     fraction F of the static makespan (e.g. --crash=2@0.5),
//                     the repair policy patches the schedule mid-run, and the
//                     trace gains a fault timeline (needs .tsg and .tsp)
//   --repair=NAME     repair policy for --crash: none, remap-pending
//                     (default), reschedule-suffix, or use-duplicates
//   --counters[=fmt]  after the run, print every trace counter and span
//                     recorded in this process: fmt = md (default) or csv
//                     (empty in a TSCHED_TRACE=OFF build)
//   --version/--help  print and exit 0
//
// Exit status: 0 success, 2 usage or file errors.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "core/registry.hpp"
#include "graph/serialize.hpp"
#include "platform/platform_io.hpp"
#include "sched/schedule_io.hpp"
#include "sim/faults.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/counters.hpp"
#include "trace/decision.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

using namespace tsched;

constexpr const char* kVersion = "tsched_trace 1.0.0";

void print_usage(std::ostream& os) {
    os << "usage: tsched_trace <file.tsg> <file.tsp> [file.tss]\n"
       << "                    [--out=PATH] [--mode=planned|sim|contended]\n"
       << "                    [--algo=NAME] [--explain=TASK|all] [--decisions=PATH]\n"
       << "                    [--crash=P@F] [--repair=POLICY]\n"
       << "                    [--counters[=md|csv]] [--version] [--help]\n"
       << "Convert a schedule to Chrome trace_event JSON, or run a scheduler\n"
       << "with a decision trace and explain every placement.\n";
}

[[noreturn]] void usage_error(const std::string& error) {
    std::cerr << "tsched_trace: " << error << '\n';
    print_usage(std::cerr);
    std::exit(2);
}

bool ends_with(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

trace::TraceMode parse_mode(const std::string& mode) {
    if (mode == "planned") return trace::TraceMode::kPlanned;
    if (mode == "sim" || mode == "simulated") return trace::TraceMode::kSimulated;
    if (mode == "contended") return trace::TraceMode::kContended;
    usage_error("unknown --mode '" + mode + "' (expected planned, sim, or contended)");
}

bool write_or_print(const std::string& out_path, const std::string& text) {
    if (out_path.empty() || out_path == "-") {
        std::cout << text << '\n';
        return true;
    }
    std::ofstream out(out_path);
    out << text << '\n';
    if (!out) {
        std::cerr << "tsched_trace: could not write " << out_path << '\n';
        return false;
    }
    return true;
}

void print_counters(const std::string& format) {
    const trace::Snapshot snap = trace::registry().snapshot();
    Table table({"kind", "name", "value", "count", "total_ms"});
    for (const auto& c : snap.counters) {
        table.new_row().add("counter").add(c.name).add(c.value).add("").add("");
    }
    for (const auto& s : snap.spans) {
        table.new_row()
            .add("span")
            .add(s.name)
            .add("")
            .add(s.count)
            .add(static_cast<double>(s.total_ns) / 1e6, 3);
    }
    if (format == "csv") {
        std::cout << table.to_csv();
    } else {
        table.print(std::cout);
    }
}

}  // namespace

int main(int argc, char** argv) {
    const Args args(argc, argv);

    if (args.has("help")) {
        print_usage(std::cout);
        return 0;
    }
    if (args.has("version")) {
        std::cout << kVersion << '\n';
        return 0;
    }
    try {
        args.check_known({"dag", "platform", "schedule", "out", "mode", "algo", "explain",
                          "decisions", "crash", "repair", "counters", "help", "version"});
    } catch (const std::exception& err) {
        usage_error(err.what());
    }

    std::optional<std::string> dag_path;
    std::optional<std::string> platform_path;
    std::optional<std::string> schedule_path;
    for (const std::string& p : args.positional()) {
        if (ends_with(p, ".tsg")) {
            dag_path = p;
        } else if (ends_with(p, ".tsp")) {
            platform_path = p;
        } else if (ends_with(p, ".tss")) {
            schedule_path = p;
        } else {
            usage_error("cannot classify '" + p + "' (expected .tsg, .tsp, or .tss)");
        }
    }
    if (args.has("dag")) dag_path = args.get_string("dag", "");
    if (args.has("platform")) platform_path = args.get_string("platform", "");
    if (args.has("schedule")) schedule_path = args.get_string("schedule", "");

    const std::string algo = args.get_string("algo", "");
    const std::string explain = args.get_string("explain", "");
    const std::string decisions_path = args.get_string("decisions", "");
    const bool want_counters = args.has("counters");
    const trace::TraceMode mode = parse_mode(args.get_string("mode", "planned"));

    if (!algo.empty() && schedule_path) {
        usage_error("--algo computes its own schedule; drop the .tss input");
    }
    if (algo.empty() && (!explain.empty() || !decisions_path.empty())) {
        usage_error("--explain/--decisions need --algo (a decision trace records a live run)");
    }
    if (algo.empty() && !schedule_path && !want_counters) {
        usage_error("nothing to do: give a schedule (.tss) to export or --algo to run");
    }

    try {
        std::optional<Problem> problem;
        if (dag_path && platform_path) {
            const Dag dag = load_tsg(*dag_path);
            PlatformSpec platform = load_tsp(*platform_path);
            problem.emplace(dag, std::move(platform.machine), std::move(platform.costs));
        }

        // Where the schedule comes from: a .tss file, or a traced live run.
        std::optional<Schedule> schedule;
        trace::DecisionTrace decisions;
        if (!algo.empty()) {
            if (!problem) usage_error("--algo needs both the .tsg and the .tsp");
            const SchedulerPtr scheduler = make_scheduler(algo);
            schedule.emplace(scheduler->schedule_traced(*problem, &decisions));
        } else if (schedule_path) {
            schedule.emplace(load_tss(*schedule_path));
        }

        if (!explain.empty()) {
            if (explain == "all") {
                std::cout << decisions.render_text();
            } else {
                std::size_t pos = 0;
                const long task = std::stol(explain, &pos);
                if (pos != explain.size() || task < 0) {
                    usage_error("--explain expects a task id or 'all', got '" + explain + "'");
                }
                std::cout << decisions.explain(static_cast<TaskId>(task)) << '\n';
            }
        }
        if (!decisions_path.empty()) {
            if (!write_or_print(decisions_path, decisions.render_json())) return 2;
        }

        // Chrome export: explicit --out, or the default action when a .tss
        // was given and nothing else was requested.
        const bool explicit_out = args.has("out");
        const bool export_by_default =
            schedule_path && explain.empty() && decisions_path.empty() && !want_counters;
        const std::string crash_spec = args.get_string("crash", "");
        if (!crash_spec.empty()) {
            if (!schedule || !problem) {
                usage_error("--crash needs a schedule (.tss or --algo) plus .tsg and .tsp");
            }
            const std::size_t at = crash_spec.find('@');
            if (at == std::string::npos) {
                usage_error("--crash expects PROC@FRACTION, e.g. --crash=2@0.5");
            }
            sim::FaultPlan plan;
            plan.crashes.push_back(
                {static_cast<ProcId>(std::stol(crash_spec.substr(0, at))),
                 std::stod(crash_spec.substr(at + 1)) * schedule->makespan()});
            const RepairPolicyPtr policy =
                make_repair_policy(args.get_string("repair", "remap-pending"));
            const sim::FaultReport report =
                sim::simulate_faulty(*schedule, *problem, plan, *policy);
            std::cerr << "crash P" << plan.crashes[0].proc << " at t=" << plan.crashes[0].time
                      << " repair=" << policy->name() << ": makespan "
                      << report.static_makespan << " -> " << report.sim.makespan
                      << " (degradation " << report.degradation << ", "
                      << report.migrated_tasks << " migrated)\n";
            if (!write_or_print(args.get_string("out", ""),
                                trace::chrome_trace_json(report, *problem))) {
                return 2;
            }
        } else if (schedule && (explicit_out || export_by_default)) {
            const std::string json = problem ? trace::chrome_trace_json(*schedule, *problem, mode)
                                             : trace::chrome_trace_json(*schedule);
            if (!write_or_print(args.get_string("out", ""), json)) return 2;
        }
    } catch (const std::exception& err) {
        std::cerr << "tsched_trace: " << err.what() << '\n';
        return 2;
    }

    if (want_counters) print_counters(args.get_string("counters", "md"));
    return 0;
}
