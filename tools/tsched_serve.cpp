// tsched_serve — generate and replay scheduling-request traces against the
// serving core (ServeEngine + content-addressed schedule cache).
//
//   tsched_serve --gen=trace.tsr --requests=200 --repeat-frac=0.5
//       write a .tsr request trace: a deterministic mix of repeated
//       (cache-hittable) and perturbed (fresh-seed) graphs
//   tsched_serve trace.tsr --threads=4 --batch=16
//       replay the trace through a ServeEngine and report QPS, latency
//       p50/p95/p99, and cache hit rate
//
// Generation flags (with --gen=PATH):
//   --requests=N      stream length (default 128)
//   --repeat-frac=F   exact fraction of requests repeating an earlier one
//                     (default 0.5)
//   --algos=a,b       algorithms drawn per request (default heft)
//   --shapes=s1,s2    DAG families drawn per request (default layered)
//   --n=N             instance size parameter (default 100)
//   --procs=P         processors (default 8)
//   --net=NAME        interconnect (default uniform)
//   --ccr=X --beta=X  cost calibration (defaults 1.0 / 0.5)
//   --seed=S          generation seed (default 2007)
//
// Replay flags (with a positional trace.tsr):
//   --cache=on|off    content-addressed schedule cache (default on)
//   --dedup=on|off    in-flight coalescing of identical requests (default on)
//   --capacity=K      cache entry budget (default 1024)
//   --shards=S        cache lock shards (default 8)
//   --threads=T       serving pool workers (default 0 = hardware)
//   --batch=B         requests per submitted batch (default 16)
//   --epochs=E        passes over the stream against one engine (default 1;
//                     >1 measures steady-state serving with a warm cache)
//   --deadline-ms=D   per-request latency budget (default 0 = none); expired
//                     requests resolve as timed_out (DESIGN §16)
//   --wait-budget-ms=W  per-batch wall budget; stragglers surface as
//                     timed_out instead of hanging the replay (default 0)
//   --max-inflight=N  admission budget: concurrent computations (default 0
//                     = unbounded, admission control off)
//   --max-pending=N   bounded backlog when saturated (default 0)
//   --shed-policy=P   reject-new|drop-oldest|degrade (default reject-new)
//   --degrade-algo=A  substitute algorithm for --shed-policy=degrade
//                     (default heft)
//   --drain-timeout-ms=D  engine teardown bound (default 0 = wait forever)
//   --json=PATH       also write the report as JSON ('-' = stdout); includes
//                     the engine obs metrics document under "metrics"
//   --metrics-out=PATH        live metrics during the replay (obs/reporter):
//                             JSONL lines, or a Prometheus scrape file
//   --metrics-format=json|prometheus   output format (default json)
//   --metrics-interval-ms=N   background flush period (default 1000)
//   --metrics-epoch           flush once per epoch instead of on a timer
//                             (deterministic line count: one per epoch + final)
//   --counters        print trace counters *and* the engine/cache/pool obs
//                     metrics after the replay
//   --version/--help  print and exit 0
//
// Network replay flags (with --connect; drives a live tsched_served over
// N concurrent connections instead of an in-process engine — E21):
//   --connect=HOST:PORT  replay the trace over the wire against this server
//   --conns=N            concurrent connections, one thread each (default 8)
//   --window=W           outstanding pipelined requests per connection
//                        (default 16)
//   --epochs/--deadline-ms/--json as above; the JSON report adds the
//   accounting identity fields (ok+shed+degraded+timed_out+draining+failed
//   == requests) and the order-independent schedule payload digest.
//
// Exit status: 0 success, 2 usage or file errors; network replay exits 1
// if the accounting identity fails or a schedule payload was inconsistent.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/serve_lints.hpp"
#include "net/net_replay.hpp"
#include "obs/export.hpp"
#include "serve/replay.hpp"
#include "serve/request_trace.hpp"
#include "trace/counters.hpp"
#include "util/args.hpp"

namespace {

using namespace tsched;

constexpr const char* kVersion = "tsched_serve 1.0.0";

void print_usage(std::ostream& os) {
    os << "usage: tsched_serve --gen=trace.tsr [--requests=N] [--repeat-frac=F]\n"
       << "                    [--algos=a,b] [--shapes=s1,s2] [--n=N] [--procs=P]\n"
       << "                    [--net=NAME] [--ccr=X] [--beta=X] [--seed=S]\n"
       << "       tsched_serve trace.tsr [--cache=on|off] [--dedup=on|off]\n"
       << "                    [--capacity=K] [--shards=S] [--threads=T]\n"
       << "                    [--batch=B] [--epochs=E] [--json=PATH] [--counters]\n"
       << "                    [--deadline-ms=D] [--wait-budget-ms=W]\n"
       << "                    [--max-inflight=N] [--max-pending=N]\n"
       << "                    [--shed-policy=reject-new|drop-oldest|degrade]\n"
       << "                    [--degrade-algo=A] [--drain-timeout-ms=D]\n"
       << "                    [--metrics-out=PATH] [--metrics-format=json|prometheus]\n"
       << "                    [--metrics-interval-ms=N] [--metrics-epoch]\n"
       << "       tsched_serve trace.tsr --connect=HOST:PORT [--conns=N] [--window=W]\n"
       << "                    [--epochs=E] [--deadline-ms=D] [--json=PATH]\n"
       << "Generate a scheduling-request trace, replay one through the serving\n"
       << "core, or replay one over the wire against a live tsched_served.\n";
}

[[noreturn]] void usage_error(const std::string& error) {
    std::cerr << "tsched_serve: " << error << '\n';
    print_usage(std::cerr);
    std::exit(2);
}

bool parse_on_off(const Args& args, const std::string& key, bool def) {
    const std::string v = args.get_string(key, def ? "on" : "off");
    if (v == "on" || v == "true" || v == "1") return true;
    if (v == "off" || v == "false" || v == "0") return false;
    usage_error("--" + key + " expects on|off, got '" + v + "'");
}

int generate(const Args& args) {
    serve::TraceGenParams params;
    params.requests = static_cast<std::size_t>(args.get_int("requests", 128));
    params.repeat_frac = args.get_double("repeat-frac", 0.5);
    params.algos = args.get_string_list("algos", {"heft"});
    params.size = static_cast<std::size_t>(args.get_int("n", 100));
    params.procs = static_cast<std::size_t>(args.get_int("procs", 8));
    params.ccr = args.get_double("ccr", 1.0);
    params.beta = args.get_double("beta", 0.5);
    params.seed = static_cast<std::uint64_t>(args.get_int("seed", 2007));
    params.shapes.clear();
    for (const std::string& name : args.get_string_list("shapes", {"layered"}))
        params.shapes.push_back(workload::shape_from_name(name));
    params.net = workload::net_from_name(args.get_string("net", "uniform"));

    const std::string path = args.get_string("gen", "");
    const auto trace = serve::generate_trace(params);
    serve::save_tsr(path, trace);
    std::cout << "tsched_serve: wrote " << trace.size() << " requests to " << path << " ("
              << params.repeat_frac * 100 << "% repeats)\n";
    return 0;
}

std::string report_json(const serve::ReplayReport& report, const serve::ReplayOptions& options) {
    std::ostringstream os;
    os.precision(6);
    os << std::fixed;
    os << "{\"schema\":1,"
       << "\"requests\":" << report.requests << ','
       << "\"batch\":" << options.batch << ','
       << "\"epochs\":" << options.epochs << ','
       << "\"cache\":" << (options.config.enable_cache ? "true" : "false") << ','
       << "\"capacity\":" << options.config.cache_capacity << ','
       << "\"wall_ms\":" << report.wall_ms << ','
       << "\"qps\":" << report.qps << ','
       << "\"latency_ms\":{\"mean\":" << report.latency_mean_ms << ",\"p50\":"
       << report.latency_p50_ms << ",\"p95\":" << report.latency_p95_ms << ",\"p99\":"
       << report.latency_p99_ms << ",\"p999\":" << report.latency_p999_ms << ",\"max\":"
       << report.latency_max_ms << "},"
       << "\"hist_latency_ms\":{\"p50\":" << report.hist_p50_ms << ",\"p95\":"
       << report.hist_p95_ms << ",\"p99\":" << report.hist_p99_ms << ",\"p999\":"
       << report.hist_p999_ms << "},"
       << "\"outcomes\":{\"ok\":" << report.ok << ",\"shed\":" << report.shed
       << ",\"degraded\":" << report.degraded << ",\"timed_out\":" << report.timed_out
       << ",\"draining\":" << report.draining << "},"
       << "\"shed_rate\":" << report.shed_rate() << ','
       << "\"deadline_hit_rate\":" << report.deadline_hit_rate() << ','
       << "\"shed_policy\":\"" << serve::shed_policy_name(options.config.shed_policy) << "\","
       << "\"max_inflight\":" << options.config.max_inflight << ','
       << "\"max_pending\":" << options.config.max_pending << ','
       << "\"deadline_ms\":" << options.deadline_ms << ','
       << "\"computed\":" << report.stats.computed << ','
       << "\"coalesced\":" << report.stats.coalesced << ','
       << "\"hits\":" << report.stats.cache_hits << ','
       << "\"evictions\":" << report.stats.cache.evictions << ','
       << "\"hit_rate\":" << report.stats.hit_rate() << ','
       << "\"metrics\":" << obs::to_json(report.metrics) << '}';
    return os.str();
}

std::string net_report_json(const net::NetReplayReport& report,
                            const net::NetReplayOptions& options) {
    std::ostringstream os;
    os.precision(6);
    os << std::fixed;
    os << "{\"schema\":1,"
       << "\"mode\":\"net\","
       << "\"conns\":" << report.conns << ','
       << "\"window\":" << options.window << ','
       << "\"epochs\":" << options.epochs << ','
       << "\"requests\":" << report.requests << ','
       << "\"replies\":" << report.replies << ','
       << "\"wall_ms\":" << report.wall_ms << ','
       << "\"qps\":" << report.qps << ','
       << "\"latency_ms\":{\"mean\":" << report.latency_mean_ms << ",\"p50\":"
       << report.latency_p50_ms << ",\"p95\":" << report.latency_p95_ms << ",\"p99\":"
       << report.latency_p99_ms << ",\"p999\":" << report.latency_p999_ms << ",\"max\":"
       << report.latency_max_ms << "},"
       << "\"hist_latency_ms\":{\"p50\":" << report.hist_p50_ms << ",\"p95\":"
       << report.hist_p95_ms << ",\"p99\":" << report.hist_p99_ms << "},"
       << "\"outcomes\":{\"ok\":" << report.ok << ",\"shed\":" << report.shed
       << ",\"degraded\":" << report.degraded << ",\"timed_out\":" << report.timed_out
       << ",\"draining\":" << report.draining << ",\"failed\":" << report.failed << "},"
       << "\"cache_hits\":" << report.cache_hits << ','
       << "\"accounting_ok\":" << (report.accounting_ok() ? "true" : "false") << ','
       << "\"schedule_digest\":\"" << std::hex << report.schedule_digest << std::dec << "\","
       << "\"payload_consistent\":" << (report.payload_consistent ? "true" : "false") << '}';
    return os.str();
}

int replay_over_wire(const Args& args, const std::string& trace_path) {
    net::NetReplayOptions options;
    const std::string endpoint = args.get_string("connect", "");
    const auto colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == endpoint.size())
        usage_error("--connect expects HOST:PORT, got '" + endpoint + "'");
    options.host = endpoint.substr(0, colon);
    const int port = std::stoi(endpoint.substr(colon + 1));
    if (port <= 0 || port > 65535) usage_error("--connect port must be in [1, 65535]");
    options.port = static_cast<std::uint16_t>(port);
    options.conns = static_cast<std::size_t>(args.get_int("conns", 8));
    options.window = static_cast<std::size_t>(args.get_int("window", 16));
    options.epochs = static_cast<std::size_t>(args.get_int("epochs", 1));
    options.deadline_ms = args.get_double("deadline-ms", 0.0);

    const auto trace = serve::load_tsr(trace_path);
    if (trace.empty()) {
        std::cerr << "tsched_serve: trace " << trace_path << " has no requests\n";
        return 2;
    }

    const auto report = net::replay_net(trace, options);

    std::cout << "tsched_serve: replayed " << trace.size() << " requests x " << options.epochs
              << " epoch(s) over " << options.conns << " connection(s) to " << options.host
              << ':' << options.port << " (window=" << options.window << ")\n";
    std::cout.precision(3);
    std::cout << std::fixed;
    std::cout << "  wall      " << report.wall_ms << " ms\n"
              << "  qps       " << report.qps << '\n'
              << "  latency   mean " << report.latency_mean_ms << " ms | p50 "
              << report.latency_p50_ms << " | p95 " << report.latency_p95_ms << " | p99 "
              << report.latency_p99_ms << " | max " << report.latency_max_ms << '\n'
              << "  outcomes  ok " << report.ok << " shed " << report.shed << " degraded "
              << report.degraded << " timed_out " << report.timed_out << " draining "
              << report.draining << " failed " << report.failed << " (of " << report.requests
              << ")\n"
              << "  cache     " << report.cache_hits << " hits | digest " << std::hex
              << report.schedule_digest << std::dec << " | payload "
              << (report.payload_consistent ? "consistent" : "INCONSISTENT") << '\n';

    const std::string json_path = args.get_string("json", "");
    if (!json_path.empty()) {
        const std::string doc = net_report_json(report, options);
        if (json_path == "-") {
            std::cout << doc << '\n';
        } else {
            std::ofstream out(json_path);
            out << doc << '\n';
            if (!out) {
                std::cerr << "tsched_serve: could not write " << json_path << '\n';
                return 2;
            }
        }
    }

    if (!report.accounting_ok()) {
        std::cerr << "tsched_serve: accounting identity FAILED: ok+shed+degraded+timed_out"
                     "+draining+failed != requests\n";
        return 1;
    }
    if (!report.payload_consistent) {
        std::cerr << "tsched_serve: schedule payloads INCONSISTENT for equal fingerprints\n";
        return 1;
    }
    return 0;
}

int replay(const Args& args, const std::string& trace_path) {
    serve::ReplayOptions options;
    options.config.enable_cache = parse_on_off(args, "cache", true);
    options.config.enable_dedup = parse_on_off(args, "dedup", true);
    options.config.cache_capacity = static_cast<std::size_t>(args.get_int("capacity", 1024));
    options.config.cache_shards = static_cast<std::size_t>(args.get_int("shards", 8));
    options.batch = static_cast<std::size_t>(args.get_int("batch", 16));
    options.epochs = static_cast<std::size_t>(args.get_int("epochs", 1));
    const auto threads = static_cast<std::size_t>(args.get_int("threads", 0));

    options.deadline_ms = args.get_double("deadline-ms", 0.0);
    options.wait_budget_ms = args.get_double("wait-budget-ms", 0.0);
    options.config.max_inflight = static_cast<std::size_t>(args.get_int("max-inflight", 0));
    options.config.max_pending = static_cast<std::size_t>(args.get_int("max-pending", 0));
    const std::string policy_name = args.get_string("shed-policy", "reject-new");
    if (const auto policy = serve::shed_policy_from_name(policy_name)) {
        options.config.shed_policy = *policy;
    } else {
        usage_error("--shed-policy expects reject-new|drop-oldest|degrade, got '" +
                    policy_name + "'");
    }
    options.config.degrade_algo = args.get_string("degrade-algo", "heft");
    options.config.drain_timeout_ms = args.get_double("drain-timeout-ms", 0.0);

    // Config sanity lints (TS07xx, analysis/serve_lints.hpp): nonsense knob
    // combinations are warnings on stderr, never a refusal to run.
    {
        analysis::Diagnostics diags;
        analysis::lint_serve_config(options.config, options.deadline_ms, diags);
        for (const auto& d : diags.all())
            std::cerr << "tsched_serve: " << analysis::severity_name(d.severity) << '['
                      << analysis::code_name(d.code) << "] " << d.message << '\n';
    }

    options.metrics.path = args.get_string("metrics-out", "");
    const std::string metrics_format = args.get_string("metrics-format", "json");
    if (metrics_format == "json") {
        options.metrics.format = obs::ReporterOptions::Format::kJson;
    } else if (metrics_format == "prometheus" || metrics_format == "prom") {
        options.metrics.format = obs::ReporterOptions::Format::kPrometheus;
    } else {
        usage_error("--metrics-format expects json|prometheus, got '" + metrics_format + "'");
    }
    options.metrics.interval_ms =
        static_cast<std::uint64_t>(args.get_int("metrics-interval-ms", 1000));
    options.metrics_per_epoch = args.has("metrics-epoch");

    const auto trace = serve::load_tsr(trace_path);
    if (trace.empty()) {
        std::cerr << "tsched_serve: trace " << trace_path << " has no requests\n";
        return 2;
    }

    ThreadPool pool(threads);
    const auto report = serve::replay_trace(trace, options, pool);

    std::cout << "tsched_serve: replayed " << trace.size() << " requests x " << options.epochs
              << " epoch(s) on " << pool.size() << " worker(s), batch=" << options.batch
              << ", cache=" << (options.config.enable_cache ? "on" : "off")
              << " (capacity=" << options.config.cache_capacity << ")\n";
    std::cout.precision(3);
    std::cout << std::fixed;
    std::cout << "  wall      " << report.wall_ms << " ms\n"
              << "  qps       " << report.qps << '\n'
              << "  latency   mean " << report.latency_mean_ms << " ms | p50 "
              << report.latency_p50_ms << " | p95 " << report.latency_p95_ms << " | p99 "
              << report.latency_p99_ms << " | p99.9 " << report.latency_p999_ms << " | max "
              << report.latency_max_ms << '\n'
              << "  cache     " << report.stats.cache_hits << " hits / "
              << report.stats.cache.evictions
              << " evictions (hit rate " << report.stats.hit_rate() * 100 << "%)\n"
              << "  computed  " << report.stats.computed << " cold runs, "
              << report.stats.coalesced << " coalesced\n";
    if (options.config.max_inflight > 0 || options.deadline_ms > 0.0 ||
        options.wait_budget_ms > 0.0) {
        std::cout << "  overload  policy=" << serve::shed_policy_name(options.config.shed_policy)
                  << " inflight<=" << options.config.max_inflight << " pending<="
                  << options.config.max_pending << " | ok " << report.ok << " shed "
                  << report.shed << " degraded " << report.degraded << " timed_out "
                  << report.timed_out << " draining " << report.draining << '\n'
                  << "  rates     shed " << report.shed_rate() * 100 << "% | deadline-hit "
                  << report.deadline_hit_rate() * 100 << "%\n";
    }

    const std::string json_path = args.get_string("json", "");
    if (!json_path.empty()) {
        const std::string doc = report_json(report, options);
        if (json_path == "-") {
            std::cout << doc << '\n';
        } else {
            std::ofstream out(json_path);
            out << doc << '\n';
            if (!out) {
                std::cerr << "tsched_serve: could not write " << json_path << '\n';
                return 2;
            }
        }
    }

    if (args.has("counters")) {
        const auto snapshot = trace::registry().snapshot();
        for (const auto& counter : snapshot.counters)
            if (counter.value > 0) std::cout << counter.name << " = " << counter.value << '\n';
        // The engine/cache/pool obs document for the same run, so one flag
        // gives the full picture (counters alone miss distributions and
        // gauges).  Histograms print as a one-line summary each.
        for (const auto& counter : report.metrics.counters)
            std::cout << counter.name << " = " << counter.value << '\n';
        for (const auto& gauge : report.metrics.gauges) {
            std::cout << gauge.name;
            for (const auto& [key, value] : gauge.labels)
                std::cout << '{' << key << '=' << value << '}';
            std::cout << " = " << gauge.value << '\n';
        }
        for (const auto& hist : report.metrics.histograms) {
            std::cout << hist.name << " count=" << hist.hist.count;
            if (hist.hist.count > 0) {
                std::cout << " p50=" << hist.hist.quantile(0.5)
                          << " p99=" << hist.hist.quantile(0.99)
                          << " max=" << hist.hist.max;
            }
            std::cout << '\n';
        }
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    Args args(argc, argv);
    if (args.has("version")) {
        std::cout << kVersion << '\n';
        return 0;
    }
    if (args.has("help")) {
        print_usage(std::cout);
        return 0;
    }
    try {
        args.check_known({"gen", "requests", "repeat-frac", "algos", "shapes", "n", "procs",
                          "net", "ccr", "beta", "seed", "cache", "dedup", "capacity", "shards",
                          "threads", "batch", "epochs", "json", "counters", "deadline-ms",
                          "wait-budget-ms", "max-inflight", "max-pending", "shed-policy",
                          "degrade-algo", "drain-timeout-ms", "metrics-out", "metrics-format",
                          "metrics-interval-ms", "metrics-epoch", "connect", "conns", "window",
                          "version", "help"});
    } catch (const std::exception& e) {
        usage_error(e.what());
    }
    try {
        if (args.has("gen")) return generate(args);
        if (args.positional().size() != 1)
            usage_error("expected exactly one trace.tsr argument (or --gen=PATH)");
        if (args.has("connect")) return replay_over_wire(args, args.positional().front());
        return replay(args, args.positional().front());
    } catch (const std::exception& e) {
        std::cerr << "tsched_serve: " << e.what() << '\n';
        return 2;
    }
}
