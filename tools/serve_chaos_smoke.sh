#!/usr/bin/env bash
# Acceptance smoke for the serving overload layer.  The chaos battery
# (bench_serve --chaos) prints no timings, so its entire output — gate-burst
# outcome sequences, the deadline cascade, the fault-storm tallies, and the
# drain-under-fire report — must be byte-identical across reruns AND across
# pool widths; any diff means an admission or waiter-resolution decision
# leaked a dependence on thread interleaving.  The tsched_serve overload
# flags must then produce a replay whose outcome accounting balances, and
# the TS07xx config lints must fire on nonsense knob combinations.
#
# usage: serve_chaos_smoke.sh path/to/bench_serve path/to/tsched_serve [python3]
set -u

BENCH="${1:?usage: serve_chaos_smoke.sh path/to/bench_serve path/to/tsched_serve [python3]}"
SERVE="${2:?usage: serve_chaos_smoke.sh path/to/bench_serve path/to/tsched_serve [python3]}"
PYTHON="${3:-python3}"
# cwd-safe: absolutize the binary paths before leaving the caller's directory
# (try the caller's cwd first, then the repo root), then run from the repo
# root so the script behaves identically no matter where it was launched.
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
for var in BENCH SERVE; do
    eval "bin=\$$var"
    case "$bin" in
        /*) ;;
        *) if [ -x "$bin" ]; then eval "$var=\"$(pwd)/$bin\""; else eval "$var=\"$ROOT/$bin\""; fi ;;
    esac
done
cd "$ROOT" || exit 1
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "serve_chaos_smoke: FAIL: $*" >&2
    exit 1
}

CHAOS="--chaos --requests=24 --n=60 --algo=heft --seed=2007"

# 1. The battery passes, and a rerun with identical flags is byte-identical.
"$BENCH" $CHAOS --threads=4 > "$WORK/run_a.out" 2>&1 \
    || fail "chaos battery failed: $(cat "$WORK/run_a.out")"
grep -q "chaos: OK" "$WORK/run_a.out" || fail "battery did not print 'chaos: OK'"
"$BENCH" $CHAOS --threads=4 > "$WORK/run_b.out" 2>&1 || fail "chaos rerun failed"
diff -u "$WORK/run_a.out" "$WORK/run_b.out" > /dev/null \
    || fail "chaos output differs between identical reruns"

# 2. Pool-width independence: the gated stalls freeze the world, so admission
#    decisions are a pure function of submission order — a 2-wide and an
#    8-wide pool must retire the exact same outcome sequences.
"$BENCH" $CHAOS --threads=2 > "$WORK/run_narrow.out" 2>&1 || fail "narrow-pool run failed"
"$BENCH" $CHAOS --threads=8 > "$WORK/run_wide.out" 2>&1 || fail "wide-pool run failed"
diff -u "$WORK/run_narrow.out" "$WORK/run_wide.out" > /dev/null \
    || fail "chaos output depends on pool width (2 vs 8 threads)"
diff -u "$WORK/run_a.out" "$WORK/run_narrow.out" > /dev/null \
    || fail "chaos output depends on pool width (4 vs 2 threads)"

# 3. A different seed reshuffles the fault storm (the battery is seeded, not
#    hardwired) while the seed-independent gate bursts keep their sequences.
"$BENCH" --chaos --requests=24 --n=60 --algo=heft --seed=9001 --threads=4 \
    > "$WORK/run_seed.out" 2>&1 || fail "reseeded chaos run failed"
grep -q "chaos: OK" "$WORK/run_seed.out" || fail "reseeded battery did not pass"
diff -u "$WORK/run_a.out" "$WORK/run_seed.out" > /dev/null \
    && fail "different chaos seeds produced identical fault storms"
grep -q "ok ok ok ok ok ok ok ok shed" "$WORK/run_seed.out" \
    || fail "reseeded battery lost the reject-new burst sequence"

# 4. The accounting gate rides along: every admitted request resolves to
#    exactly one outcome (checks 1-7, including the gate bursts and the
#    fault-storm identity ok+shed+degraded+timed_out+draining+failed == N).
"$BENCH" --check --requests=48 --n=60 --algo=heft > "$WORK/check.out" 2>&1 \
    || fail "bench_serve --check failed: $(cat "$WORK/check.out")"

# 5. CLI overload replay: bounded admission with drop-oldest must shed, the
#    JSON report's outcome tallies must balance against the request count,
#    and a generous deadline must not time anything out.  One worker, cold
#    cache, and a single 24-wide batch: the submit loop (a fingerprint hash
#    per request) is several times faster than one n=400 HEFT computation,
#    so the 2+2 budget overflows regardless of machine speed.
GEN="--requests=24 --repeat-frac=0.5 --n=400 --procs=4 --algos=heft"
"$SERVE" --gen="$WORK/storm.tsr" $GEN --seed=7 > /dev/null || fail "--gen failed"
"$SERVE" "$WORK/storm.tsr" --threads=1 --batch=24 --cache=off --dedup=off \
    --max-inflight=2 --max-pending=2 \
    --shed-policy=drop-oldest --deadline-ms=5000 --json="$WORK/overload.json" \
    > "$WORK/overload.out" 2>&1 \
    || fail "overload replay failed: $(cat "$WORK/overload.out")"
grep -q "policy=drop-oldest" "$WORK/overload.out" || fail "overload line missing"
"$PYTHON" - "$WORK/overload.json" <<'PYEOF' || fail "overload JSON report incoherent"
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
out = doc["outcomes"]
total = out["ok"] + out["shed"] + out["degraded"] + out["timed_out"] + out["draining"]
assert total == doc["requests"] == 24, doc
assert out["shed"] > 0, out           # 2+2 budget under a cold 24-burst must shed
assert out["timed_out"] == 0, out     # 5 s deadline is never blown here
assert doc["shed_policy"] == "drop-oldest", doc
# shed_rate is serialized with 6 decimals, so compare at that precision
assert abs(doc["shed_rate"] - out["shed"] / doc["requests"]) < 1e-6, doc
assert doc["deadline_hit_rate"] == 0.0, doc
PYEOF

# 6. The TS07xx config lints fire on nonsense knobs (warnings only — the
#    replay itself still runs) and stay quiet on a sane bounded config.
"$SERVE" "$WORK/storm.tsr" --max-pending=4 --drain-timeout-ms=-1 \
    > /dev/null 2> "$WORK/lint.err" || fail "lint-warned replay exited nonzero"
grep -q "TS0701" "$WORK/lint.err" || fail "TS0701 (unreachable pending queue) not raised"
grep -q "TS0705" "$WORK/lint.err" || fail "TS0705 (bad drain timeout) not raised"
"$SERVE" "$WORK/storm.tsr" --max-inflight=2 --max-pending=2 \
    > /dev/null 2> "$WORK/clean.err" || fail "bounded replay exited nonzero"
grep -q "TS07" "$WORK/clean.err" && fail "sane bounded config raised a TS07xx lint"

echo "serve_chaos_smoke: OK"
