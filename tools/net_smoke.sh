#!/usr/bin/env bash
# End-to-end acceptance smoke for the network serving stack (DESIGN §17):
#
#   1. tsched_served binds an ephemeral loopback port (--port=0) and prints
#      the bound port; the script parses it — no fixed port, no flake.
#   2. A multi-connection replay (8 concurrent connections x pipelined
#      window) drives a .tsr request mix against the live server; the JSON
#      report must satisfy the wire accounting identity
#      ok+shed+degraded+timed_out+draining+failed == requests with zero
#      transport failures, and the order-independent schedule payload
#      digest must be identical across a rerun (byte-identical responses
#      for identical requests — the cached and recomputed answers match).
#   3. A second server at a different pool width serves the same trace; the
#      digest must match the first server's (pool width cannot change
#      response bytes).
#   4. SIGTERM drains gracefully: exit code 0, the drain summary reports
#      clean, and the request/response tallies balance.
#   5. A garbage-spewing client (raw non-frame bytes) gets the connection
#      closed while the server keeps serving real clients.
#
# Every network step is wrapped in timeout(1) so a wedged server fails the
# test instead of hanging CI (ctest TIMEOUT is the backstop).
#
# usage: net_smoke.sh path/to/tsched_served path/to/tsched_serve [python3]
set -u

SERVED="${1:?usage: net_smoke.sh path/to/tsched_served path/to/tsched_serve [python3]}"
SERVE="${2:?usage: net_smoke.sh path/to/tsched_served path/to/tsched_serve [python3]}"
PYTHON="${3:-python3}"
# cwd-safe: absolutize binary paths before leaving the caller's directory
# (try the caller's cwd first, then the repo root), then run from the repo
# root so the script behaves identically no matter where it was launched.
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
for var in SERVED SERVE; do
    eval "bin=\$$var"
    case "$bin" in
        /*) ;;
        *) if [ -x "$bin" ]; then eval "$var=\"$(pwd)/$bin\""; else eval "$var=\"$ROOT/$bin\""; fi ;;
    esac
done
cd "$ROOT" || exit 1
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "net_smoke: FAIL: $*" >&2
    [ -f "$WORK/served.err" ] && sed 's/^/net_smoke:   served stderr: /' "$WORK/served.err" >&2
    exit 1
}

# Start a server and parse its bound port into $PORT.  Args: logfile suffix,
# then extra tsched_served flags.
start_server() {
    local tag="$1"; shift
    "$SERVED" --port=0 "$@" > "$WORK/served.$tag.out" 2> "$WORK/served.err" &
    SERVER_PID=$!
    PORT=""
    for _ in $(seq 1 100); do
        PORT="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$WORK/served.$tag.out" | head -1)"
        [ -n "$PORT" ] && break
        kill -0 "$SERVER_PID" 2>/dev/null || fail "server ($tag) died before printing its port"
        sleep 0.1
    done
    [ -n "$PORT" ] || fail "server ($tag) never printed its bound port"
}

stop_server_clean() {
    local tag="$1"
    kill -TERM "$SERVER_PID" 2>/dev/null || fail "server ($tag) gone before SIGTERM"
    local rc=0
    wait "$SERVER_PID" || rc=$?
    SERVER_PID=""
    [ "$rc" -eq 0 ] || fail "server ($tag) exit code $rc after SIGTERM (want 0 = clean drain)"
    grep -q "drained (clean)" "$WORK/served.$tag.out" || fail "server ($tag) drain not clean"
}

# --- trace: a deterministic request mix (50% repeats => cache traffic) ----
timeout 60 "$SERVE" --gen="$WORK/trace.tsr" --requests=48 --repeat-frac=0.5 \
    --n=60 --procs=4 --seed=2007 > /dev/null || fail "trace generation failed"

# --- 1+2: ephemeral port discovery, multi-client replay, identity ---------
start_server main --threads=4 --max-conns=32 --per-conn-queue=32
timeout 120 "$SERVE" "$WORK/trace.tsr" --connect=127.0.0.1:"$PORT" --conns=8 \
    --window=8 --epochs=2 --json="$WORK/replay1.json" > /dev/null \
    || fail "replay 1 failed (exit $?)"
timeout 120 "$SERVE" "$WORK/trace.tsr" --connect=127.0.0.1:"$PORT" --conns=8 \
    --window=8 --epochs=2 --json="$WORK/replay2.json" > /dev/null \
    || fail "replay 2 (rerun) failed"

# --- 5: hostile bytes must not take the server down -----------------------
timeout 30 "$PYTHON" - "$PORT" <<'PYEOF' || fail "garbage client choked"
import socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10)
s.sendall(b"GET / HTTP/1.1\r\nHost: nope\r\n\r\n" + b"\xde\xad\xbe\xef" * 64)
s.settimeout(10)
try:
    while s.recv(4096):  # server sends a typed error frame, then closes
        pass
except OSError:
    pass  # reset is as good as close: the point is the server survives
s.close()
PYEOF

# The server must still answer real clients after the garbage.
timeout 120 "$SERVE" "$WORK/trace.tsr" --connect=127.0.0.1:"$PORT" --conns=2 \
    --window=4 --json="$WORK/replay3.json" > /dev/null \
    || fail "server stopped serving after garbage client"

# --- 4: SIGTERM => graceful drain, exit 0 ---------------------------------
stop_server_clean main

# --- 3: different pool width, digest must match ---------------------------
start_server alt --threads=2 --max-conns=32 --per-conn-queue=32
timeout 120 "$SERVE" "$WORK/trace.tsr" --connect=127.0.0.1:"$PORT" --conns=4 \
    --window=8 --epochs=2 --json="$WORK/replay4.json" > /dev/null \
    || fail "replay at pool width 2 failed"
stop_server_clean alt

# --- assertions over the JSON reports -------------------------------------
"$PYTHON" - "$WORK"/replay1.json "$WORK"/replay2.json "$WORK"/replay3.json \
    "$WORK"/replay4.json <<'PYEOF' || exit 1
import json, sys

docs = []
for path in sys.argv[1:]:
    with open(path) as f:
        docs.append(json.load(f))

def die(msg):
    print(f"net_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)

for i, doc in enumerate(docs, 1):
    o = doc["outcomes"]
    total = o["ok"] + o["shed"] + o["degraded"] + o["timed_out"] + o["draining"] + o["failed"]
    if total != doc["requests"]:
        die(f"replay{i}: accounting identity {total} != requests {doc['requests']}")
    if not doc["accounting_ok"]:
        die(f"replay{i}: accounting_ok flag is false")
    if o["failed"] != 0:
        die(f"replay{i}: {o['failed']} transport failures on healthy loopback")
    if o["ok"] != doc["requests"]:
        die(f"replay{i}: unloaded server answered {o['ok']}/{doc['requests']} ok")
    if not doc["payload_consistent"]:
        die(f"replay{i}: schedule payloads inconsistent for equal fingerprints")
    if doc["schedule_digest"] in ("0", ""):
        die(f"replay{i}: empty schedule digest")
    if doc["qps"] <= 0:
        die(f"replay{i}: nonpositive qps")

digests = {doc["schedule_digest"] for doc in docs}
if len(digests) != 1:
    die(f"schedule digest differs across reruns/pool widths: {digests}")

# Steady-state epoch 2 re-serves every distinct request from cache: the
# replay must observe a healthy number of cache hits.
if docs[0]["cache_hits"] == 0:
    die("no cache hits in a 50%-repeat x 2-epoch replay")

print("net_smoke: accounting identity + digest stability over", len(docs), "replays ok")
PYEOF
[ $? -eq 0 ] || exit 1

# Keep the replay reports as a CI artifact directory if requested.
if [ -n "${NET_SMOKE_ARTIFACT_DIR:-}" ]; then
    mkdir -p "$NET_SMOKE_ARTIFACT_DIR"
    cp "$WORK"/replay*.json "$WORK"/served.*.out "$NET_SMOKE_ARTIFACT_DIR"/ 2>/dev/null
fi

echo "net_smoke: PASS"
