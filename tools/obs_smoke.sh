#!/usr/bin/env bash
# Acceptance smoke test for the obs metrics pipeline end to end through the
# tsched_serve CLI: a replay with --metrics-out must produce a parseable
# JSONL time series (one line per epoch in --metrics-epoch mode) whose
# documents carry the serve/cache/pool instruments, the Prometheus scrape
# file must satisfy the exposition-format invariants (cumulative le buckets,
# +Inf == _count), and the report's histogram percentiles must stay within
# the documented relative-error bound of the exact ones.
#
# usage: obs_smoke.sh path/to/tsched_serve [python3]
set -u

SERVE="${1:?usage: obs_smoke.sh path/to/tsched_serve [python3]}"
PYTHON="${2:-python3}"
# cwd-safe: absolutize the binary path before leaving the caller's directory
# (try the caller's cwd first, then the repo root), then run from the repo
# root so the script behaves identically no matter where it was launched.
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
case "$SERVE" in
    /*) ;;
    *) if [ -x "$SERVE" ]; then SERVE="$(pwd)/$SERVE"; else SERVE="$ROOT/$SERVE"; fi ;;
esac
cd "$ROOT" || exit 1
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "obs_smoke: FAIL: $*" >&2
    exit 1
}

"$SERVE" --gen="$WORK/a.tsr" --requests=24 --repeat-frac=0.5 --n=40 --procs=4 \
    --seed=7 > /dev/null || fail "--gen failed"

# 1. JSONL live metrics, per-epoch mode: exactly one document per epoch, each
#    a valid schema-1 snapshot with the serve/cache/pool instruments, and the
#    series monotone in the counters (snapshots are cumulative).
"$SERVE" "$WORK/a.tsr" --epochs=3 --batch=8 \
    --metrics-out="$WORK/metrics.jsonl" --metrics-epoch \
    --json="$WORK/report.json" > /dev/null 2>&1 || fail "replay with --metrics-out failed"
"$PYTHON" - "$WORK/metrics.jsonl" <<'PYEOF' || fail "JSONL metrics series incoherent"
import json, sys
docs = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
assert len(docs) == 3, f"expected one line per epoch, got {len(docs)}"
prev_requests = 0
for doc in docs:
    assert doc["schema"] == 1, doc
    counters = {c["name"]: c["value"] for c in doc["counters"]}
    gauges = {g["name"] for g in doc["gauges"]}
    hists = {h["name"]: h for h in doc["histograms"]}
    assert counters["serve/requests"] >= prev_requests, counters
    prev_requests = counters["serve/requests"]
    for name in ("serve/computed", "serve/cache/hits", "pool/tasks_run"):
        assert name in counters, (name, sorted(counters))
    for name in ("serve/hit_rate", "serve/cache/shard_occupancy", "pool/workers"):
        assert any(g == name for g in gauges), (name, sorted(gauges))
    assert "pool/task_run_ms" in hists, sorted(hists)
    for h in hists.values():
        if h["count"] > 0:
            assert h["min"] <= h["p50"] <= h["p95"] <= h["p99"] <= h["p999"], h
            assert h["p999"] <= h["max"] or h["count"] == h["underflow"], h
            assert sum(b[2] for b in h["buckets"]) + h["underflow"] + h["overflow"] == h["count"], h
# Last snapshot covers the full run: 24 requests x 3 epochs.
final = {c["name"]: c["value"] for c in docs[-1]["counters"]}
assert final["serve/requests"] == 72, final
PYEOF

# 2. Prometheus scrape file: latest state only, exposition-format invariants.
"$SERVE" "$WORK/a.tsr" --epochs=2 --batch=8 \
    --metrics-out="$WORK/metrics.prom" --metrics-format=prometheus --metrics-epoch \
    > /dev/null 2>&1 || fail "replay with prometheus metrics failed"
"$PYTHON" - "$WORK/metrics.prom" <<'PYEOF' || fail "prometheus exposition incoherent"
import re, sys
lines = open(sys.argv[1]).read().splitlines()
assert lines, "empty scrape file"
types = {}
for line in lines:
    if line.startswith("# TYPE "):
        _, _, name, kind = line.split()
        assert name not in types, f"duplicate TYPE for {name}"
        types[name] = kind
assert types.get("tsched_serve_requests") == "counter", types
assert types.get("tsched_serve_hit_rate") == "gauge", types
assert types.get("tsched_serve_latency_total_ms") == "histogram", types
# Every series name is sanitized: tsched_ prefix, [a-zA-Z0-9_:] only.
for line in lines:
    if line.startswith("#") or not line:
        continue
    name = re.split(r"[{ ]", line, 1)[0]
    assert re.fullmatch(r"tsched_[A-Za-z0-9_:]+", name), name
# Histogram invariants: cumulative le buckets never decrease; +Inf == _count.
hist = "tsched_serve_latency_total_ms"
buckets = [l for l in lines if l.startswith(hist + "_bucket")]
counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
assert counts == sorted(counts), counts
assert buckets[-1].startswith(hist + '_bucket{le="+Inf"}'), buckets[-1]
count_line = [l for l in lines if l.startswith(hist + "_count")]
assert counts[-1] == int(count_line[0].rsplit(" ", 1)[1]), (counts[-1], count_line)
PYEOF

# 3. The report embeds both percentile views and the metrics document, and
#    they are mutually consistent: histogram percentiles ordered, bounded by
#    the exact max, and the embedded metrics agree with the replay totals.
#    (The rigorous histogram-vs-exact error-bound check uses matched
#    nearest-rank conventions and lives in `bench_serve --check`; the exact
#    report percentiles here are interpolated, a different convention.)
"$PYTHON" - "$WORK/report.json" <<'PYEOF' || fail "report percentile views inconsistent"
import json, sys
doc = json.load(open(sys.argv[1]))
exact = doc["latency_ms"]
approx = doc["hist_latency_ms"]
assert 0 < approx["p50"] <= approx["p95"] <= approx["p99"] <= approx["p999"], approx
assert approx["p999"] <= exact["max"] * (1 + 1.0 / 128), (approx, exact)
assert doc["metrics"]["schema"] == 1, sorted(doc)
counters = {c["name"]: c["value"] for c in doc["metrics"]["counters"]}
assert counters["serve/requests"] == doc["requests"], (counters, doc["requests"])
hists = {h["name"]: h for h in doc["metrics"]["histograms"]}
assert hists["serve/latency/total_ms"]["count"] in (0, doc["requests"]), hists
PYEOF

# 4. Metrics stay silent unless asked: no --metrics-out, no stray files.
[ ! -e "$WORK/metrics_unrequested" ] || fail "unexpected metrics file"

echo "obs_smoke: OK"
