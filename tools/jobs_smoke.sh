#!/usr/bin/env bash
# jobs_smoke.sh — `--jobs N` must not change any table: run a small sweep
# serially and with 4 pool workers and require identical output (modulo the
# banner's jobs= field and the wall-time line; the sched-time table is
# wall-clock and is not printed by the sweep used here).
set -euo pipefail

BENCH=${1:?usage: jobs_smoke.sh path/to/bench_binary}
# cwd-safe: absolutize the binary path before leaving the caller's directory
# (try the caller's cwd first, then the repo root), then run from the repo
# root so the script behaves identically no matter where it was launched.
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
case "$BENCH" in
    /*) ;;
    *) if [ -x "$BENCH" ]; then BENCH="$(pwd)/$BENCH"; else BENCH="$ROOT/$BENCH"; fi ;;
esac
cd "$ROOT"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

filter() { grep -v 'jobs=' | grep -v 'sweep wall time'; }

"$BENCH" --trials=4 --jobs=1 --csv="$WORK/j1.csv" | filter > "$WORK/j1.out"
"$BENCH" --trials=4 --jobs=4 --csv="$WORK/j4.csv" | filter > "$WORK/j4.out"

diff -u "$WORK/j1.out" "$WORK/j4.out"
diff -u "$WORK/j1.csv" "$WORK/j4.csv"
echo "jobs smoke: --jobs=1 and --jobs=4 tables identical"
