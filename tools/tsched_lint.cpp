// tsched_lint — coded static analysis for task graphs, platforms, and
// schedules.
//
//   tsched_lint graph.tsg                          # DAG lints only
//   tsched_lint graph.tsg platform.tsp             # + cost matrix & calibration
//   tsched_lint graph.tsg platform.tsp sched.tss   # + schedule validity/quality
//
// Files are classified by extension (.tsg / .tsp / .tss) whether given
// positionally or via --dag= / --platform= / --schedule=.  Expected instance
// parameters turn on the calibration passes:
//
//   --ccr=X         requested communication-to-computation ratio (TS0301)
//   --beta=X        declared heterogeneity factor (TS0203/TS0204)
//   --avg-exec=X    requested mean execution cost (TS0302)
//   --tolerance=F   allowed relative deviation (default 0.25)
//
// Output & behaviour:
//   --json          machine-readable diagnostics on stdout
//   --quiet         summary line only
//   --max-diags=N   cap rendered text diagnostics (default 64, 0 = all)
//   --no-quality    validity (error) passes only
//   --werror        exit nonzero on warnings too
//   --eps=X         timing epsilon for schedule checks (default 1e-6)
//
// Exit status: 0 clean, 1 diagnostics at error severity (or warnings under
// --werror), 2 usage or file errors.
#include <iostream>
#include <optional>
#include <string>

#include "analysis/problem_lints.hpp"
#include "analysis/schedule_lints.hpp"
#include "graph/serialize.hpp"
#include "platform/platform_io.hpp"
#include "sched/schedule_io.hpp"
#include "util/args.hpp"

namespace {

using namespace tsched;

constexpr const char* kVersion = "tsched_lint 1.0.0";

void print_usage(std::ostream& os) {
    os << "usage: tsched_lint <file.tsg> [file.tsp] [file.tss]\n"
       << "                   [--json] [--quiet] [--werror] [--no-quality]\n"
       << "                   [--ccr=X] [--beta=X] [--avg-exec=X] [--tolerance=F]\n"
       << "                   [--eps=X] [--max-diags=N] [--version] [--help]\n"
       << "(a bare boolean flag consumes a following file argument; put flags\n"
       << " after the files or write --flag=true)\n";
}

[[noreturn]] void usage(const std::string& error) {
    std::cerr << "tsched_lint: " << error << "\n";
    print_usage(std::cerr);
    std::exit(2);
}

bool ends_with(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
    const Args args(argc, argv);

    if (args.has("help")) {
        print_usage(std::cout);
        return 0;
    }
    if (args.has("version")) {
        std::cout << kVersion << '\n';
        return 0;
    }
    try {
        args.check_known({"dag", "platform", "schedule", "json", "quiet", "werror",
                          "no-quality", "ccr", "beta", "avg-exec", "tolerance", "eps",
                          "max-diags", "help", "version"});
    } catch (const std::exception& err) {
        usage(err.what());
    }

    std::optional<std::string> dag_path;
    std::optional<std::string> platform_path;
    std::optional<std::string> schedule_path;

    auto classify = [&](const std::string& path) {
        if (ends_with(path, ".tsg")) {
            dag_path = path;
        } else if (ends_with(path, ".tsp")) {
            platform_path = path;
        } else if (ends_with(path, ".tss")) {
            schedule_path = path;
        } else {
            usage("cannot classify '" + path + "' (expected .tsg, .tsp, or .tss)");
        }
    };
    for (const std::string& p : args.positional()) classify(p);
    if (args.has("dag")) dag_path = args.get_string("dag", "");
    if (args.has("platform")) platform_path = args.get_string("platform", "");
    if (args.has("schedule")) schedule_path = args.get_string("schedule", "");

    if (!dag_path) usage("a task graph (.tsg) is required");
    if (schedule_path && !platform_path) {
        usage("schedule linting needs the platform (.tsp) the schedule was computed for");
    }

    analysis::InstanceExpectations expect;
    analysis::ScheduleLintOptions sched_options;
    bool json = false;
    bool quiet = false;
    bool werror = false;
    std::size_t max_diags = 64;
    try {
        if (args.has("ccr")) expect.ccr = args.get_double("ccr", 0.0);
        if (args.has("beta")) expect.beta = args.get_double("beta", 0.0);
        if (args.has("avg-exec")) expect.avg_exec = args.get_double("avg-exec", 0.0);
        expect.tolerance = args.get_double("tolerance", expect.tolerance);
        sched_options.time_eps = args.get_double("eps", sched_options.time_eps);
        sched_options.quality = !args.get_bool("no-quality", false);
        json = args.get_bool("json", false);
        quiet = args.get_bool("quiet", false);
        werror = args.get_bool("werror", false);
        max_diags = static_cast<std::size_t>(args.get_int("max-diags", 64));
    } catch (const std::exception& err) {
        usage(err.what());
    }

    analysis::Diagnostics diags;
    try {
        const Dag dag = load_tsg(*dag_path);
        if (!platform_path) {
            analysis::lint_dag(dag, diags);
        } else {
            const PlatformSpec platform = load_tsp(*platform_path);
            analysis::lint_dag(dag, diags);
            analysis::lint_cost_matrix(platform.costs, diags, expect.beta);
            if (analysis::check_dimensions(dag, platform.machine, platform.costs, diags)) {
                const Problem problem(dag, platform.machine, platform.costs);
                analysis::lint_calibration(problem, diags, expect);
                if (schedule_path) {
                    const Schedule schedule = load_tss(*schedule_path);
                    analysis::lint_schedule(schedule, problem, diags, sched_options);
                }
            }
        }
    } catch (const std::exception& err) {
        std::cerr << "tsched_lint: " << err.what() << '\n';
        return 2;
    }

    if (json) {
        std::cout << analysis::render_json(diags) << '\n';
    } else if (quiet) {
        std::cout << diags.error_count() << " error(s), " << diags.warning_count()
                  << " warning(s)\n";
    } else {
        std::cout << render_text(diags, max_diags);
    }

    if (diags.has_errors()) return 1;
    if (werror && diags.warning_count() > 0) return 1;
    return 0;
}
