#!/usr/bin/env bash
# perf_check.sh — compare a fresh perf dump against the committed perf
# baseline (BENCH_runtime.json) and fail on regressions.
#
# Usage: perf_check.sh CURRENT.json [BASELINE.json]
#
# Two kinds of measurement live in the same schema-1 document, each
# optional, each compared only when both files carry it:
#
#   "points" — scheduling-time points from bench_runtime --json
#              ({algo, n, mean_ms}).  A point regresses when current
#              mean_ms > threshold * baseline mean_ms (default 4.0,
#              override with PERF_CHECK_THRESHOLD).
#   "serve"  — the steady-state network serving point from
#              bench_serve --net --json ({qps, p50_ms, p99_ms, ...}).
#              Regresses when current qps < baseline qps / serve_threshold
#              or current p99_ms > serve_threshold * baseline p99_ms
#              (default 4.0, override with PERF_CHECK_SERVE_THRESHOLD).
#
# Thresholds are deliberately generous because baseline and CI machines
# differ; the check exists to catch the order-of-magnitude regressions that
# reintroducing clone-per-candidate trial evaluation (or an accidental
# per-request syscall storm in the serve path) would cause, not 10% noise.
# Points present in only one file are reported but never fatal, so adding an
# algorithm, sweep size, or measurement family does not break the gate.
#
# The big-n points (n = 2000/10000/50000, rep-capped in bench_runtime) are
# the noisiest: a single run is 3–12 reps on a possibly-contended host, and
# the committed baseline keeps per-point minima over several quiet runs
# (EXPERIMENTS.md §E19), so ~2–3x read-backs are normal there.  They ride
# the same generous threshold — the gate is for order-of-magnitude
# regressions, and CI fast-lane wall-clock bounds live in test_big_n
# (TSCHED_BIG_N_BUDGET_MS) instead.
set -euo pipefail

if [ $# -lt 1 ] || [ $# -gt 2 ]; then
    echo "usage: $0 CURRENT.json [BASELINE.json]" >&2
    exit 2
fi

CURRENT=$1
BASELINE=${2:-"$(dirname "$0")/../BENCH_runtime.json"}
THRESHOLD=${PERF_CHECK_THRESHOLD:-4.0}
SERVE_THRESHOLD=${PERF_CHECK_SERVE_THRESHOLD:-4.0}

[ -f "$CURRENT" ] || { echo "perf_check: missing $CURRENT" >&2; exit 2; }
[ -f "$BASELINE" ] || { echo "perf_check: missing baseline $BASELINE" >&2; exit 2; }

python3 - "$CURRENT" "$BASELINE" "$THRESHOLD" "$SERVE_THRESHOLD" <<'PYEOF'
import json
import sys

current_path, baseline_path = sys.argv[1], sys.argv[2]
threshold, serve_threshold = float(sys.argv[3]), float(sys.argv[4])

def load(path):
    with open(path) as f:
        doc = json.load(f)
    assert doc.get("schema") == 1, f"{path}: unknown schema {doc.get('schema')}"
    points = {(p["algo"], p["n"]): p["mean_ms"] for p in doc.get("points", [])}
    return points, doc.get("serve")

current, current_serve = load(current_path)
baseline, baseline_serve = load(baseline_path)

failures = []

if current and baseline:
    print(f"perf_check: threshold {threshold:g}x against {baseline_path}")
    for key in sorted(baseline, key=lambda k: (k[0], k[1])):
        if key not in current:
            print(f"  [skip] {key[0]}/{key[1]}: not measured in current run")
            continue
        cur, base = current[key], baseline[key]
        ratio = cur / base if base > 0 else float("inf")
        status = "FAIL" if ratio > threshold else "ok"
        print(f"  [{status:4}] {key[0]}/{key[1]}: {cur:.3f} ms vs baseline {base:.3f} ms "
              f"({ratio:.2f}x)")
        if ratio > threshold:
            failures.append(f"{key[0]}/{key[1]}")
    for key in sorted(set(current) - set(baseline)):
        print(f"  [new ] {key[0]}/{key[1]}: {current[key]:.3f} ms (no baseline)")

if current_serve and baseline_serve:
    print(f"perf_check: serve threshold {serve_threshold:g}x against {baseline_path}")
    cur_qps, base_qps = current_serve["qps"], baseline_serve["qps"]
    qps_ratio = base_qps / cur_qps if cur_qps > 0 else float("inf")
    status = "FAIL" if qps_ratio > serve_threshold else "ok"
    print(f"  [{status:4}] serve/qps: {cur_qps:.1f} vs baseline {base_qps:.1f} "
          f"({qps_ratio:.2f}x slower)")
    if qps_ratio > serve_threshold:
        failures.append("serve/qps")
    cur_p99, base_p99 = current_serve["p99_ms"], baseline_serve["p99_ms"]
    p99_ratio = cur_p99 / base_p99 if base_p99 > 0 else float("inf")
    status = "FAIL" if p99_ratio > serve_threshold else "ok"
    print(f"  [{status:4}] serve/p99_ms: {cur_p99:.3f} ms vs baseline {base_p99:.3f} ms "
          f"({p99_ratio:.2f}x)")
    if p99_ratio > serve_threshold:
        failures.append("serve/p99_ms")
elif current_serve or baseline_serve:
    side = "current" if current_serve else "baseline"
    print(f"perf_check: serve point only in {side} file — skipped")

if not current and not baseline and not (current_serve and baseline_serve):
    print("perf_check: nothing comparable between the two files", file=sys.stderr)
    sys.exit(2)

if failures:
    names = ", ".join(failures)
    print(f"perf_check: FAILED — regression beyond threshold on: {names}")
    sys.exit(1)
print("perf_check: OK")
PYEOF
