#!/usr/bin/env bash
# perf_check.sh — compare a fresh bench_runtime --json dump against the
# committed perf baseline (BENCH_runtime.json) and fail on scheduling-time
# regressions.
#
# Usage: perf_check.sh CURRENT.json [BASELINE.json]
#
# A point regresses when current mean_ms > threshold * baseline mean_ms.
# The threshold is deliberately generous (default 4.0, override with
# PERF_CHECK_THRESHOLD) because baseline and CI machines differ; the check
# exists to catch the order-of-magnitude regressions that reintroducing
# clone-per-candidate trial evaluation (or similar) would cause, not 10%
# noise.  Points present in only one file are reported but never fatal, so
# adding an algorithm or sweep size does not break the gate.
#
# The big-n points (n = 2000/10000/50000, rep-capped in bench_runtime) are
# the noisiest: a single run is 3–12 reps on a possibly-contended host, and
# the committed baseline keeps per-point minima over several quiet runs
# (EXPERIMENTS.md §E19), so ~2–3x read-backs are normal there.  They ride
# the same generous threshold — the gate is for order-of-magnitude
# regressions, and CI fast-lane wall-clock bounds live in test_big_n
# (TSCHED_BIG_N_BUDGET_MS) instead.
set -euo pipefail

if [ $# -lt 1 ] || [ $# -gt 2 ]; then
    echo "usage: $0 CURRENT.json [BASELINE.json]" >&2
    exit 2
fi

CURRENT=$1
BASELINE=${2:-"$(dirname "$0")/../BENCH_runtime.json"}
THRESHOLD=${PERF_CHECK_THRESHOLD:-4.0}

[ -f "$CURRENT" ] || { echo "perf_check: missing $CURRENT" >&2; exit 2; }
[ -f "$BASELINE" ] || { echo "perf_check: missing baseline $BASELINE" >&2; exit 2; }

python3 - "$CURRENT" "$BASELINE" "$THRESHOLD" <<'PYEOF'
import json
import sys

current_path, baseline_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])

def load(path):
    with open(path) as f:
        doc = json.load(f)
    assert doc.get("schema") == 1, f"{path}: unknown schema {doc.get('schema')}"
    return {(p["algo"], p["n"]): p["mean_ms"] for p in doc["points"]}

current = load(current_path)
baseline = load(baseline_path)

failures = []
print(f"perf_check: threshold {threshold:g}x against {baseline_path}")
for key in sorted(baseline, key=lambda k: (k[0], k[1])):
    if key not in current:
        print(f"  [skip] {key[0]}/{key[1]}: not measured in current run")
        continue
    cur, base = current[key], baseline[key]
    ratio = cur / base if base > 0 else float("inf")
    status = "FAIL" if ratio > threshold else "ok"
    print(f"  [{status:4}] {key[0]}/{key[1]}: {cur:.3f} ms vs baseline {base:.3f} ms "
          f"({ratio:.2f}x)")
    if ratio > threshold:
        failures.append(key)
for key in sorted(set(current) - set(baseline)):
    print(f"  [new ] {key[0]}/{key[1]}: {current[key]:.3f} ms (no baseline)")

if failures:
    names = ", ".join(f"{a}/{n}" for a, n in failures)
    print(f"perf_check: FAILED — regression beyond {threshold:g}x on: {names}")
    sys.exit(1)
print("perf_check: OK")
PYEOF
