#!/usr/bin/env bash
# Acceptance smoke test for tsched_lint: a corrupted schedule and a
# miscalibrated instance must each be flagged with their distinct TS codes,
# with machine-readable JSON output and a nonzero exit status.
#
# usage: lint_smoke.sh path/to/tsched_lint
set -u

LINT="${1:?usage: lint_smoke.sh path/to/tsched_lint}"
# cwd-safe: absolutize the binary path before leaving the caller's directory
# (try the caller's cwd first, then the repo root), then run from the repo
# root so the script behaves identically no matter where it was launched.
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
case "$LINT" in
    /*) ;;
    *) if [ -x "$LINT" ]; then LINT="$(pwd)/$LINT"; else LINT="$ROOT/$LINT"; fi ;;
esac
cd "$ROOT" || exit 1
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "lint_smoke: FAIL: $*" >&2
    exit 1
}

# A two-task chain (cost 3 each, 2 data units on the edge) on two unit-speed
# processors behind a uniform crossbar (latency 0, bandwidth 1).  Local data
# is free, so the remote copy of task 1 may start at t=5 (3 exec + 2 comm).
cat > "$WORK/graph.tsg" <<'EOF'
tsg 2 1
t 0 3
t 1 3
e 0 1 2
EOF

cat > "$WORK/platform.tsp" <<'EOF'
tsp 2 2
s 0 1
s 1 1
link uniform 0 1
w 0 3 3
w 1 3 3
EOF

# A correct schedule: both tasks on P0, back to back.
cat > "$WORK/good.tss" <<'EOF'
tss 2 2
p 0 0 0 3
p 1 0 3 6
EOF

# Corrupted: task 1 starts on P1 at t=1, long before its input arrives (t=5).
cat > "$WORK/bad.tss" <<'EOF'
tss 2 2
p 0 0 0 3
p 1 1 1 4
EOF

# 1. The clean triple lints clean.
"$LINT" "$WORK/graph.tsg" "$WORK/platform.tsp" "$WORK/good.tss" > "$WORK/good.out" 2>&1 \
    || fail "clean schedule flagged: $(cat "$WORK/good.out")"

# 2. The corrupted schedule is caught: TS0406, nonzero exit.
"$LINT" "$WORK/graph.tsg" "$WORK/platform.tsp" "$WORK/bad.tss" > "$WORK/bad.out" 2>&1
[ $? -eq 1 ] || fail "corrupted schedule did not exit 1"
grep -q "TS0406" "$WORK/bad.out" || fail "expected TS0406 in: $(cat "$WORK/bad.out")"

# 3. The miscalibrated instance is caught with a distinct code: the realized
#    CCR of this instance is 2/3, nowhere near the requested 10.
"$LINT" --ccr=10 "$WORK/graph.tsg" "$WORK/platform.tsp" > "$WORK/ccr.out" 2>&1
[ $? -eq 1 ] || fail "miscalibrated instance did not exit 1"
grep -q "TS0301" "$WORK/ccr.out" || fail "expected TS0301 in: $(cat "$WORK/ccr.out")"

# 4. JSON output is machine-readable and carries the same codes.
"$LINT" --json --ccr=10 "$WORK/graph.tsg" "$WORK/platform.tsp" "$WORK/bad.tss" > "$WORK/all.json" 2>&1
[ $? -eq 1 ] || fail "JSON run did not exit 1"
grep -q '"code":"TS0406"' "$WORK/all.json" || fail "TS0406 missing from JSON"
grep -q '"code":"TS0301"' "$WORK/all.json" || fail "TS0301 missing from JSON"
grep -q '"counts"' "$WORK/all.json" || fail "counts object missing from JSON"

# 5. Warnings alone exit 0 without --werror, 1 with it.  An unconsumed
#    duplicate of task 0 on P1 is a warning (TS0501).
cat > "$WORK/dup.tss" <<'EOF'
tss 2 2
p 0 0 0 3
p 0 1 0 3
p 1 0 3 6
EOF
"$LINT" "$WORK/graph.tsg" "$WORK/platform.tsp" "$WORK/dup.tss" > "$WORK/dup.out" 2>&1 \
    || fail "warning-only run exited nonzero: $(cat "$WORK/dup.out")"
grep -q "TS0501" "$WORK/dup.out" || fail "expected TS0501 in: $(cat "$WORK/dup.out")"
"$LINT" "$WORK/graph.tsg" "$WORK/platform.tsp" "$WORK/dup.tss" --werror > /dev/null 2>&1
[ $? -eq 1 ] || fail "--werror did not promote warnings to failure"

echo "lint_smoke: OK"
