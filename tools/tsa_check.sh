#!/usr/bin/env bash
# Local thread-safety-analysis gate: the same check CI's `tsa` job runs.
#
#   1. detect clang (the analysis is clang-only; exit 77 = skip elsewhere);
#   2. configure a dedicated build tree with -DTSCHED_TSA=ON, which adds
#      -Wthread-safety -Wthread-safety-beta and promotes both groups to
#      errors (see the top-level CMakeLists);
#   3. build everything — src/, tools/, bench/, examples/, tests/ — so any
#      unlocked touch of an annotated member anywhere in the tree breaks the
#      build;
#   4. run the negative-compilation battery (tests/tsa_negative/) proving
#      the analysis still rejects seeded lock misuse.
#
# ccache is used when available; the build tree (default build-tsa/, override
# with TSCHED_TSA_BUILD_DIR) is kept between runs for incremental rebuilds.
#
# Usage: tools/tsa_check.sh   (from anywhere; the script cd's to the repo)
set -u

cd "$(dirname "$0")/.." || exit 1

# --- clang detection (same ladder as tests/tsa_negative/run_cases.sh) ------
clangxx="${TSCHED_CLANGXX:-}"
clangcc="${TSCHED_CLANGCC:-}"
if [[ -z "$clangxx" ]]; then
    for candidate in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
                     clang++-17 clang++-16 clang++-15 clang++-14; do
        if command -v "$candidate" >/dev/null 2>&1; then
            clangxx="$candidate"
            clangcc="${candidate/clang++/clang}"
            break
        fi
    done
fi
if [[ -z "$clangxx" ]] || ! "$clangxx" --version 2>/dev/null | grep -qi clang; then
    echo "tsa_check: no clang++ found (thread-safety analysis is clang-only); skipping"
    exit 77
fi
[[ -z "$clangcc" ]] && clangcc="$clangxx"
echo "tsa_check: using $("$clangxx" --version | head -n 1)"

build_dir="${TSCHED_TSA_BUILD_DIR:-build-tsa}"

launcher_args=()
if command -v ccache >/dev/null 2>&1; then
    launcher_args=(-DCMAKE_C_COMPILER_LAUNCHER=ccache -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_C_COMPILER="$clangcc" \
    -DCMAKE_CXX_COMPILER="$clangxx" \
    -DTSCHED_TSA=ON \
    "${launcher_args[@]}" || exit 1

jobs="$(nproc 2>/dev/null || echo 4)"
echo "tsa_check: building the full tree under -Werror=thread-safety"
cmake --build "$build_dir" -j "$jobs" || {
    echo "tsa_check: FAILED — the tree does not build cleanly under the analysis"
    exit 1
}

echo "tsa_check: running the negative-compilation battery"
TSCHED_CLANGXX="$clangxx" bash tests/tsa_negative/run_cases.sh src || exit 1

echo "tsa_check: OK — clean TSA build + battery"
