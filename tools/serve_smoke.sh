#!/usr/bin/env bash
# Acceptance smoke test for tsched_serve: trace generation must be
# deterministic and seed-sensitive, a replay must produce a parseable JSON
# report whose accounting adds up (computed == distinct requests, every
# request answered exactly once), cache-off serving must compute everything,
# and the --version/--help/unknown-flag contract must hold.
#
# usage: serve_smoke.sh path/to/tsched_serve [python3]
set -u

SERVE="${1:?usage: serve_smoke.sh path/to/tsched_serve [python3]}"
PYTHON="${2:-python3}"
# cwd-safe: absolutize the binary path before leaving the caller's directory
# (try the caller's cwd first, then the repo root), then run from the repo
# root so the script behaves identically no matter where it was launched.
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
case "$SERVE" in
    /*) ;;
    *) if [ -x "$SERVE" ]; then SERVE="$(pwd)/$SERVE"; else SERVE="$ROOT/$SERVE"; fi ;;
esac
cd "$ROOT" || exit 1
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "serve_smoke: FAIL: $*" >&2
    exit 1
}

# 1. --version and --help exit 0; an unknown flag is rejected, naming it.
"$SERVE" --version > "$WORK/version.out" 2>&1 || fail "--version exited nonzero"
grep -q "tsched_serve" "$WORK/version.out" || fail "--version output looks wrong"
"$SERVE" --help > /dev/null 2>&1 || fail "--help exited nonzero"
"$SERVE" --frobnicate > "$WORK/unknown.out" 2>&1
[ $? -eq 2 ] || fail "unknown flag did not exit 2"
grep -q -- "--frobnicate" "$WORK/unknown.out" || fail "unknown flag not named"

# 2. Generation is deterministic in the seed: same seed -> identical bytes,
#    different seed -> different trace.  24 requests at repeat-frac 0.5 means
#    exactly 12 distinct instances.
GEN="--requests=24 --repeat-frac=0.5 --n=40 --procs=4 --algos=heft"
"$SERVE" --gen="$WORK/a.tsr" $GEN --seed=7 > /dev/null || fail "--gen failed"
"$SERVE" --gen="$WORK/b.tsr" $GEN --seed=7 > /dev/null || fail "second --gen failed"
"$SERVE" --gen="$WORK/c.tsr" $GEN --seed=8 > /dev/null || fail "third --gen failed"
diff -u "$WORK/a.tsr" "$WORK/b.tsr" > /dev/null || fail "same-seed traces differ"
diff -u "$WORK/a.tsr" "$WORK/c.tsr" > /dev/null && fail "different seeds produced identical traces"
head -1 "$WORK/a.tsr" | grep -q "^tsr 1$" || fail "trace header is not 'tsr 1'"
[ "$(grep -c '^r ' "$WORK/a.tsr")" -eq 24 ] || fail "trace does not carry 24 request lines"

# 3. A steady-state replay (2 epochs) reports coherent accounting: 12
#    distinct requests -> exactly 12 cold computations, and every one of the
#    48 submitted requests is answered by a computation, a coalesce, or a
#    cache hit.
"$SERVE" "$WORK/a.tsr" --epochs=2 --batch=8 --json="$WORK/report.json" --counters \
    > "$WORK/replay.out" 2>&1 || fail "replay failed: $(cat "$WORK/replay.out")"
"$PYTHON" - "$WORK/report.json" <<'PYEOF' || fail "replay JSON report incoherent"
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == 1, doc
assert doc["requests"] == 48, doc
assert doc["computed"] == 12, doc
assert doc["computed"] + doc["coalesced"] + doc["hits"] == doc["requests"], doc
assert 0.0 <= doc["hit_rate"] <= 1.0, doc
assert doc["qps"] > 0 and doc["wall_ms"] > 0, doc
lat = doc["latency_ms"]
assert 0 <= lat["p50"] <= lat["p95"] <= lat["p99"], lat
PYEOF
grep -q "serve/requests = 48" "$WORK/replay.out" \
    || echo "serve_smoke: note: no counters (TSCHED_TRACE=OFF build)"

# 4. Cache-off serving computes every request cold.
"$SERVE" "$WORK/a.tsr" --cache=off --dedup=off --json="$WORK/off.json" \
    > /dev/null 2>&1 || fail "cache-off replay failed"
"$PYTHON" - "$WORK/off.json" <<'PYEOF' || fail "cache-off report incoherent"
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["requests"] == 24, doc
assert doc["computed"] == 24, doc
assert doc["hits"] == 0 and doc["coalesced"] == 0, doc
assert doc["hit_rate"] == 0.0, doc
PYEOF

# 5. A missing trace file is a usage error (exit 2), not a crash.
"$SERVE" "$WORK/does_not_exist.tsr" > /dev/null 2>&1
[ $? -eq 2 ] || fail "missing trace file did not exit 2"

echo "serve_smoke: OK"
