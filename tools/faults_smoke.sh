#!/usr/bin/env bash
# Acceptance smoke test for the fault-injection pipeline: bench_faults
# --check must hold the robustness contract (every active repair policy
# produces lint-clean schedules, remap-pending and reschedule-suffix beat the
# do-nothing baseline on mean degradation, repeated same-seed runs are
# bit-identical), and two full same-seed invocations must print identical
# tables.
#
# usage: faults_smoke.sh path/to/bench_faults
set -u

BENCH="${1:?usage: faults_smoke.sh path/to/bench_faults}"
# cwd-safe: absolutize the binary path before leaving the caller's directory
# (try the caller's cwd first, then the repo root), then run from the repo
# root so the script behaves identically no matter where it was launched.
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
case "$BENCH" in
    /*) ;;
    *) if [ -x "$BENCH" ]; then BENCH="$(pwd)/$BENCH"; else BENCH="$ROOT/$BENCH"; fi ;;
esac
cd "$ROOT" || exit 1
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "faults_smoke: FAIL: $*" >&2
    exit 1
}

# 1. The acceptance contract at the canonical scenario (n=100, P=8, busiest
#    processor crashes at half the static makespan).
"$BENCH" --check --trials=3 --frac=0.5 > "$WORK/check.out" 2> "$WORK/check.err" \
    || fail "--check failed: $(cat "$WORK/check.err")"
grep -q "check: OK" "$WORK/check.out" || fail "--check did not report OK"

# 2. Same seed, same tables — the whole sweep is deterministic.
"$BENCH" --trials=2 --frac=0.25,0.75 --seed=99 > "$WORK/run1.out" 2>&1 \
    || fail "first sweep run failed"
"$BENCH" --trials=2 --frac=0.25,0.75 --seed=99 > "$WORK/run2.out" 2>&1 \
    || fail "second sweep run failed"
diff -u "$WORK/run1.out" "$WORK/run2.out" > /dev/null \
    || fail "same-seed sweeps differ"

# 3. A different seed actually changes the numbers (the seed is wired
#    through, not ignored).
"$BENCH" --trials=2 --frac=0.25,0.75 --seed=100 > "$WORK/run3.out" 2>&1 \
    || fail "third sweep run failed"
diff -u "$WORK/run1.out" "$WORK/run3.out" > /dev/null \
    && fail "different seeds produced identical tables"

echo "faults_smoke: OK"
