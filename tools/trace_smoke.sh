#!/usr/bin/env bash
# Acceptance smoke test for tsched_trace: a saved schedule must round-trip
# through the Chrome trace_event exporter into JSON that a real parser
# accepts, a traced scheduler run must explain every placement, and the
# --version/--help/unknown-flag contract must hold.
#
# usage: trace_smoke.sh path/to/tsched_trace [python3]
set -u

TRACE="${1:?usage: trace_smoke.sh path/to/tsched_trace [python3]}"
PYTHON="${2:-python3}"
# cwd-safe: absolutize the binary path before leaving the caller's directory
# (try the caller's cwd first, then the repo root), then run from the repo
# root so the script behaves identically no matter where it was launched.
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
case "$TRACE" in
    /*) ;;
    *) if [ -x "$TRACE" ]; then TRACE="$(pwd)/$TRACE"; else TRACE="$ROOT/$TRACE"; fi ;;
esac
cd "$ROOT" || exit 1
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "trace_smoke: FAIL: $*" >&2
    exit 1
}

# A diamond (0 -> 1,2 -> 3) on two unit-speed processors behind a uniform
# crossbar: big enough to force at least one cross-processor transfer, small
# enough to eyeball.
cat > "$WORK/graph.tsg" <<'EOF'
tsg 4 4
t 0 2
t 1 4
t 2 4
t 3 2
e 0 1 3
e 0 2 3
e 1 3 2
e 2 3 2
EOF

cat > "$WORK/platform.tsp" <<'EOF'
tsp 2 4
s 0 1
s 1 1
link uniform 0 1
w 0 2 2
w 1 4 4
w 2 4 4
w 3 2 2
EOF

# HEFT-style placement: the two branches run in parallel, the join waits for
# the remote branch's data.
cat > "$WORK/sched.tss" <<'EOF'
tss 4 2
p 0 0 0 2
p 1 0 2 6
p 2 1 5 9
p 3 0 11 13
EOF

# 1. --version and --help exit 0.
"$TRACE" --version > "$WORK/version.out" 2>&1 || fail "--version exited nonzero"
grep -q "tsched_trace" "$WORK/version.out" || fail "--version output looks wrong"
"$TRACE" --help > /dev/null 2>&1 || fail "--help exited nonzero"

# 2. An unknown flag is rejected, naming the flag.
"$TRACE" --frobnicate > "$WORK/unknown.out" 2>&1
[ $? -eq 2 ] || fail "unknown flag did not exit 2"
grep -q -- "--frobnicate" "$WORK/unknown.out" || fail "unknown flag not named"

# 3. Chrome export round-trips through a real JSON parser in every mode, with
#    execution and communication tracks.
for mode in planned sim contended; do
    "$TRACE" "$WORK/graph.tsg" "$WORK/platform.tsp" "$WORK/sched.tss" \
        --mode="$mode" --out="$WORK/trace_$mode.json" \
        || fail "chrome export failed (mode $mode)"
    "$PYTHON" - "$WORK/trace_$mode.json" <<'PYEOF' || fail "trace JSON invalid (mode $mode)"
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert isinstance(events, list) and events, "no events"
complete = [e for e in events if e.get("ph") == "X"]
assert len(complete) >= 4, f"expected >=4 complete events, got {len(complete)}"
for e in complete:
    assert e["ts"] >= 0 and e["dur"] >= 0, e
names = {e["args"]["name"] for e in events if e.get("name") == "process_name"}
assert names == {"execution", "communication"}, names
PYEOF
done

# 4. A traced scheduler run explains every placement.
"$TRACE" "$WORK/graph.tsg" "$WORK/platform.tsp" --algo=ils --explain=all \
    > "$WORK/explain.out" 2>&1 || fail "--algo/--explain run failed"
for task in 0 1 2 3; do
    grep -q "task $task " "$WORK/explain.out" || fail "task $task not explained"
done
grep -q "chosen P" "$WORK/explain.out" || fail "no chosen processor in explanation"
grep -q "eft " "$WORK/explain.out" || fail "no EFT numbers in explanation"

# 5. The decision-trace JSON parses and names the winning pass.
"$TRACE" "$WORK/graph.tsg" "$WORK/platform.tsp" --algo=ils \
    --decisions="$WORK/decisions.json" || fail "--decisions run failed"
"$PYTHON" - "$WORK/decisions.json" <<'PYEOF' || fail "decisions JSON invalid"
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["winning_pass"] in ("greedy", "oct"), doc["winning_pass"]
decisions = doc["decisions"]
assert len(decisions) == 8, f"expected 2 passes x 4 tasks, got {len(decisions)}"
for d in decisions:
    assert d["candidates"], d
PYEOF

# 6. Counters report renders (and is non-empty in a traced build: the ils
#    run above must at least have evaluated EFTs).
"$TRACE" "$WORK/graph.tsg" "$WORK/platform.tsp" --algo=ils --counters \
    > "$WORK/counters.out" 2>&1 || fail "--counters run failed"
grep -q "eft_evaluations" "$WORK/counters.out" \
    || echo "trace_smoke: note: no counters (TSCHED_TRACE=OFF build)"

echo "trace_smoke: OK"
