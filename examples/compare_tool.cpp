// compare_tool: a small command-line utility around the library.
//
// Loads a task graph from a .tsg file (or generates one), binds it to a
// parameterised platform, runs a chosen set of schedulers, and prints a
// comparison table.  Useful as a template for integrating tsched into a
// build or workflow system.
//
//   $ ./compare_tool                         # random 100-task graph
//   $ ./compare_tool mygraph.tsg --procs=16
//   $ ./compare_tool --shape=gauss --size=12 --ccr=5 --algos=ils,heft,dsh
//   $ ./compare_tool --emit-tsg=graph.tsg    # save the generated graph
//   $ ./compare_tool --contended             # add one-port realised makespans
#include <iostream>

#include "core/registry.hpp"
#include "graph/serialize.hpp"
#include "metrics/metrics.hpp"
#include "sched/validate.hpp"
#include "sim/contention.hpp"
#include "sim/event_sim.hpp"
#include "util/args.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "workload/instance.hpp"

int main(int argc, char** argv) {
    using namespace tsched;
    const Args args(argc, argv);

    const auto procs = static_cast<std::size_t>(args.get_int("procs", 8));
    const double ccr = args.get_double("ccr", 1.0);
    const double beta = args.get_double("beta", 0.5);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const auto algos = args.get_string_list("algos", default_comparison_set());

    // Obtain the problem: from file or from the generator suite.
    Problem problem = [&] {
        if (!args.positional().empty()) {
            const std::string& path = args.positional().front();
            std::cout << "loading task graph from " << path << '\n';
            Dag dag = load_tsg(path);
            workload::CostParams cost_params;
            cost_params.num_procs = procs;
            cost_params.beta = beta;
            Rng rng(seed);
            CostMatrix costs = workload::make_cost_matrix(dag, cost_params, rng);
            const auto links = std::make_shared<UniformLinkModel>(0.0, 1.0);
            workload::calibrate_ccr(dag, *links, procs, ccr, cost_params.avg_exec);
            return Problem(std::move(dag), Machine::homogeneous(procs, links),
                           std::move(costs));
        }
        workload::InstanceParams params;
        params.shape = workload::shape_from_name(args.get_string("shape", "layered"));
        params.size = static_cast<std::size_t>(args.get_int("size", 100));
        params.num_procs = procs;
        params.ccr = ccr;
        params.beta = beta;
        return workload::make_instance(params, seed);
    }();

    std::cout << "problem: " << problem.num_tasks() << " tasks, "
              << problem.dag().num_edges() << " edges, " << procs << " procs, realized CCR "
              << problem.realized_ccr() << ", machine " << problem.machine().describe() << "\n\n";

    const std::string emit = args.get_string("emit-tsg", "");
    if (!emit.empty()) {
        save_tsg(emit, problem.dag());
        std::cout << "wrote " << emit << '\n';
    }

    const bool contended = args.get_bool("contended", false);
    std::vector<std::string> headers{"scheduler", "makespan", "SLR",      "speedup",
                                     "dups",      "sim check", "time ms"};
    if (contended) headers.insert(headers.begin() + 6, "one-port");
    Table table(std::move(headers));
    for (const auto& name : algos) {
        const auto scheduler = make_scheduler(name);
        Stopwatch watch;
        const Schedule schedule = scheduler->schedule(problem);
        const double elapsed = watch.elapsed_ms();
        const auto valid = validate(schedule, problem);
        if (!valid) {
            std::cerr << name << ": INVALID — " << valid.message() << '\n';
            return 1;
        }
        const auto sim_result = sim::simulate(schedule, problem);
        table.new_row()
            .add(name)
            .add(schedule.makespan(), 2)
            .add(slr(schedule, problem), 3)
            .add(speedup(schedule, problem), 3)
            .add(schedule.num_duplicates())
            .add(sim_result.makespan, 2);
        if (contended) {
            table.add(sim::simulate_contended(schedule, problem).makespan, 2);
        }
        table.add(elapsed, 3);
    }
    table.print(std::cout);
    if (contended) {
        std::cout << "\n(one-port = realised makespan when each processor has a single\n"
                     " full-duplex network port and transfers serialize; see bench_contention)\n";
    }
    return 0;
}
