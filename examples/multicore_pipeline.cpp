// Homogeneous multicore scenario with *real execution*: schedule a tiled
// Cholesky task graph onto N worker threads and actually run it — each task
// performs real arithmetic on shared tiles, and the executor enforces the
// schedule's ordering.  Demonstrates that a tsched schedule drives a real
// parallel computation end to end.
//
//   $ ./multicore_pipeline [--tiles=6] [--threads=4]
#include <cmath>
#include <iostream>
#include <vector>

#include "core/registry.hpp"
#include "metrics/metrics.hpp"
#include "sched/validate.hpp"
#include "sim/executor.hpp"
#include "util/args.hpp"
#include "workload/structured.hpp"

int main(int argc, char** argv) {
    using namespace tsched;
    const Args args(argc, argv);
    const auto tiles = static_cast<std::size_t>(args.get_int("tiles", 6));
    const auto threads = static_cast<std::size_t>(args.get_int("threads", 4));

    // The application DAG: tiled Cholesky (POTRF / TRSM / SYRK / GEMM).
    const Dag dag = workload::cholesky(tiles);
    std::cout << "tiled Cholesky, " << tiles << "x" << tiles << " tiles: " << dag.num_tasks()
              << " tasks, " << dag.num_edges() << " edges\n";

    // Homogeneous machine: `threads` identical cores, shared memory modelled
    // as a very fast crossbar.
    const auto links = std::make_shared<UniformLinkModel>(/*latency=*/0.0, /*bandwidth=*/100.0);
    Machine machine = Machine::homogeneous(threads, links);
    CostMatrix costs = CostMatrix::from_speeds(dag, machine);
    const Problem problem(dag, std::move(machine), std::move(costs));

    // Static schedule with the library's main algorithm.
    const auto scheduler = make_scheduler("ils");
    const Schedule schedule = scheduler->schedule(problem);
    if (const auto valid = validate(schedule, problem); !valid) {
        std::cerr << "invalid schedule: " << valid.message() << '\n';
        return 1;
    }
    std::cout << "static schedule: makespan " << schedule.makespan() << " cost units, speedup "
              << speedup(schedule, problem) << " on " << threads << " cores\n";

    // Real execution: each "tile op" iterates a small arithmetic kernel on a
    // per-task accumulator; dependencies guarantee every consumer sees its
    // producers' results.
    std::vector<double> cell(dag.num_tasks(), 0.0);
    const auto report = sim::execute_threaded(schedule, dag, [&](TaskId v, ProcId) {
        double acc = 1.0;
        for (int i = 0; i < 20000; ++i) acc = std::fma(acc, 1.0000001, 1e-7);
        double inputs = 0.0;
        for (const AdjEdge& e : dag.predecessors(v)) {
            inputs += cell[static_cast<std::size_t>(e.task)];
        }
        cell[static_cast<std::size_t>(v)] = acc + 0.5 * inputs;
    });

    std::cout << "real execution : " << report.wall_seconds * 1e3 << " ms wall on " << threads
              << " worker threads\n";
    for (std::size_t p = 0; p < threads; ++p) {
        std::cout << "  core " << p << " ran " << report.placements_run[p] << " tasks\n";
    }

    // Sanity: the final POTRF (last task of the factorisation) consumed the
    // whole dependency cone — its value must be finite and non-trivial.
    const double final_value = cell[dag.num_tasks() - 1];
    std::cout << "checksum of final tile: " << final_value << '\n';
    return std::isfinite(final_value) && final_value > 0.0 ? 0 : 1;
}
