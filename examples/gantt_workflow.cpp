// Gantt-chart workflow visualisation: schedule one workflow with several
// algorithms and export an SVG Gantt chart per algorithm, plus the DOT of
// the task graph — the figures you would put in a report.
//
//   $ ./gantt_workflow [--shape=gauss] [--size=8] [--procs=4] [--ccr=3]
//                      [--out=/tmp] [--algos=ils,ils-d,heft]
#include <fstream>
#include <iostream>

#include "core/registry.hpp"
#include "graph/serialize.hpp"
#include "metrics/metrics.hpp"
#include "sched/gantt.hpp"
#include "sched/validate.hpp"
#include "util/args.hpp"
#include "workload/instance.hpp"

int main(int argc, char** argv) {
    using namespace tsched;
    const Args args(argc, argv);

    workload::InstanceParams params;
    params.shape = workload::shape_from_name(args.get_string("shape", "gauss"));
    params.size = static_cast<std::size_t>(args.get_int("size", 8));
    params.num_procs = static_cast<std::size_t>(args.get_int("procs", 4));
    params.ccr = args.get_double("ccr", 3.0);
    params.beta = args.get_double("beta", 0.75);
    const Problem problem =
        workload::make_instance(params, static_cast<std::uint64_t>(args.get_int("seed", 11)));

    const std::string out_dir = args.get_string("out", "/tmp");
    const auto algos =
        args.get_string_list("algos", {"ils", "ils-d", "heft", "cpop", "btdh"});

    std::cout << "workflow: " << workload::shape_name(params.shape) << ", "
              << problem.num_tasks() << " tasks on " << params.num_procs
              << " processors (CCR " << problem.realized_ccr() << ")\n\n";

    const std::string dot_path = out_dir + "/workflow.dot";
    save_tsg(out_dir + "/workflow.tsg", problem.dag());
    {
        std::ofstream dot(dot_path);
        dot << to_dot(problem.dag(), "workflow");
    }
    std::cout << "wrote " << out_dir << "/workflow.tsg and " << dot_path << '\n';

    for (const auto& name : algos) {
        const auto scheduler = make_scheduler(name);
        const Schedule schedule = scheduler->schedule(problem);
        if (const auto valid = validate(schedule, problem); !valid) {
            std::cerr << name << ": INVALID — " << valid.message() << '\n';
            return 1;
        }
        GanttOptions options;
        options.title = name + "  (makespan " + std::to_string(schedule.makespan()) +
                        ", SLR " + std::to_string(slr(schedule, problem)) + ")";
        const std::string path = out_dir + "/gantt_" + name + ".svg";
        save_svg(path, schedule, &problem.dag(), options);
        std::cout << "wrote " << path << "  (makespan " << schedule.makespan() << ", "
                  << schedule.num_duplicates() << " duplicates)\n";
    }
    std::cout << "\nOpen the SVGs in a browser to compare the schedules visually;\n"
                 "duplicated placements are drawn hatched.\n";
    return 0;
}
