// Quickstart: the five-minute tour of the tsched API.
//
// Builds a small workflow DAG by hand, describes a 3-processor heterogeneous
// machine, schedules with the library's ILS algorithm, validates the result,
// and prints the schedule plus its quality metrics.
//
//   $ ./quickstart
#include <iostream>

#include "core/registry.hpp"
#include "graph/serialize.hpp"
#include "metrics/metrics.hpp"
#include "sched/validate.hpp"

int main() {
    using namespace tsched;

    // 1. The application: a small diamond-shaped workflow.
    //    Node work and edge data are abstract units; the platform turns them
    //    into times.
    Dag dag;
    const TaskId load = dag.add_task(2.0, "load");
    const TaskId split_a = dag.add_task(4.0, "filter-A");
    const TaskId split_b = dag.add_task(6.0, "filter-B");
    const TaskId merge = dag.add_task(3.0, "merge");
    const TaskId report = dag.add_task(1.0, "report");
    dag.add_edge(load, split_a, 8.0);   // 8 data units from load to filter-A
    dag.add_edge(load, split_b, 8.0);
    dag.add_edge(split_a, merge, 4.0);
    dag.add_edge(split_b, merge, 4.0);
    dag.add_edge(merge, report, 1.0);

    // 2. The platform: 3 processors on a full crossbar (latency 0.5 time
    //    units per message, 2 data units per time unit), with an explicit
    //    per-task execution-cost matrix (rows = tasks, columns = processors).
    //    Processor 2 is a fast accelerator for the filters but slow at I/O.
    const auto links = std::make_shared<UniformLinkModel>(/*latency=*/0.5, /*bandwidth=*/2.0);
    Machine machine = Machine::homogeneous(3, links);
    CostMatrix costs(5, 3,
                     {
                         // P0    P1    P2
                         2.0, 2.5, 6.0,  // load
                         4.0, 5.0, 1.5,  // filter-A
                         6.0, 7.0, 2.0,  // filter-B
                         3.0, 3.0, 3.0,  // merge
                         1.0, 1.0, 2.0,  // report
                     });
    const Problem problem(std::move(dag), std::move(machine), std::move(costs));

    // 3. Schedule.  Algorithms are looked up by name; see scheduler_names().
    const auto scheduler = make_scheduler("ils");
    const Schedule schedule = scheduler->schedule(problem);

    // 4. Always validate (precedence, exclusivity, timing).
    const ValidationResult valid = validate(schedule, problem);
    if (!valid) {
        std::cerr << "invalid schedule!\n" << valid.message() << '\n';
        return 1;
    }

    // 5. Inspect the result.
    std::cout << "scheduler : " << scheduler->name() << "\n";
    std::cout << schedule.to_string() << '\n';
    std::cout << "makespan  : " << schedule.makespan() << "\n";
    std::cout << "SLR       : " << slr(schedule, problem) << "  (1.0 = critical-path optimal)\n";
    std::cout << "speedup   : " << speedup(schedule, problem) << "  (vs best single processor)\n";
    std::cout << "efficiency: " << efficiency(schedule, problem) << "\n\n";

    // 6. Export the task graph for graphviz (`dot -Tpng workflow.dot`).
    std::cout << "DOT of the workflow:\n" << to_dot(problem.dag(), "workflow");
    return 0;
}
