// Heterogeneous cluster scenario: schedule a Montage-style astronomy
// workflow onto a mixed CPU/GPU cluster and compare the library's algorithms
// head to head — the workflow-engine use case the static-scheduling
// literature motivates.
//
//   $ ./hetero_cluster [--width=12] [--procs=6] [--ccr=2.0]
#include <iostream>

#include "core/registry.hpp"
#include "metrics/metrics.hpp"
#include "sched/validate.hpp"
#include "util/args.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "workload/costs.hpp"
#include "workload/structured.hpp"

int main(int argc, char** argv) {
    using namespace tsched;
    const Args args(argc, argv);
    const auto width = static_cast<std::size_t>(args.get_int("width", 12));
    const auto procs = static_cast<std::size_t>(args.get_int("procs", 6));
    const double ccr = args.get_double("ccr", 2.0);

    // The workflow: `width` input images through projection, overlap fitting,
    // background correction and the final mosaic.
    Dag dag = workload::montage_like(width);
    std::cout << "Montage-like workflow: " << dag.num_tasks() << " tasks, " << dag.num_edges()
              << " edges\n";

    // The cluster: half the nodes are CPU-like (uniform speed), half are
    // GPU-like (fast on the heavy kernels, slower on the small glue tasks).
    // Costs are expressed directly as an (unrelated-machines) matrix.
    Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)));
    std::vector<double> costs(dag.num_tasks() * procs);
    for (std::size_t v = 0; v < dag.num_tasks(); ++v) {
        const double work = dag.work(static_cast<TaskId>(v));
        const bool heavy_kernel = work >= 4.0;  // projections and the mosaic
        for (std::size_t p = 0; p < procs; ++p) {
            const bool gpu = p >= procs / 2;
            double speed = 1.0;
            if (gpu) speed = heavy_kernel ? 4.0 : 0.6;  // great at kernels, poor at glue
            costs[v * procs + p] = (work * 5.0 / speed) * rng.uniform(0.9, 1.1);
        }
    }
    CostMatrix matrix(dag.num_tasks(), procs, std::move(costs));

    // Interconnect: full crossbar; edge volumes rescaled to the requested
    // communication-to-computation ratio.
    const auto links = std::make_shared<UniformLinkModel>(/*latency=*/1.0, /*bandwidth=*/1.0);
    double mean_exec = 0.0;
    for (std::size_t v = 0; v < dag.num_tasks(); ++v) {
        mean_exec += matrix.mean(static_cast<TaskId>(v));
    }
    mean_exec /= static_cast<double>(dag.num_tasks());
    workload::calibrate_ccr(dag, *links, procs, ccr, mean_exec);

    const Problem problem(std::move(dag), Machine::homogeneous(procs, links),
                          std::move(matrix));

    // Head-to-head comparison of every registered scheduler.
    Table table({"scheduler", "makespan", "SLR", "speedup", "efficiency", "dups", "time ms"});
    for (const auto& name : scheduler_names()) {
        const auto scheduler = make_scheduler(name);
        Stopwatch watch;
        const Schedule schedule = scheduler->schedule(problem);
        const double ms = watch.elapsed_ms();
        if (const auto valid = validate(schedule, problem); !valid) {
            std::cerr << name << ": INVALID — " << valid.message() << '\n';
            return 1;
        }
        table.new_row()
            .add(name)
            .add(schedule.makespan(), 2)
            .add(slr(schedule, problem), 3)
            .add(speedup(schedule, problem), 3)
            .add(efficiency(schedule, problem), 3)
            .add(schedule.num_duplicates())
            .add(ms, 3);
    }
    std::cout << '\n';
    table.print(std::cout);

    std::cout << "\nReading the table: SLR is makespan over the communication-free critical\n"
                 "path (lower is better, 1.0 is unbeatable); `dups` counts duplicated\n"
                 "placements used by the duplication-based algorithms.\n";
    return 0;
}
