// Heterogeneous cluster scenario: schedule a Montage-style astronomy
// workflow onto a mixed CPU/GPU cluster and compare the library's algorithms
// head to head — the workflow-engine use case the static-scheduling
// literature motivates.
//
//   $ ./hetero_cluster [--width=12] [--procs=6] [--ccr=2.0] [--save-dir=DIR]
//
// --save-dir writes the instance and the best schedule found to DIR
// (hetero_cluster.{tsg,tsp,tss} plus a Gantt SVG) — the README quickstart
// feeds those files to tsched_lint and tsched_trace.
#include <filesystem>
#include <iostream>
#include <optional>

#include "core/registry.hpp"
#include "graph/serialize.hpp"
#include "metrics/metrics.hpp"
#include "platform/platform_io.hpp"
#include "sched/gantt.hpp"
#include "sched/schedule_io.hpp"
#include "sched/validate.hpp"
#include "util/args.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "workload/costs.hpp"
#include "workload/structured.hpp"

int main(int argc, char** argv) {
    using namespace tsched;
    const Args args(argc, argv);
    const auto width = static_cast<std::size_t>(args.get_int("width", 12));
    const auto procs = static_cast<std::size_t>(args.get_int("procs", 6));
    const double ccr = args.get_double("ccr", 2.0);

    // The workflow: `width` input images through projection, overlap fitting,
    // background correction and the final mosaic.
    Dag dag = workload::montage_like(width);
    std::cout << "Montage-like workflow: " << dag.num_tasks() << " tasks, " << dag.num_edges()
              << " edges\n";

    // The cluster: half the nodes are CPU-like (uniform speed), half are
    // GPU-like (fast on the heavy kernels, slower on the small glue tasks).
    // Costs are expressed directly as an (unrelated-machines) matrix.
    Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 42)));
    std::vector<double> costs(dag.num_tasks() * procs);
    for (std::size_t v = 0; v < dag.num_tasks(); ++v) {
        const double work = dag.work(static_cast<TaskId>(v));
        const bool heavy_kernel = work >= 4.0;  // projections and the mosaic
        for (std::size_t p = 0; p < procs; ++p) {
            const bool gpu = p >= procs / 2;
            double speed = 1.0;
            if (gpu) speed = heavy_kernel ? 4.0 : 0.6;  // great at kernels, poor at glue
            costs[v * procs + p] = (work * 5.0 / speed) * rng.uniform(0.9, 1.1);
        }
    }
    CostMatrix matrix(dag.num_tasks(), procs, std::move(costs));

    // Interconnect: full crossbar; edge volumes rescaled to the requested
    // communication-to-computation ratio.
    const auto links = std::make_shared<UniformLinkModel>(/*latency=*/1.0, /*bandwidth=*/1.0);
    double mean_exec = 0.0;
    for (std::size_t v = 0; v < dag.num_tasks(); ++v) {
        mean_exec += matrix.mean(static_cast<TaskId>(v));
    }
    mean_exec /= static_cast<double>(dag.num_tasks());
    workload::calibrate_ccr(dag, *links, procs, ccr, mean_exec);

    const Problem problem(std::move(dag), Machine::homogeneous(procs, links),
                          std::move(matrix));

    // Head-to-head comparison of every registered scheduler.
    Table table({"scheduler", "makespan", "SLR", "speedup", "efficiency", "dups", "time ms"});
    std::string best_name;
    std::optional<Schedule> best_schedule;
    for (const auto& name : scheduler_names()) {
        const auto scheduler = make_scheduler(name);
        double ms = 0.0;
        Schedule schedule = [&] {
            const Stopwatch::Scoped timer(ms);
            return scheduler->schedule(problem);
        }();
        if (const auto valid = validate(schedule, problem); !valid) {
            std::cerr << name << ": INVALID — " << valid.message() << '\n';
            return 1;
        }
        table.new_row()
            .add(name)
            .add(schedule.makespan(), 2)
            .add(slr(schedule, problem), 3)
            .add(speedup(schedule, problem), 3)
            .add(efficiency(schedule, problem), 3)
            .add(schedule.num_duplicates())
            .add(ms, 3);
        if (!best_schedule || schedule.makespan() < best_schedule->makespan()) {
            best_name = name;
            best_schedule = std::move(schedule);
        }
    }
    std::cout << '\n';
    table.print(std::cout);

    if (args.has("save-dir")) {
        const std::filesystem::path dir = args.get_string("save-dir", ".");
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        save_tsg((dir / "hetero_cluster.tsg").string(), problem.dag());
        save_tsp((dir / "hetero_cluster.tsp").string(), problem.machine(), problem.costs());
        save_tss((dir / "hetero_cluster.tss").string(), *best_schedule);
        save_svg((dir / "hetero_cluster.svg").string(), *best_schedule, &problem.dag());
        std::cout << "\nSaved the instance and the " << best_name << " schedule (makespan "
                  << best_schedule->makespan() << ") to " << dir.string() << "/\n";
    }

    std::cout << "\nReading the table: SLR is makespan over the communication-free critical\n"
                 "path (lower is better, 1.0 is unbeatable); `dups` counts duplicated\n"
                 "placements used by the duplication-based algorithms.\n";
    return 0;
}
