// Monotonic wall-clock stopwatch for timing scheduler runs in the harness.
#pragma once

#include <chrono>

namespace tsched {

class Stopwatch {
    using clock = std::chrono::steady_clock;

public:
    Stopwatch() noexcept : start_(clock::now()) {}

    void restart() noexcept { start_ = clock::now(); }

    [[nodiscard]] double elapsed_seconds() const noexcept {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }
    [[nodiscard]] double elapsed_us() const noexcept { return elapsed_seconds() * 1e6; }

    /// RAII timer: writes the elapsed milliseconds into `out` when the scope
    /// closes, so a measured block cannot forget to stop the clock on an
    /// early return or an exception.
    class Scoped {
    public:
        explicit Scoped(double& out) noexcept : out_(out), start_(clock::now()) {}
        Scoped(const Scoped&) = delete;
        Scoped& operator=(const Scoped&) = delete;
        ~Scoped() {
            out_ = std::chrono::duration<double>(clock::now() - start_).count() * 1e3;
        }

    private:
        double& out_;
        clock::time_point start_;
    };

private:
    clock::time_point start_;
};

}  // namespace tsched
