#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace tsched {

ThreadPool::ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) {
        num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) {
        if (t.joinable()) t.join();
    }
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stopping_) return;
                continue;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            std::lock_guard lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
        }
    }
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    const std::size_t workers = pool.size();
    const std::size_t chunks = std::min(count, workers * 4);
    const std::size_t chunk_size = (count + chunks - 1) / chunks;

    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * chunk_size;
        const std::size_t end = std::min(count, begin + chunk_size);
        if (begin >= end) break;
        futures.push_back(pool.submit([&, begin, end] {
            for (std::size_t i = begin; i < end && !failed.load(std::memory_order_relaxed); ++i) {
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard lock(error_mutex);
                    if (!first_error) first_error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        }));
    }
    for (auto& f : futures) f.get();
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tsched
