#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/obs.hpp"
#include "util/stopwatch.hpp"

namespace tsched {

ThreadPool::ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) {
        num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
    {
        LockGuard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    // Joined threads stay in workers_ (joinable() is false afterwards) so
    // size() keeps reporting the pool's width and a second shutdown() — e.g.
    // the destructor after an explicit call — is a no-op walk.
    for (auto& t : workers_) {
        if (t.joinable()) t.join();
    }
    // Workers drain the queue before exiting, so any wait_idle() caller's
    // condition now holds; wake it in case the final notify raced its wait.
    idle_cv_.notify_all();
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            UniqueLock lock(mutex_);
            while (!stopping_ && queue_.empty()) cv_.wait(lock);
            if (queue_.empty()) {
                if (stopping_) return;
                continue;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
#if TSCHED_OBS_ON
        {
            Stopwatch watch;
            task();
            task_run_ms_.record(watch.elapsed_ms());
        }
#else
        task();
#endif
        tasks_run_.fetch_add(1, std::memory_order_relaxed);
        {
            LockGuard lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
        }
    }
}

void ThreadPool::wait_idle() {
    UniqueLock lock(mutex_);
    while (!queue_.empty() || active_ != 0) idle_cv_.wait(lock);
}

bool ThreadPool::wait_idle_for(double timeout_ms) {
    if (timeout_ms <= 0.0) {
        wait_idle();
        return true;
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double, std::milli>(timeout_ms);
    UniqueLock lock(mutex_);
    while (!queue_.empty() || active_ != 0) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return false;
        idle_cv_.wait_for(lock, deadline - now);
    }
    return true;
}

PoolMetrics ThreadPool::metrics() const {
    PoolMetrics out;
    out.workers = workers_.size();
    {
        LockGuard lock(mutex_);
        out.queue_depth = queue_.size();
        out.active = active_;
    }
    out.tasks_run = tasks_run_.load(std::memory_order_relaxed);
    out.task_run_ms = task_run_ms_.snapshot();
    return out;
}

namespace {

/// First-exception slot shared by parallel_for chunks; a named struct (not
/// captured locals) so the guarded_by relation is expressible.
struct ErrorSlot {
    Mutex mutex;
    std::exception_ptr first TSCHED_GUARDED_BY(mutex);

    void record(std::exception_ptr error) TSCHED_EXCLUDES(mutex) {
        LockGuard lock(mutex);
        if (!first) first = std::move(error);
    }
    [[nodiscard]] std::exception_ptr take() TSCHED_EXCLUDES(mutex) {
        LockGuard lock(mutex);
        return first;
    }
};

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    const std::size_t workers = pool.size();
    const std::size_t chunks = std::min(count, workers * 4);
    const std::size_t chunk_size = (count + chunks - 1) / chunks;

    std::atomic<bool> failed{false};
    ErrorSlot error;

    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * chunk_size;
        const std::size_t end = std::min(count, begin + chunk_size);
        if (begin >= end) break;
        futures.push_back(pool.submit([&, begin, end] {
            for (std::size_t i = begin; i < end && !failed.load(std::memory_order_relaxed); ++i) {
                try {
                    fn(i);
                } catch (...) {
                    error.record(std::current_exception());
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        }));
    }
    for (auto& f : futures) f.get();
    // f.get() on every chunk orders all record() calls before this read.
    if (auto first = error.take()) std::rethrow_exception(first);
}

}  // namespace tsched
