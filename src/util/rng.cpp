#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace tsched {

double Rng::uniform() noexcept {
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
    assert(lo <= hi);
    return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    assert(lo <= hi);
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
    // Classic unbiased rejection sampling: draw until the value falls below
    // the largest multiple of `range`; expected < 2 draws for any range.
    const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                                (std::numeric_limits<std::uint64_t>::max() % range + 1) % range;
    for (;;) {
        const std::uint64_t r = next();
        if (r <= limit) return lo + static_cast<std::int64_t>(r % range);
    }
}

double Rng::normal() noexcept {
    if (has_spare_) {
        has_spare_ = false;
        return spare_normal_;
    }
    // Box–Muller; u1 is kept away from 0 to avoid log(0).
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    spare_normal_ = radius * std::sin(theta);
    has_spare_ = true;
    return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

double Rng::exponential(double lambda) noexcept {
    assert(lambda > 0.0);
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
}

bool Rng::bernoulli(double p) noexcept {
    return uniform() < p;
}

}  // namespace tsched
