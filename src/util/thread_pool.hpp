// Fixed-size thread pool.
//
// Two consumers in this repository:
//   * the benchmark harness, which fans independent trials out across cores
//     via parallel_for;
//   * sim::ThreadedExecutor, which pins one worker per simulated processor to
//     actually run a static schedule's tasks as real closures.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace tsched {

class ThreadPool {
public:
    /// Create `num_threads` workers (>= 1).  0 means hardware_concurrency.
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueue a task; the future reports completion / exceptions.
    template <typename F>
    auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard lock(mutex_);
            if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
            queue_.emplace_back([task]() { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /// Block until all currently enqueued tasks finish.
    void wait_idle();

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable idle_cv_;
    std::size_t active_ = 0;
    bool stopping_ = false;
};

/// Run fn(i) for i in [0, count), chunked across the pool; blocks until done.
/// Exceptions from iterations are propagated (first one wins).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace tsched
