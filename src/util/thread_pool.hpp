// Fixed-size thread pool.
//
// Two consumers in this repository:
//   * the benchmark harness, which fans independent trials out across cores
//     via parallel_for;
//   * sim::ThreadedExecutor, which pins one worker per simulated processor to
//     actually run a static schedule's tasks as real closures.
//
// Lock discipline (checked by clang thread-safety analysis, DESIGN §13):
// every piece of queue/lifecycle state is guarded by `mutex_`; workers and
// producers communicate only through that lock plus the two condition
// variables.  `workers_` itself is written during construction and shutdown
// only, both of which happen on the owning thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace tsched {

/// Point-in-time pool telemetry (obs layer, DESIGN §14).  queue_depth and
/// active are instantaneous; tasks_run and the task-run histogram are
/// cumulative.  The histogram only fills when the build has TSCHED_OBS on —
/// the queue/occupancy fields are maintained unconditionally (they are the
/// pool's own bookkeeping, not extra instrumentation).
struct PoolMetrics {
    std::size_t workers = 0;
    std::size_t queue_depth = 0;
    std::size_t active = 0;
    std::uint64_t tasks_run = 0;
    obs::HistogramSnapshot task_run_ms;
};

class ThreadPool {
public:
    /// Create `num_threads` workers (>= 1).  0 means hardware_concurrency.
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueue a task; the future reports completion / exceptions.
    template <typename F>
    std::future<std::invoke_result_t<F>> submit(F&& fn) TSCHED_EXCLUDES(mutex_) {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        {
            LockGuard lock(mutex_);
            if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
            queue_.emplace_back([task]() { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /// Block until all currently enqueued tasks finish.
    void wait_idle() TSCHED_EXCLUDES(mutex_);

    /// Bounded wait_idle: true if the pool went idle within `timeout_ms`,
    /// false on timeout (work still queued or running).  `timeout_ms <= 0`
    /// degenerates to wait_idle() and always returns true.  This is the
    /// drain hook shutdown sequencing builds on (ServeEngine::drain bounds
    /// its teardown with it instead of blocking forever on a wedged task).
    [[nodiscard]] bool wait_idle_for(double timeout_ms) TSCHED_EXCLUDES(mutex_);

    /// Snapshot of queue depth, worker occupancy, and task-run timings.
    [[nodiscard]] PoolMetrics metrics() const TSCHED_EXCLUDES(mutex_);

    /// Drain the queue and join every worker.  Idempotent; the destructor
    /// calls it.  Explicit shutdown lets owners of borrowed-pool consumers
    /// (ServeEngine) sequence teardown deliberately — after shutdown,
    /// submit() throws instead of enqueueing work that would never run.
    /// Must not be called from inside a pool task (a worker cannot join
    /// itself).
    void shutdown() TSCHED_EXCLUDES(mutex_);

private:
    void worker_loop() TSCHED_EXCLUDES(mutex_);

    std::vector<std::thread> workers_;
    mutable Mutex mutex_;
    CondVar cv_;
    CondVar idle_cv_;
    std::deque<std::function<void()>> queue_ TSCHED_GUARDED_BY(mutex_);
    std::size_t active_ TSCHED_GUARDED_BY(mutex_) = 0;
    bool stopping_ TSCHED_GUARDED_BY(mutex_) = false;
    // Cumulative telemetry; always members (ODR safety under mixed
    // TSCHED_OBS settings), the histogram fills only when obs is on.
    std::atomic<std::uint64_t> tasks_run_{0};
    obs::LatencyHistogram task_run_ms_;
};

/// Run fn(i) for i in [0, count), chunked across the pool; blocks until done.
/// Exceptions from iterations are propagated (first one wins).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace tsched
