// Fixed-size thread pool.
//
// Two consumers in this repository:
//   * the benchmark harness, which fans independent trials out across cores
//     via parallel_for;
//   * sim::ThreadedExecutor, which pins one worker per simulated processor to
//     actually run a static schedule's tasks as real closures.
//
// Lock discipline (checked by clang thread-safety analysis, DESIGN §13):
// every piece of queue/lifecycle state is guarded by `mutex_`; workers and
// producers communicate only through that lock plus the two condition
// variables.  `workers_` itself is written during construction and shutdown
// only, both of which happen on the owning thread.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace tsched {

class ThreadPool {
public:
    /// Create `num_threads` workers (>= 1).  0 means hardware_concurrency.
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueue a task; the future reports completion / exceptions.
    template <typename F>
    std::future<std::invoke_result_t<F>> submit(F&& fn) TSCHED_EXCLUDES(mutex_) {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        {
            LockGuard lock(mutex_);
            if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
            queue_.emplace_back([task]() { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /// Block until all currently enqueued tasks finish.
    void wait_idle() TSCHED_EXCLUDES(mutex_);

    /// Drain the queue and join every worker.  Idempotent; the destructor
    /// calls it.  Explicit shutdown lets owners of borrowed-pool consumers
    /// (ServeEngine) sequence teardown deliberately — after shutdown,
    /// submit() throws instead of enqueueing work that would never run.
    /// Must not be called from inside a pool task (a worker cannot join
    /// itself).
    void shutdown() TSCHED_EXCLUDES(mutex_);

private:
    void worker_loop() TSCHED_EXCLUDES(mutex_);

    std::vector<std::thread> workers_;
    Mutex mutex_;
    CondVar cv_;
    CondVar idle_cv_;
    std::deque<std::function<void()>> queue_ TSCHED_GUARDED_BY(mutex_);
    std::size_t active_ TSCHED_GUARDED_BY(mutex_) = 0;
    bool stopping_ TSCHED_GUARDED_BY(mutex_) = false;
};

/// Run fn(i) for i in [0, count), chunked across the pool; blocks until done.
/// Exceptions from iterations are propagated (first one wins).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace tsched
