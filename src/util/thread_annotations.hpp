// Compile-time concurrency discipline: clang Thread Safety Analysis macros
// and annotated synchronization primitives.
//
// Every shared-state component in the repository (ThreadPool, ScheduleCache,
// ServeEngine, the executor, the trace registry, util/log) declares its lock
// ownership through these macros so that a forgotten lock is a *build break*
// under clang (`-Wthread-safety -Werror=thread-safety`), not a flaky TSan
// repro.  On GCC/MSVC every macro expands to nothing and the wrapper types
// below degrade to zero-cost veneers over the std primitives, so the
// annotations cost nothing where they cannot be checked.
//
// Conventions (DESIGN §13 has the full treatment):
//   * every mutable member shared across threads is `TSCHED_GUARDED_BY` its
//     mutex; immutable-after-construction members are left unannotated and
//     documented as such;
//   * internal helpers that expect the caller to hold a lock carry a
//     `_locked` name suffix *and* `TSCHED_REQUIRES(mutex_)` — ownership is
//     visible in the signature, not in a comment;
//   * public entry points that take a lock themselves are annotated
//     `TSCHED_EXCLUDES(mutex_)` so re-entrant misuse fails to compile;
//   * condition waits are written as explicit `while (!cond) cv.wait(lock);`
//     loops instead of predicate lambdas, keeping every guarded read inside
//     the annotated function body where the analysis can see the lock.
//
// Force-off escape hatch: defining TSCHED_THREAD_ANNOTATIONS_FORCE_OFF makes
// the macros expand to nothing even under clang (mirroring the
// TSCHED_TRACE_FORCE_OFF pattern); tests/test_annotations.cpp uses it to
// prove annotated code compiles unchanged without the analysis.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(TSCHED_THREAD_ANNOTATIONS_FORCE_OFF)
#define TSCHED_ANNOTATIONS_ENABLED 1
#define TSCHED_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TSCHED_ANNOTATIONS_ENABLED 0
#define TSCHED_THREAD_ANNOTATION(x)  // expands to nothing off-clang
#endif

/// Marks a type as a lockable capability ("mutex" by convention).
#define TSCHED_CAPABILITY(x) TSCHED_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires in its constructor / releases in its
/// destructor (std::lock_guard shape).
#define TSCHED_SCOPED_CAPABILITY TSCHED_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define TSCHED_GUARDED_BY(x) TSCHED_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define TSCHED_PT_GUARDED_BY(x) TSCHED_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declaration: this mutex must be acquired before the listed
/// ones (checked under -Wthread-safety-beta).
#define TSCHED_ACQUIRED_BEFORE(...) TSCHED_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define TSCHED_ACQUIRED_AFTER(...) TSCHED_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function precondition: caller already holds the mutex(es).
#define TSCHED_REQUIRES(...) TSCHED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TSCHED_REQUIRES_SHARED(...) \
    TSCHED_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the mutex(es) itself (non-RAII interfaces).
#define TSCHED_ACQUIRE(...) TSCHED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TSCHED_RELEASE(...) TSCHED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TSCHED_TRY_ACQUIRE(...) TSCHED_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function precondition: caller must NOT hold the mutex(es) (the function
/// takes them itself; calling with them held would self-deadlock).
#define TSCHED_EXCLUDES(...) TSCHED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code the analysis
/// cannot follow, e.g. locks handed across an API boundary).
#define TSCHED_ASSERT_CAPABILITY(x) TSCHED_THREAD_ANNOTATION(assert_capability(x))

/// The returned reference is protected by the given mutex.
#define TSCHED_RETURN_CAPABILITY(x) TSCHED_THREAD_ANNOTATION(lock_returned(x))

/// Last resort: suppress the analysis for one function.  Every use must
/// carry a comment explaining why the ownership cannot be expressed.
#define TSCHED_NO_THREAD_SAFETY_ANALYSIS TSCHED_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace tsched {

class UniqueLock;

/// std::mutex with the capability annotation the analysis needs.  Identical
/// layout and cost; prefer this for any mutex guarding annotated members.
class TSCHED_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() TSCHED_ACQUIRE() { inner_.lock(); }
    void unlock() TSCHED_RELEASE() { inner_.unlock(); }
    bool try_lock() TSCHED_TRY_ACQUIRE(true) { return inner_.try_lock(); }

private:
    friend class UniqueLock;
    std::mutex inner_;
};

/// RAII lock over Mutex — std::lock_guard with scoped-capability tracking.
class TSCHED_SCOPED_CAPABILITY LockGuard {
public:
    explicit LockGuard(Mutex& mutex) TSCHED_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
    ~LockGuard() TSCHED_RELEASE() { mutex_.unlock(); }

    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

private:
    Mutex& mutex_;
};

/// Movable-free std::unique_lock shape: supports early unlock() and is the
/// lock type CondVar waits on.  Wraps a real std::unique_lock over the
/// Mutex's inner std::mutex so condition_variable wait semantics (and
/// codegen) are exactly those of the unannotated original.
class TSCHED_SCOPED_CAPABILITY UniqueLock {
public:
    explicit UniqueLock(Mutex& mutex) TSCHED_ACQUIRE(mutex) : inner_(mutex.inner_) {}
    ~UniqueLock() TSCHED_RELEASE() {}  // NOLINT(modernize-use-equals-default) — attribute needs a body

    UniqueLock(const UniqueLock&) = delete;
    UniqueLock& operator=(const UniqueLock&) = delete;

    /// Release before end of scope (the destructor then does nothing).
    void unlock() TSCHED_RELEASE() { inner_.unlock(); }

private:
    friend class CondVar;
    std::unique_lock<std::mutex> inner_;
};

/// Condition variable waiting on UniqueLock.  No predicate overload on
/// purpose: annotated code spells waits as explicit while-loops so guarded
/// reads stay inside the function the analysis is checking (a predicate
/// lambda would be analyzed as a separate, lockless function).
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /// Caller must hold `lock`; as with std::condition_variable, the lock is
    /// released while blocked and re-held on return.
    void wait(UniqueLock& lock) { inner_.wait(lock.inner_); }

    /// Timed wait, same contract as wait().  Returns std::cv_status so the
    /// caller's while-loop re-checks its guarded predicate either way
    /// (spurious wakeups and timeouts are handled identically).
    template <typename Rep, typename Period>
    std::cv_status wait_for(UniqueLock& lock,
                            const std::chrono::duration<Rep, Period>& timeout) {
        return inner_.wait_for(lock.inner_, timeout);
    }

    void notify_one() noexcept { inner_.notify_one(); }
    void notify_all() noexcept { inner_.notify_all(); }

private:
    std::condition_variable inner_;
};

}  // namespace tsched
