#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace tsched {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept {
    return std::sqrt(variance());
}

double RunningStats::ci95_halfwidth() const noexcept {
    if (n_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double quantile_sorted(std::span<const double> sorted, double q) {
    assert(!sorted.empty());
    assert(q >= 0.0 && q <= 1.0);
    if (sorted.size() == 1) return sorted[0];
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile_nearest_rank(std::span<const double> sorted, double q) {
    assert(!sorted.empty());
    assert(q >= 0.0 && q <= 1.0);
    const auto n = static_cast<double>(sorted.size());
    const auto rank = static_cast<std::size_t>(
        std::clamp(std::ceil(q * n), 1.0, n));
    return sorted[rank - 1];
}

Summary summarize(std::span<const double> samples) {
    Summary s;
    if (samples.empty()) return s;
    std::vector<double> sorted(samples.begin(), samples.end());
    std::sort(sorted.begin(), sorted.end());
    RunningStats rs;
    for (double x : sorted) rs.add(x);
    s.count = rs.count();
    s.mean = rs.mean();
    s.stddev = rs.stddev();
    s.min = sorted.front();
    s.max = sorted.back();
    s.p25 = quantile_sorted(sorted, 0.25);
    s.median = quantile_sorted(sorted, 0.5);
    s.p75 = quantile_sorted(sorted, 0.75);
    s.ci95 = rs.ci95_halfwidth();
    return s;
}

double geometric_mean(std::span<const double> samples) {
    assert(!samples.empty());
    double log_sum = 0.0;
    for (double x : samples) {
        assert(x > 0.0);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(samples.size()));
}

std::string format_mean_ci(const Summary& s, int precision) {
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << s.mean << " ±" << s.ci95;
    return os.str();
}

}  // namespace tsched
