// Small statistics toolkit used by the metrics module and the benchmark
// harness: single-pass accumulation (Welford) plus order statistics and
// normal-approximation confidence intervals over trial sets.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tsched {

/// Single-pass mean/variance accumulator (Welford's algorithm).
/// Numerically stable for the long accumulation runs the benchmark sweeps do.
class RunningStats {
public:
    void add(double x) noexcept;
    void merge(const RunningStats& other) noexcept;
    void reset() noexcept { *this = RunningStats{}; }

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 when fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
    [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
    [[nodiscard]] double sum() const noexcept { return sum_; }
    /// Half-width of the ~95% normal-approximation confidence interval.
    [[nodiscard]] double ci95_halfwidth() const noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Summary of a full sample vector, including order statistics.
struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double p25 = 0.0;
    double median = 0.0;
    double p75 = 0.0;
    double max = 0.0;
    double ci95 = 0.0;  ///< half-width of the 95% CI of the mean
};

/// Compute a Summary over the samples (copies and sorts internally).
[[nodiscard]] Summary summarize(std::span<const double> samples);

// The repository's two quantile conventions.  Everything that reports a
// percentile goes through one of these (replay reports, Summary, the
// robustness metrics, obs histogram validation) so "p99" means the same
// thing everywhere it is compared:
//
//   * quantile_sorted — linear interpolation between the two nearest order
//     statistics at position q*(n-1) (type 7 in the Hyndman–Fan taxonomy,
//     the R/NumPy default).  Continuous in q; the value may fall between
//     samples.  Use for human-facing summaries of continuous measurements.
//
//   * quantile_nearest_rank — the classic nearest-rank definition: the
//     sample at rank ceil(q*n), clamped to [1, n].  Always an observed
//     sample; q=0 gives the minimum, q=1 the maximum.  Use where the answer
//     must be an actual data point (robustness degradation pick) or must
//     match obs::HistogramSnapshot::quantile, which implements the same rank
//     rule over buckets — that shared definition is what makes the
//     histogram-vs-exact error bound (LatencyHistogram::kMaxRelativeError)
//     checkable at all.
//
// tests/test_stats.cpp pins both conventions with golden values; changing
// either moves published report numbers.

/// Linear-interpolation quantile of a *sorted* sample vector, q in [0, 1].
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Nearest-rank quantile of a *sorted* sample vector, q in [0, 1]: the
/// element at rank clamp(ceil(q*n), 1, n).
[[nodiscard]] double quantile_nearest_rank(std::span<const double> sorted, double q);

/// Geometric mean; samples must be strictly positive.
[[nodiscard]] double geometric_mean(std::span<const double> samples);

/// Render "mean ± ci" with the given precision (for table cells).
[[nodiscard]] std::string format_mean_ci(const Summary& s, int precision = 3);

}  // namespace tsched
