// Small statistics toolkit used by the metrics module and the benchmark
// harness: single-pass accumulation (Welford) plus order statistics and
// normal-approximation confidence intervals over trial sets.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tsched {

/// Single-pass mean/variance accumulator (Welford's algorithm).
/// Numerically stable for the long accumulation runs the benchmark sweeps do.
class RunningStats {
public:
    void add(double x) noexcept;
    void merge(const RunningStats& other) noexcept;
    void reset() noexcept { *this = RunningStats{}; }

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 when fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
    [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
    [[nodiscard]] double sum() const noexcept { return sum_; }
    /// Half-width of the ~95% normal-approximation confidence interval.
    [[nodiscard]] double ci95_halfwidth() const noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Summary of a full sample vector, including order statistics.
struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double p25 = 0.0;
    double median = 0.0;
    double p75 = 0.0;
    double max = 0.0;
    double ci95 = 0.0;  ///< half-width of the 95% CI of the mean
};

/// Compute a Summary over the samples (copies and sorts internally).
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Linear-interpolation quantile of a *sorted* sample vector, q in [0, 1].
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Geometric mean; samples must be strictly positive.
[[nodiscard]] double geometric_mean(std::span<const double> samples);

/// Render "mean ± ci" with the given precision (for table cells).
[[nodiscard]] std::string format_mean_ci(const Summary& s, int precision = 3);

}  // namespace tsched
