// Leveled logging to stderr.  Kept deliberately tiny: experiments are the
// primary output (stdout tables) and logs must never interleave with them.
#pragma once

#include <sstream>
#include <string>

namespace tsched {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default: kWarn so bench
/// output stays clean unless --verbose style flags raise it.
///
/// The threshold is a relaxed atomic, read twice per message (once in the
/// TSCHED_LOG macro to skip formatting, once in log_message before the
/// write).  A concurrent set_log_level between the two reads can drop or
/// emit one borderline message — that race is benign and accepted; there is
/// no torn read.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one line at `level` (thread-safe; a single write per call).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
public:
    explicit LogLine(LogLevel level) : level_(level) {}
    ~LogLine() { log_message(level_, os_.str()); }
    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;

    template <typename T>
    LogLine& operator<<(const T& value) {
        os_ << value;
        return *this;
    }

private:
    LogLevel level_;
    std::ostringstream os_;
};
}  // namespace detail

#define TSCHED_LOG(level) \
    if (static_cast<int>(level) < static_cast<int>(::tsched::log_level())) {} \
    else ::tsched::detail::LogLine(level)

#define TSCHED_DEBUG TSCHED_LOG(::tsched::LogLevel::kDebug)
#define TSCHED_INFO TSCHED_LOG(::tsched::LogLevel::kInfo)
#define TSCHED_WARN TSCHED_LOG(::tsched::LogLevel::kWarn)
#define TSCHED_ERROR TSCHED_LOG(::tsched::LogLevel::kError)

}  // namespace tsched
