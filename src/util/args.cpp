#include "util/args.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace tsched {

Args::Args(int argc, const char* const* argv) {
    if (argc > 0) program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string tok = argv[i];
        if (tok.rfind("--", 0) != 0) {
            positional_.push_back(std::move(tok));
            continue;
        }
        tok.erase(0, 2);
        const auto eq = tok.find('=');
        if (eq != std::string::npos) {
            kv_[tok.substr(0, eq)] = tok.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            kv_[tok] = argv[++i];
        } else {
            kv_[tok] = "true";  // bare flag
        }
    }
}

std::optional<std::string> Args::find(const std::string& key) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return std::nullopt;
    return it->second;
}

bool Args::has(const std::string& key) const { return kv_.count(key) > 0; }

void Args::check_known(std::span<const std::string_view> known) const {
    for (const auto& [key, value] : kv_) {
        bool ok = false;
        for (const std::string_view k : known) {
            if (key == k) {
                ok = true;
                break;
            }
        }
        if (!ok) throw std::invalid_argument("unknown flag '--" + key + "'");
    }
}

void Args::check_known(std::initializer_list<std::string_view> known) const {
    check_known(std::span<const std::string_view>(known.begin(), known.size()));
}

std::string Args::get_string(const std::string& key, std::string def) const {
    const auto v = find(key);
    return v ? *v : std::move(def);
}

std::int64_t Args::get_int(const std::string& key, std::int64_t def) const {
    const auto v = find(key);
    if (!v) return def;
    try {
        return std::stoll(*v);
    } catch (const std::exception&) {
        throw std::invalid_argument("--" + key + " expects an integer, got '" + *v + "'");
    }
}

double Args::get_double(const std::string& key, double def) const {
    const auto v = find(key);
    if (!v) return def;
    try {
        return std::stod(*v);
    } catch (const std::exception&) {
        throw std::invalid_argument("--" + key + " expects a number, got '" + *v + "'");
    }
}

bool Args::get_bool(const std::string& key, bool def) const {
    const auto v = find(key);
    if (!v) return def;
    if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
    if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
    throw std::invalid_argument("--" + key + " expects a boolean, got '" + *v + "'");
}

namespace {
std::vector<std::string> split_commas(const std::string& s) {
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty()) out.push_back(item);
    }
    return out;
}
}  // namespace

std::vector<std::int64_t> Args::get_int_list(const std::string& key,
                                             std::vector<std::int64_t> def) const {
    const auto v = find(key);
    if (!v) return def;
    std::vector<std::int64_t> out;
    for (const auto& item : split_commas(*v)) out.push_back(std::stoll(item));
    return out;
}

std::vector<double> Args::get_double_list(const std::string& key, std::vector<double> def) const {
    const auto v = find(key);
    if (!v) return def;
    std::vector<double> out;
    for (const auto& item : split_commas(*v)) out.push_back(std::stod(item));
    return out;
}

std::vector<std::string> Args::get_string_list(const std::string& key,
                                               std::vector<std::string> def) const {
    const auto v = find(key);
    if (!v) return def;
    return split_commas(*v);
}

}  // namespace tsched
