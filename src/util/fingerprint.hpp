// 64-bit FNV-1a content fingerprinting.
//
// The serving layer (serve/) content-addresses schedule-cache entries by a
// fingerprint over the canonicalized request (graph + platform + algorithm);
// this header provides the byte-level hasher those canonicalization rules
// are written against.
//
// Canonical encodings (the fingerprint contract — changing any of these
// changes every fingerprint, so they are append-only like TS codes):
//   * integers    — 8 bytes, little-endian, after widening to uint64;
//   * doubles     — IEEE-754 bit pattern, little-endian, with -0.0
//                   normalized to +0.0 and every NaN to one canonical quiet
//                   NaN so semantically equal costs hash equal;
//   * strings     — u64 length prefix followed by the raw bytes, so
//                   ("ab","c") and ("a","bc") cannot collide.
//
// FNV-1a is not cryptographic: collisions are possible in principle
// (2^-64 per pair) and the serving cache documents that it trusts the
// fingerprint.  TSCHED_DEBUG_CHECKS builds re-validate cache hits against
// the request to make the trust auditable (see serve/serve_engine.hpp).
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace tsched {

class Fnv1a {
public:
    static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ULL;
    static constexpr std::uint64_t kPrime = 1099511628211ULL;

    /// Absorb raw bytes.
    void bytes(const void* data, std::size_t n) noexcept {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= kPrime;
        }
    }

    /// Absorb one unsigned 64-bit value (canonical little-endian encoding).
    void u64(std::uint64_t v) noexcept {
        unsigned char buf[8];
        for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
        bytes(buf, 8);
    }

    /// Absorb a signed integer (two's-complement widened to 64 bits).
    void i64(std::int64_t v) noexcept { u64(static_cast<std::uint64_t>(v)); }

    /// Absorb a double via its canonicalized IEEE-754 bit pattern.
    void f64(double v) noexcept { u64(canonical_bits(v)); }

    /// Absorb a string with a length prefix.
    void str(std::string_view s) noexcept {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

    /// Canonical bit pattern of a double: -0.0 maps to +0.0, every NaN to
    /// the canonical quiet NaN, so semantically equal values hash equal.
    [[nodiscard]] static std::uint64_t canonical_bits(double v) noexcept {
        if (v == 0.0) return 0;  // +0.0 and -0.0 compare equal
        if (v != v) return 0x7ff8000000000000ULL;
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        return bits;
    }

private:
    std::uint64_t hash_ = kOffsetBasis;
};

/// One-shot convenience: FNV-1a of a byte string.
[[nodiscard]] std::uint64_t fnv1a(std::string_view s) noexcept;

}  // namespace tsched
