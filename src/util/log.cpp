#include "util/log.hpp"

#include <atomic>
#include <iostream>

#include "util/thread_annotations.hpp"

namespace tsched {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
/// Serializes whole-line writes to stderr.  There is no guarded data member
/// — the capability protects the stream interleaving contract (one line per
/// lock hold), which the analysis cannot express beyond the EXCLUDES on
/// log_message below.
Mutex g_log_mutex;

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO ";
        case LogLevel::kWarn: return "WARN ";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF  ";
    }
    return "?";
}

void write_line(LogLevel level, const std::string& message) TSCHED_REQUIRES(g_log_mutex) {
    std::cerr << "[tsched " << level_name(level) << "] " << message << '\n';
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
    if (static_cast<int>(level) < static_cast<int>(log_level())) return;
    LockGuard lock(g_log_mutex);
    write_line(level, message);
}

}  // namespace tsched
