// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component of the library (workload generators, noise
// injection, randomized baselines) draws from an explicitly-seeded Rng so a
// given (seed, parameter) pair always regenerates the identical experiment.
// The generator is xoshiro256** seeded via SplitMix64, which is fast,
// high-quality, and has a tiny state that is cheap to fork per-trial.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace tsched {

/// SplitMix64: used to expand a 64-bit seed into generator state and as a
/// cheap standalone mixer for hashing trial indices into seeds.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// Mix two 64-bit values into one; used to derive independent per-trial seeds
/// from (base_seed, trial_index) without correlation between streams.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) noexcept {
    SplitMix64 sm(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2)));
    sm.next();
    return sm.next();
}

/// xoshiro256** 1.0 — the library-wide PRNG.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can also be fed
/// to <random> distributions, though the built-in helpers below are preferred
/// because their output is bit-reproducible across standard library
/// implementations.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x2545F4914F6CDD1DULL) noexcept { reseed(seed); }

    void reseed(std::uint64_t seed) noexcept {
        SplitMix64 sm(seed);
        for (auto& s : state_) s = sm.next();
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return std::numeric_limits<result_type>::max(); }

    result_type operator()() noexcept { return next(); }

    std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Uniform double in [lo, hi).  Requires lo <= hi.
    double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

    /// Standard normal via Box–Muller (deterministic, cache of the spare).
    double normal() noexcept;

    /// Normal with the given mean / standard deviation.
    double normal(double mean, double stddev) noexcept;

    /// Exponential with the given rate lambda (> 0).
    double exponential(double lambda) noexcept;

    /// Bernoulli trial with probability p of returning true.
    bool bernoulli(double p) noexcept;

    /// Fork an independent stream (used to hand sub-generators to parallel
    /// trial workers without sharing mutable state).
    [[nodiscard]] Rng fork() noexcept { return Rng(next()); }

    /// Fisher–Yates shuffle of a random-access container.
    template <typename Container>
    void shuffle(Container& c) noexcept {
        if (c.size() < 2) return;
        for (std::size_t i = c.size() - 1; i > 0; --i) {
            const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i)));
            using std::swap;
            swap(c[i], c[j]);
        }
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
    double spare_normal_ = 0.0;
    bool has_spare_ = false;
};

}  // namespace tsched
