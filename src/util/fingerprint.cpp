#include "util/fingerprint.hpp"

namespace tsched {

std::uint64_t fnv1a(std::string_view s) noexcept {
    Fnv1a h;
    h.bytes(s.data(), s.size());
    return h.value();
}

}  // namespace tsched
