// Result-table rendering for the benchmark harness.
//
// Every experiment prints its figure/table as (a) an aligned Markdown table
// for the console and (b) optionally a CSV file, so plots can be regenerated
// downstream.  Cells are stored as strings; typed add helpers format numbers
// consistently.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tsched {

class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Start a new row; subsequent add() calls fill it left to right.
    Table& new_row();

    Table& add(std::string cell);
    Table& add(const char* cell);
    Table& add(double value, int precision = 3);
    Table& add(std::int64_t value);
    Table& add(std::size_t value);
    Table& add(int value);

    [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }
    [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }
    [[nodiscard]] const std::string& at(std::size_t row, std::size_t col) const;

    /// Render as an aligned Markdown table.
    [[nodiscard]] std::string to_markdown() const;
    /// Render as RFC-4180-ish CSV (quotes cells containing separators).
    [[nodiscard]] std::string to_csv() const;

    void print(std::ostream& os) const;
    /// Write CSV to `path`; returns false (and leaves no partial file
    /// guarantee) if the file cannot be opened.
    bool write_csv(const std::string& path) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> cells_;
};

}  // namespace tsched
