// Minimal command-line argument parser for the bench/example executables.
//
// Accepted syntax:  --key=value  |  --key value  |  --flag
// Unknown keys are rejected only when the caller asks (strict mode), so every
// bench binary can run with zero arguments under the repo-wide
// `for b in build/bench/*; do $b; done` driver.
#pragma once

#include <initializer_list>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tsched {

class Args {
public:
    Args(int argc, const char* const* argv);

    [[nodiscard]] bool has(const std::string& key) const;

    [[nodiscard]] std::string get_string(const std::string& key, std::string def) const;
    [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t def) const;
    [[nodiscard]] double get_double(const std::string& key, double def) const;
    [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

    /// Comma-separated list of integers, e.g. --sizes=20,40,60.
    [[nodiscard]] std::vector<std::int64_t> get_int_list(const std::string& key,
                                                         std::vector<std::int64_t> def) const;
    /// Comma-separated list of doubles, e.g. --ccr=0.1,0.5,1,5.
    [[nodiscard]] std::vector<double> get_double_list(const std::string& key,
                                                      std::vector<double> def) const;
    /// Comma-separated list of strings, e.g. --algos=heft,ils.
    [[nodiscard]] std::vector<std::string> get_string_list(const std::string& key,
                                                           std::vector<std::string> def) const;

    /// Strict mode: throws std::invalid_argument naming the first flag that
    /// is not in `known` ("unknown flag '--foo'"), so a typo like
    /// --trails=50 fails loudly instead of silently running with defaults.
    void check_known(std::span<const std::string_view> known) const;
    void check_known(std::initializer_list<std::string_view> known) const;

    /// Positional (non --key) arguments, in order.
    [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }

    /// Program name (argv[0]).
    [[nodiscard]] const std::string& program() const noexcept { return program_; }

private:
    [[nodiscard]] std::optional<std::string> find(const std::string& key) const;

    std::string program_;
    std::map<std::string, std::string> kv_;
    std::vector<std::string> positional_;
};

}  // namespace tsched
