#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tsched {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    if (headers_.empty()) throw std::invalid_argument("Table: headers must be non-empty");
}

Table& Table::new_row() {
    cells_.emplace_back();
    cells_.back().reserve(headers_.size());
    return *this;
}

Table& Table::add(std::string cell) {
    if (cells_.empty()) new_row();
    if (cells_.back().size() >= headers_.size()) {
        throw std::logic_error("Table: row has more cells than headers");
    }
    cells_.back().push_back(std::move(cell));
    return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return add(os.str());
}

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }
Table& Table::add(std::size_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

const std::string& Table::at(std::size_t row, std::size_t col) const {
    return cells_.at(row).at(col);
}

std::string Table::to_markdown() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : cells_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        os << '|';
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string& cell = c < row.size() ? row[c] : std::string{};
            os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
        }
        os << '\n';
    };
    emit_row(headers_);
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(widths[c] + 2, '-') << '|';
    }
    os << '\n';
    for (const auto& row : cells_) emit_row(row);
    return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"') out += '"';
        out += ch;
    }
    out += '"';
    return out;
}
}  // namespace

std::string Table::to_csv() const {
    std::ostringstream os;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        if (c) os << ',';
        os << csv_escape(headers_[c]);
    }
    os << '\n';
    for (const auto& row : cells_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) os << ',';
            os << csv_escape(row[c]);
        }
        os << '\n';
    }
    return os.str();
}

void Table::print(std::ostream& os) const { os << to_markdown(); }

bool Table::write_csv(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << to_csv();
    return static_cast<bool>(out);
}

}  // namespace tsched
