// ServeEngine: the batched scheduling service core.
//
// Turns the one-shot library ("call make_scheduler, call schedule()") into a
// request-serving layer: ScheduleRequest streams are fanned out onto a
// ThreadPool, and every scheduler is front-ended by the content-addressed
// ScheduleCache so fingerprint-identical requests share one computation.
//
// Request lifecycle (submit):
//   1. fingerprint the request (serve/request.hpp canonicalization);
//   2. cache lookup — a hit resolves the future immediately with the cached
//      immutable Schedule (bit-identical to the cold result: it *is* the
//      cold result);
//   3. miss — the AdmissionController (serve/admission.hpp) decides: run
//      now (a ticket-keyed in-flight entry is created and the computation
//      enqueued on the pool), coalesce onto an identical in-flight entry,
//      park in the bounded pending queue, or shed per the configured
//      ShedPolicy; every answer carries a typed ServeOutcome;
//   4. completion retires the ticket, publishes to the cache, resolves
//      every waiter parked on the entry (owner included — waiters[0] *is*
//      the owner), and promotes the next viable pending request.
//
// Overload discipline (DESIGN §16): max_inflight bounds concurrent
// computations, max_pending bounds the backlog, and the shed policy picks
// who pays when both are full.  deadline_ms is enforced at dequeue (expired
// work is never started) and at completion (late results resolve as
// kTimedOut, still carrying the schedule).  With the default config
// (max_inflight == 0) none of this machinery engages and serving semantics
// are byte-for-byte the pre-overload engine's.
//
// Lifecycle: drain() stops admission, flushes the pending queue as
// kDraining, waits (bounded by drain_timeout_ms; <= 0 waits forever) for
// in-flight computations, and on timeout forcibly resolves every remaining
// waiter as kDraining.  The destructor drains with the configured timeout
// and then waits for *this engine's own* pool closures only — never the
// borrowed pool's global idle, so two engines sharing a pool tear down
// independently.
//
// Concurrency notes (clang thread-safety checked, DESIGN §13): all waiter /
// pending / inflight bookkeeping lives behind the AdmissionController's
// single inflight_mutex_; promises are always resolved *outside* that lock.
// Lock order is inflight -> cache shard, never the reverse.  Scheduler
// instances are resolved through core/registry once per algorithm and
// shared; Scheduler::schedule() is const and safe to run concurrently.  If
// handing a computation to the pool fails (pool already shut down), the
// ticket is retired and every parked waiter fails with the pool's error
// before it propagates, so later identical requests cannot coalesce onto an
// entry nobody will ever resolve.
//
// Determinism: schedulers are pure functions of the Problem, so cache-off
// and cache-on serving return identical schedules; with TSCHED_DEBUG_CHECKS
// every cache hit is re-validated against the incoming request's problem.
// Under a chaos gate (serve/chaos.hpp) admission decisions during a burst
// are a pure function of submission order, which is what makes the overload
// batteries bit-identical across pool widths.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "sched/scheduler.hpp"
#include "serve/admission.hpp"
#include "serve/chaos.hpp"
#include "serve/request.hpp"
#include "serve/schedule_cache.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace tsched::serve {

struct ServeConfig {
    bool enable_cache = true;  ///< content-addressed result cache
    bool enable_dedup = true;  ///< coalesce concurrent identical requests
    std::size_t cache_capacity = 1024;
    std::size_t cache_shards = 8;

    // --- overload protection (all off by default = legacy semantics) ---
    std::size_t max_inflight = 0;  ///< concurrent computations; 0 = unbounded
    std::size_t max_pending = 0;   ///< pending-queue capacity when saturated
    ShedPolicy shed_policy = ShedPolicy::kRejectNew;
    std::string degrade_algo = "heft";  ///< substitute under ShedPolicy::kDegrade
    double drain_timeout_ms = 0.0;      ///< drain()/dtor bound; <= 0 waits forever
    /// Deterministic fault injection (tests and the chaos battery only).
    std::shared_ptr<ChaosHook> chaos;
};

struct EngineStats {
    std::uint64_t requests = 0;    ///< total submitted
    std::uint64_t computed = 0;    ///< cold scheduler runs actually executed
    std::uint64_t coalesced = 0;   ///< requests resolved by an in-flight twin
    std::uint64_t cache_hits = 0;  ///< requests answered from the completed cache

    // Outcome accounting: every promise resolves with exactly one of these
    // (ok / shed / degraded / timed_out / draining) or fails (failed), so
    // once all futures are resolved the six sum to `requests`.  The
    // bench_serve --check accounting gate asserts exactly that.
    std::uint64_t ok = 0;
    std::uint64_t shed = 0;
    std::uint64_t degraded = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t draining = 0;
    std::uint64_t failed = 0;  ///< resolved with an exception

    AdmissionStats admission;  ///< queue/promotion counters, peaks
    CacheStats cache;          ///< raw cache-operation counters

    /// Request-level hit rate (cache_hits / requests).
    [[nodiscard]] double hit_rate() const noexcept {
        return requests > 0 ? static_cast<double>(cache_hits) / static_cast<double>(requests)
                            : 0.0;
    }
    /// Fraction of requests refused by the admission controller.
    [[nodiscard]] double shed_rate() const noexcept {
        return requests > 0 ? static_cast<double>(shed) / static_cast<double>(requests) : 0.0;
    }
    /// Fraction of requests whose deadline expired (at dequeue or late).
    [[nodiscard]] double deadline_hit_rate() const noexcept {
        return requests > 0 ? static_cast<double>(timed_out) / static_cast<double>(requests)
                            : 0.0;
    }
};

/// What drain() did (serving telemetry + teardown assertions).
struct DrainReport {
    bool clean = true;                ///< all in-flight work retired within the timeout
    std::size_t flushed_pending = 0;  ///< pending requests resolved kDraining
    std::size_t forced_waiters = 0;   ///< waiters forcibly resolved on timeout
};

class ServeEngine {
public:
    /// The pool is borrowed and must outlive the engine.
    ServeEngine(ServeConfig config, ThreadPool& pool);

    /// Drains with the configured drain_timeout_ms, then waits for this
    /// engine's *own* outstanding pool closures (never the borrowed pool's
    /// global idle).  Every future this engine handed out is resolved by
    /// the time the destructor returns.
    ~ServeEngine();

    ServeEngine(const ServeEngine&) = delete;
    ServeEngine& operator=(const ServeEngine&) = delete;

    /// Asynchronous entry point; the future reports the result (whose
    /// ServeOutcome says how it was answered) or rethrows the scheduler's
    /// exception.  Throws std::invalid_argument up front for a null problem
    /// (unknown algorithm names surface through the future); rethrows the
    /// pool's error if the pool was already shut down, after resolving every
    /// parked waiter with that error.
    [[nodiscard]] std::future<ServeResult> submit(ScheduleRequest request);

    /// Submit a whole batch, then block for all of it; results come back in
    /// request order.  `wait_budget_ms > 0` bounds the *total* wait: futures
    /// not ready when the budget runs out yield synthetic kTimedOut results
    /// (no schedule, fingerprint 0) instead of hanging the caller; their
    /// computations still retire normally in the background.
    [[nodiscard]] std::vector<ServeResult> run_batch(std::vector<ScheduleRequest> batch,
                                                     double wait_budget_ms = 0.0);

    /// Synchronous convenience: submit + get, with the same optional wait
    /// budget as run_batch.
    [[nodiscard]] ServeResult serve(ScheduleRequest request, double wait_budget_ms = 0.0);

    /// Stop admission (new submits resolve kDraining), flush the pending
    /// queue, and wait up to timeout_ms (<= 0 = forever) for in-flight
    /// computations; on timeout every still-parked waiter is resolved
    /// kDraining so no future is ever leaked.  Idempotent.
    DrainReport drain(double timeout_ms);
    DrainReport drain() { return drain(config_.drain_timeout_ms); }

    [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }
    [[nodiscard]] EngineStats stats() const;

    /// Full obs document for this engine (DESIGN §14): the per-request
    /// latency histograms (serve/latency/{total,queue_wait,cache_lookup,
    /// compute,deadline_slack}_ms and serve/queue_depth — recorded only in
    /// TSCHED_OBS builds), the engine's request and outcome counters, the
    /// admission gauges (inflight, pending depth), the cache fragment and
    /// the borrowed pool's fragment, merged and sorted.  Each engine owns
    /// its own MetricsRegistry, so two engines in one process never mix
    /// streams and teardown cannot leave dangling instrument references.
    [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

private:
    /// Resolve (and memoize) a scheduler instance by registry name.
    [[nodiscard]] const Scheduler& scheduler_for(const std::string& algo)
        TSCHED_EXCLUDES(schedulers_mutex_);

    /// Hand a ticket's computation to the pool; on submit failure retires
    /// the ticket (waiters fail with the error) and keeps promoting pending
    /// successors until one launches or the queue is empty.  Rethrows the
    /// first error only when `rethrow` (direct submit() path).
    void launch_chain(Ticket ticket, ScheduleRequest request, std::uint64_t fp,
                      Stopwatch submitted, bool rethrow);

    /// Pool-side body: dequeue deadline check, bounded-mode cache re-peek,
    /// chaos hooks, scheduler run, publish, retire, promote.
    void run_computation(Ticket ticket, ScheduleRequest request, std::uint64_t fp,
                         Stopwatch submitted) TSCHED_EXCLUDES(schedulers_mutex_);

    /// Answer an over-budget request inline on the caller's thread: stale-ok
    /// cache peek of the original fingerprint, then the degrade algorithm
    /// (cached under the *degraded* request's fingerprint).  Never consumes
    /// pool budget.
    void degrade_inline(ScheduleRequest request, std::uint64_t fp, Waiter owner)
        TSCHED_EXCLUDES(schedulers_mutex_);

    // Promise-resolution helpers; each resolves exactly one waiter, outside
    // every lock, and does the outcome accounting.
    void resolve_ready(Waiter& waiter, const std::shared_ptr<const Schedule>& schedule,
                       bool cache_hit);
    void resolve_outcome(Waiter& waiter, ServeOutcome outcome);
    void resolve_error(Waiter& waiter, const std::exception_ptr& error);
    void resolve_shed_list(std::vector<ShedWaiter>& list);

    /// Resolve a CompleteResult's tail: dequeue-expired pendings, then
    /// launch the promoted successor (if any).
    void finish_tail(CompleteResult& result);

    // Own-task accounting: the destructor joins exactly the closures this
    // engine put on the borrowed pool, nothing else.
    void own_task_begin() TSCHED_EXCLUDES(own_mutex_);
    void own_task_end() TSCHED_EXCLUDES(own_mutex_);
    void wait_own_tasks() TSCHED_EXCLUDES(own_mutex_);

    ServeConfig config_;
    ThreadPool& pool_;
    std::unique_ptr<ScheduleCache> cache_;
    AdmissionController admission_;
    std::shared_ptr<ChaosHook> chaos_;  ///< copy of config_.chaos (hot-path load)

    // Engine-local instrument registry plus cached references into it (the
    // references stay valid for the registry's lifetime, metrics.hpp), so
    // recording on the hot path is a lock-free histogram hit, not a lookup.
    // Members exist in every build (ODR safety); recording sites are gated.
    obs::MetricsRegistry metrics_;
    obs::LatencyHistogram& lat_total_ms_;
    obs::LatencyHistogram& lat_queue_wait_ms_;
    obs::LatencyHistogram& lat_cache_lookup_ms_;
    obs::LatencyHistogram& lat_compute_ms_;
    obs::LatencyHistogram& lat_deadline_slack_ms_;
    obs::LatencyHistogram& queue_depth_;

    Mutex schedulers_mutex_;
    std::unordered_map<std::string, SchedulerPtr> schedulers_
        TSCHED_GUARDED_BY(schedulers_mutex_);

    Mutex own_mutex_;
    CondVar own_cv_;
    std::size_t own_tasks_ TSCHED_GUARDED_BY(own_mutex_) = 0;

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> computed_{0};
    std::atomic<std::uint64_t> coalesced_{0};
    std::atomic<std::uint64_t> cache_hits_{0};
    std::atomic<std::uint64_t> ok_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> degraded_{0};
    std::atomic<std::uint64_t> timed_out_{0};
    std::atomic<std::uint64_t> draining_{0};
    std::atomic<std::uint64_t> failed_{0};
};

}  // namespace tsched::serve
