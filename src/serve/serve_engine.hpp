// ServeEngine: the batched scheduling service core.
//
// Turns the one-shot library ("call make_scheduler, call schedule()") into a
// request-serving layer: ScheduleRequest streams are fanned out onto a
// ThreadPool, and every scheduler is front-ended by the content-addressed
// ScheduleCache so fingerprint-identical requests share one computation.
//
// Request lifecycle (submit):
//   1. fingerprint the request (serve/request.hpp canonicalization);
//   2. cache lookup — a hit resolves the future immediately with the cached
//      immutable Schedule (bit-identical to the cold result: it *is* the
//      cold result);
//   3. miss — if an identical request is already being computed, the new
//      request *coalesces*: it parks a promise on the in-flight entry and
//      is resolved by the computing task ("serve/inflight_coalesced");
//   4. otherwise the request registers itself in-flight and enqueues the
//      computation on the pool; on completion it populates the cache and
//      resolves every coalesced waiter.
//
// Concurrency notes (clang thread-safety checked, DESIGN §13): the in-flight
// table has one engine-level mutex (held only for map operations, never
// during scheduling); the cache has its own sharded locks.  Lock order is
// inflight -> cache shard, never the reverse.  Scheduler instances are
// resolved through core/registry once per algorithm and shared;
// Scheduler::schedule() is const and safe to run concurrently (the metrics
// runner already relies on this).  If handing a computation to the pool
// fails (pool already shut down), the request's in-flight registration is
// rolled back before the error propagates, so later identical requests
// cannot coalesce onto an entry nobody will ever resolve.
//
// Determinism: schedulers are pure functions of the Problem, so cache-off
// and cache-on serving return identical schedules; with TSCHED_DEBUG_CHECKS
// every cache hit is re-validated against the incoming request's problem,
// making the fingerprint trust auditable (a collision would surface as a
// validation failure).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "sched/scheduler.hpp"
#include "serve/request.hpp"
#include "serve/schedule_cache.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace tsched::serve {

struct ServeConfig {
    bool enable_cache = true;   ///< content-addressed result cache
    bool enable_dedup = true;   ///< coalesce concurrent identical requests
    std::size_t cache_capacity = 1024;
    std::size_t cache_shards = 8;
};

struct EngineStats {
    std::uint64_t requests = 0;    ///< total submitted
    std::uint64_t computed = 0;    ///< cold scheduler runs actually executed
    std::uint64_t coalesced = 0;   ///< requests resolved by an in-flight twin
    std::uint64_t cache_hits = 0;  ///< requests answered from the completed cache
    CacheStats cache;              ///< raw cache-operation counters

    /// Request-level hit rate (cache_hits / requests).
    [[nodiscard]] double hit_rate() const noexcept {
        return requests > 0 ? static_cast<double>(cache_hits) / static_cast<double>(requests)
                            : 0.0;
    }
};

class ServeEngine {
public:
    /// The pool is borrowed and must outlive the engine.
    ServeEngine(ServeConfig config, ThreadPool& pool);

    /// Destructor waits for in-flight computations (pool.wait_idle()).
    ~ServeEngine();

    ServeEngine(const ServeEngine&) = delete;
    ServeEngine& operator=(const ServeEngine&) = delete;

    /// Asynchronous entry point; the future reports the result or rethrows
    /// the scheduler's exception.  Throws std::invalid_argument up front for
    /// a null problem (unknown algorithm names surface through the future);
    /// rethrows the pool's error if the pool was already shut down, after
    /// rolling back this request's in-flight registration.
    [[nodiscard]] std::future<ServeResult> submit(ScheduleRequest request)
        TSCHED_EXCLUDES(inflight_mutex_);

    /// Submit a whole batch, then block for all of it; results come back in
    /// request order.
    [[nodiscard]] std::vector<ServeResult> run_batch(std::vector<ScheduleRequest> batch);

    /// Synchronous convenience: submit + get.
    [[nodiscard]] ServeResult serve(ScheduleRequest request);

    [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }
    [[nodiscard]] EngineStats stats() const;

    /// Full obs document for this engine (DESIGN §14): the per-request
    /// latency histograms (serve/latency/{total,queue_wait,cache_lookup,
    /// compute}_ms — recorded only in TSCHED_OBS builds), the engine's
    /// request counters, the cache fragment (hit rate + per-shard occupancy)
    /// and the borrowed pool's fragment (queue depth, active workers,
    /// task-run histogram), merged and sorted.  Each engine owns its own
    /// MetricsRegistry, so two engines in one process never mix streams and
    /// teardown cannot leave dangling instrument references.
    [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

private:
    struct Waiter {
        std::promise<ServeResult> promise;
        Stopwatch submitted;  ///< per-request latency clock
    };
    struct InFlight {
        /// Coalesced requests (not the owner).  Touched only under the
        /// engine's inflight_mutex_ (a nested struct cannot name the outer
        /// class's capability, so this contract is enforced at the three
        /// access sites rather than by annotation).
        std::vector<Waiter> waiters;
    };

    /// Resolve (and memoize) a scheduler instance by registry name.
    [[nodiscard]] const Scheduler& scheduler_for(const std::string& algo)
        TSCHED_EXCLUDES(schedulers_mutex_);

    void compute_and_publish(ScheduleRequest request, std::uint64_t fp,
                             std::promise<ServeResult> owner, Stopwatch submitted)
        TSCHED_EXCLUDES(inflight_mutex_, schedulers_mutex_);

    /// Detach and return fp's in-flight entry's waiters (empty when the
    /// entry is absent, e.g. dedup disabled).
    [[nodiscard]] std::vector<Waiter> claim_waiters(std::uint64_t fp)
        TSCHED_EXCLUDES(inflight_mutex_);

    ServeConfig config_;
    ThreadPool& pool_;
    std::unique_ptr<ScheduleCache> cache_;

    // Engine-local instrument registry plus cached references into it (the
    // references stay valid for the registry's lifetime, metrics.hpp), so
    // recording on the hot path is a lock-free histogram hit, not a lookup.
    // Members exist in every build (ODR safety); recording sites are gated.
    obs::MetricsRegistry metrics_;
    obs::LatencyHistogram& lat_total_ms_;
    obs::LatencyHistogram& lat_queue_wait_ms_;
    obs::LatencyHistogram& lat_cache_lookup_ms_;
    obs::LatencyHistogram& lat_compute_ms_;

    Mutex inflight_mutex_;
    std::unordered_map<std::uint64_t, std::shared_ptr<InFlight>> inflight_
        TSCHED_GUARDED_BY(inflight_mutex_);

    Mutex schedulers_mutex_;
    std::unordered_map<std::string, SchedulerPtr> schedulers_
        TSCHED_GUARDED_BY(schedulers_mutex_);

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> computed_{0};
    std::atomic<std::uint64_t> coalesced_{0};
    std::atomic<std::uint64_t> cache_hits_{0};
};

}  // namespace tsched::serve
