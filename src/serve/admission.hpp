// AdmissionController: bounded-inflight bookkeeping for the ServeEngine.
//
// The controller is the serving plane's single source of truth for "who is
// waiting on what": every admitted computation is a *ticket-keyed entry*
// whose waiter list holds the owning request's promise at index 0 plus any
// coalesced twins, and every over-budget request either parks in a bounded
// pending queue or is handed back to the engine tagged with the shed
// decision.  Keying entries by ticket (not fingerprint) is what makes
// drain() able to resolve *owner* promises too — whoever erases an entry
// takes its whole waiter list and owns resolving each promise exactly once.
//
// Division of labor (DESIGN §16): the controller is a pure state machine —
// it moves waiters between maps under one mutex and returns them to the
// caller; it never resolves a promise, runs a scheduler, or touches the
// pool.  The ServeEngine resolves every promise *outside* the lock, so a
// waiter's continuation can re-enter submit() without deadlocking.  Lock
// order is inflight_mutex_ -> cache shard (admit() may peek the result
// cache under its lock to close the publish/coalesce race); the reverse
// order never occurs.
//
// Shed policies when the inflight budget and pending queue are both full:
//   reject-new  — the incoming request is shed (kShed);
//   drop-oldest — the oldest *pending* request is shed to make room; with
//                 no queue configured this degenerates to reject-new;
//   degrade     — the incoming request is handed back for an inline cheap
//                 answer (stale cache peek or substitute algorithm).
//
// max_inflight == 0 disables admission control entirely: every request is
// admitted immediately and the pending queue is never used — byte-for-byte
// the pre-overload engine semantics.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "serve/request.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_annotations.hpp"

namespace tsched::serve {

/// What to do with a request that arrives while the inflight budget and the
/// pending queue are both exhausted.
enum class ShedPolicy : std::uint8_t {
    kRejectNew = 0,
    kDropOldest = 1,
    kDegrade = 2,
};

/// Stable lower-case policy names for config surfaces and reports.
[[nodiscard]] inline const char* shed_policy_name(ShedPolicy policy) noexcept {
    switch (policy) {
        case ShedPolicy::kRejectNew: return "reject-new";
        case ShedPolicy::kDropOldest: return "drop-oldest";
        case ShedPolicy::kDegrade: return "degrade";
    }
    return "unknown";
}

[[nodiscard]] inline std::optional<ShedPolicy> shed_policy_from_name(std::string_view name) noexcept {
    if (name == "reject-new") return ShedPolicy::kRejectNew;
    if (name == "drop-oldest") return ShedPolicy::kDropOldest;
    if (name == "degrade") return ShedPolicy::kDegrade;
    return std::nullopt;
}

/// Identifies one admitted computation for its whole lifetime.  Never reused.
using Ticket = std::uint64_t;

/// One parked request-side promise.  The Stopwatch is the request's own
/// latency clock (started in submit()); the deadline is checked against it.
struct Waiter {
    std::promise<ServeResult> promise;
    Stopwatch submitted;
    std::uint64_t fp = 0;
    double deadline_ms = 0.0;  ///< <= 0 means no deadline
    bool coalesced = false;

    [[nodiscard]] bool expired() const noexcept {
        return deadline_ms > 0.0 && submitted.elapsed_ms() > deadline_ms;
    }
};

/// A waiter the controller decided must be answered *without* a schedule,
/// tagged with why (kShed, kDraining, or kTimedOut for dequeue expiry).
/// The engine resolves these outside the lock.
struct ShedWaiter {
    Waiter waiter;
    ServeOutcome outcome = ServeOutcome::kShed;
};

enum class AdmitAction : std::uint8_t {
    kRun,       ///< entry created; caller must launch the computation (ticket set)
    kCoalesced, ///< parked on an identical in-flight entry
    kQueued,    ///< parked in the pending queue (to_resolve may hold a drop-oldest victim)
    kCacheHit,  ///< the under-lock cache peek answered it (hit + owner returned)
    kDegrade,   ///< caller must answer inline via the degrade path (owner + request returned)
    kShed,      ///< refused; owner is in to_resolve tagged kShed
    kDraining,  ///< engine shutting down; owner is in to_resolve tagged kDraining
};

struct AdmitDecision {
    AdmitAction action = AdmitAction::kRun;
    Ticket ticket = 0;                       ///< valid for kRun
    std::shared_ptr<const Schedule> hit;     ///< valid for kCacheHit
    std::optional<Waiter> owner;             ///< returned for kCacheHit and kDegrade
    std::optional<ScheduleRequest> request;  ///< returned for kRun, kCacheHit, kDegrade
    std::vector<ShedWaiter> to_resolve;      ///< shed/draining owner, drop-oldest victims
    std::size_t pending_depth = 0;           ///< queue depth after this decision
};

/// A pending request promoted into a freed inflight slot; the caller must
/// launch it (its owner waiter already lives in the new entry).
struct Promoted {
    Ticket ticket = 0;
    std::uint64_t fp = 0;
    ScheduleRequest request;
    Stopwatch submitted;
};

struct CompleteResult {
    std::vector<Waiter> waiters;          ///< everyone parked on the completed entry
    std::vector<ShedWaiter> to_resolve;   ///< pending requests that expired at dequeue
    std::optional<Promoted> next;         ///< promoted successor, if any
};

struct AdmissionOptions {
    std::size_t max_inflight = 0;  ///< 0 = unbounded (admission control off)
    std::size_t max_pending = 0;   ///< pending-queue capacity (used only when bounded)
    ShedPolicy policy = ShedPolicy::kRejectNew;
    bool enable_dedup = true;      ///< coalesce identical in-flight requests
};

struct AdmissionStats {
    std::uint64_t queued = 0;          ///< requests that waited in the pending queue
    std::uint64_t promoted = 0;        ///< pending requests promoted into a freed slot
    std::size_t inflight_peak = 0;     ///< high-water inflight entry count
    std::size_t pending_peak = 0;      ///< high-water pending queue depth
};

class AdmissionController {
public:
    explicit AdmissionController(AdmissionOptions options) : options_(options) {}

    AdmissionController(const AdmissionController&) = delete;
    AdmissionController& operator=(const AdmissionController&) = delete;

    /// Decide one incoming request.  `peek_cache` (nullable) is called at
    /// most once, under the lock, to close the publish/coalesce race the
    /// same way the pre-overload engine did (lock order: inflight -> cache
    /// shard).  The caller resolves decision.to_resolve outside the lock.
    [[nodiscard]] AdmitDecision admit(
        std::uint64_t fp, ScheduleRequest request, Waiter owner,
        const std::function<std::shared_ptr<const Schedule>()>& peek_cache)
        TSCHED_EXCLUDES(inflight_mutex_);

    /// Retire a ticket: claims its waiter list (empty if drain already
    /// expropriated it) and, when a pending request can use the freed slot,
    /// promotes it — flushing any dequeue-expired predecessors into
    /// to_resolve as kTimedOut (expired work is never started).
    [[nodiscard]] CompleteResult complete(Ticket ticket) TSCHED_EXCLUDES(inflight_mutex_);

    /// Dequeue-time check for a computation about to start: true when there
    /// is nothing left to compute for — the entry is gone (drained) or every
    /// waiter's deadline has already expired.
    [[nodiscard]] bool skip_at_dequeue(Ticket ticket) const TSCHED_EXCLUDES(inflight_mutex_);

    /// Stop admission and flush the pending queue (returned tagged
    /// kDraining).  Idempotent.
    [[nodiscard]] std::vector<ShedWaiter> begin_drain() TSCHED_EXCLUDES(inflight_mutex_);

    /// Wait until every inflight entry retired.  timeout_ms <= 0 waits
    /// forever; returns false on timeout.
    [[nodiscard]] bool await_idle(double timeout_ms) TSCHED_EXCLUDES(inflight_mutex_);

    /// Forcibly claim every remaining entry's waiters (drain timeout path).
    /// Computations still running later find their ticket gone and resolve
    /// nothing — each promise is resolved exactly once, here.
    [[nodiscard]] std::vector<Waiter> expropriate() TSCHED_EXCLUDES(inflight_mutex_);

    [[nodiscard]] AdmissionStats stats() const TSCHED_EXCLUDES(inflight_mutex_);
    [[nodiscard]] std::size_t inflight() const TSCHED_EXCLUDES(inflight_mutex_);
    [[nodiscard]] std::size_t pending_depth() const TSCHED_EXCLUDES(inflight_mutex_);
    [[nodiscard]] bool draining() const TSCHED_EXCLUDES(inflight_mutex_);
    [[nodiscard]] const AdmissionOptions& options() const noexcept { return options_; }

private:
    struct Entry {
        std::uint64_t fp = 0;
        /// waiters[0] is the owning request.  Touched only under
        /// inflight_mutex_ (a nested struct cannot name the outer class's
        /// capability; the contract is enforced at the access sites).
        std::vector<Waiter> waiters;
    };
    struct PendingRequest {
        std::uint64_t fp = 0;
        ScheduleRequest request;
        Waiter owner;
    };

    [[nodiscard]] Ticket create_entry_locked(std::uint64_t fp, Waiter owner)
        TSCHED_REQUIRES(inflight_mutex_);

    AdmissionOptions options_;

    mutable Mutex inflight_mutex_;
    CondVar idle_cv_;
    std::unordered_map<Ticket, Entry> entries_ TSCHED_GUARDED_BY(inflight_mutex_);
    /// fp -> running ticket; maintained only when dedup is on.  First entry
    /// wins when two entries compute one fp (possible in bounded mode when a
    /// twin queues while no entry runs; see complete()).
    std::unordered_map<std::uint64_t, Ticket> coalesce_ TSCHED_GUARDED_BY(inflight_mutex_);
    std::deque<PendingRequest> pending_ TSCHED_GUARDED_BY(inflight_mutex_);
    Ticket next_ticket_ TSCHED_GUARDED_BY(inflight_mutex_) = 1;
    bool draining_ TSCHED_GUARDED_BY(inflight_mutex_) = false;
    AdmissionStats stats_ TSCHED_GUARDED_BY(inflight_mutex_);
};

}  // namespace tsched::serve
