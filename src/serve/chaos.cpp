#include "serve/chaos.hpp"

#include <chrono>

namespace tsched::serve {

namespace {

/// Injection sites get distinct salts so stall/throw/submit-fail decisions
/// for one fingerprint are independent coin flips.
enum class Site : std::uint64_t {
    kStall = 0x5354414c4cULL,        // "STALL"
    kThrow = 0x5448524f57ULL,        // "THROW"
    kSubmitFail = 0x5355424d4954ULL  // "SUBMIT"
};

/// splitmix64 finalizer over (seed, fp, site) mapped to [0, 1).  Pure and
/// stateless by construction — see the header's rule 1.
double keyed_uniform(std::uint64_t seed, std::uint64_t fp, Site site) noexcept {
    std::uint64_t x = seed;
    x ^= fp + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2);
    x ^= static_cast<std::uint64_t>(site) + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

DeterministicChaos::DeterministicChaos(ChaosOptions options) : options_(options) {}

bool DeterministicChaos::will_stall(std::uint64_t fp) const noexcept {
    if (options_.gate_all) return true;
    return options_.stall_prob > 0.0 &&
           keyed_uniform(options_.seed, fp, Site::kStall) < options_.stall_prob;
}

bool DeterministicChaos::will_throw(std::uint64_t fp) const noexcept {
    return options_.throw_prob > 0.0 &&
           keyed_uniform(options_.seed, fp, Site::kThrow) < options_.throw_prob;
}

bool DeterministicChaos::will_fail_submit(std::uint64_t fp) const noexcept {
    return options_.submit_fail_prob > 0.0 &&
           keyed_uniform(options_.seed, fp, Site::kSubmitFail) < options_.submit_fail_prob;
}

void DeterministicChaos::on_pool_submit(std::uint64_t fp) {
    if (!will_fail_submit(fp)) return;
    {
        LockGuard lock(mutex_);
        ++stats_.submit_failures;
    }
    throw ChaosError{};
}

void DeterministicChaos::on_compute(std::uint64_t fp) {
    if (will_stall(fp)) {
        UniqueLock lock(mutex_);
        ++stats_.stalls;
        if (options_.gate_stalls || options_.gate_all) {
            // Parked until the harness opens the gate; no timeout so a gate
            // the harness forgets to open shows up as a hang, not a silently
            // shorter stall.
            while (!released_) gate_cv_.wait(lock);
        } else {
            // Bounded slow-scheduler stall; release_stalls() can cut it
            // short, so drains do not pay the full stall budget.
            const auto deadline = std::chrono::steady_clock::now() +
                                  std::chrono::duration<double, std::milli>(options_.stall_ms);
            while (!released_ && std::chrono::steady_clock::now() < deadline) {
                gate_cv_.wait_for(lock, deadline - std::chrono::steady_clock::now());
            }
        }
    }
    if (will_throw(fp)) {
        {
            LockGuard lock(mutex_);
            ++stats_.throws;
        }
        throw ChaosError{};
    }
}

void DeterministicChaos::release_stalls() {
    {
        LockGuard lock(mutex_);
        released_ = true;
    }
    gate_cv_.notify_all();
}

void DeterministicChaos::rearm() {
    LockGuard lock(mutex_);
    released_ = false;
}

ChaosStats DeterministicChaos::stats() const {
    LockGuard lock(mutex_);
    return stats_;
}

}  // namespace tsched::serve
