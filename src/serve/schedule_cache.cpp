#include "serve/schedule_cache.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "trace/trace.hpp"

namespace tsched::serve {

namespace {

/// Largest power of two <= n (n >= 1).
std::size_t floor_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p * 2 <= n) p *= 2;
    return p;
}

/// Finalizing mix (SplitMix64's) so nearby fingerprints spread across
/// shards even though FNV-1a's low bits are weakly mixed.
std::uint64_t spread(std::uint64_t x) noexcept {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace

ScheduleCache::ScheduleCache(std::size_t capacity, std::size_t shards) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("ScheduleCache: capacity must be > 0");
    if (shards == 0) throw std::invalid_argument("ScheduleCache: shards must be > 0");
    std::size_t count = floor_pow2(shards);
    // Never allocate more shards than entries: each shard needs budget >= 1.
    while (count > 1 && count > capacity) count /= 2;
    shards_.reserve(count);
    for (std::size_t s = 0; s < count; ++s) {
        auto shard = std::make_unique<Shard>();
        // Split the budget evenly; earlier shards absorb the remainder.
        shard->capacity = capacity / count + (s < capacity % count ? 1 : 0);
        shards_.push_back(std::move(shard));
    }
}

ScheduleCache::Shard& ScheduleCache::shard_for(std::uint64_t key) noexcept {
    return *shards_[spread(key) & (shards_.size() - 1)];
}

std::shared_ptr<const Schedule> ScheduleCache::Shard::find_and_touch_locked(std::uint64_t key) {
    const auto it = index.find(key);
    if (it == index.end()) return nullptr;
    lru.splice(lru.begin(), lru, it->second);
    return it->second->second;
}

bool ScheduleCache::Shard::insert_locked(std::uint64_t key,
                                         std::shared_ptr<const Schedule> value) {
    if (const auto it = index.find(key); it != index.end()) {
        it->second->second = std::move(value);
        lru.splice(lru.begin(), lru, it->second);
        return false;
    }
    lru.emplace_front(key, std::move(value));
    index.emplace(key, lru.begin());
    if (lru.size() > capacity) {
        index.erase(lru.back().first);
        lru.pop_back();
        return true;
    }
    return false;
}

std::shared_ptr<const Schedule> ScheduleCache::get(std::uint64_t key) {
    Shard& shard = shard_for(key);
    LockGuard lock(shard.mutex);
    auto value = shard.find_and_touch_locked(key);
    if (!value) {
        ++shard.misses;
        TSCHED_COUNT("serve/cache_misses");
        return nullptr;
    }
    ++shard.hits;
    TSCHED_COUNT("serve/cache_hits");
    return value;
}

std::shared_ptr<const Schedule> ScheduleCache::peek(std::uint64_t key) {
    Shard& shard = shard_for(key);
    LockGuard lock(shard.mutex);
    return shard.find_and_touch_locked(key);
}

void ScheduleCache::put(std::uint64_t key, std::shared_ptr<const Schedule> value) {
    Shard& shard = shard_for(key);
    LockGuard lock(shard.mutex);
    if (shard.insert_locked(key, std::move(value))) {
        ++shard.evictions;
        TSCHED_COUNT("serve/cache_evictions");
    }
}

void ScheduleCache::metrics_into(obs::MetricsSnapshot& out) const {
    const CacheStats total = stats();
    out.counters.push_back({"serve/cache/hits", {}, total.hits});
    out.counters.push_back({"serve/cache/misses", {}, total.misses});
    out.counters.push_back({"serve/cache/evictions", {}, total.evictions});
    out.gauges.push_back({"serve/cache/hit_rate", {}, total.hit_rate()});
    out.gauges.push_back({"serve/cache/size", {}, static_cast<double>(total.size)});
    out.gauges.push_back(
        {"serve/cache/capacity", {}, static_cast<double>(capacity_)});
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        Shard& shard = *shards_[s];
        std::size_t occupancy = 0;
        {
            LockGuard lock(shard.mutex);
            occupancy = shard.lru.size();
        }
        obs::Labels labels{{"shard", std::to_string(s)}};
        out.gauges.push_back({"serve/cache/shard_occupancy", labels,
                              static_cast<double>(occupancy)});
        out.gauges.push_back({"serve/cache/shard_capacity", std::move(labels),
                              static_cast<double>(shard.capacity)});
    }
}

CacheStats ScheduleCache::stats() const {
    CacheStats total;
    for (const auto& shard : shards_) {
        LockGuard lock(shard->mutex);
        total.hits += shard->hits;
        total.misses += shard->misses;
        total.evictions += shard->evictions;
        total.size += shard->lru.size();
    }
    return total;
}

}  // namespace tsched::serve
