// Deterministic chaos injection for the serving plane.
//
// The overload battery (bench_serve --chaos, tests/test_serve.cpp) needs to
// push the ServeEngine into the failure modes production traffic produces —
// schedulers that stall, schedulers that throw, a pool that refuses work —
// *reproducibly*, so the same seed yields the same outcome accounting on
// every run, every worker count, and every sanitizer.
//
// Two design rules make that possible:
//
//   1. Fault decisions are keyed, not drawn.  Whether a computation stalls,
//      throws, or fails its pool handoff is a pure hash of (seed, request
//      fingerprint, injection site) — never a read from a shared sequential
//      RNG whose draw order would depend on thread interleaving.  A "cursed"
//      fingerprint therefore fails *every* time it is computed, so a request
//      that coalesces onto a cursed computation and a request that retries
//      it later see the same fate, and outcome counts are interleaving-
//      independent.
//
//   2. Stalls are gated, not slept.  A stalled computation blocks on a
//      condition variable until release_stalls() opens the gate (or a
//      bounded stall_ms budget elapses), which lets a harness freeze the
//      world — submit a saturating burst while nothing can complete, making
//      every admission decision deterministic — and then let it drain.
//
// The hook is injected through ServeConfig::chaos and costs nothing when
// absent (a null check on the cold path only; the cache-hit fast path never
// consults it).
#pragma once

#include <cstdint>
#include <exception>

#include "util/thread_annotations.hpp"

namespace tsched::serve {

/// Injection points the engine offers.  The default implementation of every
/// hook is a no-op, so a test can override just the site it cares about.
class ChaosHook {
public:
    virtual ~ChaosHook() = default;

    /// Called just before the engine hands a computation to the pool; a
    /// throw here is treated exactly like ThreadPool::submit throwing
    /// (submit-time pool failure).
    virtual void on_pool_submit(std::uint64_t /*fp*/) {}

    /// Called on the pool worker just before the scheduler runs; may block
    /// (slow-scheduler stall) or throw (scheduler exception).
    virtual void on_compute(std::uint64_t /*fp*/) {}
};

/// Cumulative injection counts (monotone; readable while the storm runs).
struct ChaosStats {
    std::uint64_t stalls = 0;
    std::uint64_t throws = 0;
    std::uint64_t submit_failures = 0;
};

struct ChaosOptions {
    std::uint64_t seed = 2007;
    double stall_prob = 0.0;        ///< fp-keyed probability a computation stalls
    double stall_ms = 5.0;          ///< bounded stall duration when not gated
    bool gate_stalls = false;       ///< stalled computations block until release_stalls()
    bool gate_all = false;          ///< every computation stalls at the gate (burst freeze)
    double throw_prob = 0.0;        ///< fp-keyed scheduler-exception probability
    double submit_fail_prob = 0.0;  ///< fp-keyed pool-handoff-failure probability
};

/// Thrown by injected scheduler/pool faults so harnesses can tell injected
/// failures from real ones.
class ChaosError : public std::exception {
public:
    const char* what() const noexcept override { return "serve chaos: injected failure"; }
};

class DeterministicChaos final : public ChaosHook {
public:
    explicit DeterministicChaos(ChaosOptions options);

    void on_pool_submit(std::uint64_t fp) override;  // throws ChaosError on a cursed fp
    void on_compute(std::uint64_t fp) override;      // stalls and/or throws ChaosError

    /// Open the stall gate: every parked computation proceeds, and later
    /// gated stalls pass straight through.  Idempotent.
    void release_stalls() TSCHED_EXCLUDES(mutex_);

    /// Close the gate again (harness reuse between scenarios).
    void rearm() TSCHED_EXCLUDES(mutex_);

    /// Decision predicates — pure functions of (seed, fp, site), exposed so
    /// harnesses can precompute the expected outcome set.
    [[nodiscard]] bool will_stall(std::uint64_t fp) const noexcept;
    [[nodiscard]] bool will_throw(std::uint64_t fp) const noexcept;
    [[nodiscard]] bool will_fail_submit(std::uint64_t fp) const noexcept;

    [[nodiscard]] ChaosStats stats() const TSCHED_EXCLUDES(mutex_);

private:
    ChaosOptions options_;
    mutable Mutex mutex_;
    CondVar gate_cv_;
    bool released_ TSCHED_GUARDED_BY(mutex_) = false;
    ChaosStats stats_ TSCHED_GUARDED_BY(mutex_);
};

}  // namespace tsched::serve
