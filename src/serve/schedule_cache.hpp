// Content-addressed schedule cache: LRU with sharded locks.
//
// Maps request fingerprints (serve/request.hpp) to immutable, shared
// Schedule results.  The key space is split across kShards independent
// shards — each with its own mutex, hash map, and LRU list — so concurrent
// lookups from the serving thread pool contend only when they land on the
// same shard.  Capacity is divided evenly across shards (each shard evicts
// its own least-recently-used entry when it overflows), which bounds total
// residency at `capacity` while keeping eviction O(1) and lock-local.
//
// Values are shared_ptr<const Schedule>: a hit hands back the *same object*
// the cold computation produced, so a cached answer is bit-identical to the
// cold one by construction (the determinism tests also pin this through the
// TSS serializer).
//
// Lock discipline (clang thread-safety checked, DESIGN §13): every mutable
// shard member — map, LRU list, *and* the hit/miss/eviction counters — is
// GUARDED_BY the shard mutex; the counters are plain integers, not atomics,
// because every touch already happens under the lock.  stats() therefore
// reads each shard's counters and size under one lock hold, giving a
// per-shard-consistent snapshot (the pre-annotation code read the counters
// outside the lock and could observe a hit whose LRU update was not yet
// visible).  Shards are never locked nested; cross-shard totals are sums of
// sequential per-shard snapshots.
//
// peek() is *counter-neutral*, not lock-free: it takes the shard mutex like
// every other operation (there is no unsynchronized fast path), but records
// no hit/miss counter and no trace event, so the serve engine's
// double-checked lookup costs one counted cache operation per request.  It
// still refreshes recency on a hit.
//
// Every counted operation feeds both the per-shard counters (stats(), usable
// in any build) and the process-wide trace registry via TSCHED_COUNT
// ("serve/cache_hits", "serve/cache_misses", "serve/cache_evictions") so
// `tsched_serve --counters` and bench trace dumps see cache behaviour.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "sched/schedule.hpp"
#include "util/thread_annotations.hpp"

namespace tsched::serve {

struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t size = 0;

    [[nodiscard]] double hit_rate() const noexcept {
        const std::uint64_t total = hits + misses;
        return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
    }
};

class ScheduleCache {
public:
    /// `capacity` is the total entry budget across all shards (min 1 per
    /// shard); `shards` must be > 0 and is rounded down to a power of two
    /// so shard selection is a mask, not a division.
    explicit ScheduleCache(std::size_t capacity, std::size_t shards = 8);

    /// Look up a fingerprint; returns nullptr (and counts a miss) when
    /// absent.  A hit refreshes the entry's recency.
    [[nodiscard]] std::shared_ptr<const Schedule> get(std::uint64_t key);

    /// Counter-neutral lookup: takes the shard lock like get() but records
    /// no hit/miss counters — the serve engine's double-checked lookup uses
    /// this so one request never counts two cache operations.  Still
    /// refreshes recency on a hit.
    [[nodiscard]] std::shared_ptr<const Schedule> peek(std::uint64_t key);

    /// Insert or overwrite; evicts the shard's least-recently-used entry
    /// when the shard is over budget.
    void put(std::uint64_t key, std::shared_ptr<const Schedule> value);

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::size_t num_shards() const noexcept { return shards_.size(); }

    /// Point-in-time totals across shards.  Each shard's contribution is
    /// internally consistent (read under that shard's lock); the cross-shard
    /// sum is only as coherent as sequential per-shard sampling can be.
    [[nodiscard]] CacheStats stats() const;

    /// Append this cache's obs fragment to `out` (DESIGN §14): the
    /// hits/misses/evictions counters, a cache-operation hit-rate gauge, and
    /// per-shard occupancy gauges labelled {shard=<i>} plus the shard's
    /// budget, so a collector can see skew across shards, not just totals.
    /// The caller merges fragments from every component and sorts once.
    void metrics_into(obs::MetricsSnapshot& out) const;

private:
    struct Shard {
        Mutex mutex;
        /// Most-recently-used at the front.
        std::list<std::pair<std::uint64_t, std::shared_ptr<const Schedule>>> lru
            TSCHED_GUARDED_BY(mutex);
        std::unordered_map<std::uint64_t,
                           std::list<std::pair<std::uint64_t,
                                               std::shared_ptr<const Schedule>>>::iterator>
            index TSCHED_GUARDED_BY(mutex);
        /// Entry budget; set once at construction, immutable afterwards.
        std::size_t capacity = 1;
        std::uint64_t hits TSCHED_GUARDED_BY(mutex) = 0;
        std::uint64_t misses TSCHED_GUARDED_BY(mutex) = 0;
        std::uint64_t evictions TSCHED_GUARDED_BY(mutex) = 0;

        /// Find `key`, move it to the MRU position, and return its value;
        /// nullptr when absent.  Counter updates stay with the callers so
        /// get() and peek() share one lookup path.
        [[nodiscard]] std::shared_ptr<const Schedule> find_and_touch_locked(std::uint64_t key)
            TSCHED_REQUIRES(mutex);

        /// Insert or overwrite `key`, evicting the LRU entry if the shard
        /// went over budget; returns true when an eviction happened.
        [[nodiscard]] bool insert_locked(std::uint64_t key,
                                         std::shared_ptr<const Schedule> value)
            TSCHED_REQUIRES(mutex);
    };

    [[nodiscard]] Shard& shard_for(std::uint64_t key) noexcept;

    std::size_t capacity_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace tsched::serve
