// Content-addressed schedule cache: LRU with sharded locks.
//
// Maps request fingerprints (serve/request.hpp) to immutable, shared
// Schedule results.  The key space is split across kShards independent
// shards — each with its own mutex, hash map, and LRU list — so concurrent
// lookups from the serving thread pool contend only when they land on the
// same shard.  Capacity is divided evenly across shards (each shard evicts
// its own least-recently-used entry when it overflows), which bounds total
// residency at `capacity` while keeping eviction O(1) and lock-local.
//
// Values are shared_ptr<const Schedule>: a hit hands back the *same object*
// the cold computation produced, so a cached answer is bit-identical to the
// cold one by construction (the determinism tests also pin this through the
// TSS serializer).
//
// Every operation feeds both the per-cache atomic counters (stats(), usable
// in any build) and the process-wide trace registry via TSCHED_COUNT
// ("serve/cache_hits", "serve/cache_misses", "serve/cache_evictions") so
// `tsched_serve --counters` and bench trace dumps see cache behaviour.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sched/schedule.hpp"

namespace tsched::serve {

struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t size = 0;

    [[nodiscard]] double hit_rate() const noexcept {
        const std::uint64_t total = hits + misses;
        return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
    }
};

class ScheduleCache {
public:
    /// `capacity` is the total entry budget across all shards (min 1 per
    /// shard); `shards` must be > 0 and is rounded down to a power of two
    /// so shard selection is a mask, not a division.
    explicit ScheduleCache(std::size_t capacity, std::size_t shards = 8);

    /// Look up a fingerprint; returns nullptr (and counts a miss) when
    /// absent.  A hit refreshes the entry's recency.
    [[nodiscard]] std::shared_ptr<const Schedule> get(std::uint64_t key);

    /// Like get(), but records no hit/miss counters — the serve engine's
    /// double-checked lookup uses this so one request never counts two
    /// cache operations.  Still refreshes recency on a hit.
    [[nodiscard]] std::shared_ptr<const Schedule> peek(std::uint64_t key);

    /// Insert or overwrite; evicts the shard's least-recently-used entry
    /// when the shard is over budget.
    void put(std::uint64_t key, std::shared_ptr<const Schedule> value);

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::size_t num_shards() const noexcept { return shards_.size(); }

    /// Point-in-time totals across shards.
    [[nodiscard]] CacheStats stats() const;

private:
    struct Shard {
        std::mutex mutex;
        /// Most-recently-used at the front.
        std::list<std::pair<std::uint64_t, std::shared_ptr<const Schedule>>> lru;
        std::unordered_map<std::uint64_t, decltype(lru)::iterator> index;
        std::size_t capacity = 1;
        std::atomic<std::uint64_t> hits{0};
        std::atomic<std::uint64_t> misses{0};
        std::atomic<std::uint64_t> evictions{0};
    };

    [[nodiscard]] Shard& shard_for(std::uint64_t key) noexcept;

    std::size_t capacity_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace tsched::serve
