#include "serve/serve_engine.hpp"

#include <stdexcept>
#include <utility>

#include "core/registry.hpp"
#include "obs/obs.hpp"
#include "trace/trace.hpp"

#ifdef TSCHED_DEBUG_CHECKS
#include "sched/validate.hpp"
#endif

namespace tsched::serve {

namespace {

ServeResult make_hit(std::shared_ptr<const Schedule> schedule, std::uint64_t fp,
                     const Stopwatch& submitted) {
    return ServeResult{std::move(schedule), fp, true, false, submitted.elapsed_ms()};
}

void debug_check_hit([[maybe_unused]] const Schedule& hit,
                     [[maybe_unused]] const Problem& problem) {
#ifdef TSCHED_DEBUG_CHECKS
    // A fingerprint collision would serve a schedule for a *different*
    // problem; under debug checks every hit must validate against the
    // problem that asked for it.
    const auto result = validate(hit, problem);
    if (!result.ok)
        throw std::logic_error(
            "serve: cache hit failed validation (fingerprint collision?):\n" + result.message());
#endif
}

}  // namespace

ServeEngine::ServeEngine(ServeConfig config, ThreadPool& pool)
    : config_(config),
      pool_(pool),
      cache_(std::make_unique<ScheduleCache>(config.cache_capacity, config.cache_shards)),
      lat_total_ms_(metrics_.histogram("serve/latency/total_ms")),
      lat_queue_wait_ms_(metrics_.histogram("serve/latency/queue_wait_ms")),
      lat_cache_lookup_ms_(metrics_.histogram("serve/latency/cache_lookup_ms")),
      lat_compute_ms_(metrics_.histogram("serve/latency/compute_ms")) {}

ServeEngine::~ServeEngine() { pool_.wait_idle(); }

const Scheduler& ServeEngine::scheduler_for(const std::string& algo) {
    LockGuard lock(schedulers_mutex_);
    auto it = schedulers_.find(algo);
    if (it == schedulers_.end()) it = schedulers_.emplace(algo, make_scheduler(algo)).first;
    return *it->second;
}

std::future<ServeResult> ServeEngine::submit(ScheduleRequest request) {
    if (!request.problem) throw std::invalid_argument("ServeEngine::submit: null problem");
    Stopwatch submitted;
    requests_.fetch_add(1, std::memory_order_relaxed);
    TSCHED_COUNT("serve/requests");
    const std::uint64_t fp = fingerprint_request(request);

    if (config_.enable_cache) {
#if TSCHED_OBS_ON
        const Stopwatch lookup;
        auto hit = cache_->get(fp);
        lat_cache_lookup_ms_.record(lookup.elapsed_ms());
#else
        auto hit = cache_->get(fp);
#endif
        if (hit) {
            debug_check_hit(*hit, *request.problem);
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            TSCHED_COUNT("serve/served_from_cache");
            std::promise<ServeResult> ready;
            ServeResult result = make_hit(std::move(hit), fp, submitted);
#if TSCHED_OBS_ON
            lat_total_ms_.record(result.latency_ms);
#endif
            ready.set_value(std::move(result));
            return ready.get_future();
        }
    }

    std::promise<ServeResult> owner;
    std::future<ServeResult> future = owner.get_future();
    if (config_.enable_dedup) {
        LockGuard lock(inflight_mutex_);
        if (const auto it = inflight_.find(fp); it != inflight_.end()) {
            coalesced_.fetch_add(1, std::memory_order_relaxed);
            TSCHED_COUNT("serve/inflight_coalesced");
            it->second->waiters.push_back(Waiter{std::move(owner), submitted});
            return future;
        }
        // Double-check the cache under the in-flight lock: the computation
        // this request just missed may have completed and published between
        // the first lookup and here.  peek() keeps the raw cache counters at
        // one operation per request.
        if (config_.enable_cache) {
            if (auto hit = cache_->peek(fp)) {
                debug_check_hit(*hit, *request.problem);
                cache_hits_.fetch_add(1, std::memory_order_relaxed);
                TSCHED_COUNT("serve/served_from_cache");
                ServeResult result = make_hit(std::move(hit), fp, submitted);
#if TSCHED_OBS_ON
                lat_total_ms_.record(result.latency_ms);
#endif
                owner.set_value(std::move(result));
                return future;
            }
        }
        inflight_.emplace(fp, std::make_shared<InFlight>());
    }

    try {
        pool_.submit(
            [this, req = std::move(request), fp, own = std::move(owner), submitted]() mutable {
                compute_and_publish(std::move(req), fp, std::move(own), submitted);
            });
    } catch (...) {
        // The pool refused the work (shut down): roll back this request's
        // in-flight registration, or later identical requests would coalesce
        // onto an entry that no computation will ever resolve and hang.  Any
        // waiter that coalesced in the meantime fails with the same error.
        if (config_.enable_dedup) {
            for (Waiter& waiter : claim_waiters(fp)) {
                waiter.promise.set_exception(std::current_exception());
            }
        }
        throw;
    }
    return future;
}

std::vector<ServeEngine::Waiter> ServeEngine::claim_waiters(std::uint64_t fp) {
    std::vector<Waiter> waiters;
    LockGuard lock(inflight_mutex_);
    if (const auto it = inflight_.find(fp); it != inflight_.end()) {
        waiters = std::move(it->second->waiters);
        inflight_.erase(it);
    }
    return waiters;
}

void ServeEngine::compute_and_publish(ScheduleRequest request, std::uint64_t fp,
                                      std::promise<ServeResult> owner, Stopwatch submitted) {
    // Submit-to-compute-start: time the owning request spent queued behind
    // the pool (plus the fingerprint/lookup prologue, which is noise next to
    // a scheduler run).
    TSCHED_OBS_RECORD_INTO(lat_queue_wait_ms_, submitted.elapsed_ms());
    std::shared_ptr<const Schedule> result;
    std::exception_ptr error;
    try {
        const Scheduler& scheduler = scheduler_for(request.algo);
        TSCHED_SPAN("serve/compute");
#if TSCHED_OBS_ON
        const Stopwatch compute;
        result = std::make_shared<const Schedule>(scheduler.schedule(*request.problem));
        lat_compute_ms_.record(compute.elapsed_ms());
#else
        result = std::make_shared<const Schedule>(scheduler.schedule(*request.problem));
#endif
        computed_.fetch_add(1, std::memory_order_relaxed);
        TSCHED_COUNT("serve/computed");
    } catch (...) {
        error = std::current_exception();
    }

    if (result && config_.enable_cache) cache_->put(fp, result);

    std::vector<Waiter> waiters;
    if (config_.enable_dedup) waiters = claim_waiters(fp);

    const auto fulfill = [&](std::promise<ServeResult>& promise, const Stopwatch& clock,
                             bool coalesced) {
        if (error) {
            promise.set_exception(error);
        } else {
            const double latency_ms = clock.elapsed_ms();
            TSCHED_OBS_RECORD_INTO(lat_total_ms_, latency_ms);
            promise.set_value(ServeResult{result, fp, false, coalesced, latency_ms});
        }
    };
    fulfill(owner, submitted, false);
    for (Waiter& waiter : waiters) fulfill(waiter.promise, waiter.submitted, true);
}

std::vector<ServeResult> ServeEngine::run_batch(std::vector<ScheduleRequest> batch) {
    std::vector<std::future<ServeResult>> futures;
    futures.reserve(batch.size());
    for (ScheduleRequest& request : batch) futures.push_back(submit(std::move(request)));
    std::vector<ServeResult> results;
    results.reserve(futures.size());
    for (auto& future : futures) results.push_back(future.get());
    return results;
}

ServeResult ServeEngine::serve(ScheduleRequest request) { return submit(std::move(request)).get(); }

EngineStats ServeEngine::stats() const {
    EngineStats s;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.computed = computed_.load(std::memory_order_relaxed);
    s.coalesced = coalesced_.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    s.cache = cache_->stats();
    return s;
}

obs::MetricsSnapshot ServeEngine::metrics_snapshot() const {
    obs::MetricsSnapshot out = metrics_.snapshot();

    out.counters.push_back(
        {"serve/requests", {}, requests_.load(std::memory_order_relaxed)});
    out.counters.push_back(
        {"serve/computed", {}, computed_.load(std::memory_order_relaxed)});
    out.counters.push_back(
        {"serve/coalesced", {}, coalesced_.load(std::memory_order_relaxed)});
    // "served_from_cache" (the trace counter's name), not "cache_hits": the
    // cache fragment exports serve/cache/hits, which sanitizes to the same
    // Prometheus name as serve/cache_hits would — and the two counters mean
    // different things (requests answered from cache vs raw cache-op hits).
    out.counters.push_back(
        {"serve/served_from_cache", {}, cache_hits_.load(std::memory_order_relaxed)});
    out.gauges.push_back({"serve/hit_rate", {}, stats().hit_rate()});

    cache_->metrics_into(out);

    const PoolMetrics pool = pool_.metrics();
    out.gauges.push_back({"pool/workers", {}, static_cast<double>(pool.workers)});
    out.gauges.push_back(
        {"pool/queue_depth", {}, static_cast<double>(pool.queue_depth)});
    out.gauges.push_back({"pool/active", {}, static_cast<double>(pool.active)});
    out.counters.push_back({"pool/tasks_run", {}, pool.tasks_run});
    out.histograms.push_back({"pool/task_run_ms", {}, pool.task_run_ms});

    out.sort();
    return out;
}

}  // namespace tsched::serve
