#include "serve/serve_engine.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/registry.hpp"
#include "obs/obs.hpp"
#include "trace/trace.hpp"

#ifdef TSCHED_DEBUG_CHECKS
#include "sched/validate.hpp"
#endif

namespace tsched::serve {

namespace {

ServeResult make_hit(std::shared_ptr<const Schedule> schedule, std::uint64_t fp,
                     const Stopwatch& submitted) {
    return ServeResult{std::move(schedule), fp, true, false, submitted.elapsed_ms()};
}

void debug_check_hit([[maybe_unused]] const Schedule& hit,
                     [[maybe_unused]] const Problem& problem) {
#ifdef TSCHED_DEBUG_CHECKS
    // A fingerprint collision would serve a schedule for a *different*
    // problem; under debug checks every hit must validate against the
    // problem that asked for it.
    const auto result = validate(hit, problem);
    if (!result.ok)
        throw std::logic_error(
            "serve: cache hit failed validation (fingerprint collision?):\n" + result.message());
#endif
}

}  // namespace

ServeEngine::ServeEngine(ServeConfig config, ThreadPool& pool)
    : config_(std::move(config)),
      pool_(pool),
      cache_(std::make_unique<ScheduleCache>(config_.cache_capacity, config_.cache_shards)),
      admission_(AdmissionOptions{config_.max_inflight, config_.max_pending,
                                  config_.shed_policy, config_.enable_dedup}),
      chaos_(config_.chaos),
      lat_total_ms_(metrics_.histogram("serve/latency/total_ms")),
      lat_queue_wait_ms_(metrics_.histogram("serve/latency/queue_wait_ms")),
      lat_cache_lookup_ms_(metrics_.histogram("serve/latency/cache_lookup_ms")),
      lat_compute_ms_(metrics_.histogram("serve/latency/compute_ms")),
      lat_deadline_slack_ms_(metrics_.histogram("serve/latency/deadline_slack_ms")),
      queue_depth_(metrics_.histogram("serve/queue_depth")) {}

ServeEngine::~ServeEngine() {
    // Bounded drain (config_.drain_timeout_ms; <= 0 waits forever) resolves
    // every outstanding future, then the unbounded own-task wait guarantees
    // no pool closure still touches `this`.  Only this engine's closures are
    // joined — never the borrowed pool's global idle.
    drain(config_.drain_timeout_ms);
    wait_own_tasks();
}

const Scheduler& ServeEngine::scheduler_for(const std::string& algo) {
    LockGuard lock(schedulers_mutex_);
    auto it = schedulers_.find(algo);
    if (it == schedulers_.end()) it = schedulers_.emplace(algo, make_scheduler(algo)).first;
    return *it->second;
}

std::future<ServeResult> ServeEngine::submit(ScheduleRequest request) {
    if (!request.problem) throw std::invalid_argument("ServeEngine::submit: null problem");
    Stopwatch submitted;
    requests_.fetch_add(1, std::memory_order_relaxed);
    TSCHED_COUNT("serve/requests");
    const std::uint64_t fp = fingerprint_request(request);

    if (config_.enable_cache) {
#if TSCHED_OBS_ON
        const Stopwatch lookup;
        auto hit = cache_->get(fp);
        lat_cache_lookup_ms_.record(lookup.elapsed_ms());
#else
        auto hit = cache_->get(fp);
#endif
        if (hit) {
            debug_check_hit(*hit, *request.problem);
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            ok_.fetch_add(1, std::memory_order_relaxed);
            TSCHED_COUNT("serve/served_from_cache");
            std::promise<ServeResult> ready;
            ServeResult result = make_hit(std::move(hit), fp, submitted);
#if TSCHED_OBS_ON
            lat_total_ms_.record(result.latency_ms);
#endif
            ready.set_value(std::move(result));
            return ready.get_future();
        }
    }

    Waiter owner;
    owner.submitted = submitted;
    owner.fp = fp;
    owner.deadline_ms = request.deadline_ms;
    std::future<ServeResult> future = owner.promise.get_future();

    std::function<std::shared_ptr<const Schedule>()> peek;
    if (config_.enable_cache) {
        peek = [this, fp] { return cache_->peek(fp); };
    }

    AdmitDecision decision = admission_.admit(fp, std::move(request), std::move(owner), peek);

    // Shed/draining owners and drop-oldest victims first: they must resolve
    // even if launching the admitted computation throws below.
    resolve_shed_list(decision.to_resolve);

    switch (decision.action) {
        case AdmitAction::kRun:
            launch_chain(decision.ticket, std::move(*decision.request), fp, submitted,
                         /*rethrow=*/true);
            break;
        case AdmitAction::kCoalesced:
            coalesced_.fetch_add(1, std::memory_order_relaxed);
            TSCHED_COUNT("serve/inflight_coalesced");
            break;
        case AdmitAction::kQueued:
            TSCHED_COUNT("serve/queued");
            TSCHED_OBS_RECORD_INTO(queue_depth_, static_cast<double>(decision.pending_depth));
            break;
        case AdmitAction::kCacheHit:
            debug_check_hit(*decision.hit, *decision.request->problem);
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            TSCHED_COUNT("serve/served_from_cache");
            resolve_ready(*decision.owner, decision.hit, /*cache_hit=*/true);
            break;
        case AdmitAction::kDegrade:
            degrade_inline(std::move(*decision.request), fp, std::move(*decision.owner));
            break;
        case AdmitAction::kShed:
        case AdmitAction::kDraining:
            break;  // owner already resolved via to_resolve
    }
    return future;
}

void ServeEngine::launch_chain(Ticket ticket, ScheduleRequest request, std::uint64_t fp,
                               Stopwatch submitted, bool rethrow) {
    std::exception_ptr first_error;
    std::optional<Promoted> current;
    current.emplace();
    current->ticket = ticket;
    current->fp = fp;
    current->request = std::move(request);
    current->submitted = submitted;

    while (current) {
        const Ticket t = current->ticket;
        const std::uint64_t f = current->fp;
        own_task_begin();
        try {
            if (chaos_) chaos_->on_pool_submit(f);
            pool_.submit([this, t, f, req = std::move(current->request),
                          sub = current->submitted]() mutable {
                // The guard (not a tail call) ends the own-task scope, so an
                // exception escaping run_computation cannot leak the count.
                struct OwnTaskScope {
                    ServeEngine* engine;
                    ~OwnTaskScope() { engine->own_task_end(); }
                } scope{this};
                run_computation(t, std::move(req), f, sub);
            });
            break;  // handed off; completion drives further promotions
        } catch (...) {
            // The pool (or the chaos hook standing in for it) refused the
            // work: retire the ticket so nobody can coalesce onto an entry
            // no computation will ever resolve, fail every parked waiter
            // with the error, and keep promoting successors — each one gets
            // its own launch attempt.
            own_task_end();
            const std::exception_ptr error = std::current_exception();
            if (!first_error) first_error = error;
            CompleteResult done = admission_.complete(t);
            for (Waiter& waiter : done.waiters) resolve_error(waiter, error);
            resolve_shed_list(done.to_resolve);
            current = std::move(done.next);
        }
    }
    if (rethrow && first_error) std::rethrow_exception(first_error);
}

void ServeEngine::run_computation(Ticket ticket, ScheduleRequest request, std::uint64_t fp,
                                  Stopwatch submitted) {
    // Dequeue-time deadline check: if every waiter's budget is already blown
    // (or drain expropriated the entry), the work is never started.
    if (admission_.skip_at_dequeue(ticket)) {
        CompleteResult done = admission_.complete(ticket);
        for (Waiter& waiter : done.waiters) resolve_outcome(waiter, ServeOutcome::kTimedOut);
        finish_tail(done);
        return;
    }

    // Bounded mode only: a twin may have computed and published while this
    // request sat in the pending queue (pending requests do not coalesce),
    // so re-peek before paying for a duplicate scheduler run.  Off in the
    // default config to keep legacy cache-counter parity.
    if (config_.max_inflight > 0 && config_.enable_cache) {
        if (auto hit = cache_->peek(fp)) {
            debug_check_hit(*hit, *request.problem);
            CompleteResult done = admission_.complete(ticket);
            for (Waiter& waiter : done.waiters) {
                cache_hits_.fetch_add(1, std::memory_order_relaxed);
                TSCHED_COUNT("serve/served_from_cache");
                resolve_ready(waiter, hit, /*cache_hit=*/true);
            }
            finish_tail(done);
            return;
        }
    }

    // Submit-to-compute-start: time the owning request spent queued behind
    // the pool (plus the fingerprint/lookup prologue, which is noise next to
    // a scheduler run).
    TSCHED_OBS_RECORD_INTO(lat_queue_wait_ms_, submitted.elapsed_ms());
    std::shared_ptr<const Schedule> result;
    std::exception_ptr error;
    try {
        const Scheduler& scheduler = scheduler_for(request.algo);
        TSCHED_SPAN("serve/compute");
        if (chaos_) chaos_->on_compute(fp);
#if TSCHED_OBS_ON
        const Stopwatch compute;
        result = std::make_shared<const Schedule>(scheduler.schedule(*request.problem));
        lat_compute_ms_.record(compute.elapsed_ms());
#else
        result = std::make_shared<const Schedule>(scheduler.schedule(*request.problem));
#endif
        computed_.fetch_add(1, std::memory_order_relaxed);
        TSCHED_COUNT("serve/computed");
    } catch (...) {
        error = std::current_exception();
    }

    if (result && config_.enable_cache) cache_->put(fp, result);

    CompleteResult done = admission_.complete(ticket);
    for (Waiter& waiter : done.waiters) {
        if (error) {
            resolve_error(waiter, error);
        } else {
            resolve_ready(waiter, result, /*cache_hit=*/false);
        }
    }
    finish_tail(done);
}

void ServeEngine::degrade_inline(ScheduleRequest request, std::uint64_t fp, Waiter owner) {
    // Stale-ok peek of the full answer first: when dedup is off the admit
    // path never peeked, and even with dedup the publish may have landed
    // since.  A hit here is the real answer, so it resolves kOk.
    if (config_.enable_cache) {
        if (auto hit = cache_->peek(fp)) {
            debug_check_hit(*hit, *request.problem);
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            TSCHED_COUNT("serve/served_from_cache");
            resolve_ready(owner, hit, /*cache_hit=*/true);
            return;
        }
    }

    // Substitute the cheap algorithm, computed inline on the caller's thread
    // (bounded work, no pool budget), cached under the *degraded* request's
    // fingerprint so repeat over-budget traffic hits instead of recomputing.
    ScheduleRequest degraded = std::move(request);
    degraded.algo = config_.degrade_algo;
    const std::uint64_t degraded_fp = fingerprint_request(degraded);
    std::shared_ptr<const Schedule> result;
    if (config_.enable_cache) result = cache_->peek(degraded_fp);
    if (!result) {
        try {
            const Scheduler& scheduler = scheduler_for(degraded.algo);
            TSCHED_SPAN("serve/degrade_compute");
            result = std::make_shared<const Schedule>(scheduler.schedule(*degraded.problem));
        } catch (...) {
            resolve_error(owner, std::current_exception());
            return;
        }
        computed_.fetch_add(1, std::memory_order_relaxed);
        TSCHED_COUNT("serve/computed");
        if (config_.enable_cache) cache_->put(degraded_fp, result);
    }
    degraded_.fetch_add(1, std::memory_order_relaxed);
    TSCHED_COUNT("serve/degraded");
    const double latency_ms = owner.submitted.elapsed_ms();
    TSCHED_OBS_RECORD_INTO(lat_total_ms_, latency_ms);
    owner.promise.set_value(ServeResult{std::move(result), degraded_fp, false, false, latency_ms,
                                        ServeOutcome::kDegraded});
}

void ServeEngine::resolve_ready(Waiter& waiter, const std::shared_ptr<const Schedule>& schedule,
                                bool cache_hit) {
    const double latency_ms = waiter.submitted.elapsed_ms();
    ServeOutcome outcome = ServeOutcome::kOk;
    if (waiter.deadline_ms > 0.0) {
        TSCHED_OBS_RECORD_INTO(lat_deadline_slack_ms_,
                               std::max(0.0, waiter.deadline_ms - latency_ms));
        if (latency_ms > waiter.deadline_ms) outcome = ServeOutcome::kTimedOut;
    }
    if (outcome == ServeOutcome::kOk) {
        ok_.fetch_add(1, std::memory_order_relaxed);
    } else {
        // Late completion: the answer is real but the budget is blown — the
        // schedule is still attached (request.hpp outcome contract).
        timed_out_.fetch_add(1, std::memory_order_relaxed);
        TSCHED_COUNT("serve/timed_out");
    }
    TSCHED_OBS_RECORD_INTO(lat_total_ms_, latency_ms);
    waiter.promise.set_value(
        ServeResult{schedule, waiter.fp, cache_hit, waiter.coalesced, latency_ms, outcome});
}

void ServeEngine::resolve_outcome(Waiter& waiter, ServeOutcome outcome) {
    switch (outcome) {
        case ServeOutcome::kShed:
            shed_.fetch_add(1, std::memory_order_relaxed);
            TSCHED_COUNT("serve/shed");
            break;
        case ServeOutcome::kDraining:
            draining_.fetch_add(1, std::memory_order_relaxed);
            TSCHED_COUNT("serve/draining");
            break;
        case ServeOutcome::kTimedOut:
            timed_out_.fetch_add(1, std::memory_order_relaxed);
            TSCHED_COUNT("serve/timed_out");
            break;
        default:
            break;
    }
    waiter.promise.set_value(ServeResult{nullptr, waiter.fp, false, waiter.coalesced,
                                         waiter.submitted.elapsed_ms(), outcome});
}

void ServeEngine::resolve_error(Waiter& waiter, const std::exception_ptr& error) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    TSCHED_COUNT("serve/failed");
    waiter.promise.set_exception(error);
}

void ServeEngine::resolve_shed_list(std::vector<ShedWaiter>& list) {
    for (ShedWaiter& shed : list) resolve_outcome(shed.waiter, shed.outcome);
    list.clear();
}

void ServeEngine::finish_tail(CompleteResult& result) {
    resolve_shed_list(result.to_resolve);
    if (result.next) {
        Promoted next = std::move(*result.next);
        launch_chain(next.ticket, std::move(next.request), next.fp, next.submitted,
                     /*rethrow=*/false);
    }
}

DrainReport ServeEngine::drain(double timeout_ms) {
    DrainReport report;
    std::vector<ShedWaiter> flushed = admission_.begin_drain();
    report.flushed_pending = flushed.size();
    resolve_shed_list(flushed);
    if (!admission_.await_idle(timeout_ms)) {
        std::vector<Waiter> forced = admission_.expropriate();
        report.forced_waiters = forced.size();
        report.clean = forced.empty();
        for (Waiter& waiter : forced) resolve_outcome(waiter, ServeOutcome::kDraining);
    }
    return report;
}

std::vector<ServeResult> ServeEngine::run_batch(std::vector<ScheduleRequest> batch,
                                                double wait_budget_ms) {
    std::vector<std::future<ServeResult>> futures;
    futures.reserve(batch.size());
    for (ScheduleRequest& request : batch) futures.push_back(submit(std::move(request)));
    std::vector<ServeResult> results;
    results.reserve(futures.size());
    const Stopwatch waited;
    for (auto& future : futures) {
        if (wait_budget_ms > 0.0) {
            const double remaining_ms = wait_budget_ms - waited.elapsed_ms();
            const auto budget =
                std::chrono::duration<double, std::milli>(std::max(0.0, remaining_ms));
            if (future.wait_for(budget) != std::future_status::ready) {
                // Synthetic caller-side timeout: the computation still
                // retires in the background and its promise-side accounting
                // stands; this caller just stops waiting (fingerprint 0, no
                // schedule).
                ServeResult timed_out;
                timed_out.outcome = ServeOutcome::kTimedOut;
                timed_out.latency_ms = waited.elapsed_ms();
                results.push_back(std::move(timed_out));
                continue;
            }
        }
        results.push_back(future.get());
    }
    return results;
}

ServeResult ServeEngine::serve(ScheduleRequest request, double wait_budget_ms) {
    std::future<ServeResult> future = submit(std::move(request));
    if (wait_budget_ms > 0.0) {
        const auto budget = std::chrono::duration<double, std::milli>(wait_budget_ms);
        if (future.wait_for(budget) != std::future_status::ready) {
            ServeResult timed_out;
            timed_out.outcome = ServeOutcome::kTimedOut;
            timed_out.latency_ms = wait_budget_ms;
            return timed_out;
        }
    }
    return future.get();
}

void ServeEngine::own_task_begin() {
    LockGuard lock(own_mutex_);
    ++own_tasks_;
}

void ServeEngine::own_task_end() {
    {
        LockGuard lock(own_mutex_);
        --own_tasks_;
        if (own_tasks_ != 0) return;
    }
    own_cv_.notify_all();
}

void ServeEngine::wait_own_tasks() {
    UniqueLock lock(own_mutex_);
    while (own_tasks_ != 0) own_cv_.wait(lock);
}

EngineStats ServeEngine::stats() const {
    EngineStats s;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.computed = computed_.load(std::memory_order_relaxed);
    s.coalesced = coalesced_.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    s.ok = ok_.load(std::memory_order_relaxed);
    s.shed = shed_.load(std::memory_order_relaxed);
    s.degraded = degraded_.load(std::memory_order_relaxed);
    s.timed_out = timed_out_.load(std::memory_order_relaxed);
    s.draining = draining_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.admission = admission_.stats();
    s.cache = cache_->stats();
    return s;
}

obs::MetricsSnapshot ServeEngine::metrics_snapshot() const {
    obs::MetricsSnapshot out = metrics_.snapshot();

    out.counters.push_back(
        {"serve/requests", {}, requests_.load(std::memory_order_relaxed)});
    out.counters.push_back(
        {"serve/computed", {}, computed_.load(std::memory_order_relaxed)});
    out.counters.push_back(
        {"serve/coalesced", {}, coalesced_.load(std::memory_order_relaxed)});
    // "served_from_cache" (the trace counter's name), not "cache_hits": the
    // cache fragment exports serve/cache/hits, which sanitizes to the same
    // Prometheus name as serve/cache_hits would — and the two counters mean
    // different things (requests answered from cache vs raw cache-op hits).
    out.counters.push_back(
        {"serve/served_from_cache", {}, cache_hits_.load(std::memory_order_relaxed)});
    out.counters.push_back({"serve/shed", {}, shed_.load(std::memory_order_relaxed)});
    out.counters.push_back({"serve/degraded", {}, degraded_.load(std::memory_order_relaxed)});
    out.counters.push_back({"serve/timed_out", {}, timed_out_.load(std::memory_order_relaxed)});
    out.counters.push_back({"serve/draining", {}, draining_.load(std::memory_order_relaxed)});
    out.counters.push_back({"serve/failed", {}, failed_.load(std::memory_order_relaxed)});
    out.gauges.push_back({"serve/hit_rate", {}, stats().hit_rate()});
    out.gauges.push_back(
        {"serve/inflight", {}, static_cast<double>(admission_.inflight())});
    out.gauges.push_back(
        {"serve/pending_depth", {}, static_cast<double>(admission_.pending_depth())});

    cache_->metrics_into(out);

    const PoolMetrics pool = pool_.metrics();
    out.gauges.push_back({"pool/workers", {}, static_cast<double>(pool.workers)});
    out.gauges.push_back(
        {"pool/queue_depth", {}, static_cast<double>(pool.queue_depth)});
    out.gauges.push_back({"pool/active", {}, static_cast<double>(pool.active)});
    out.counters.push_back({"pool/tasks_run", {}, pool.tasks_run});
    out.histograms.push_back({"pool/task_run_ms", {}, pool.task_run_ms});

    out.sort();
    return out;
}

}  // namespace tsched::serve
