// Request-trace persistence and generation — the .tsr format.
//
// A .tsr file is a replayable stream of scheduling requests for the serving
// layer: one line per request, each naming the algorithm plus the compact
// workload descriptor (shape, size, procs, net, ccr, beta, seed) that
// workload::make_instance expands deterministically into the full Problem.
// Storing descriptors instead of materialized graphs keeps traces tiny and
// exactly reproducible; a repeated line *is* a repeated request (identical
// descriptor -> identical Problem -> identical fingerprint).
//
// TSR grammar (line-oriented, '#' starts a comment):
//   tsr 1
//   r <algo> <shape> <size> <procs> <net> <ccr> <beta> <seed>
//
// generate_trace builds the mixed streams the serving benchmarks replay: an
// exact fraction `repeat_frac` of the requests repeat an earlier request in
// the same stream (cache-hittable), the rest are *perturbed* fresh graphs
// (same shape family, new seed -> new topology/costs -> new fingerprint).
// Generation is fully deterministic in TraceGenParams::seed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "workload/instance.hpp"

namespace tsched::serve {

struct TraceRequest {
    std::string algo = "heft";
    workload::Shape shape = workload::Shape::kLayered;
    std::size_t size = 100;
    std::size_t procs = 8;
    workload::Net net = workload::Net::kUniform;
    double ccr = 1.0;
    double beta = 0.5;
    std::uint64_t seed = 2007;

    friend bool operator==(const TraceRequest&, const TraceRequest&) = default;
};

/// The InstanceParams a trace request expands to (shared by materialize and
/// by callers that want the raw instance).
[[nodiscard]] workload::InstanceParams trace_instance_params(const TraceRequest& request);

/// Deterministically expand a trace request into a servable request.
[[nodiscard]] ScheduleRequest materialize(const TraceRequest& request);

void write_tsr(std::ostream& os, const std::vector<TraceRequest>& requests);
[[nodiscard]] std::string to_tsr(const std::vector<TraceRequest>& requests);

/// Parse a TSR document; throws std::runtime_error with a line-numbered
/// message on malformed input.
[[nodiscard]] std::vector<TraceRequest> read_tsr(std::istream& is);
[[nodiscard]] std::vector<TraceRequest> read_tsr_string(const std::string& text);

void save_tsr(const std::string& path, const std::vector<TraceRequest>& requests);
[[nodiscard]] std::vector<TraceRequest> load_tsr(const std::string& path);

struct TraceGenParams {
    std::size_t requests = 128;
    /// Exact fraction of the stream that repeats an earlier request
    /// (floor(requests * repeat_frac) lines are repeats).
    double repeat_frac = 0.5;
    std::vector<std::string> algos = {"heft"};
    std::vector<workload::Shape> shapes = {workload::Shape::kLayered};
    std::size_t size = 100;
    std::size_t procs = 8;
    workload::Net net = workload::Net::kUniform;
    double ccr = 1.0;
    double beta = 0.5;
    std::uint64_t seed = 2007;
};

/// Build a mixed repeated/perturbed request stream (deterministic in seed).
[[nodiscard]] std::vector<TraceRequest> generate_trace(const TraceGenParams& params);

}  // namespace tsched::serve
