#include "serve/request.hpp"

#include "util/fingerprint.hpp"

namespace tsched::serve {

namespace {

void absorb_dag(Fnv1a& h, const Dag& dag) {
    h.u64(dag.num_tasks());
    h.u64(dag.num_edges());
    for (TaskId v = 0; v < static_cast<TaskId>(dag.num_tasks()); ++v) {
        h.f64(dag.work(v));
        const auto succs = dag.successors(v);
        h.u64(succs.size());
        for (const AdjEdge& e : succs) {
            h.i64(e.task);
            h.f64(e.data);
        }
    }
}

void absorb_costs(Fnv1a& h, const CostMatrix& costs) {
    h.u64(costs.num_tasks());
    h.u64(costs.num_procs());
    for (TaskId v = 0; v < static_cast<TaskId>(costs.num_tasks()); ++v)
        for (ProcId p = 0; p < static_cast<ProcId>(costs.num_procs()); ++p) h.f64(costs(v, p));
}

void absorb_machine(Fnv1a& h, const Machine& machine) {
    const auto procs = static_cast<ProcId>(machine.num_procs());
    h.u64(machine.num_procs());
    for (const double s : machine.speeds()) h.f64(s);
    // Behavioral link-model canonicalization: two sample volumes pin the
    // affine comm-time function per ordered pair (see request.hpp).
    const LinkModel& links = machine.links();
    for (ProcId p = 0; p < procs; ++p) {
        for (ProcId q = 0; q < procs; ++q) {
            if (p == q) continue;
            h.f64(links.comm_time(0.0, p, q));
            h.f64(links.comm_time(1.0, p, q));
        }
    }
    h.f64(links.mean_comm_time(1.0, machine.num_procs()));
}

}  // namespace

std::uint64_t fingerprint_problem(const Problem& problem) {
    Fnv1a h;
    absorb_dag(h, problem.dag());
    absorb_costs(h, problem.costs());
    absorb_machine(h, problem.machine());
    return h.value();
}

std::uint64_t fingerprint_request(const ScheduleRequest& request) {
    // deadline_ms is deliberately not absorbed: a latency budget is caller
    // state, not content, and must never split the cache key space.
    Fnv1a h;
    h.u64(kFingerprintVersion);
    h.u64(fingerprint_problem(*request.problem));
    h.str(request.algo);
    h.str(request.options);
    return h.value();
}

const char* outcome_name(ServeOutcome outcome) noexcept {
    switch (outcome) {
        case ServeOutcome::kOk: return "ok";
        case ServeOutcome::kShed: return "shed";
        case ServeOutcome::kDegraded: return "degraded";
        case ServeOutcome::kTimedOut: return "timed_out";
        case ServeOutcome::kDraining: return "draining";
    }
    return "unknown";
}

}  // namespace tsched::serve
