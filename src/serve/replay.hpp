// Trace replay driver: the measurement loop shared by tools/tsched_serve and
// bench/bench_serve.
//
// Replays a .tsr request stream against a ServeEngine in fixed-size batches
// and reports serving metrics: QPS, latency order statistics (p50/p95/p99
// over per-request submit->ready times), and cache behaviour.
//
// Protocol: all requests are materialized (descriptor -> Problem) *before*
// the clock starts, so cache-on and cache-off runs time exactly the same
// non-serving work; the stream is then replayed `epochs` times against one
// persistent engine.  Epochs model steady-state serving — a cache outlives
// any single pass of traffic — and are reported as one aggregate window.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/reporter.hpp"
#include "serve/request_trace.hpp"
#include "serve/serve_engine.hpp"

namespace tsched::serve {

struct ReplayOptions {
    ServeConfig config;
    std::size_t batch = 16;  ///< requests submitted per run_batch call (>= 1)
    std::size_t epochs = 1;  ///< full passes over the stream (>= 1)

    /// Per-request latency budget stamped on every replayed request
    /// (<= 0 = no deadline); see ScheduleRequest::deadline_ms.
    double deadline_ms = 0.0;
    /// Per-batch wall budget for run_batch (<= 0 = wait forever); futures
    /// not ready in time surface as synthetic kTimedOut results instead of
    /// hanging the replay.
    double wait_budget_ms = 0.0;

    /// Live telemetry during the replay: when `metrics.path` is non-empty a
    /// MetricsReporter flushes the engine's obs snapshot there — on the
    /// reporter's background interval, or (metrics_per_epoch) synchronously
    /// once after every epoch, giving one JSONL line per pass with no timer
    /// nondeterminism.  The final state is always flushed at end of replay.
    obs::ReporterOptions metrics;
    bool metrics_per_epoch = false;
};

struct ReplayReport {
    std::size_t requests = 0;  ///< total served (stream length x epochs)
    double wall_ms = 0.0;
    double qps = 0.0;
    double latency_mean_ms = 0.0;
    // Exact order statistics over the full per-request latency vector
    // (quantile_sorted: interpolated; max is the largest observation).
    double latency_p50_ms = 0.0;
    double latency_p95_ms = 0.0;
    double latency_p99_ms = 0.0;
    double latency_p999_ms = 0.0;
    double latency_max_ms = 0.0;
    // The same latencies pushed through an obs::LatencyHistogram — what a
    // live collector would see instead of the exact vector.  Each hist_*
    // percentile must sit within LatencyHistogram::kMaxRelativeError of the
    // exact nearest-rank value (bench_serve --check asserts this every run).
    double hist_p50_ms = 0.0;
    double hist_p95_ms = 0.0;
    double hist_p99_ms = 0.0;
    double hist_p999_ms = 0.0;
    obs::HistogramSnapshot latency_hist;

    // Outcome tally over the *returned results* (caller view: run_batch
    // wait-budget timeouts count here even though the promise side may
    // later resolve differently).  ok+shed+degraded+timed_out+draining ==
    // requests.
    std::uint64_t ok = 0;
    std::uint64_t shed = 0;
    std::uint64_t degraded = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t draining = 0;

    EngineStats stats;  ///< engine totals at end of replay (hit rate etc.)
    obs::MetricsSnapshot metrics;  ///< engine obs document at end of replay

    /// Fraction of replayed requests refused by admission control.
    [[nodiscard]] double shed_rate() const noexcept {
        return requests > 0 ? static_cast<double>(shed) / static_cast<double>(requests) : 0.0;
    }
    /// Fraction of replayed requests whose latency budget was missed.
    [[nodiscard]] double deadline_hit_rate() const noexcept {
        return requests > 0 ? static_cast<double>(timed_out) / static_cast<double>(requests)
                            : 0.0;
    }
};

/// Replay `trace` on a fresh engine over `pool`; see protocol above.
[[nodiscard]] ReplayReport replay_trace(const std::vector<TraceRequest>& trace,
                                        const ReplayOptions& options, ThreadPool& pool);

}  // namespace tsched::serve
