// Trace replay driver: the measurement loop shared by tools/tsched_serve and
// bench/bench_serve.
//
// Replays a .tsr request stream against a ServeEngine in fixed-size batches
// and reports serving metrics: QPS, latency order statistics (p50/p95/p99
// over per-request submit->ready times), and cache behaviour.
//
// Protocol: all requests are materialized (descriptor -> Problem) *before*
// the clock starts, so cache-on and cache-off runs time exactly the same
// non-serving work; the stream is then replayed `epochs` times against one
// persistent engine.  Epochs model steady-state serving — a cache outlives
// any single pass of traffic — and are reported as one aggregate window.
#pragma once

#include <cstddef>
#include <vector>

#include "serve/request_trace.hpp"
#include "serve/serve_engine.hpp"

namespace tsched::serve {

struct ReplayOptions {
    ServeConfig config;
    std::size_t batch = 16;  ///< requests submitted per run_batch call (>= 1)
    std::size_t epochs = 1;  ///< full passes over the stream (>= 1)
};

struct ReplayReport {
    std::size_t requests = 0;  ///< total served (stream length x epochs)
    double wall_ms = 0.0;
    double qps = 0.0;
    double latency_mean_ms = 0.0;
    double latency_p50_ms = 0.0;
    double latency_p95_ms = 0.0;
    double latency_p99_ms = 0.0;
    EngineStats stats;  ///< engine totals at end of replay (hit rate etc.)
};

/// Replay `trace` on a fresh engine over `pool`; see protocol above.
[[nodiscard]] ReplayReport replay_trace(const std::vector<TraceRequest>& trace,
                                        const ReplayOptions& options, ThreadPool& pool);

}  // namespace tsched::serve
