#include "serve/replay.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace tsched::serve {

ReplayReport replay_trace(const std::vector<TraceRequest>& trace, const ReplayOptions& options,
                          ThreadPool& pool) {
    if (options.batch == 0) throw std::invalid_argument("replay_trace: batch must be >= 1");
    if (options.epochs == 0) throw std::invalid_argument("replay_trace: epochs must be >= 1");

    std::vector<ScheduleRequest> prepared;
    prepared.reserve(trace.size());
    for (const TraceRequest& r : trace) {
        prepared.push_back(materialize(r));
        prepared.back().deadline_ms = options.deadline_ms;
    }

    ServeEngine engine(options.config, pool);
    std::uint64_t report_ok = 0;
    std::uint64_t report_shed = 0;
    std::uint64_t report_degraded = 0;
    std::uint64_t report_timed_out = 0;
    std::uint64_t report_draining = 0;
    std::vector<double> latencies;
    latencies.reserve(prepared.size() * options.epochs);
    // The histogram view of the same latencies: what a collector scraping
    // the live exports would base its percentiles on.  Filled here (library
    // call, not a TSCHED_OBS macro) so the histogram-vs-exact validation in
    // bench_serve --check runs in every build configuration.
    obs::LatencyHistogram latency_hist;

    // The reporter borrows the engine; declared after it so it stops (and
    // takes its final flush) before the engine can be torn down.
    obs::MetricsReporter reporter(options.metrics,
                                  [&engine] { return engine.metrics_snapshot(); });
    const bool live_metrics = !options.metrics.path.empty();
    if (live_metrics && !options.metrics_per_epoch) reporter.start();

    Stopwatch wall;
    for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
        for (std::size_t begin = 0; begin < prepared.size(); begin += options.batch) {
            const std::size_t end = std::min(begin + options.batch, prepared.size());
            std::vector<ScheduleRequest> batch(prepared.begin() + static_cast<std::ptrdiff_t>(begin),
                                               prepared.begin() + static_cast<std::ptrdiff_t>(end));
            for (const ServeResult& result :
                 engine.run_batch(std::move(batch), options.wait_budget_ms)) {
                latencies.push_back(result.latency_ms);
                latency_hist.record(result.latency_ms);
                switch (result.outcome) {
                    case ServeOutcome::kOk: ++report_ok; break;
                    case ServeOutcome::kShed: ++report_shed; break;
                    case ServeOutcome::kDegraded: ++report_degraded; break;
                    case ServeOutcome::kTimedOut: ++report_timed_out; break;
                    case ServeOutcome::kDraining: ++report_draining; break;
                }
            }
        }
        if (live_metrics && options.metrics_per_epoch) reporter.flush();
    }
    const double wall_ms = wall.elapsed_ms();
    reporter.stop();  // background mode: final flush; per-epoch mode: no-op

    ReplayReport report;
    report.requests = latencies.size();
    report.wall_ms = wall_ms;
    report.qps =
        wall_ms > 0.0 ? static_cast<double>(report.requests) / (wall_ms / 1e3) : 0.0;
    report.latency_hist = latency_hist.snapshot();
    if (!latencies.empty()) {
        double sum = 0.0;
        for (const double l : latencies) sum += l;
        report.latency_mean_ms = sum / static_cast<double>(latencies.size());
        std::sort(latencies.begin(), latencies.end());
        report.latency_p50_ms = quantile_sorted(latencies, 0.50);
        report.latency_p95_ms = quantile_sorted(latencies, 0.95);
        report.latency_p99_ms = quantile_sorted(latencies, 0.99);
        report.latency_p999_ms = quantile_sorted(latencies, 0.999);
        report.latency_max_ms = latencies.back();
        report.hist_p50_ms = report.latency_hist.quantile(0.50);
        report.hist_p95_ms = report.latency_hist.quantile(0.95);
        report.hist_p99_ms = report.latency_hist.quantile(0.99);
        report.hist_p999_ms = report.latency_hist.quantile(0.999);
    }
    report.ok = report_ok;
    report.shed = report_shed;
    report.degraded = report_degraded;
    report.timed_out = report_timed_out;
    report.draining = report_draining;
    report.stats = engine.stats();
    report.metrics = engine.metrics_snapshot();
    return report;
}

}  // namespace tsched::serve
