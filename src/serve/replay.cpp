#include "serve/replay.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace tsched::serve {

ReplayReport replay_trace(const std::vector<TraceRequest>& trace, const ReplayOptions& options,
                          ThreadPool& pool) {
    if (options.batch == 0) throw std::invalid_argument("replay_trace: batch must be >= 1");
    if (options.epochs == 0) throw std::invalid_argument("replay_trace: epochs must be >= 1");

    std::vector<ScheduleRequest> prepared;
    prepared.reserve(trace.size());
    for (const TraceRequest& r : trace) prepared.push_back(materialize(r));

    ServeEngine engine(options.config, pool);
    std::vector<double> latencies;
    latencies.reserve(prepared.size() * options.epochs);

    Stopwatch wall;
    for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
        for (std::size_t begin = 0; begin < prepared.size(); begin += options.batch) {
            const std::size_t end = std::min(begin + options.batch, prepared.size());
            std::vector<ScheduleRequest> batch(prepared.begin() + static_cast<std::ptrdiff_t>(begin),
                                               prepared.begin() + static_cast<std::ptrdiff_t>(end));
            for (const ServeResult& result : engine.run_batch(std::move(batch)))
                latencies.push_back(result.latency_ms);
        }
    }
    const double wall_ms = wall.elapsed_ms();

    ReplayReport report;
    report.requests = latencies.size();
    report.wall_ms = wall_ms;
    report.qps =
        wall_ms > 0.0 ? static_cast<double>(report.requests) / (wall_ms / 1e3) : 0.0;
    if (!latencies.empty()) {
        double sum = 0.0;
        for (const double l : latencies) sum += l;
        report.latency_mean_ms = sum / static_cast<double>(latencies.size());
        std::sort(latencies.begin(), latencies.end());
        report.latency_p50_ms = quantile_sorted(latencies, 0.50);
        report.latency_p95_ms = quantile_sorted(latencies, 0.95);
        report.latency_p99_ms = quantile_sorted(latencies, 0.99);
    }
    report.stats = engine.stats();
    return report;
}

}  // namespace tsched::serve
