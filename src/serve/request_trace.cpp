#include "serve/request_trace.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace tsched::serve {

namespace {

void write_double(std::ostream& os, double x) {
    os << std::setprecision(17) << x;
}

[[noreturn]] void parse_error(std::size_t line, const std::string& what) {
    throw std::runtime_error("tsr line " + std::to_string(line) + ": " + what);
}

}  // namespace

workload::InstanceParams trace_instance_params(const TraceRequest& request) {
    workload::InstanceParams params;
    params.shape = request.shape;
    params.size = request.size;
    params.num_procs = request.procs;
    params.net = request.net;
    params.ccr = request.ccr;
    params.beta = request.beta;
    return params;
}

ScheduleRequest materialize(const TraceRequest& request) {
    ScheduleRequest out;
    out.problem = std::make_shared<const Problem>(
        workload::make_instance(trace_instance_params(request), request.seed));
    out.algo = request.algo;
    return out;
}

void write_tsr(std::ostream& os, const std::vector<TraceRequest>& requests) {
    os << "tsr 1\n";
    for (const TraceRequest& r : requests) {
        os << "r " << r.algo << ' ' << workload::shape_name(r.shape) << ' ' << r.size << ' '
           << r.procs << ' ' << workload::net_name(r.net) << ' ';
        write_double(os, r.ccr);
        os << ' ';
        write_double(os, r.beta);
        os << ' ' << r.seed << '\n';
    }
}

std::string to_tsr(const std::vector<TraceRequest>& requests) {
    std::ostringstream os;
    write_tsr(os, requests);
    return os.str();
}

std::vector<TraceRequest> read_tsr(std::istream& is) {
    std::vector<TraceRequest> requests;
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;
    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag)) continue;  // blank / comment-only line
        if (!saw_header) {
            if (tag != "tsr") parse_error(line_no, "expected 'tsr <version>' header");
            int version = 0;
            if (!(ls >> version) || version != 1)
                parse_error(line_no, "unsupported tsr version (expected 1)");
            saw_header = true;
            continue;
        }
        if (tag != "r") parse_error(line_no, "unknown record '" + tag + "'");
        TraceRequest r;
        std::string shape;
        std::string net;
        if (!(ls >> r.algo >> shape >> r.size >> r.procs >> net >> r.ccr >> r.beta >> r.seed))
            parse_error(line_no, "malformed request record");
        try {
            r.shape = workload::shape_from_name(shape);
            r.net = workload::net_from_name(net);
        } catch (const std::invalid_argument& e) {
            parse_error(line_no, e.what());
        }
        if (r.size == 0 || r.procs == 0) parse_error(line_no, "size and procs must be > 0");
        requests.push_back(std::move(r));
    }
    if (!saw_header) throw std::runtime_error("tsr: missing 'tsr 1' header");
    return requests;
}

std::vector<TraceRequest> read_tsr_string(const std::string& text) {
    std::istringstream is(text);
    return read_tsr(is);
}

void save_tsr(const std::string& path, const std::vector<TraceRequest>& requests) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot open for writing: " + path);
    write_tsr(os, requests);
}

std::vector<TraceRequest> load_tsr(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open: " + path);
    return read_tsr(is);
}

std::vector<TraceRequest> generate_trace(const TraceGenParams& params) {
    if (params.requests == 0) return {};
    if (params.algos.empty() || params.shapes.empty())
        throw std::invalid_argument("generate_trace: empty algo/shape set");
    if (params.repeat_frac < 0.0 || params.repeat_frac >= 1.0)
        throw std::invalid_argument("generate_trace: repeat_frac must be in [0, 1)");

    const auto repeats =
        static_cast<std::size_t>(static_cast<double>(params.requests) * params.repeat_frac);
    const std::size_t fresh = params.requests - repeats;

    Rng rng(mix_seed(params.seed, 0x747372ULL));  // "tsr"
    std::vector<TraceRequest> stream;
    stream.reserve(params.requests);
    for (std::size_t i = 0; i < fresh; ++i) {
        TraceRequest r;
        r.algo = params.algos[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(params.algos.size()) - 1))];
        r.shape = params.shapes[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(params.shapes.size()) - 1))];
        r.size = params.size;
        r.procs = params.procs;
        r.net = params.net;
        r.ccr = params.ccr;
        r.beta = params.beta;
        // The perturbation: a fresh seed gives a new topology + cost draw of
        // the same family, i.e. a distinct fingerprint.
        r.seed = mix_seed(params.seed, i + 1);
        stream.push_back(std::move(r));
    }
    for (std::size_t i = 0; i < repeats; ++i) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(fresh) - 1));
        stream.push_back(stream[pick]);
    }
    rng.shuffle(stream);
    return stream;
}

}  // namespace tsched::serve
