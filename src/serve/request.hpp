// Scheduling-as-a-service request/result types and the canonical request
// fingerprint.
//
// A ScheduleRequest is the unit of traffic the serving layer handles: one
// (problem, algorithm, options) triple whose answer is an immutable
// Schedule.  Requests are content-addressed by a 64-bit FNV-1a fingerprint
// over the *canonicalized* request so that fingerprint-identical requests
// can share one cached computation (see serve_engine.hpp).
//
// Canonicalization rules (DESIGN §12; append-only — revving any rule must
// bump kFingerprintVersion so stale caches cannot alias):
//   graph     — task count, then per task (in id order): work and the
//               successor list in insertion order as (dst, data) pairs.
//               Task *names are excluded*: they are cosmetic and never
//               influence a scheduling decision.
//   costs     — the full execution-cost matrix, row-major.
//   machine   — processor count, speeds, and the link model canonicalized
//               *behaviorally*: comm_time(0, p, q) and comm_time(1, p, q)
//               for every ordered pair p != q plus mean_comm_time(1, P).
//               Every link model in the tree is affine in the data volume
//               (t = L(p,q) + data / B(p,q)), so the two sample volumes pin
//               the whole function; hashing behaviour instead of the
//               concrete class means a TopologyLinkModel::fully_connected
//               and a UniformLinkModel with equal parameters hash equal —
//               and schedule identically.
//   algo      — the registry name, length-prefixed.
//   options   — the canonical option string, length-prefixed ("" today;
//               forward-compatible hook for per-request knobs).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "platform/problem.hpp"
#include "sched/schedule.hpp"

namespace tsched::serve {

/// Bump whenever a canonicalization rule above changes.
inline constexpr std::uint64_t kFingerprintVersion = 1;

struct ScheduleRequest {
    std::shared_ptr<const Problem> problem;
    std::string algo = "heft";
    /// Canonical option string (free-form, hashed into the fingerprint).
    std::string options;
    /// Latency budget in wall milliseconds; <= 0 means no deadline.  The
    /// deadline is *excluded from the fingerprint* on purpose: two requests
    /// for the same (problem, algo, options) share one cached computation no
    /// matter how patient their callers are.  The serving layer checks the
    /// budget at dequeue (expired work is never started) and at completion
    /// (late results resolve as kTimedOut); see serve_engine.hpp.
    double deadline_ms = 0.0;
};

/// How the serving layer answered a request (DESIGN §16).  Anything other
/// than kOk is an overload- or lifecycle-degraded answer; exceptions (a
/// throwing scheduler, a failed pool handoff) propagate through the future
/// instead of appearing here.
enum class ServeOutcome : std::uint8_t {
    kOk = 0,        ///< full answer (computed, coalesced, or cache hit)
    kShed = 1,      ///< refused by the admission controller (budget exhausted)
    kDegraded = 2,  ///< answered by the cheap substitute algorithm
    kTimedOut = 3,  ///< deadline expired before (or by the time) the answer was ready
    kDraining = 4,  ///< engine was shutting down; request not served
};

/// Stable lower-case name ("ok", "shed", "degraded", "timed_out",
/// "draining") for reports and JSON.
[[nodiscard]] const char* outcome_name(ServeOutcome outcome) noexcept;

struct ServeResult {
    std::shared_ptr<const Schedule> schedule;
    std::uint64_t fingerprint = 0;
    bool cache_hit = false;   ///< served from a completed cache entry
    bool coalesced = false;   ///< waited on an identical in-flight computation
    double latency_ms = 0.0;  ///< submit -> result-ready wall time
    /// How the request was answered.  kOk and kDegraded carry a schedule;
    /// kShed and kDraining never do; kTimedOut carries one only when the
    /// computation finished (late) — a dequeue-time expiry never starts it.
    ServeOutcome outcome = ServeOutcome::kOk;
};

/// Canonical fingerprint of the graph + cost matrix + machine (rules above).
[[nodiscard]] std::uint64_t fingerprint_problem(const Problem& problem);

/// Canonical fingerprint of a full request: version tag, problem, algo,
/// options.
[[nodiscard]] std::uint64_t fingerprint_request(const ScheduleRequest& request);

}  // namespace tsched::serve
