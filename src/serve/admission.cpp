#include "serve/admission.hpp"

#include <chrono>
#include <utility>

namespace tsched::serve {

Ticket AdmissionController::create_entry_locked(std::uint64_t fp, Waiter owner) {
    const Ticket ticket = next_ticket_++;
    Entry entry;
    entry.fp = fp;
    entry.waiters.push_back(std::move(owner));
    entries_.emplace(ticket, std::move(entry));
    // emplace (not operator[]): when a second entry for one fp appears —
    // possible in bounded mode when a twin queued while none ran — the first
    // registration keeps the coalesce slot and the duplicate computes alone.
    if (options_.enable_dedup) coalesce_.emplace(fp, ticket);
    if (entries_.size() > stats_.inflight_peak) stats_.inflight_peak = entries_.size();
    return ticket;
}

AdmitDecision AdmissionController::admit(
    std::uint64_t fp, ScheduleRequest request, Waiter owner,
    const std::function<std::shared_ptr<const Schedule>()>& peek_cache) {
    AdmitDecision decision;
    LockGuard lock(inflight_mutex_);

    if (draining_) {
        decision.action = AdmitAction::kDraining;
        decision.to_resolve.push_back({std::move(owner), ServeOutcome::kDraining});
        return decision;
    }

    if (options_.enable_dedup) {
        if (const auto it = coalesce_.find(fp); it != coalesce_.end()) {
            owner.coalesced = true;
            entries_[it->second].waiters.push_back(std::move(owner));
            decision.action = AdmitAction::kCoalesced;
            return decision;
        }
        // Double-check the cache under the in-flight lock: the computation
        // this request just missed may have completed and published between
        // the caller's lookup and here (lock order inflight -> cache shard).
        if (peek_cache) {
            if (auto hit = peek_cache()) {
                decision.action = AdmitAction::kCacheHit;
                decision.hit = std::move(hit);
                decision.owner = std::move(owner);
                decision.request = std::move(request);
                return decision;
            }
        }
    }

    const bool bounded = options_.max_inflight > 0;
    if (!bounded || entries_.size() < options_.max_inflight) {
        decision.action = AdmitAction::kRun;
        decision.ticket = create_entry_locked(fp, std::move(owner));
        decision.request = std::move(request);
        return decision;
    }

    if (pending_.size() < options_.max_pending) {
        pending_.push_back({fp, std::move(request), std::move(owner)});
        ++stats_.queued;
        if (pending_.size() > stats_.pending_peak) stats_.pending_peak = pending_.size();
        decision.action = AdmitAction::kQueued;
        decision.pending_depth = pending_.size();
        return decision;
    }

    switch (options_.policy) {
        case ShedPolicy::kRejectNew:
            break;  // shed the newcomer below
        case ShedPolicy::kDropOldest:
            if (options_.max_pending == 0) break;  // nothing to drop: reject-new
            decision.to_resolve.push_back(
                {std::move(pending_.front().owner), ServeOutcome::kShed});
            pending_.pop_front();
            pending_.push_back({fp, std::move(request), std::move(owner)});
            ++stats_.queued;
            decision.action = AdmitAction::kQueued;
            decision.pending_depth = pending_.size();
            return decision;
        case ShedPolicy::kDegrade:
            decision.action = AdmitAction::kDegrade;
            decision.owner = std::move(owner);
            decision.request = std::move(request);
            return decision;
    }

    decision.action = AdmitAction::kShed;
    decision.to_resolve.push_back({std::move(owner), ServeOutcome::kShed});
    return decision;
}

CompleteResult AdmissionController::complete(Ticket ticket) {
    CompleteResult result;
    LockGuard lock(inflight_mutex_);
    const auto it = entries_.find(ticket);
    if (it == entries_.end()) return result;  // drain already expropriated it
    result.waiters = std::move(it->second.waiters);
    if (options_.enable_dedup) {
        const auto c = coalesce_.find(it->second.fp);
        if (c != coalesce_.end() && c->second == ticket) coalesce_.erase(c);
    }
    entries_.erase(it);

    // A slot freed: promote the first still-viable pending request.  Expired
    // ones are flushed as kTimedOut without ever starting (dequeue check);
    // a pending twin of a *running* fp coalesces onto it instead, keeping
    // the slot free for the next candidate.
    while (!draining_ && !pending_.empty() && entries_.size() < options_.max_inflight) {
        PendingRequest pending = std::move(pending_.front());
        pending_.pop_front();
        if (pending.owner.expired()) {
            result.to_resolve.push_back({std::move(pending.owner), ServeOutcome::kTimedOut});
            continue;
        }
        if (options_.enable_dedup) {
            if (const auto c = coalesce_.find(pending.fp); c != coalesce_.end()) {
                pending.owner.coalesced = true;
                entries_[c->second].waiters.push_back(std::move(pending.owner));
                continue;
            }
        }
        Promoted promoted;
        promoted.fp = pending.fp;
        promoted.submitted = pending.owner.submitted;
        promoted.ticket = create_entry_locked(pending.fp, std::move(pending.owner));
        promoted.request = std::move(pending.request);
        ++stats_.promoted;
        result.next = std::move(promoted);
        break;
    }

    if (entries_.empty()) idle_cv_.notify_all();
    return result;
}

bool AdmissionController::skip_at_dequeue(Ticket ticket) const {
    LockGuard lock(inflight_mutex_);
    const auto it = entries_.find(ticket);
    if (it == entries_.end()) return true;  // drained away; nothing to serve
    for (const Waiter& waiter : it->second.waiters) {
        if (!waiter.expired()) return false;
    }
    return true;  // every deadline already blown: never start the work
}

std::vector<ShedWaiter> AdmissionController::begin_drain() {
    std::vector<ShedWaiter> flushed;
    LockGuard lock(inflight_mutex_);
    draining_ = true;
    while (!pending_.empty()) {
        flushed.push_back({std::move(pending_.front().owner), ServeOutcome::kDraining});
        pending_.pop_front();
    }
    if (entries_.empty()) idle_cv_.notify_all();
    return flushed;
}

bool AdmissionController::await_idle(double timeout_ms) {
    UniqueLock lock(inflight_mutex_);
    if (timeout_ms <= 0.0) {
        while (!entries_.empty()) idle_cv_.wait(lock);
        return true;
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double, std::milli>(timeout_ms);
    while (!entries_.empty()) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return false;
        idle_cv_.wait_for(lock, deadline - now);
    }
    return true;
}

std::vector<Waiter> AdmissionController::expropriate() {
    std::vector<Waiter> claimed;
    LockGuard lock(inflight_mutex_);
    for (auto& [ticket, entry] : entries_) {
        for (Waiter& waiter : entry.waiters) claimed.push_back(std::move(waiter));
    }
    entries_.clear();
    coalesce_.clear();
    idle_cv_.notify_all();
    return claimed;
}

AdmissionStats AdmissionController::stats() const {
    LockGuard lock(inflight_mutex_);
    return stats_;
}

std::size_t AdmissionController::inflight() const {
    LockGuard lock(inflight_mutex_);
    return entries_.size();
}

std::size_t AdmissionController::pending_depth() const {
    LockGuard lock(inflight_mutex_);
    return pending_.size();
}

bool AdmissionController::draining() const {
    LockGuard lock(inflight_mutex_);
    return draining_;
}

}  // namespace tsched::serve
