// Static schedule representation.
//
// A Schedule maps every task to one or more *placements* (processor, start,
// finish).  More than one placement per task arises only from duplication
// heuristics (DSH, BTDH, ILS-D): a consumer may read a task's output from
// any placement, whichever makes its data available earliest.
//
// The schedule length (makespan) is the latest finish time over all
// placements — the conservative, standard definition: even a useless
// duplicate occupies its processor until it finishes.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/dag.hpp"
#include "platform/link_model.hpp"

namespace tsched {

struct Placement {
    TaskId task = kInvalidTask;
    ProcId proc = kInvalidProc;
    double start = 0.0;
    double finish = 0.0;

    [[nodiscard]] double duration() const noexcept { return finish - start; }
    friend bool operator==(const Placement&, const Placement&) = default;
};

class Schedule {
public:
    Schedule(std::size_t num_tasks, std::size_t num_procs);

    [[nodiscard]] std::size_t num_tasks() const noexcept { return num_tasks_; }
    [[nodiscard]] std::size_t num_procs() const noexcept { return num_procs_; }

    /// Record a placement.  Throws std::invalid_argument for out-of-range
    /// ids or negative/inverted times.  Overlap/precedence feasibility is
    /// the validator's job, not enforced here.
    void add(TaskId task, ProcId proc, double start, double finish);

    /// Remove and return the most recently added placement of `task` —
    /// the undo primitive behind ScheduleBuilder::rollback.  Throws
    /// std::out_of_range when the task has no placement.
    Placement remove_last(TaskId task);

    /// All placements of `task` in insertion order (first is the "primary"
    /// placement; duplicates follow).  Empty if the task was never placed.
    [[nodiscard]] std::span<const Placement> placements(TaskId task) const;

    /// The first-recorded placement of `task`; throws std::out_of_range when
    /// the task has none.
    [[nodiscard]] const Placement& primary(TaskId task) const;

    /// True when every task has at least one placement.
    [[nodiscard]] bool complete() const noexcept;

    /// Total number of placements (>= num_tasks when complete; the excess is
    /// the duplicate count).
    [[nodiscard]] std::size_t num_placements() const noexcept;
    [[nodiscard]] std::size_t num_duplicates() const noexcept;

    /// Latest finish over all placements (0 for an empty schedule).
    [[nodiscard]] double makespan() const noexcept;

    /// Placements on processor p sorted by start time.
    [[nodiscard]] std::vector<Placement> processor_timeline(ProcId p) const;

    /// Earliest time task's output is available *on* processor p, i.e.
    /// min over placements q of (finish + comm(data, q.proc, p)).
    /// Returns +inf when the task has no placement.
    [[nodiscard]] double data_available(TaskId task, ProcId p, double data,
                                        const LinkModel& links) const;

    /// Sum of idle time across all processors inside [0, makespan].
    [[nodiscard]] double total_idle_time() const;

    /// Human-readable multi-line rendering (one line per processor).
    [[nodiscard]] std::string to_string() const;

private:
    std::size_t num_tasks_;
    std::size_t num_procs_;
    std::vector<std::vector<Placement>> by_task_;
};

}  // namespace tsched
