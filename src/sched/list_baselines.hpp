// Classic list-scheduling baselines beyond the HEFT family:
//
//   * ETF     — Earliest Task First (Hwang, Chow, Anger, Lee; 1989): among
//               ready tasks pick the (task, processor) pair with the minimum
//               earliest *start* time; static level breaks ties.
//   * MCP     — Modified Critical Path (Wu, Gajski; 1990): tasks ordered by
//               ALAP start time (ties by successors' ALAPs), insertion-based
//               earliest-start placement.  Designed for homogeneous systems;
//               mean costs generalise it to heterogeneous ones.
//   * HLFET   — Highest Level First with Estimated Times (Adam, Chandy,
//               Dickson; 1974): decreasing static level, earliest-start
//               processor, non-insertion.
//   * Min-Min / Max-Min — the classic independent-task batch heuristics
//               applied to the ready set of the DAG.
//   * Random  — seeded random ready-task / random processor baseline: the
//               sanity floor every real heuristic must clear.
#pragma once

#include <cstdint>

#include "sched/scheduler.hpp"

namespace tsched {

class EtfScheduler final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "etf"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;
};

class McpScheduler final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "mcp"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;
};

class HlfetScheduler final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "hlfet"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;
};

class MinMinScheduler final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "minmin"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;
};

class MaxMinScheduler final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "maxmin"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;
};

class RandomScheduler final : public Scheduler {
public:
    explicit RandomScheduler(std::uint64_t seed = 0xbadc0ffeeULL) : seed_(seed) {}
    [[nodiscard]] std::string name() const override { return "random"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;

private:
    std::uint64_t seed_;
};

}  // namespace tsched
