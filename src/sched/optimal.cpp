#include "sched/optimal.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "graph/algorithms.hpp"
#include "sched/builder.hpp"
#include "sched/heft.hpp"

namespace tsched {

namespace {
constexpr double kTieEps = 1e-12;

struct SearchState {
    const Problem* problem = nullptr;
    std::vector<double> min_bottom_level;  // min-cost remaining chain incl. the task
    double min_work_total = 0.0;           // sum of per-task minimum costs
    double best_cost = std::numeric_limits<double>::infinity();
    Schedule best;
    std::size_t nodes = 0;
    std::size_t max_nodes = 0;
    bool truncated = false;

    explicit SearchState(const Problem& p)
        : problem(&p), best(p.num_tasks(), p.num_procs()) {}
};

/// Lower bound of any completion of the partial schedule in `builder` with
/// `done_work` committed busy time and `remaining_work` minimum cost of the
/// unscheduled tasks.
double lower_bound(const SearchState& state, const ScheduleBuilder& builder,
                   const std::vector<TaskId>& ready, double done_work, double remaining_work) {
    const Problem& problem = *state.problem;
    double bound = builder.current_makespan();
    // Capacity: all work must fit into P * makespan.
    bound = std::max(bound,
                     (done_work + remaining_work) / static_cast<double>(problem.num_procs()));
    // Chains: each ready task still needs its own minimum remaining path.
    for (const TaskId v : ready) {
        double start = std::numeric_limits<double>::infinity();
        for (std::size_t p = 0; p < problem.num_procs(); ++p) {
            start = std::min(start, builder.data_ready(v, static_cast<ProcId>(p)));
        }
        bound = std::max(bound, start + state.min_bottom_level[static_cast<std::size_t>(v)]);
    }
    return bound;
}

void search(SearchState& state, ScheduleBuilder& builder, std::vector<TaskId>& ready,
            std::vector<std::size_t>& pending, double done_work, double remaining_work) {
    const Problem& problem = *state.problem;
    if (state.truncated) return;
    if (++state.nodes > state.max_nodes) {
        state.truncated = true;
        return;
    }
    if (ready.empty()) {
        const double cost = builder.current_makespan();
        if (cost < state.best_cost - kTieEps) {
            state.best_cost = cost;
            state.best = builder.partial();
        }
        return;
    }
    if (lower_bound(state, builder, ready, done_work, remaining_work) >=
        state.best_cost - kTieEps) {
        return;  // cannot improve on the incumbent
    }

    // Branch over (ready task, processor); explore cheaper EFTs first so the
    // incumbent tightens quickly.
    struct Branch {
        std::size_t ready_idx;
        ProcId proc;
        double eft;
    };
    std::vector<Branch> branches;
    branches.reserve(ready.size() * problem.num_procs());
    for (std::size_t i = 0; i < ready.size(); ++i) {
        for (std::size_t p = 0; p < problem.num_procs(); ++p) {
            branches.push_back({i, static_cast<ProcId>(p),
                                builder.eft(ready[i], static_cast<ProcId>(p), false)});
        }
    }
    std::sort(branches.begin(), branches.end(), [](const Branch& a, const Branch& b) {
        if (a.eft != b.eft) return a.eft < b.eft;
        if (a.ready_idx != b.ready_idx) return a.ready_idx < b.ready_idx;
        return a.proc < b.proc;
    });

    const Dag& dag = problem.dag();
    for (const Branch& branch : branches) {
        if (state.truncated) return;
        const TaskId v = ready[branch.ready_idx];
        // Clone-and-commit: builders are value types, so backtracking is a
        // scope exit.  Fine at these instance sizes.
        ScheduleBuilder child = builder;
        const Placement pl = child.place(v, branch.proc, /*insertion=*/false);

        std::vector<TaskId> child_ready = ready;
        child_ready.erase(child_ready.begin() + static_cast<std::ptrdiff_t>(branch.ready_idx));
        for (const AdjEdge& e : dag.successors(v)) {
            if (--pending[static_cast<std::size_t>(e.task)] == 0) {
                child_ready.push_back(e.task);
            }
        }
        search(state, child, child_ready, pending,
               done_work + pl.duration(),
               remaining_work - problem.costs().min(v));
        for (const AdjEdge& e : dag.successors(v)) {
            ++pending[static_cast<std::size_t>(e.task)];
        }
    }
}
}  // namespace

BnbScheduler::Result BnbScheduler::solve(const Problem& problem) const {
    SearchState state(problem);
    state.max_nodes = max_nodes_;

    // Min-cost bottom levels (zero communication): valid remaining-chain
    // lower bounds for any placement.
    const Dag& dag = problem.dag();
    state.min_bottom_level.assign(problem.num_tasks(), 0.0);
    const auto order = topological_order(dag);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const TaskId v = *it;
        double succ_best = 0.0;
        for (const AdjEdge& e : dag.successors(v)) {
            succ_best =
                std::max(succ_best, state.min_bottom_level[static_cast<std::size_t>(e.task)]);
        }
        state.min_bottom_level[static_cast<std::size_t>(v)] =
            problem.costs().min(v) + succ_best;
        state.min_work_total += problem.costs().min(v);
    }

    // Incumbent: HEFT (strong initial bound, and the fallback answer).
    state.best = HeftScheduler().schedule(problem);
    state.best_cost = state.best.makespan();

    ScheduleBuilder builder(problem);
    std::vector<std::size_t> pending(problem.num_tasks());
    std::vector<TaskId> ready;
    for (std::size_t v = 0; v < problem.num_tasks(); ++v) {
        pending[v] = dag.in_degree(static_cast<TaskId>(v));
        if (pending[v] == 0) ready.push_back(static_cast<TaskId>(v));
    }
    search(state, builder, ready, pending, 0.0, state.min_work_total);

    Result result{std::move(state.best), !state.truncated, state.nodes};
    return result;
}

Schedule BnbScheduler::schedule(const Problem& problem) const {
    return solve(problem).schedule;
}

}  // namespace tsched
