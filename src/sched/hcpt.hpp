// HCPT — Heterogeneous Critical Parent Trees (Hagras, Janecek; 2003).
//
// Listing phase: tasks with zero slack (ALST == AEST under mean costs) are
// the critical tasks; they are pushed on a stack in decreasing-ALST order,
// and each is emitted only after its unlisted parents (smallest-ALST parent
// first), producing a precedence-closed priority list that follows critical
// parent chains.  Machine assignment is insertion-based EFT.
#pragma once

#include "sched/scheduler.hpp"

namespace tsched {

class HcptScheduler final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "hcpt"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;
};

}  // namespace tsched
