// Contention-aware HEFT (the Sinnen & Sousa one-port lineage).
//
// Classic list schedulers assume unlimited concurrent transfers; experiment
// E16 shows that assumption costs 3–7x realised makespan on a one-port
// network.  CaHeft fixes the model inside the scheduler: while building the
// schedule it books every cross-processor transfer on the sender's outbound
// and receiver's inbound port (FIFO), so each task's start time already
// includes the communication serialization the network will impose.
//
// Priorities are HEFT's mean upward rank; placement is append-based (ports
// make hole-filling ill-defined).  The emitted schedule is also valid under
// the contention-free validator — contention only delays starts — but its
// makespan is an *executable* one-port makespan, which is the number to
// compare against simulate_contended() replays of contention-blind
// schedules.
#pragma once

#include "sched/scheduler.hpp"

namespace tsched {

class CaHeftScheduler final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "ca-heft"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;
};

}  // namespace tsched
