// DLS — Dynamic Level Scheduling (Sih, Lee; IEEE TPDS 1993), in its
// heterogeneous formulation.
//
// At every step the pair (ready task, processor) maximising the dynamic
// level  DL(v, p) = SL(v) − max(DA(v, p), TF(p)) + Δ(v, p)  is scheduled,
// where SL is the communication-free static level over mean costs, DA the
// data-ready time, TF the processor-free time, and Δ(v, p) = w̄(v) − w(v, p)
// rewards placing a task on a processor that runs it faster than average.
// Placement is non-insertion (end of the processor queue), as in the paper.
#pragma once

#include "sched/scheduler.hpp"

namespace tsched {

class DlsScheduler final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "dls"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;
};

}  // namespace tsched
