#include "sched/lookahead_heft.hpp"

#include <algorithm>
#include <limits>

#include "obs/obs.hpp"
#include "sched/builder.hpp"
#include "sched/ranks.hpp"
#include "trace/decision.hpp"
#include "trace/trace.hpp"

#if TSCHED_OBS_ON
#include "util/stopwatch.hpp"
#endif

namespace tsched {

Schedule LookaheadHeftScheduler::schedule(const Problem& problem) const {
    return run(problem, nullptr);
}

Schedule LookaheadHeftScheduler::schedule_traced(const Problem& problem,
                                                 trace::TraceSink* sink) const {
    return run(problem, sink);
}

Schedule LookaheadHeftScheduler::run(const Problem& problem, trace::TraceSink* sink) const {
    TSCHED_SPAN("sched/lheft");
    const CsrAdjacency& csr = problem.dag().csr();
    const std::size_t procs = problem.num_procs();
    const auto ranks = upward_rank(problem, RankCost::kMean);
    std::vector<TaskId> order;
    {
        TSCHED_OBS_PHASE("sched/phase/priority_ms");
        order = order_by_decreasing(ranks);
    }

    const LinkModel& links = problem.machine().links();

    ScheduleBuilder builder(problem);
    // Per-task scratch: data-ready of each child on each processor from its
    // *other* (already placed) predecessors.  Those arrivals do not depend
    // on where v is tried, so they are computed once per task instead of
    // once per candidate; only v's own arrival varies with the trial
    // placement (max is commutative, so folding it in afterwards gives the
    // same value data_ready_partial would).
    std::vector<double> base_ready;
#if TSCHED_OBS_ON
    // Selection (lookahead trials) and placement (the final commit)
    // accumulate across the run into one histogram sample each, the same
    // boundary-timestamp pattern as HEFT: two clock reads per task.
    double selection_ms = 0.0;
    double placement_ms = 0.0;
    const Stopwatch loop_watch;
    double boundary_ms = 0.0;
#endif
    for (const TaskId v : order) {
        const auto succs = csr.succ_tasks(v);
        const auto succ_data = csr.succ_data(v);
        base_ready.assign(succs.size() * procs, 0.0);
        for (std::size_t ci = 0; ci < succs.size(); ++ci) {
            for (std::size_t qi = 0; qi < procs; ++qi) {
                base_ready[ci * procs + qi] =
                    builder.data_ready_partial(succs[ci], static_cast<ProcId>(qi));
            }
        }

        trace::DecisionRecord rec;
        ProcId best_proc = 0;
        double best_score = std::numeric_limits<double>::infinity();
        double best_eft = std::numeric_limits<double>::infinity();
        for (std::size_t pi = 0; pi < procs; ++pi) {
            const auto p = static_cast<ProcId>(pi);
            // Tentatively commit v on p, probe the children, roll back —
            // no per-candidate clone of the schedule state.
            const ScheduleBuilder::Checkpoint mark = builder.checkpoint();
            const Placement pl = builder.place(v, p, /*insertion=*/true);
            // Score: the worst over v's children of their best achievable
            // EFT given this tentative placement; childless tasks score by
            // their own finish.
            double score = pl.finish;
            for (std::size_t ci = 0; ci < succs.size(); ++ci) {
                double child_best = std::numeric_limits<double>::infinity();
                for (std::size_t qi = 0; qi < procs; ++qi) {
                    const auto q = static_cast<ProcId>(qi);
                    const double arrival = pl.finish + links.comm_time(succ_data[ci], p, q);
                    const double ready = std::max(base_ready[ci * procs + qi], arrival);
                    const double w = problem.exec_time(succs[ci], q);
                    const double est = builder.earliest_start(q, ready, w, true);
                    child_best = std::min(child_best, est + w);
                }
                score = std::max(score, child_best);
            }
            builder.rollback(mark);
            if (sink != nullptr) {
                // The lookahead score (worst child EFT after tentatively
                // committing v here) is what the selection minimises; the
                // bias column shows how much of it comes from the children.
                rec.candidates.push_back({p, pl.start, pl.finish, score - pl.finish, score});
            }
            if (score < best_score ||
                (score == best_score && pl.finish < best_eft)) {
                best_score = score;
                best_eft = pl.finish;
                best_proc = p;
            }
        }
#if TSCHED_OBS_ON
        const double select_end_ms = loop_watch.elapsed_ms();
        selection_ms += select_end_ms - boundary_ms;
#endif
        const Placement pl = builder.place(v, best_proc, true);
#if TSCHED_OBS_ON
        boundary_ms = loop_watch.elapsed_ms();
        placement_ms += boundary_ms - select_end_ms;
#endif
        if (sink != nullptr) {
            rec.task = v;
            rec.rank = ranks[static_cast<std::size_t>(v)];
            rec.chosen = best_proc;
            rec.start = pl.start;
            rec.finish = pl.finish;
            rec.reason = "min worst-child lookahead EFT, ties by own EFT";
            sink->record(std::move(rec));
        }
    }
#if TSCHED_OBS_ON
    TSCHED_OBS_RECORD("sched/phase/selection_ms", selection_ms);
    TSCHED_OBS_RECORD("sched/phase/placement_ms", placement_ms);
#endif
    return std::move(builder).take();
}

}  // namespace tsched
