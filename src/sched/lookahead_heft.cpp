#include "sched/lookahead_heft.hpp"

#include <algorithm>
#include <limits>

#include "sched/builder.hpp"
#include "sched/ranks.hpp"
#include "trace/decision.hpp"
#include "trace/trace.hpp"

namespace tsched {

Schedule LookaheadHeftScheduler::schedule(const Problem& problem) const {
    return run(problem, nullptr);
}

Schedule LookaheadHeftScheduler::schedule_traced(const Problem& problem,
                                                 trace::TraceSink* sink) const {
    return run(problem, sink);
}

Schedule LookaheadHeftScheduler::run(const Problem& problem, trace::TraceSink* sink) const {
    TSCHED_SPAN("sched/lheft");
    const Dag& dag = problem.dag();
    const std::size_t procs = problem.num_procs();
    const auto ranks = upward_rank(problem, RankCost::kMean);

    const LinkModel& links = problem.machine().links();

    ScheduleBuilder builder(problem);
    // Per-task scratch: data-ready of each child on each processor from its
    // *other* (already placed) predecessors.  Those arrivals do not depend
    // on where v is tried, so they are computed once per task instead of
    // once per candidate; only v's own arrival varies with the trial
    // placement (max is commutative, so folding it in afterwards gives the
    // same value data_ready_partial would).
    std::vector<double> base_ready;
    for (const TaskId v : order_by_decreasing(ranks)) {
        const auto succs = dag.successors(v);
        base_ready.assign(succs.size() * procs, 0.0);
        for (std::size_t ci = 0; ci < succs.size(); ++ci) {
            for (std::size_t qi = 0; qi < procs; ++qi) {
                base_ready[ci * procs + qi] =
                    builder.data_ready_partial(succs[ci].task, static_cast<ProcId>(qi));
            }
        }

        trace::DecisionRecord rec;
        ProcId best_proc = 0;
        double best_score = std::numeric_limits<double>::infinity();
        double best_eft = std::numeric_limits<double>::infinity();
        for (std::size_t pi = 0; pi < procs; ++pi) {
            const auto p = static_cast<ProcId>(pi);
            // Tentatively commit v on p, probe the children, roll back —
            // no per-candidate clone of the schedule state.
            const ScheduleBuilder::Checkpoint mark = builder.checkpoint();
            const Placement pl = builder.place(v, p, /*insertion=*/true);
            // Score: the worst over v's children of their best achievable
            // EFT given this tentative placement; childless tasks score by
            // their own finish.
            double score = pl.finish;
            for (std::size_t ci = 0; ci < succs.size(); ++ci) {
                const AdjEdge& e = succs[ci];
                double child_best = std::numeric_limits<double>::infinity();
                for (std::size_t qi = 0; qi < procs; ++qi) {
                    const auto q = static_cast<ProcId>(qi);
                    const double arrival = pl.finish + links.comm_time(e.data, p, q);
                    const double ready = std::max(base_ready[ci * procs + qi], arrival);
                    const double w = problem.exec_time(e.task, q);
                    const double est = builder.earliest_start(q, ready, w, true);
                    child_best = std::min(child_best, est + w);
                }
                score = std::max(score, child_best);
            }
            builder.rollback(mark);
            if (sink != nullptr) {
                // The lookahead score (worst child EFT after tentatively
                // committing v here) is what the selection minimises; the
                // bias column shows how much of it comes from the children.
                rec.candidates.push_back({p, pl.start, pl.finish, score - pl.finish, score});
            }
            if (score < best_score ||
                (score == best_score && pl.finish < best_eft)) {
                best_score = score;
                best_eft = pl.finish;
                best_proc = p;
            }
        }
        const Placement pl = builder.place(v, best_proc, true);
        if (sink != nullptr) {
            rec.task = v;
            rec.rank = ranks[static_cast<std::size_t>(v)];
            rec.chosen = best_proc;
            rec.start = pl.start;
            rec.finish = pl.finish;
            rec.reason = "min worst-child lookahead EFT, ties by own EFT";
            sink->record(std::move(rec));
        }
    }
    return std::move(builder).take();
}

}  // namespace tsched
