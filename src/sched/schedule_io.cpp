#include "sched/schedule_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace tsched {

void write_tss(std::ostream& os, const Schedule& schedule) {
    os << "# tsched schedule\n";
    os << "tss " << schedule.num_tasks() << ' ' << schedule.num_procs() << '\n';
    os << std::setprecision(17);
    for (std::size_t v = 0; v < schedule.num_tasks(); ++v) {
        for (const Placement& pl : schedule.placements(static_cast<TaskId>(v))) {
            os << "p " << v << ' ' << pl.proc << ' ' << pl.start << ' ' << pl.finish << '\n';
        }
    }
}

std::string to_tss(const Schedule& schedule) {
    std::ostringstream os;
    write_tss(os, schedule);
    return os.str();
}

Schedule read_tss(std::istream& is) {
    std::string line;
    std::size_t line_no = 0;
    bool header_seen = false;
    std::size_t num_tasks = 0;
    std::size_t num_procs = 0;
    Schedule schedule(0, 1);

    auto fail = [&](const std::string& what) -> void {
        throw std::runtime_error("read_tss: line " + std::to_string(line_no) + ": " + what);
    };

    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "tss") {
            if (header_seen) fail("duplicate header");
            if (!(ls >> num_tasks >> num_procs) || num_procs == 0) fail("malformed header");
            schedule = Schedule(num_tasks, num_procs);
            header_seen = true;
        } else if (tag == "p") {
            if (!header_seen) fail("placement before header");
            std::size_t task = 0;
            std::size_t proc = 0;
            double start = 0.0;
            double finish = 0.0;
            if (!(ls >> task >> proc >> start >> finish)) fail("malformed placement");
            if (task >= num_tasks || proc >= num_procs) fail("placement out of range");
            try {
                schedule.add(static_cast<TaskId>(task), static_cast<ProcId>(proc), start,
                             finish);
            } catch (const std::invalid_argument& err) {
                fail(err.what());
            }
        } else {
            fail("unknown record tag '" + tag + "'");
        }
    }
    if (!header_seen) throw std::runtime_error("read_tss: missing header");
    return schedule;
}

Schedule read_tss_string(const std::string& text) {
    std::istringstream is(text);
    return read_tss(is);
}

void save_tss(const std::string& path, const Schedule& schedule) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("save_tss: cannot open " + path);
    write_tss(out, schedule);
    if (!out) throw std::runtime_error("save_tss: write failed for " + path);
}

Schedule load_tss(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("load_tss: cannot open " + path);
    return read_tss(in);
}

}  // namespace tsched
