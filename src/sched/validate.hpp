// Independent schedule validator.
//
// Every scheduler's output is checked against three families of constraints
// (this is what the tests' property suites run on every produced schedule):
//   1. completeness & timing  — every task placed at least once; every
//      placement's duration equals the cost matrix entry for (task, proc);
//   2. processor exclusivity  — placements on one processor never overlap;
//   3. precedence             — a placement of v on p may not start before
//      every predecessor u has *some* placement whose output reaches p
//      (finish + comm time) by v's start.  Duplicate-aware by construction.
#pragma once

#include <string>
#include <vector>

#include "platform/problem.hpp"
#include "sched/schedule.hpp"

namespace tsched {

struct ValidationResult {
    bool ok = true;
    /// Up to `max_errors` messages; when more violations exist, the last
    /// entry is a "... and N more violation(s)" note.
    std::vector<std::string> errors;
    /// Total violations found, including ones truncated out of `errors`.
    std::size_t total_violations = 0;

    explicit operator bool() const noexcept { return ok; }
    /// All errors joined with newlines ("" when ok).
    [[nodiscard]] std::string message() const;
};

/// Validate `schedule` against `problem`.  `time_eps` absorbs floating-point
/// noise in start/finish bookkeeping; constraint checks allow violations up
/// to this amount.  Keeps up to `max_errors` messages (plus a truncation
/// note); `total_violations` always reflects the full count.
///
/// This is a compatibility shim over the coded diagnostics engine in
/// analysis/schedule_lints.hpp — new code should prefer lint_schedule, which
/// also reports quality findings (redundant duplicates, fragmentation, load
/// imbalance) with stable TS#### codes.
[[nodiscard]] ValidationResult validate(const Schedule& schedule, const Problem& problem,
                                        double time_eps = 1e-6, std::size_t max_errors = 16);

}  // namespace tsched
