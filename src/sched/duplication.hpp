// Task-duplication schedulers.
//
//   * DSH  — Duplication Scheduling Heuristic (Kruatrachue, Lewis; 1988):
//     while evaluating task v on processor p, the predecessor whose data
//     arrival binds v's start is copied into an idle slot on p whenever the
//     copy strictly lowers the arrival; the loop repeats until no single
//     duplication helps.
//
//   * BTDH — Bottom-up Top-down Duplication Heuristic (Chung, Liu; 1995,
//     implemented from the authors' published abstract: unlike DSH, BTDH
//     "allows tasks to be duplicated even though the duplication will
//     temporarily increase the earliest start time of some tasks").  Here
//     that translates to recursively duplicating the binding predecessor's
//     own binding ancestors first (which may transiently occupy slots
//     without an immediate gain) and keeping the whole attempt only when
//     the final EFT of v improves over the duplication-free placement.
//
// Both process tasks in decreasing static-level order (a topological order),
// clone the partial schedule per candidate processor, and adopt the clone
// with the smallest resulting finish time for v.
#pragma once

#include <cstddef>

#include "sched/scheduler.hpp"

namespace tsched {

class DshScheduler final : public Scheduler {
public:
    /// `max_dups_per_task` caps the duplication loop per (task, processor)
    /// evaluation, bounding worst-case cost on wide graphs.
    explicit DshScheduler(std::size_t max_dups_per_task = 8)
        : max_dups_(max_dups_per_task) {}

    [[nodiscard]] std::string name() const override { return "dsh"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;

private:
    std::size_t max_dups_;
};

class BtdhScheduler final : public Scheduler {
public:
    /// `max_depth` bounds the ancestor-chain recursion.
    explicit BtdhScheduler(std::size_t max_dups_per_task = 8, std::size_t max_depth = 3)
        : max_dups_(max_dups_per_task), max_depth_(max_depth) {}

    [[nodiscard]] std::string name() const override { return "btdh"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;

private:
    std::size_t max_dups_;
    std::size_t max_depth_;
};

}  // namespace tsched
