// Exact branch-and-bound scheduler — the optimality reference for small
// instances.
//
// The search enumerates semi-active schedules: at every node one (ready
// task, processor) pair is committed at its earliest start (append
// placement; enumerating ready orders makes insertion redundant).  Three
// lower bounds prune the tree:
//   * the current partial makespan;
//   * the capacity bound: (total committed busy time + minimum remaining
//     work) / P;
//   * the chain bound: for each ready task, its earliest possible start
//     plus the minimum-cost remaining path to an exit task.
// The incumbent is seeded with HEFT's schedule, so the search degrades
// gracefully: when the node budget is exhausted the best-found schedule
// (never worse than HEFT) is returned and `Result::proven_optimal` is
// false.
//
// Complexity is exponential — intended for n ≲ 12 tasks / small P, where it
// certifies how far the heuristics are from optimal (experiment E15).
#pragma once

#include <cstddef>

#include "sched/scheduler.hpp"

namespace tsched {

class BnbScheduler final : public Scheduler {
public:
    struct Result {
        Schedule schedule;
        bool proven_optimal = false;
        std::size_t nodes_explored = 0;
    };

    /// `max_nodes` caps the search-tree size; beyond it the incumbent is
    /// returned unproven.
    explicit BnbScheduler(std::size_t max_nodes = 2'000'000) : max_nodes_(max_nodes) {}

    [[nodiscard]] std::string name() const override { return "bnb"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;

    /// Full search result including the optimality certificate.
    [[nodiscard]] Result solve(const Problem& problem) const;

private:
    std::size_t max_nodes_;
};

}  // namespace tsched
