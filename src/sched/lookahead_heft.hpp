// Lookahead HEFT (Bittencourt, Sakellariou, Madeira; PDP 2010).
//
// HEFT's processor choice for v is re-scored by *tentatively committing* v
// and measuring the earliest finish its children could then achieve: for
// each candidate processor the schedule is cloned, v placed, and every child
// evaluated at its best EFT (unplaced other parents contribute nothing —
// the standard partial-ready estimate).  The candidate minimising the worst
// child's finish wins.  Roughly P times HEFT's cost.
#pragma once

#include "sched/scheduler.hpp"

namespace tsched {

class LookaheadHeftScheduler final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "lheft"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;
    [[nodiscard]] Schedule schedule_traced(const Problem& problem,
                                           trace::TraceSink* sink) const override;

private:
    [[nodiscard]] Schedule run(const Problem& problem, trace::TraceSink* sink) const;
};

}  // namespace tsched
