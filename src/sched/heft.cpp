#include "sched/heft.hpp"

#include "sched/builder.hpp"

namespace tsched {

std::string HeftScheduler::name() const {
    std::string n = "heft";
    if (rank_cost_ != RankCost::kMean) n += std::string("-") + rank_cost_name(rank_cost_);
    if (!insertion_) n += "-noins";
    return n;
}

Schedule HeftScheduler::schedule(const Problem& problem) const {
    ScheduleBuilder builder(problem);
    const auto ranks = upward_rank(problem, rank_cost_);
    for (const TaskId v : order_by_decreasing(ranks)) {
        ProcId best_proc = 0;
        double best_eft = builder.eft(v, 0, insertion_);
        for (std::size_t p = 1; p < problem.num_procs(); ++p) {
            const double candidate = builder.eft(v, static_cast<ProcId>(p), insertion_);
            if (candidate < best_eft) {
                best_eft = candidate;
                best_proc = static_cast<ProcId>(p);
            }
        }
        builder.place(v, best_proc, insertion_);
    }
    return std::move(builder).take();
}

}  // namespace tsched
