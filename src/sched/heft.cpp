#include "sched/heft.hpp"

#include "obs/obs.hpp"
#include "sched/builder.hpp"
#include "trace/decision.hpp"
#include "trace/trace.hpp"

#if TSCHED_OBS_ON
#include "util/stopwatch.hpp"
#endif

namespace tsched {

std::string HeftScheduler::name() const {
    std::string n = "heft";
    if (rank_cost_ != RankCost::kMean) n += std::string("-") + rank_cost_name(rank_cost_);
    if (!insertion_) n += "-noins";
    return n;
}

Schedule HeftScheduler::schedule(const Problem& problem) const { return run(problem, nullptr); }

Schedule HeftScheduler::schedule_traced(const Problem& problem, trace::TraceSink* sink) const {
    return run(problem, sink);
}

Schedule HeftScheduler::run(const Problem& problem, trace::TraceSink* sink) const {
    TSCHED_SPAN("sched/heft");
    ScheduleBuilder builder(problem);
    const auto ranks = upward_rank(problem, rank_cost_);
    std::vector<TaskId> order;
    {
        // Priority phase: the rank sort alone, so the rank / priority /
        // selection / placement histograms partition a run's wall time.
        TSCHED_OBS_PHASE("sched/phase/priority_ms");
        order = order_by_decreasing(ranks);
    }
#if TSCHED_OBS_ON
    // Selection (EFT scans) and placement (builder commits) interleave per
    // task, so accumulate each across the run and record one histogram
    // sample per schedule() call — the distribution is over runs, matching
    // the rank-phase granularity.  One watch and two reads per task: the
    // running boundary timestamp splits the interval, halving the clock
    // reads of the naive two-watch pattern (measurable at n = 10k).
    double selection_ms = 0.0;
    double placement_ms = 0.0;
    const Stopwatch loop_watch;
    double boundary_ms = 0.0;
#endif
    for (const TaskId v : order) {
        trace::DecisionRecord rec;
        ProcId best_proc = 0;
        double best_eft = builder.eft(v, 0, insertion_);
        if (sink != nullptr) {
            rec.candidates.push_back(
                {0, best_eft - problem.exec_time(v, 0), best_eft, 0.0, best_eft});
        }
        for (std::size_t p = 1; p < problem.num_procs(); ++p) {
            const double candidate = builder.eft(v, static_cast<ProcId>(p), insertion_);
            if (sink != nullptr) {
                rec.candidates.push_back({static_cast<ProcId>(p),
                                          candidate - problem.exec_time(v, static_cast<ProcId>(p)),
                                          candidate, 0.0, candidate});
            }
            if (candidate < best_eft) {
                best_eft = candidate;
                best_proc = static_cast<ProcId>(p);
            }
        }
#if TSCHED_OBS_ON
        const double select_end_ms = loop_watch.elapsed_ms();
        selection_ms += select_end_ms - boundary_ms;
#endif
        const Placement pl = builder.place(v, best_proc, insertion_);
#if TSCHED_OBS_ON
        boundary_ms = loop_watch.elapsed_ms();
        placement_ms += boundary_ms - select_end_ms;
#endif
        if (sink != nullptr) {
            rec.task = v;
            rec.rank = ranks[static_cast<std::size_t>(v)];
            rec.chosen = best_proc;
            rec.start = pl.start;
            rec.finish = pl.finish;
            rec.reason = insertion_ ? "min EFT (insertion)" : "min EFT (append)";
            sink->record(std::move(rec));
        }
    }
#if TSCHED_OBS_ON
    TSCHED_OBS_RECORD("sched/phase/selection_ms", selection_ms);
    TSCHED_OBS_RECORD("sched/phase/placement_ms", placement_ms);
#endif
    return std::move(builder).take();
}

}  // namespace tsched
