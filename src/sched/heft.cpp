#include "sched/heft.hpp"

#include "sched/builder.hpp"
#include "trace/decision.hpp"
#include "trace/trace.hpp"

namespace tsched {

std::string HeftScheduler::name() const {
    std::string n = "heft";
    if (rank_cost_ != RankCost::kMean) n += std::string("-") + rank_cost_name(rank_cost_);
    if (!insertion_) n += "-noins";
    return n;
}

Schedule HeftScheduler::schedule(const Problem& problem) const { return run(problem, nullptr); }

Schedule HeftScheduler::schedule_traced(const Problem& problem, trace::TraceSink* sink) const {
    return run(problem, sink);
}

Schedule HeftScheduler::run(const Problem& problem, trace::TraceSink* sink) const {
    TSCHED_SPAN("sched/heft");
    ScheduleBuilder builder(problem);
    const auto ranks = upward_rank(problem, rank_cost_);
    for (const TaskId v : order_by_decreasing(ranks)) {
        trace::DecisionRecord rec;
        ProcId best_proc = 0;
        double best_eft = builder.eft(v, 0, insertion_);
        if (sink != nullptr) {
            rec.candidates.push_back(
                {0, best_eft - problem.exec_time(v, 0), best_eft, 0.0, best_eft});
        }
        for (std::size_t p = 1; p < problem.num_procs(); ++p) {
            const double candidate = builder.eft(v, static_cast<ProcId>(p), insertion_);
            if (sink != nullptr) {
                rec.candidates.push_back({static_cast<ProcId>(p),
                                          candidate - problem.exec_time(v, static_cast<ProcId>(p)),
                                          candidate, 0.0, candidate});
            }
            if (candidate < best_eft) {
                best_eft = candidate;
                best_proc = static_cast<ProcId>(p);
            }
        }
        const Placement pl = builder.place(v, best_proc, insertion_);
        if (sink != nullptr) {
            rec.task = v;
            rec.rank = ranks[static_cast<std::size_t>(v)];
            rec.chosen = best_proc;
            rec.start = pl.start;
            rec.finish = pl.finish;
            rec.reason = insertion_ ? "min EFT (insertion)" : "min EFT (append)";
            sink->record(std::move(rec));
        }
    }
    return std::move(builder).take();
}

}  // namespace tsched
