// Per-processor busy-interval timeline with a bucketed gap index.
//
// ScheduleBuilder's insertion-based earliest_start used to walk every busy
// interval past the data-ready point; on big DAGs (10k+ tasks, thousands of
// intervals per processor) that linear scan dominates scheduling time.  This
// class keeps the intervals in fixed-capacity blocks, each summarised by its
// largest internal idle gap and latest finish, so a query can skip a whole
// block with one comparison when no gap inside it could possibly host the
// task.
//
// Byte-identity contract (the repo's golden batteries depend on it): the
// bucketed query returns exactly the start the linear scan would.  Candidate
// fits are always decided by the same floating-point test the linear scan
// uses (`fl(candidate + duration) <= start_i`); the block summary is only a
// conservative *screen*.  A block is skipped only when
//
//     duration > max_gap + 4·eps·(max_finish + |max_gap|) + 1e-300
//
// where max_gap is the largest raw internal gap (start_i − finish_{i−1}) in
// the block.  Any interval fit implies duration ≤ raw_gap + ulp(start)/2 +
// ulp(gap)/2 under round-to-nearest, which the margin above strictly
// dominates (ulp(x) ≤ 2·eps·|x| and both magnitudes are bounded by the
// block's max_finish) — so a skipped block provably contains no fit, and a
// block that might contain one is scanned with the exact per-interval test.
//
// Like the linear scan's binary-search cut, the query assumes a *feasible*
// timeline (sorted, non-overlapping intervals, hence non-decreasing
// finishes).  insert/erase make no such assumption — speculative duplication
// commits may overlap — matching the old flat-vector semantics exactly:
// insert lands before any equal-start run, erase scans the run for the exact
// (start, finish) pair.
//
// Mode::kLinear preserves the pre-index behaviour (one unbounded block, the
// verbatim linear scan) and is selected for one release via the
// TSCHED_LINEAR_TIMELINE environment variable; the large-n determinism
// battery diffs the two modes byte-for-byte.
#pragma once

#include <cstddef>
#include <vector>

namespace tsched {

/// One busy interval [start, finish) on a processor.
struct BusyInterval {
    double start = 0.0;
    double finish = 0.0;
};

class BusyTimeline {
public:
    enum class Mode {
        kLinear,    ///< flat vector + full linear gap scan (pre-index behaviour)
        kBucketed,  ///< blocked storage + gap-summary screen
    };

    /// Blocks split when they exceed twice this capacity; ~64 keeps a block
    /// within a couple of cache lines of summaries per thousand intervals
    /// while the in-block scan stays short.  Tests use tiny capacities to
    /// force deep block structure on small inputs.
    static constexpr std::size_t kDefaultBlockCapacity = 64;

    /// Mode selected by the environment: TSCHED_LINEAR_TIMELINE set to
    /// anything but "0" forces Mode::kLinear (escape hatch kept for one
    /// release); otherwise Mode::kBucketed.
    [[nodiscard]] static Mode default_mode();

    explicit BusyTimeline(Mode mode = Mode::kBucketed,
                          std::size_t block_capacity = kDefaultBlockCapacity);

    // Query tallies (probes, skipped blocks/intervals) accumulate in plain
    // per-object fields and reach the global trace counters once, at
    // destruction: a hot schedule issues ~10 probe decisions per query and
    // one relaxed atomic add per decision was measurable at n = 10k.  The
    // custom special members keep the pending tallies with exactly one owner
    // so nothing is flushed twice.  Like the builder's data-ready cache,
    // the tallies make const queries non-thread-safe per object.
    BusyTimeline(const BusyTimeline& other);
    BusyTimeline& operator=(const BusyTimeline& other);
    BusyTimeline(BusyTimeline&& other) noexcept;
    BusyTimeline& operator=(BusyTimeline&& other) noexcept;
    ~BusyTimeline();

    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] Mode mode() const noexcept { return mode_; }

    /// Finish of the last interval in start order (0 when empty): the
    /// processor-available time used by append (non-insertion) placement.
    [[nodiscard]] double last_finish() const noexcept;

    /// Start of the first gap at or after `ready` that fits `duration`,
    /// byte-identical to the linear scan.  Precondition: feasible timeline.
    [[nodiscard]] double earliest_start(double ready, double duration) const;

    /// Insert before any run of equal starts (flat-order position).
    void insert(BusyInterval iv);

    /// Remove the exact (start, finish) interval; false when absent.
    [[nodiscard]] bool erase(BusyInterval iv);

    /// All intervals in flat order (tests and diagnostics).
    [[nodiscard]] std::vector<BusyInterval> flatten() const;

    /// Number of storage blocks (1 linear block counts; tests assert splits).
    [[nodiscard]] std::size_t num_blocks() const noexcept { return blocks_.size(); }

private:
    struct Block {
        std::vector<BusyInterval> iv;
        double max_finish = 0.0;   ///< max finish within the block
        double max_gap = 0.0;      ///< max raw internal gap start_i − finish_{i−1}
        double first_start = 0.0;  ///< iv.front().start — lets the query walk
                                   ///< skipped blocks on summaries alone
    };

    static void rebuild_summary(Block& b);
    void split_block(std::size_t bi);
    void flush_tallies() noexcept;

    Mode mode_;
    std::size_t block_capacity_;
    std::vector<Block> blocks_;  // non-empty blocks in flat order
    std::size_t size_ = 0;

    // Pending trace-counter deltas, flushed at destruction (see above).
    mutable std::size_t probes_pending_ = 0;
    mutable std::size_t blocks_skipped_pending_ = 0;
    mutable std::size_t intervals_skipped_pending_ = 0;
};

}  // namespace tsched
