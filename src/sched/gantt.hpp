// Gantt-chart rendering of a schedule as a standalone SVG document — the
// figure every scheduling paper draws.  One horizontal lane per processor,
// one rectangle per placement (duplicates hatched lighter), a time axis with
// round ticks, and the makespan marked.
#pragma once

#include <string>

#include "graph/dag.hpp"
#include "sched/schedule.hpp"

namespace tsched {

struct GanttOptions {
    int width_px = 960;        ///< drawing width (time axis scales to fit)
    int lane_height_px = 28;
    bool show_labels = true;   ///< task names (from dag) or ids inside bars
    std::string title;         ///< optional chart title
};

/// Render `schedule` as SVG.  `dag` supplies task names for labels; pass
/// nullptr to label by TaskId.
[[nodiscard]] std::string to_svg(const Schedule& schedule, const Dag* dag = nullptr,
                                 const GanttOptions& options = {});

/// Write the SVG to `path`; throws std::runtime_error when the file cannot
/// be written.
void save_svg(const std::string& path, const Schedule& schedule, const Dag* dag = nullptr,
              const GanttOptions& options = {});

}  // namespace tsched
