#include "sched/duplication.hpp"

#include <limits>
#include <optional>
#include <utility>

#include "obs/obs.hpp"
#include "sched/builder.hpp"
#include "sched/ranks.hpp"
#include "trace/trace.hpp"

#if TSCHED_OBS_ON
#include "util/stopwatch.hpp"
#endif

namespace tsched {

namespace {
constexpr double kEps = 1e-12;

/// DSH inner loop: copy binding predecessors of v onto p while each single
/// copy strictly lowers v's data-ready time.  Returns the number of copies.
std::size_t duplicate_while_improving(ScheduleBuilder& trial, TaskId v, ProcId p,
                                      std::size_t max_dups) {
    const Problem& problem = trial.problem();
    std::size_t dups = 0;
    while (dups < max_dups) {
        const double ready = trial.data_ready(v, p);
        if (ready <= 0.0) break;
        const TaskId u = trial.binding_remote_pred(v, p, kEps);
        if (u == kInvalidTask) break;
        TSCHED_COUNT("duplication_attempts");
        const double u_ready = trial.data_ready(u, p);
        const double u_cost = problem.exec_time(u, p);
        // The copy must finish strictly before the current arrival to help.
        const auto slot = trial.find_slot_before(p, u_ready, u_cost, ready - kEps,
                                                 /*insertion=*/true);
        if (!slot) break;
        trial.place_duplicate_at(u, p, *slot);
        TSCHED_COUNT("duplication_accepted");
        ++dups;
        if (trial.data_ready(v, p) >= ready - kEps) break;  // no progress
    }
    return dups;
}

/// BTDH inner loop: before giving up on copying the binding predecessor u,
/// recursively improve u's own readiness on p by copying *its* binding
/// ancestors (these intermediate copies may not pay off immediately — the
/// caller accepts or rejects the whole trial by final EFT).
void duplicate_chain(ScheduleBuilder& trial, TaskId v, ProcId p, std::size_t max_dups,
                     std::size_t depth) {
    const Problem& problem = trial.problem();
    std::size_t dups = 0;
    while (dups < max_dups) {
        const double ready = trial.data_ready(v, p);
        if (ready <= 0.0) break;
        const TaskId u = trial.binding_remote_pred(v, p, kEps);
        if (u == kInvalidTask) break;
        TSCHED_COUNT("duplication_attempts");
        if (depth > 0) duplicate_chain(trial, u, p, max_dups, depth - 1);
        const double u_ready = trial.data_ready(u, p);
        const double u_cost = problem.exec_time(u, p);
        const auto slot = trial.find_slot_before(p, u_ready, u_cost, ready - kEps, true);
        if (!slot) break;
        trial.place_duplicate_at(u, p, *slot);
        TSCHED_COUNT("duplication_accepted");
        ++dups;
        if (trial.data_ready(v, p) >= ready - kEps) break;
    }
}

/// Shared outer loop: decreasing static level (a topological order since all
/// execution costs are positive); per task, speculate every processor's
/// duplication + placement on the one builder, roll each trial back, then
/// re-apply the winner (the strategies are deterministic, so the replay
/// reproduces the winning trial state exactly).
template <typename DuplicateFn>
Schedule duplication_schedule(const Problem& problem, DuplicateFn&& duplicate) {
    // One sample per scheduler run: the whole speculate/rollback/commit loop
    // *is* the duplication phase (static_level inside it times its own rank
    // phase separately).
    TSCHED_OBS_PHASE("sched/phase/duplication_ms");
    const auto sl = static_level(problem, RankCost::kMean);
    std::vector<TaskId> order;
    {
        TSCHED_OBS_PHASE("sched/phase/priority_ms");
        order = order_by_decreasing(sl);
    }
    ScheduleBuilder builder(problem);
#if TSCHED_OBS_ON
    // Selection (per-proc speculative trials) and placement (winner replay
    // + commit) accumulate across the run into one histogram sample each —
    // the boundary-timestamp pattern HEFT uses, two clock reads per task.
    double selection_ms = 0.0;
    double placement_ms = 0.0;
    const Stopwatch loop_watch;
    double boundary_ms = 0.0;
#endif
    for (const TaskId v : order) {
        ProcId best_proc = 0;
        double best_finish = std::numeric_limits<double>::infinity();
        for (std::size_t p = 0; p < problem.num_procs(); ++p) {
            const auto proc = static_cast<ProcId>(p);
            const ScheduleBuilder::Checkpoint mark = builder.checkpoint();
            duplicate(builder, v, proc);
            // eft() is the same data_ready + earliest_start + w computation
            // commit would run, so judging the trial by it (instead of
            // placing v and reading back the finish) spares every trial one
            // timeline insert/erase pair without changing a single compared
            // value.
            const double finish = builder.eft(v, proc, /*insertion=*/true);
            if (finish < best_finish) {
                best_finish = finish;
                best_proc = proc;
            }
            builder.rollback(mark);
        }
#if TSCHED_OBS_ON
        const double select_end_ms = loop_watch.elapsed_ms();
        selection_ms += select_end_ms - boundary_ms;
#endif
        duplicate(builder, v, best_proc);
        builder.place(v, best_proc, /*insertion=*/true);
#if TSCHED_OBS_ON
        boundary_ms = loop_watch.elapsed_ms();
        placement_ms += boundary_ms - select_end_ms;
#endif
    }
#if TSCHED_OBS_ON
    TSCHED_OBS_RECORD("sched/phase/selection_ms", selection_ms);
    TSCHED_OBS_RECORD("sched/phase/placement_ms", placement_ms);
#endif
    return std::move(builder).take();
}
}  // namespace

Schedule DshScheduler::schedule(const Problem& problem) const {
    return duplication_schedule(problem, [this](ScheduleBuilder& trial, TaskId v, ProcId p) {
        duplicate_while_improving(trial, v, p, max_dups_);
    });
}

Schedule BtdhScheduler::schedule(const Problem& problem) const {
    return duplication_schedule(problem, [this](ScheduleBuilder& trial, TaskId v, ProcId p) {
        // Evaluate the chain-duplication attempt against the plain placement
        // and keep whichever finishes v earlier (BTDH's end-of-attempt test).
        // The attempt speculates on the builder itself; a nested rollback
        // discards it when it does not pay off.
        const double plain_eft = trial.eft(v, p, true);
        const ScheduleBuilder::Checkpoint mark = trial.checkpoint();
        duplicate_chain(trial, v, p, max_dups_, max_depth_);
        if (trial.eft(v, p, true) >= plain_eft) trial.rollback(mark);
    });
}

}  // namespace tsched
