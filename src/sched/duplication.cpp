#include "sched/duplication.hpp"

#include <limits>
#include <optional>
#include <utility>

#include "obs/obs.hpp"
#include "sched/builder.hpp"
#include "sched/ranks.hpp"
#include "trace/trace.hpp"

namespace tsched {

namespace {
constexpr double kEps = 1e-12;

/// The predecessor whose data arrival on p binds v's ready time, or
/// kInvalidTask when v's start is not communication-bound (no predecessors,
/// or the binding arrival already comes from a local placement).
TaskId binding_remote_pred(const ScheduleBuilder& builder, TaskId v, ProcId p) {
    const Problem& problem = builder.problem();
    const Dag& dag = problem.dag();
    const LinkModel& links = problem.machine().links();
    TaskId binding = kInvalidTask;
    double worst = -1.0;
    for (const AdjEdge& e : dag.predecessors(v)) {
        const double avail = builder.partial().data_available(e.task, p, e.data, links);
        if (avail > worst) {
            worst = avail;
            binding = e.task;
        }
    }
    if (binding == kInvalidTask || worst <= 0.0) return kInvalidTask;
    // If some placement of the binding predecessor already sits on p and
    // delivers at the binding time, a copy cannot help.
    for (const Placement& pl : builder.partial().placements(binding)) {
        if (pl.proc == p && pl.finish <= worst + kEps) return kInvalidTask;
    }
    return binding;
}

/// DSH inner loop: copy binding predecessors of v onto p while each single
/// copy strictly lowers v's data-ready time.  Returns the number of copies.
std::size_t duplicate_while_improving(ScheduleBuilder& trial, TaskId v, ProcId p,
                                      std::size_t max_dups) {
    const Problem& problem = trial.problem();
    std::size_t dups = 0;
    while (dups < max_dups) {
        const double ready = trial.data_ready(v, p);
        if (ready <= 0.0) break;
        const TaskId u = binding_remote_pred(trial, v, p);
        if (u == kInvalidTask) break;
        TSCHED_COUNT("duplication_attempts");
        const double u_ready = trial.data_ready(u, p);
        const double u_cost = problem.exec_time(u, p);
        // The copy must finish strictly before the current arrival to help.
        const auto slot = trial.find_slot_before(p, u_ready, u_cost, ready - kEps,
                                                 /*insertion=*/true);
        if (!slot) break;
        trial.place_duplicate_at(u, p, *slot);
        TSCHED_COUNT("duplication_accepted");
        ++dups;
        if (trial.data_ready(v, p) >= ready - kEps) break;  // no progress
    }
    return dups;
}

/// BTDH inner loop: before giving up on copying the binding predecessor u,
/// recursively improve u's own readiness on p by copying *its* binding
/// ancestors (these intermediate copies may not pay off immediately — the
/// caller accepts or rejects the whole trial by final EFT).
void duplicate_chain(ScheduleBuilder& trial, TaskId v, ProcId p, std::size_t max_dups,
                     std::size_t depth) {
    const Problem& problem = trial.problem();
    std::size_t dups = 0;
    while (dups < max_dups) {
        const double ready = trial.data_ready(v, p);
        if (ready <= 0.0) break;
        const TaskId u = binding_remote_pred(trial, v, p);
        if (u == kInvalidTask) break;
        TSCHED_COUNT("duplication_attempts");
        if (depth > 0) duplicate_chain(trial, u, p, max_dups, depth - 1);
        const double u_ready = trial.data_ready(u, p);
        const double u_cost = problem.exec_time(u, p);
        const auto slot = trial.find_slot_before(p, u_ready, u_cost, ready - kEps, true);
        if (!slot) break;
        trial.place_duplicate_at(u, p, *slot);
        TSCHED_COUNT("duplication_accepted");
        ++dups;
        if (trial.data_ready(v, p) >= ready - kEps) break;
    }
}

/// Shared outer loop: decreasing static level (a topological order since all
/// execution costs are positive); per task, speculate every processor's
/// duplication + placement on the one builder, roll each trial back, then
/// re-apply the winner (the strategies are deterministic, so the replay
/// reproduces the winning trial state exactly).
template <typename DuplicateFn>
Schedule duplication_schedule(const Problem& problem, DuplicateFn&& duplicate) {
    // One sample per scheduler run: the whole speculate/rollback/commit loop
    // *is* the duplication phase (static_level inside it times its own rank
    // phase separately).
    TSCHED_OBS_PHASE("sched/phase/duplication_ms");
    const auto sl = static_level(problem, RankCost::kMean);
    ScheduleBuilder builder(problem);
    for (const TaskId v : order_by_decreasing(sl)) {
        ProcId best_proc = 0;
        double best_finish = std::numeric_limits<double>::infinity();
        for (std::size_t p = 0; p < problem.num_procs(); ++p) {
            const auto proc = static_cast<ProcId>(p);
            const ScheduleBuilder::Checkpoint mark = builder.checkpoint();
            duplicate(builder, v, proc);
            const Placement pl = builder.place(v, proc, /*insertion=*/true);
            if (pl.finish < best_finish) {
                best_finish = pl.finish;
                best_proc = proc;
            }
            builder.rollback(mark);
        }
        duplicate(builder, v, best_proc);
        builder.place(v, best_proc, /*insertion=*/true);
    }
    return std::move(builder).take();
}
}  // namespace

Schedule DshScheduler::schedule(const Problem& problem) const {
    return duplication_schedule(problem, [this](ScheduleBuilder& trial, TaskId v, ProcId p) {
        duplicate_while_improving(trial, v, p, max_dups_);
    });
}

Schedule BtdhScheduler::schedule(const Problem& problem) const {
    return duplication_schedule(problem, [this](ScheduleBuilder& trial, TaskId v, ProcId p) {
        // Evaluate the chain-duplication attempt against the plain placement
        // and keep whichever finishes v earlier (BTDH's end-of-attempt test).
        // The attempt speculates on the builder itself; a nested rollback
        // discards it when it does not pay off.
        const double plain_eft = trial.eft(v, p, true);
        const ScheduleBuilder::Checkpoint mark = trial.checkpoint();
        duplicate_chain(trial, v, p, max_dups_, max_depth_);
        if (trial.eft(v, p, true) >= plain_eft) trial.rollback(mark);
    });
}

}  // namespace tsched
