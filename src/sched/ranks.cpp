#include "sched/ranks.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "obs/obs.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace tsched {

const char* rank_cost_name(RankCost rc) noexcept {
    switch (rc) {
        case RankCost::kMean: return "mean";
        case RankCost::kMedian: return "median";
        case RankCost::kWorst: return "worst";
        case RankCost::kBest: return "best";
    }
    return "?";
}

double scalar_cost(const Problem& problem, TaskId v, RankCost rc) {
    const CostMatrix& costs = problem.costs();
    switch (rc) {
        case RankCost::kMean: return costs.mean(v);
        case RankCost::kMedian: return costs.median(v);
        case RankCost::kWorst: return costs.max(v);
        case RankCost::kBest: return costs.min(v);
    }
    return costs.mean(v);
}

namespace {

/// Forward topological order by FIFO Kahn over the CSR view, into caller
/// scratch.  Every rank below is a recurrence whose per-task fold runs over
/// that task's own adjacency list (order fixed by the CSR snapshot), so the
/// values are identical under *any* topological processing order — FIFO is
/// simply the cheapest deterministic one.  The public topological_order()
/// (priority-queue Kahn, id tie-breaks) is unchanged for callers that
/// consume the order itself.
void topo_order_csr(const CsrAdjacency& csr, std::vector<std::size_t>& indeg,
                    std::vector<TaskId>& out) {
    const std::size_t n = csr.num_tasks();
    indeg.resize(n);
    out.clear();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        indeg[i] = csr.in_degree(static_cast<TaskId>(i));
        if (indeg[i] == 0) out.push_back(static_cast<TaskId>(i));
    }
    for (std::size_t head = 0; head < out.size(); ++head) {
        for (const TaskId s : csr.succ_tasks(out[head])) {
            if (--indeg[static_cast<std::size_t>(s)] == 0) out.push_back(s);
        }
    }
    if (out.size() != n) throw std::invalid_argument("topological_order: graph has a cycle");
}

RankWorkspace& tls_workspace() {
    thread_local RankWorkspace ws;
    return ws;
}

/// Bucket tasks by longest path length (edge count) from the exit set:
/// level 0 holds the sinks, level L tasks depend only on levels < L, so one
/// level is an embarrassingly parallel wavefront for the upward recurrences.
/// Fills ws.level / ws.level_tasks / ws.level_off (buckets ascending by id).
void level_index_from_sinks(const CsrAdjacency& csr, RankWorkspace& ws) {
    const std::size_t n = csr.num_tasks();
    topo_order_csr(csr, ws.indeg, ws.topo);
    ws.level.assign(n, 0);
    std::size_t max_level = 0;
    for (auto it = ws.topo.rbegin(); it != ws.topo.rend(); ++it) {
        const auto vi = static_cast<std::size_t>(*it);
        std::size_t h = 0;
        for (const TaskId s : csr.succ_tasks(*it)) {
            h = std::max(h, ws.level[static_cast<std::size_t>(s)] + 1);
        }
        ws.level[vi] = h;
        max_level = std::max(max_level, h);
    }
    ws.level_off.assign(max_level + 2, 0);
    for (std::size_t i = 0; i < n; ++i) ++ws.level_off[ws.level[i] + 1];
    for (std::size_t l = 1; l < ws.level_off.size(); ++l) ws.level_off[l] += ws.level_off[l - 1];
    ws.level_tasks.resize(n);
    std::vector<std::size_t> cursor(ws.level_off.begin(), ws.level_off.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
        ws.level_tasks[cursor[ws.level[i]]++] = static_cast<TaskId>(i);
    }
}

/// Levels smaller than this are computed inline: pool dispatch costs more
/// than the handful of folds it would spread.
constexpr std::size_t kParallelLevelCutoff = 256;

template <typename PerTask>
void run_levels(ThreadPool& pool, const RankWorkspace& ws, const PerTask& per_task) {
    for (std::size_t l = 0; l + 1 < ws.level_off.size(); ++l) {
        const std::size_t begin = ws.level_off[l];
        const std::size_t count = ws.level_off[l + 1] - begin;
        if (count < kParallelLevelCutoff || pool.size() <= 1) {
            for (std::size_t i = 0; i < count; ++i) per_task(ws.level_tasks[begin + i]);
        } else {
            parallel_for(pool, count,
                         [&](std::size_t i) { per_task(ws.level_tasks[begin + i]); });
        }
    }
}

}  // namespace

void upward_rank(const Problem& problem, RankCost rc, RankWorkspace& ws,
                 std::vector<double>& out) {
    TSCHED_SPAN("rank/upward");
    // Span above: cumulative total for forensics.  Histogram below: the
    // per-call distribution a live collector reads (DESIGN §14).
    TSCHED_OBS_PHASE("sched/phase/rank_ms");
    const CsrAdjacency& csr = problem.dag().csr();
    out.assign(csr.num_tasks(), 0.0);
    topo_order_csr(csr, ws.indeg, ws.topo);
    for (auto it = ws.topo.rbegin(); it != ws.topo.rend(); ++it) {
        const TaskId v = *it;
        const auto succs = csr.succ_tasks(v);
        const auto data = csr.succ_data(v);
        double best = 0.0;
        for (std::size_t i = 0; i < succs.size(); ++i) {
            best = std::max(best, problem.mean_comm_data(data[i]) +
                                      out[static_cast<std::size_t>(succs[i])]);
        }
        out[static_cast<std::size_t>(v)] = scalar_cost(problem, v, rc) + best;
    }
}

std::vector<double> upward_rank(const Problem& problem, RankCost rc) {
    std::vector<double> rank;
    upward_rank(problem, rc, tls_workspace(), rank);
    return rank;
}

std::vector<double> upward_rank(const Problem& problem, ThreadPool& pool, RankCost rc) {
    TSCHED_SPAN("rank/upward");
    TSCHED_OBS_PHASE("sched/phase/rank_ms");
    const CsrAdjacency& csr = problem.dag().csr();
    std::vector<double> rank(csr.num_tasks(), 0.0);
    if (csr.num_tasks() == 0) return rank;
    RankWorkspace& ws = tls_workspace();
    level_index_from_sinks(csr, ws);
    run_levels(pool, ws, [&](TaskId v) {
        const auto succs = csr.succ_tasks(v);
        const auto data = csr.succ_data(v);
        double best = 0.0;
        for (std::size_t i = 0; i < succs.size(); ++i) {
            best = std::max(best, problem.mean_comm_data(data[i]) +
                                      rank[static_cast<std::size_t>(succs[i])]);
        }
        rank[static_cast<std::size_t>(v)] = scalar_cost(problem, v, rc) + best;
    });
    return rank;
}

void downward_rank(const Problem& problem, RankCost rc, RankWorkspace& ws,
                   std::vector<double>& out) {
    TSCHED_OBS_PHASE("sched/phase/rank_ms");
    const CsrAdjacency& csr = problem.dag().csr();
    out.assign(csr.num_tasks(), 0.0);
    topo_order_csr(csr, ws.indeg, ws.topo);
    for (const TaskId v : ws.topo) {
        const auto preds = csr.pred_tasks(v);
        const auto data = csr.pred_data(v);
        double best = 0.0;
        for (std::size_t i = 0; i < preds.size(); ++i) {
            best = std::max(best, out[static_cast<std::size_t>(preds[i])] +
                                      scalar_cost(problem, preds[i], rc) +
                                      problem.mean_comm_data(data[i]));
        }
        out[static_cast<std::size_t>(v)] = best;
    }
}

std::vector<double> downward_rank(const Problem& problem, RankCost rc) {
    std::vector<double> rank;
    downward_rank(problem, rc, tls_workspace(), rank);
    return rank;
}

void static_level(const Problem& problem, RankCost rc, RankWorkspace& ws,
                  std::vector<double>& out) {
    TSCHED_OBS_PHASE("sched/phase/rank_ms");
    const CsrAdjacency& csr = problem.dag().csr();
    out.assign(csr.num_tasks(), 0.0);
    topo_order_csr(csr, ws.indeg, ws.topo);
    for (auto it = ws.topo.rbegin(); it != ws.topo.rend(); ++it) {
        const TaskId v = *it;
        double best = 0.0;
        for (const TaskId s : csr.succ_tasks(v)) {
            best = std::max(best, out[static_cast<std::size_t>(s)]);
        }
        out[static_cast<std::size_t>(v)] = scalar_cost(problem, v, rc) + best;
    }
}

std::vector<double> static_level(const Problem& problem, RankCost rc) {
    std::vector<double> level;
    static_level(problem, rc, tls_workspace(), level);
    return level;
}

std::vector<double> alap_start(const Problem& problem, RankCost rc) {
    std::vector<double> rank = upward_rank(problem, rc);
    const double cp = rank.empty() ? 0.0 : *std::max_element(rank.begin(), rank.end());
    for (double& r : rank) r = cp - r;
    return rank;
}

namespace {

/// One OCT row: the per-(task, processor) fold, shared by every variant so
/// the serial, workspace, and parallel tables are bit-identical.
void oct_row(const Problem& problem, const CsrAdjacency& csr, const LinkModel& links,
             std::size_t procs, TaskId v, std::vector<double>& oct) {
    const auto vi = static_cast<std::size_t>(v);
    const auto succs = csr.succ_tasks(v);
    const auto data = csr.succ_data(v);
    for (std::size_t pi = 0; pi < procs; ++pi) {
        double worst_child = 0.0;
        for (std::size_t si = 0; si < succs.size(); ++si) {
            const auto ci = static_cast<std::size_t>(succs[si]);
            double best_q = std::numeric_limits<double>::infinity();
            for (std::size_t qi = 0; qi < procs; ++qi) {
                const double via = links.comm_time(data[si], static_cast<ProcId>(pi),
                                                   static_cast<ProcId>(qi)) +
                                   problem.exec_time(succs[si], static_cast<ProcId>(qi)) +
                                   oct[ci * procs + qi];
                best_q = std::min(best_q, via);
            }
            worst_child = std::max(worst_child, best_q);
        }
        oct[vi * procs + pi] = worst_child;
    }
}

}  // namespace

void optimistic_cost_table(const Problem& problem, RankWorkspace& ws, std::vector<double>& out) {
    TSCHED_SPAN("rank/oct");
    TSCHED_OBS_PHASE("sched/phase/rank_ms");
    const CsrAdjacency& csr = problem.dag().csr();
    const std::size_t n = csr.num_tasks();
    const std::size_t procs = problem.num_procs();
    TSCHED_COUNT_ADD("oct_cells", n * procs);
    const LinkModel& links = problem.machine().links();
    out.assign(n * procs, 0.0);
    topo_order_csr(csr, ws.indeg, ws.topo);
    for (auto it = ws.topo.rbegin(); it != ws.topo.rend(); ++it) {
        oct_row(problem, csr, links, procs, *it, out);
    }
}

std::vector<double> optimistic_cost_table(const Problem& problem) {
    std::vector<double> oct;
    optimistic_cost_table(problem, tls_workspace(), oct);
    return oct;
}

std::vector<double> optimistic_cost_table(const Problem& problem, ThreadPool& pool) {
    TSCHED_SPAN("rank/oct");
    TSCHED_OBS_PHASE("sched/phase/rank_ms");
    const CsrAdjacency& csr = problem.dag().csr();
    const std::size_t n = csr.num_tasks();
    const std::size_t procs = problem.num_procs();
    TSCHED_COUNT_ADD("oct_cells", n * procs);
    const LinkModel& links = problem.machine().links();
    std::vector<double> oct(n * procs, 0.0);
    if (n == 0) return oct;
    RankWorkspace& ws = tls_workspace();
    level_index_from_sinks(csr, ws);
    run_levels(pool, ws,
               [&](TaskId v) { oct_row(problem, csr, links, procs, v, oct); });
    return oct;
}

namespace {
std::vector<TaskId> ordered(const std::vector<double>& key, bool decreasing) {
    std::vector<TaskId> order(key.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
        const double ka = key[static_cast<std::size_t>(a)];
        const double kb = key[static_cast<std::size_t>(b)];
        if (ka != kb) return decreasing ? ka > kb : ka < kb;
        return a < b;
    });
    return order;
}
}  // namespace

std::vector<TaskId> order_by_decreasing(const std::vector<double>& key) {
    return ordered(key, true);
}

std::vector<TaskId> order_by_increasing(const std::vector<double>& key) {
    return ordered(key, false);
}

}  // namespace tsched
