#include "sched/ranks.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "graph/algorithms.hpp"
#include "obs/obs.hpp"
#include "trace/trace.hpp"

namespace tsched {

const char* rank_cost_name(RankCost rc) noexcept {
    switch (rc) {
        case RankCost::kMean: return "mean";
        case RankCost::kMedian: return "median";
        case RankCost::kWorst: return "worst";
        case RankCost::kBest: return "best";
    }
    return "?";
}

double scalar_cost(const Problem& problem, TaskId v, RankCost rc) {
    const CostMatrix& costs = problem.costs();
    switch (rc) {
        case RankCost::kMean: return costs.mean(v);
        case RankCost::kMedian: return costs.median(v);
        case RankCost::kWorst: return costs.max(v);
        case RankCost::kBest: return costs.min(v);
    }
    return costs.mean(v);
}

std::vector<double> upward_rank(const Problem& problem, RankCost rc) {
    TSCHED_SPAN("rank/upward");
    // Span above: cumulative total for forensics.  Histogram below: the
    // per-call distribution a live collector reads (DESIGN §14).
    TSCHED_OBS_PHASE("sched/phase/rank_ms");
    const Dag& dag = problem.dag();
    std::vector<double> rank(dag.num_tasks(), 0.0);
    const auto order = topological_order(dag);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const TaskId v = *it;
        double best = 0.0;
        for (const AdjEdge& e : dag.successors(v)) {
            best = std::max(best,
                            problem.mean_comm_data(e.data) + rank[static_cast<std::size_t>(e.task)]);
        }
        rank[static_cast<std::size_t>(v)] = scalar_cost(problem, v, rc) + best;
    }
    return rank;
}

std::vector<double> downward_rank(const Problem& problem, RankCost rc) {
    TSCHED_OBS_PHASE("sched/phase/rank_ms");
    const Dag& dag = problem.dag();
    std::vector<double> rank(dag.num_tasks(), 0.0);
    for (const TaskId v : topological_order(dag)) {
        double best = 0.0;
        for (const AdjEdge& e : dag.predecessors(v)) {
            best = std::max(best, rank[static_cast<std::size_t>(e.task)] +
                                      scalar_cost(problem, e.task, rc) +
                                      problem.mean_comm_data(e.data));
        }
        rank[static_cast<std::size_t>(v)] = best;
    }
    return rank;
}

std::vector<double> static_level(const Problem& problem, RankCost rc) {
    TSCHED_OBS_PHASE("sched/phase/rank_ms");
    const Dag& dag = problem.dag();
    std::vector<double> level(dag.num_tasks(), 0.0);
    const auto order = topological_order(dag);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const TaskId v = *it;
        double best = 0.0;
        for (const AdjEdge& e : dag.successors(v)) {
            best = std::max(best, level[static_cast<std::size_t>(e.task)]);
        }
        level[static_cast<std::size_t>(v)] = scalar_cost(problem, v, rc) + best;
    }
    return level;
}

std::vector<double> alap_start(const Problem& problem, RankCost rc) {
    std::vector<double> rank = upward_rank(problem, rc);
    const double cp = rank.empty() ? 0.0 : *std::max_element(rank.begin(), rank.end());
    for (double& r : rank) r = cp - r;
    return rank;
}

std::vector<double> optimistic_cost_table(const Problem& problem) {
    TSCHED_SPAN("rank/oct");
    TSCHED_OBS_PHASE("sched/phase/rank_ms");
    const Dag& dag = problem.dag();
    const std::size_t n = dag.num_tasks();
    const std::size_t procs = problem.num_procs();
    TSCHED_COUNT_ADD("oct_cells", n * procs);
    const LinkModel& links = problem.machine().links();
    std::vector<double> oct(n * procs, 0.0);
    const auto order = topological_order(dag);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const TaskId v = *it;
        const auto vi = static_cast<std::size_t>(v);
        for (std::size_t pi = 0; pi < procs; ++pi) {
            double worst_child = 0.0;
            for (const AdjEdge& e : dag.successors(v)) {
                const auto ci = static_cast<std::size_t>(e.task);
                double best_q = std::numeric_limits<double>::infinity();
                for (std::size_t qi = 0; qi < procs; ++qi) {
                    const double via = links.comm_time(e.data, static_cast<ProcId>(pi),
                                                       static_cast<ProcId>(qi)) +
                                       problem.exec_time(e.task, static_cast<ProcId>(qi)) +
                                       oct[ci * procs + qi];
                    best_q = std::min(best_q, via);
                }
                worst_child = std::max(worst_child, best_q);
            }
            oct[vi * procs + pi] = worst_child;
        }
    }
    return oct;
}

namespace {
std::vector<TaskId> ordered(const std::vector<double>& key, bool decreasing) {
    std::vector<TaskId> order(key.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
        const double ka = key[static_cast<std::size_t>(a)];
        const double kb = key[static_cast<std::size_t>(b)];
        if (ka != kb) return decreasing ? ka > kb : ka < kb;
        return a < b;
    });
    return order;
}
}  // namespace

std::vector<TaskId> order_by_decreasing(const std::vector<double>& key) {
    return ordered(key, true);
}

std::vector<TaskId> order_by_increasing(const std::vector<double>& key) {
    return ordered(key, false);
}

}  // namespace tsched
