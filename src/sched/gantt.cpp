#include "sched/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tsched {

namespace {
/// Deterministic pleasant color per task: golden-angle hue walk.
std::string task_color(TaskId task) {
    const double hue = std::fmod(static_cast<double>(task) * 137.508, 360.0);
    std::ostringstream os;
    os << "hsl(" << static_cast<int>(hue) << ",65%,62%)";
    return os.str();
}

/// A tick step of 1/2/5 x 10^k that yields <= max_ticks ticks.
double tick_step(double span, int max_ticks) {
    if (span <= 0.0) return 1.0;
    double step = std::pow(10.0, std::floor(std::log10(span / max_ticks)));
    while (span / step > max_ticks) {
        if (span / (2 * step) <= max_ticks) return 2 * step;
        if (span / (5 * step) <= max_ticks) return 5 * step;
        step *= 10;
    }
    return step;
}

std::string xml_escape(const std::string& s) {
    std::string out;
    for (const char ch : s) {
        switch (ch) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            default: out += ch;
        }
    }
    return out;
}
}  // namespace

std::string to_svg(const Schedule& schedule, const Dag* dag, const GanttOptions& options) {
    const double makespan = std::max(schedule.makespan(), 1e-12);
    const int left = 64;
    const int top = options.title.empty() ? 16 : 44;
    const int lane = options.lane_height_px;
    const int gap = 6;
    const auto procs = static_cast<int>(schedule.num_procs());
    const int chart_w = options.width_px - left - 16;
    const int height = top + procs * (lane + gap) + 40;
    const double scale = chart_w / makespan;

    std::ostringstream svg;
    svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width_px
        << "\" height=\"" << height << "\" font-family=\"sans-serif\" font-size=\"11\">\n";
    svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
    if (!options.title.empty()) {
        svg << "<text x=\"" << left << "\" y=\"24\" font-size=\"15\" font-weight=\"bold\">"
            << xml_escape(options.title) << "</text>\n";
    }

    // Lanes + placements.
    for (int p = 0; p < procs; ++p) {
        const int y = top + p * (lane + gap);
        svg << "<text x=\"8\" y=\"" << y + lane / 2 + 4 << "\">P" << p << "</text>\n";
        svg << "<rect x=\"" << left << "\" y=\"" << y << "\" width=\"" << chart_w
            << "\" height=\"" << lane << "\" fill=\"#f2f2f2\"/>\n";
        for (const Placement& pl : schedule.processor_timeline(static_cast<ProcId>(p))) {
            const double x = left + pl.start * scale;
            const double w = std::max(1.0, pl.duration() * scale);
            const Placement& primary = schedule.primary(pl.task);
            const bool duplicate = !(primary.proc == pl.proc && primary.start == pl.start);
            svg << "<rect x=\"" << x << "\" y=\"" << y + 2 << "\" width=\"" << w
                << "\" height=\"" << lane - 4 << "\" rx=\"2\" fill=\"" << task_color(pl.task)
                << "\"" << (duplicate ? " fill-opacity=\"0.45\" stroke=\"#555\" stroke-dasharray=\"3,2\"" : "")
                << "><title>t" << pl.task;
            if (dag != nullptr && !dag->name(pl.task).empty()) {
                svg << " (" << xml_escape(dag->name(pl.task)) << ")";
            }
            svg << " [" << pl.start << ", " << pl.finish << ")</title></rect>\n";
            if (options.show_labels && w > 18.0) {
                std::string label = dag != nullptr && !dag->name(pl.task).empty()
                                        ? dag->name(pl.task)
                                        : std::to_string(pl.task);
                if (static_cast<double>(label.size()) * 6.0 > w) {
                    label = label.substr(
                        0, std::max<std::size_t>(1, static_cast<std::size_t>(w / 6.0)));
                }
                svg << "<text x=\"" << x + 3 << "\" y=\"" << y + lane / 2 + 4
                    << "\" fill=\"black\">" << xml_escape(label) << "</text>\n";
            }
        }
    }

    // Time axis.
    const int axis_y = top + procs * (lane + gap) + 8;
    svg << "<line x1=\"" << left << "\" y1=\"" << axis_y << "\" x2=\"" << left + chart_w
        << "\" y2=\"" << axis_y << "\" stroke=\"black\"/>\n";
    const double step = tick_step(makespan, 10);
    for (double t = 0.0; t <= makespan + 1e-9; t += step) {
        const double x = left + t * scale;
        svg << "<line x1=\"" << x << "\" y1=\"" << axis_y << "\" x2=\"" << x << "\" y2=\""
            << axis_y + 4 << "\" stroke=\"black\"/>\n";
        svg << "<text x=\"" << x << "\" y=\"" << axis_y + 16
            << "\" text-anchor=\"middle\">" << t << "</text>\n";
    }
    // Makespan marker.
    const double mx = left + makespan * scale;
    svg << "<line x1=\"" << mx << "\" y1=\"" << top - 4 << "\" x2=\"" << mx << "\" y2=\""
        << axis_y << "\" stroke=\"red\" stroke-dasharray=\"4,3\"/>\n";
    svg << "<text x=\"" << mx - 4 << "\" y=\"" << top - 6
        << "\" text-anchor=\"end\" fill=\"red\">makespan " << schedule.makespan()
        << "</text>\n";
    svg << "</svg>\n";
    return svg.str();
}

void save_svg(const std::string& path, const Schedule& schedule, const Dag* dag,
              const GanttOptions& options) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("save_svg: cannot open " + path);
    out << to_svg(schedule, dag, options);
    if (!out) throw std::runtime_error("save_svg: write failed for " + path);
}

}  // namespace tsched
