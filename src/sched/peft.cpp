#include "sched/peft.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "sched/builder.hpp"
#include "sched/ranks.hpp"
#include "trace/decision.hpp"
#include "trace/trace.hpp"

namespace tsched {

Schedule PeftScheduler::schedule(const Problem& problem) const { return run(problem, nullptr); }

Schedule PeftScheduler::schedule_traced(const Problem& problem, trace::TraceSink* sink) const {
    return run(problem, sink);
}

Schedule PeftScheduler::run(const Problem& problem, trace::TraceSink* sink) const {
    TSCHED_SPAN("sched/peft");
    const Dag& dag = problem.dag();
    const std::size_t n = problem.num_tasks();
    const std::size_t procs = problem.num_procs();
    const auto oct = optimistic_cost_table(problem);

    // rank_oct(v): mean of the task's OCT row.
    std::vector<double> rank(n, 0.0);
    for (std::size_t v = 0; v < n; ++v) {
        for (std::size_t p = 0; p < procs; ++p) rank[v] += oct[v * procs + p];
        rank[v] /= static_cast<double>(procs);
    }

    // Ready-list scheduling: rank_oct is not monotone along edges, so the
    // ready set (not a global order) drives the loop, as in the paper.
    ScheduleBuilder builder(problem);
    std::vector<std::size_t> pending(n);
    std::vector<TaskId> ready;
    for (std::size_t v = 0; v < n; ++v) {
        pending[v] = dag.in_degree(static_cast<TaskId>(v));
        if (pending[v] == 0) ready.push_back(static_cast<TaskId>(v));
    }
    while (!ready.empty()) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < ready.size(); ++i) {
            const auto a = static_cast<std::size_t>(ready[i]);
            const auto b = static_cast<std::size_t>(ready[best]);
            if (rank[a] > rank[b] || (rank[a] == rank[b] && ready[i] < ready[best])) best = i;
        }
        const TaskId v = ready[best];
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));

        trace::DecisionRecord rec;
        ProcId best_proc = 0;
        double best_score = std::numeric_limits<double>::infinity();
        for (std::size_t p = 0; p < procs; ++p) {
            const double eft = builder.eft(v, static_cast<ProcId>(p), true);
            const double bias = oct[static_cast<std::size_t>(v) * procs + p];
            const double score = eft + bias;
            if (sink != nullptr) {
                rec.candidates.push_back({static_cast<ProcId>(p),
                                          eft - problem.exec_time(v, static_cast<ProcId>(p)),
                                          eft, bias, score});
            }
            if (score < best_score) {
                best_score = score;
                best_proc = static_cast<ProcId>(p);
            }
        }
        const Placement pl = builder.place(v, best_proc, true);
        if (sink != nullptr) {
            rec.task = v;
            rec.rank = rank[static_cast<std::size_t>(v)];
            rec.chosen = best_proc;
            rec.start = pl.start;
            rec.finish = pl.finish;
            rec.reason = "min EFT+OCT (ready-list by mean OCT rank)";
            sink->record(std::move(rec));
        }
        for (const AdjEdge& e : dag.successors(v)) {
            if (--pending[static_cast<std::size_t>(e.task)] == 0) ready.push_back(e.task);
        }
    }
    return std::move(builder).take();
}

}  // namespace tsched
