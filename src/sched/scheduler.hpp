// Scheduler interface.
//
// A Scheduler is a pure function Problem -> Schedule plus a stable name used
// by the registry (core/registry.hpp), the benchmark harness, and result
// tables.  Implementations must be deterministic: any internal randomness is
// seeded from construction parameters, never from global state.
#pragma once

#include <memory>
#include <string>

#include "platform/problem.hpp"
#include "sched/schedule.hpp"

namespace tsched::trace {
class TraceSink;
}  // namespace tsched::trace

namespace tsched {

class Scheduler {
public:
    virtual ~Scheduler() = default;

    /// Stable identifier, e.g. "heft", "ils-d" (lower-case, no spaces).
    [[nodiscard]] virtual std::string name() const = 0;

    /// Compute a complete static schedule for the problem.  Postcondition
    /// (checked by tests, not here): validate(result, problem) succeeds.
    [[nodiscard]] virtual Schedule schedule(const Problem& problem) const = 0;

    /// Like schedule(), additionally streaming one trace::DecisionRecord per
    /// placement decision into `sink` (see trace/decision.hpp) so the result
    /// can be explained after the fact.  `sink` may be null.  The default
    /// ignores the sink; the instrumented schedulers (HEFT, CPOP, PEFT,
    /// lookahead-HEFT, ILS/ILS-D) override.  Both entry points must return
    /// the identical schedule for the same problem.
    [[nodiscard]] virtual Schedule schedule_traced(const Problem& problem,
                                                   trace::TraceSink* sink) const {
        static_cast<void>(sink);
        return schedule(problem);
    }
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

}  // namespace tsched
