#include "sched/repair.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "sched/builder.hpp"
#include "sched/ranks.hpp"
#include "trace/trace.hpp"

namespace tsched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-task view of the crash split (instances in original insertion order).
struct TaskSplit {
    std::vector<std::vector<FrozenPlacement>> frozen;
    std::vector<std::vector<Placement>> pending;
    std::vector<std::vector<Placement>> lost;

    explicit TaskSplit(const RepairContext& ctx) {
        const std::size_t n = ctx.problem->num_tasks();
        frozen.resize(n);
        pending.resize(n);
        lost.resize(n);
        for (const FrozenPlacement& f : ctx.frozen) {
            frozen[static_cast<std::size_t>(f.task)].push_back(f);
        }
        for (const Placement& pl : ctx.pending) {
            pending[static_cast<std::size_t>(pl.task)].push_back(pl);
        }
        for (const Placement& pl : ctx.lost) {
            lost[static_cast<std::size_t>(pl.task)].push_back(pl);
        }
    }

    [[nodiscard]] bool executed(TaskId v) const {
        return !frozen[static_cast<std::size_t>(v)].empty();
    }
    /// No instance left anywhere: neither executed nor pending on a live proc.
    [[nodiscard]] bool stranded(TaskId v) const {
        return frozen[static_cast<std::size_t>(v)].empty() &&
               pending[static_cast<std::size_t>(v)].empty();
    }
};

/// Re-record the executed prefix at its realised times.  place_at does not
/// require predecessors to be placed, so frozen replay order is free; the
/// task-major order of ctx.frozen keeps each task's original primary first.
ScheduleBuilder replay_frozen(const RepairContext& ctx) {
    ScheduleBuilder builder(*ctx.problem);
    for (const FrozenPlacement& f : ctx.frozen) {
        if (builder.is_placed(f.task)) {
            builder.place_duplicate_at(f.task, f.proc, f.start);
        } else {
            builder.place_at(f.task, f.proc, f.start);
        }
    }
    return builder;
}

/// Commit v on p no earlier than `floor` (and its data-ready time).  With
/// `insertion` the first sufficient idle gap at/after the floor is used,
/// otherwise the placement is appended after p's last interval.
Placement place_floored(ScheduleBuilder& builder, TaskId v, ProcId p, double floor,
                        bool insertion) {
    const double ready = std::max(builder.data_ready(v, p), floor);
    if (!std::isfinite(ready)) {
        throw std::logic_error("repair: predecessor of task " + std::to_string(v) +
                               " is unplaced");
    }
    const double w = builder.problem().exec_time(v, p);
    const double start = builder.earliest_start(p, ready, w, insertion);
    return builder.is_placed(v) ? builder.place_duplicate_at(v, p, start)
                                : builder.place_at(v, p, start);
}

/// Replay the surviving pending instances of v on their planned processors,
/// floored at the crash time (append mode: an untouched suffix keeps its
/// planned per-processor order and, when its dependencies are unchanged,
/// its planned times).
void replay_pending(ScheduleBuilder& builder, const RepairContext& ctx, const TaskSplit& split,
                    TaskId v) {
    for (const Placement& pl : split.pending[static_cast<std::size_t>(v)]) {
        place_floored(builder, v, pl.proc, std::max(pl.start, ctx.crash_time),
                      /*insertion=*/false);
    }
}

/// Min-EFT over live processors via speculative trial commits: each
/// candidate placement is committed, measured, and rolled back, so the
/// winning commit re-runs the identical code path (the PR 3 speculation
/// idiom the duplication heuristics use).
Placement place_best_live(ScheduleBuilder& builder, const RepairContext& ctx, TaskId v,
                          bool insertion) {
    ProcId best_proc = kInvalidProc;
    double best_finish = kInf;
    for (std::size_t p = 0; p < ctx.num_procs(); ++p) {
        if (ctx.dead[p]) continue;
        const auto q = static_cast<ProcId>(p);
        const ScheduleBuilder::Checkpoint mark = builder.checkpoint();
        TSCHED_COUNT("repair_trial_placements");
        const Placement trial = place_floored(builder, v, q, ctx.crash_time, insertion);
        const double finish = trial.finish;
        builder.rollback(mark);
        if (finish < best_finish) {
            best_finish = finish;
            best_proc = q;
        }
    }
    if (best_proc == kInvalidProc) {
        throw std::runtime_error("repair: no live processor left to place task " +
                                 std::to_string(v));
    }
    return place_floored(builder, v, best_proc, ctx.crash_time, insertion);
}

// ---- none ----------------------------------------------------------------

class NonePolicy final : public RepairPolicy {
public:
    [[nodiscard]] std::string name() const override { return "none"; }

    [[nodiscard]] Schedule repair(const RepairContext& ctx) const override {
        const TaskSplit split(ctx);
        ScheduleBuilder builder = replay_frozen(ctx);
        const ProcId fallback = ctx.first_live_proc();
        for (const TaskId v : topological_order(ctx.problem->dag())) {
            replay_pending(builder, ctx, split, v);
            if (split.stranded(v)) {
                // No repair intelligence: serialise the orphaned work onto
                // one surviving processor, appended in topological order.
                place_floored(builder, v, fallback, ctx.crash_time, /*insertion=*/false);
            }
        }
        return std::move(builder).take();
    }
};

// ---- remap-pending -------------------------------------------------------

class RemapPendingPolicy final : public RepairPolicy {
public:
    [[nodiscard]] std::string name() const override { return "remap-pending"; }

    [[nodiscard]] Schedule repair(const RepairContext& ctx) const override {
        const TaskSplit split(ctx);
        ScheduleBuilder builder = replay_frozen(ctx);
        for (const TaskId v : topological_order(ctx.problem->dag())) {
            replay_pending(builder, ctx, split, v);
            // Migrate every lost instance to the live processor that
            // finishes it earliest (duplicates stay duplicates).
            for (std::size_t i = 0; i < split.lost[static_cast<std::size_t>(v)].size(); ++i) {
                place_best_live(builder, ctx, v, /*insertion=*/true);
            }
        }
        return std::move(builder).take();
    }
};

// ---- reschedule-suffix ---------------------------------------------------

class RescheduleSuffixPolicy final : public RepairPolicy {
public:
    [[nodiscard]] std::string name() const override { return "reschedule-suffix"; }

    [[nodiscard]] Schedule repair(const RepairContext& ctx) const override {
        const TaskSplit split(ctx);
        ScheduleBuilder builder = replay_frozen(ctx);
        // HEFT on the unexecuted subgraph: previous pending assignments
        // (and unexecuted duplicates) are discarded; decreasing upward rank
        // restricted to the unexecuted set is still a topological order.
        const auto ranks = upward_rank(*ctx.problem);
        for (const TaskId v : order_by_decreasing(ranks)) {
            if (split.executed(v)) continue;
            place_best_live(builder, ctx, v, /*insertion=*/true);
        }
        return std::move(builder).take();
    }
};

// ---- use-duplicates ------------------------------------------------------

class UseDuplicatesPolicy final : public RepairPolicy {
public:
    [[nodiscard]] std::string name() const override { return "use-duplicates"; }

    [[nodiscard]] Schedule repair(const RepairContext& ctx) const override {
        const TaskSplit split(ctx);
        ScheduleBuilder builder = replay_frozen(ctx);
        for (const TaskId v : topological_order(ctx.problem->dag())) {
            // Lost instances of a task with a surviving instance (frozen or
            // pending) are simply dropped — the surviving copy serves its
            // consumers.  Only stranded tasks get new work.
            replay_pending(builder, ctx, split, v);
            if (split.stranded(v)) {
                place_best_live(builder, ctx, v, /*insertion=*/true);
            }
        }
        return std::move(builder).take();
    }
};

}  // namespace

std::size_t RepairContext::live_procs() const {
    std::size_t live = 0;
    for (const bool d : dead) {
        if (!d) ++live;
    }
    return live;
}

ProcId RepairContext::first_live_proc() const {
    for (std::size_t p = 0; p < dead.size(); ++p) {
        if (!dead[p]) return static_cast<ProcId>(p);
    }
    throw std::runtime_error("repair: every processor is dead");
}

RepairPolicyPtr make_repair_policy(const std::string& name) {
    if (name == "none") return std::make_unique<NonePolicy>();
    if (name == "remap-pending") return std::make_unique<RemapPendingPolicy>();
    if (name == "reschedule-suffix") return std::make_unique<RescheduleSuffixPolicy>();
    if (name == "use-duplicates") return std::make_unique<UseDuplicatesPolicy>();
    throw std::invalid_argument("unknown repair policy '" + name +
                                "' (expected none, remap-pending, reschedule-suffix, or "
                                "use-duplicates)");
}

std::vector<std::string> repair_policy_names() {
    return {"none", "remap-pending", "reschedule-suffix", "use-duplicates"};
}

}  // namespace tsched
