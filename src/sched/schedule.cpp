#include "sched/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace tsched {

Schedule::Schedule(std::size_t num_tasks, std::size_t num_procs)
    : num_tasks_(num_tasks), num_procs_(num_procs), by_task_(num_tasks) {
    if (num_procs == 0) throw std::invalid_argument("Schedule: need at least one processor");
}

void Schedule::add(TaskId task, ProcId proc, double start, double finish) {
    if (task < 0 || static_cast<std::size_t>(task) >= num_tasks_) {
        throw std::invalid_argument("Schedule::add: task out of range");
    }
    if (proc < 0 || static_cast<std::size_t>(proc) >= num_procs_) {
        throw std::invalid_argument("Schedule::add: processor out of range");
    }
    if (!(start >= 0.0) || !(finish >= start) || !std::isfinite(finish)) {
        throw std::invalid_argument("Schedule::add: invalid time interval");
    }
    by_task_[static_cast<std::size_t>(task)].push_back({task, proc, start, finish});
}

Placement Schedule::remove_last(TaskId task) {
    if (task < 0 || static_cast<std::size_t>(task) >= num_tasks_) {
        throw std::out_of_range("Schedule::remove_last: task out of range");
    }
    auto& list = by_task_[static_cast<std::size_t>(task)];
    if (list.empty()) throw std::out_of_range("Schedule::remove_last: task has no placement");
    const Placement last = list.back();
    list.pop_back();
    return last;
}

std::span<const Placement> Schedule::placements(TaskId task) const {
    if (task < 0 || static_cast<std::size_t>(task) >= num_tasks_) {
        throw std::out_of_range("Schedule::placements: task out of range");
    }
    return by_task_[static_cast<std::size_t>(task)];
}

const Placement& Schedule::primary(TaskId task) const {
    const auto p = placements(task);
    if (p.empty()) throw std::out_of_range("Schedule::primary: task has no placement");
    return p.front();
}

bool Schedule::complete() const noexcept {
    return std::all_of(by_task_.begin(), by_task_.end(),
                       [](const auto& v) { return !v.empty(); });
}

std::size_t Schedule::num_placements() const noexcept {
    std::size_t count = 0;
    for (const auto& v : by_task_) count += v.size();
    return count;
}

std::size_t Schedule::num_duplicates() const noexcept {
    std::size_t count = 0;
    for (const auto& v : by_task_) {
        if (!v.empty()) count += v.size() - 1;
    }
    return count;
}

double Schedule::makespan() const noexcept {
    double latest = 0.0;
    for (const auto& v : by_task_) {
        for (const Placement& p : v) latest = std::max(latest, p.finish);
    }
    return latest;
}

std::vector<Placement> Schedule::processor_timeline(ProcId p) const {
    if (p < 0 || static_cast<std::size_t>(p) >= num_procs_) {
        throw std::out_of_range("Schedule::processor_timeline: processor out of range");
    }
    std::vector<Placement> out;
    for (const auto& v : by_task_) {
        for (const Placement& pl : v) {
            if (pl.proc == p) out.push_back(pl);
        }
    }
    std::sort(out.begin(), out.end(), [](const Placement& a, const Placement& b) {
        return a.start < b.start || (a.start == b.start && a.task < b.task);
    });
    return out;
}

double Schedule::data_available(TaskId task, ProcId p, double data,
                                const LinkModel& links) const {
    double best = std::numeric_limits<double>::infinity();
    for (const Placement& pl : placements(task)) {
        best = std::min(best, pl.finish + links.comm_time(data, pl.proc, p));
    }
    return best;
}

double Schedule::total_idle_time() const {
    const double horizon = makespan();
    double idle = 0.0;
    for (std::size_t p = 0; p < num_procs_; ++p) {
        double busy = 0.0;
        for (const Placement& pl : processor_timeline(static_cast<ProcId>(p))) {
            busy += pl.duration();
        }
        idle += horizon - busy;
    }
    return idle;
}

std::string Schedule::to_string() const {
    std::ostringstream os;
    os << "schedule: makespan=" << makespan() << ", placements=" << num_placements()
       << " (dups=" << num_duplicates() << ")\n";
    for (std::size_t p = 0; p < num_procs_; ++p) {
        os << "  P" << p << ":";
        for (const Placement& pl : processor_timeline(static_cast<ProcId>(p))) {
            os << "  [" << pl.start << ", " << pl.finish << ") t" << pl.task;
        }
        os << '\n';
    }
    return os.str();
}

}  // namespace tsched
