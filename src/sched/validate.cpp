#include "sched/validate.hpp"

#include <cmath>
#include <sstream>

namespace tsched {

std::string ValidationResult::message() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (i) os << '\n';
        os << errors[i];
    }
    return os.str();
}

ValidationResult validate(const Schedule& schedule, const Problem& problem, double time_eps,
                          std::size_t max_errors) {
    ValidationResult result;
    auto fail = [&](const std::string& msg) {
        result.ok = false;
        if (result.errors.size() < max_errors) result.errors.push_back(msg);
    };

    if (schedule.num_tasks() != problem.num_tasks() ||
        schedule.num_procs() != problem.num_procs()) {
        fail("schedule dimensions do not match problem");
        return result;
    }

    const Dag& dag = problem.dag();
    const std::size_t n = problem.num_tasks();

    // 1. completeness & per-placement timing.
    for (std::size_t vi = 0; vi < n; ++vi) {
        const auto v = static_cast<TaskId>(vi);
        const auto places = schedule.placements(v);
        if (places.empty()) {
            fail("task " + std::to_string(vi) + " has no placement");
            continue;
        }
        for (const Placement& pl : places) {
            const double expect = problem.exec_time(v, pl.proc);
            if (std::abs(pl.duration() - expect) > time_eps) {
                std::ostringstream os;
                os << "task " << vi << " on P" << pl.proc << ": duration " << pl.duration()
                   << " != cost " << expect;
                fail(os.str());
            }
            if (pl.start < -time_eps) {
                fail("task " + std::to_string(vi) + " starts before time 0");
            }
        }
    }
    if (!result.ok) return result;  // timing errors cascade; stop early

    // 2. processor exclusivity.
    for (std::size_t p = 0; p < problem.num_procs(); ++p) {
        const auto timeline = schedule.processor_timeline(static_cast<ProcId>(p));
        for (std::size_t i = 1; i < timeline.size(); ++i) {
            if (timeline[i].start < timeline[i - 1].finish - time_eps) {
                std::ostringstream os;
                os << "P" << p << ": task " << timeline[i].task << " [" << timeline[i].start
                   << ", " << timeline[i].finish << ") overlaps task " << timeline[i - 1].task
                   << " [" << timeline[i - 1].start << ", " << timeline[i - 1].finish << ")";
                fail(os.str());
            }
        }
    }

    // 3. precedence with duplicate-aware communication.
    const LinkModel& links = problem.machine().links();
    for (std::size_t vi = 0; vi < n; ++vi) {
        const auto v = static_cast<TaskId>(vi);
        for (const Placement& pl : schedule.placements(v)) {
            for (const AdjEdge& e : dag.predecessors(v)) {
                const double avail = schedule.data_available(e.task, pl.proc, e.data, links);
                if (avail > pl.start + time_eps) {
                    std::ostringstream os;
                    os << "task " << vi << " on P" << pl.proc << " starts at " << pl.start
                       << " but data from task " << e.task << " arrives at " << avail;
                    fail(os.str());
                }
            }
        }
    }
    return result;
}

}  // namespace tsched
