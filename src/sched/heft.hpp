// HEFT — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri, Wu;
// IEEE TPDS 2002).
//
// Phase 1 prioritises tasks by decreasing upward rank (computed over a
// configurable scalarisation of the cost rows — the paper uses the mean;
// median/worst/best are the classic rank-variant ablation).  Phase 2 places
// each task on the processor minimising its earliest finish time, using
// insertion-based slot search by default.
#pragma once

#include "sched/ranks.hpp"
#include "sched/scheduler.hpp"

namespace tsched {

class HeftScheduler final : public Scheduler {
public:
    explicit HeftScheduler(RankCost rank_cost = RankCost::kMean, bool insertion = true)
        : rank_cost_(rank_cost), insertion_(insertion) {}

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;
    [[nodiscard]] Schedule schedule_traced(const Problem& problem,
                                           trace::TraceSink* sink) const override;

private:
    [[nodiscard]] Schedule run(const Problem& problem, trace::TraceSink* sink) const;

    RankCost rank_cost_;
    bool insertion_;
};

}  // namespace tsched
