// Linear-clustering scheduler (Kim, Browne; 1988 lineage) — the classic
// clustering-based alternative to list scheduling, strongest on homogeneous
// systems.
//
// Phase 1 (clustering): repeatedly extract the critical path of the not-yet-
// clustered subgraph (mean execution costs on nodes, mean communication
// costs on edges) into a new cluster; communication inside a cluster is free
// because its tasks share a processor.
// Phase 2 (mapping): clusters are LPT-packed onto the P processors by total
// work (largest cluster first onto the least-loaded processor).
// Phase 3 (ordering): tasks are placed in decreasing upward-rank order on
// their cluster's processor with insertion-based earliest start.
#pragma once

#include "sched/scheduler.hpp"

namespace tsched {

class LinearClusteringScheduler final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "lc"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;
};

}  // namespace tsched
