#include "sched/cpop.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "sched/builder.hpp"
#include "sched/ranks.hpp"
#include "trace/decision.hpp"
#include "trace/trace.hpp"

namespace tsched {

Schedule CpopScheduler::schedule(const Problem& problem) const { return run(problem, nullptr); }

Schedule CpopScheduler::schedule_traced(const Problem& problem, trace::TraceSink* sink) const {
    return run(problem, sink);
}

Schedule CpopScheduler::run(const Problem& problem, trace::TraceSink* sink) const {
    TSCHED_SPAN("sched/cpop");
    const Dag& dag = problem.dag();
    const std::size_t n = problem.num_tasks();
    const auto ru = upward_rank(problem, RankCost::kMean);
    const auto rd = downward_rank(problem, RankCost::kMean);

    std::vector<double> priority(n);
    for (std::size_t v = 0; v < n; ++v) priority[v] = ru[v] + rd[v];
    const double cp_len = n > 0 ? *std::max_element(priority.begin(), priority.end()) : 0.0;
    const double eps = 1e-9 * std::max(1.0, cp_len);

    // Walk one critical path from an entry task whose priority equals |CP|.
    std::vector<bool> on_cp(n, false);
    TaskId cur = kInvalidTask;
    for (const TaskId v : dag.sources()) {
        if (std::abs(priority[static_cast<std::size_t>(v)] - cp_len) <= eps) {
            cur = v;
            break;
        }
    }
    while (cur != kInvalidTask) {
        on_cp[static_cast<std::size_t>(cur)] = true;
        TaskId next = kInvalidTask;
        for (const AdjEdge& e : dag.successors(cur)) {
            if (std::abs(priority[static_cast<std::size_t>(e.task)] - cp_len) <= eps) {
                next = e.task;
                break;
            }
        }
        cur = next;
    }

    // The CP processor minimises the path's total execution time.
    ProcId cp_proc = 0;
    double best_total = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < problem.num_procs(); ++p) {
        double total = 0.0;
        for (std::size_t v = 0; v < n; ++v) {
            if (on_cp[v]) total += problem.exec_time(static_cast<TaskId>(v),
                                                     static_cast<ProcId>(p));
        }
        if (total < best_total) {
            best_total = total;
            cp_proc = static_cast<ProcId>(p);
        }
    }

    // Ready-list scheduling by decreasing priority.
    ScheduleBuilder builder(problem);
    auto cmp = [&](TaskId a, TaskId b) {
        const double pa = priority[static_cast<std::size_t>(a)];
        const double pb = priority[static_cast<std::size_t>(b)];
        if (pa != pb) return pa < pb;  // max-heap on priority
        return a > b;
    };
    std::priority_queue<TaskId, std::vector<TaskId>, decltype(cmp)> ready(cmp);
    std::vector<std::size_t> pending(n);
    for (std::size_t v = 0; v < n; ++v) {
        pending[v] = dag.in_degree(static_cast<TaskId>(v));
        if (pending[v] == 0) ready.push(static_cast<TaskId>(v));
    }
    while (!ready.empty()) {
        const TaskId v = ready.top();
        ready.pop();
        trace::DecisionRecord rec;
        if (on_cp[static_cast<std::size_t>(v)]) {
            const double eft = sink != nullptr ? builder.eft(v, cp_proc, true) : 0.0;
            const Placement pl = builder.place(v, cp_proc, /*insertion=*/true);
            if (sink != nullptr) {
                rec.candidates.push_back(
                    {cp_proc, eft - problem.exec_time(v, cp_proc), eft, 0.0, eft});
                rec.reason = "critical-path task, pinned to CP processor P" +
                             std::to_string(cp_proc);
                rec.chosen = cp_proc;
                rec.start = pl.start;
                rec.finish = pl.finish;
            }
        } else {
            ProcId best_proc = 0;
            double best_eft = builder.eft(v, 0, true);
            if (sink != nullptr) {
                rec.candidates.push_back(
                    {0, best_eft - problem.exec_time(v, 0), best_eft, 0.0, best_eft});
            }
            for (std::size_t p = 1; p < problem.num_procs(); ++p) {
                const double candidate = builder.eft(v, static_cast<ProcId>(p), true);
                if (sink != nullptr) {
                    rec.candidates.push_back(
                        {static_cast<ProcId>(p),
                         candidate - problem.exec_time(v, static_cast<ProcId>(p)), candidate,
                         0.0, candidate});
                }
                if (candidate < best_eft) {
                    best_eft = candidate;
                    best_proc = static_cast<ProcId>(p);
                }
            }
            const Placement pl = builder.place(v, best_proc, true);
            if (sink != nullptr) {
                rec.reason = "min EFT (insertion)";
                rec.chosen = best_proc;
                rec.start = pl.start;
                rec.finish = pl.finish;
            }
        }
        if (sink != nullptr) {
            rec.task = v;
            rec.rank = priority[static_cast<std::size_t>(v)];
            sink->record(std::move(rec));
        }
        for (const AdjEdge& e : dag.successors(v)) {
            if (--pending[static_cast<std::size_t>(e.task)] == 0) ready.push(e.task);
        }
    }
    return std::move(builder).take();
}

}  // namespace tsched
