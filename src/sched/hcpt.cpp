#include "sched/hcpt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "graph/algorithms.hpp"
#include "sched/builder.hpp"
#include "sched/ranks.hpp"

namespace tsched {

Schedule HcptScheduler::schedule(const Problem& problem) const {
    const Dag& dag = problem.dag();
    const std::size_t n = problem.num_tasks();

    // AEST: earliest start under mean execution + mean communication costs.
    std::vector<double> aest(n, 0.0);
    const auto topo = topological_order(dag);
    for (const TaskId v : topo) {
        double start = 0.0;
        for (const AdjEdge& e : dag.predecessors(v)) {
            start = std::max(start, aest[static_cast<std::size_t>(e.task)] +
                                        problem.mean_exec(e.task) +
                                        problem.mean_comm_data(e.data));
        }
        aest[static_cast<std::size_t>(v)] = start;
    }
    // ALST: latest start that keeps the mean-cost critical length.
    double horizon = 0.0;
    for (const TaskId v : dag.sinks()) {
        horizon = std::max(horizon, aest[static_cast<std::size_t>(v)] + problem.mean_exec(v));
    }
    std::vector<double> alst(n, 0.0);
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const TaskId v = *it;
        if (dag.out_degree(v) == 0) {
            alst[static_cast<std::size_t>(v)] = horizon - problem.mean_exec(v);
            continue;
        }
        double latest = std::numeric_limits<double>::infinity();
        for (const AdjEdge& e : dag.successors(v)) {
            latest = std::min(latest, alst[static_cast<std::size_t>(e.task)] -
                                          problem.mean_comm_data(e.data));
        }
        alst[static_cast<std::size_t>(v)] = latest - problem.mean_exec(v);
    }

    // Critical tasks: zero slack (up to numeric noise).
    const double eps = 1e-9 * std::max(1.0, horizon);
    std::vector<TaskId> critical;
    for (std::size_t v = 0; v < n; ++v) {
        if (std::abs(alst[v] - aest[v]) <= eps) critical.push_back(static_cast<TaskId>(v));
    }
    // Push in decreasing ALST so the stack top is the smallest-ALST critical
    // task (the chain head), matching the paper's listing order.
    std::sort(critical.begin(), critical.end(), [&](TaskId a, TaskId b) {
        const double la = alst[static_cast<std::size_t>(a)];
        const double lb = alst[static_cast<std::size_t>(b)];
        if (la != lb) return la > lb;
        return a > b;
    });

    std::vector<TaskId> listing;
    listing.reserve(n);
    std::vector<bool> listed(n, false);
    std::vector<TaskId> stack(critical.begin(), critical.end());
    auto unlisted_parent = [&](TaskId v) -> TaskId {
        TaskId best = kInvalidTask;
        for (const AdjEdge& e : dag.predecessors(v)) {
            if (listed[static_cast<std::size_t>(e.task)]) continue;
            if (best == kInvalidTask ||
                alst[static_cast<std::size_t>(e.task)] < alst[static_cast<std::size_t>(best)] ||
                (alst[static_cast<std::size_t>(e.task)] == alst[static_cast<std::size_t>(best)] &&
                 e.task < best)) {
                best = e.task;
            }
        }
        return best;
    };
    while (!stack.empty()) {
        const TaskId top = stack.back();
        if (listed[static_cast<std::size_t>(top)]) {
            stack.pop_back();
            continue;
        }
        const TaskId parent = unlisted_parent(top);
        if (parent != kInvalidTask) {
            stack.push_back(parent);
        } else {
            listed[static_cast<std::size_t>(top)] = true;
            listing.push_back(top);
            stack.pop_back();
        }
    }
    // Non-critical tasks unreachable from the critical parent trees (possible
    // in disconnected graphs): append in topological order.
    for (const TaskId v : topo) {
        if (!listed[static_cast<std::size_t>(v)]) listing.push_back(v);
    }

    ScheduleBuilder builder(problem);
    for (const TaskId v : listing) {
        ProcId best_proc = 0;
        double best_eft = builder.eft(v, 0, true);
        for (std::size_t p = 1; p < problem.num_procs(); ++p) {
            const double candidate = builder.eft(v, static_cast<ProcId>(p), true);
            if (candidate < best_eft) {
                best_eft = candidate;
                best_proc = static_cast<ProcId>(p);
            }
        }
        builder.place(v, best_proc, true);
    }
    return std::move(builder).take();
}

}  // namespace tsched
