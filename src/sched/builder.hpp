// ScheduleBuilder: the shared machinery of every list scheduler in the
// library — data-ready times, insertion-based earliest-start computation over
// per-processor busy timelines, and placement commits (including duplicates).
//
// All algorithms (HEFT, CPOP, DLS, ETF, MCP, DSH, BTDH, ILS, ...) are thin
// priority/selection policies over this class, which keeps their code close
// to the papers' pseudocode and concentrates the tricky interval bookkeeping
// in one tested place.
#pragma once

#include <optional>
#include <vector>

#include "platform/problem.hpp"
#include "sched/schedule.hpp"

namespace tsched {

class ScheduleBuilder {
public:
    explicit ScheduleBuilder(const Problem& problem);

    [[nodiscard]] const Problem& problem() const noexcept { return *problem_; }

    /// Read-only view of the partial schedule built so far (duplication
    /// heuristics inspect per-predecessor data availability through it).
    [[nodiscard]] const Schedule& partial() const noexcept { return schedule_; }

    // ---- queries (no mutation) -------------------------------------------

    [[nodiscard]] bool is_placed(TaskId v) const;

    /// Finish time of the primary placement of v; throws if unplaced.
    [[nodiscard]] double finish_time(TaskId v) const;

    /// Earliest time all of v's inputs are available on processor p, taking
    /// the best placement (original or duplicate) of each predecessor.
    /// Unplaced predecessors yield +inf.  Tasks without predecessors: 0.
    [[nodiscard]] double data_ready(TaskId v, ProcId p) const;

    /// Like data_ready but *ignoring* unplaced predecessors (their arrival
    /// counts as 0).  Used by lookahead policies that must estimate a
    /// successor's start while some of its inputs are still unscheduled.
    [[nodiscard]] double data_ready_partial(TaskId v, ProcId p) const;

    /// Earliest start on p at or after `ready` for a task of length
    /// `duration`.  With `insertion` the first sufficient idle gap between
    /// existing placements is used (HEFT's insertion-based policy); without
    /// it the task goes after the last placement.
    [[nodiscard]] double earliest_start(ProcId p, double ready, double duration,
                                        bool insertion) const;

    /// Earliest finish time of v on p = earliest_start(data_ready) + w(v,p).
    /// +inf when some predecessor is unplaced.
    [[nodiscard]] double eft(TaskId v, ProcId p, bool insertion) const;

    /// Earliest start on p for `duration` that both begins at/after `ready`
    /// and finishes by `deadline`; nullopt when no such slot exists.  Used by
    /// the duplication heuristics to fill idle holes.
    [[nodiscard]] std::optional<double> find_slot_before(ProcId p, double ready, double duration,
                                                         double deadline, bool insertion) const;

    /// Latest finish currently scheduled on p (0 when idle).
    [[nodiscard]] double proc_available(ProcId p) const;

    /// Current partial makespan.
    [[nodiscard]] double current_makespan() const noexcept { return makespan_; }

    // ---- commits ----------------------------------------------------------

    /// Place v on p at its earliest feasible time; returns the placement.
    /// Precondition: all predecessors placed, v not yet placed.
    Placement place(TaskId v, ProcId p, bool insertion);

    /// Place v on p exactly at `start` (caller guarantees feasibility —
    /// the validator will catch violations).  Used by duplication code that
    /// has already located a slot via find_slot_before.
    Placement place_at(TaskId v, ProcId p, double start);

    /// Add a *duplicate* of an already-placed task at `start` on p.
    Placement place_duplicate_at(TaskId v, ProcId p, double start);

    /// Number of placements committed so far (duplicates included).
    [[nodiscard]] std::size_t num_placements() const noexcept { return num_placements_; }

    // ---- speculation (checkpoint / rollback) -------------------------------
    //
    // Trial-placement loops (ILS-D's duplication probes, Lookahead-HEFT's
    // child probes, DSH/BTDH's per-processor trials) speculate directly on
    // this builder and roll back, instead of deep-copying the whole state
    // once per candidate.  Every commit is recorded in an undo log; a
    // checkpoint is just the log length, so checkpoints nest freely and cost
    // nothing to take.

    /// Opaque marker for the current state; restore with rollback().
    using Checkpoint = std::size_t;

    [[nodiscard]] Checkpoint checkpoint() const noexcept { return undo_log_.size(); }

    /// Undo every placement (primary or duplicate) committed since `mark`,
    /// restoring per-processor timelines, placed flags, the makespan, and
    /// the placement count to their values at checkpoint time.  Throws
    /// std::logic_error when `mark` does not correspond to a prior
    /// checkpoint of this builder.
    void rollback(Checkpoint mark);

    /// Move the finished schedule out; the builder must not be used after.
    [[nodiscard]] Schedule take() &&;

private:
    struct Interval {
        double start = 0.0;
        double finish = 0.0;
    };

    struct UndoEntry {
        TaskId task = kInvalidTask;
        double prev_makespan = 0.0;  ///< makespan before this commit
        bool duplicate = false;
    };

    Placement commit(TaskId v, ProcId p, double start, bool duplicate);
    void insert_interval(ProcId p, Interval iv);
    void erase_interval(ProcId p, Interval iv);

    const Problem* problem_;
    Schedule schedule_;
    std::vector<std::vector<Interval>> busy_;  // per proc, sorted by start
    std::vector<bool> placed_;
    std::vector<UndoEntry> undo_log_;  // one entry per commit, in order
    double makespan_ = 0.0;
    std::size_t num_placements_ = 0;
};

}  // namespace tsched
