// ScheduleBuilder: the shared machinery of every list scheduler in the
// library — data-ready times, insertion-based earliest-start computation over
// per-processor busy timelines, and placement commits (including duplicates).
//
// All algorithms (HEFT, CPOP, DLS, ETF, MCP, DSH, BTDH, ILS, ...) are thin
// priority/selection policies over this class, which keeps their code close
// to the papers' pseudocode and concentrates the tricky interval bookkeeping
// in one tested place.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "platform/problem.hpp"
#include "sched/schedule.hpp"
#include "sched/timeline.hpp"

namespace tsched {

class ScheduleBuilder {
public:
    explicit ScheduleBuilder(const Problem& problem);

    // Copyable (branch-and-bound forks child builders) and movable; the
    // destructor flushes the locally accumulated probe tallies to the global
    // trace counters in one shot — one relaxed atomic add per probe was
    // measurable on 10k-task schedules.  PendingTally's copy/move semantics
    // keep each count owned by exactly one live builder.
    ScheduleBuilder(const ScheduleBuilder&) = default;
    ScheduleBuilder& operator=(const ScheduleBuilder&) = default;
    ScheduleBuilder(ScheduleBuilder&&) = default;
    ScheduleBuilder& operator=(ScheduleBuilder&&) = default;
    ~ScheduleBuilder();

    [[nodiscard]] const Problem& problem() const noexcept { return *problem_; }

    /// Read-only view of the partial schedule built so far (duplication
    /// heuristics inspect per-predecessor data availability through it).
    [[nodiscard]] const Schedule& partial() const noexcept { return schedule_; }

    // ---- queries (no mutation) -------------------------------------------

    [[nodiscard]] bool is_placed(TaskId v) const;

    /// Finish time of the primary placement of v; throws if unplaced.
    [[nodiscard]] double finish_time(TaskId v) const;

    /// Earliest time all of v's inputs are available on processor p, taking
    /// the best placement (original or duplicate) of each predecessor.
    /// Unplaced predecessors yield +inf.  Tasks without predecessors: 0.
    [[nodiscard]] double data_ready(TaskId v, ProcId p) const;

    /// Like data_ready but *ignoring* unplaced predecessors (their arrival
    /// counts as 0).  Used by lookahead policies that must estimate a
    /// successor's start while some of its inputs are still unscheduled.
    [[nodiscard]] double data_ready_partial(TaskId v, ProcId p) const;

    /// The predecessor whose data arrival on p binds v's ready time — the
    /// duplication heuristics' copy candidate — or kInvalidTask when v's
    /// start is not communication-bound: no predecessors, binding arrival at
    /// time 0, or some placement of the binding predecessor already sits on
    /// p and delivers within `eps` of the binding time (a copy cannot help).
    /// Ties keep the first binding predecessor in CSR order, matching the
    /// historical helper the duplication schedulers used.
    [[nodiscard]] TaskId binding_remote_pred(TaskId v, ProcId p, double eps) const;

    /// Earliest start on p at or after `ready` for a task of length
    /// `duration`.  With `insertion` the first sufficient idle gap between
    /// existing placements is used (HEFT's insertion-based policy); without
    /// it the task goes after the last placement.
    [[nodiscard]] double earliest_start(ProcId p, double ready, double duration,
                                        bool insertion) const;

    /// Earliest finish time of v on p = earliest_start(data_ready) + w(v,p).
    /// +inf when some predecessor is unplaced.
    [[nodiscard]] double eft(TaskId v, ProcId p, bool insertion) const;

    /// Earliest start on p for `duration` that both begins at/after `ready`
    /// and finishes by `deadline`; nullopt when no such slot exists.  Used by
    /// the duplication heuristics to fill idle holes.
    [[nodiscard]] std::optional<double> find_slot_before(ProcId p, double ready, double duration,
                                                         double deadline, bool insertion) const;

    /// Latest finish currently scheduled on p (0 when idle).
    [[nodiscard]] double proc_available(ProcId p) const;

    /// Current partial makespan.
    [[nodiscard]] double current_makespan() const noexcept { return makespan_; }

    // ---- commits ----------------------------------------------------------

    /// Place v on p at its earliest feasible time; returns the placement.
    /// Precondition: all predecessors placed, v not yet placed.
    Placement place(TaskId v, ProcId p, bool insertion);

    /// Place v on p exactly at `start` (caller guarantees feasibility —
    /// the validator will catch violations).  Used by duplication code that
    /// has already located a slot via find_slot_before.
    Placement place_at(TaskId v, ProcId p, double start);

    /// Add a *duplicate* of an already-placed task at `start` on p.
    Placement place_duplicate_at(TaskId v, ProcId p, double start);

    /// Number of placements committed so far (duplicates included).
    [[nodiscard]] std::size_t num_placements() const noexcept { return num_placements_; }

    // ---- speculation (checkpoint / rollback) -------------------------------
    //
    // Trial-placement loops (ILS-D's duplication probes, Lookahead-HEFT's
    // child probes, DSH/BTDH's per-processor trials) speculate directly on
    // this builder and roll back, instead of deep-copying the whole state
    // once per candidate.  Every commit is recorded in an undo log; a
    // checkpoint is just the log length, so checkpoints nest freely and cost
    // nothing to take.

    /// Opaque marker for the current state; restore with rollback().
    using Checkpoint = std::size_t;

    [[nodiscard]] Checkpoint checkpoint() const noexcept { return undo_log_.size(); }

    /// Undo every placement (primary or duplicate) committed since `mark`,
    /// restoring per-processor timelines, placed flags, the makespan, and
    /// the placement count to their values at checkpoint time.  Throws
    /// std::logic_error when `mark` does not correspond to a prior
    /// checkpoint of this builder.
    void rollback(Checkpoint mark);

    /// Move the finished schedule out; the builder must not be used after.
    [[nodiscard]] Schedule take() &&;

private:
    struct UndoEntry {
        TaskId task = kInvalidTask;
        double prev_makespan = 0.0;       ///< makespan before this commit
        std::uint64_t prev_modified = 0;  ///< task_modified_[task] before it
        std::size_t ready_log_mark = 0;   ///< ready_log_ length at commit
        std::size_t succ_log_mark = 0;    ///< succ_log_ length at commit
        bool duplicate = false;
    };

    Placement commit(TaskId v, ProcId p, double start, bool duplicate);

    /// Compute and cache data_ready(v, q) for *every* processor q in one
    /// predecessor walk.  Every caller that misses on (v, p) probes the
    /// sibling processors too (HEFT evaluates all of them per task; the
    /// trial loops sweep them), so amortising the predecessor-state loads
    /// across the row removes ~(P-1)/P of the walk's memory traffic.  The
    /// per-processor comparison chains run in CSR predecessor order with the
    /// scalar loop's exact arrival expressions, so the cached values are
    /// bit-identical to per-(v, p) computation.
    void fill_ready_row(TaskId v) const;

    /// Record that v's placement set changed (a commit): advances the
    /// builder epoch, invalidating every cached data-ready value that
    /// depends on v.  Each successor's preds_modified_ watermark is raised
    /// to the new epoch, with its prior value pushed onto succ_log_ so
    /// rollback can restore the watermarks exactly.
    void touch(TaskId v) {
        const std::uint64_t e = ++epoch_;
        task_modified_[static_cast<std::size_t>(v)] = e;
        for (const TaskId w : csr_->succ_tasks(v)) {
            const auto wi = static_cast<std::size_t>(w);
            succ_log_.emplace_back(wi, preds_modified_[wi]);
            preds_modified_[wi] = e;
        }
    }

    const Problem* problem_;
    const CsrAdjacency* csr_;  ///< flat adjacency of problem_->dag(), built once
    const LinkModel* links_;
    std::size_t procs_;
    Schedule schedule_;
    std::vector<BusyTimeline> busy_;  // per proc, flat-order by start
    std::vector<bool> placed_;
    std::vector<UndoEntry> undo_log_;  // one entry per commit, in order
    double makespan_ = 0.0;
    std::size_t num_placements_ = 0;

    // data_ready memoisation keyed on predecessor placement epochs: HEFT
    // probes every (task, proc) pair and the speculative schedulers
    // (ILS-D, DSH/BTDH, lookahead) re-probe the same pair many times between
    // placements; each probe walks the predecessors and pays a virtual
    // LinkModel::comm_time call per placement.  A cached entry written at
    // epoch E stays valid while no predecessor's placement set changed after
    // E.  Commits advance the epoch via touch(); rollback *restores* each
    // popped task's pre-commit stamp — the placement state is back to what
    // the surviving cache entries were computed from, so they become valid
    // again.  The entries written while speculative commits were in effect
    // are the exception (they reflect the rolled-back state); every cache
    // write is appended to ready_log_, and rollback zero-stamps the suffix
    // written after the restored checkpoint.  Stamp 0 means "never computed"
    // (the epoch counter starts at 1).
    // Validation is O(1), not O(in-degree): preds_modified_[v] caches
    // max over v's predecessors of task_modified_ (the only quantity the
    // per-predecessor walk ever compared against the stamp), maintained by
    // touch() raising each successor's watermark and rollback restoring the
    // logged prior values.  Commits are ~25x rarer than validations in the
    // speculative schedulers, so paying O(out-degree) per commit to make
    // every lookup one comparison is a large net win.
    std::uint64_t epoch_ = 1;
    std::vector<std::uint64_t> task_modified_;        // per task
    std::vector<std::uint64_t> preds_modified_;       // per task (see above)
    mutable std::vector<double> ready_cache_;         // task-major, procs_ wide
    mutable std::vector<std::uint64_t> ready_stamp_;  // parallel to ready_cache_
    mutable std::vector<std::size_t> ready_log_;      // cache-write order
    // Argmax sibling of ready_cache_: the first predecessor whose arrival
    // achieves the cached ready time (kInvalidTask when none exceeds 0) —
    // exactly the candidate binding_remote_pred would recompute.  Guarded by
    // the same stamp, so it needs no undo bookkeeping of its own.
    mutable std::vector<TaskId> ready_binding_;
    // (succ index, prior watermark) pairs in touch order; UndoEntry marks
    // delimit each commit's span.
    std::vector<std::pair<std::size_t, std::uint64_t>> succ_log_;

    // Uniform-links fast path: with a UniformLinkModel the remote transfer
    // cost of an edge is the same for every distinct processor pair, so it
    // is precomputed once per predecessor edge (CSR pred order) and the hot
    // data_ready loops skip the virtual comm_time call and its division.
    // The cached value is exactly comm_time(data, src, dst) for src != dst,
    // so the fast path is bit-identical to the generic one.
    bool uniform_links_ = false;
    std::vector<double> pred_remote_;            // per pred edge, CSR order
    std::vector<std::size_t> pred_remote_off_;   // per task offsets into it

    // Flat mirror of each task's *primary* placement.  Schedule stores
    // placements in per-task heap vectors, so the data_ready loop pays a
    // pointer chase per predecessor; tasks without duplicates (the common
    // case — duplication heuristics are the only source of extras) are
    // served from these arrays instead.  extra_placements_[v] > 0 falls
    // back to the full span walk.
    std::vector<double> primary_finish_;       // valid while placed_[v]
    std::vector<ProcId> primary_proc_;         // valid while placed_[v]
    std::vector<std::uint32_t> extra_placements_;  // duplicates per task

    // One locally accumulated trace-counter delta, flushed by the builder's
    // destructor.  A copied tally starts at zero (the counts stay with the
    // builder that did the probing); a moved tally transfers its count and
    // zeroes the source, so every probe is flushed exactly once.
    struct PendingTally {
        std::size_t n = 0;
        PendingTally() = default;
        PendingTally(const PendingTally&) noexcept {}
        PendingTally& operator=(const PendingTally&) noexcept { return *this; }
        PendingTally(PendingTally&& other) noexcept : n(other.n) { other.n = 0; }
        PendingTally& operator=(PendingTally&& other) noexcept {
            std::swap(n, other.n);  // the source flushes our old count
            return *this;
        }
        ~PendingTally() = default;
        void operator+=(std::size_t delta) noexcept { n += delta; }
    };

    mutable PendingTally eft_evals_pending_;
    mutable PendingTally cache_hits_pending_;
    mutable PendingTally cache_misses_pending_;
};

}  // namespace tsched
