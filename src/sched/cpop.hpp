// CPOP — Critical Path On a Processor (Topcuoglu, Hariri, Wu; TPDS 2002).
//
// Task priority is rank_u + rank_d.  The tasks whose priority equals the
// critical-path length form the (mean-cost) critical path; all of them are
// pinned to the single processor that minimises the path's total execution
// time.  Remaining tasks use insertion-based EFT.  Scheduling is ready-list
// driven (highest priority ready task first).
#pragma once

#include "sched/scheduler.hpp"

namespace tsched {

class CpopScheduler final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "cpop"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;
    [[nodiscard]] Schedule schedule_traced(const Problem& problem,
                                           trace::TraceSink* sink) const override;

private:
    [[nodiscard]] Schedule run(const Problem& problem, trace::TraceSink* sink) const;
};

}  // namespace tsched
