#include "sched/dls.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "sched/builder.hpp"
#include "sched/ranks.hpp"

namespace tsched {

Schedule DlsScheduler::schedule(const Problem& problem) const {
    const Dag& dag = problem.dag();
    const std::size_t n = problem.num_tasks();
    const auto sl = static_level(problem, RankCost::kMean);

    ScheduleBuilder builder(problem);
    std::vector<std::size_t> pending(n);
    std::vector<TaskId> ready;
    for (std::size_t v = 0; v < n; ++v) {
        pending[v] = dag.in_degree(static_cast<TaskId>(v));
        if (pending[v] == 0) ready.push_back(static_cast<TaskId>(v));
    }

    while (!ready.empty()) {
        TaskId best_task = kInvalidTask;
        ProcId best_proc = kInvalidProc;
        double best_dl = -std::numeric_limits<double>::infinity();
        for (const TaskId v : ready) {
            const double mean_w = problem.mean_exec(v);
            for (std::size_t p = 0; p < problem.num_procs(); ++p) {
                const auto proc = static_cast<ProcId>(p);
                const double da = builder.data_ready(v, proc);
                const double tf = builder.proc_available(proc);
                const double delta = mean_w - problem.exec_time(v, proc);
                const double dl = sl[static_cast<std::size_t>(v)] - std::max(da, tf) + delta;
                if (dl > best_dl || (dl == best_dl && (v < best_task ||
                                                       (v == best_task && proc < best_proc)))) {
                    best_dl = dl;
                    best_task = v;
                    best_proc = proc;
                }
            }
        }
        builder.place(best_task, best_proc, /*insertion=*/false);
        ready.erase(std::find(ready.begin(), ready.end(), best_task));
        for (const AdjEdge& e : dag.successors(best_task)) {
            if (--pending[static_cast<std::size_t>(e.task)] == 0) ready.push_back(e.task);
        }
    }
    return std::move(builder).take();
}

}  // namespace tsched
