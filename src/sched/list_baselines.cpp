#include "sched/list_baselines.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "sched/builder.hpp"
#include "sched/ranks.hpp"
#include "util/rng.hpp"

namespace tsched {

namespace {
/// Shared ready-set bookkeeping for the step-wise baselines.
class ReadySet {
public:
    explicit ReadySet(const Dag& dag) : dag_(&dag), pending_(dag.num_tasks()) {
        for (std::size_t v = 0; v < dag.num_tasks(); ++v) {
            pending_[v] = dag.in_degree(static_cast<TaskId>(v));
            if (pending_[v] == 0) ready_.push_back(static_cast<TaskId>(v));
        }
    }

    [[nodiscard]] bool empty() const noexcept { return ready_.empty(); }
    [[nodiscard]] const std::vector<TaskId>& tasks() const noexcept { return ready_; }

    void complete(TaskId v) {
        ready_.erase(std::find(ready_.begin(), ready_.end(), v));
        for (const AdjEdge& e : dag_->successors(v)) {
            if (--pending_[static_cast<std::size_t>(e.task)] == 0) ready_.push_back(e.task);
        }
    }

private:
    const Dag* dag_;
    std::vector<std::size_t> pending_;
    std::vector<TaskId> ready_;
};

}  // namespace

Schedule EtfScheduler::schedule(const Problem& problem) const {
    const auto sl = static_level(problem, RankCost::kMean);
    ScheduleBuilder builder(problem);
    ReadySet ready(problem.dag());
    while (!ready.empty()) {
        TaskId best_task = kInvalidTask;
        ProcId best_proc = kInvalidProc;
        double best_est = std::numeric_limits<double>::infinity();
        for (const TaskId v : ready.tasks()) {
            for (std::size_t p = 0; p < problem.num_procs(); ++p) {
                const auto proc = static_cast<ProcId>(p);
                const double est = std::max(builder.data_ready(v, proc),
                                            builder.proc_available(proc));
                const bool better =
                    est < best_est ||
                    (est == best_est && best_task != kInvalidTask &&
                     (sl[static_cast<std::size_t>(v)] > sl[static_cast<std::size_t>(best_task)] ||
                      (sl[static_cast<std::size_t>(v)] == sl[static_cast<std::size_t>(best_task)] &&
                       v < best_task)));
                if (better) {
                    best_est = est;
                    best_task = v;
                    best_proc = proc;
                }
            }
        }
        builder.place(best_task, best_proc, /*insertion=*/false);
        ready.complete(best_task);
    }
    return std::move(builder).take();
}

Schedule McpScheduler::schedule(const Problem& problem) const {
    const Dag& dag = problem.dag();
    const std::size_t n = problem.num_tasks();
    const auto alap = alap_start(problem, RankCost::kMean);

    // MCP's priority: ascending ALAP; ties by the smallest successor ALAP
    // (a bounded approximation of the paper's full descendant ALAP lists),
    // then by id.  The order is topologically safe: alap(parent) < alap(child)
    // whenever execution costs are positive.
    std::vector<double> succ_alap(n, std::numeric_limits<double>::infinity());
    for (std::size_t v = 0; v < n; ++v) {
        for (const AdjEdge& e : dag.successors(static_cast<TaskId>(v))) {
            succ_alap[v] = std::min(succ_alap[v], alap[static_cast<std::size_t>(e.task)]);
        }
    }
    std::vector<TaskId> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
        const auto ai = static_cast<std::size_t>(a);
        const auto bi = static_cast<std::size_t>(b);
        if (alap[ai] != alap[bi]) return alap[ai] < alap[bi];
        if (succ_alap[ai] != succ_alap[bi]) return succ_alap[ai] < succ_alap[bi];
        return a < b;
    });

    ScheduleBuilder builder(problem);
    for (const TaskId v : order) {
        // Earliest start (not finish) processor, insertion-based — MCP's rule.
        ProcId best_proc = 0;
        double best_start = std::numeric_limits<double>::infinity();
        for (std::size_t p = 0; p < problem.num_procs(); ++p) {
            const auto proc = static_cast<ProcId>(p);
            const double ready = builder.data_ready(v, proc);
            const double start =
                builder.earliest_start(proc, ready, problem.exec_time(v, proc), true);
            if (start < best_start) {
                best_start = start;
                best_proc = proc;
            }
        }
        builder.place(v, best_proc, true);
    }
    return std::move(builder).take();
}

Schedule HlfetScheduler::schedule(const Problem& problem) const {
    const auto sl = static_level(problem, RankCost::kMean);
    ScheduleBuilder builder(problem);
    ReadySet ready(problem.dag());
    while (!ready.empty()) {
        // Highest static level among ready tasks.
        TaskId best_task = ready.tasks().front();
        for (const TaskId v : ready.tasks()) {
            if (sl[static_cast<std::size_t>(v)] > sl[static_cast<std::size_t>(best_task)] ||
                (sl[static_cast<std::size_t>(v)] == sl[static_cast<std::size_t>(best_task)] &&
                 v < best_task)) {
                best_task = v;
            }
        }
        // Earliest-start processor, non-insertion.
        ProcId best_proc = 0;
        double best_est = std::numeric_limits<double>::infinity();
        for (std::size_t p = 0; p < problem.num_procs(); ++p) {
            const auto proc = static_cast<ProcId>(p);
            const double est =
                std::max(builder.data_ready(best_task, proc), builder.proc_available(proc));
            if (est < best_est) {
                best_est = est;
                best_proc = proc;
            }
        }
        builder.place(best_task, best_proc, false);
        ready.complete(best_task);
    }
    return std::move(builder).take();
}

namespace {
Schedule min_or_max_min(const Problem& problem, bool min_variant) {
    ScheduleBuilder builder(problem);
    ReadySet ready(problem.dag());
    while (!ready.empty()) {
        TaskId best_task = kInvalidTask;
        ProcId best_proc = kInvalidProc;
        double best_key = min_variant ? std::numeric_limits<double>::infinity()
                                      : -std::numeric_limits<double>::infinity();
        for (const TaskId v : ready.tasks()) {
            ProcId v_proc = 0;
            double v_eft = builder.eft(v, 0, true);
            for (std::size_t p = 1; p < problem.num_procs(); ++p) {
                const double candidate = builder.eft(v, static_cast<ProcId>(p), true);
                if (candidate < v_eft) {
                    v_eft = candidate;
                    v_proc = static_cast<ProcId>(p);
                }
            }
            const bool better = min_variant ? v_eft < best_key : v_eft > best_key;
            if (better || (v_eft == best_key && v < best_task)) {
                best_key = v_eft;
                best_task = v;
                best_proc = v_proc;
            }
        }
        builder.place(best_task, best_proc, true);
        ready.complete(best_task);
    }
    return std::move(builder).take();
}
}  // namespace

Schedule MinMinScheduler::schedule(const Problem& problem) const {
    return min_or_max_min(problem, true);
}

Schedule MaxMinScheduler::schedule(const Problem& problem) const {
    return min_or_max_min(problem, false);
}

Schedule RandomScheduler::schedule(const Problem& problem) const {
    Rng rng(seed_);
    ScheduleBuilder builder(problem);
    ReadySet ready(problem.dag());
    while (!ready.empty()) {
        const auto& tasks = ready.tasks();
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(tasks.size() - 1)));
        const TaskId v = tasks[pick];
        const auto proc = static_cast<ProcId>(
            rng.uniform_int(0, static_cast<std::int64_t>(problem.num_procs() - 1)));
        builder.place(v, proc, /*insertion=*/false);
        ready.complete(v);
    }
    return std::move(builder).take();
}

}  // namespace tsched
