// Schedule persistence.
//
// TSS ("task schedule") text format — round-trips exactly, so a schedule
// computed once can be archived, diffed, executed, or re-validated later:
//   tss <num_tasks> <num_procs>
//   p <task> <proc> <start> <finish>      # one line per placement,
//                                         # duplicates simply repeat a task
#pragma once

#include <iosfwd>
#include <string>

#include "sched/schedule.hpp"

namespace tsched {

void write_tss(std::ostream& os, const Schedule& schedule);
[[nodiscard]] std::string to_tss(const Schedule& schedule);

/// Parse a TSS document; throws std::runtime_error with a line-numbered
/// message on malformed input.
[[nodiscard]] Schedule read_tss(std::istream& is);
[[nodiscard]] Schedule read_tss_string(const std::string& text);

void save_tss(const std::string& path, const Schedule& schedule);
[[nodiscard]] Schedule load_tss(const std::string& path);

}  // namespace tsched
