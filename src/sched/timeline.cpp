#include "sched/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "trace/trace.hpp"

namespace tsched {

namespace {

/// Conservative screen slack (header has the derivation): any interval fit
/// inside the block implies duration ≤ max_gap + this.
double screen_slack(double max_finish, double max_gap) {
    return 4.0 * std::numeric_limits<double>::epsilon() * (max_finish + std::fabs(max_gap)) +
           1e-300;
}

}  // namespace

BusyTimeline::Mode BusyTimeline::default_mode() {
    const char* env = std::getenv("TSCHED_LINEAR_TIMELINE");
    if (env != nullptr && std::strcmp(env, "0") != 0) return Mode::kLinear;
    return Mode::kBucketed;
}

BusyTimeline::BusyTimeline(Mode mode, std::size_t block_capacity)
    : mode_(mode), block_capacity_(block_capacity) {
    if (block_capacity_ == 0) {
        throw std::invalid_argument("BusyTimeline: block capacity must be positive");
    }
}

// Copies do not inherit pending tallies (the counts stay attributed to the
// queried object); moves transfer them so exactly one owner flushes.

BusyTimeline::BusyTimeline(const BusyTimeline& other)
    : mode_(other.mode_),
      block_capacity_(other.block_capacity_),
      blocks_(other.blocks_),
      size_(other.size_) {}

BusyTimeline& BusyTimeline::operator=(const BusyTimeline& other) {
    if (this != &other) {
        flush_tallies();
        mode_ = other.mode_;
        block_capacity_ = other.block_capacity_;
        blocks_ = other.blocks_;
        size_ = other.size_;
    }
    return *this;
}

BusyTimeline::BusyTimeline(BusyTimeline&& other) noexcept
    : mode_(other.mode_),
      block_capacity_(other.block_capacity_),
      blocks_(std::move(other.blocks_)),
      size_(other.size_),
      probes_pending_(other.probes_pending_),
      blocks_skipped_pending_(other.blocks_skipped_pending_),
      intervals_skipped_pending_(other.intervals_skipped_pending_) {
    other.size_ = 0;
    other.probes_pending_ = 0;
    other.blocks_skipped_pending_ = 0;
    other.intervals_skipped_pending_ = 0;
}

BusyTimeline& BusyTimeline::operator=(BusyTimeline&& other) noexcept {
    if (this != &other) {
        flush_tallies();
        mode_ = other.mode_;
        block_capacity_ = other.block_capacity_;
        blocks_ = std::move(other.blocks_);
        size_ = other.size_;
        probes_pending_ = other.probes_pending_;
        blocks_skipped_pending_ = other.blocks_skipped_pending_;
        intervals_skipped_pending_ = other.intervals_skipped_pending_;
        other.size_ = 0;
        other.probes_pending_ = 0;
        other.blocks_skipped_pending_ = 0;
        other.intervals_skipped_pending_ = 0;
    }
    return *this;
}

BusyTimeline::~BusyTimeline() { flush_tallies(); }

void BusyTimeline::flush_tallies() noexcept {
    if (probes_pending_ != 0) TSCHED_COUNT_ADD("insertion_probes", probes_pending_);
    if (blocks_skipped_pending_ != 0) {
        TSCHED_COUNT_ADD("timeline_blocks_skipped", blocks_skipped_pending_);
    }
    if (intervals_skipped_pending_ != 0) {
        TSCHED_COUNT_ADD("timeline_intervals_skipped", intervals_skipped_pending_);
    }
    probes_pending_ = 0;
    blocks_skipped_pending_ = 0;
    intervals_skipped_pending_ = 0;
}

double BusyTimeline::last_finish() const noexcept {
    return blocks_.empty() ? 0.0 : blocks_.back().iv.back().finish;
}

double BusyTimeline::earliest_start(double ready, double duration) const {
    if (mode_ == Mode::kLinear) {
        // The pre-index algorithm, verbatim: binary-search past intervals
        // whose finish is at or before `ready` (they can never host the
        // task), then scan the gaps for the first fit.
        static const std::vector<BusyInterval> kEmpty;
        const std::vector<BusyInterval>& timeline = blocks_.empty() ? kEmpty : blocks_.front().iv;
        auto it = std::lower_bound(
            timeline.begin(), timeline.end(), ready,
            [](const BusyInterval& iv, double t) { return iv.finish <= t; });
        double gap_start = it == timeline.begin() ? 0.0 : std::prev(it)->finish;
        for (; it != timeline.end(); ++it) {
            ++probes_pending_;
            const double candidate = std::max(gap_start, ready);
            if (candidate + duration <= it->start) return candidate;
            gap_start = it->finish;
        }
        ++probes_pending_;
        return std::max(gap_start, ready);
    }

    // Bucketed: reproduce the linear scan's starting cut at block
    // granularity.  On a feasible timeline each block's max_finish is its
    // last interval's finish and block max_finishes are non-decreasing, so
    // the first block with max_finish > ready holds the linear lower_bound
    // position.
    // List-scheduling queries cluster at the timeline tail, so resolve the
    // two dominant cases with direct last-block checks before paying for the
    // block binary search (each branch reproduces exactly what the
    // partition_point below would have decided).
    const std::size_t nb = blocks_.size();
    if (nb == 0 || blocks_[nb - 1].max_finish <= ready) {
        // Every interval finishes at or before `ready` (or the timeline is
        // empty): the task goes after the last finish, clamped to `ready`.
        ++probes_pending_;
        return std::max(last_finish(), ready);
    }
    std::size_t bi;
    if (nb == 1 || blocks_[nb - 2].max_finish <= ready) {
        bi = nb - 1;  // the cut lands in the last block
    } else {
        const auto b0_it = std::partition_point(
            blocks_.begin(), blocks_.end(),
            [ready](const Block& b) { return b.max_finish <= ready; });
        bi = static_cast<std::size_t>(b0_it - blocks_.begin());
    }

    // In-block lower_bound: the cut lands strictly inside the block because
    // a feasible block's max_finish is its last interval's finish and the
    // partition point guaranteed max_finish > ready.
    const std::vector<BusyInterval>& head = blocks_[bi].iv;
    const auto cut = std::lower_bound(
        head.begin(), head.end(), ready,
        [](const BusyInterval& a, double t) { return a.finish <= t; });
    std::size_t idx = static_cast<std::size_t>(cut - head.begin());
    double gap_start;
    if (idx == 0) {
        gap_start = bi == 0 ? 0.0 : blocks_[bi - 1].iv.back().finish;
    } else {
        gap_start = head[idx - 1].finish;
    }

    // Walk blocks from the cut.  Each iteration first decides the *boundary*
    // gap (between the running gap_start and the block's first unscanned
    // interval) exactly; every remaining gap in the block is internal, so
    // the max_gap screen covers it — including the partial first block,
    // whose suffix gaps are all internal too.  Past the cut interval every
    // finish exceeds `ready` (non-decreasing finishes), so the max() clamp
    // is only ever active on the boundary probe of the first iteration and
    // skipping a block cannot change any later candidate.
    // On a feasible timeline a skipped block's last finish equals its
    // max_finish and its first interval's start is the cached first_start,
    // so the skip path below touches only the 3-double summary — never the
    // block's interval storage.  (idx > 0 only in the first iteration, whose
    // interval vector is already hot from the lower_bound.)
    for (; bi < blocks_.size(); ++bi, idx = 0) {
        const Block& blk = blocks_[bi];
        if (duration > blk.max_gap + screen_slack(blk.max_finish, blk.max_gap)) {
            ++probes_pending_;
            const double boundary = idx == 0 ? blk.first_start : blk.iv[idx].start;
            const double candidate = std::max(gap_start, ready);
            if (candidate + duration <= boundary) return candidate;
            ++blocks_skipped_pending_;
            intervals_skipped_pending_ += blk.iv.size() - idx;
            gap_start = blk.max_finish;
            continue;
        }
        for (std::size_t i = idx; i < blk.iv.size(); ++i) {
            ++probes_pending_;
            const double candidate = std::max(gap_start, ready);
            if (candidate + duration <= blk.iv[i].start) return candidate;
            gap_start = blk.iv[i].finish;
        }
    }
    ++probes_pending_;
    return std::max(gap_start, ready);
}

void BusyTimeline::insert(BusyInterval iv) {
    if (blocks_.empty()) {
        blocks_.emplace_back();
        blocks_.back().iv.push_back(iv);
        blocks_.back().max_finish = iv.finish;
        blocks_.back().first_start = iv.start;
        ++size_;
        return;
    }
    // First block whose last start is >= iv.start owns the flat-order
    // position (insertion lands *before* any equal-start run, matching the
    // old flat lower_bound); when none qualifies the interval appends to the
    // last block.  Appends past every existing start dominate list
    // scheduling, so that case skips the block binary search (block back
    // starts are non-decreasing in flat order, making the single comparison
    // equivalent to the full partition_point).
    std::size_t bi;
    if (blocks_.back().iv.back().start < iv.start) {
        bi = blocks_.size() - 1;
    } else {
        const auto owner = std::partition_point(
            blocks_.begin(), blocks_.end(),
            [&iv](const Block& b) { return b.iv.back().start < iv.start; });
        bi = static_cast<std::size_t>(owner - blocks_.begin());
    }
    std::vector<BusyInterval>& dst = blocks_[bi].iv;
    const auto pos = std::lower_bound(
        dst.begin(), dst.end(), iv,
        [](const BusyInterval& a, const BusyInterval& b) { return a.start < b.start; });
    const auto p = static_cast<std::size_t>(pos - dst.begin());
    dst.insert(pos, iv);
    ++size_;
    if (mode_ == Mode::kLinear) return;  // one unbounded block, no summaries
    if (dst.size() > 2 * block_capacity_) {
        split_block(bi);
        return;
    }
    // Incremental summary update (exact, not an approximation): inserting at
    // p removes the internal gap (p-1, p+1) — when both neighbours exist —
    // and adds the gaps on either side of the new interval.  Only when the
    // removed gap was the block maximum can the maximum shrink, and only
    // then is the O(block) rescan needed; the common append path is O(1).
    Block& blk = blocks_[bi];
    constexpr double kNoGap = -std::numeric_limits<double>::infinity();
    const double g1 = p > 0 ? iv.start - dst[p - 1].finish : kNoGap;
    const double g2 = p + 1 < dst.size() ? dst[p + 1].start - iv.finish : kNoGap;
    const double removed =
        (p > 0 && p + 1 < dst.size()) ? dst[p + 1].start - dst[p - 1].finish : kNoGap;
    if (removed == blk.max_gap && removed > std::max(g1, g2)) {
        rebuild_summary(blk);
    } else {
        blk.max_finish = std::max(blk.max_finish, iv.finish);
        blk.max_gap = std::max({blk.max_gap, g1, g2});
        if (p == 0) blk.first_start = iv.start;
    }
}

bool BusyTimeline::erase(BusyInterval iv) {
    // Walk the equal-start run exactly as the flat erase did; the run may
    // cross block boundaries when speculative commits stacked intervals at
    // one start.
    auto first = std::partition_point(
        blocks_.begin(), blocks_.end(),
        [&iv](const Block& b) { return b.iv.back().start < iv.start; });
    for (auto blk = first; blk != blocks_.end(); ++blk) {
        std::vector<BusyInterval>& ivs = blk->iv;
        std::size_t pos = 0;
        if (blk == first) {
            pos = static_cast<std::size_t>(
                std::lower_bound(ivs.begin(), ivs.end(), iv,
                                 [](const BusyInterval& a, const BusyInterval& b) {
                                     return a.start < b.start;
                                 }) -
                ivs.begin());
        }
        for (; pos < ivs.size() && ivs[pos].start == iv.start; ++pos) {
            if (ivs[pos].finish == iv.finish) {
                // Pre-erase neighbours, for the incremental summary update.
                const std::size_t n0 = ivs.size();
                const BusyInterval removed = ivs[pos];
                const double prev_finish = pos > 0 ? ivs[pos - 1].finish : 0.0;
                const double next_start = pos + 1 < n0 ? ivs[pos + 1].start : 0.0;
                ivs.erase(ivs.begin() + static_cast<std::ptrdiff_t>(pos));
                --size_;
                if (ivs.empty()) {
                    blocks_.erase(blk);
                } else if (mode_ != Mode::kLinear) {
                    // Incremental summary maintenance; rollback erases are as
                    // hot as inserts, and the unconditional O(block) rescan
                    // this replaces dominated the duplication schedulers'
                    // profile at n = 10k.  Erasing at `pos` merges the gaps
                    // on either side into one at least as large, so max_gap
                    // only needs the O(block) rescan when a *boundary* erase
                    // removes a positive gap that was the block maximum.
                    // max_finish is exact under the same feasibility
                    // precondition the query already assumes (sorted,
                    // non-overlapping, hence the tail interval carries the
                    // block's max finish).
                    Block& b = *blk;
                    bool rescan = false;
                    if (removed.finish == b.max_finish) {
                        if (pos == n0 - 1) {
                            b.max_finish = ivs.back().finish;
                        } else {
                            rescan = true;  // mid-block max finish: infeasible
                                            // shape, fall back to the rescan
                        }
                    }
                    if (!rescan) {
                        if (pos > 0 && pos < n0 - 1) {
                            // Interior: the merged gap dominates both removed
                            // gaps, so a plain max is exact.
                            b.max_gap = std::max(b.max_gap, next_start - prev_finish);
                        } else if (pos == 0) {
                            const double g = next_start - removed.finish;
                            if (g == b.max_gap && b.max_gap > 0.0) {
                                rescan = true;
                            } else {
                                b.first_start = ivs.front().start;
                            }
                        } else {  // tail erase
                            const double g = removed.start - prev_finish;
                            if (g == b.max_gap && b.max_gap > 0.0) rescan = true;
                        }
                    }
                    if (rescan) rebuild_summary(b);
                }
                return true;
            }
        }
        if (pos < ivs.size()) return false;  // run ended inside this block
    }
    return false;
}

std::vector<BusyInterval> BusyTimeline::flatten() const {
    std::vector<BusyInterval> out;
    out.reserve(size_);
    for (const Block& b : blocks_) out.insert(out.end(), b.iv.begin(), b.iv.end());
    return out;
}

void BusyTimeline::rebuild_summary(Block& b) {
    double max_finish = 0.0;
    double max_gap = 0.0;
    for (std::size_t i = 0; i < b.iv.size(); ++i) {
        max_finish = std::max(max_finish, b.iv[i].finish);
        if (i > 0) max_gap = std::max(max_gap, b.iv[i].start - b.iv[i - 1].finish);
    }
    b.max_finish = max_finish;
    b.max_gap = max_gap;
    b.first_start = b.iv.empty() ? 0.0 : b.iv.front().start;
}

void BusyTimeline::split_block(std::size_t bi) {
    std::vector<BusyInterval>& left = blocks_[bi].iv;
    const std::size_t half = left.size() / 2;
    Block right;
    right.iv.assign(left.begin() + static_cast<std::ptrdiff_t>(half), left.end());
    left.erase(left.begin() + static_cast<std::ptrdiff_t>(half), left.end());
    rebuild_summary(blocks_[bi]);
    rebuild_summary(right);
    blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(bi) + 1, std::move(right));
}

}  // namespace tsched
