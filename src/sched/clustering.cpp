#include "sched/clustering.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "graph/algorithms.hpp"
#include "sched/builder.hpp"
#include "sched/ranks.hpp"

namespace tsched {

namespace {
/// Longest path over the unclustered subgraph (mean exec on nodes, mean
/// comm on edges), returned source-to-sink; empty when all tasks clustered.
std::vector<TaskId> critical_path_of_remainder(const Problem& problem,
                                               const std::vector<bool>& clustered,
                                               const std::vector<TaskId>& topo) {
    const Dag& dag = problem.dag();
    const std::size_t n = dag.num_tasks();
    std::vector<double> dist(n, 0.0);
    std::vector<TaskId> next(n, kInvalidTask);
    double best = -1.0;
    TaskId start = kInvalidTask;
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const TaskId v = *it;
        const auto vi = static_cast<std::size_t>(v);
        if (clustered[vi]) continue;
        double succ_best = 0.0;
        TaskId succ_next = kInvalidTask;
        for (const AdjEdge& e : dag.successors(v)) {
            const auto si = static_cast<std::size_t>(e.task);
            if (clustered[si]) continue;
            const double via = problem.mean_comm_data(e.data) + dist[si];
            if (via > succ_best) {
                succ_best = via;
                succ_next = e.task;
            }
        }
        dist[vi] = problem.mean_exec(v) + succ_best;
        next[vi] = succ_next;
        if (dist[vi] > best) {
            best = dist[vi];
            start = v;
        }
    }
    std::vector<TaskId> path;
    for (TaskId v = start; v != kInvalidTask; v = next[static_cast<std::size_t>(v)]) {
        path.push_back(v);
    }
    return path;
}
}  // namespace

Schedule LinearClusteringScheduler::schedule(const Problem& problem) const {
    const std::size_t n = problem.num_tasks();
    const std::size_t procs = problem.num_procs();
    const auto topo = topological_order(problem.dag());

    // Phase 1: linear clustering by repeated critical-path extraction.
    std::vector<bool> clustered(n, false);
    std::vector<std::vector<TaskId>> clusters;
    for (;;) {
        const auto path = critical_path_of_remainder(problem, clustered, topo);
        if (path.empty()) break;
        for (const TaskId v : path) clustered[static_cast<std::size_t>(v)] = true;
        clusters.push_back(path);
    }

    // Phase 2: LPT mapping of clusters onto processors by mean work.
    std::vector<double> cluster_work(clusters.size(), 0.0);
    for (std::size_t c = 0; c < clusters.size(); ++c) {
        for (const TaskId v : clusters[c]) cluster_work[c] += problem.mean_exec(v);
    }
    std::vector<std::size_t> cluster_order(clusters.size());
    std::iota(cluster_order.begin(), cluster_order.end(), 0);
    std::sort(cluster_order.begin(), cluster_order.end(), [&](std::size_t a, std::size_t b) {
        if (cluster_work[a] != cluster_work[b]) return cluster_work[a] > cluster_work[b];
        return a < b;
    });
    std::vector<double> load(procs, 0.0);
    std::vector<ProcId> assignment(n, 0);
    for (const std::size_t c : cluster_order) {
        const auto proc = static_cast<ProcId>(
            std::min_element(load.begin(), load.end()) - load.begin());
        for (const TaskId v : clusters[c]) assignment[static_cast<std::size_t>(v)] = proc;
        load[static_cast<std::size_t>(proc)] += cluster_work[c];
    }

    // Phase 3: time the placements in decreasing upward-rank order.
    const auto rank = upward_rank(problem, RankCost::kMean);
    ScheduleBuilder builder(problem);
    for (const TaskId v : order_by_decreasing(rank)) {
        builder.place(v, assignment[static_cast<std::size_t>(v)], /*insertion=*/true);
    }
    return std::move(builder).take();
}

}  // namespace tsched
