// PEFT — Predict Earliest Finish Time (Arabnejad, Barbosa; IEEE TPDS 2014).
//
// Included as the strongest published HEFT-class successor: the optimistic
// cost table OCT(v, p) predicts the best-case remaining chain after v on p.
// Tasks are prioritised by their average OCT row (ready-list driven, highest
// rank first) and placed on the processor minimising EFT(v, p) + OCT(v, p).
// Same asymptotic cost as HEFT once the O(m·P²) table is built.
#pragma once

#include "sched/scheduler.hpp"

namespace tsched {

class PeftScheduler final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "peft"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;
    [[nodiscard]] Schedule schedule_traced(const Problem& problem,
                                           trace::TraceSink* sink) const override;

private:
    [[nodiscard]] Schedule run(const Problem& problem, trace::TraceSink* sink) const;
};

}  // namespace tsched
