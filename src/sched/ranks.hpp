// Task prioritisation quantities of the list-scheduling literature.
//
// All ranks collapse each task's per-processor cost row to a scalar first
// (RankCost selects how) and use the link model's mean communication cost on
// edges, exactly as defined by the HEFT paper and its follow-ups.
#pragma once

#include <vector>

#include "platform/problem.hpp"

namespace tsched {

/// How to collapse w(v, *) into the scalar used by a rank.
enum class RankCost {
    kMean,    ///< average over processors (HEFT's default)
    kMedian,  ///< median over processors
    kWorst,   ///< max over processors (pessimistic)
    kBest,    ///< min over processors (optimistic)
};

[[nodiscard]] const char* rank_cost_name(RankCost rc) noexcept;

/// Scalar execution cost of v under the chosen collapse.
[[nodiscard]] double scalar_cost(const Problem& problem, TaskId v, RankCost rc);

/// Upward rank: rank_u(v) = w(v) + max over succ s of (c̄(v,s) + rank_u(s)).
/// Exit tasks: rank_u = w.  Decreasing rank_u is a topological order.
[[nodiscard]] std::vector<double> upward_rank(const Problem& problem,
                                              RankCost rc = RankCost::kMean);

/// Downward rank: rank_d(v) = max over pred u of (rank_d(u) + w(u) + c̄(u,v));
/// entry tasks have rank_d = 0.
[[nodiscard]] std::vector<double> downward_rank(const Problem& problem,
                                                RankCost rc = RankCost::kMean);

/// Static level: like rank_u but ignoring communication (DLS, HLFET).
[[nodiscard]] std::vector<double> static_level(const Problem& problem,
                                               RankCost rc = RankCost::kMean);

/// ALAP start times under mean costs with communication: alap(v) =
/// CP_length - rank_u(v), where CP_length = max rank_u (MCP's priority).
[[nodiscard]] std::vector<double> alap_start(const Problem& problem,
                                             RankCost rc = RankCost::kMean);

/// Optimistic cost table (Arabnejad & Barbosa's PEFT table; also the basis
/// of ILS's downstream-aware selection): OCT(v, p) is the best-case length
/// of the remaining chain from v to an exit task given v runs on p and every
/// descendant picks its ideal processor.  Row-major (task x processor);
/// exit-task rows are zero.  O(m * P^2).
[[nodiscard]] std::vector<double> optimistic_cost_table(const Problem& problem);

/// Task order by decreasing key; ties broken by ascending TaskId so every
/// scheduler in the library is deterministic.
[[nodiscard]] std::vector<TaskId> order_by_decreasing(const std::vector<double>& key);

/// Task order by increasing key; ties broken by ascending TaskId.
[[nodiscard]] std::vector<TaskId> order_by_increasing(const std::vector<double>& key);

}  // namespace tsched
