// Task prioritisation quantities of the list-scheduling literature.
//
// All ranks collapse each task's per-processor cost row to a scalar first
// (RankCost selects how) and use the link model's mean communication cost on
// edges, exactly as defined by the HEFT paper and its follow-ups.
#pragma once

#include <vector>

#include "platform/problem.hpp"

namespace tsched {

class ThreadPool;

/// Reusable scratch for the rank computations: the FIFO-Kahn topological
/// sweep and the level index behind the parallel overloads.  A caller that
/// ranks many problems (the serve engine, benchmarks) keeps one workspace
/// and amortises every allocation; the plain overloads below use a
/// thread_local instance so repeated calls allocate nothing after warm-up.
struct RankWorkspace {
    std::vector<std::size_t> indeg;  ///< Kahn in-degree scratch
    std::vector<TaskId> topo;        ///< forward topological order (FIFO Kahn)
    std::vector<std::size_t> level;  ///< per-task level (parallel overloads)
    std::vector<TaskId> level_tasks;  ///< tasks bucketed by level
    std::vector<std::size_t> level_off;  ///< level bucket offsets
};

/// How to collapse w(v, *) into the scalar used by a rank.
enum class RankCost {
    kMean,    ///< average over processors (HEFT's default)
    kMedian,  ///< median over processors
    kWorst,   ///< max over processors (pessimistic)
    kBest,    ///< min over processors (optimistic)
};

[[nodiscard]] const char* rank_cost_name(RankCost rc) noexcept;

/// Scalar execution cost of v under the chosen collapse.
[[nodiscard]] double scalar_cost(const Problem& problem, TaskId v, RankCost rc);

/// Upward rank: rank_u(v) = w(v) + max over succ s of (c̄(v,s) + rank_u(s)).
/// Exit tasks: rank_u = w.  Decreasing rank_u is a topological order.
[[nodiscard]] std::vector<double> upward_rank(const Problem& problem,
                                              RankCost rc = RankCost::kMean);

/// Allocation-free variant: computes into `out` using caller scratch.
void upward_rank(const Problem& problem, RankCost rc, RankWorkspace& ws,
                 std::vector<double>& out);

/// Level-synchronous parallel variant: tasks at equal height from the exit
/// set have no rank dependency, so each level fans out over the pool.  The
/// per-task fold is unchanged, hence bit-identical results to the serial
/// sweep; small levels are computed inline to avoid dispatch overhead.
[[nodiscard]] std::vector<double> upward_rank(const Problem& problem, ThreadPool& pool,
                                              RankCost rc = RankCost::kMean);

/// Downward rank: rank_d(v) = max over pred u of (rank_d(u) + w(u) + c̄(u,v));
/// entry tasks have rank_d = 0.
[[nodiscard]] std::vector<double> downward_rank(const Problem& problem,
                                                RankCost rc = RankCost::kMean);

/// Allocation-free variant: computes into `out` using caller scratch.
void downward_rank(const Problem& problem, RankCost rc, RankWorkspace& ws,
                   std::vector<double>& out);

/// Static level: like rank_u but ignoring communication (DLS, HLFET).
[[nodiscard]] std::vector<double> static_level(const Problem& problem,
                                               RankCost rc = RankCost::kMean);

/// Allocation-free variant: computes into `out` using caller scratch.
void static_level(const Problem& problem, RankCost rc, RankWorkspace& ws,
                  std::vector<double>& out);

/// ALAP start times under mean costs with communication: alap(v) =
/// CP_length - rank_u(v), where CP_length = max rank_u (MCP's priority).
[[nodiscard]] std::vector<double> alap_start(const Problem& problem,
                                             RankCost rc = RankCost::kMean);

/// Optimistic cost table (Arabnejad & Barbosa's PEFT table; also the basis
/// of ILS's downstream-aware selection): OCT(v, p) is the best-case length
/// of the remaining chain from v to an exit task given v runs on p and every
/// descendant picks its ideal processor.  Row-major (task x processor);
/// exit-task rows are zero.  O(m * P^2).
[[nodiscard]] std::vector<double> optimistic_cost_table(const Problem& problem);

/// Allocation-free variant: computes into `out` using caller scratch.
void optimistic_cost_table(const Problem& problem, RankWorkspace& ws, std::vector<double>& out);

/// Level-synchronous parallel variant (see the upward_rank overload); each
/// task's P-cell row is one unit of pool work.
[[nodiscard]] std::vector<double> optimistic_cost_table(const Problem& problem,
                                                        ThreadPool& pool);

/// Task order by decreasing key; ties broken by ascending TaskId so every
/// scheduler in the library is deterministic.
[[nodiscard]] std::vector<TaskId> order_by_decreasing(const std::vector<double>& key);

/// Task order by increasing key; ties broken by ascending TaskId.
[[nodiscard]] std::vector<TaskId> order_by_increasing(const std::vector<double>& key);

}  // namespace tsched
