// Schedule repair after a permanent processor crash.
//
// A static schedule is a plan; when a processor dies mid-execution the plan
// is partially realised (the *frozen* prefix — everything that completed or
// is in flight on a surviving processor) and partially invalidated (the
// *lost* placements on the dead processor and the still-unexecuted *pending*
// placements elsewhere).  A RepairPolicy takes that split and produces a new
// complete Schedule: the frozen prefix replayed at its realised times, plus
// the unexecuted work re-recorded at times at or after the crash — so the
// result passes the schedule lint passes and can be handed back to the fault
// simulator (sim::simulate_faulty) for the remainder of the run.
//
// Fault model assumption: processors are fail-stop, but the outputs of tasks
// that *completed* before the crash remain available (data already shipped
// or checkpointed to shared storage) — only unfinished work is lost.
//
// Four policies ship:
//   none              drop lost work; tasks left with no instance at all are
//                     re-run serially on the lowest-indexed live processor
//                     (the "measure the damage" baseline)
//   remap-pending     every lost placement is re-created on the live
//                     processor that finishes it earliest, evaluated by
//                     speculative trial commits (checkpoint/rollback)
//   reschedule-suffix freeze the executed prefix, re-run HEFT (min-EFT over
//                     live processors, upward-rank order) on the whole
//                     unexecuted subgraph
//   use-duplicates    lost placements whose task has a surviving instance
//                     (frozen or pending) are simply dropped; only tasks
//                     stranded with no instance get a new best-EFT placement
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "platform/problem.hpp"
#include "sched/schedule.hpp"

namespace tsched {

/// A placement that already ran (or is unstoppably running) at crash time,
/// at its *realised* start/finish — the immutable part of the repair input.
struct FrozenPlacement {
    TaskId task = kInvalidTask;
    ProcId proc = kInvalidProc;
    double start = 0.0;
    double finish = 0.0;
    /// Started before the crash but finishes after it (on a live processor);
    /// the repair must still treat it as committed.
    bool in_flight = false;
};

/// Everything a repair policy may consult.  Built by sim::simulate_faulty.
struct RepairContext {
    const Problem* problem = nullptr;
    ProcId crashed_proc = kInvalidProc;
    double crash_time = 0.0;
    /// Dead processors, *including* the one that just crashed.
    std::vector<bool> dead;
    /// Executed prefix at realised times, task-major.
    std::vector<FrozenPlacement> frozen;
    /// Placements killed by this crash (planned values): everything
    /// unexecuted on the crashed processor plus its aborted in-flight work.
    std::vector<Placement> lost;
    /// Unexecuted placements on live processors (planned values).
    std::vector<Placement> pending;

    [[nodiscard]] std::size_t num_procs() const { return dead.size(); }
    [[nodiscard]] std::size_t live_procs() const;
    /// Lowest-indexed live processor; throws std::runtime_error when every
    /// processor is dead (nothing can repair that).
    [[nodiscard]] ProcId first_live_proc() const;
};

/// Strategy interface: turn a crash context into a complete repaired
/// schedule.  Implementations must (a) reproduce every frozen placement at
/// its realised times and (b) record all re-placed work at start >= the
/// crash time on live processors — simulate_faulty verifies both and lints
/// the result.
class RepairPolicy {
public:
    virtual ~RepairPolicy() = default;
    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual Schedule repair(const RepairContext& ctx) const = 0;
};

using RepairPolicyPtr = std::unique_ptr<RepairPolicy>;

/// Factory over the policy names listed above; throws std::invalid_argument
/// for unknown names.
[[nodiscard]] RepairPolicyPtr make_repair_policy(const std::string& name);

/// Every registered policy name, in documentation order.
[[nodiscard]] std::vector<std::string> repair_policy_names();

}  // namespace tsched
