#include "sched/contention_aware.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "sched/builder.hpp"
#include "sched/ranks.hpp"

namespace tsched {

namespace {
struct Ports {
    std::vector<double> send_free;
    std::vector<double> recv_free;
};

/// Earliest start of `v` on `q` under the one-port model; books the chosen
/// transfers into `ports` when `commit` is set.  Transfers are sequenced in
/// predecessor order; the producer instance per input is chosen by nominal
/// arrival (consistent with sim::simulate_contended).
double port_aware_start(const ScheduleBuilder& builder, TaskId v, ProcId q, Ports& ports,
                        bool commit) {
    const Problem& problem = builder.problem();
    const Dag& dag = problem.dag();
    const LinkModel& links = problem.machine().links();
    double ready = 0.0;
    for (const AdjEdge& e : dag.predecessors(v)) {
        double best_nominal = std::numeric_limits<double>::infinity();
        double best_finish = 0.0;
        ProcId best_src = q;
        for (const Placement& pl : builder.partial().placements(e.task)) {
            const double nominal = pl.finish + links.comm_time(e.data, pl.proc, q);
            if (nominal < best_nominal) {
                best_nominal = nominal;
                best_finish = pl.finish;
                best_src = pl.proc;
            }
        }
        double arrival = 0.0;
        if (best_src == q) {
            arrival = best_finish;
        } else {
            const double dur = links.comm_time(e.data, best_src, q);
            const double start = std::max({best_finish,
                                           ports.send_free[static_cast<std::size_t>(best_src)],
                                           ports.recv_free[static_cast<std::size_t>(q)]});
            arrival = start + dur;
            ports.send_free[static_cast<std::size_t>(best_src)] = arrival;
            ports.recv_free[static_cast<std::size_t>(q)] = arrival;
        }
        ready = std::max(ready, arrival);
    }
    (void)commit;  // commit is expressed through which Ports object is passed
    return std::max(ready, builder.proc_available(q));
}
}  // namespace

Schedule CaHeftScheduler::schedule(const Problem& problem) const {
    const std::size_t procs = problem.num_procs();
    const auto ranks = upward_rank(problem, RankCost::kMean);

    ScheduleBuilder builder(problem);
    Ports ports{std::vector<double>(procs, 0.0), std::vector<double>(procs, 0.0)};
    for (const TaskId v : order_by_decreasing(ranks)) {
        ProcId best_proc = 0;
        double best_eft = std::numeric_limits<double>::infinity();
        for (std::size_t pi = 0; pi < procs; ++pi) {
            const auto p = static_cast<ProcId>(pi);
            Ports scratch = ports;  // evaluation must not book ports
            const double start = port_aware_start(builder, v, p, scratch, false);
            const double eft = start + problem.exec_time(v, p);
            if (eft < best_eft) {
                best_eft = eft;
                best_proc = p;
            }
        }
        const double start = port_aware_start(builder, v, best_proc, ports, true);
        builder.place_at(v, best_proc, start);
    }
    return std::move(builder).take();
}

}  // namespace tsched
