#include "sched/builder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#ifdef TSCHED_DEBUG_CHECKS
#include "analysis/schedule_lints.hpp"
#endif

#include "platform/link_model.hpp"
#include "trace/trace.hpp"

namespace tsched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

ScheduleBuilder::ScheduleBuilder(const Problem& problem)
    : problem_(&problem),
      csr_(&problem.dag().csr()),
      links_(&problem.machine().links()),
      procs_(problem.num_procs()),
      schedule_(problem.num_tasks(), problem.num_procs()),
      placed_(problem.num_tasks(), false),
      task_modified_(problem.num_tasks(), 0),
      preds_modified_(problem.num_tasks(), 0),
      ready_cache_(problem.num_tasks() * problem.num_procs(), 0.0),
      ready_stamp_(problem.num_tasks() * problem.num_procs(), 0),
      ready_binding_(problem.num_tasks() * problem.num_procs(), kInvalidTask),
      primary_finish_(problem.num_tasks(), 0.0),
      primary_proc_(problem.num_tasks(), kInvalidProc),
      extra_placements_(problem.num_tasks(), 0) {
    // The timeline mode is sampled once per builder so a schedule never
    // mixes the linear and bucketed paths mid-run.
    const BusyTimeline::Mode mode = BusyTimeline::default_mode();
    busy_.reserve(procs_);
    for (std::size_t p = 0; p < procs_; ++p) busy_.emplace_back(mode);

    // Uniform-links fast path (single-proc machines stay on the generic
    // path: every transfer is local there anyway).
    if (procs_ >= 2 && dynamic_cast<const UniformLinkModel*>(links_) != nullptr) {
        uniform_links_ = true;
        const std::size_t n = problem.num_tasks();
        pred_remote_off_.resize(n + 1, 0);
        for (std::size_t v = 0; v < n; ++v) {
            pred_remote_off_[v + 1] =
                pred_remote_off_[v] + csr_->in_degree(static_cast<TaskId>(v));
        }
        pred_remote_.resize(pred_remote_off_[n]);
        for (std::size_t v = 0; v < n; ++v) {
            const auto data = csr_->pred_data(static_cast<TaskId>(v));
            for (std::size_t i = 0; i < data.size(); ++i) {
                pred_remote_[pred_remote_off_[v] + i] = links_->comm_time(data[i], 0, 1);
            }
        }
    }
}

ScheduleBuilder::~ScheduleBuilder() {
    if (eft_evals_pending_.n != 0) TSCHED_COUNT_ADD("eft_evaluations", eft_evals_pending_.n);
    if (cache_hits_pending_.n != 0) {
        TSCHED_COUNT_ADD("data_ready_cache_hits", cache_hits_pending_.n);
    }
    if (cache_misses_pending_.n != 0) {
        TSCHED_COUNT_ADD("data_ready_cache_misses", cache_misses_pending_.n);
    }
}

bool ScheduleBuilder::is_placed(TaskId v) const {
    if (v < 0 || static_cast<std::size_t>(v) >= placed_.size()) {
        throw std::out_of_range("ScheduleBuilder::is_placed: task out of range");
    }
    return placed_[static_cast<std::size_t>(v)];
}

double ScheduleBuilder::finish_time(TaskId v) const { return schedule_.primary(v).finish; }

double ScheduleBuilder::data_ready(TaskId v, ProcId p) const {
    if (v < 0 || static_cast<std::size_t>(v) >= placed_.size()) {
        throw std::out_of_range("ScheduleBuilder::data_ready: task out of range");
    }
    const std::size_t idx =
        static_cast<std::size_t>(v) * procs_ + static_cast<std::size_t>(p);
    const std::uint64_t stamp = ready_stamp_.at(idx);
    if (stamp != 0 && preds_modified_[static_cast<std::size_t>(v)] <= stamp) {
        cache_hits_pending_ += 1;
        return ready_cache_[idx];
    }
    cache_misses_pending_ += 1;
    fill_ready_row(v);
    return ready_cache_[idx];
}

void ScheduleBuilder::fill_ready_row(TaskId v) const {
    const auto preds = csr_->pred_tasks(v);
    const auto pred_data = csr_->pred_data(v);
    const std::size_t base = static_cast<std::size_t>(v) * procs_;
    double* row = ready_cache_.data() + base;
    TaskId* args = ready_binding_.data() + base;
    for (std::size_t q = 0; q < procs_; ++q) {
        row[q] = 0.0;
        // `args[q]` tracks the first predecessor whose arrival achieves the
        // running max — strict > reproduces binding_remote_pred's first-wins
        // tie-break, and an arrival of exactly 0 keeps it invalid, matching
        // its not-communication-bound rejection.
        args[q] = kInvalidTask;
    }
    // Per processor q the comparison chain visits predecessors in CSR order
    // with the same per-predecessor arrival expression the old scalar loop
    // used, so every row value is bit-identical to an independent
    // data_ready(v, q) computation — the walk is merely transposed so the
    // predecessor state (placed flag, finish, proc, remote cost) is loaded
    // once instead of once per processor.
    bool blocked = false;
    if (uniform_links_) {
        const double* remote = pred_remote_.data() + pred_remote_off_[static_cast<std::size_t>(v)];
        for (std::size_t i = 0; i < preds.size(); ++i) {
            const std::size_t u = static_cast<std::size_t>(preds[i]);
            if (!placed_[u]) {
                blocked = true;
                break;
            }
            if (extra_placements_[u] == 0) {
                const double f = primary_finish_[u];
                const auto pp = static_cast<std::size_t>(primary_proc_[u]);
                const double fr = f + remote[i];  // same add the scalar path did
                for (std::size_t q = 0; q < procs_; ++q) {
                    const double best = (q == pp) ? f : fr;
                    if (best > row[q]) {
                        row[q] = best;
                        args[q] = preds[i];
                    }
                }
            } else {
                for (std::size_t q = 0; q < procs_; ++q) {
                    double best = kInf;
                    for (const Placement& pl : schedule_.placements(preds[i])) {
                        const auto qp = static_cast<ProcId>(q);
                        best = std::min(best, pl.finish + (pl.proc == qp ? 0.0 : remote[i]));
                    }
                    if (best > row[q]) {
                        row[q] = best;
                        args[q] = preds[i];
                    }
                }
            }
        }
    } else {
        for (std::size_t i = 0; i < preds.size(); ++i) {
            if (!placed_[static_cast<std::size_t>(preds[i])]) {
                blocked = true;
                break;
            }
            for (std::size_t q = 0; q < procs_; ++q) {
                const double avail = schedule_.data_available(preds[i], static_cast<ProcId>(q),
                                                              pred_data[i], *links_);
                if (avail > row[q]) {
                    row[q] = avail;
                    args[q] = preds[i];
                }
            }
        }
    }
    if (blocked) {
        // The scalar loop returned +inf from the first unplaced predecessor
        // onward for *every* processor, so the whole row is +inf (the argmax
        // entries keep whatever accumulated before the break; every consumer
        // guards them behind std::isfinite of the cached value).
        for (std::size_t q = 0; q < procs_; ++q) {
            row[q] = kInf;
        }
    }
    for (std::size_t q = 0; q < procs_; ++q) {
        ready_stamp_[base + q] = epoch_;
        ready_log_.push_back(base + q);
    }
}

double ScheduleBuilder::data_ready_partial(TaskId v, ProcId p) const {
    if (v < 0 || static_cast<std::size_t>(v) >= placed_.size()) {
        throw std::out_of_range("ScheduleBuilder::data_ready_partial: task out of range");
    }
    const auto preds = csr_->pred_tasks(v);
    const auto pred_data = csr_->pred_data(v);
    double ready = 0.0;
    if (uniform_links_) {
        const double* remote = pred_remote_.data() + pred_remote_off_[static_cast<std::size_t>(v)];
        for (std::size_t i = 0; i < preds.size(); ++i) {
            const std::size_t u = static_cast<std::size_t>(preds[i]);
            if (!placed_[u]) continue;
            double best;
            if (extra_placements_[u] == 0) {
                best = primary_finish_[u] + (primary_proc_[u] == p ? 0.0 : remote[i]);
            } else {
                best = kInf;
                for (const Placement& pl : schedule_.placements(preds[i])) {
                    best = std::min(best, pl.finish + (pl.proc == p ? 0.0 : remote[i]));
                }
            }
            ready = std::max(ready, best);
        }
    } else {
        for (std::size_t i = 0; i < preds.size(); ++i) {
            if (!placed_[static_cast<std::size_t>(preds[i])]) continue;
            ready = std::max(ready, schedule_.data_available(preds[i], p, pred_data[i], *links_));
        }
    }
    return ready;
}

TaskId ScheduleBuilder::binding_remote_pred(TaskId v, ProcId p, double eps) const {
    const auto preds = csr_->pred_tasks(v);
    const auto pred_data = csr_->pred_data(v);
    TaskId binding = kInvalidTask;
    double worst = -1.0;
    // A valid data_ready cache entry already holds the argmax this walk
    // would recompute (the duplication loops always probe data_ready first,
    // so this hits nearly every call).  The finite guard keeps the
    // unplaced-predecessor corner on the exhaustive walk, whose early break
    // makes its argmax diverge from the full scan's.
    const std::size_t idx =
        static_cast<std::size_t>(v) * procs_ + static_cast<std::size_t>(p);
    const std::uint64_t stamp = ready_stamp_[idx];
    if (stamp != 0 && preds_modified_[static_cast<std::size_t>(v)] <= stamp &&
        std::isfinite(ready_cache_[idx])) {
        binding = ready_binding_[idx];
        worst = ready_cache_[idx];
    } else if (uniform_links_) {
        const double* remote =
            pred_remote_.data() + pred_remote_off_[static_cast<std::size_t>(v)];
        for (std::size_t i = 0; i < preds.size(); ++i) {
            const std::size_t u = static_cast<std::size_t>(preds[i]);
            double avail;
            if (placed_[u] && extra_placements_[u] == 0) {
                avail = primary_finish_[u] + (primary_proc_[u] == p ? 0.0 : remote[i]);
            } else {
                avail = kInf;
                for (const Placement& pl : schedule_.placements(preds[i])) {
                    avail = std::min(avail, pl.finish + (pl.proc == p ? 0.0 : remote[i]));
                }
            }
            if (avail > worst) {
                worst = avail;
                binding = preds[i];
            }
        }
    } else {
        for (std::size_t i = 0; i < preds.size(); ++i) {
            const double avail = schedule_.data_available(preds[i], p, pred_data[i], *links_);
            if (avail > worst) {
                worst = avail;
                binding = preds[i];
            }
        }
    }
    if (binding == kInvalidTask || worst <= 0.0) return kInvalidTask;
    const auto b = static_cast<std::size_t>(binding);
    if (placed_[b] && extra_placements_[b] == 0) {
        if (primary_proc_[b] == p && primary_finish_[b] <= worst + eps) return kInvalidTask;
    } else {
        for (const Placement& pl : schedule_.placements(binding)) {
            if (pl.proc == p && pl.finish <= worst + eps) return kInvalidTask;
        }
    }
    return binding;
}

double ScheduleBuilder::earliest_start(ProcId p, double ready, double duration,
                                       bool insertion) const {
    const BusyTimeline& timeline = busy_.at(static_cast<std::size_t>(p));
    if (!insertion) return std::max(timeline.last_finish(), ready);
    return timeline.earliest_start(ready, duration);
}

double ScheduleBuilder::eft(TaskId v, ProcId p, bool insertion) const {
    eft_evals_pending_ += 1;
    const double ready = data_ready(v, p);
    if (!std::isfinite(ready)) return kInf;
    const double w = problem_->exec_time(v, p);
    return earliest_start(p, ready, w, insertion) + w;
}

std::optional<double> ScheduleBuilder::find_slot_before(ProcId p, double ready, double duration,
                                                        double deadline, bool insertion) const {
    // earliest_start never returns a start before `ready`, and rounded fp
    // addition is monotone, so start + duration <= deadline is impossible
    // when even ready + duration misses it — the duplication loops reject
    // most probes here without scanning the timeline at all.
    if (ready + duration > deadline) return std::nullopt;
    const double start = earliest_start(p, ready, duration, insertion);
    if (start + duration <= deadline) return start;
    return std::nullopt;
}

double ScheduleBuilder::proc_available(ProcId p) const {
    return busy_.at(static_cast<std::size_t>(p)).last_finish();
}

Placement ScheduleBuilder::place(TaskId v, ProcId p, bool insertion) {
    if (is_placed(v)) {
        throw std::logic_error("ScheduleBuilder::place: task already placed");
    }
    const double ready = data_ready(v, p);
    if (!std::isfinite(ready)) {
        throw std::logic_error("ScheduleBuilder::place: a predecessor is unplaced");
    }
    const double start = earliest_start(p, ready, problem_->exec_time(v, p), insertion);
    return commit(v, p, start, /*duplicate=*/false);
}

Placement ScheduleBuilder::place_at(TaskId v, ProcId p, double start) {
    if (is_placed(v)) {
        throw std::logic_error("ScheduleBuilder::place_at: task already placed");
    }
    return commit(v, p, start, /*duplicate=*/false);
}

Placement ScheduleBuilder::place_duplicate_at(TaskId v, ProcId p, double start) {
    if (!is_placed(v)) {
        throw std::logic_error("ScheduleBuilder::place_duplicate_at: task not yet placed");
    }
    return commit(v, p, start, /*duplicate=*/true);
}

Placement ScheduleBuilder::commit(TaskId v, ProcId p, double start, bool duplicate) {
    const double w = problem_->exec_time(v, p);
    const Placement pl{v, p, start, start + w};
    schedule_.add(v, p, pl.start, pl.finish);
    busy_[static_cast<std::size_t>(p)].insert({pl.start, pl.finish});
    undo_log_.push_back({v, makespan_, task_modified_[static_cast<std::size_t>(v)],
                         ready_log_.size(), succ_log_.size(), duplicate});
    if (!duplicate) {
        placed_[static_cast<std::size_t>(v)] = true;
        primary_finish_[static_cast<std::size_t>(v)] = pl.finish;
        primary_proc_[static_cast<std::size_t>(v)] = p;
    } else {
        ++extra_placements_[static_cast<std::size_t>(v)];
    }
    touch(v);
    makespan_ = std::max(makespan_, pl.finish);
    ++num_placements_;
    return pl;
}

void ScheduleBuilder::rollback(Checkpoint mark) {
    if (mark > undo_log_.size()) {
        throw std::logic_error("ScheduleBuilder::rollback: invalid checkpoint");
    }
    if (mark == undo_log_.size()) return;
    TSCHED_COUNT("speculative_rollbacks");
    TSCHED_COUNT_ADD("rolled_back_placements", undo_log_.size() - mark);
    while (undo_log_.size() > mark) {
        const UndoEntry entry = undo_log_.back();
        undo_log_.pop_back();
        const Placement pl = schedule_.remove_last(entry.task);
        if (!busy_[static_cast<std::size_t>(pl.proc)].erase({pl.start, pl.finish})) {
            throw std::logic_error("ScheduleBuilder::rollback: interval not found");
        }
        if (!entry.duplicate) {
            placed_[static_cast<std::size_t>(entry.task)] = false;
        } else {
            --extra_placements_[static_cast<std::size_t>(entry.task)];
        }
        // Restore the task's modification stamp instead of advancing it:
        // after the rollback the placement state is exactly what the
        // pre-speculation cache entries were computed from, so they stay
        // valid.  The entries written *during* the speculation reflect the
        // rolled-back state; zero-stamp that suffix of the write log.
        task_modified_[static_cast<std::size_t>(entry.task)] = entry.prev_modified;
        while (succ_log_.size() > entry.succ_log_mark) {
            preds_modified_[succ_log_.back().first] = succ_log_.back().second;
            succ_log_.pop_back();
        }
        while (ready_log_.size() > entry.ready_log_mark) {
            ready_stamp_[ready_log_.back()] = 0;
            ready_log_.pop_back();
        }
        makespan_ = entry.prev_makespan;
        --num_placements_;
    }
}

Schedule ScheduleBuilder::take() && {
#ifdef TSCHED_DEBUG_CHECKS
    // With -DTSCHED_DEBUG_CHECKS=ON every schedule leaving a builder is run
    // through the error-severity lint passes, so an invalid placement is
    // caught inside the scheduler that produced it instead of at validation
    // time much later.  Throws std::invalid_argument on violations.
    analysis::run_debug_checks(schedule_, *problem_);
#endif
    return std::move(schedule_);
}

}  // namespace tsched
