#include "sched/builder.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <stdexcept>

#ifdef TSCHED_DEBUG_CHECKS
#include "analysis/schedule_lints.hpp"
#endif

#include "trace/trace.hpp"

namespace tsched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

ScheduleBuilder::ScheduleBuilder(const Problem& problem)
    : problem_(&problem),
      schedule_(problem.num_tasks(), problem.num_procs()),
      busy_(problem.num_procs()),
      placed_(problem.num_tasks(), false) {}

bool ScheduleBuilder::is_placed(TaskId v) const {
    if (v < 0 || static_cast<std::size_t>(v) >= placed_.size()) {
        throw std::out_of_range("ScheduleBuilder::is_placed: task out of range");
    }
    return placed_[static_cast<std::size_t>(v)];
}

double ScheduleBuilder::finish_time(TaskId v) const { return schedule_.primary(v).finish; }

double ScheduleBuilder::data_ready(TaskId v, ProcId p) const {
    const Dag& dag = problem_->dag();
    const LinkModel& links = problem_->machine().links();
    double ready = 0.0;
    for (const AdjEdge& e : dag.predecessors(v)) {
        if (!placed_[static_cast<std::size_t>(e.task)]) return kInf;
        ready = std::max(ready, schedule_.data_available(e.task, p, e.data, links));
    }
    return ready;
}

double ScheduleBuilder::data_ready_partial(TaskId v, ProcId p) const {
    const Dag& dag = problem_->dag();
    const LinkModel& links = problem_->machine().links();
    double ready = 0.0;
    for (const AdjEdge& e : dag.predecessors(v)) {
        if (!placed_[static_cast<std::size_t>(e.task)]) continue;
        ready = std::max(ready, schedule_.data_available(e.task, p, e.data, links));
    }
    return ready;
}

double ScheduleBuilder::earliest_start(ProcId p, double ready, double duration,
                                       bool insertion) const {
    const auto& timeline = busy_.at(static_cast<std::size_t>(p));
    if (!insertion) {
        const double avail = timeline.empty() ? 0.0 : timeline.back().finish;
        return std::max(avail, ready);
    }
    // Scan the gaps for the first fit.  Gaps that close before `ready` can
    // never host the task (the candidate start is clamped to `ready`, so a
    // fit inside an interval run ending at or before `ready` would need a
    // non-positive duration); since non-overlapping sorted intervals have
    // non-decreasing finishes, binary-search past them instead of walking
    // the whole timeline.
    auto it = std::lower_bound(timeline.begin(), timeline.end(), ready,
                               [](const Interval& iv, double t) { return iv.finish <= t; });
    double gap_start = it == timeline.begin() ? 0.0 : std::prev(it)->finish;
    for (; it != timeline.end(); ++it) {
        TSCHED_COUNT("insertion_probes");
        const double candidate = std::max(gap_start, ready);
        if (candidate + duration <= it->start) return candidate;
        gap_start = it->finish;
    }
    TSCHED_COUNT("insertion_probes");
    return std::max(gap_start, ready);
}

double ScheduleBuilder::eft(TaskId v, ProcId p, bool insertion) const {
    TSCHED_COUNT("eft_evaluations");
    const double ready = data_ready(v, p);
    if (!std::isfinite(ready)) return kInf;
    const double w = problem_->exec_time(v, p);
    return earliest_start(p, ready, w, insertion) + w;
}

std::optional<double> ScheduleBuilder::find_slot_before(ProcId p, double ready, double duration,
                                                        double deadline, bool insertion) const {
    const double start = earliest_start(p, ready, duration, insertion);
    if (start + duration <= deadline) return start;
    return std::nullopt;
}

double ScheduleBuilder::proc_available(ProcId p) const {
    const auto& timeline = busy_.at(static_cast<std::size_t>(p));
    return timeline.empty() ? 0.0 : timeline.back().finish;
}

Placement ScheduleBuilder::place(TaskId v, ProcId p, bool insertion) {
    if (is_placed(v)) {
        throw std::logic_error("ScheduleBuilder::place: task already placed");
    }
    const double ready = data_ready(v, p);
    if (!std::isfinite(ready)) {
        throw std::logic_error("ScheduleBuilder::place: a predecessor is unplaced");
    }
    const double start = earliest_start(p, ready, problem_->exec_time(v, p), insertion);
    return commit(v, p, start, /*duplicate=*/false);
}

Placement ScheduleBuilder::place_at(TaskId v, ProcId p, double start) {
    if (is_placed(v)) {
        throw std::logic_error("ScheduleBuilder::place_at: task already placed");
    }
    return commit(v, p, start, /*duplicate=*/false);
}

Placement ScheduleBuilder::place_duplicate_at(TaskId v, ProcId p, double start) {
    if (!is_placed(v)) {
        throw std::logic_error("ScheduleBuilder::place_duplicate_at: task not yet placed");
    }
    return commit(v, p, start, /*duplicate=*/true);
}

Placement ScheduleBuilder::commit(TaskId v, ProcId p, double start, bool duplicate) {
    const double w = problem_->exec_time(v, p);
    const Placement pl{v, p, start, start + w};
    schedule_.add(v, p, pl.start, pl.finish);
    insert_interval(p, {pl.start, pl.finish});
    undo_log_.push_back({v, makespan_, duplicate});
    if (!duplicate) placed_[static_cast<std::size_t>(v)] = true;
    makespan_ = std::max(makespan_, pl.finish);
    ++num_placements_;
    return pl;
}

void ScheduleBuilder::rollback(Checkpoint mark) {
    if (mark > undo_log_.size()) {
        throw std::logic_error("ScheduleBuilder::rollback: invalid checkpoint");
    }
    if (mark == undo_log_.size()) return;
    TSCHED_COUNT("speculative_rollbacks");
    TSCHED_COUNT_ADD("rolled_back_placements", undo_log_.size() - mark);
    while (undo_log_.size() > mark) {
        const UndoEntry entry = undo_log_.back();
        undo_log_.pop_back();
        const Placement pl = schedule_.remove_last(entry.task);
        erase_interval(pl.proc, {pl.start, pl.finish});
        if (!entry.duplicate) placed_[static_cast<std::size_t>(entry.task)] = false;
        makespan_ = entry.prev_makespan;
        --num_placements_;
    }
}

void ScheduleBuilder::insert_interval(ProcId p, Interval iv) {
    auto& timeline = busy_.at(static_cast<std::size_t>(p));
    const auto pos = std::lower_bound(
        timeline.begin(), timeline.end(), iv,
        [](const Interval& a, const Interval& b) { return a.start < b.start; });
    timeline.insert(pos, iv);
}

void ScheduleBuilder::erase_interval(ProcId p, Interval iv) {
    auto& timeline = busy_.at(static_cast<std::size_t>(p));
    auto pos = std::lower_bound(
        timeline.begin(), timeline.end(), iv,
        [](const Interval& a, const Interval& b) { return a.start < b.start; });
    // Feasible timelines never stack two intervals at one start, but a
    // speculative caller may have committed overlapping placements — scan
    // the equal-start run for the exact interval before giving up.
    while (pos != timeline.end() && pos->start == iv.start) {
        if (pos->finish == iv.finish) {
            timeline.erase(pos);
            return;
        }
        ++pos;
    }
    throw std::logic_error("ScheduleBuilder::rollback: interval not found");
}

Schedule ScheduleBuilder::take() && {
#ifdef TSCHED_DEBUG_CHECKS
    // With -DTSCHED_DEBUG_CHECKS=ON every schedule leaving a builder is run
    // through the error-severity lint passes, so an invalid placement is
    // caught inside the scheduler that produced it instead of at validation
    // time much later.  Throws std::invalid_argument on violations.
    analysis::run_debug_checks(schedule_, *problem_);
#endif
    return std::move(schedule_);
}

}  // namespace tsched
