#include "metrics/runner.hpp"

#include <limits>
#include <stdexcept>

#include "metrics/metrics.hpp"
#include "sched/validate.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace tsched {

PointResult run_point(const workload::InstanceParams& params,
                      std::span<const Scheduler* const> schedulers, std::size_t trials,
                      std::uint64_t base_seed) {
    if (schedulers.empty()) throw std::invalid_argument("run_point: no schedulers");

    std::vector<std::string> names;
    names.reserve(schedulers.size());
    for (const Scheduler* s : schedulers) names.push_back(s->name());

    PointResult result{names, {}, PairwiseMatrix(names), trials, 0};
    for (const auto& name : names) result.agg.emplace(name, SchedulerAggregate{});

    std::vector<double> makespans(schedulers.size());
    for (std::size_t t = 0; t < trials; ++t) {
        const Problem problem = workload::make_instance(params, mix_seed(base_seed, t));
        for (std::size_t s = 0; s < schedulers.size(); ++s) {
            double elapsed_ms = 0.0;
            Schedule schedule = [&] {
                const Stopwatch::Scoped timer(elapsed_ms);
                return schedulers[s]->schedule(problem);
            }();

            const ValidationResult valid = validate(schedule, problem);
            if (!valid) {
                ++result.invalid_schedules;
                TSCHED_ERROR << "invalid schedule from " << names[s] << " (trial " << t
                             << "): " << valid.message();
                makespans[s] = std::numeric_limits<double>::infinity();
                continue;
            }
            makespans[s] = schedule.makespan();
            SchedulerAggregate& agg = result.agg.at(names[s]);
            agg.slr.add(slr(schedule, problem));
            agg.speedup.add(speedup(schedule, problem));
            agg.efficiency.add(efficiency(schedule, problem));
            agg.makespan.add(schedule.makespan());
            agg.sched_time_ms.add(elapsed_ms);
            agg.duplicates.add(static_cast<double>(schedule.num_duplicates()));
        }
        result.pairwise.add_trial(makespans);
    }
    return result;
}

PointResult run_point(const workload::InstanceParams& params,
                      std::span<const SchedulerPtr> schedulers, std::size_t trials,
                      std::uint64_t base_seed) {
    std::vector<const Scheduler*> raw;
    raw.reserve(schedulers.size());
    for (const auto& s : schedulers) raw.push_back(s.get());
    return run_point(params, raw, trials, base_seed);
}

}  // namespace tsched
