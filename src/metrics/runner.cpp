#include "metrics/runner.hpp"

#include <limits>
#include <stdexcept>

#include "metrics/metrics.hpp"
#include "sched/validate.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace tsched {

namespace {

/// Everything one (trial, scheduler) run contributes to the aggregates.
struct TrialSample {
    bool valid = false;
    double slr = 0.0;
    double speedup = 0.0;
    double efficiency = 0.0;
    double makespan = 0.0;
    double sched_time_ms = 0.0;
    double duplicates = 0.0;
};

/// One trial = one generated instance run through every scheduler.  Pure
/// function of (params, schedulers, seed) apart from the wall-clock timing,
/// so trials can run on any thread in any order.
std::vector<TrialSample> run_trial(const workload::InstanceParams& params,
                                   std::span<const Scheduler* const> schedulers,
                                   std::span<const std::string> names, std::size_t trial,
                                   std::uint64_t seed) {
    const Problem problem = workload::make_instance(params, seed);
    std::vector<TrialSample> samples(schedulers.size());
    for (std::size_t s = 0; s < schedulers.size(); ++s) {
        TrialSample& sample = samples[s];
        Schedule schedule = [&] {
            const Stopwatch::Scoped timer(sample.sched_time_ms);
            return schedulers[s]->schedule(problem);
        }();

        const ValidationResult valid = validate(schedule, problem);
        if (!valid) {
            TSCHED_ERROR << "invalid schedule from " << names[s] << " (trial " << trial
                         << "): " << valid.message();
            continue;
        }
        sample.valid = true;
        sample.slr = slr(schedule, problem);
        sample.speedup = speedup(schedule, problem);
        sample.efficiency = efficiency(schedule, problem);
        sample.makespan = schedule.makespan();
        sample.duplicates = static_cast<double>(schedule.num_duplicates());
    }
    return samples;
}

}  // namespace

PointResult run_point(const workload::InstanceParams& params,
                      std::span<const Scheduler* const> schedulers, std::size_t trials,
                      std::uint64_t base_seed, ThreadPool* pool) {
    if (schedulers.empty()) throw std::invalid_argument("run_point: no schedulers");

    std::vector<std::string> names;
    names.reserve(schedulers.size());
    for (const Scheduler* s : schedulers) names.push_back(s->name());

    PointResult result{names, {}, PairwiseMatrix(names), trials, 0};
    for (const auto& name : names) result.agg.emplace(name, SchedulerAggregate{});

    // Phase 1: run the trials (concurrently when a pool is supplied).
    std::vector<std::vector<TrialSample>> rows(trials);
    const auto worker = [&](std::size_t t) {
        rows[t] = run_trial(params, schedulers, names, t, mix_seed(base_seed, t));
    };
    if (pool != nullptr && pool->size() > 1 && trials > 1) {
        parallel_for(*pool, trials, worker);
    } else {
        for (std::size_t t = 0; t < trials; ++t) worker(t);
    }

    // Phase 2: fold in trial order — RunningStats and the pairwise matrix
    // see samples in exactly the order the serial runner produced, so the
    // aggregates do not depend on the worker count.
    std::vector<double> makespans(schedulers.size());
    for (std::size_t t = 0; t < trials; ++t) {
        for (std::size_t s = 0; s < schedulers.size(); ++s) {
            const TrialSample& sample = rows[t][s];
            if (!sample.valid) {
                ++result.invalid_schedules;
                makespans[s] = std::numeric_limits<double>::infinity();
                continue;
            }
            makespans[s] = sample.makespan;
            SchedulerAggregate& agg = result.agg.at(names[s]);
            agg.slr.add(sample.slr);
            agg.speedup.add(sample.speedup);
            agg.efficiency.add(sample.efficiency);
            agg.makespan.add(sample.makespan);
            agg.sched_time_ms.add(sample.sched_time_ms);
            agg.duplicates.add(sample.duplicates);
        }
        result.pairwise.add_trial(makespans);
    }
    return result;
}

PointResult run_point(const workload::InstanceParams& params,
                      std::span<const SchedulerPtr> schedulers, std::size_t trials,
                      std::uint64_t base_seed, ThreadPool* pool) {
    std::vector<const Scheduler*> raw;
    raw.reserve(schedulers.size());
    for (const auto& s : schedulers) raw.push_back(s.get());
    return run_point(params, raw, trials, base_seed, pool);
}

}  // namespace tsched
