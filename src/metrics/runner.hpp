// Experiment runner: the loop every benchmark binary shares.
//
// An experiment point = (InstanceParams, trial count, scheduler set).  The
// runner generates `trials` independent problems (seeded deterministically
// from base_seed + trial index), runs every scheduler on each, validates the
// schedules, and aggregates SLR / speedup / efficiency / scheduling time per
// scheduler plus the pairwise win matrix.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "metrics/pairwise.hpp"
#include "sched/scheduler.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "workload/instance.hpp"

namespace tsched {

struct SchedulerAggregate {
    RunningStats slr;
    RunningStats speedup;
    RunningStats efficiency;
    RunningStats makespan;
    RunningStats sched_time_ms;  ///< wall-clock scheduling time
    RunningStats duplicates;     ///< duplicate placements per schedule
};

struct PointResult {
    /// Keyed by scheduler name, iteration order = input scheduler order.
    std::vector<std::string> names;
    std::map<std::string, SchedulerAggregate> agg;
    PairwiseMatrix pairwise;
    std::size_t trials = 0;
    std::size_t invalid_schedules = 0;  ///< validator failures (should be 0)
};

/// Run one experiment point.  Throws std::invalid_argument on an empty
/// scheduler set.  Schedules failing validation are counted in
/// `invalid_schedules` and excluded from the aggregates.
///
/// With a non-null `pool`, the point's trials run concurrently on the pool
/// (each trial derives its own seed via mix_seed(base_seed, t) and builds
/// its own instance, so trials share no mutable state).  Per-trial samples
/// are folded into the aggregates serially in trial order afterwards, so
/// the deterministic metrics (SLR, speedup, efficiency, makespan,
/// duplicates, pairwise wins) are bit-identical for any worker count —
/// only the wall-clock sched-time samples vary run to run.
[[nodiscard]] PointResult run_point(const workload::InstanceParams& params,
                                    std::span<const Scheduler* const> schedulers,
                                    std::size_t trials, std::uint64_t base_seed,
                                    ThreadPool* pool = nullptr);

/// Convenience overload for owning pointers.
[[nodiscard]] PointResult run_point(const workload::InstanceParams& params,
                                    std::span<const SchedulerPtr> schedulers, std::size_t trials,
                                    std::uint64_t base_seed, ThreadPool* pool = nullptr);

}  // namespace tsched
