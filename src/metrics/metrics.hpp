// Schedule-quality metrics of the static-scheduling literature.
//
// Definitions follow Topcuoglu et al. (TPDS 2002):
//   SLR        = makespan / Σ_{v ∈ CP_min} min_p w(v, p)
//                (the denominator is the communication-free critical path
//                over per-task minimum costs — an absolute lower bound, so
//                SLR >= 1 always);
//   speedup    = (min_p Σ_v w(v, p)) / makespan
//                (serial time of the single best processor);
//   efficiency = speedup / P.
#pragma once

#include "platform/problem.hpp"
#include "sched/schedule.hpp"

namespace tsched {

[[nodiscard]] double slr(const Schedule& schedule, const Problem& problem);
[[nodiscard]] double speedup(const Schedule& schedule, const Problem& problem);
[[nodiscard]] double efficiency(const Schedule& schedule, const Problem& problem);

/// Fraction of [0, makespan] x P that is busy (1 - normalised idle time).
[[nodiscard]] double utilization(const Schedule& schedule);

}  // namespace tsched
