// Pairwise scheduler comparison — the "% better / equal / worse" tables of
// the HEFT-family evaluations.
//
// For every ordered pair (A, B) the matrix counts over all trials how often
// A's makespan was better than, equal to (within a relative tolerance), or
// worse than B's.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace tsched {

class PairwiseMatrix {
public:
    /// `names[i]` labels scheduler i; `rel_eps` is the relative makespan
    /// tolerance under which two results count as equal.
    explicit PairwiseMatrix(std::vector<std::string> names, double rel_eps = 1e-9);

    /// Record one trial: makespans[i] belongs to scheduler i.
    void add_trial(std::span<const double> makespans);

    [[nodiscard]] std::size_t num_schedulers() const noexcept { return names_.size(); }
    [[nodiscard]] std::size_t num_trials() const noexcept { return trials_; }
    [[nodiscard]] const std::vector<std::string>& names() const noexcept { return names_; }

    [[nodiscard]] std::size_t better(std::size_t a, std::size_t b) const;
    [[nodiscard]] std::size_t equal(std::size_t a, std::size_t b) const;
    [[nodiscard]] std::size_t worse(std::size_t a, std::size_t b) const;

    [[nodiscard]] double better_pct(std::size_t a, std::size_t b) const;
    [[nodiscard]] double equal_pct(std::size_t a, std::size_t b) const;
    [[nodiscard]] double worse_pct(std::size_t a, std::size_t b) const;

    /// Render the full matrix: one row per pair with %better/%equal/%worse.
    [[nodiscard]] Table to_table() const;

    /// Render the paper-style compact grid: cell (row A, col B) =
    /// "better/equal/worse" percentages of A against B.
    [[nodiscard]] Table to_grid() const;

private:
    [[nodiscard]] std::size_t idx(std::size_t a, std::size_t b) const;

    std::vector<std::string> names_;
    double rel_eps_;
    std::size_t trials_ = 0;
    std::vector<std::size_t> better_;  // (a, b) -> count a strictly better
    std::vector<std::size_t> equal_;
};

}  // namespace tsched
