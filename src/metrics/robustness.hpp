// Robustness metrics: how much a static schedule degrades under runtime
// faults, and how much slack it carries to absorb them.
//
// monte_carlo_degradation samples random single-processor crashes (uniform
// processor, uniform crash fraction of the makespan), repairs each with the
// given policy via sim::simulate_faulty, and summarises the realised
// degradation distribution (mean, p99 by nearest rank, worst).  Everything
// derives deterministically from the seed.
//
// slack_robustness is the static (simulation-free) counterpart: the mean,
// over all placements, of the placement's *slack* — how far it can slip
// without moving the makespan, delaying its processor successor, or making
// any consumer miss the input it planned to use — normalised by the
// makespan.  Higher is more robust.
#pragma once

#include <cstdint>

#include "platform/problem.hpp"
#include "sched/repair.hpp"
#include "sched/schedule.hpp"

namespace tsched {

struct RobustnessParams {
    std::size_t samples = 32;
    /// Crash-time window as fractions of the static makespan.
    double min_fraction = 0.1;
    double max_fraction = 0.9;
};

struct RobustnessStats {
    double expected_degradation = 1.0;  ///< mean realised/static makespan
    double p99_degradation = 1.0;       ///< nearest-rank 99th percentile
    double worst_degradation = 1.0;     ///< max over the samples
};

/// Monte-Carlo crash sampling; throws what sim::simulate_faulty throws.
[[nodiscard]] RobustnessStats monte_carlo_degradation(const Schedule& schedule,
                                                      const Problem& problem,
                                                      const RepairPolicy& policy,
                                                      const RobustnessParams& params,
                                                      std::uint64_t seed);

/// Mean normalised placement slack in [0, 1]; higher absorbs more delay.
[[nodiscard]] double slack_robustness(const Schedule& schedule, const Problem& problem);

}  // namespace tsched
