#include "metrics/robustness.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/faults.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace tsched {

RobustnessStats monte_carlo_degradation(const Schedule& schedule, const Problem& problem,
                                        const RepairPolicy& policy,
                                        const RobustnessParams& params, std::uint64_t seed) {
    if (params.samples == 0) {
        throw std::invalid_argument("monte_carlo_degradation: samples must be >= 1");
    }
    Rng rng(seed);
    std::vector<double> degradations;
    degradations.reserve(params.samples);
    double sum = 0.0;
    for (std::size_t s = 0; s < params.samples; ++s) {
        const sim::FaultPlan plan =
            sim::random_crash_plan(schedule, rng, params.min_fraction, params.max_fraction);
        const sim::FaultReport report =
            sim::simulate_faulty(schedule, problem, plan, policy);
        degradations.push_back(report.degradation);
        sum += report.degradation;
    }
    std::sort(degradations.begin(), degradations.end());
    RobustnessStats stats;
    stats.expected_degradation = sum / static_cast<double>(params.samples);
    // Nearest rank, not interpolation: the p99 must be a degradation that an
    // actual fault draw produced (util/stats.hpp has the convention notes).
    stats.p99_degradation = quantile_nearest_rank(degradations, 0.99);
    stats.worst_degradation = degradations.back();
    return stats;
}

double slack_robustness(const Schedule& schedule, const Problem& problem) {
    constexpr double kEps = 1e-9;
    const Dag& dag = problem.dag();
    const LinkModel& links = problem.machine().links();
    const double makespan = schedule.makespan();
    if (makespan <= 0.0) return 0.0;

    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t p = 0; p < schedule.num_procs(); ++p) {
        const auto timeline = schedule.processor_timeline(static_cast<ProcId>(p));
        for (std::size_t i = 0; i < timeline.size(); ++i) {
            const Placement& pl = timeline[i];
            // Slipping pl may not push the makespan nor its processor
            // successor.
            double slack = makespan - pl.finish;
            if (i + 1 < timeline.size()) {
                slack = std::min(slack, timeline[i + 1].start - pl.finish);
            }
            // Nor may any consumer that only pl can feed miss its input.
            for (const AdjEdge& e : dag.successors(pl.task)) {
                for (const Placement& cv : schedule.placements(e.task)) {
                    const double arrival =
                        pl.finish + links.comm_time(e.data, pl.proc, cv.proc);
                    if (arrival > cv.start + kEps) continue;  // pl is not a supplier
                    bool other_supplier = false;
                    for (const Placement& pu : schedule.placements(pl.task)) {
                        if (pu.proc == pl.proc && pu.start == pl.start) continue;
                        if (pu.finish + links.comm_time(e.data, pu.proc, cv.proc) <=
                            cv.start + kEps) {
                            other_supplier = true;
                            break;
                        }
                    }
                    if (!other_supplier) {
                        slack = std::min(slack, cv.start - arrival);
                    }
                }
            }
            total += std::max(slack, 0.0) / makespan;
            ++count;
        }
    }
    return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace tsched
