#include "metrics/metrics.hpp"

#include <limits>

namespace tsched {

double slr(const Schedule& schedule, const Problem& problem) {
    const double bound = problem.cp_lower_bound();
    const double ms = schedule.makespan();
    if (bound <= 0.0) return ms > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
    return ms / bound;
}

double speedup(const Schedule& schedule, const Problem& problem) {
    const double ms = schedule.makespan();
    if (ms <= 0.0) return 1.0;
    return problem.costs().best_serial_time() / ms;
}

double efficiency(const Schedule& schedule, const Problem& problem) {
    return speedup(schedule, problem) / static_cast<double>(problem.num_procs());
}

double utilization(const Schedule& schedule) {
    const double ms = schedule.makespan();
    if (ms <= 0.0) return 1.0;
    const double capacity = ms * static_cast<double>(schedule.num_procs());
    return (capacity - schedule.total_idle_time()) / capacity;
}

}  // namespace tsched
