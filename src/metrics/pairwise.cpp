#include "metrics/pairwise.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace tsched {

PairwiseMatrix::PairwiseMatrix(std::vector<std::string> names, double rel_eps)
    : names_(std::move(names)), rel_eps_(rel_eps) {
    if (names_.empty()) throw std::invalid_argument("PairwiseMatrix: need at least one name");
    better_.assign(names_.size() * names_.size(), 0);
    equal_.assign(names_.size() * names_.size(), 0);
}

std::size_t PairwiseMatrix::idx(std::size_t a, std::size_t b) const {
    if (a >= names_.size() || b >= names_.size()) {
        throw std::out_of_range("PairwiseMatrix: scheduler index out of range");
    }
    return a * names_.size() + b;
}

void PairwiseMatrix::add_trial(std::span<const double> makespans) {
    if (makespans.size() != names_.size()) {
        throw std::invalid_argument("PairwiseMatrix::add_trial: size mismatch");
    }
    ++trials_;
    for (std::size_t a = 0; a < names_.size(); ++a) {
        for (std::size_t b = 0; b < names_.size(); ++b) {
            if (a == b) continue;
            const double scale = std::max({std::abs(makespans[a]), std::abs(makespans[b]), 1.0});
            if (std::abs(makespans[a] - makespans[b]) <= rel_eps_ * scale) {
                ++equal_[idx(a, b)];
            } else if (makespans[a] < makespans[b]) {
                ++better_[idx(a, b)];
            }
        }
    }
}

std::size_t PairwiseMatrix::better(std::size_t a, std::size_t b) const {
    return better_[idx(a, b)];
}
std::size_t PairwiseMatrix::equal(std::size_t a, std::size_t b) const { return equal_[idx(a, b)]; }
std::size_t PairwiseMatrix::worse(std::size_t a, std::size_t b) const {
    return trials_ - better(a, b) - equal(a, b);
}

namespace {
double pct(std::size_t count, std::size_t total) {
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(count) / static_cast<double>(total);
}
}  // namespace

double PairwiseMatrix::better_pct(std::size_t a, std::size_t b) const {
    return pct(better(a, b), trials_);
}
double PairwiseMatrix::equal_pct(std::size_t a, std::size_t b) const {
    return pct(equal(a, b), trials_);
}
double PairwiseMatrix::worse_pct(std::size_t a, std::size_t b) const {
    return pct(worse(a, b), trials_);
}

Table PairwiseMatrix::to_table() const {
    Table table({"A", "B", "A better %", "equal %", "A worse %"});
    for (std::size_t a = 0; a < names_.size(); ++a) {
        for (std::size_t b = 0; b < names_.size(); ++b) {
            if (a == b) continue;
            table.new_row()
                .add(names_[a])
                .add(names_[b])
                .add(better_pct(a, b), 1)
                .add(equal_pct(a, b), 1)
                .add(worse_pct(a, b), 1);
        }
    }
    return table;
}

Table PairwiseMatrix::to_grid() const {
    std::vector<std::string> headers{"A \\ B (better/equal/worse %)"};
    headers.insert(headers.end(), names_.begin(), names_.end());
    Table table(headers);
    for (std::size_t a = 0; a < names_.size(); ++a) {
        table.new_row().add(names_[a]);
        for (std::size_t b = 0; b < names_.size(); ++b) {
            if (a == b) {
                table.add("-");
                continue;
            }
            std::ostringstream cell;
            cell.precision(0);
            cell << std::fixed << better_pct(a, b) << "/" << equal_pct(a, b) << "/"
                 << worse_pct(a, b);
            table.add(cell.str());
        }
    }
    return table;
}

}  // namespace tsched
