// Pure-structure DAG algorithms shared by generators, schedulers and metrics.
//
// Algorithms here operate only on the graph (work/data weights), never on a
// platform: cost-model-aware quantities (upward rank, SLR lower bound, ...)
// live in sched/ and metrics/.
#pragma once

#include <vector>

#include "graph/dag.hpp"

namespace tsched {

/// Deterministic topological order (Kahn, ties broken by ascending TaskId).
/// Throws std::invalid_argument if the graph has a cycle.
[[nodiscard]] std::vector<TaskId> topological_order(const Dag& dag);

/// top_level[v] = length of the longest edge-count path from any source to v
/// (sources have level 0).
[[nodiscard]] std::vector<int> top_levels(const Dag& dag);

/// bottom_level[v] = length of the longest edge-count path from v to any sink
/// (sinks have level 0).
[[nodiscard]] std::vector<int> bottom_levels(const Dag& dag);

/// Height of the DAG: number of node layers on the longest path (empty -> 0).
[[nodiscard]] int height(const Dag& dag);

/// Weighted longest path from any source to any sink, counting task work on
/// nodes and, when `include_edge_data` is set, data volumes on edges.
/// This is the classic "critical path" of the abstract graph.
[[nodiscard]] double critical_path_length(const Dag& dag, bool include_edge_data);

/// Tasks of one longest (work + optional data) path, source to sink order.
[[nodiscard]] std::vector<TaskId> critical_path(const Dag& dag, bool include_edge_data);

/// reachable[u*n + v] == true iff there is a directed path u ->* v (u != v).
/// Bit-packed transitive closure; O(n * m / 64).
[[nodiscard]] std::vector<bool> transitive_closure(const Dag& dag);

/// True iff there is a directed path u ->* v (u != v) — one-off query,
/// O(n + m) DFS; use transitive_closure for many queries.
[[nodiscard]] bool reaches(const Dag& dag, TaskId u, TaskId v);

/// Copy of `dag` with every transitively redundant edge removed (edge u->v is
/// redundant when a longer path u ->* v exists).  Task ids and weights are
/// preserved; removed edges' data is dropped.
[[nodiscard]] Dag transitive_reduction(const Dag& dag);

/// Number of weakly connected components.
[[nodiscard]] std::size_t weakly_connected_components(const Dag& dag);

/// All ancestors of v (excluding v), ascending by id.
[[nodiscard]] std::vector<TaskId> ancestors(const Dag& dag, TaskId v);

/// All descendants of v (excluding v), ascending by id.
[[nodiscard]] std::vector<TaskId> descendants(const Dag& dag, TaskId v);

}  // namespace tsched
