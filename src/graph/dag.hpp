// Task-graph container.
//
// A Dag models an application as a directed acyclic graph: nodes are tasks
// carrying an abstract work amount (scaled into per-processor execution times
// by the platform's cost matrix), edges carry the data volume communicated
// from producer to consumer (scaled into communication times by the
// platform's link model).
//
// The container is append-only (tasks and edges can be added, never removed)
// which keeps TaskIds stable; structural transformations (e.g. transitive
// reduction) produce new Dags.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace tsched {

/// Dense task index; valid ids are [0, num_tasks).
using TaskId = std::int32_t;
inline constexpr TaskId kInvalidTask = -1;

/// One adjacency entry: the neighbour task and the data volume on the edge.
struct AdjEdge {
    TaskId task = kInvalidTask;
    double data = 0.0;

    friend bool operator==(const AdjEdge&, const AdjEdge&) = default;
};

class Dag;

/// Struct-of-arrays adjacency snapshot of a Dag (compressed sparse row, both
/// directions).  The per-node `std::vector<AdjEdge>` layout costs one pointer
/// chase per node; at 10k+ tasks those misses dominate the rank and
/// data-ready sweeps, so the hot paths (ranks, ScheduleBuilder, the
/// simulator) iterate this flat view instead.  Edge order within each node
/// matches the Dag's insertion order exactly — rank and data-ready folds are
/// floating-point max/min reductions whose results depend on operand order,
/// and byte-identical schedules require the same order the AdjEdge walk used.
///
/// Accessors do no bounds checking: ids must be in [0, num_tasks), which
/// every consumer guarantees by iterating the snapshot it was built from.
class CsrAdjacency {
public:
    CsrAdjacency() = default;
    /// Snapshot the current adjacency of `dag` (O(n + m)).
    explicit CsrAdjacency(const Dag& dag);

    [[nodiscard]] std::size_t num_tasks() const noexcept { return num_tasks_; }
    [[nodiscard]] std::size_t num_edges() const noexcept { return succ_task_.size(); }

    [[nodiscard]] std::span<const TaskId> succ_tasks(TaskId v) const noexcept {
        const auto vi = static_cast<std::size_t>(v);
        return {succ_task_.data() + succ_off_[vi], succ_off_[vi + 1] - succ_off_[vi]};
    }
    [[nodiscard]] std::span<const double> succ_data(TaskId v) const noexcept {
        const auto vi = static_cast<std::size_t>(v);
        return {succ_data_.data() + succ_off_[vi], succ_off_[vi + 1] - succ_off_[vi]};
    }
    [[nodiscard]] std::span<const TaskId> pred_tasks(TaskId v) const noexcept {
        const auto vi = static_cast<std::size_t>(v);
        return {pred_task_.data() + pred_off_[vi], pred_off_[vi + 1] - pred_off_[vi]};
    }
    [[nodiscard]] std::span<const double> pred_data(TaskId v) const noexcept {
        const auto vi = static_cast<std::size_t>(v);
        return {pred_data_.data() + pred_off_[vi], pred_off_[vi + 1] - pred_off_[vi]};
    }

    [[nodiscard]] std::size_t out_degree(TaskId v) const noexcept {
        const auto vi = static_cast<std::size_t>(v);
        return succ_off_[vi + 1] - succ_off_[vi];
    }
    [[nodiscard]] std::size_t in_degree(TaskId v) const noexcept {
        const auto vi = static_cast<std::size_t>(v);
        return pred_off_[vi + 1] - pred_off_[vi];
    }

private:
    std::size_t num_tasks_ = 0;
    std::vector<std::size_t> succ_off_;  // n + 1 offsets into succ_task_/succ_data_
    std::vector<std::size_t> pred_off_;  // n + 1 offsets into pred_task_/pred_data_
    std::vector<TaskId> succ_task_;
    std::vector<TaskId> pred_task_;
    std::vector<double> succ_data_;
    std::vector<double> pred_data_;
};

class Dag {
public:
    Dag() = default;
    /// Pre-create `n` tasks with unit work and empty names.
    explicit Dag(std::size_t n) { tasks_.resize(n); }

    // The lazily built CSR cache travels with neither copies nor moves (the
    // destination rebuilds it on first use); both are otherwise the same
    // member-wise operations the compiler used to generate.
    Dag(const Dag& other) : tasks_(other.tasks_), num_edges_(other.num_edges_) {}
    Dag(Dag&& other) noexcept
        : tasks_(std::move(other.tasks_)), num_edges_(other.num_edges_) {}
    Dag& operator=(const Dag& other);
    Dag& operator=(Dag&& other) noexcept;
    ~Dag() = default;

    /// Add a task; returns its id. `work` is the abstract computation amount.
    TaskId add_task(double work = 1.0, std::string name = {});

    /// Add a directed edge u -> v carrying `data` volume.
    /// Throws std::invalid_argument on out-of-range ids, self-loops, or
    /// duplicate edges. Cycle creation is detected lazily by validate().
    void add_edge(TaskId u, TaskId v, double data = 0.0);

    [[nodiscard]] std::size_t num_tasks() const noexcept { return tasks_.size(); }
    [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }
    [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }

    [[nodiscard]] double work(TaskId v) const { return tasks_.at(check(v)).work; }
    void set_work(TaskId v, double w) { tasks_.at(check(v)).work = w; }

    [[nodiscard]] const std::string& name(TaskId v) const { return tasks_.at(check(v)).name; }
    void set_name(TaskId v, std::string name) { tasks_.at(check(v)).name = std::move(name); }

    /// Successors of v with edge data, in insertion order.
    [[nodiscard]] std::span<const AdjEdge> successors(TaskId v) const {
        return tasks_.at(check(v)).succs;
    }
    /// Predecessors of v with edge data, in insertion order.
    [[nodiscard]] std::span<const AdjEdge> predecessors(TaskId v) const {
        return tasks_.at(check(v)).preds;
    }

    [[nodiscard]] std::size_t out_degree(TaskId v) const { return successors(v).size(); }
    [[nodiscard]] std::size_t in_degree(TaskId v) const { return predecessors(v).size(); }

    /// Flat struct-of-arrays adjacency view, built lazily on first call and
    /// cached until the next mutation (add_task/add_edge/set_edge_data).
    /// Concurrent csr() calls on a const Dag are safe; the returned reference
    /// is invalidated by any mutation, exactly like the successors() spans.
    [[nodiscard]] const CsrAdjacency& csr() const TSCHED_EXCLUDES(csr_mutex_);

    [[nodiscard]] bool has_edge(TaskId u, TaskId v) const;
    /// Data volume on edge u -> v; throws std::out_of_range if absent.
    [[nodiscard]] double edge_data(TaskId u, TaskId v) const;
    /// Overwrite the data volume of an existing edge (used by the CCR
    /// calibration in workload/); throws std::out_of_range if absent.
    void set_edge_data(TaskId u, TaskId v, double data);

    /// Tasks with no predecessors / successors, ascending by id.
    [[nodiscard]] std::vector<TaskId> sources() const;
    [[nodiscard]] std::vector<TaskId> sinks() const;

    /// Sum of all task work / all edge data.
    [[nodiscard]] double total_work() const noexcept;
    [[nodiscard]] double total_data() const noexcept;

    /// True when the edge set is acyclic (a Dag built only through add_edge
    /// can still encode a cycle; generators call this as a postcondition).
    [[nodiscard]] bool is_acyclic() const;

    /// Check invariants (acyclicity, non-negative work/data); returns an
    /// empty string when valid, otherwise a diagnostic.
    [[nodiscard]] std::string validate() const;

    friend bool operator==(const Dag& a, const Dag& b);

private:
    struct TaskNode {
        double work = 1.0;
        std::string name;
        std::vector<AdjEdge> succs;
        std::vector<AdjEdge> preds;
    };

    [[nodiscard]] std::size_t check(TaskId v) const;
    void invalidate_csr() TSCHED_EXCLUDES(csr_mutex_);

    std::vector<TaskNode> tasks_;
    std::size_t num_edges_ = 0;
    // Lazily built flat adjacency; csr_mutex_ serialises concurrent readers
    // racing to build it (mutators are single-threaded by contract, but they
    // still take the lock so the reset pairs with the build).
    mutable Mutex csr_mutex_;
    mutable std::unique_ptr<CsrAdjacency> csr_cache_ TSCHED_GUARDED_BY(csr_mutex_);
};

}  // namespace tsched
